package hbspk_test

import (
	"fmt"
	"sort"

	"hbspk"
)

// ExampleRun builds a three-machine cluster and gathers every
// processor's bytes at the fastest machine under the pure cost model.
func ExampleRun() {
	root := hbspk.NewCluster("lan", []*hbspk.Machine{
		hbspk.NewLeaf("fast", hbspk.WithComm(1), hbspk.WithComp(1)),
		hbspk.NewLeaf("mid", hbspk.WithComm(1.2), hbspk.WithComp(1.5)),
		hbspk.NewLeaf("slow", hbspk.WithComm(1.5), hbspk.WithComp(2)),
	}, hbspk.WithSync(100))
	tree := hbspk.MustNew(root, 1).Normalize()

	var collected []int
	rep, err := hbspk.Run(tree, hbspk.PureModelFabric(), func(c hbspk.Ctx) error {
		out, err := hbspk.Gather(c, c.Tree().Root, 0, []byte{byte(c.Pid() + 10)})
		if err != nil {
			return err
		}
		if out != nil {
			for pid := range out {
				collected = append(collected, pid)
			}
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	sort.Ints(collected)
	fmt.Println("pieces from pids:", collected)
	fmt.Println("supersteps:", rep.Supersteps())
	// Output:
	// pieces from pids: [0 1 2]
	// supersteps: 1
}

// ExamplePredictGather shows the analytic cost of a balanced gather on
// the paper's testbed: with balanced workloads it collapses to the
// §4.2 form, dominated by the root's receive side plus L.
func ExamplePredictGather() {
	tree := hbspk.UCFTestbed()
	dist := hbspk.BalancedDist(tree, 100000)
	b := hbspk.PredictGather(tree, tree.Pid(tree.FastestLeaf()), dist)
	fmt.Printf("steps: %d, total: %.0f\n", len(b.Steps), b.Total())
	// Output:
	// steps: 1, total: 111369
}

// ExampleTwoPhaseCrossoverSize reproduces the §4.4 analysis: below this
// problem size the one-phase broadcast wins, above it the two-phase.
func ExampleTwoPhaseCrossoverSize() {
	fmt.Printf("n* = %.0f bytes\n", hbspk.TwoPhaseCrossoverSize(hbspk.UCFTestbed()))
	// Output:
	// n* = 3704 bytes
}

// ExampleAllReduce sums one value per processor across the paper's
// Figure 1 machine, hierarchically.
func ExampleAllReduce() {
	tree := hbspk.Figure1Cluster()
	totals := make([]int64, tree.NProcs())
	_, err := hbspk.Run(tree, hbspk.PureModelFabric(), func(c hbspk.Ctx) error {
		out, err := hbspk.AllReduce(c, []int64{1}, hbspk.SumOp)
		if err != nil {
			return err
		}
		totals[c.Pid()] = out[0]
		return nil
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("every processor holds:", totals[0])
	// Output:
	// every processor holds: 9
}
