package hbspk

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestSeededChurnDeterministic(t *testing.T) {
	a := SeededChurn(42, 8, 2, 2, 4)
	b := SeededChurn(42, 8, 2, 2, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("equal arguments produced different schedules: %v vs %v", a, b)
	}
	joins, leaves := 0, 0
	for _, c := range a {
		if c.JoinAt > 0 {
			joins++
		}
		if c.LeaveAt > 0 {
			leaves++
			if c.Pid == 0 {
				t.Fatalf("pid 0 must never leave: %v", c)
			}
		}
	}
	if joins != 2 || leaves != 2 {
		t.Fatalf("got %d joins / %d leaves, want 2 / 2 in %v", joins, leaves, a)
	}
}

// elasticRootProg is a churn-tolerant workload over the public API: a
// few share-proportional rounds absorbing failure and join notices,
// then a fault-tolerant session and a LiveShares renormalization check
// on the survivors. A leaver returns its typed departure error; the
// run's verdict must still be success.
func elasticRootProg(rounds int) Program {
	return func(c Ctx) error {
		root := c.Tree().Root
		for r := 0; r < rounds; r++ {
			c.Charge(50 * c.Self().Share)
			err := c.Sync(root, "round")
			for err != nil {
				if IsCrashStop(err) || IsLeave(err) {
					return err
				}
				var pf *ErrPeerFailed
				var pj *ErrPeerJoined
				if !errors.As(err, &pf) && !errors.As(err, &pj) {
					return err
				}
				err = c.Sync(root, "retry")
			}
		}
		live := NewFT(c, root).Live()
		shares := LiveShares(c, root, live)
		sum := 0.0
		for _, s := range shares {
			sum += s
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("p%d: live shares sum to %v over %v, want 1", c.Pid(), sum, live)
		}
		return nil
	}
}

func TestRunElasticSelfHealing(t *testing.T) {
	base := UCFTestbedN(4)
	cfg := ElasticConfig{
		Fabric: PureModelFabric(),
		Chaos: &ChaosPlan{
			Seed:       11,
			Churns:     []Churn{{Pid: 2, LeaveAt: 2}},
			Stragglers: []Straggler{{Pid: 1, FromStep: 0, ToStep: 8, Factor: 4}},
		},
		ReorgEvery: 2,
		ReorgSeed:  9,
	}
	r1, err := RunElastic(base.Clone(), cfg, elasticRootProg(6))
	if err != nil {
		t.Fatalf("RunElastic: %v", err)
	}
	r2, err := RunElastic(base.Clone(), cfg, elasticRootProg(6))
	if err != nil {
		t.Fatalf("RunElastic (repeat): %v", err)
	}
	if r1.Total != r2.Total {
		t.Fatalf("equal seeds diverged: makespan %v vs %v", r1.Total, r2.Total)
	}
	ccfg := ElasticConfig{Chaos: cfg.Chaos, ReorgEvery: 2, ReorgSeed: 9}
	if _, err := RunConcurrentElastic(base.Clone(), ccfg, elasticRootProg(6)); err != nil {
		t.Fatalf("RunConcurrentElastic: %v", err)
	}
}

func TestRunChaosVictimSeesCrashStop(t *testing.T) {
	plan := &ChaosPlan{Seed: 3, Crashes: []Crash{{Pid: 3, AtStep: 1}}}
	var victim atomic.Int32
	prog := func(c Ctx) error {
		root := c.Tree().Root
		for r := 0; r < 4; r++ {
			err := c.Sync(root, "round")
			for err != nil {
				if IsCrashStop(err) {
					victim.Add(1)
					return err
				}
				var pf *ErrPeerFailed
				if !errors.As(err, &pf) {
					return err
				}
				err = c.Sync(root, "retry")
			}
		}
		return nil
	}
	base := UCFTestbedN(4)
	if _, err := RunChaos(base.Clone(), PureModelFabric(), plan, prog); err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if _, err := RunConcurrentChaos(base.Clone(), plan, prog); err != nil {
		t.Fatalf("RunConcurrentChaos: %v", err)
	}
	if got := victim.Load(); got != 2 {
		t.Fatalf("victim observed its crash-stop %d times, want once per engine", got)
	}
	if NewCheckpointStore() == nil {
		t.Fatal("NewCheckpointStore returned nil")
	}
}
