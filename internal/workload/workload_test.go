package workload

import (
	"testing"
	"testing/quick"

	"hbspk/internal/model"
)

func TestPaperSizes(t *testing.T) {
	sizes := PaperSizes()
	if len(sizes) != 10 || sizes[0] != 100*KB || sizes[9] != 1000*KB {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestIntegersDeterministicAndUniformish(t *testing.T) {
	a := Integers(5, 10000)
	b := Integers(5, 10000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
	neg := 0
	for _, v := range a {
		if v < 0 {
			neg++
		}
	}
	// Uniform over int32: about half negative.
	if neg < 4000 || neg > 6000 {
		t.Errorf("%d/10000 negative; distribution looks skewed", neg)
	}
}

func TestBytesLengthExact(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 1001} {
		if got := len(Bytes(1, n)); got != n {
			t.Errorf("Bytes(%d) has %d bytes", n, got)
		}
	}
}

func TestPartitionPolicies(t *testing.T) {
	tr := model.UCFTestbed()
	n := 1000 * KB
	eq := Partition(tr, n, Equal)
	bal := Partition(tr, n, Balanced)
	if eq.Total() != n || bal.Total() != n {
		t.Fatalf("totals %d/%d, want %d", eq.Total(), bal.Total(), n)
	}
	fast, slow := tr.Pid(tr.FastestLeaf()), tr.Pid(tr.SlowestLeaf())
	if eq[fast] != eq[slow] && eq[fast]-eq[slow] > 1 {
		t.Errorf("equal partition unequal: %d vs %d", eq[fast], eq[slow])
	}
	if bal[fast] <= bal[slow] {
		t.Errorf("balanced partition gives fastest %d ≤ slowest %d", bal[fast], bal[slow])
	}
}

func TestImbalanceCriterion(t *testing.T) {
	tr := model.UCFTestbed()
	n := 1000 * KB
	// §4.2: balanced workloads satisfy r_j·c_j < 1 when shares are
	// inversely proportional to speed; equal splits also stay below 1
	// on this testbed (r_s/p = 0.165).
	if im := Imbalance(tr, Partition(tr, n, Balanced)); im > 1 {
		t.Errorf("balanced imbalance = %v, want ≤ 1", im)
	}
	if im := Imbalance(tr, Partition(tr, n, Equal)); im > 0.5 {
		t.Errorf("equal imbalance = %v, want small", im)
	}
	// An adversarial distribution pushes it above 1: everything on the
	// slowest machine.
	d := Partition(tr, n, Equal)
	for i := range d {
		d[i] = 0
	}
	d[tr.Pid(tr.SlowestLeaf())] = n
	if im := Imbalance(tr, d); im <= 1 {
		t.Errorf("all-on-slowest imbalance = %v, want > 1", im)
	}
}

func TestPieceForPartitionsDisjointly(t *testing.T) {
	tr := model.UCFTestbedN(6)
	data := Bytes(3, 6000)
	d := Partition(tr, len(data), Balanced)
	seen := 0
	for pid := 0; pid < tr.NProcs(); pid++ {
		piece := PieceFor(data, d, pid)
		if len(piece) != d[pid] {
			t.Errorf("pid %d piece %d bytes, want %d", pid, len(piece), d[pid])
		}
		seen += len(piece)
	}
	if seen != len(data) {
		t.Errorf("pieces cover %d bytes, want %d", seen, len(data))
	}
}

func TestPatternedIntegers(t *testing.T) {
	const n = 5000
	sorted := PatternedIntegers(1, n, Sorted)
	for i := 1; i < n; i++ {
		if sorted[i-1] > sorted[i] {
			t.Fatalf("Sorted pattern not ascending at %d", i)
		}
	}
	rev := PatternedIntegers(1, n, Reversed)
	for i := 1; i < n; i++ {
		if rev[i-1] < rev[i] {
			t.Fatalf("Reversed pattern not descending at %d", i)
		}
	}
	z := PatternedIntegers(1, n, Zipf)
	small := 0
	for _, v := range z {
		if v < 0 {
			t.Fatal("Zipf produced a negative value")
		}
		if v < 10 {
			small++
		}
	}
	if small < n/2 {
		t.Errorf("Zipf not skewed: only %d/%d values below 10", small, n)
	}
	u := PatternedIntegers(3, n, Uniform)
	v := Integers(3, n)
	for i := range u {
		if u[i] != v[i] {
			t.Fatal("Uniform pattern diverges from Integers")
		}
	}
}

func TestPropertyPartitionCoversAnyN(t *testing.T) {
	tr := model.UCFTestbed()
	f := func(nRaw uint32, balanced bool) bool {
		n := int(nRaw % 2000000)
		p := Equal
		if balanced {
			p = Balanced
		}
		d := Partition(tr, n, p)
		if d.Total() != n {
			return false
		}
		for _, v := range d {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCappedPolicyBoundsShares(t *testing.T) {
	tr := model.UCFTestbed()
	n := 1000 * KB
	d := Partition(tr, n, Capped)
	if d.Total() != n {
		t.Fatalf("total %d, want %d", d.Total(), n)
	}
	cap := int(CapFactor * float64(n) / float64(tr.NProcs()))
	for pid, v := range d {
		if v > cap+tr.NProcs() { // tiny slack from spill rounding
			t.Errorf("pid %d holds %d, cap %d", pid, v, cap)
		}
	}
	// The balanced split exceeds the cap for the fastest machine
	// (c_f ≈ 0.136 > 1.25/10), so Capped must differ from Balanced.
	b := Partition(tr, n, Balanced)
	if d[tr.Pid(tr.FastestLeaf())] >= b[tr.Pid(tr.FastestLeaf())] {
		t.Errorf("cap did not clip the fastest machine: %d vs %d",
			d[tr.Pid(tr.FastestLeaf())], b[tr.Pid(tr.FastestLeaf())])
	}
	// And Capped still favors fast machines over slow ones.
	if d[tr.Pid(tr.FastestLeaf())] <= d[tr.Pid(tr.SlowestLeaf())] {
		t.Error("capped split lost the speed ordering")
	}
}

func TestPropertyCappedCoversAnyN(t *testing.T) {
	tr := model.UCFTestbed()
	f := func(nRaw uint32) bool {
		n := int(nRaw % 1000000)
		d := Partition(tr, n, Capped)
		if d.Total() != n {
			return false
		}
		for _, v := range d {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
