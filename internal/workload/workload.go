// Package workload generates the experiment inputs of §5.1 — "100
// KBytes to 1000 KBytes of uniformly distributed integers" — and
// partitions them over a heterogeneous machine under the equal and
// balanced policies.
package workload

import (
	"encoding/binary"
	"math/rand"

	"hbspk/internal/cost"
	"hbspk/internal/model"
)

// KB is the paper's size unit.
const KB = 1000

// PaperSizes returns the §5.1 problem-size sweep: 100 KB to 1000 KB in
// 100 KB steps.
func PaperSizes() []int {
	sizes := make([]int, 10)
	for i := range sizes {
		sizes[i] = (i + 1) * 100 * KB
	}
	return sizes
}

// Integers returns n uniformly distributed 32-bit integers,
// deterministically from the seed.
func Integers(seed int64, n int) []int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(rng.Uint32())
	}
	return out
}

// Bytes returns the wire encoding of n/4 uniformly distributed integers
// (n bytes, 4-byte big-endian each), the payload the experiments move.
func Bytes(seed int64, n int) []byte {
	ints := Integers(seed, (n+3)/4)
	out := make([]byte, n)
	for i := 0; i+4 <= n; i += 4 {
		binary.BigEndian.PutUint32(out[i:], uint32(ints[i/4]))
	}
	return out
}

// Pattern selects the value distribution of generated integers; the
// paper uses Uniform, the others exercise sort-like workloads whose
// behavior depends on input order (BYTEmark's sorting kernels and the
// sample-sort application).
type Pattern int

const (
	// Uniform is the paper's §5.1 input: uniformly distributed integers.
	Uniform Pattern = iota
	// Sorted is already ascending (best case for adaptive sorts).
	Sorted
	// Reversed is descending (worst case for naive partitioners).
	Reversed
	// Zipf is heavily skewed toward small values, the shape of word
	// frequencies and degree distributions.
	Zipf
)

// PatternedIntegers generates n integers with the given distribution,
// deterministically from the seed.
func PatternedIntegers(seed int64, n int, p Pattern) []int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int32, n)
	switch p {
	case Sorted:
		v := int32(0)
		for i := range out {
			v += int32(rng.Intn(7))
			out[i] = v
		}
	case Reversed:
		v := int32(3 * n)
		for i := range out {
			v -= int32(rng.Intn(7))
			out[i] = v
		}
	case Zipf:
		z := rand.NewZipf(rng, 1.5, 1, 1<<20)
		for i := range out {
			out[i] = int32(z.Uint64())
		}
	default:
		for i := range out {
			out[i] = int32(rng.Uint32())
		}
	}
	return out
}

// Policy selects how a problem is split over the processors.
type Policy int

const (
	// Equal gives every processor n/p bytes (c_j = 1/p): the paper's
	// unbalanced baseline for heterogeneous machines.
	Equal Policy = iota
	// Balanced gives processor j its c_j·n bytes, with c_j taken from
	// the tree's shares (set by Normalize or bytemark.ApplyShares).
	Balanced
	// Capped is Balanced with a guard against the Figure 3(b) failure
	// mode: no processor's share may exceed CapFactor times the equal
	// share, so an overestimated c_j (the paper's second-fastest
	// processor) cannot become the bottleneck. Excess bytes spill to
	// the processors below their caps, in share order.
	Capped
)

// CapFactor bounds a Capped share at this multiple of n/p.
const CapFactor = 1.25

// Partition splits n bytes under the policy.
func Partition(t *model.Tree, n int, p Policy) cost.Dist {
	switch p {
	case Balanced:
		return cost.BalancedDist(t, n)
	case Capped:
		return cappedDist(t, n)
	default:
		return cost.EqualDist(t, n)
	}
}

// cappedDist computes the Capped policy: start from the balanced split,
// clip every share at CapFactor·n/p, and spill the clipped bytes to
// uncapped processors proportionally to their remaining headroom.
func cappedDist(t *model.Tree, n int) cost.Dist {
	d := cost.BalancedDist(t, n)
	p := len(d)
	if p == 0 || n == 0 {
		return d
	}
	cap := int(CapFactor * float64(n) / float64(p))
	if cap < 1 {
		cap = 1
	}
	spill := 0
	for i := range d {
		if d[i] > cap {
			spill += d[i] - cap
			d[i] = cap
		}
	}
	for spill > 0 {
		progressed := false
		for i := range d {
			if spill == 0 {
				break
			}
			if d[i] < cap {
				d[i]++
				spill--
				progressed = true
			}
		}
		if !progressed {
			// Everyone at cap (can happen from rounding): hand the
			// rest to the fastest processor.
			d[t.Pid(t.FastestLeaf())] += spill
			break
		}
	}
	return d
}

// Imbalance measures §4.2's balance criterion: the largest r_j·c_j over
// the processors, where c_j is the realized fraction d[j]/n. The gather
// cost collapses to the paper's g·n + L exactly when this stays at or
// below 1; a processor pushing it above 1 "has a problem size that is
// too large" and its communication dominates the h-relation.
func Imbalance(t *model.Tree, d cost.Dist) float64 {
	n := d.Total()
	if n == 0 {
		return 0
	}
	worst := 0.0
	for pid, leaf := range t.Leaves() {
		if r := leaf.CommSlowdown * float64(d[pid]) / float64(n); r > worst {
			worst = r
		}
	}
	return worst
}

// PieceFor returns processor pid's slice of a shared input under a
// distribution: the paper's programs hold disjoint contiguous ranges.
func PieceFor(data []byte, d cost.Dist, pid int) []byte {
	off := 0
	for i := 0; i < pid; i++ {
		off += d[i]
	}
	return data[off : off+d[pid]]
}
