package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v, want 5", m)
	}
	if s := StdDev(xs); math.Abs(s-2.138) > 0.01 {
		t.Errorf("stddev = %v, want ≈2.138", s)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("StdDev of one point should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4, 16}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean = %v, want 4", g)
	}
	if !math.IsNaN(GeoMean([]float64{1, -2})) {
		t.Error("GeoMean with negative should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v,%v", min, max)
	}
}

func TestLinearFitRecoversLine(t *testing.T) {
	// y = 25000 + 0.08 x exactly: the shape of a g/L parameterization.
	var xs, ys []float64
	for i := 0; i < 20; i++ {
		x := float64(i * 50000)
		xs = append(xs, x)
		ys = append(ys, 25000+0.08*x)
	}
	l, g, r2, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-25000) > 1e-6 || math.Abs(g-0.08) > 1e-12 || r2 < 0.999999 {
		t.Errorf("fit L=%v g=%v R²=%v", l, g, r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	_, _, _, err := LinearFit([]float64{1, 1, 1}, []float64{2, 3, 4})
	if !errors.Is(err, ErrDegenerate) {
		t.Errorf("err = %v, want ErrDegenerate", err)
	}
	if _, _, _, err := LinearFit([]float64{1}, []float64{2}); err == nil {
		t.Error("single point accepted")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(110, 100) != 0.1 {
		t.Errorf("RelErr(110,100) = %v", RelErr(110, 100))
	}
	if RelErr(5, 0) != 5 {
		t.Errorf("RelErr(5,0) = %v", RelErr(5, 0))
	}
}

// Property: LinearFit recovers any non-degenerate line exactly (up to
// float error) from noiseless samples.
func TestPropertyLinearFitExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Float64()*1000 - 500
		b := rng.Float64()*10 - 5
		var xs, ys []float64
		for i := 0; i < 10; i++ {
			x := rng.Float64() * 100
			xs = append(xs, x)
			ys = append(ys, a+b*x)
		}
		ia, ib, _, err := LinearFit(xs, ys)
		if err != nil {
			return errors.Is(err, ErrDegenerate)
		}
		return math.Abs(ia-a) < 1e-6*(1+math.Abs(a)) && math.Abs(ib-b) < 1e-6*(1+math.Abs(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
