// Package stats provides the small statistics toolkit the experiment
// harness needs: summary statistics of repeated noisy runs and least
// squares fits for recovering the machine parameters g and L from probe
// measurements, the way BSP implementations are parameterized
// (reference [8] of the paper).
package stats

import (
	"errors"
	"math"
)

// Mean returns the arithmetic mean; NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation; 0 for fewer than two
// points.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// GeoMean returns the geometric mean of positive values; NaN if any
// value is non-positive or the input is empty.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// MinMax returns the extremes; NaNs for empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// ErrDegenerate is returned by LinearFit when the x values carry no
// spread.
var ErrDegenerate = errors.New("stats: degenerate fit (no x variance)")

// LinearFit computes the least squares line y ≈ intercept + slope·x and
// the coefficient of determination R². Fitting superstep times against
// h-relation sizes recovers L as the intercept and g as the slope.
func LinearFit(xs, ys []float64) (intercept, slope, r2 float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, 0, errors.New("stats: need at least two matched points")
	}
	mx, my := Mean(xs), Mean(ys)
	sxx, sxy, syy := 0.0, 0.0, 0.0
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, ErrDegenerate
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		r2 = 1 // a constant fit explains a constant signal perfectly
	} else {
		r2 = sxy * sxy / (sxx * syy)
	}
	return intercept, slope, r2, nil
}

// RelErr returns |got-want| / |want|, or |got| when want is zero.
func RelErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
