// Package testutil holds cross-package test helpers. It must not
// import other hbspk packages — the helpers are used from their tests.
package testutil

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// CheckGoroutines registers a cleanup that fails the test if goroutines
// outlive it — a goleak-style leak check without the dependency. Call
// it first thing in the test so its cleanup runs last (cleanups are
// LIFO), after the test's own listeners and systems have shut down.
//
// The check snapshots the goroutine count up front and, at cleanup,
// polls for the count to return to the baseline: legitimate teardown
// (conn readers draining, wg.Wait stragglers) converges within the
// grace window, a leaked pump does not. Tests using it must not run in
// parallel — a sibling test's goroutines would be indistinguishable
// from a leak.
func CheckGoroutines(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		if t.Failed() {
			return // keep the real failure readable
		}
		deadline := time.Now().Add(3 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d goroutines after the test, %d before it\n%s",
			n, base, condenseStacks(string(buf)))
	})
}

// condenseStacks keeps the first line of every goroutine's stack plus
// its top frame, so the failure message names the leaked pumps without
// drowning the log.
func condenseStacks(dump string) string {
	var out strings.Builder
	for _, g := range strings.Split(dump, "\n\n") {
		lines := strings.SplitN(g, "\n", 3)
		out.WriteString(lines[0])
		if len(lines) > 1 {
			out.WriteString("\n\t")
			out.WriteString(strings.TrimSpace(lines[1]))
		}
		out.WriteString("\n")
	}
	return out.String()
}
