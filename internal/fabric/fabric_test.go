package fabric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hbspk/internal/cost"
	"hbspk/internal/model"
)

func pair(rSlow float64, L float64) *model.Tree {
	root := model.NewCluster("pair", []*model.Machine{
		model.NewLeaf("fast", model.WithComm(1), model.WithComp(1)),
		model.NewLeaf("slow", model.WithComm(rSlow), model.WithComp(rSlow)),
	}, model.WithSync(L))
	return model.MustNew(root, 1).Normalize()
}

func TestPureModelMatchesEquationOne(t *testing.T) {
	tr := pair(3, 7)
	f := New(tr, PureModel())
	res := f.StepCost(tr.Root, "s", []cost.Flow{{Src: 1, Dst: 0, Bytes: 100}},
		map[int]float64{0: 5, 1: 2})
	// T = w + g·h + L = 5 + 1·300 + 7.
	if res.W != 5 || res.H != 300 || res.Comm != 300 || res.Sync != 7 || res.Time != 312 {
		t.Errorf("got W=%v H=%v Comm=%v Sync=%v T=%v, want 5/300/300/7/312",
			res.W, res.H, res.Comm, res.Sync, res.Time)
	}
	if res.Flows != 1 || res.Bytes != 100 {
		t.Errorf("flows=%d bytes=%d, want 1/100", res.Flows, res.Bytes)
	}
}

func TestSelfSendIsFree(t *testing.T) {
	tr := pair(3, 0)
	f := New(tr, PVM())
	res := f.StepCost(tr.Root, "s", []cost.Flow{{Src: 0, Dst: 0, Bytes: 1000}}, nil)
	if res.Time != 0 || res.Flows != 0 || res.Bytes != 0 {
		t.Errorf("self-send charged: %+v", res)
	}
}

func TestPackUnpackChargedAsScaledWork(t *testing.T) {
	tr := pair(4, 0)
	f := New(tr, Config{PackByte: 0.5, UnpackByte: 0.25})
	// slow (comp 4) sends 100 bytes to fast (comp 1):
	// pack on slow = 0.5·100·4 = 200; unpack on fast = 0.25·100·1 = 25.
	res := f.StepCost(tr.Root, "s", []cost.Flow{{Src: 1, Dst: 0, Bytes: 100}}, nil)
	if res.W != 200 {
		t.Errorf("W = %v, want 200 (slow machine's pack dominates)", res.W)
	}
	// And the reverse direction: pack on fast = 50, unpack on slow = 100.
	res = f.StepCost(tr.Root, "s", []cost.Flow{{Src: 0, Dst: 1, Bytes: 100}}, nil)
	if res.W != 100 {
		t.Errorf("W = %v, want 100 (slow machine's unpack dominates)", res.W)
	}
}

func TestPackExceedsUnpackReproducesP2Anomaly(t *testing.T) {
	// The §5.2 observation: at p = 2 with equal shares it is better for
	// the root (receiver) to be the slow machine, because the expensive
	// pack then runs on the fast machine. T_s < T_f ⇔ T_s/T_f < 1.
	tr := pair(3.1, 25000)
	f := New(tr, PVM())
	n := 500000
	half := n / 2
	// Root = fast: slow sends to fast.
	tf := f.StepCost(tr.Root, "gather", []cost.Flow{{Src: 1, Dst: 0, Bytes: half}}, nil).Time
	// Root = slow: fast sends to slow.
	ts := f.StepCost(tr.Root, "gather", []cost.Flow{{Src: 0, Dst: 1, Bytes: half}}, nil).Time
	if ts >= tf {
		t.Errorf("T_s = %v should be below T_f = %v at p=2", ts, tf)
	}
}

func TestNoiseOnlySlowsAndIsDeterministic(t *testing.T) {
	tr := pair(2, 10)
	flows := []cost.Flow{{Src: 1, Dst: 0, Bytes: 1000}}
	base := New(tr, PureModel()).StepCost(tr.Root, "s", flows, nil).Time
	a := New(tr, PVMNoisy(0.3, 42))
	b := New(tr, PVMNoisy(0.3, 42))
	c := New(tr, PVMNoisy(0.3, 7))
	var ta, tb, tc float64
	for i := 0; i < 5; i++ {
		ta = a.StepCost(tr.Root, "s", flows, nil).Time
		tb = b.StepCost(tr.Root, "s", flows, nil).Time
		tc = c.StepCost(tr.Root, "s", flows, nil).Time
	}
	if ta != tb {
		t.Errorf("same seed diverged: %v vs %v", ta, tb)
	}
	if ta == tc {
		t.Errorf("different seeds identical: %v", ta)
	}
	if ta < base {
		t.Errorf("noise sped the step up: %v < noiseless %v", ta, base)
	}
}

func TestWorkWithoutFlows(t *testing.T) {
	tr := pair(2, 3)
	f := New(tr, PureModel())
	res := f.StepCost(tr.Root, "compute", nil, map[int]float64{0: 11, 1: 7})
	if res.Time != 11+3 {
		t.Errorf("T = %v, want 14", res.Time)
	}
}

func TestPacketModeApproximatesHRelation(t *testing.T) {
	// For a large gather, the packet-level span must converge to the
	// g·h charge: the h-relation abstraction is exact up to pipelining
	// effects that vanish with message size.
	tr := model.UCFTestbed()
	d := cost.BalancedDist(tr, 400000)
	root := tr.Pid(tr.FastestLeaf())
	var flows []cost.Flow
	for pid, b := range d {
		flows = append(flows, cost.Flow{Src: pid, Dst: root, Bytes: b})
	}
	pure := New(tr, PureModel()).StepCost(tr.Root, "g", flows, nil)
	pkt := New(tr, Config{PacketMode: true, PacketBytes: 1024}).StepCost(tr.Root, "g", flows, nil)
	ratio := pkt.Comm / pure.Comm
	if ratio < 0.8 || ratio > 1.6 {
		t.Errorf("packet-level comm %v vs g·h %v: ratio %v outside [0.8, 1.6]",
			pkt.Comm, pure.Comm, ratio)
	}
}

func TestPacketModeSerializesReceiver(t *testing.T) {
	// Two senders to one receiver: the receiver drain serializes, so
	// the span must be at least the receiver's total drain time.
	root := model.NewCluster("c", []*model.Machine{
		model.NewLeaf("r", model.WithComm(1)),
		model.NewLeaf("s1", model.WithComm(1)),
		model.NewLeaf("s2", model.WithComm(1)),
	}, model.WithSync(0))
	tr := model.MustNew(root, 1).Normalize()
	f := New(tr, Config{PacketMode: true, PacketBytes: 100})
	res := f.StepCost(tr.Root, "g", []cost.Flow{
		{Src: 1, Dst: 0, Bytes: 1000},
		{Src: 2, Dst: 0, Bytes: 1000},
	}, nil)
	if res.Comm < 2000 {
		t.Errorf("span %v below receiver serialization bound 2000", res.Comm)
	}
	if res.Comm > 2000+100 {
		t.Errorf("span %v far above bound: pipelining broken", res.Comm)
	}
}

func TestPacketModeChargesClusterRates(t *testing.T) {
	// Super²-step between two single-leaf clusters with slow WAN
	// injection: rates must come from the cluster r, not the leaf r.
	mk := func(name string, r float64) *model.Machine {
		return model.NewCluster(name, []*model.Machine{
			model.NewLeaf(name+"-0", model.WithComm(1)),
		}, model.WithComm(r), model.WithSync(0))
	}
	tr := model.MustNew(model.NewCluster("wan",
		[]*model.Machine{mk("a", 1), mk("b", 10)}, model.WithSync(0)), 1).Normalize()
	f := New(tr, Config{PacketMode: true, PacketBytes: 1 << 20})
	// b -> a: sender charged at cluster b's r = 10. The root
	// coordinator (a-0) drains at its own r = 1.
	res := f.StepCost(tr.Root, "s2", []cost.Flow{{Src: 1, Dst: 0, Bytes: 1000}}, nil)
	// One packet: inject 10·1000 then drain 1·1000 → span 11000.
	if res.Comm != 11000 {
		t.Errorf("span = %v, want 11000", res.Comm)
	}
}

// Property: pure-model step time always equals w + g·h + L for random
// flows on a random tree.
func TestPropertyPureModelEquation(t *testing.T) {
	f := func(seed int64, nflows uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := model.RandomTree(rng, 2, 4)
		fb := New(tr, PureModel())
		p := tr.NProcs()
		var flows []cost.Flow
		for i := 0; i < int(nflows%12); i++ {
			flows = append(flows, cost.Flow{
				Src: rng.Intn(p), Dst: rng.Intn(p), Bytes: rng.Intn(5000),
			})
		}
		work := map[int]float64{rng.Intn(p): rng.Float64() * 100}
		res := fb.StepCost(tr.Root, "s", flows, work)
		want := res.W + tr.G*cost.HRelation(tr, tr.Root, flows) + tr.Root.SyncCost
		return math.Abs(res.Time-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: packet-mode span is never below the busiest charged
// endpoint's serialized time (a lower bound that mirrors g·h).
func TestPropertyPacketSpanLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := model.RandomTree(rng, 1, 5)
		p := tr.NProcs()
		if p < 2 {
			return true
		}
		var flows []cost.Flow
		for i := 0; i < 6; i++ {
			flows = append(flows, cost.Flow{
				Src: rng.Intn(p), Dst: rng.Intn(p), Bytes: 1 + rng.Intn(4000),
			})
		}
		fb := New(tr, Config{PacketMode: true, PacketBytes: 512})
		span := fb.StepCost(tr.Root, "s", flows, nil).Comm
		// Sender-side bound: every sender must at least inject all its
		// bytes at its own rate.
		sent := map[int]float64{}
		for _, fl := range flows {
			if fl.Src == fl.Dst {
				continue
			}
			rs, _ := cost.EndpointRates(tr, tr.Root, fl)
			sent[fl.Src] += tr.G * rs * float64(fl.Bytes)
		}
		for _, v := range sent {
			if span < v-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentStepCostNoise shares one noisy fabric across goroutines:
// the guarded rng draw must survive -race, and every drawn factor stays
// inside [1, 1+Noise).
func TestConcurrentStepCostNoise(t *testing.T) {
	tr := pair(2, 1)
	f := New(tr, PVMNoisy(0.5, 42))
	flows := []cost.Flow{{Src: 1, Dst: 0, Bytes: 64}}
	base := New(tr, PVM()).StepCost(tr.Root, "s", flows, map[int]float64{0: 3}).Time

	const workers, rounds = 8, 200
	results := make(chan float64, workers*rounds)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < rounds; i++ {
				results <- f.StepCost(tr.Root, "s", flows, map[int]float64{0: 3}).Time
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	close(results)
	for got := range results {
		if got < base || got >= base*1.5 {
			t.Fatalf("noisy time %v outside [%v, %v)", got, base, base*1.5)
		}
	}
}
