package fabric

// Chaos injection: a seeded, deterministic fault plan the engines
// consult while running. The plan models the failure modes of the
// paper's non-dedicated cluster (§5) taken to their extreme — machines
// that crash-stop, links that drop, duplicate or delay individual
// messages, and transient straggler bursts — and composes with the
// fabric's multiplicative noise knob.
//
// Determinism contract: every decision is a pure function of the plan
// and the query, independent of call order. Message fates are derived
// by hashing (Seed, src, dst, seq); because both engines assign the
// same per-sender send sequence numbers to the same SPMD program, a
// plan produces the same fates under the virtual and the concurrent
// engine.

// Crash describes one crash-stop fault: the processor halts forever at
// a synchronization boundary, losing whatever it had queued for that
// superstep (messages in flight from earlier supersteps may still
// arrive — crash-stop, not crash-recall).
type Crash struct {
	// Pid is the victim processor.
	Pid int
	// AtStep, when >= 0, triggers the crash at the victim's AtStep-th
	// Sync call (0 = its first). Both engines honor it.
	AtStep int
	// AtTime, when > 0, triggers the crash at the first Sync call the
	// victim makes with its virtual clock at or past AtTime. Only the
	// virtual engine has a virtual clock; the concurrent engine ignores
	// it. A Crash with AtStep < 0 and AtTime <= 0 never fires.
	AtTime float64
}

// Straggler describes a transient slowdown burst: the processor's
// charged computation is multiplied by Factor for every superstep whose
// per-processor sync ordinal falls in [FromStep, ToStep].
type Straggler struct {
	Pid              int
	FromStep, ToStep int
	Factor           float64
}

// Churn describes one processor's elastic-membership fate: a late join,
// an orderly leave, or both. Join and leave points are counted in
// completed global barriers (the consistent cut both engines define),
// so a churn plan is engine-independent in the same way crash steps
// are.
type Churn struct {
	// Pid is the churning processor.
	Pid int
	// JoinAt, when > 0, keeps the processor dormant until JoinAt global
	// barriers have completed; it activates at that cut. 0 means the
	// processor is present from the start.
	JoinAt int
	// LeaveAt, when > 0, makes the processor leave at its LeaveAt-th
	// Sync call (0-based ordinal, like Crash.AtStep) — an orderly
	// departure announced at the barrier rather than a silent
	// crash-stop. LeaveAt <= 0 means it never leaves.
	LeaveAt int
}

// ChaosPlan is a deterministic fault-injection schedule. The zero value
// injects nothing; a nil *ChaosPlan is likewise inert.
type ChaosPlan struct {
	// Seed drives the per-message fate hashing. Plans with equal seeds
	// and rates produce identical fates.
	Seed int64
	// Crashes are the crash-stop faults.
	Crashes []Crash
	// Stragglers are the transient slowdown bursts.
	Stragglers []Straggler
	// Churns are the elastic-membership fates (late joins, orderly
	// leaves).
	Churns []Churn
	// Drop, Duplicate and Delay are independent per-message fault
	// probabilities in [0, 1]. A dropped message is never delivered
	// (its cost is still charged: the packets left the machine). A
	// duplicated message is delivered twice. A delayed message is held
	// back and delivered DelaySteps supersteps late.
	Drop, Duplicate, Delay float64
	// DelaySteps is how many supersteps a delayed message is held;
	// values < 1 mean 1.
	DelaySteps int
}

// Fate is the plan's verdict for one message.
type Fate struct {
	Drop      bool
	Duplicate bool
	// Delay is the number of supersteps the message is held (0 = on
	// time).
	Delay int
}

// active reports whether the plan can inject anything at all.
func (p *ChaosPlan) active() bool {
	if p == nil {
		return false
	}
	return len(p.Crashes) > 0 || len(p.Stragglers) > 0 || len(p.Churns) > 0 ||
		p.Drop > 0 || p.Duplicate > 0 || p.Delay > 0
}

// JoinStep returns the number of completed global barriers after which
// pid activates, or 0 when the processor is present from the start.
func (p *ChaosPlan) JoinStep(pid int) int {
	if p == nil {
		return 0
	}
	for _, c := range p.Churns {
		if c.Pid == pid && c.JoinAt > 0 {
			return c.JoinAt
		}
	}
	return 0
}

// LeaveNow reports whether pid departs at this Sync call (step is the
// processor's 0-based sync ordinal, as in CrashNow).
func (p *ChaosPlan) LeaveNow(pid, step int) bool {
	if p == nil {
		return false
	}
	for _, c := range p.Churns {
		if c.Pid == pid && c.LeaveAt > 0 && step >= c.LeaveAt {
			return true
		}
	}
	return false
}

// CrashNow reports whether pid crash-stops at this Sync call: step is
// the processor's 0-based sync ordinal and now its virtual clock (pass
// a negative now when there is no virtual clock).
func (p *ChaosPlan) CrashNow(pid, step int, now float64) bool {
	if p == nil {
		return false
	}
	for _, c := range p.Crashes {
		if c.Pid != pid {
			continue
		}
		if c.AtStep >= 0 && step >= c.AtStep {
			return true
		}
		if c.AtTime > 0 && now >= c.AtTime {
			return true
		}
	}
	return false
}

// Slowdown returns the transient compute-slowdown factor for pid at the
// given sync ordinal: the product of every matching straggler burst,
// and at least 1.
func (p *ChaosPlan) Slowdown(pid, step int) float64 {
	f := 1.0
	if p == nil {
		return f
	}
	for _, s := range p.Stragglers {
		if s.Pid == pid && step >= s.FromStep && step <= s.ToStep && s.Factor > 1 {
			f *= s.Factor
		}
	}
	return f
}

// MessageFate returns the deterministic fate of the message identified
// by (src, dst, seq), where seq is the sender's per-run send sequence
// number — the same identity under both engines.
func (p *ChaosPlan) MessageFate(src, dst, seq int) Fate {
	var f Fate
	if p == nil {
		return f
	}
	if p.Drop > 0 && p.u01(1, src, dst, seq) < p.Drop {
		f.Drop = true
		return f
	}
	if p.Duplicate > 0 && p.u01(2, src, dst, seq) < p.Duplicate {
		f.Duplicate = true
	}
	if p.Delay > 0 && p.u01(3, src, dst, seq) < p.Delay {
		f.Delay = p.DelaySteps
		if f.Delay < 1 {
			f.Delay = 1
		}
	}
	return f
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// well-distributed avalanche hash.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SeededChurn deterministically generates a churn schedule: the last
// `joins` pids of [0, nprocs) become late joiners and `leaves` distinct
// earlier pids (never pid 0, which anchors coordination) become orderly
// leavers, with activation/departure points hashed from the seed into
// [1, span]. Equal arguments always produce the same schedule.
func SeededChurn(seed int64, nprocs, joins, leaves, span int) []Churn {
	if nprocs <= 1 || span < 1 {
		return nil
	}
	if joins < 0 {
		joins = 0
	}
	if leaves < 0 {
		leaves = 0
	}
	if joins > nprocs-1 {
		joins = nprocs - 1
	}
	var out []Churn
	at := func(salt, pid int) int {
		h := splitmix64(uint64(seed) ^ uint64(salt)<<48 ^ uint64(pid))
		return 1 + int(h%uint64(span))
	}
	for i := 0; i < joins; i++ {
		pid := nprocs - 1 - i
		out = append(out, Churn{Pid: pid, JoinAt: at(1, pid)})
	}
	// Leavers come from the stable prefix, highest-first, skipping pid 0.
	stable := nprocs - joins
	if leaves > stable-1 {
		leaves = stable - 1
	}
	for i := 0; i < leaves; i++ {
		pid := stable - 1 - i
		// Leave strictly after any join window so the tree is never
		// asked to shrink below its initial membership before joiners
		// arrive.
		out = append(out, Churn{Pid: pid, LeaveAt: span + at(2, pid)})
	}
	return out
}

// u01 derives a uniform draw in [0, 1) from the plan seed, a per-fault
// salt, and the message identity.
func (p *ChaosPlan) u01(salt, src, dst, seq int) float64 {
	h := splitmix64(uint64(p.Seed) ^ uint64(salt)<<56)
	h = splitmix64(h ^ uint64(src)<<32 ^ uint64(uint32(dst)))
	h = splitmix64(h ^ uint64(seq))
	return float64(h>>11) / (1 << 53)
}
