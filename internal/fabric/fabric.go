// Package fabric charges communication and synchronization costs to
// HBSP^k supersteps. It is the "wire" of the simulated heterogeneous
// machine: given the flows and local work of one super^i-step it
// produces the step's execution time.
//
// The default configuration charges exactly the paper's cost model,
// T_i(λ) = w_i + g·h + L_{i,j} with the heterogeneous h-relation of
// package cost. On top of that the fabric can model two effects the pure
// model abstracts away, both needed to reproduce the experimental
// section:
//
//   - PVM-style per-byte pack/unpack overheads, charged as local work to
//     the sender/receiver and scaled by that machine's compute slowdown.
//     Packing (XDR encoding on the send path) is more expensive than
//     unpacking; this asymmetry is what makes the paper's Figure 3(a)
//     show T_s/T_f < 1 at p = 2 (§5.2's counter-intuitive result).
//   - A packet-level communication mode that replaces g·h with a
//     discrete-event simulation of per-machine injectors and drains, to
//     validate the h-relation abstraction.
//
// A multiplicative noise knob models the paper's non-dedicated cluster.
package fabric

import (
	"math/rand"
	"sort"
	"sync"

	"hbspk/internal/cost"
	"hbspk/internal/model"
)

// Config selects which effects the fabric models beyond the pure
// HBSP^k cost model. The zero value is the pure model.
type Config struct {
	// PackByte is the send-side overhead per byte (PVM pack/XDR
	// encode), in fastest-machine time units; it is scaled by the
	// sending machine's compute slowdown.
	PackByte float64
	// UnpackByte is the receive-side overhead per byte, scaled by the
	// receiving machine's compute slowdown. PVM's receive path is
	// cheaper than its send path, so UnpackByte < PackByte in the PVM
	// preset.
	UnpackByte float64
	// Noise, when positive, multiplies each step time by a uniformly
	// drawn factor in [1, 1+Noise): background load on a non-dedicated
	// cluster only ever slows a step down.
	Noise float64
	// Seed seeds the noise generator; runs with equal seeds are
	// identical.
	Seed int64
	// PacketMode replaces the g·h charge with a packet-level
	// discrete-event simulation.
	PacketMode bool
	// PacketBytes is the packet size for PacketMode (default 1024).
	PacketBytes int
	// MsgOverhead is a fixed per-message cost charged to the sender's
	// local work (scaled by its compute slowdown), modeling PVM's
	// per-message routing/daemon latency. It penalizes algorithms that
	// send many small messages — the effect message aggregation and
	// the related work's segmentation tuning trade against.
	MsgOverhead float64
	// CheckpointByte is the cost of snapshotting one byte of registered
	// state at a checkpointed superstep boundary, in fastest-machine
	// time units; it is scaled by the checkpointing machine's compute
	// slowdown and charged when an engine commits a checkpoint, so the
	// analytic predictions stay honest about recovery overhead.
	CheckpointByte float64
	// CombineMessages merges all of a superstep's messages between the
	// same (source, destination) pair into one wire message for cost
	// purposes — the classic BSPlib message-combining optimization.
	// Delivery is unaffected; only the per-message overhead count
	// changes, so it matters exactly when MsgOverhead > 0.
	CombineMessages bool
	// Rates optionally extends r_{i,j} with per-destination factors
	// (the paper's §6 future work); see model.RateTable.
	Rates *model.RateTable
}

// PureModel is the configuration that charges exactly T = w + g·h + L.
func PureModel() Config { return Config{} }

// PVM mimics the paper's HBSPlib-on-PVM testbed: packing costs 0.15
// byte-times per byte on the fastest machine and unpacking half that, in
// line with XDR encode dominating the send path while both stay well
// below the wire time (the experiments of §5 are communication-bound).
func PVM() Config { return Config{PackByte: 0.15, UnpackByte: 0.075} }

// PVMNoisy is PVM on a non-dedicated cluster.
func PVMNoisy(noise float64, seed int64) Config {
	c := PVM()
	c.Noise = noise
	c.Seed = seed
	return c
}

// Fabric charges superstep costs for one machine tree. StepCost is safe
// for concurrent use; the noise stream is guarded by rngMu, so
// single-goroutine runs with equal seeds stay bit-identical while
// concurrent callers get racy ordering but no data race (their draw
// order is inherently nondeterministic anyway).
type Fabric struct {
	tree *model.Tree
	cfg  Config

	// rngMu guards rng: math/rand.Rand is not goroutine-safe, and one
	// Fabric may be shared by concurrently charged steps.
	rngMu sync.Mutex
	rng   *rand.Rand
}

// New returns a fabric for the tree with the given configuration.
func New(t *model.Tree, cfg Config) *Fabric {
	if cfg.PacketBytes <= 0 {
		cfg.PacketBytes = 1024
	}
	return &Fabric{tree: t, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Tree returns the machine the fabric charges for.
func (f *Fabric) Tree() *model.Tree { return f.tree }

// Config returns the fabric's configuration.
func (f *Fabric) Config() Config { return f.cfg }

// StepResult is the charged cost of one executed super^i-step.
type StepResult struct {
	// Label names the step; ScopeLabel is the M_{i,j} of its scope.
	Label      string
	ScopeLabel string
	ScopeName  string
	// Level is i.
	Level int
	// W is w_i including pack/unpack overheads; H the heterogeneous
	// h-relation; Comm the charged communication time (g·H, or the
	// packet simulation's span); Sync is L.
	W, H, Comm, Sync float64
	// Time is the step's total T, after noise.
	Time float64
	// Flows and Bytes summarize the step's traffic.
	Flows, Bytes int
	// GatingPid is the processor whose local work (including pack and
	// unpack overheads) set the step's w term, or -1 when no work was
	// charged. Imbalance is that maximum divided by the mean positive
	// work — 1 means perfectly balanced computation, large values mean
	// one machine gated the superstep (§4.1's warning sign).
	GatingPid int
	Imbalance float64
}

// StepCost charges one super^i-step: flows are the messages delivered at
// the step's end; work[pid] is the local computation each participant
// accrued, already expressed in fastest-machine time units. Flows whose
// source equals their destination are free (§5.2: a processor does not
// send data to itself).
func (f *Fabric) StepCost(scope *model.Machine, label string, flows []cost.Flow, work map[int]float64) StepResult {
	res := StepResult{
		Label:      label,
		ScopeLabel: scope.Label(),
		ScopeName:  scope.Name,
		Level:      scope.Level,
		Sync:       scope.SyncCost,
	}

	// Message combining: collapse same-(src,dst) flows before charging.
	if f.cfg.CombineMessages {
		type pair struct{ src, dst int }
		merged := make(map[pair]int)
		var order []pair
		for _, fl := range flows {
			if fl.Src == fl.Dst || fl.Bytes <= 0 {
				continue
			}
			k := pair{fl.Src, fl.Dst}
			if _, ok := merged[k]; !ok {
				order = append(order, k)
			}
			merged[k] += fl.Bytes
		}
		combined := make([]cost.Flow, 0, len(order))
		for _, k := range order {
			combined = append(combined, cost.Flow{Src: k.src, Dst: k.dst, Bytes: merged[k]})
		}
		flows = combined
	}

	// Local work: caller-charged computation plus pack/unpack
	// overheads per endpoint.
	overhead := make(map[int]float64)
	for _, fl := range flows {
		if fl.Src == fl.Dst || fl.Bytes <= 0 {
			continue
		}
		res.Flows++
		res.Bytes += fl.Bytes
		if f.cfg.PackByte > 0 || f.cfg.MsgOverhead > 0 {
			if src := f.tree.Leaf(fl.Src); src != nil {
				overhead[fl.Src] += (f.cfg.PackByte*float64(fl.Bytes) + f.cfg.MsgOverhead) * src.CompSlowdown
			}
		}
		if f.cfg.UnpackByte > 0 {
			if dst := f.tree.Leaf(fl.Dst); dst != nil {
				overhead[fl.Dst] += f.cfg.UnpackByte * float64(fl.Bytes) * dst.CompSlowdown
			}
		}
	}
	res.GatingPid = -1
	perPid := make(map[int]float64, len(work)+len(overhead))
	for pid, w := range work {
		perPid[pid] = w + overhead[pid]
	}
	for pid, o := range overhead {
		if _, counted := work[pid]; !counted {
			perPid[pid] = o
		}
	}
	pids := make([]int, 0, len(perPid))
	for pid := range perPid {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	sum, positive := 0.0, 0
	for _, pid := range pids {
		total := perPid[pid]
		if total > res.W {
			res.W = total
			res.GatingPid = pid
		}
		if total > 0 {
			sum += total
			positive++
		}
	}
	if res.W == 0 {
		res.GatingPid = -1
	}
	if positive > 0 && sum > 0 {
		res.Imbalance = res.W / (sum / float64(positive))
	}

	res.H = cost.HRelationRated(f.tree, scope, flows, f.cfg.Rates)
	if f.cfg.PacketMode {
		res.Comm = f.packetTime(scope, flows)
	} else {
		res.Comm = f.tree.G * res.H
	}

	res.Time = res.W + res.Comm + res.Sync
	if f.cfg.Noise > 0 {
		f.rngMu.Lock()
		draw := f.rng.Float64()
		f.rngMu.Unlock()
		res.Time *= 1 + f.cfg.Noise*draw
	}
	return res
}
