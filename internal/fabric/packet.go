package fabric

import (
	"sort"

	"hbspk/internal/cost"
	"hbspk/internal/model"
	"hbspk/internal/sim"
)

// packetTime simulates the step's communication at packet granularity
// and returns its span. Each charged entity (leaf, cluster, or step
// root, per the h-relation entity rules) has a FIFO injector and a FIFO
// drain; a packet occupies its sender's injector for
// g·r_src·packetBytes, then — no earlier than its emission completes —
// the receiver's drain for g·r_dst·packetBytes. Packets of a sender's
// concurrent flows are interleaved round-robin, modeling fair
// multiplexing onto one NIC. The result converges to g·h for large
// messages, which TestPacketModeApproximatesHRelation verifies.
func (f *Fabric) packetTime(scope *model.Machine, flows []cost.Flow) float64 {
	eng := sim.NewEngine()
	type endpoint struct {
		res  *sim.Resource
		rate float64 // g·r per byte
	}
	injectors := make(map[int]*endpoint) // keyed by charged representative pid
	drains := make(map[int]*endpoint)

	// Charged entities can aggregate several pids (a cluster during a
	// super^i-step). Represent each entity by the pid it charges
	// traffic at: the endpoint rate already encodes the entity's r, so
	// two leaves of the same cluster share that cluster's injector. To
	// key the shared resource we use the cluster coordinator's pid.
	repr := func(pid int) int {
		leaf := f.tree.Leaf(pid)
		for m := leaf; m != nil; m = m.Parent() {
			if m.Parent() == scope {
				if m.IsLeaf() {
					return pid
				}
				return f.tree.Pid(m.Coordinator())
			}
		}
		return pid
	}

	get := func(m map[int]*endpoint, key int, rate float64) *endpoint {
		ep, ok := m[key]
		if !ok {
			ep = &endpoint{res: sim.NewResource(eng), rate: rate}
			m[key] = ep
		}
		return ep
	}

	type chunk struct {
		src, dst int
		bytes    int
		rs, rd   float64
	}
	// Split flows into packets, grouped by sender for round-robin
	// interleaving.
	bySender := make(map[int][][]chunk)
	var senders []int
	for _, fl := range flows {
		if fl.Src == fl.Dst || fl.Bytes <= 0 {
			continue
		}
		rs, rd := cost.EndpointRates(f.tree, scope, fl)
		if rs == 0 && rd == 0 {
			continue
		}
		if f.cfg.Rates != nil {
			srcM, dstM := cost.EndpointMachines(f.tree, scope, fl)
			rs *= f.cfg.Rates.Factor(srcM, dstM)
		}
		var cs []chunk
		for rest := fl.Bytes; rest > 0; rest -= f.cfg.PacketBytes {
			b := f.cfg.PacketBytes
			if rest < b {
				b = rest
			}
			cs = append(cs, chunk{fl.Src, fl.Dst, b, rs, rd})
		}
		if _, ok := bySender[fl.Src]; !ok {
			senders = append(senders, fl.Src)
		}
		bySender[fl.Src] = append(bySender[fl.Src], cs)
	}
	sort.Ints(senders)

	span := 0.0
	done := func(_, end float64) {
		if end > span {
			span = end
		}
	}
	for _, s := range senders {
		queues := bySender[s]
		for round := 0; ; round++ {
			any := false
			for _, q := range queues {
				if round >= len(q) {
					continue
				}
				any = true
				c := q[round]
				inj := get(injectors, repr(c.src), f.tree.G*c.rs)
				sendEnd := inj.res.Acquire(inj.rate*float64(c.bytes), nil)
				dr := get(drains, repr(c.dst), f.tree.G*c.rd)
				eng.ScheduleAt(sendEnd, func() {
					dr.res.AcquireAfter(sendEnd, dr.rate*float64(c.bytes), done)
				})
			}
			if !any {
				break
			}
		}
	}
	eng.Run()
	return span
}
