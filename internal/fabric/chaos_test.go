package fabric

import "testing"

func TestChaosNilPlanIsInert(t *testing.T) {
	var p *ChaosPlan
	if p.CrashNow(0, 0, 100) {
		t.Error("nil plan crashed a processor")
	}
	if f := p.Slowdown(3, 7); f != 1 {
		t.Errorf("nil plan slowdown = %v, want 1", f)
	}
	if f := p.MessageFate(1, 2, 3); f.Drop || f.Duplicate || f.Delay != 0 {
		t.Errorf("nil plan fate = %+v, want zero", f)
	}
}

func TestChaosCrashTriggers(t *testing.T) {
	p := &ChaosPlan{Crashes: []Crash{
		{Pid: 1, AtStep: 2},
		{Pid: 2, AtStep: -1, AtTime: 50},
	}}
	if p.CrashNow(1, 1, 0) {
		t.Error("p1 crashed before its step")
	}
	if !p.CrashNow(1, 2, 0) || !p.CrashNow(1, 5, 0) {
		t.Error("p1 did not stay crashed from its step on")
	}
	if p.CrashNow(2, 9, 49) {
		t.Error("p2 crashed before its time")
	}
	if !p.CrashNow(2, 0, 50) {
		t.Error("p2 did not crash at its time")
	}
	if p.CrashNow(0, 100, 1e9) {
		t.Error("an unlisted pid crashed")
	}
}

func TestChaosStragglerWindowAndProduct(t *testing.T) {
	p := &ChaosPlan{Stragglers: []Straggler{
		{Pid: 0, FromStep: 1, ToStep: 3, Factor: 4},
		{Pid: 0, FromStep: 3, ToStep: 5, Factor: 2},
	}}
	cases := []struct {
		step int
		want float64
	}{{0, 1}, {1, 4}, {3, 8}, {5, 2}, {6, 1}}
	for _, c := range cases {
		if got := p.Slowdown(0, c.step); got != c.want {
			t.Errorf("Slowdown(0, %d) = %v, want %v", c.step, got, c.want)
		}
	}
	if got := p.Slowdown(1, 2); got != 1 {
		t.Errorf("other pid slowed: %v", got)
	}
}

// Fates are a pure function of (seed, src, dst, seq): identical across
// calls and call orders, which is what makes a plan reproduce the same
// faults under both engines.
func TestChaosFateDeterministicAndSeedSensitive(t *testing.T) {
	a := &ChaosPlan{Seed: 7, Drop: 0.3, Duplicate: 0.2, Delay: 0.2, DelaySteps: 2}
	b := &ChaosPlan{Seed: 8, Drop: 0.3, Duplicate: 0.2, Delay: 0.2, DelaySteps: 2}
	differ := false
	for seq := 0; seq < 200; seq++ {
		f1 := a.MessageFate(0, 1, seq)
		f2 := a.MessageFate(0, 1, seq)
		if f1 != f2 {
			t.Fatalf("fate of seq %d not deterministic: %+v vs %+v", seq, f1, f2)
		}
		if f1 != b.MessageFate(0, 1, seq) {
			differ = true
		}
		if f1.Delay != 0 && f1.Delay != 2 {
			t.Fatalf("delay = %d, want 0 or DelaySteps", f1.Delay)
		}
	}
	if !differ {
		t.Error("seeds 7 and 8 produced identical fate streams")
	}
}

func TestChaosFateRatesRoughlyHonored(t *testing.T) {
	p := &ChaosPlan{Seed: 42, Drop: 0.3}
	dropped := 0
	const n = 20000
	for seq := 0; seq < n; seq++ {
		if p.MessageFate(seq%7, seq%5, seq).Drop {
			dropped++
		}
	}
	frac := float64(dropped) / n
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("drop fraction = %v, want ~0.3", frac)
	}
}

func TestChaosDropWinsOverOtherFates(t *testing.T) {
	p := &ChaosPlan{Seed: 1, Drop: 1, Duplicate: 1, Delay: 1}
	f := p.MessageFate(0, 1, 2)
	if !f.Drop || f.Duplicate || f.Delay != 0 {
		t.Errorf("fate = %+v, want pure drop", f)
	}
}

func TestChurnQueries(t *testing.T) {
	var nilPlan *ChaosPlan
	if nilPlan.JoinStep(1) != 0 || nilPlan.LeaveNow(1, 5) {
		t.Fatal("nil plan churned a processor")
	}
	p := &ChaosPlan{Churns: []Churn{
		{Pid: 2, JoinAt: 3},
		{Pid: 1, LeaveAt: 4},
	}}
	if !p.active() {
		t.Fatal("churn-only plan should be active")
	}
	if got := p.JoinStep(2); got != 3 {
		t.Fatalf("JoinStep(2) = %d, want 3", got)
	}
	if got := p.JoinStep(1); got != 0 {
		t.Fatalf("JoinStep(1) = %d, want 0 (leaver, not joiner)", got)
	}
	if p.LeaveNow(1, 3) {
		t.Fatal("left before its step")
	}
	if !p.LeaveNow(1, 4) || !p.LeaveNow(1, 9) {
		t.Fatal("LeaveNow should latch at and after the step")
	}
	if p.LeaveNow(2, 10) {
		t.Fatal("joiner should not leave")
	}
}

func TestSeededChurnDeterministicAndBounded(t *testing.T) {
	a := SeededChurn(42, 8, 2, 2, 5)
	b := SeededChurn(42, 8, 2, 2, 5)
	if len(a) != 4 {
		t.Fatalf("want 2 joins + 2 leaves, got %d fates", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %+v vs %+v", a[i], b[i])
		}
	}
	seen := map[int]bool{}
	for _, c := range a {
		if seen[c.Pid] {
			t.Fatalf("pid %d churned twice", c.Pid)
		}
		seen[c.Pid] = true
		if c.Pid == 0 {
			t.Fatal("pid 0 must stay stable")
		}
		if c.JoinAt > 0 && (c.JoinAt < 1 || c.JoinAt > 5) {
			t.Fatalf("JoinAt %d outside [1,5]", c.JoinAt)
		}
		if c.LeaveAt > 0 && c.LeaveAt <= 5 {
			t.Fatalf("LeaveAt %d should land after the join window", c.LeaveAt)
		}
	}
	if diff := SeededChurn(43, 8, 2, 2, 5); diff[0] == a[0] && diff[1] == a[1] && diff[2] == a[2] {
		t.Fatal("different seed produced the identical schedule")
	}
	if got := SeededChurn(42, 1, 3, 3, 5); got != nil {
		t.Fatal("single-processor machine cannot churn")
	}
	if got := SeededChurn(42, 4, 9, 9, 5); len(got) > 3+2 {
		t.Fatalf("counts not clamped: %d fates for 4 pids", len(got))
	}
}
