package fabric

import (
	"testing"

	"hbspk/internal/cost"
	"hbspk/internal/model"
)

// The §6 extension: per-destination rate factors.

func ratedPair() *model.Tree {
	root := model.NewCluster("pair", []*model.Machine{
		model.NewLeaf("a", model.WithComm(1)),
		model.NewLeaf("b", model.WithComm(2)),
		model.NewLeaf("c", model.WithComm(1.5)),
	}, model.WithSync(0))
	return model.MustNew(root, 1).Normalize()
}

func TestRateTableDefaultsToOne(t *testing.T) {
	tr := ratedPair()
	flows := []cost.Flow{{Src: 1, Dst: 0, Bytes: 100}}
	base := cost.HRelation(tr, tr.Root, flows)
	rated := cost.HRelationRated(tr, tr.Root, flows, model.NewRateTable())
	if base != rated {
		t.Errorf("empty table changed h: %v vs %v", base, rated)
	}
	if nilRated := cost.HRelationRated(tr, tr.Root, flows, nil); nilRated != base {
		t.Errorf("nil table changed h: %v vs %v", nilRated, base)
	}
}

func TestRateTableScalesSenderSide(t *testing.T) {
	tr := ratedPair()
	rt := model.NewRateTable().Set("b", "a", 3)
	flows := []cost.Flow{{Src: 1, Dst: 0, Bytes: 100}}
	// b (r=2) sends 100 to a with factor 3: h_b = 2·300 = 600;
	// a receives raw 100 at r=1.
	if h := cost.HRelationRated(tr, tr.Root, flows, rt); h != 600 {
		t.Errorf("h = %v, want 600", h)
	}
	// The reverse direction is unaffected.
	rev := []cost.Flow{{Src: 0, Dst: 1, Bytes: 100}}
	// a sends at factor 1 (no entry): h = max(1·100, 2·100) = 200.
	if h := cost.HRelationRated(tr, tr.Root, rev, rt); h != 200 {
		t.Errorf("reverse h = %v, want 200", h)
	}
}

func TestRateTableWildcards(t *testing.T) {
	tr := ratedPair()
	rt := model.NewRateTable().Set("b", "*", 5)
	flows := []cost.Flow{{Src: 1, Dst: 2, Bytes: 10}}
	// b→anything factor 5: h_b = 2·50 = 100 vs recv 1.5·10 = 15.
	if h := cost.HRelationRated(tr, tr.Root, flows, rt); h != 100 {
		t.Errorf("src-wildcard h = %v, want 100", h)
	}
	rt2 := model.NewRateTable().Set("*", "c", 4)
	// b→c: sender tally 40·r_b=80 vs recv 15.
	if h := cost.HRelationRated(tr, tr.Root, flows, rt2); h != 80 {
		t.Errorf("dst-wildcard h = %v, want 80", h)
	}
	// Exact beats wildcard.
	rt3 := model.NewRateTable().Set("b", "*", 5).Set("b", "c", 2)
	if h := cost.HRelationRated(tr, tr.Root, flows, rt3); h != 40 {
		t.Errorf("precedence h = %v, want 40", h)
	}
}

func TestRateTableInFabricAndPacketMode(t *testing.T) {
	tr := ratedPair()
	rt := model.NewRateTable().Set("b", "a", 3)
	flows := []cost.Flow{{Src: 1, Dst: 0, Bytes: 1000}}
	fb := New(tr, Config{Rates: rt})
	if res := fb.StepCost(tr.Root, "s", flows, nil); res.H != 6000 {
		t.Errorf("fabric h = %v, want 6000", res.H)
	}
	pk := New(tr, Config{Rates: rt, PacketMode: true, PacketBytes: 1 << 20})
	// One packet: inject at r=2·3 per byte then drain at r=1: 7000.
	if res := pk.StepCost(tr.Root, "s", flows, nil); res.Comm != 7000 {
		t.Errorf("packet comm = %v, want 7000", res.Comm)
	}
}

func TestRateTableRejectsBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive factor accepted")
		}
	}()
	model.NewRateTable().Set("a", "b", 0)
}

func TestMsgOverheadChargedPerMessage(t *testing.T) {
	tr := ratedPair()
	fb := New(tr, Config{MsgOverhead: 50})
	// b (comp slowdown defaults to 1) sends two messages: overhead 100.
	flows := []cost.Flow{
		{Src: 1, Dst: 0, Bytes: 10},
		{Src: 1, Dst: 2, Bytes: 10},
	}
	res := fb.StepCost(tr.Root, "s", flows, nil)
	if res.W != 100 {
		t.Errorf("W = %v, want 100 (2 messages × 50)", res.W)
	}
}

func TestMsgOverheadFavorsAggregation(t *testing.T) {
	// The same bytes in one message vs ten: aggregation must win under
	// per-message overhead — the knob the related work's segmentation
	// tuning turns the other way.
	tr := ratedPair()
	fb := New(tr, Config{MsgOverhead: 200})
	one := fb.StepCost(tr.Root, "s", []cost.Flow{{Src: 1, Dst: 0, Bytes: 1000}}, nil)
	var many []cost.Flow
	for i := 0; i < 10; i++ {
		many = append(many, cost.Flow{Src: 1, Dst: 0, Bytes: 100})
	}
	split := fb.StepCost(tr.Root, "s", many, nil)
	if split.Time <= one.Time {
		t.Errorf("split %v not slower than aggregated %v", split.Time, one.Time)
	}
	if split.H != one.H {
		t.Errorf("h changed with splitting: %v vs %v", split.H, one.H)
	}
}

func TestCombineMessagesReducesOverheadOnly(t *testing.T) {
	tr := ratedPair()
	var many []cost.Flow
	for i := 0; i < 10; i++ {
		many = append(many, cost.Flow{Src: 1, Dst: 0, Bytes: 100})
	}
	plain := New(tr, Config{MsgOverhead: 200})
	combined := New(tr, Config{MsgOverhead: 200, CombineMessages: true})
	rp := plain.StepCost(tr.Root, "s", many, nil)
	rc := combined.StepCost(tr.Root, "s", many, nil)
	if rc.Flows != 1 || rp.Flows != 10 {
		t.Errorf("flows = %d/%d, want 1/10", rc.Flows, rp.Flows)
	}
	if rc.H != rp.H {
		t.Errorf("combining changed h: %v vs %v", rc.H, rp.H)
	}
	if rc.W >= rp.W {
		t.Errorf("combining did not cut per-message overhead: %v vs %v", rc.W, rp.W)
	}
	// Without per-message overhead, combining changes nothing.
	a := New(tr, Config{}).StepCost(tr.Root, "s", many, nil)
	b := New(tr, Config{CombineMessages: true}).StepCost(tr.Root, "s", many, nil)
	if a.Time != b.Time {
		t.Errorf("free combining changed time: %v vs %v", a.Time, b.Time)
	}
	// The caller's slice must not be mutated.
	if many[0].Bytes != 100 || len(many) != 10 {
		t.Error("StepCost mutated the caller's flow slice")
	}
}

func TestGatingPidAndImbalance(t *testing.T) {
	tr := ratedPair()
	fb := New(tr, Config{PackByte: 0.1})
	// b packs 1000 bytes (work 100), c packs 100 bytes (work 10).
	flows := []cost.Flow{
		{Src: 1, Dst: 0, Bytes: 1000},
		{Src: 2, Dst: 0, Bytes: 100},
	}
	res := fb.StepCost(tr.Root, "s", flows, nil)
	if res.GatingPid != 1 {
		t.Errorf("gating pid = %d, want 1", res.GatingPid)
	}
	// mean of positive works = (100+10)/2 = 55 → imbalance ≈ 1.818.
	if res.Imbalance < 1.8 || res.Imbalance > 1.85 {
		t.Errorf("imbalance = %v, want ≈1.818", res.Imbalance)
	}
	// No work at all: gating pid -1.
	none := New(tr, Config{}).StepCost(tr.Root, "s", flows, nil)
	if none.GatingPid != -1 || none.Imbalance != 0 {
		t.Errorf("no-work step: gating=%d imbalance=%v", none.GatingPid, none.Imbalance)
	}
}
