package hbsp

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"hbspk/internal/fabric"
	"hbspk/internal/model"
)

// The two engines implement the same programming model; these property
// tests drive both with randomized message schedules and require
// identical delivered data.

// randomSchedule builds a deterministic per-processor message plan:
// rounds × destinations × sizes derived from the seed, shared by both
// engines.
type schedItem struct {
	dst, tag, size int
}

func buildSchedule(seed int64, p, rounds int) [][][]schedItem {
	rng := rand.New(rand.NewSource(seed))
	plan := make([][][]schedItem, p)
	for pid := 0; pid < p; pid++ {
		plan[pid] = make([][]schedItem, rounds)
		for r := 0; r < rounds; r++ {
			count := rng.Intn(4)
			for m := 0; m < count; m++ {
				plan[pid][r] = append(plan[pid][r], schedItem{
					dst:  rng.Intn(p),
					tag:  rng.Intn(8),
					size: 1 + rng.Intn(64),
				})
			}
		}
	}
	return plan
}

// runSchedule executes the plan and returns a digest per processor: the
// concatenation of (src, tag, payload-head) of every delivered message
// in Moves order across rounds.
func runSchedule(t *testing.T, tr *model.Tree, plan [][][]schedItem,
	run func(Program) error) [][]byte {
	t.Helper()
	p := tr.NProcs()
	digests := make([][]byte, p)
	err := run(func(c Ctx) error {
		var digest []byte
		for r := range plan[c.Pid()] { //hbspk:ignore pidtaint (every pid's plan has the same round count by construction)
			for mi, item := range plan[c.Pid()][r] {
				payload := bytes.Repeat([]byte{byte(c.Pid()*17 + r*3 + mi)}, item.size)
				if err := c.Send(item.dst, item.tag, payload); err != nil {
					return err
				}
			}
			if err := SyncAll(c, fmt.Sprintf("round%d", r)); err != nil { //hbspk:ignore syncdiscipline (plans give every pid the same round count)
				return err
			}
			for _, m := range c.Moves() {
				digest = append(digest, byte(m.Src), byte(m.Tag), byte(len(m.Payload)), m.Payload[0])
			}
		}
		digests[c.Pid()] = digest
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return digests
}

func TestPropertyEnginesDeliverIdentically(t *testing.T) {
	f := func(seed int64, pRaw, roundsRaw uint8) bool {
		p := int(pRaw%6) + 2
		rounds := int(roundsRaw%4) + 1
		tr := model.UCFTestbedN(p)
		plan := buildSchedule(seed, p, rounds)
		virt := runSchedule(t, tr, plan, func(prog Program) error {
			_, err := RunVirtual(tr, fabric.PureModel(), prog)
			return err
		})
		conc := runSchedule(t, tr, plan, func(prog Program) error {
			_, err := NewConcurrent(tr).Run(prog)
			return err
		})
		for pid := range virt {
			if !bytes.Equal(virt[pid], conc[pid]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// permCollectives are minimal gather/bcast/reduce shapes (the package
// cannot import internal/collective without a cycle); each program
// writes pid's final observation into digests[pid] and Saves it so
// schedule fingerprints cover the result.
func permCollectives(root int, digests [][]byte) map[string]Program {
	finish := func(c Ctx, digest []byte) error {
		digests[c.Pid()] = digest
		c.Save("out", digest)
		return nil
	}
	return map[string]Program{
		"gather": func(c Ctx) error {
			if c.Pid() != root {
				if err := c.Send(root, 1, []byte{byte(c.Pid()), byte(c.Pid() * 3)}); err != nil {
					return err
				}
			}
			if err := SyncAll(c, "gather"); err != nil {
				return err
			}
			// Key by source like the real collectives do: exploration
			// shuffles Moves order on purpose, so concatenating in
			// arrival order would (correctly) be flagged as
			// schedule-dependent.
			bySrc := make(map[int][]byte)
			for _, m := range c.Moves() {
				bySrc[m.Src] = m.Payload
			}
			var digest []byte
			for src := 0; src < c.NProcs(); src++ {
				if p, ok := bySrc[src]; ok {
					digest = append(digest, byte(src), p[0], p[1])
				}
			}
			return finish(c, digest)
		},
		"bcast": func(c Ctx) error {
			if c.Pid() == root {
				for dst := 0; dst < c.NProcs(); dst++ {
					if dst == root {
						continue
					}
					if err := c.Send(dst, 2, []byte{0xB0, byte(dst)}); err != nil {
						return err
					}
				}
			}
			if err := SyncAll(c, "bcast"); err != nil {
				return err
			}
			var digest []byte
			for _, m := range c.Moves() {
				digest = append(digest, byte(m.Src), m.Payload[0], m.Payload[1])
			}
			return finish(c, digest)
		},
		"reduce": func(c Ctx) error {
			if c.Pid() != root {
				if err := c.Send(root, 3, []byte{byte(c.Pid() + 1)}); err != nil {
					return err
				}
			}
			if err := SyncAll(c, "reduce"); err != nil {
				return err
			}
			var digest []byte
			if c.Pid() == root {
				sum := 0
				for _, m := range c.Moves() {
					sum += int(m.Payload[0])
				}
				digest = []byte{byte(sum)}
			}
			return finish(c, digest)
		},
	}
}

// The satellite equivalence bar: every mini-collective must produce the
// same final state on the Virtual engine under 8 seeded delivery-order
// permutations AND on the Concurrent engine, with verification armed on
// both.
func TestEnginesAgreeUnderSchedulePermutations(t *testing.T) {
	tr := model.UCFTestbedN(6)
	root := tr.Pid(tr.FastestLeaf())
	p := tr.NProcs()
	for _, name := range []string{"gather", "bcast", "reduce"} {
		name := name
		t.Run(name, func(t *testing.T) {
			virt := make([][]byte, p)
			veng := NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
			veng.Verify = true
			set, err := veng.RunSchedules(permCollectives(root, virt)[name], 8, 2024)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range set.Runs {
				if r.Err != nil {
					t.Fatalf("perm %d: %v", r.Perm, r.Err)
				}
			}
			if !set.Agree() {
				t.Fatalf("virtual engine schedule-dependent: %s", set.Diff())
			}
			conc := make([][]byte, p)
			ceng := NewConcurrent(tr)
			ceng.Verify = true
			if _, err := ceng.Run(permCollectives(root, conc)[name]); err != nil {
				t.Fatal(err)
			}
			for pid := 0; pid < p; pid++ {
				if !bytes.Equal(virt[pid], conc[pid]) {
					t.Errorf("p%d: virtual %x vs concurrent %x", pid, virt[pid], conc[pid])
				}
			}
		})
	}
}

func TestPropertyVirtualDeterministicOverSchedules(t *testing.T) {
	f := func(seed int64) bool {
		tr := model.UCFTestbedN(5)
		plan := buildSchedule(seed, 5, 3)
		run := func() [][]byte {
			return runSchedule(t, tr, plan, func(prog Program) error {
				_, err := RunVirtual(tr, fabric.PVM(), prog)
				return err
			})
		}
		a, b := run(), run()
		for pid := range a {
			if !bytes.Equal(a[pid], b[pid]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
