package hbsp

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"hbspk/internal/fabric"
	"hbspk/internal/model"
)

// The two engines implement the same programming model; these property
// tests drive both with randomized message schedules and require
// identical delivered data.

// randomSchedule builds a deterministic per-processor message plan:
// rounds × destinations × sizes derived from the seed, shared by both
// engines.
type schedItem struct {
	dst, tag, size int
}

func buildSchedule(seed int64, p, rounds int) [][][]schedItem {
	rng := rand.New(rand.NewSource(seed))
	plan := make([][][]schedItem, p)
	for pid := 0; pid < p; pid++ {
		plan[pid] = make([][]schedItem, rounds)
		for r := 0; r < rounds; r++ {
			count := rng.Intn(4)
			for m := 0; m < count; m++ {
				plan[pid][r] = append(plan[pid][r], schedItem{
					dst:  rng.Intn(p),
					tag:  rng.Intn(8),
					size: 1 + rng.Intn(64),
				})
			}
		}
	}
	return plan
}

// runSchedule executes the plan and returns a digest per processor: the
// concatenation of (src, tag, payload-head) of every delivered message
// in Moves order across rounds.
func runSchedule(t *testing.T, tr *model.Tree, plan [][][]schedItem,
	run func(Program) error) [][]byte {
	t.Helper()
	p := tr.NProcs()
	digests := make([][]byte, p)
	err := run(func(c Ctx) error {
		var digest []byte
		for r := range plan[c.Pid()] {
			for mi, item := range plan[c.Pid()][r] {
				payload := bytes.Repeat([]byte{byte(c.Pid()*17 + r*3 + mi)}, item.size)
				if err := c.Send(item.dst, item.tag, payload); err != nil {
					return err
				}
			}
			if err := SyncAll(c, fmt.Sprintf("round%d", r)); err != nil { //hbspk:ignore syncdiscipline (plans give every pid the same round count)
				return err
			}
			for _, m := range c.Moves() {
				digest = append(digest, byte(m.Src), byte(m.Tag), byte(len(m.Payload)), m.Payload[0])
			}
		}
		digests[c.Pid()] = digest
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return digests
}

func TestPropertyEnginesDeliverIdentically(t *testing.T) {
	f := func(seed int64, pRaw, roundsRaw uint8) bool {
		p := int(pRaw%6) + 2
		rounds := int(roundsRaw%4) + 1
		tr := model.UCFTestbedN(p)
		plan := buildSchedule(seed, p, rounds)
		virt := runSchedule(t, tr, plan, func(prog Program) error {
			_, err := RunVirtual(tr, fabric.PureModel(), prog)
			return err
		})
		conc := runSchedule(t, tr, plan, func(prog Program) error {
			_, err := NewConcurrent(tr).Run(prog)
			return err
		})
		for pid := range virt {
			if !bytes.Equal(virt[pid], conc[pid]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyVirtualDeterministicOverSchedules(t *testing.T) {
	f := func(seed int64) bool {
		tr := model.UCFTestbedN(5)
		plan := buildSchedule(seed, 5, 3)
		run := func() [][]byte {
			return runSchedule(t, tr, plan, func(prog Program) error {
				_, err := RunVirtual(tr, fabric.PVM(), prog)
				return err
			})
		}
		a, b := run(), run()
		for pid := range a {
			if !bytes.Equal(a[pid], b[pid]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
