package hbsp

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"hbspk/internal/fabric"
	"hbspk/internal/model"
)

func TestDeepChainScopedSyncsEveryLevel(t *testing.T) {
	const k = 5
	tr := model.DeepChain(k)
	rep := runPure(t, tr, func(c Ctx) error {
		// Sweep the levels like the hierarchical gather does: sync on
		// every enclosing cluster from level 1 to k.
		for lvl := 1; lvl <= c.Tree().K(); lvl++ {
			scope := c.Tree().ScopeAt(c.Self(), lvl)
			if scope == nil || scope.IsLeaf() {
				continue
			}
			if err := c.Sync(scope, fmt.Sprintf("lvl%d", lvl)); err != nil {
				return err
			}
		}
		return nil
	})
	// The chain has one cluster per level: k steps in total.
	if rep.Supersteps() != k {
		t.Errorf("steps = %d, want %d", rep.Supersteps(), k)
	}
	for i, s := range rep.Steps {
		if s.Level != i+1 {
			t.Errorf("step %d at level %d, want %d", i, s.Level, i+1)
		}
	}
}

func TestMovesResetEachSuperstep(t *testing.T) {
	tr := model.UCFTestbedN(2)
	runPure(t, tr, func(c Ctx) error {
		if c.Pid() == 0 {
			if err := c.Send(1, 0, []byte("once")); err != nil {
				return err
			}
		}
		if err := SyncAll(c, "s1"); err != nil {
			return err
		}
		if c.Pid() == 1 && len(c.Moves()) != 1 {
			return fmt.Errorf("step 1 moves = %d", len(c.Moves()))
		}
		if err := SyncAll(c, "s2"); err != nil {
			return err
		}
		if len(c.Moves()) != 0 {
			return fmt.Errorf("stale moves after empty step: %d", len(c.Moves()))
		}
		return nil
	})
}

func TestChargeAccumulatesWithinStepOnly(t *testing.T) {
	tr := model.UCFTestbedN(1)
	rep := runPure(t, tr, func(c Ctx) error {
		c.Charge(10)
		c.Charge(5)
		if err := SyncAll(c, "a"); err != nil {
			return err
		}
		c.Charge(1)
		return SyncAll(c, "b")
	})
	if rep.Steps[0].W != 15 || rep.Steps[1].W != 1 {
		t.Errorf("W = %v,%v; want 15,1", rep.Steps[0].W, rep.Steps[1].W)
	}
}

func TestNegativeAndZeroChargeIgnored(t *testing.T) {
	tr := model.SingleProcessor()
	rep := runPure(t, tr, func(c Ctx) error {
		c.Charge(-100)
		c.Charge(0)
		return SyncAll(c, "s")
	})
	if rep.Total != 0 {
		t.Errorf("total = %v, want 0", rep.Total)
	}
}

func TestUnsentCrossClusterMessageSurvivesManyLocalSteps(t *testing.T) {
	a := model.NewCluster("A", []*model.Machine{model.NewLeaf("a0"), model.NewLeaf("a1")}, model.WithSync(1))
	b := model.NewCluster("B", []*model.Machine{model.NewLeaf("b0"), model.NewLeaf("b1")}, model.WithSync(1))
	tr := model.MustNew(model.NewCluster("top", []*model.Machine{a, b}, model.WithSync(1)), 1).Normalize()
	runPure(t, tr, func(c Ctx) error {
		cluster := c.Tree().ScopeAt(c.Self(), 1)
		if c.Pid() == 0 {
			if err := c.Send(3, 5, []byte("later")); err != nil {
				return err
			}
		}
		// Several local rounds before any global sync.
		for i := 0; i < 3; i++ {
			if err := c.Sync(cluster, "local"); err != nil {
				return err
			}
			if c.Pid() == 3 && len(c.Moves()) != 0 {
				return errors.New("cross-cluster message leaked into a local step")
			}
		}
		if err := SyncAll(c, "global"); err != nil {
			return err
		}
		if c.Pid() == 3 {
			ms := c.Moves()
			if len(ms) != 1 || string(ms[0].Payload) != "later" {
				return fmt.Errorf("p3 moves = %v", ms)
			}
		}
		return nil
	})
}

func TestSyncOnForeignScopeDetected(t *testing.T) {
	a := model.NewCluster("A", []*model.Machine{model.NewLeaf("a0"), model.NewLeaf("a1")}, model.WithSync(1))
	b := model.NewCluster("B", []*model.Machine{model.NewLeaf("b0"), model.NewLeaf("b1")}, model.WithSync(1))
	tr := model.MustNew(model.NewCluster("top", []*model.Machine{a, b}, model.WithSync(1)), 1).Normalize()
	_, err := RunVirtual(tr, fabric.PureModel(), func(c Ctx) error {
		// Every processor syncs on cluster A — including B's members,
		// which are not under it.
		return c.Sync(c.Tree().Root.Children[0], "wrong")
	})
	if err == nil {
		t.Fatal("foreign-scope sync not rejected")
	}
}

func TestVirtualManySmallSupersteps(t *testing.T) {
	// Stress the engine's request loop: 200 supersteps on 10 procs.
	tr := model.UCFTestbed()
	const rounds = 200
	rep := runPure(t, tr, func(c Ctx) error {
		for i := 0; i < rounds; i++ {
			if err := c.Send((c.Pid()+1)%c.NProcs(), i, []byte{byte(i)}); err != nil {
				return err
			}
			if err := SyncAll(c, "r"); err != nil {
				return err
			}
			if len(c.Moves()) != 1 {
				return fmt.Errorf("round %d: %d moves", i, len(c.Moves()))
			}
		}
		return nil
	})
	if rep.Supersteps() != rounds {
		t.Errorf("steps = %d, want %d", rep.Supersteps(), rounds)
	}
}

func TestConcurrentTimeDilation(t *testing.T) {
	// With a real TimeUnit, a charged computation must consume at
	// least its nominal wall time.
	tr := model.UCFTestbedN(2)
	eng := NewConcurrent(tr)
	eng.TimeUnit = 50 * time.Microsecond
	start := time.Now()
	_, err := eng.Run(func(c Ctx) error {
		if c.Pid() == 0 {
			c.Charge(100) // ≥ 5ms on the fastest machine
		}
		return SyncAll(c, "s")
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("dilated run took %v, want ≥ 5ms", elapsed)
	}
}

func TestStepStartEndOrdering(t *testing.T) {
	tr := model.Figure1Cluster()
	rep := runPure(t, tr, func(c Ctx) error {
		cluster := c.Tree().ScopeAt(c.Self(), 1)
		if cluster != nil && !cluster.IsLeaf() {
			if err := c.Sync(cluster, "local"); err != nil { //hbspk:ignore syncdiscipline (scope-uniform: all leaves of one cluster branch together)
				return err
			}
		}
		return SyncAll(c, "global")
	})
	for _, s := range rep.Steps {
		if s.End < s.Start {
			t.Errorf("step %q ends before it starts: [%v, %v]", s.Label, s.Start, s.End)
		}
	}
	// The global step must start no earlier than every local step's end
	// (it synchronizes everyone).
	var globalStart float64
	for _, s := range rep.Steps {
		if s.Label == "global" {
			globalStart = s.Start
		}
	}
	for _, s := range rep.Steps {
		if s.Label == "local" && s.End > globalStart {
			t.Errorf("local step ends at %v after global start %v", s.End, globalStart)
		}
	}
}

func TestReportTimelineFromRealRun(t *testing.T) {
	tr := model.Figure1Cluster()
	rep := runPure(t, tr, func(c Ctx) error {
		cluster := c.Tree().ScopeAt(c.Self(), 1)
		if cluster != nil && !cluster.IsLeaf() {
			if err := c.Sync(cluster, "local"); err != nil { //hbspk:ignore syncdiscipline (scope-uniform: all leaves of one cluster branch together)
				return err
			}
		}
		return SyncAll(c, "global")
	})
	tl := rep.Timeline(100)
	if len(tl) == 0 || tl == "(no supersteps)\n" {
		t.Errorf("timeline empty:\n%s", tl)
	}
}

func TestStepLimitAbortsRunawayProgram(t *testing.T) {
	tr := model.UCFTestbedN(3)
	eng := NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
	eng.MaxSteps = 10
	_, err := eng.Run(func(c Ctx) error {
		for { // a program that never terminates on its own
			if err := SyncAll(c, "spin"); err != nil {
				return err
			}
		}
	})
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
	// Well-behaved programs under the limit are unaffected.
	eng2 := NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
	eng2.MaxSteps = 10
	if _, err := eng2.Run(func(c Ctx) error { return SyncAll(c, "once") }); err != nil {
		t.Errorf("limited engine rejected a short program: %v", err)
	}
}
