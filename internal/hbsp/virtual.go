package hbsp

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"hbspk/internal/cost"
	"hbspk/internal/fabric"
	"hbspk/internal/model"
	"hbspk/internal/trace"
)

// Virtual executes programs under the HBSP^k cost model on a
// deterministic virtual clock. Processors run as goroutines for
// programming-model fidelity, but every cost — computation,
// communication, synchronization — is charged by the fabric, so two runs
// with the same machine, program and fabric seed produce identical
// reports.
type Virtual struct {
	tree *model.Tree
	fab  *fabric.Fabric

	// MaxSteps, when positive, aborts the run with ErrStepLimit once
	// that many supersteps have completed — a guard against unbounded
	// iteration in user programs (the engine otherwise runs as long as
	// the program does).
	MaxSteps int

	// inboxes stages delivered messages per pid between the engine's
	// completeStep and the owning processor's pickup after resume; the
	// resume channel orders the handoff.
	inboxes [][]Message
}

// ErrStepLimit reports that a run exceeded the engine's MaxSteps.
var ErrStepLimit = errors.New("hbsp: superstep limit exceeded")

// NewVirtual returns an engine for the tree charging costs via fab,
// which must have been built for the same tree.
func NewVirtual(t *model.Tree, fab *fabric.Fabric) *Virtual {
	return &Virtual{tree: t, fab: fab}
}

// RunVirtual is a convenience wrapper: build a fabric with cfg and run.
func RunVirtual(t *model.Tree, cfg fabric.Config, prog Program) (*trace.Report, error) {
	return NewVirtual(t, fabric.New(t, cfg)).Run(prog)
}

// ErrDesync reports a malformed SPMD program: processors blocked on
// barriers that can never complete, or a processor exiting while others
// still wait on a scope containing it.
var ErrDesync = errors.New("hbsp: processors desynchronized")

type pendingMsg struct {
	src, dst, tag int
	payload       []byte
	seq           int
}

type vrequest struct {
	pid    int
	kind   byte // 's' sync, 'd' done
	scope  *model.Machine
	label  string
	work   float64
	outbox []pendingMsg
	err    error
	resume chan error
}

// vctx is the per-processor Ctx of the virtual engine.
type vctx struct {
	pid    int
	leaf   *model.Machine
	eng    *Virtual
	reqs   chan<- *vrequest
	resume chan error

	work   float64
	outbox []pendingMsg
	inbox  []Message
	seq    int
}

func (c *vctx) Pid() int             { return c.pid }
func (c *vctx) NProcs() int          { return c.eng.tree.NProcs() }
func (c *vctx) Tree() *model.Tree    { return c.eng.tree }
func (c *vctx) Self() *model.Machine { return c.leaf }
func (c *vctx) Moves() []Message     { return c.inbox }
func (c *vctx) Charge(ops float64) {
	if ops > 0 {
		c.work += ops * c.leaf.CompSlowdown
	}
}

func (c *vctx) Send(dst, tag int, payload []byte) error {
	if dst < 0 || dst >= c.NProcs() {
		return fmt.Errorf("hbsp: send to pid %d of %d", dst, c.NProcs())
	}
	c.seq++
	c.outbox = append(c.outbox, pendingMsg{src: c.pid, dst: dst, tag: tag, payload: payload, seq: c.seq})
	return nil
}

func (c *vctx) Sync(scope *model.Machine, label string) error {
	if scope == nil {
		return errors.New("hbsp: Sync with nil scope")
	}
	req := &vrequest{
		pid: c.pid, kind: 's', scope: scope, label: label,
		work: c.work, outbox: c.outbox, resume: c.resume,
	}
	c.work = 0
	c.outbox = nil
	c.reqs <- req
	err := <-c.resume
	if err != nil {
		return err
	}
	c.inbox = c.eng.takeInbox(c.pid)
	return nil
}

// Run executes the program on every processor and returns the run's
// report. The error is the first processor error, or ErrDesync-wrapped
// diagnostics for malformed synchronization.
func (v *Virtual) Run(prog Program) (*trace.Report, error) {
	p := v.tree.NProcs()
	reqs := make(chan *vrequest)
	ctxs := make([]*vctx, p)
	for pid := 0; pid < p; pid++ {
		ctxs[pid] = &vctx{
			pid:    pid,
			leaf:   v.tree.Leaf(pid),
			eng:    v,
			reqs:   reqs,
			resume: make(chan error, 1),
		}
	}
	v.inboxes = make([][]Message, p)
	for pid := 0; pid < p; pid++ {
		go func(c *vctx) {
			var err error
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("hbsp: processor %d panicked: %v", c.pid, r)
				}
				// Work charged after the last sync is a trailing
				// compute-only step: it extends this processor's clock.
				reqs <- &vrequest{pid: c.pid, kind: 'd', err: err, work: c.work}
			}()
			err = prog(c)
		}(ctxs[pid])
	}
	return v.coordinate(reqs, ctxs)
}

// engine-side run state (recreated per Run; Virtual is not reusable
// concurrently but may be reused serially).
type runState struct {
	pending     []*vrequest // by pid, nil = running
	done        []bool
	clocks      []float64
	undelivered []pendingMsg
	steps       []trace.Step
	firstErr    error
}

// inboxes staged for pickup by vctx.Sync after resume.
func (v *Virtual) takeInbox(pid int) []Message {
	in := v.inboxes[pid]
	v.inboxes[pid] = nil
	return in
}

func (v *Virtual) coordinate(reqs chan *vrequest, ctxs []*vctx) (*trace.Report, error) {
	p := v.tree.NProcs()
	st := &runState{
		pending: make([]*vrequest, p),
		done:    make([]bool, p),
		clocks:  make([]float64, p),
	}
	running := p
	for running > 0 {
		req := <-reqs
		switch req.kind {
		case 'd':
			st.done[req.pid] = true
			st.clocks[req.pid] += req.work
			running--
			if req.err != nil && st.firstErr == nil {
				st.firstErr = req.err
			}
		case 's':
			st.pending[req.pid] = req
		}
		v.release(st)
		if v.MaxSteps > 0 && len(st.steps) >= v.MaxSteps && st.firstErr == nil {
			st.firstErr = fmt.Errorf("%w: %d supersteps completed", ErrStepLimit, len(st.steps))
		}
		// Deadlock / desync detection: every live processor is blocked
		// in a sync and nothing released.
		if st.firstErr == nil && v.stuck(st, running) {
			st.firstErr = v.desyncError(st)
			for pid, r := range st.pending {
				if r != nil {
					st.pending[pid] = nil
					r.resume <- st.firstErr
				}
			}
		}
		// On error, unblock any processor that syncs afterwards.
		if st.firstErr != nil {
			for pid, r := range st.pending {
				if r != nil {
					st.pending[pid] = nil
					r.resume <- st.firstErr
				}
			}
		}
	}
	total := 0.0
	for _, c := range st.clocks {
		if c > total {
			total = c
		}
	}
	rep := &trace.Report{Steps: st.steps, Total: total}
	return rep, st.firstErr
}

// stuck reports whether all unfinished processors are blocked with no
// releasable scope.
func (v *Virtual) stuck(st *runState, running int) bool {
	blocked := 0
	for pid := range st.pending {
		if st.pending[pid] != nil {
			blocked++
		}
	}
	if blocked == 0 || blocked != running {
		return false
	}
	// A desync also occurs when a processor has exited while another
	// waits on a scope containing it; release() found nothing, so if
	// every live processor is blocked the run cannot progress.
	return true
}

func (v *Virtual) desyncError(st *runState) error {
	var parts []string
	for pid, r := range st.pending {
		if r != nil {
			parts = append(parts, fmt.Sprintf("p%d@%s(%s)", pid, r.scope.Label(), r.label))
		}
	}
	for pid, d := range st.done {
		if d {
			parts = append(parts, fmt.Sprintf("p%d:exited", pid))
		}
	}
	return fmt.Errorf("%w: %s", ErrDesync, strings.Join(parts, " "))
}

// release completes every scope whose entire leaf set is pending on it.
// At most one scope can become releasable per arrival, but releasing it
// may immediately enable nothing else (participants must re-request), so
// a single pass suffices.
func (v *Virtual) release(st *runState) {
	seen := map[*model.Machine]bool{}
	for pid := range st.pending {
		r := st.pending[pid]
		if r == nil || seen[r.scope] {
			continue
		}
		seen[r.scope] = true
		leaves := r.scope.Leaves()
		ready := true
		for _, l := range leaves {
			lp := v.tree.Pid(l)
			if q := st.pending[lp]; q == nil || q.scope != r.scope {
				ready = false
				break
			}
		}
		if ready {
			v.completeStep(st, r.scope, leaves)
		}
	}
}

// completeStep charges and finishes one super^i-step.
func (v *Virtual) completeStep(st *runState, scope *model.Machine, leaves []*model.Machine) {
	pids := make([]int, len(leaves))
	inScope := make(map[int]bool, len(leaves))
	for i, l := range leaves {
		pids[i] = v.tree.Pid(l)
		inScope[pids[i]] = true
	}
	sort.Ints(pids)

	start := 0.0
	works := make(map[int]float64, len(pids))
	label := ""
	var outbox []pendingMsg
	for _, pid := range pids {
		r := st.pending[pid]
		if st.clocks[pid] > start {
			start = st.clocks[pid]
		}
		works[pid] = r.work
		if label == "" {
			label = r.label
		}
		outbox = append(outbox, r.outbox...)
	}
	st.undelivered = append(st.undelivered, outbox...)

	// Deliverable: both endpoints inside the scope.
	var deliver []pendingMsg
	rest := st.undelivered[:0]
	for _, m := range st.undelivered {
		if inScope[m.src] && inScope[m.dst] {
			deliver = append(deliver, m)
		} else {
			rest = append(rest, m)
		}
	}
	st.undelivered = rest

	flows := make([]cost.Flow, len(deliver))
	for i, m := range deliver {
		flows[i] = cost.Flow{Src: m.src, Dst: m.dst, Bytes: len(m.payload)}
	}
	res := v.fab.StepCost(scope, label, flows, works)
	end := start + res.Time

	// Stage inboxes in sender/seq order.
	sort.SliceStable(deliver, func(a, b int) bool {
		if deliver[a].src != deliver[b].src {
			return deliver[a].src < deliver[b].src
		}
		return deliver[a].seq < deliver[b].seq
	})
	for _, m := range deliver {
		v.inboxes[m.dst] = append(v.inboxes[m.dst], Message{Src: m.src, Tag: m.tag, Payload: m.payload})
	}

	st.steps = append(st.steps, trace.Step{
		Index:        len(st.steps),
		Label:        label,
		ScopeLabel:   scope.Label(),
		ScopeName:    scope.Name,
		Level:        scope.Level,
		Participants: len(pids),
		W:            res.W,
		H:            res.H,
		Comm:         res.Comm,
		Sync:         res.Sync,
		Time:         res.Time,
		Flows:        res.Flows,
		Bytes:        res.Bytes,
		GatingPid:    res.GatingPid,
		Imbalance:    res.Imbalance,
		Start:        start,
		End:          end,
	})

	for _, pid := range pids {
		st.clocks[pid] = end
		r := st.pending[pid]
		st.pending[pid] = nil
		r.resume <- nil
	}
}
