package hbsp

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"hbspk/internal/cost"
	"hbspk/internal/fabric"
	"hbspk/internal/model"
	"hbspk/internal/obsv"
	"hbspk/internal/trace"
)

// Virtual executes programs under the HBSP^k cost model on a
// deterministic virtual clock. Processors run as goroutines for
// programming-model fidelity, but every cost — computation,
// communication, synchronization — is charged by the fabric, so two runs
// with the same machine, program, fabric seed and chaos plan produce
// identical reports.
type Virtual struct {
	tree *model.Tree
	fab  *fabric.Fabric

	// MaxSteps, when positive, aborts the run with ErrStepLimit once
	// that many supersteps have completed — a guard against unbounded
	// iteration in user programs (the engine otherwise runs as long as
	// the program does).
	MaxSteps int

	// Chaos, when non-nil, injects the plan's faults: crash-stops at
	// sync boundaries, per-message drop/duplicate/delay, and straggler
	// bursts multiplying charged work. Composable with the fabric's
	// noise model.
	Chaos *fabric.ChaosPlan

	// DetectFactor scales the predicted step cost into the failure
	// detection deadline charged to each survivor when it learns of a
	// dead peer (zero means the default of 3). Repeated detections by
	// the same processor back off exponentially, like a real failure
	// detector widening its timeout.
	DetectFactor float64

	// Ckpt, when non-nil together with a positive CheckpointEvery,
	// commits every processor's Save()d state to the store at every
	// CheckpointEvery-th completed global superstep. Commit cost is
	// charged per Config.CheckpointByte so the analytic predictions
	// stay honest. Rerunning with the same store lets programs resume
	// from the last checkpointed barrier via Restore.
	Ckpt            *CheckpointStore
	CheckpointEvery int

	// Obsv, when non-nil, receives structured spans and metrics for the
	// run: superstep spans carrying the model's predicted T_i alongside
	// the charged time, per-processor barrier waits, sampled message
	// deliveries, and chaos injections. Times are on the virtual clock.
	Obsv *obsv.Recorder

	// Verify arms the happens-before checker (DESIGN.md §5.3): every
	// message carries the sender's vector clock and a payload checksum,
	// barriers join clocks, and a read that is not ordered after its
	// send — or a payload that changed under a reader — surfaces as a
	// typed *ErrNondeterminism. Stamping is charged zero cost.
	Verify bool

	// ReorgEvery, when positive, rebalances the machine tree at every
	// ReorgEvery-th completed global superstep (DESIGN.md §5.7): the
	// engine folds each processor's measured effective compute slowdown
	// into an EWMA estimate and, at the cut, applies the seeded
	// model.PlanReorg — leaves permuted across slots, shares re-derived
	// — in place. The tree is mutated; use Tree.SaveLayout/RestoreLayout
	// (RunSchedules does) to replay from the pristine layout. ReorgSeed
	// drives the plan's tie-breaking; equal seeds give equal schedules.
	ReorgEvery int
	ReorgSeed  int64
	// ReorgAlpha overrides the estimate EWMA smoothing factor (0 means
	// model.DefaultAlpha).
	ReorgAlpha float64

	// Plan, when set, receives the planner callbacks of DESIGN.md §5.9:
	// GlobalBarrier after every completed root-scope barrier (the
	// refinement-commit point) and TreeChanged after a reorg or
	// membership change — both fired from the coordinator while all
	// live processors are parked, so the hook may republish collective
	// selections without desynchronizing an in-flight collective.
	Plan PlanHook

	// inboxes stages delivered messages per pid between the engine's
	// completeStep and the owning processor's pickup after resume; the
	// resume channel orders the handoff. inmetas carries the parallel
	// verification records when Verify is set.
	inboxes [][]Message
	inmetas [][]msgMeta
	// inboxFree recycles spent inbox slices donated back through sync
	// requests, so steady-state staging reuses backings instead of
	// growing fresh ones every superstep.
	inboxFree [][]Message

	// Schedule-exploration state, driven by RunSchedules: permIndex 0
	// replays the canonical (src, seq) delivery order, higher indexes a
	// seeded permutation of each superstep's deliveries. rec, when
	// non-nil, records the run's observable state for fingerprinting.
	permIndex int
	permSeed  int64
	rec       *runRecord
}

// ErrStepLimit reports that a run exceeded the engine's MaxSteps.
var ErrStepLimit = errors.New("hbsp: superstep limit exceeded")

// NewVirtual returns an engine for the tree charging costs via fab,
// which must have been built for the same tree.
func NewVirtual(t *model.Tree, fab *fabric.Fabric) *Virtual {
	return &Virtual{tree: t, fab: fab}
}

// RunVirtual is a convenience wrapper: build a fabric with cfg and run.
func RunVirtual(t *model.Tree, cfg fabric.Config, prog Program) (*trace.Report, error) {
	return NewVirtual(t, fabric.New(t, cfg)).Run(prog)
}

// RunVirtualChaos is RunVirtual under a fault-injection plan.
func RunVirtualChaos(t *model.Tree, cfg fabric.Config, plan *fabric.ChaosPlan, prog Program) (*trace.Report, error) {
	eng := NewVirtual(t, fabric.New(t, cfg))
	eng.Chaos = plan
	return eng.Run(prog)
}

// ErrDesync reports a malformed SPMD program: processors blocked on
// barriers that can never complete, or a processor exiting while others
// still wait on a scope containing it.
var ErrDesync = errors.New("hbsp: processors desynchronized")

type pendingMsg struct {
	src, dst, tag int
	payload       []byte
	seq           int

	// Chaos bookkeeping: fate is computed once, at the first step the
	// message would otherwise deliver; holdUntil parks a delayed
	// message until the given completed-step count.
	fated     bool
	drop, dup bool
	holdUntil int

	// Verification stamp: the sender's vector clock and payload
	// checksum at Send time (Verify mode only).
	stamp VClock
	sum   uint64
}

type vrequest struct {
	pid    int
	kind   byte // 's' sync, 'd' done
	scope  *model.Machine
	label  string
	work   float64
	outbox []pendingMsg
	saves  map[string][]byte
	err    error
	resume chan error

	// ord is the processor's 0-based sync ordinal, stamped by the
	// engine when the request is handled.
	ord int

	// spent donates the requester's previous inbox slice back to the
	// engine. It may be reclaimed only on the success path: a sync that
	// resumes with an error leaves the processor's delivered window
	// readable (fault-tolerant programs re-read Moves after
	// ErrPeerFailed).
	spent []Message
}

// vctx is the per-processor Ctx of the virtual engine.
type vctx struct {
	pid    int
	leaf   *model.Machine
	eng    *Virtual
	reqs   chan<- *vrequest
	resume chan error

	work   float64
	outbox []pendingMsg
	inbox  []Message
	seq    int
	// clock is this processor's virtual time as of its last resume,
	// staged by the engine while the processor is parked (see obsvNow).
	clock float64

	// failedView is the dead-pid set this processor has acknowledged,
	// staged by the engine before each resume; membersView is likewise
	// the active-pid set it knows (its starting membership plus every
	// acknowledged join).
	failedView  []int
	membersView []int
	// ckptStage holds Save()d state until the next Sync ships it.
	ckptStage map[string][]byte

	// Verification state (Verify mode): vc is this processor's vector
	// clock, written by the engine while the processor is parked;
	// inmeta parallels inbox; steps counts completed Syncs.
	vc     VClock
	inmeta []msgMeta
	steps  int
}

func (c *vctx) Pid() int             { return c.pid }
func (c *vctx) NProcs() int          { return c.eng.tree.NProcs() }
func (c *vctx) Tree() *model.Tree    { return c.eng.tree }
func (c *vctx) Self() *model.Machine { return c.leaf }
func (c *vctx) Moves() []Message     { return c.inbox }
func (c *vctx) Charge(ops float64) {
	if ops > 0 {
		c.work += ops * c.leaf.CompSlowdown
	}
}

func (c *vctx) Failed() []int { return append([]int(nil), c.failedView...) }

func (c *vctx) Members() []int { return append([]int(nil), c.membersView...) }

func (c *vctx) Save(key string, data []byte) {
	if c.ckptStage == nil {
		c.ckptStage = make(map[string][]byte)
	}
	c.ckptStage[key] = append([]byte(nil), data...)
}

func (c *vctx) Restore(key string) ([]byte, bool) {
	if c.eng.Ckpt == nil {
		return nil, false
	}
	return c.eng.Ckpt.get(c.pid, key)
}

func (c *vctx) Send(dst, tag int, payload []byte) error {
	if dst < 0 || dst >= c.NProcs() {
		return fmt.Errorf("hbsp: send to pid %d of %d", dst, c.NProcs())
	}
	c.seq++
	m := pendingMsg{src: c.pid, dst: dst, tag: tag, payload: payload, seq: c.seq}
	if c.eng.Verify {
		m.stamp = c.vc.clone()
		m.sum = payloadSum(payload)
	}
	c.outbox = append(c.outbox, m)
	return nil
}

func (c *vctx) Sync(scope *model.Machine, label string) error {
	if scope == nil {
		return errors.New("hbsp: Sync with nil scope")
	}
	if c.eng.Verify {
		// The closing barrier ends this superstep's read window: the
		// delivered payloads must still be the bytes that arrived.
		if nd := recheckWindow(c.pid, c.steps, c.inbox, c.inmeta); nd != nil {
			return nd
		}
	}
	req := &vrequest{
		pid: c.pid, kind: 's', scope: scope, label: label,
		work: c.work, outbox: c.outbox, saves: c.ckptStage, resume: c.resume,
		spent: c.inbox,
	}
	c.work = 0
	c.outbox = nil
	c.ckptStage = nil
	c.reqs <- req
	err := <-c.resume
	if err != nil {
		return err
	}
	c.steps++
	c.inbox, c.inmeta = c.eng.takeInbox(c.pid)
	if c.eng.Verify {
		for i, m := range c.inbox {
			if i >= len(c.inmeta) {
				break
			}
			if nd := checkDelivery(c.pid, c.steps, m, c.inmeta[i], c.vc); nd != nil {
				return nd
			}
		}
	}
	return nil
}

// Run executes the program on every processor and returns the run's
// report. The error is the first processor error, or ErrDesync-wrapped
// diagnostics for malformed synchronization. A chaos-injected
// crash-stop is not itself a run error: if the survivors complete, the
// run completes (their view of the failure arrived as ErrPeerFailed
// from Sync, which a fault-tolerant program may absorb).
func (v *Virtual) Run(prog Program) (*trace.Report, error) {
	p := v.tree.NProcs()
	reqs := make(chan *vrequest)
	ctxs := make([]*vctx, p)
	for pid := 0; pid < p; pid++ {
		ctxs[pid] = &vctx{
			pid:    pid,
			leaf:   v.tree.Leaf(pid),
			eng:    v,
			reqs:   reqs,
			resume: make(chan error, 1),
		}
	}
	v.inboxes = make([][]Message, p)
	v.inmetas = make([][]msgMeta, p)
	if v.Verify {
		for pid := 0; pid < p; pid++ {
			ctxs[pid].vc = newVClock(p)
		}
	}
	// Elastic membership: processors with a churn JoinAt fate start
	// dormant and are activated — their goroutine spawned — at the
	// membership cut after that many completed global supersteps.
	dormant := make(map[int]bool)
	for pid := 0; pid < p; pid++ {
		if v.Chaos.JoinStep(pid) > 0 {
			dormant[pid] = true
		}
	}
	spawn := func(pid int) {
		go func(c *vctx) {
			var err error
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("hbsp: processor %d panicked: %v", c.pid, r)
				}
				// Work charged after the last sync is a trailing
				// compute-only step: it extends this processor's clock.
				// Saves staged after the last sync still ride along so
				// the run's final state stays observable.
				reqs <- &vrequest{pid: c.pid, kind: 'd', err: err, work: c.work, saves: c.ckptStage}
			}()
			err = prog(c)
		}(ctxs[pid])
	}
	actives := make([]int, 0, p)
	for pid := 0; pid < p; pid++ {
		if !dormant[pid] {
			actives = append(actives, pid)
		}
	}
	for pid := 0; pid < p; pid++ {
		if !dormant[pid] {
			ctxs[pid].membersView = actives
		}
	}
	for _, pid := range actives {
		spawn(pid)
	}
	return v.coordinate(reqs, ctxs, dormant, spawn, len(actives))
}

// engine-side run state (recreated per Run; Virtual is not reusable
// concurrently but may be reused serially).
type runState struct {
	pending     []*vrequest // by pid, nil = running
	done        []bool
	clocks      []float64
	undelivered []pendingMsg
	steps       []trace.Step
	firstErr    error

	// Fault-tolerance state: syncOrd counts each processor's Sync
	// calls; dead records crash-stopped processors; acked[pid][scope] is the
	// dead set pid has acknowledged on that scope (acks are per scope:
	// a death learned through a subscope sync must still surface on
	// every other scope containing the victim, or nested-scope members
	// would diverge); detectCount drives the detection-deadline
	// backoff; staged holds per-pid checkpoint saves awaiting a commit
	// boundary; globalSteps counts completed root-scope supersteps
	// (the checkpoint cadence).
	syncOrd     []int
	dead        map[int]*failInfo
	acked       []map[*model.Machine]map[int]bool
	detectCount []int
	staged      []map[string][]byte
	globalSteps int

	// Elastic-membership state: dormant pids await their activation
	// cut; joined records activated latecomers (pid -> activation cut)
	// pending acknowledgment; ackedJoin[pid][scope] is the joined set
	// pid has acknowledged on that scope (per scope, mirroring acked:
	// the join notice burns one sync generation on every scope
	// containing the newcomer, for every member including the newcomer
	// itself); knownActive[pid] is pid's membership view.
	dormant     map[int]bool
	joined      map[int]int
	ackedJoin   []map[*model.Machine]map[int]bool
	knownActive []map[int]bool
	spawn       func(pid int)

	// Reorganization state: rer folds measured per-step effective
	// compute slowdowns; epoch counts applied reorganizations. reqs is
	// the coordinator's request channel, threaded here so a reorg cut
	// can drain the exit requests of still-unwinding dead processors
	// before mutating the tree (quiesceDead).
	rer   *model.Reranker
	epoch int
	reqs  chan *vrequest

	// planDead tracks the dead-set size last reported to the PlanHook,
	// so a death between two global barriers surfaces as exactly one
	// TreeChanged (membership-epoch invalidation).
	planDead int

	// running counts live goroutines; activation at a membership cut
	// increments it.
	running int

	// stepSum/stepN track each processor's mean completed step time,
	// the cost model's prediction base for detection deadlines. Per
	// processor, not global: a pid's step sequence is its program
	// order, so the charge stays deterministic even when sibling
	// scopes complete in scheduler-dependent order.
	stepSum []float64
	stepN   []int
}

// equalizeAcks unions the per-scope acknowledgment sets (dead or
// joined) of every processor the skip predicate admits, then writes the
// union back to each of them. Called at a reorganization cut, where
// every live processor is parked: knowledge acquired on one scope
// travels with a leaf that a rebalance moves under another.
func equalizeAcks(sets []map[*model.Machine]map[int]bool, skip func(pid int) bool) {
	union := make(map[*model.Machine]map[int]bool)
	for pid := range sets {
		if skip(pid) {
			continue
		}
		for scope, set := range sets[pid] {
			u := union[scope]
			if u == nil {
				u = make(map[int]bool, len(set))
				union[scope] = u
			}
			for q := range set {
				u[q] = true
			}
		}
	}
	for pid := range sets {
		if skip(pid) {
			continue
		}
		for scope, u := range union {
			if sets[pid] == nil {
				sets[pid] = make(map[*model.Machine]map[int]bool)
			}
			cp := sets[pid][scope]
			if cp == nil {
				cp = make(map[int]bool, len(u))
				sets[pid][scope] = cp
			}
			for q := range u {
				cp[q] = true
			}
		}
	}
}

// recycleSpent reclaims a resumed processor's donated inbox slice for
// the staging free list, zeroing the vacated slots so no payload stays
// reachable. Only the success path calls it: a sync resumed with an
// error keeps its delivered window readable.
func (v *Virtual) recycleSpent(r *vrequest) {
	if r == nil || r.spent == nil {
		return
	}
	s := r.spent
	r.spent = nil
	for i := range s {
		s[i] = Message{}
	}
	v.inboxFree = append(v.inboxFree, s[:0])
}

// inboxes staged for pickup by vctx.Sync after resume.
func (v *Virtual) takeInbox(pid int) ([]Message, []msgMeta) {
	in, meta := v.inboxes[pid], v.inmetas[pid]
	v.inboxes[pid] = nil
	v.inmetas[pid] = nil
	return in, meta
}

func (v *Virtual) coordinate(reqs chan *vrequest, ctxs []*vctx, dormant map[int]bool, spawn func(int), active int) (*trace.Report, error) {
	p := v.tree.NProcs()
	st := &runState{
		pending:     make([]*vrequest, p),
		done:        make([]bool, p),
		clocks:      make([]float64, p),
		syncOrd:     make([]int, p),
		dead:        make(map[int]*failInfo),
		acked:       make([]map[*model.Machine]map[int]bool, p),
		detectCount: make([]int, p),
		staged:      make([]map[string][]byte, p),
		stepSum:     make([]float64, p),
		stepN:       make([]int, p),
		dormant:     dormant,
		joined:      make(map[int]int),
		ackedJoin:   make([]map[*model.Machine]map[int]bool, p),
		knownActive: make([]map[int]bool, p),
		spawn:       spawn,
		rer:         model.NewReranker(p, v.ReorgAlpha),
		reqs:        reqs,
	}
	for pid := 0; pid < p; pid++ {
		if dormant[pid] {
			continue
		}
		st.knownActive[pid] = make(map[int]bool, active)
		for q := 0; q < p; q++ {
			if !dormant[q] {
				st.knownActive[pid][q] = true
			}
		}
	}
	st.running = active
	for st.running > 0 {
		req := <-reqs
		switch req.kind {
		case 'd':
			v.handleDone(st, req)
		case 's':
			v.handleSync(st, ctxs, req)
		}
		v.release(st, ctxs)
		if v.MaxSteps > 0 && len(st.steps) >= v.MaxSteps && st.firstErr == nil {
			st.firstErr = fmt.Errorf("%w: %d supersteps completed", ErrStepLimit, len(st.steps))
		}
		// Deadlock / desync detection: every live processor is blocked
		// in a sync and nothing released.
		if st.firstErr == nil && v.stuck(st, st.running) {
			st.firstErr = v.desyncError(st)
			for pid, r := range st.pending {
				if r != nil {
					st.pending[pid] = nil
					r.resume <- st.firstErr
				}
			}
		}
		// On error, unblock any processor that syncs afterwards.
		if st.firstErr != nil {
			for pid, r := range st.pending {
				if r != nil {
					st.pending[pid] = nil
					r.resume <- st.firstErr
				}
			}
		}
	}
	total := 0.0
	for _, c := range st.clocks {
		if c > total {
			total = c
		}
	}
	rep := &trace.Report{Steps: st.steps, Total: total}
	return rep, st.firstErr
}

// handleDone records one processor goroutine's exit: its program
// returned (normally, with an error, or unwinding a crash/leave).
func (v *Virtual) handleDone(st *runState, req *vrequest) {
	st.done[req.pid] = true
	st.clocks[req.pid] += req.work
	v.stageSaves(st, req.pid, req.saves)
	st.running--
	if req.err != nil && st.firstErr == nil &&
		!errors.Is(req.err, errCrashStop) && !errors.Is(req.err, errLeave) {
		st.firstErr = req.err
	}
}

// quiesceDead blocks until every dead processor's goroutine has exited,
// draining its remaining requests meanwhile. A crash victim is resumed
// with its error and then unwinds user code — code that may read the
// tree (fault-tolerant collectives walk scope leaves to report their
// live view) — so the coordinator must not rebalance the tree while a
// corpse is still running. Safe to block here: at a completed global
// barrier every live processor is parked, so the only goroutines able
// to send requests are the unwinding dead, and their syncs resolve
// immediately (a dead requester never parks).
func (v *Virtual) quiesceDead(st *runState, ctxs []*vctx) {
	for {
		unwinding := false
		for pid := range st.dead {
			if !st.done[pid] {
				unwinding = true
				break
			}
		}
		if !unwinding {
			return
		}
		req := <-st.reqs
		switch req.kind {
		case 'd':
			v.handleDone(st, req)
		case 's':
			v.handleSync(st, ctxs, req)
		}
	}
}

// handleSync stamps, fault-checks and (if clean) parks one sync
// request. Three fault paths short-circuit the parking: the requester is
// already dead, the requester crash-stops now, or the requested scope
// holds dead members this requester has not yet been told about.
func (v *Virtual) handleSync(st *runState, ctxs []*vctx, req *vrequest) {
	pid := req.pid
	req.ord = st.syncOrd[pid]
	st.syncOrd[pid]++
	// Checkpoint saves ride every sync request, even one about to fail:
	// they are program state, not step data.
	v.stageSaves(st, pid, req.saves)

	if st.dead[pid] != nil {
		// A dead processor's program swallowed the crash error and
		// synced again; it stays dead.
		req.resume <- fmt.Errorf("%w (p%d)", errCrashStop, pid)
		return
	}
	if v.Chaos.CrashNow(pid, req.ord, st.clocks[pid]) {
		v.crash(st, ctxs, pid, req, "crash-stop")
		return
	}
	if v.Chaos.LeaveNow(pid, req.ord) {
		v.crash(st, ctxs, pid, req, "leave")
		return
	}
	if firstDead, ok := v.unackedDead(st, pid, req.scope); ok {
		v.failSync(st, ctxs, pid, req.scope, firstDead, req)
		return
	}
	if firstJoin, ok := v.unackedJoin(st, pid, req.scope); ok {
		v.joinSync(st, ctxs, pid, req.scope, firstJoin, req)
		return
	}
	st.pending[pid] = req
}

// unackedJoin returns the smallest joined (activated-latecomer) pid in
// scope the given processor has not acknowledged, if any. The requester
// itself counts: a newcomer burns the same notice generation as
// everyone else, which is what keeps per-scope generations aligned.
func (v *Virtual) unackedJoin(st *runState, pid int, scope *model.Machine) (int, bool) {
	if len(st.joined) == 0 {
		return 0, false
	}
	first, found := -1, false
	for _, l := range scope.Leaves() {
		lp := v.tree.Pid(l)
		if _, ok := st.joined[lp]; ok && !st.ackedJoin[pid][scope][lp] {
			if !found || lp < first {
				first, found = lp, true
			}
		}
	}
	return first, found
}

// joinSync delivers ErrPeerJoined for one sync attempt: it acknowledges
// every joined member of the scope for the requester, stages its
// updated membership view, and resumes it with the typed error. Unlike
// failSync there is no detection charge — a join is planned at the cut,
// not detected by a deadline.
func (v *Virtual) joinSync(st *runState, ctxs []*vctx, pid int, scope *model.Machine, firstJoin int, req *vrequest) {
	if st.ackedJoin[pid] == nil {
		st.ackedJoin[pid] = make(map[*model.Machine]map[int]bool)
	}
	if st.ackedJoin[pid][scope] == nil {
		st.ackedJoin[pid][scope] = make(map[int]bool)
	}
	for _, l := range scope.Leaves() {
		lp := v.tree.Pid(l)
		if _, ok := st.joined[lp]; ok {
			st.ackedJoin[pid][scope][lp] = true
			st.knownActive[pid][lp] = true
		}
	}
	ctxs[pid].membersView = sortedPids(st.knownActive[pid])
	req.resume <- &ErrPeerJoined{Pid: firstJoin, Step: st.joined[firstJoin]}
}

// stageSaves folds one processor's Save()d state into the run's staging
// area (awaiting a checkpoint commit boundary) and, when a schedule
// recorder is attached, into the run's observable final state.
func (v *Virtual) stageSaves(st *runState, pid int, saves map[string][]byte) {
	if len(saves) == 0 {
		return
	}
	if st.staged[pid] == nil {
		st.staged[pid] = make(map[string][]byte)
	}
	for k, b := range saves {
		st.staged[pid][k] = b
	}
	if v.rec != nil {
		v.rec.noteSaves(pid, saves)
	}
}

// crash marks the requester dead, discards its outbox (crash-stop loses
// the superstep in progress), purges messages addressed to it, and
// notifies every parked survivor whose scope contains it. An orderly
// leave (cause "leave") rides the same machinery: the departure is
// announced at the boundary and survivors shrink their barriers exactly
// as for a crash, but the victim unwinds with errLeave and the cause
// distinguishes churn from failure in every report.
func (v *Virtual) crash(st *runState, ctxs []*vctx, pid int, req *vrequest, cause string) {
	victimErr := errCrashStop
	fate := "crash"
	if cause == "leave" {
		victimErr, fate = errLeave, "leave"
	}
	v.Obsv.Chaos(fate, req.ord, pid, pid, st.clocks[pid])
	st.dead[pid] = &failInfo{step: req.ord, cause: cause}
	req.resume <- fmt.Errorf("%w (p%d at step %d)", victimErr, pid, req.ord)

	rest := st.undelivered[:0]
	for _, m := range st.undelivered {
		if m.dst != pid {
			rest = append(rest, m)
		}
	}
	st.undelivered = rest

	for waiter, r := range st.pending {
		if r == nil || !v.scopeContains(r.scope, pid) {
			continue
		}
		st.pending[waiter] = nil
		v.failSync(st, ctxs, waiter, r.scope, pid, r)
	}
}

// scopeContains reports whether the scope's leaf set includes pid.
func (v *Virtual) scopeContains(scope *model.Machine, pid int) bool {
	for _, l := range scope.Leaves() {
		if v.tree.Pid(l) == pid {
			return true
		}
	}
	return false
}

// unackedDead returns the smallest dead pid in scope the given
// processor has not acknowledged, if any.
func (v *Virtual) unackedDead(st *runState, pid int, scope *model.Machine) (int, bool) {
	if len(st.dead) == 0 {
		return 0, false
	}
	first, found := -1, false
	for _, l := range scope.Leaves() {
		lp := v.tree.Pid(l)
		if st.dead[lp] != nil && !st.acked[pid][scope][lp] {
			if !found || lp < first {
				first, found = lp, true
			}
		}
	}
	return first, found
}

// failSync delivers ErrPeerFailed for one sync attempt: it acknowledges
// every dead member of the scope for the requester, charges the
// detection deadline to its clock, stages its updated Failed view, and
// resumes it with the typed error.
func (v *Virtual) failSync(st *runState, ctxs []*vctx, pid int, scope *model.Machine, firstDead int, req *vrequest) {
	if st.acked[pid] == nil {
		st.acked[pid] = make(map[*model.Machine]map[int]bool)
	}
	if st.acked[pid][scope] == nil {
		st.acked[pid][scope] = make(map[int]bool)
	}
	for _, l := range scope.Leaves() {
		lp := v.tree.Pid(l)
		if st.dead[lp] != nil {
			st.acked[pid][scope][lp] = true
		}
	}
	st.clocks[pid] += v.detectCharge(st, pid, scope)
	ctxs[pid].clock = st.clocks[pid]
	union := make(map[int]bool)
	for _, perScope := range st.acked[pid] {
		for dp := range perScope {
			union[dp] = true
		}
	}
	ctxs[pid].failedView = sortedPids(union)
	info := st.dead[firstDead]
	req.resume <- &ErrPeerFailed{Pid: firstDead, Step: info.step, Cause: info.cause}
}

// membershipCut activates every dormant processor whose JoinAt point
// has been reached: its clock starts at the cut's virtual time, its
// membership and failure views are seeded, and its goroutine spawns.
// From the next sync on, every member of every scope containing it —
// the newcomer included — burns one notice generation (ErrPeerJoined)
// per scope, which re-aligns barrier generations without renumbering.
func (v *Virtual) membershipCut(st *runState, ctxs []*vctx, now float64) {
	if len(st.dormant) == 0 {
		return
	}
	var act []int
	for pid := range st.dormant {
		if v.Chaos.JoinStep(pid) <= st.globalSteps {
			act = append(act, pid)
		}
	}
	if len(act) == 0 {
		return
	}
	sort.Ints(act)
	for _, pid := range act {
		delete(st.dormant, pid)
	}
	for _, pid := range act {
		st.joined[pid] = st.globalSteps
		ka := make(map[int]bool, len(ctxs))
		for q := range ctxs {
			if !st.dormant[q] {
				ka[q] = true
			}
		}
		st.knownActive[pid] = ka
		ctxs[pid].membersView = sortedPids(ka)
		st.clocks[pid] = now
		ctxs[pid].clock = now
		v.seedAcks(st, ctxs, pid)
		v.Obsv.Chaos("join", st.globalSteps, pid, pid, now)
		st.spawn(pid)
		st.running++
	}
}

// seedAcks copies, per scope, a live old member's acknowledged dead and
// joined sets onto a newcomer. The failure protocol keeps those sets
// identical across all live members of a scope at a global cut, so the
// newcomer inherits exactly the pending notices the old members still
// owe — it will burn the same notice generations they will, keeping
// per-scope sync generations aligned. Scopes with no live old member
// need no seeding: the newcomer's notices there race nobody.
func (v *Virtual) seedAcks(st *runState, ctxs []*vctx, pid int) {
	v.tree.Root.Walk(func(scope *model.Machine) {
		donor := -1
		for _, l := range scope.Leaves() {
			lp := v.tree.Pid(l)
			if lp == pid || st.dormant[lp] || st.dead[lp] != nil || st.joined[lp] == st.globalSteps {
				continue
			}
			if donor < 0 || lp < donor {
				donor = lp
			}
		}
		if donor < 0 {
			return
		}
		if deadSet := st.acked[donor][scope]; len(deadSet) > 0 {
			if st.acked[pid] == nil {
				st.acked[pid] = make(map[*model.Machine]map[int]bool)
			}
			cp := make(map[int]bool, len(deadSet))
			for d := range deadSet {
				cp[d] = true
			}
			st.acked[pid][scope] = cp
		}
		if joinSet := st.ackedJoin[donor][scope]; len(joinSet) > 0 {
			if st.ackedJoin[pid] == nil {
				st.ackedJoin[pid] = make(map[*model.Machine]map[int]bool)
			}
			cp := make(map[int]bool, len(joinSet))
			for j := range joinSet {
				cp[j] = true
			}
			st.ackedJoin[pid][scope] = cp
		}
	})
	union := make(map[int]bool)
	for _, perScope := range st.acked[pid] {
		for dp := range perScope {
			union[dp] = true
		}
	}
	ctxs[pid].failedView = sortedPids(union)
}

// detectCharge is the failure-detection deadline on the virtual clock:
// DetectFactor × the predicted step cost (mean completed step time,
// falling back to the scope's L), doubling per successive detection by
// the same processor — the detector's backoff.
func (v *Virtual) detectCharge(st *runState, pid int, scope *model.Machine) float64 {
	factor := v.DetectFactor
	if factor <= 0 {
		factor = defaultDetectFactor
	}
	predicted := 0.0
	if st.stepN[pid] > 0 {
		predicted = st.stepSum[pid] / float64(st.stepN[pid])
	}
	if predicted < scope.SyncCost {
		predicted = scope.SyncCost
	}
	if predicted <= 0 {
		predicted = 1
	}
	backoff := uint(st.detectCount[pid])
	if backoff > 6 {
		backoff = 6
	}
	st.detectCount[pid]++
	return factor * predicted * float64(int(1)<<backoff)
}

// stuck reports whether all unfinished processors are blocked with no
// releasable scope.
func (v *Virtual) stuck(st *runState, running int) bool {
	blocked := 0
	for pid := range st.pending {
		if st.pending[pid] != nil {
			blocked++
		}
	}
	if blocked == 0 || blocked != running {
		return false
	}
	// A desync also occurs when a processor has exited while another
	// waits on a scope containing it; release() found nothing, so if
	// every live processor is blocked the run cannot progress.
	return true
}

func (v *Virtual) desyncError(st *runState) error {
	var parts []string
	for pid, r := range st.pending {
		if r != nil {
			parts = append(parts, fmt.Sprintf("p%d@%s(%s)", pid, r.scope.Label(), r.label))
		}
	}
	for pid, d := range st.done {
		if d {
			parts = append(parts, fmt.Sprintf("p%d:exited", pid))
		}
	}
	return fmt.Errorf("%w: %s", ErrDesync, strings.Join(parts, " "))
}

// release completes every scope whose entire live leaf set is pending
// on it. Dead processors are excluded: their failure has already been
// acknowledged by every pending member (failSyncReq guarantees a
// processor only parks on a scope whose dead members it has acked).
func (v *Virtual) release(st *runState, ctxs []*vctx) {
	seen := map[*model.Machine]bool{}
	for pid := range st.pending {
		r := st.pending[pid]
		if r == nil || seen[r.scope] {
			continue
		}
		seen[r.scope] = true
		leaves := r.scope.Leaves()
		ready := true
		live := 0
		for _, l := range leaves {
			lp := v.tree.Pid(l)
			if st.dead[lp] != nil || st.dormant[lp] {
				continue
			}
			live++
			if q := st.pending[lp]; q == nil || q.scope != r.scope {
				ready = false
				break
			}
		}
		if ready && live > 0 {
			v.completeStep(st, ctxs, r.scope, leaves)
		}
	}
}

// completeStep charges and finishes one super^i-step over the scope's
// live participants.
func (v *Virtual) completeStep(st *runState, ctxs []*vctx, scope *model.Machine, leaves []*model.Machine) {
	var pids []int
	inScope := make(map[int]bool, len(leaves))
	for _, l := range leaves {
		lp := v.tree.Pid(l)
		inScope[lp] = true
		if st.dead[lp] == nil && !st.dormant[lp] {
			pids = append(pids, lp)
		}
	}
	sort.Ints(pids)

	start := 0.0
	works := make(map[int]float64, len(pids))
	label := ""
	var outbox []pendingMsg
	for _, pid := range pids {
		r := st.pending[pid]
		if st.clocks[pid] > start {
			start = st.clocks[pid]
		}
		slow := v.Chaos.Slowdown(pid, r.ord)
		if slow != 1 {
			v.Obsv.Chaos("straggler", len(st.steps), pid, pid, st.clocks[pid])
		}
		works[pid] = r.work * slow
		if r.work > 0 {
			// Measured effective compute slowdown for the step: the
			// static slowdown times the transient straggler factor, the
			// reorganization subsystem's EWMA sample. Only observed on
			// the success path (a failed sync's work is dropped), which
			// is the same rule the concurrent engine applies — equal
			// seeds produce equal estimate streams on both engines.
			st.rer.Observe(pid, ctxs[pid].leaf.CompSlowdown*slow)
		}
		if label == "" {
			label = r.label
		}
		outbox = append(outbox, r.outbox...)
	}
	st.undelivered = append(st.undelivered, outbox...)

	// Every participant of a completing step resumes successfully, so
	// its previous inbox slice can be reclaimed for this step's staging.
	for _, pid := range pids {
		v.recycleSpent(st.pending[pid])
	}

	// Deliverable: both endpoints inside the scope, destination alive,
	// and any chaos delay expired. Fates are assigned at the first step
	// a message could deliver, so a delayed message is parked exactly
	// once.
	stepIdx := len(st.steps)
	var deliver []pendingMsg
	rest := st.undelivered[:0]
	for _, m := range st.undelivered {
		if !inScope[m.src] || !inScope[m.dst] {
			rest = append(rest, m)
			continue
		}
		if st.dormant[m.dst] {
			rest = append(rest, m) // not yet joined: hold until activation
			continue
		}
		if st.dead[m.dst] != nil {
			continue // addressed to a corpse: drop
		}
		if !m.fated {
			f := v.Chaos.MessageFate(m.src, m.dst, m.seq)
			m.fated, m.drop, m.dup = true, f.Drop, f.Duplicate
			if f.Delay > 0 {
				m.holdUntil = stepIdx + f.Delay
			}
			switch {
			case f.Drop:
				v.Obsv.Chaos("drop", stepIdx, m.src, m.dst, start)
			case f.Duplicate:
				v.Obsv.Chaos("duplicate", stepIdx, m.src, m.dst, start)
			case f.Delay > 0:
				v.Obsv.Chaos("delay", stepIdx, m.src, m.dst, start)
			}
		}
		if m.holdUntil > stepIdx {
			rest = append(rest, m)
			continue
		}
		deliver = append(deliver, m)
	}
	st.undelivered = rest

	// Dropped messages still consumed bandwidth; duplicates consume it
	// twice.
	var flows []cost.Flow
	for _, m := range deliver {
		flows = append(flows, cost.Flow{Src: m.src, Dst: m.dst, Bytes: len(m.payload)})
		if m.dup {
			flows = append(flows, cost.Flow{Src: m.src, Dst: m.dst, Bytes: len(m.payload)})
		}
	}
	res := v.fab.StepCost(scope, label, flows, works)
	end := start + res.Time
	for _, pid := range pids {
		st.stepSum[pid] += res.Time
		st.stepN[pid]++
	}

	if v.Obsv != nil {
		// Predicted T_i(λ) = w_i + g·h + L_{i,j} from the pure model;
		// the measured span (end - start) additionally carries configured
		// overheads, noise, and barrier-entry skew.
		pred := res.W + v.tree.G*res.H + res.Sync
		v.Obsv.Superstep(stepIdx, label, scope.Label(), scope.Level, start, end, pred, int64(res.Bytes))
		v.Obsv.HRelation(res.H)
		for _, pid := range pids {
			// st.clocks[pid] still holds the barrier-entry time; clocks
			// advance to end only when the step resumes below.
			v.Obsv.BarrierWait(stepIdx, pid, scope.Label(), scope.Level, st.clocks[pid], end)
		}
	}

	// Stage inboxes in sender/seq order — except under schedule
	// exploration, where permutation index > 0 replaces the canonical
	// order with a seeded shuffle (deliberately weaker than the model's
	// sorted-delivery guarantee, to surface order-dependent programs).
	if v.permIndex > 0 {
		shuffleDeliver(deliver, v.permSeed, v.permIndex, stepIdx)
	} else {
		sort.SliceStable(deliver, func(a, b int) bool {
			if deliver[a].src != deliver[b].src {
				return deliver[a].src < deliver[b].src
			}
			return deliver[a].seq < deliver[b].seq
		})
	}

	// Barrier edges for the happens-before checker: every participant's
	// post-barrier clock is the join of all participants' clocks, plus
	// its own local event.
	if v.Verify {
		merged := newVClock(len(ctxs))
		for _, pid := range pids {
			merged.join(ctxs[pid].vc)
		}
		for _, pid := range pids {
			vc := merged.clone()
			vc.tick(pid)
			ctxs[pid].vc = vc
		}
	}

	for _, m := range deliver {
		if m.drop {
			continue
		}
		copies := 1
		if m.dup {
			copies = 2
		}
		for i := 0; i < copies; i++ {
			if v.inboxes[m.dst] == nil {
				if n := len(v.inboxFree); n > 0 {
					v.inboxes[m.dst] = v.inboxFree[n-1]
					v.inboxFree = v.inboxFree[:n-1]
				}
			}
			v.Obsv.Delivery(stepIdx, m.src, m.dst, m.tag, int64(len(m.payload)), end)
			v.inboxes[m.dst] = append(v.inboxes[m.dst], Message{Src: m.src, Tag: m.tag, Payload: m.payload})
			if v.Verify {
				v.inmetas[m.dst] = append(v.inmetas[m.dst],
					msgMeta{src: m.src, tag: m.tag, stamp: m.stamp, sum: m.sum})
			}
			if v.rec != nil {
				v.rec.noteDelivery(m.dst, deliveryRec{
					step: stepIdx, src: m.src, tag: m.tag, n: len(m.payload), sum: payloadSum(m.payload),
				})
			}
		}
	}

	// Checkpoint commit at the global cadence: registered state of
	// every live participant is snapshotted, and the per-byte cost
	// lands on each processor's clock past the step's end.
	ckptMax := 0.0
	ckptCost := make(map[int]float64, len(pids))
	if scope == v.tree.Root {
		st.globalSteps++
		if v.Ckpt != nil && v.CheckpointEvery > 0 && st.globalSteps%v.CheckpointEvery == 0 {
			perByte := v.fab.Config().CheckpointByte
			for _, pid := range pids {
				n := v.Ckpt.commit(pid, st.globalSteps, st.staged[pid])
				st.staged[pid] = nil
				c := perByte * float64(n) * v.tree.Leaf(pid).CompSlowdown
				ckptCost[pid] = c
				if c > ckptMax {
					ckptMax = c
				}
			}
		}
		// The completed global barrier is the run's consistent cut: all
		// live processors are parked right here, so the tree can be
		// rebalanced and membership can grow with no program in flight.
		// Reorg strictly precedes activation — a spawned newcomer starts
		// reading the tree immediately, so nothing may mutate it after
		// its goroutine exists. (The dormant leaf was in the tree all
		// along; the plan covers it either way.)
		var planOldFP uint64
		planReorged := false
		if v.Plan != nil {
			planOldFP = v.tree.Fingerprint()
		}
		if v.ReorgEvery > 0 && st.globalSteps%v.ReorgEvery == 0 {
			// Crash victims resumed with their error may still be unwinding
			// user code that reads the tree; wait them out before mutating.
			v.quiesceDead(st, ctxs)
			st.epoch++
			plan := model.PlanReorg(v.tree, st.rer.Estimates(), v.ReorgSeed, st.epoch)
			if rerr := v.tree.Reorganize(plan); rerr != nil {
				if st.firstErr == nil {
					st.firstErr = rerr
				}
			} else {
				planReorged = true
				v.Obsv.Reorg(st.epoch, plan.Moved, end)
				// A rebalance can move a leaf under a scope whose members
				// acknowledged a death or join it only saw elsewhere.
				// Equalize per-scope ack sets across the live processors so
				// a moved-in member never burns a notice generation its new
				// peers do not — the notice protocol's core invariant is
				// that a scope's members hold identical ack sets.
				skip := func(pid int) bool {
					return st.dormant[pid] || st.dead[pid] != nil
				}
				equalizeAcks(st.acked, skip)
				equalizeAcks(st.ackedJoin, skip)
			}
		}
		// Plan hooks fire before membershipCut spawns newcomers: once a
		// joiner's goroutine exists the cut's quiescence is over, and the
		// joiner must find the invalidated cache, not a stale one. A
		// pending activation is itself a membership change.
		if v.Plan != nil {
			joins := false
			for pid := range st.dormant {
				if v.Chaos.JoinStep(pid) <= st.globalSteps {
					joins = true
					break
				}
			}
			if planReorged || joins || len(st.dead) != st.planDead {
				st.planDead = len(st.dead)
				v.Plan.TreeChanged(v.tree, planOldFP)
			}
			v.Plan.GlobalBarrier(v.tree, st.globalSteps)
		}
		v.membershipCut(st, ctxs, end)
	}

	st.steps = append(st.steps, trace.Step{
		Index:        len(st.steps),
		Label:        label,
		ScopeLabel:   scope.Label(),
		ScopeName:    scope.Name,
		Level:        scope.Level,
		Participants: len(pids),
		W:            res.W,
		H:            res.H,
		Comm:         res.Comm,
		Sync:         res.Sync,
		Time:         res.Time,
		Ckpt:         ckptMax,
		Flows:        res.Flows,
		Bytes:        res.Bytes,
		GatingPid:    res.GatingPid,
		Imbalance:    res.Imbalance,
		Start:        start,
		End:          end,
	})

	for _, pid := range pids {
		st.clocks[pid] = end + ckptCost[pid]
		ctxs[pid].clock = st.clocks[pid]
		r := st.pending[pid]
		st.pending[pid] = nil
		r.resume <- nil
	}
}
