package hbsp

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"hbspk/internal/fabric"
	"hbspk/internal/model"
)

// The fault-injection contract, checked on both engines: a chaos-killed
// processor surfaces to every live scope member as a typed
// ErrPeerFailed at the same sync generation — never as a hang, never as
// silently wrong data — and a program that absorbs the error completes
// over the survivors.

// absorbOnce retries a failed sync exactly once when the failure is a
// detected peer death; any other error propagates.
func absorbOnce(c Ctx, label string, err error) error {
	var pf *ErrPeerFailed
	if errors.As(err, &pf) {
		return SyncAll(c, label+"-retry")
	}
	return err
}

func crashProg(steps int, work float64) Program {
	return func(c Ctx) error {
		for s := 0; s < steps; s++ {
			c.Charge(work)
			if err := SyncAll(c, fmt.Sprintf("step%d", s)); err != nil {
				return err
			}
		}
		return nil
	}
}

func TestChaosCrashSurfacesTypedErrorVirtual(t *testing.T) {
	tr := model.UCFTestbedN(4)
	plan := &fabric.ChaosPlan{Crashes: []fabric.Crash{{Pid: 2, AtStep: 1}}}
	_, err := RunVirtualChaos(tr, fabric.PureModel(), plan, crashProg(3, 10))
	var pf *ErrPeerFailed
	if !errors.As(err, &pf) {
		t.Fatalf("run error = %v, want ErrPeerFailed", err)
	}
	if pf.Pid != 2 || pf.Step != 1 {
		t.Errorf("failure = p%d at step %d, want p2 at step 1", pf.Pid, pf.Step)
	}
	if IsCrashStop(err) {
		t.Error("victim's own crash-stop error escaped as the run verdict")
	}
}

func TestChaosCrashSurfacesTypedErrorConcurrent(t *testing.T) {
	tr := model.UCFTestbedN(4)
	eng := NewConcurrent(tr)
	eng.Chaos = &fabric.ChaosPlan{Crashes: []fabric.Crash{{Pid: 2, AtStep: 1}}}
	_, err := eng.Run(crashProg(3, 10))
	var pf *ErrPeerFailed
	if !errors.As(err, &pf) {
		t.Fatalf("run error = %v, want ErrPeerFailed", err)
	}
	if pf.Pid != 2 {
		t.Errorf("failure = p%d, want p2", pf.Pid)
	}
}

// shrinkProg absorbs a peer failure, retries the step, and verifies at
// the end that the survivor's Failed view names exactly the victim.
func shrinkProg(steps, victim int) Program {
	return func(c Ctx) error {
		for s := 0; s < steps; s++ {
			c.Charge(5)
			err := SyncAll(c, fmt.Sprintf("w%d", s))
			if err != nil {
				if err = absorbOnce(c, fmt.Sprintf("w%d", s), err); err != nil {
					return err
				}
			}
		}
		if got := c.Failed(); len(got) != 1 || got[0] != victim {
			return fmt.Errorf("p%d Failed() = %v, want [%d]", c.Pid(), got, victim)
		}
		return nil
	}
}

func TestChaosShrinkThenCompleteVirtual(t *testing.T) {
	tr := model.UCFTestbedN(4)
	plan := &fabric.ChaosPlan{Crashes: []fabric.Crash{{Pid: 1, AtStep: 2}}}
	rep, err := RunVirtualChaos(tr, fabric.PureModel(), plan, shrinkProg(4, 1))
	if err != nil {
		t.Fatalf("fault-tolerant run failed: %v", err)
	}
	last := rep.Steps[len(rep.Steps)-1]
	if last.Participants != 3 {
		t.Errorf("final step participants = %d, want 3 survivors", last.Participants)
	}
}

func TestChaosShrinkThenCompleteConcurrent(t *testing.T) {
	tr := model.UCFTestbedN(4)
	eng := NewConcurrent(tr)
	eng.Chaos = &fabric.ChaosPlan{Crashes: []fabric.Crash{{Pid: 1, AtStep: 2}}}
	rep, err := eng.Run(shrinkProg(4, 1))
	if err != nil {
		t.Fatalf("fault-tolerant run failed: %v", err)
	}
	last := rep.Steps[len(rep.Steps)-1]
	if last.Participants != 3 {
		t.Errorf("final step participants = %d, want 3 survivors", last.Participants)
	}
}

// Two runs under the same seed, noise, and chaos plan must produce
// byte-identical reports: faults are part of the deterministic model.
func TestChaosVirtualRunsAreDeterministic(t *testing.T) {
	tr := model.UCFTestbedN(5)
	plan := &fabric.ChaosPlan{
		Seed:       11,
		Crashes:    []fabric.Crash{{Pid: 3, AtStep: 2}},
		Drop:       0.2,
		Duplicate:  0.2,
		Delay:      0.2,
		DelaySteps: 1,
		Stragglers: []fabric.Straggler{{Pid: 1, FromStep: 0, ToStep: 2, Factor: 3}},
	}
	prog := func(c Ctx) error {
		for s := 0; s < 5; s++ {
			c.Charge(float64(10 * (c.Pid() + 1)))
			if err := c.Send((c.Pid()+1)%c.NProcs(), 1, []byte{byte(s), byte(c.Pid())}); err != nil {
				return err
			}
			err := SyncAll(c, fmt.Sprintf("r%d", s))
			if err != nil {
				if err = absorbOnce(c, fmt.Sprintf("r%d", s), err); err != nil {
					return err
				}
			}
		}
		return nil
	}
	run := func() interface{} {
		rep, err := RunVirtualChaos(tr, fabric.PVMNoisy(0.3, 5), plan, prog)
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		return rep
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("identical chaos runs diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// The detection deadline charged to survivors scales with DetectFactor:
// a paranoid detector (larger factor) costs more virtual time.
func TestChaosDetectionChargeScalesWithFactor(t *testing.T) {
	tr := model.UCFTestbedN(4)
	total := func(factor float64) float64 {
		eng := NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
		eng.Chaos = &fabric.ChaosPlan{Crashes: []fabric.Crash{{Pid: 1, AtStep: 1}}}
		eng.DetectFactor = factor
		rep, err := eng.Run(shrinkProg(3, 1))
		if err != nil {
			t.Fatalf("run with factor %v failed: %v", factor, err)
		}
		return rep.Total
	}
	lo, hi := total(1), total(8)
	if hi <= lo {
		t.Errorf("Total(factor=8) = %v <= Total(factor=1) = %v; detection charge not applied", hi, lo)
	}
}

// fateProbe runs pid 0 sending one tagged byte to pid 1 per step and
// returns, per step, the payloads pid 1 saw after that step's sync.
func fateProbe(t *testing.T, plan *fabric.ChaosPlan, steps int) ([][]byte, int) {
	t.Helper()
	tr := model.UCFTestbedN(2)
	got := make([][]byte, steps)
	prog := func(c Ctx) error {
		for s := 0; s < steps; s++ {
			if c.Pid() == 0 {
				if err := c.Send(1, 5, []byte{0xA0 + byte(s)}); err != nil {
					return err
				}
			}
			if err := SyncAll(c, fmt.Sprintf("s%d", s)); err != nil {
				return err
			}
			if c.Pid() == 1 {
				for _, m := range c.Moves() {
					got[s] = append(got[s], m.Payload...)
				}
			}
		}
		return nil
	}
	rep, err := RunVirtualChaos(tr, fabric.PureModel(), plan, prog)
	if err != nil {
		t.Fatalf("probe run failed: %v", err)
	}
	return got, rep.Steps[0].Flows
}

func TestChaosDropSkipsDeliveryButChargesFlow(t *testing.T) {
	got, flows := fateProbe(t, &fabric.ChaosPlan{Seed: 1, Drop: 1}, 2)
	for s, g := range got {
		if len(g) != 0 {
			t.Errorf("step %d delivered %v despite Drop=1", s, g)
		}
	}
	if flows != 1 {
		t.Errorf("first step flows = %d, want 1: a dropped message still consumed bandwidth", flows)
	}
}

func TestChaosDuplicateDeliversTwice(t *testing.T) {
	got, _ := fateProbe(t, &fabric.ChaosPlan{Seed: 1, Duplicate: 1}, 1)
	if want := []byte{0xA0, 0xA0}; !bytes.Equal(got[0], want) {
		t.Errorf("step 0 delivered %v, want duplicated %v", got[0], want)
	}
}

func TestChaosDelayPostponesDelivery(t *testing.T) {
	// Delay=1 delays every message: the step-s send arrives after the
	// step-s+1 sync.
	got, _ := fateProbe(t, &fabric.ChaosPlan{Seed: 1, Delay: 1, DelaySteps: 1}, 3)
	if len(got[0]) != 0 {
		t.Errorf("step 0 delivered %v, want nothing (delayed)", got[0])
	}
	if want := []byte{0xA0}; !bytes.Equal(got[1], want) {
		t.Errorf("step 1 delivered %v, want %v (step-0 message one step late)", got[1], want)
	}
	if want := []byte{0xA1}; !bytes.Equal(got[2], want) {
		t.Errorf("step 2 delivered %v, want %v", got[2], want)
	}
}

func TestChaosStragglerDilatesChargedWork(t *testing.T) {
	tr := model.Homogeneous(2, 10)
	eng := NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
	eng.Chaos = &fabric.ChaosPlan{Stragglers: []fabric.Straggler{
		{Pid: 0, FromStep: 0, ToStep: 0, Factor: 5},
	}}
	rep, err := eng.Run(crashProg(2, 100))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps[0].W != 500 {
		t.Errorf("straggler step W = %v, want 500 (100 × factor 5)", rep.Steps[0].W)
	}
	if rep.Steps[1].W != 100 {
		t.Errorf("post-burst step W = %v, want 100", rep.Steps[1].W)
	}
}

// A malformed program must still be diagnosed as ErrDesync — not
// misread as a peer failure — even with noise, message fates and a
// straggler burst active.
func desyncProg(c Ctx) error {
	if c.Pid() == 0 { //hbspk:ignore pidtaint (deliberate desync: the program under test must be diagnosed as ErrDesync)
		return nil // exits without syncing; the others wait forever
	}
	for s := 0; s < 2; s++ {
		if err := SyncAll(c, "lockstep"); err != nil {
			return err
		}
	}
	return nil
}

func TestChaosDesyncStillDetectedVirtual(t *testing.T) {
	tr := model.UCFTestbedN(3)
	plan := &fabric.ChaosPlan{
		Seed: 3, Drop: 0.1,
		Stragglers: []fabric.Straggler{{Pid: 1, FromStep: 0, ToStep: 9, Factor: 4}},
	}
	_, err := RunVirtualChaos(tr, fabric.PVMNoisy(0.2, 7), plan, desyncProg)
	if !errors.Is(err, ErrDesync) {
		t.Fatalf("run error = %v, want ErrDesync", err)
	}
	var pf *ErrPeerFailed
	if errors.As(err, &pf) {
		t.Errorf("desync misdiagnosed as peer failure: %v", err)
	}
}

func TestChaosDesyncStillDetectedConcurrent(t *testing.T) {
	tr := model.UCFTestbedN(3)
	eng := NewConcurrent(tr)
	eng.DesyncTimeout = 200 * time.Millisecond
	eng.Chaos = &fabric.ChaosPlan{
		Seed: 3, Drop: 0.1,
		Stragglers: []fabric.Straggler{{Pid: 1, FromStep: 0, ToStep: 9, Factor: 4}},
	}
	_, err := eng.Run(desyncProg)
	if !errors.Is(err, ErrDesync) {
		t.Fatalf("run error = %v, want ErrDesync", err)
	}
}

// An AtTime crash is the virtual-clock flavor: the victim dies at the
// first sync boundary its clock has passed the trigger.
func TestChaosAtTimeCrashVirtual(t *testing.T) {
	tr := model.Homogeneous(2, 10)
	plan := &fabric.ChaosPlan{Crashes: []fabric.Crash{{Pid: 1, AtStep: -1, AtTime: 150}}}
	_, err := RunVirtualChaos(tr, fabric.PureModel(), plan, crashProg(5, 100))
	var pf *ErrPeerFailed
	if !errors.As(err, &pf) {
		t.Fatalf("run error = %v, want ErrPeerFailed", err)
	}
	if pf.Pid != 1 {
		t.Errorf("failure pid = %d, want 1", pf.Pid)
	}
}

// ckptProg appends one byte per superstep to its registered state; a
// crash plus a rerun against the same store exercises the full
// save → commit → restore path.
func ckptProg(steps int) Program {
	return func(c Ctx) error {
		var acc []byte
		for s := 0; s < steps; s++ {
			acc = append(acc, byte(s))
			c.Save("acc", acc)
			err := SyncAll(c, fmt.Sprintf("c%d", s))
			if err != nil {
				if err = absorbOnce(c, fmt.Sprintf("c%d", s), err); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

func TestChaosCheckpointCommitRestoreVirtual(t *testing.T) {
	tr := model.UCFTestbedN(2)
	cfg := fabric.PureModel()
	cfg.CheckpointByte = 2
	store := NewCheckpointStore()

	eng := NewVirtual(tr, fabric.New(tr, cfg))
	eng.Chaos = &fabric.ChaosPlan{Crashes: []fabric.Crash{{Pid: 1, AtStep: 3}}}
	eng.Ckpt = store
	eng.CheckpointEvery = 2
	rep, err := eng.Run(ckptProg(5))
	if err != nil {
		t.Fatalf("checkpointed run failed: %v", err)
	}

	// Survivor p0 committed at global steps 2 and 4; the victim's last
	// consistent cut is step 2.
	if got := store.LastStep(0); got != 4 {
		t.Errorf("survivor LastStep = %d, want 4", got)
	}
	if got := store.LastStep(1); got != 2 {
		t.Errorf("victim LastStep = %d, want 2", got)
	}
	if v, ok := store.get(0, "acc"); !ok || !bytes.Equal(v, []byte{0, 1, 2, 3}) {
		t.Errorf("survivor committed acc = %v, %v; want [0 1 2 3]", v, ok)
	}
	if v, ok := store.get(1, "acc"); !ok || !bytes.Equal(v, []byte{0, 1}) {
		t.Errorf("victim committed acc = %v, %v; want [0 1] from the pre-crash cut", v, ok)
	}
	charged := 0
	for _, s := range rep.Steps {
		if s.Ckpt > 0 {
			charged++
		}
	}
	if charged == 0 {
		t.Error("no step carries a checkpoint-commit charge despite CheckpointByte > 0")
	}

	// Recovery: a fresh run against the same store resumes each
	// processor from its last committed cut.
	restored := make([][]byte, 2)
	eng2 := NewVirtual(tr, fabric.New(tr, cfg))
	eng2.Ckpt = store
	eng2.CheckpointEvery = 2
	_, err = eng2.Run(func(c Ctx) error {
		v, ok := c.Restore("acc")
		if !ok {
			return fmt.Errorf("p%d has no checkpoint to restore", c.Pid())
		}
		restored[c.Pid()] = v
		return SyncAll(c, "resume")
	})
	if err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	if !bytes.Equal(restored[0], []byte{0, 1, 2, 3}) || !bytes.Equal(restored[1], []byte{0, 1}) {
		t.Errorf("restored state = %v, want [[0 1 2 3] [0 1]]", restored)
	}
}

func TestChaosCheckpointConcurrent(t *testing.T) {
	tr := model.UCFTestbedN(2)
	store := NewCheckpointStore()
	eng := NewConcurrent(tr)
	eng.Ckpt = store
	eng.CheckpointEvery = 1
	_, err := eng.Run(ckptProg(3))
	if err != nil {
		t.Fatalf("checkpointed run failed: %v", err)
	}
	for pid := 0; pid < 2; pid++ {
		if v, ok := store.get(pid, "acc"); !ok || !bytes.Equal(v, []byte{0, 1, 2}) {
			t.Errorf("p%d committed acc = %v, %v; want [0 1 2]", pid, v, ok)
		}
		if store.LastStep(pid) < 1 {
			t.Errorf("p%d LastStep = %d, want >= 1", pid, store.LastStep(pid))
		}
	}
}

// Message fates hash the same identities in both engines, so a plan
// with drops and duplicates (no delays — those count different clocks)
// yields identical deliveries.
func TestChaosEnginesAgreeOnMessageFates(t *testing.T) {
	tr := model.UCFTestbedN(5)
	sched := buildSchedule(99, 5, 3)
	plan := &fabric.ChaosPlan{Seed: 9, Drop: 0.3, Duplicate: 0.25}
	virt := runSchedule(t, tr, sched, func(prog Program) error {
		_, err := RunVirtualChaos(tr, fabric.PureModel(), plan, prog)
		return err
	})
	conc := runSchedule(t, tr, sched, func(prog Program) error {
		eng := NewConcurrent(tr)
		eng.Chaos = plan
		_, err := eng.Run(prog)
		return err
	})
	for pid := range virt {
		if !bytes.Equal(virt[pid], conc[pid]) {
			t.Errorf("p%d digests differ under identical chaos plan:\nvirtual:    %v\nconcurrent: %v",
				pid, virt[pid], conc[pid])
		}
	}
}
