package hbsp

import (
	"sync"

	"hbspk/internal/model"
	"hbspk/internal/pvm"
)

// ScopeMachine aliases the machine type for the DRMA signatures.
type ScopeMachine = *model.Machine

var drmaRegsMu sync.Mutex

// ctxRegs returns (creating on demand when create is set) the
// registration table of one processor.
func ctxRegs(c Ctx, create bool) map[string]*Reg {
	drmaRegsMu.Lock()
	defer drmaRegsMu.Unlock()
	if drmaRegs.m == nil {
		if !create {
			return nil
		}
		drmaRegs.m = make(map[Ctx]map[string]*Reg)
	}
	regs := drmaRegs.m[c]
	if regs == nil && create {
		regs = make(map[string]*Reg)
		drmaRegs.m[c] = regs
	}
	return regs
}

// drmaFrame is the wire format of DRMA traffic: name, offset, then
// either a payload (put, get reply) or a length (get request), encoded
// with the pvm typed buffer.
type drmaFrame struct{ buf *pvm.Buffer }

func newDRMAFrame(name string, offset int) *drmaFrame {
	f := &drmaFrame{buf: pvm.NewBuffer()}
	f.buf.PackString(name)
	f.buf.PackInt64(int64(offset))
	return f
}

func (f *drmaFrame) payload(p []byte) { f.buf.PackBytes(p) }
func (f *drmaFrame) length(n int)     { f.buf.PackInt64(int64(n)) }
func (f *drmaFrame) bytes() []byte    { return f.buf.Bytes() }

// parseDRMAFrame splits a frame into name, offset and the remaining body
// bytes (a payload for puts/replies, an encoded length for requests).
func parseDRMAFrame(wire []byte) (name string, offset int, body []byte, err error) {
	b := pvm.Wrap(wire)
	name, err = b.UnpackString()
	if err != nil {
		return "", 0, nil, err
	}
	off, err := b.UnpackInt64()
	if err != nil {
		return "", 0, nil, err
	}
	// The body is either a packed byte slice or a packed int64 length;
	// hand the remaining wire bytes back for the caller to interpret.
	rest := wire[len(wire)-b.Remaining():]
	if looksLikeBytes(rest) {
		body, err = b.UnpackBytes()
		if err != nil {
			return "", 0, nil, err
		}
		return name, int(off), body, nil
	}
	return name, int(off), rest, nil
}

// looksLikeBytes peeks at the next type code.
func looksLikeBytes(rest []byte) bool {
	return len(rest) > 0 && rest[0] == pvm.CodeBytes
}

// parseLength decodes a get request's length body.
func parseLength(body []byte) (int, error) {
	v, err := pvm.Wrap(body).UnpackInt64()
	if err != nil {
		return 0, err
	}
	return int(v), nil
}
