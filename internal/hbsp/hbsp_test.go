package hbsp

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"hbspk/internal/fabric"
	"hbspk/internal/model"
	"hbspk/internal/trace"
)

func runPure(t *testing.T, tr *model.Tree, prog Program) *trace.Report {
	t.Helper()
	rep, err := RunVirtual(tr, fabric.PureModel(), prog)
	if err != nil {
		t.Fatalf("RunVirtual: %v", err)
	}
	return rep
}

func TestSinglePassNoSync(t *testing.T) {
	tr := model.UCFTestbedN(4)
	rep := runPure(t, tr, func(c Ctx) error { return nil })
	if rep.Supersteps() != 0 || rep.Total != 0 {
		t.Errorf("empty program: steps=%d total=%v", rep.Supersteps(), rep.Total)
	}
}

func TestMessageAvailableNextSuperstep(t *testing.T) {
	tr := model.UCFTestbedN(2)
	got := make([]string, 2)
	rep := runPure(t, tr, func(c Ctx) error {
		if c.Pid() == 0 {
			if err := c.Send(1, 7, []byte("ping")); err != nil {
				return err
			}
		}
		// Before the sync nothing is visible.
		if len(c.Moves()) != 0 {
			return fmt.Errorf("p%d saw messages before sync", c.Pid())
		}
		if err := SyncAll(c, "step1"); err != nil {
			return err
		}
		if c.Pid() == 1 {
			ms := c.Moves()
			if len(ms) != 1 || ms[0].Src != 0 || ms[0].Tag != 7 {
				return fmt.Errorf("p1 moves = %v", ms)
			}
			got[1] = string(ms[0].Payload)
		}
		return nil
	})
	if got[1] != "ping" {
		t.Errorf("payload = %q, want ping", got[1])
	}
	if rep.Supersteps() != 1 {
		t.Errorf("steps = %d, want 1", rep.Supersteps())
	}
}

func TestStepCostChargedPerEquationOne(t *testing.T) {
	// Two processors, slow r = 3, L = 11: p1 (slow) sends 100 bytes and
	// charges 5 units of work (scaled by comp slowdown 3 → 15).
	root := model.NewCluster("pair", []*model.Machine{
		model.NewLeaf("fast"),
		model.NewLeaf("slow", model.WithComm(3), model.WithComp(3)),
	}, model.WithSync(11))
	tr := model.MustNew(root, 2).Normalize() // g = 2
	rep := runPure(t, tr, func(c Ctx) error {
		if c.Pid() == 1 {
			c.Charge(5)
			if err := c.Send(0, 0, make([]byte, 100)); err != nil {
				return err
			}
		}
		return SyncAll(c, "s")
	})
	if rep.Supersteps() != 1 {
		t.Fatalf("steps = %d, want 1", rep.Supersteps())
	}
	s := rep.Steps[0]
	// w = 5·3 = 15; h = max(3·100 sent, 1·100 recv) = 300; T = 15 + 2·300 + 11.
	if s.W != 15 || s.H != 300 || s.Sync != 11 || s.Time != 15+600+11 {
		t.Errorf("step = %+v, want W=15 H=300 L=11 T=626", s)
	}
	if rep.Total != 626 {
		t.Errorf("total = %v, want 626", rep.Total)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	tr := model.UCFTestbed()
	prog := func(c Ctx) error {
		for round := 0; round < 3; round++ {
			dst := (c.Pid() + round + 1) % c.NProcs()
			if err := c.Send(dst, round, make([]byte, 100*(c.Pid()+1))); err != nil {
				return err
			}
			c.Charge(float64(10 * c.Pid()))
			if err := SyncAll(c, fmt.Sprintf("round%d", round)); err != nil {
				return err
			}
		}
		return nil
	}
	r1 := runPure(t, tr, prog)
	r2 := runPure(t, tr, prog)
	if r1.Total != r2.Total || r1.Supersteps() != r2.Supersteps() {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d", r1.Total, r1.Supersteps(), r2.Total, r2.Supersteps())
	}
	for i := range r1.Steps {
		if r1.Steps[i] != r2.Steps[i] {
			t.Errorf("step %d differs:\n%+v\n%+v", i, r1.Steps[i], r2.Steps[i])
		}
	}
}

func TestMovesOrderedBySenderThenSeq(t *testing.T) {
	tr := model.UCFTestbedN(4)
	runPure(t, tr, func(c Ctx) error {
		if c.Pid() != 0 {
			// Everyone sends two messages to p0, higher pids first by
			// racing — ordering must still come out sorted.
			if err := c.Send(0, 1, []byte{byte(c.Pid()), 1}); err != nil {
				return err
			}
			if err := c.Send(0, 2, []byte{byte(c.Pid()), 2}); err != nil {
				return err
			}
		}
		if err := SyncAll(c, "s"); err != nil {
			return err
		}
		if c.Pid() == 0 {
			ms := c.Moves()
			if len(ms) != 6 {
				return fmt.Errorf("p0 got %d messages, want 6", len(ms))
			}
			want := [][2]byte{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 1}, {3, 2}}
			for i, m := range ms {
				if m.Payload[0] != want[i][0] || m.Payload[1] != want[i][1] {
					return fmt.Errorf("ms[%d] = src %d seq %d, want %v", i, m.Payload[0], m.Payload[1], want[i])
				}
			}
		}
		return nil
	})
}

func TestScopedSyncClusterIndependence(t *testing.T) {
	// Two clusters with very different L: each cluster runs one local
	// superstep; cluster clocks advance independently, then a global
	// sync aligns them.
	a := model.NewCluster("A", []*model.Machine{
		model.NewLeaf("a0"), model.NewLeaf("a1"),
	}, model.WithSync(10))
	b := model.NewCluster("B", []*model.Machine{
		model.NewLeaf("b0"), model.NewLeaf("b1"),
	}, model.WithSync(1000))
	tr := model.MustNew(model.NewCluster("top", []*model.Machine{a, b}, model.WithSync(5000)), 1).Normalize()

	rep := runPure(t, tr, func(c Ctx) error {
		cluster := c.Tree().ScopeAt(c.Self(), 1)
		if err := c.Sync(cluster, "local"); err != nil {
			return err
		}
		return SyncAll(c, "global")
	})
	if rep.Supersteps() != 3 {
		t.Fatalf("steps = %d, want 3 (A local, B local, global)", rep.Supersteps())
	}
	// Global step starts at max(10, 1000) and adds L = 5000.
	if rep.Total != 6000 {
		t.Errorf("total = %v, want 6000", rep.Total)
	}
	var levels []int
	for _, s := range rep.Steps {
		levels = append(levels, s.Level)
	}
	if levels[0] != 1 || levels[1] != 1 || levels[2] != 2 {
		t.Errorf("levels = %v, want [1 1 2]", levels)
	}
}

func TestCrossClusterMessageWaitsForCoveringSync(t *testing.T) {
	a := model.NewCluster("A", []*model.Machine{
		model.NewLeaf("a0"), model.NewLeaf("a1"),
	}, model.WithSync(1))
	b := model.NewCluster("B", []*model.Machine{
		model.NewLeaf("b0"), model.NewLeaf("b1"),
	}, model.WithSync(1))
	tr := model.MustNew(model.NewCluster("top", []*model.Machine{a, b}, model.WithSync(1)), 1).Normalize()
	// pids: a0=0 a1=1 b0=2 b1=3.
	runPure(t, tr, func(c Ctx) error {
		cluster := c.Tree().ScopeAt(c.Self(), 1)
		if c.Pid() == 0 {
			if err := c.Send(2, 0, []byte("wan")); err != nil {
				return err
			}
		}
		if err := c.Sync(cluster, "local"); err != nil {
			return err
		}
		if c.Pid() == 2 && len(c.Moves()) != 0 {
			return errors.New("cross-cluster message delivered by cluster sync")
		}
		if err := SyncAll(c, "global"); err != nil {
			return err
		}
		if c.Pid() == 2 {
			ms := c.Moves()
			if len(ms) != 1 || string(ms[0].Payload) != "wan" {
				return fmt.Errorf("p2 moves = %v", ms)
			}
		}
		return nil
	})
}

func TestSelfSendDeliveredButFree(t *testing.T) {
	tr := model.UCFTestbedN(2)
	rep := runPure(t, tr, func(c Ctx) error {
		if c.Pid() == 0 {
			if err := c.Send(0, 0, []byte("mine")); err != nil {
				return err
			}
		}
		if err := SyncAll(c, "s"); err != nil {
			return err
		}
		if c.Pid() == 0 {
			if len(c.Moves()) != 1 {
				return errors.New("self-send not delivered")
			}
		}
		return nil
	})
	if rep.Steps[0].H != 0 || rep.Steps[0].Bytes != 0 {
		t.Errorf("self-send charged: %+v", rep.Steps[0])
	}
}

func TestDesyncDetected(t *testing.T) {
	tr := model.UCFTestbedN(2)
	_, err := RunVirtual(tr, fabric.PureModel(), func(c Ctx) error {
		if c.Pid() == 0 { //hbspk:ignore pidtaint (deliberate desync under test)
			return SyncAll(c, "s") //hbspk:ignore syncdiscipline (deliberate desync under test)
		}
		return nil
	})
	if !errors.Is(err, ErrDesync) {
		t.Errorf("err = %v, want ErrDesync", err)
	}
}

func TestMismatchedScopesDetected(t *testing.T) {
	a := model.NewCluster("A", []*model.Machine{model.NewLeaf("a0"), model.NewLeaf("a1")}, model.WithSync(1))
	b := model.NewCluster("B", []*model.Machine{model.NewLeaf("b0"), model.NewLeaf("b1")}, model.WithSync(1))
	tr := model.MustNew(model.NewCluster("top", []*model.Machine{a, b}, model.WithSync(1)), 1).Normalize()
	_, err := RunVirtual(tr, fabric.PureModel(), func(c Ctx) error {
		if c.Pid() == 0 { //hbspk:ignore pidtaint (deliberate desync under test)
			return SyncAll(c, "global") //hbspk:ignore syncdiscipline (deliberate desync under test)
		}
		return c.Sync(c.Tree().ScopeAt(c.Self(), 1), "local")
	})
	if !errors.Is(err, ErrDesync) {
		t.Errorf("err = %v, want ErrDesync", err)
	}
}

func TestProgramErrorPropagates(t *testing.T) {
	tr := model.UCFTestbedN(4)
	boom := errors.New("boom")
	_, err := RunVirtual(tr, fabric.PureModel(), func(c Ctx) error {
		if c.Pid() == 2 {
			return boom
		}
		return SyncAll(c, "s")
	})
	if err == nil {
		t.Fatal("program error swallowed")
	}
}

func TestProcessorPanicRecovered(t *testing.T) {
	tr := model.UCFTestbedN(3)
	_, err := RunVirtual(tr, fabric.PureModel(), func(c Ctx) error {
		if c.Pid() == 1 {
			panic("kaput")
		}
		return SyncAll(c, "s")
	})
	if err == nil {
		t.Fatal("panic not reported")
	}
}

func TestSendOutOfRange(t *testing.T) {
	tr := model.UCFTestbedN(2)
	_, err := RunVirtual(tr, fabric.PureModel(), func(c Ctx) error {
		return c.Send(99, 0, nil)
	})
	if err == nil {
		t.Fatal("out-of-range send accepted")
	}
}

func TestEnquiryPrimitives(t *testing.T) {
	tr := model.UCFTestbed()
	runPure(t, tr, func(c Ctx) error {
		if c.NProcs() != 10 {
			return fmt.Errorf("NProcs = %d", c.NProcs())
		}
		if Rank(c) < 0 || Rank(c) >= 10 {
			return fmt.Errorf("rank = %d", Rank(c))
		}
		if Speed(c) < 1 {
			return fmt.Errorf("speed = %v", Speed(c))
		}
		if Share(c) <= 0 || Share(c) >= 1 {
			return fmt.Errorf("share = %v", Share(c))
		}
		if (c.Self() == c.Tree().FastestLeaf()) != Coordinator(c, c.Tree().Root) {
			return errors.New("coordinator mismatch")
		}
		return nil
	})
}

func TestHBSP0SingleProcessor(t *testing.T) {
	tr := model.SingleProcessor()
	rep := runPure(t, tr, func(c Ctx) error {
		c.Charge(42)
		return SyncAll(c, "only")
	})
	if rep.Total != 42 {
		t.Errorf("total = %v, want 42 (no comm, no sync cost)", rep.Total)
	}
}

func TestVirtualReusableSerially(t *testing.T) {
	tr := model.UCFTestbedN(3)
	eng := NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
	for i := 0; i < 3; i++ {
		rep, err := eng.Run(func(c Ctx) error { return SyncAll(c, "s") })
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if rep.Supersteps() != 1 {
			t.Fatalf("run %d: steps = %d", i, rep.Supersteps())
		}
	}
}

func TestConcurrentEngineDeliversSameData(t *testing.T) {
	tr := model.UCFTestbedN(6)
	// Ring exchange over two supersteps; compare the data each pid ends
	// with across engines.
	mkProg := func(sink [][]byte) Program {
		return func(c Ctx) error {
			next := (c.Pid() + 1) % c.NProcs()
			if err := c.Send(next, 0, []byte{byte(c.Pid())}); err != nil {
				return err
			}
			if err := SyncAll(c, "ring1"); err != nil {
				return err
			}
			got := append([]byte(nil), c.Moves()[0].Payload...)
			if err := c.Send(next, 0, append(got, byte(c.Pid()))); err != nil {
				return err
			}
			if err := SyncAll(c, "ring2"); err != nil {
				return err
			}
			sink[c.Pid()] = append([]byte(nil), c.Moves()[0].Payload...)
			return nil
		}
	}
	vOut := make([][]byte, 6)
	if _, err := RunVirtual(tr, fabric.PureModel(), mkProg(vOut)); err != nil {
		t.Fatal(err)
	}
	cOut := make([][]byte, 6)
	if _, err := NewConcurrent(tr).Run(mkProg(cOut)); err != nil {
		t.Fatal(err)
	}
	for pid := range vOut {
		if string(vOut[pid]) != string(cOut[pid]) {
			t.Errorf("pid %d: virtual %v vs concurrent %v", pid, vOut[pid], cOut[pid])
		}
	}
}

func TestConcurrentScopedSync(t *testing.T) {
	tr := model.Figure1Cluster()
	counts := make([]int, tr.NProcs())
	_, err := NewConcurrent(tr).Run(func(c Ctx) error {
		cluster := c.Tree().ScopeAt(c.Self(), 1)
		if cluster != nil && !cluster.IsLeaf() {
			peer := c.Tree().Pid(cluster.Coordinator())
			if err := c.Send(peer, 0, []byte{1}); err != nil {
				return err
			}
			if err := c.Sync(cluster, "local"); err != nil { //hbspk:ignore syncdiscipline (scope-uniform: all leaves of one cluster branch together)
				return err
			}
			counts[c.Pid()] = len(c.Moves())
		}
		return SyncAll(c, "global")
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each cluster coordinator received one message per cluster member
	// (including its own self-send).
	smpCo := tr.Pid(tr.Root.Children[0].Coordinator())
	lanCo := tr.Pid(tr.Root.Children[2].Coordinator())
	if counts[smpCo] != 4 {
		t.Errorf("SMP coordinator received %d, want 4", counts[smpCo])
	}
	if counts[lanCo] != 4 {
		t.Errorf("LAN coordinator received %d, want 4", counts[lanCo])
	}
}

func TestNoisyRunsDifferBySeedOnly(t *testing.T) {
	tr := model.UCFTestbedN(4)
	prog := func(c Ctx) error {
		if err := c.Send((c.Pid()+1)%4, 0, make([]byte, 1000)); err != nil {
			return err
		}
		return SyncAll(c, "s")
	}
	run := func(seed int64) float64 {
		rep, err := RunVirtual(tr, fabric.PVMNoisy(0.2, seed), prog)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Total
	}
	if run(1) != run(1) {
		t.Error("same seed, different totals")
	}
	if run(1) == run(2) {
		t.Error("different seeds, identical totals")
	}
}

func TestVirtualTimeMatchesAnalyticTotal(t *testing.T) {
	// A pure-model run's total must equal the sum of its step times
	// when all processors participate in every step.
	tr := model.UCFTestbed()
	rep := runPure(t, tr, func(c Ctx) error {
		for i := 0; i < 4; i++ {
			if err := c.Send((c.Pid()+i)%c.NProcs(), 0, make([]byte, 512)); err != nil {
				return err
			}
			if err := SyncAll(c, "x"); err != nil {
				return err
			}
		}
		return nil
	})
	sum := 0.0
	for _, s := range rep.Steps {
		sum += s.Time
	}
	if math.Abs(sum-rep.Total) > 1e-9 {
		t.Errorf("total %v != step sum %v", rep.Total, sum)
	}
}
