package hbsp

import "hbspk/internal/model"

// PlanHook is the engines' seam to the auto-tuned collective planner
// (internal/plan, DESIGN.md §5.9). Both engines invoke it only from
// SPMD-quiescent points — moments when every live processor is parked
// at a consistent cut and no collective can be mid-decision — so an
// implementation may republish selection state without desynchronizing
// the supersteps of an in-flight collective:
//
//   - the virtual engine calls it from the coordinator while all
//     processors wait on a completed root-scope barrier;
//   - the concurrent engine calls it from the single cut applier inside
//     a reorg/membership cut window, with all live processors parked
//     between the cut barriers.
//
// Implementations must be safe for concurrent use with the program-side
// planner calls of crashed processors that are still unwinding.
type PlanHook interface {
	// GlobalBarrier fires after a completed global (root-scope) barrier,
	// the engine's refinement-commit point. step is the 1-based count of
	// completed global supersteps this run.
	GlobalBarrier(t *model.Tree, step int)

	// TreeChanged fires after the tree has been rebalanced
	// (Tree.Reorganize) or the membership epoch has changed (a processor
	// died or a dormant one is being activated) at a consistent cut.
	// oldFP is the tree's fingerprint before the mutation; t carries the
	// new one. Cached decisions for either are stale.
	TreeChanged(t *model.Tree, oldFP uint64)
}
