package hbsp

import "fmt"

// Semantic verification (DESIGN.md §5.3): both engines can stamp every
// message with the sender's vector clock and a payload checksum, join
// clocks at every barrier, and check at delivery that
//
//   - the read is ordered after the send by a chain of barrier edges
//     (the happens-before rule: communicated data is only legal to read
//     after the synchronization barrier), and
//   - the payload bytes are exactly what the sender queued (engines may
//     share the sender's bytes, so a sender mutating a buffer after
//     Send races every reader).
//
// Violations surface as a typed *ErrNondeterminism naming the reading
// processor, its superstep, and the buffer's (src, tag) identity. The
// stamping cost is accounted as zero in the cost model: verification is
// a debugging harness, not a protocol the paper's T_i(λ) charges for.

// VClock is a fixed-width vector clock, one component per processor.
type VClock []uint64

// newVClock returns the zero clock for p processors.
func newVClock(p int) VClock { return make(VClock, p) }

// clone returns an independent copy (nil stays nil).
func (v VClock) clone() VClock {
	if v == nil {
		return nil
	}
	return append(VClock(nil), v...)
}

// join folds o into v component-wise (v = max(v, o)).
func (v VClock) join(o VClock) {
	for i := range v {
		if i < len(o) && o[i] > v[i] {
			v[i] = o[i]
		}
	}
}

// tick advances the processor's own component.
func (v VClock) tick(pid int) {
	if pid >= 0 && pid < len(v) {
		v[pid]++
	}
}

// dominates reports v >= o component-wise: every event o has seen, v
// has seen too — the happens-before edge exists.
func (v VClock) dominates(o VClock) bool {
	for i := range o {
		if o[i] > 0 && (i >= len(v) || v[i] < o[i]) {
			return false
		}
	}
	return true
}

// encodeInt64 renders the clock as an []int64 for the pvm wire format.
func (v VClock) encodeInt64() []int64 {
	out := make([]int64, len(v))
	for i, x := range v {
		out[i] = int64(x)
	}
	return out
}

// decodeVClock is the inverse of encodeInt64.
func decodeVClock(raw []int64) VClock {
	out := make(VClock, len(raw))
	for i, x := range raw {
		out[i] = uint64(x)
	}
	return out
}

// ErrNondeterminism reports a read whose outcome depends on message
// timing: Pid is the reading processor, Step its superstep (sync
// ordinal) at the read, and Src/Tag identify the buffer. Detect it with
// errors.As:
//
//	var nd *hbsp.ErrNondeterminism
//	if errors.As(err, &nd) { ... nd.Pid, nd.Src ... }
type ErrNondeterminism struct {
	Pid  int
	Step int
	Src  int
	Tag  int
	// Reason says which discipline broke: a missing barrier edge, or a
	// payload that changed between Send and the reader's window.
	Reason string
}

func (e *ErrNondeterminism) Error() string {
	return fmt.Sprintf("hbsp: nondeterminism at p%d superstep %d (buffer src=%d tag=%d): %s",
		e.Pid, e.Step, e.Src, e.Tag, e.Reason)
}

// payloadSum is FNV-1a over the payload: cheap, allocation-free, and
// stable across engines, so both stamp the same checksum for the same
// bytes.
func payloadSum(p []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range p {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// msgMeta is the verification record delivered alongside one message.
type msgMeta struct {
	src, tag int
	stamp    VClock
	sum      uint64
}

// checkDelivery validates one delivered message against the reader's
// clock: the send must happen-before the read, and the payload must
// still hash to the sender's stamp.
func checkDelivery(pid, step int, m Message, meta msgMeta, reader VClock) *ErrNondeterminism {
	if meta.stamp != nil && !reader.dominates(meta.stamp) {
		return &ErrNondeterminism{Pid: pid, Step: step, Src: meta.src, Tag: meta.tag,
			Reason: "message delivered without a barrier edge from its send"}
	}
	if got := payloadSum(m.Payload); got != meta.sum {
		return &ErrNondeterminism{Pid: pid, Step: step, Src: meta.src, Tag: meta.tag,
			Reason: "payload mutated between Send and delivery"}
	}
	return nil
}

// recheckWindow re-hashes a superstep's inbox at its closing barrier:
// a mismatch means someone rewrote a delivered payload while the
// reader's superstep was still entitled to read it.
func recheckWindow(pid, step int, inbox []Message, metas []msgMeta) *ErrNondeterminism {
	for i, m := range inbox {
		if i >= len(metas) {
			break
		}
		if payloadSum(m.Payload) != metas[i].sum {
			return &ErrNondeterminism{Pid: pid, Step: step, Src: metas[i].src, Tag: metas[i].tag,
				Reason: "payload mutated during the superstep that was reading it"}
		}
	}
	return nil
}
