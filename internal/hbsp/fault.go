package hbsp

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"hbspk/internal/pvm"
)

// The fault model (DESIGN.md §5.2): processors fail by crash-stop —
// they halt at a synchronization boundary, lose whatever that superstep
// had queued, and never act again. Failures are injected by a
// fabric.ChaosPlan and surfaced by both engines through one taxonomy:
//
//   - ErrPeerFailed: a peer of the sync scope is known dead. Every live
//     member of the scope observes the error exactly once, at the same
//     per-scope sync generation, and later Syncs on that scope complete
//     over the survivors only.
//   - ErrTimeout: a detection deadline expired with the peer's fate
//     unknown (partitioned, or message loss exhausted its retries).
//   - ErrDesync: the program itself is malformed SPMD (unchanged from
//     the desync watchdog's contract).

// ErrPeerFailed reports that a scope member is dead: Pid names the
// failed processor, Step the sync ordinal at which it failed, and Cause
// what killed it. Detect it with errors.As:
//
//	var pf *hbsp.ErrPeerFailed
//	if errors.As(err, &pf) { ... pf.Pid ... }
type ErrPeerFailed struct {
	Pid  int
	Step int
	// Cause describes the failure ("crash-stop", "exited", ...).
	Cause string
}

func (e *ErrPeerFailed) Error() string {
	return fmt.Sprintf("hbsp: peer p%d failed at step %d (%s)", e.Pid, e.Step, e.Cause)
}

// ErrPeerJoined reports elastic membership growth: a processor
// activated at the last membership cut is now part of the sync scope.
// Every member of the scope — including the newcomer itself — observes
// the join as this error at the same per-scope sync generation, exactly
// once per join event, which is what keeps barrier generations aligned
// across old and new members without any renumbering. Programs treat it
// like ErrPeerFailed's dual: refresh the membership view (Ctx.Members)
// and retry the Sync.
type ErrPeerJoined struct {
	// Pid is the joined processor (the smallest one when several
	// activated at the same cut; the whole batch is acknowledged at
	// once).
	Pid int
	// Step is the completed-global-barrier count at which it activated.
	Step int
}

func (e *ErrPeerJoined) Error() string {
	return fmt.Sprintf("hbsp: peer p%d joined at global step %d", e.Pid, e.Step)
}

// ErrTimeout is the detection-deadline error, shared with the pvm
// substrate so errors.Is matches across layers.
var ErrTimeout = pvm.ErrTimeout

// errCrashStop is what a chaos-killed processor's own Sync returns: the
// victim's program unwinds with it, and the engines filter it out of
// the run verdict (an injected crash is the experiment, not a program
// bug — the run's outcome is decided by the survivors).
var errCrashStop = errors.New("hbsp: processor crash-stopped by chaos plan")

// IsCrashStop reports whether err is the victim-side crash-stop error.
func IsCrashStop(err error) bool { return errors.Is(err, errCrashStop) }

// errLeave is the victim side of an orderly departure (a churn fate's
// LeaveAt): the leaver's program unwinds with it and the engines filter
// it from the run verdict, exactly like errCrashStop. Survivors see the
// departure as ErrPeerFailed with Cause "leave".
var errLeave = errors.New("hbsp: processor left by churn plan")

// IsLeave reports whether err is the victim-side orderly-leave error.
func IsLeave(err error) bool { return errors.Is(err, errLeave) }

// defaultDetectFactor scales the predicted step cost into a detection
// deadline when the engine's DetectFactor is unset.
const defaultDetectFactor = 3.0

// failInfo is the engine-side record of one dead processor.
type failInfo struct {
	step  int
	cause string
}

// sortedPids returns the keys of a failure map in ascending order.
func sortedPids[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for pid := range m {
		out = append(out, pid)
	}
	sort.Ints(out)
	return out
}

// CheckpointStore holds committed superstep checkpoints: per processor,
// the last committed value of every registered key plus the commit
// ordinal. A store outlives a run — rerun the program with the same
// store and Ctx.Restore hands each processor its last checkpointed
// state, so recovery resumes from the last checkpointed barrier instead
// of from scratch. The store is safe for concurrent use.
type CheckpointStore struct {
	mu        sync.Mutex
	committed map[int]map[string][]byte
	lastStep  map[int]int
}

// NewCheckpointStore returns an empty store.
func NewCheckpointStore() *CheckpointStore {
	return &CheckpointStore{
		committed: make(map[int]map[string][]byte),
		lastStep:  make(map[int]int),
	}
}

// commit folds one processor's staged saves into the committed state,
// returning the number of bytes written. step is the engine's commit
// ordinal for LastStep.
func (s *CheckpointStore) commit(pid, step int, staged map[string][]byte) int {
	if len(staged) == 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.committed[pid]
	if m == nil {
		m = make(map[string][]byte)
		s.committed[pid] = m
	}
	n := 0
	for k, v := range staged {
		m[k] = append([]byte(nil), v...)
		n += len(v)
	}
	s.lastStep[pid] = step
	return n
}

// get returns the committed value for (pid, key).
func (s *CheckpointStore) get(pid int, key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.committed[pid][key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// LastStep returns the commit ordinal of pid's newest checkpoint, or -1
// if the processor has never been checkpointed.
func (s *CheckpointStore) LastStep(pid int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.lastStep[pid]; !ok {
		return -1
	}
	return s.lastStep[pid]
}
