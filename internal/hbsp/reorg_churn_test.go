package hbsp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"hbspk/internal/fabric"
	"hbspk/internal/model"
)

// The elastic-membership and reorganization contract, checked on both
// engines: late joins surface to every scope member — the newcomer
// included — as a typed ErrPeerJoined exactly once per scope per join
// batch; orderly leaves surface as ErrPeerFailed with cause "leave";
// barrier-time rebalancing permutes leaf slots without breaking barrier
// alignment; and identical seeds produce identical reorg schedules.

const (
	ctlTag   = 7 // coordinator -> members: stop flag
	dataTag  = 8 // members -> coordinator: fold contribution
	earlyTag = 9 // message sent to a still-dormant processor
)

// churnObs collects per-processor observations from a churn-tolerant
// program, for assertions after the run.
type churnObs struct {
	mu      sync.Mutex
	joins   map[int]int    // pid -> join notices absorbed
	fails   map[int]int    // pid -> failure notices absorbed
	members map[int][]int  // pid -> final Members()
	failed  map[int][]int  // pid -> final Failed()
	sums    map[int]int64  // pid -> final fold value
	rounds  map[int]int    // pid -> rounds completed
	early   map[int]string // pid -> payload received under earlyTag
	saved   map[int]uint64 // pid -> last committed checkpoint value
	exit    map[int]error  // pid -> error the program unwound with
}

func newChurnObs() *churnObs {
	return &churnObs{
		joins: map[int]int{}, fails: map[int]int{},
		members: map[int][]int{}, failed: map[int][]int{},
		sums: map[int]int64{}, rounds: map[int]int{},
		early: map[int]string{}, saved: map[int]uint64{},
		exit: map[int]error{},
	}
}

func (o *churnObs) noteJoin(pid int) { o.mu.Lock(); o.joins[pid]++; o.mu.Unlock() }
func (o *churnObs) noteFail(pid int) { o.mu.Lock(); o.fails[pid]++; o.mu.Unlock() }

func (o *churnObs) finish(c Ctx, sum int64, rounds int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.members[c.Pid()] = c.Members()
	o.failed[c.Pid()] = c.Failed()
	o.sums[c.Pid()] = sum
	o.rounds[c.Pid()] = rounds
}

// churnCfg tunes churnProg.
type churnCfg struct {
	rounds int
	work   float64
	early  bool // coordinator sends one pre-activation message to earlyTo
	save   bool // checkpoint a per-pid accumulator every round
	ckptEv int  // engine CheckpointEvery when save is set (for commit tracking)
}

// churnProg builds a self-synchronizing iterative workload: processor 0
// coordinates termination by broadcasting a stop flag each round while
// the other members fold data back. Membership notices — ErrPeerFailed
// and ErrPeerJoined — are absorbed by re-sending and retrying the
// barrier, so the loop survives crash-stops, orderly leaves and late
// joins. A newcomer does not know the current round number; it obeys
// the coordinator's stop flag, which is what makes the loop
// self-synchronizing under churn.
func churnProg(cfg churnCfg, obs *churnObs) Program {
	return func(c Ctx) (retErr error) {
		defer func() {
			if retErr != nil {
				obs.mu.Lock()
				obs.exit[c.Pid()] = retErr
				obs.mu.Unlock()
			}
		}()
		root := c.Tree().Root
		var sum int64
		var acc uint64
		done := 0
		stop := false
		if cfg.early && c.Pid() == 0 {
			if err := c.Send(3, earlyTag, []byte("before-activation")); err != nil {
				return err
			}
		}
		for round := 0; !stop; round++ {
			for { // retry loop: one iteration per absorbed notice
				failed := map[int]bool{}
				for _, f := range c.Failed() {
					failed[f] = true
				}
				if c.Pid() == 0 {
					flag := byte(0)
					if round >= cfg.rounds-1 {
						flag = 1
					}
					for _, m := range c.Members() {
						if m != 0 && !failed[m] {
							if err := c.Send(m, ctlTag, []byte{flag}); err != nil {
								return err
							}
						}
					}
				} else {
					if err := c.Send(0, dataTag, []byte{byte(c.Pid())}); err != nil {
						return err
					}
				}
				if cfg.save {
					acc += uint64(c.Pid()*1000 + done)
					var b [8]byte
					binary.BigEndian.PutUint64(b[:], acc)
					c.Save("acc", b[:])
				}
				c.Charge(cfg.work * float64(1+c.Pid()%3))
				err := c.Sync(root, "round")
				if err == nil {
					break
				}
				var pj *ErrPeerJoined
				var pf *ErrPeerFailed
				switch {
				case errors.As(err, &pj):
					obs.noteJoin(c.Pid())
				case errors.As(err, &pf):
					obs.noteFail(c.Pid())
				default:
					return err
				}
			}
			if cfg.save && cfg.ckptEv == 1 {
				// CheckpointEvery=1 commits the staged save at the barrier
				// that just completed.
				obs.mu.Lock()
				obs.saved[c.Pid()] = acc
				obs.mu.Unlock()
			}
			for _, m := range c.Moves() {
				switch {
				case c.Pid() == 0 && m.Tag == dataTag:
					sum += int64(m.Payload[0]) + int64(round)
				case m.Src == 0 && m.Tag == ctlTag:
					stop = m.Payload[0] == 1
				case m.Tag == earlyTag:
					obs.mu.Lock()
					obs.early[c.Pid()] = string(m.Payload)
					obs.mu.Unlock()
				}
			}
			if c.Pid() == 0 {
				stop = round >= cfg.rounds-1
			}
			done++
		}
		obs.finish(c, sum, done)
		return nil
	}
}

// leafPids returns the tree's leaf pids in slot (child) order — the
// structural layout a reorganization permutes. Tree.Leaves() is
// pid-indexed and deliberately stable across reorgs, so it cannot
// observe the permutation.
func leafPids(tr *model.Tree) []int {
	var out []int
	var walk func(m *model.Machine)
	walk = func(m *model.Machine) {
		if m.IsLeaf() {
			out = append(out, tr.Pid(m))
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(tr.Root)
	return out
}

func runElasticVirtual(t *testing.T, tr *model.Tree, plan *fabric.ChaosPlan, every int, seed int64, prog Program) error {
	t.Helper()
	eng := NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
	eng.Chaos = plan
	eng.ReorgEvery = every
	eng.ReorgSeed = seed
	_, err := eng.Run(prog)
	return err
}

func runElasticConcurrent(t *testing.T, tr *model.Tree, plan *fabric.ChaosPlan, every int, seed int64, prog Program) error {
	t.Helper()
	eng := NewConcurrent(tr)
	eng.Chaos = plan
	eng.ReorgEvery = every
	eng.ReorgSeed = seed
	_, err := eng.Run(prog)
	return err
}

// Every member of the root scope — the newcomer included — must absorb
// the join notice exactly once, and every final membership view must
// include the whole batch.
func checkJoinSymmetry(t *testing.T, obs *churnObs, allPids []int, engine string) {
	t.Helper()
	obs.mu.Lock()
	defer obs.mu.Unlock()
	for _, pid := range allPids {
		if got := obs.joins[pid]; got != 1 {
			t.Errorf("%s: p%d absorbed %d join notices, want exactly 1", engine, pid, got)
		}
		if got := obs.members[pid]; !reflect.DeepEqual(got, allPids) {
			t.Errorf("%s: p%d final Members() = %v, want %v", engine, pid, got, allPids)
		}
	}
}

func TestJoinNoticeSymmetricVirtual(t *testing.T) {
	tr := model.UCFTestbedN(4)
	plan := &fabric.ChaosPlan{Churns: []fabric.Churn{{Pid: 3, JoinAt: 2}}}
	obs := newChurnObs()
	if err := runElasticVirtual(t, tr, plan, 0, 0, churnProg(churnCfg{rounds: 6, work: 1}, obs)); err != nil {
		t.Fatalf("run: %v", err)
	}
	checkJoinSymmetry(t, obs, []int{0, 1, 2, 3}, "virtual")
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.rounds[3] == 0 || obs.rounds[3] >= obs.rounds[1] {
		t.Errorf("joiner completed %d rounds, want in [1, %d)", obs.rounds[3], obs.rounds[1])
	}
	// Rounds 0..5 from p1 (pid+round) and p2; the joiner activates after
	// two completed global barriers, so it contributes rounds 2..5.
	want := int64(0)
	for r := 0; r < 6; r++ {
		want += int64(1+r) + int64(2+r)
		if r >= 2 {
			want += int64(3 + r)
		}
	}
	if obs.sums[0] != want {
		t.Errorf("coordinator fold = %d, want %d", obs.sums[0], want)
	}
}

func TestJoinNoticeSymmetricConcurrent(t *testing.T) {
	tr := model.UCFTestbedN(4)
	plan := &fabric.ChaosPlan{Churns: []fabric.Churn{{Pid: 3, JoinAt: 2}}}
	obs := newChurnObs()
	if err := runElasticConcurrent(t, tr, plan, 0, 0, churnProg(churnCfg{rounds: 6, work: 1}, obs)); err != nil {
		t.Fatalf("run: %v", err)
	}
	checkJoinSymmetry(t, obs, []int{0, 1, 2, 3}, "concurrent")
	obs.mu.Lock()
	defer obs.mu.Unlock()
	want := int64(0)
	for r := 0; r < 6; r++ {
		want += int64(1+r) + int64(2+r)
		if r >= 2 {
			want += int64(3 + r)
		}
	}
	if obs.sums[0] != want {
		t.Errorf("coordinator fold = %d, want %d (virtual and concurrent must agree)", obs.sums[0], want)
	}
}

// A message sent to a processor that has not activated yet is held and
// delivered at the first shared superstep after its activation, on both
// engines.
func TestMessageToDormantHeldUntilActivation(t *testing.T) {
	for _, engine := range []string{"virtual", "concurrent"} {
		t.Run(engine, func(t *testing.T) {
			tr := model.UCFTestbedN(4)
			plan := &fabric.ChaosPlan{Churns: []fabric.Churn{{Pid: 3, JoinAt: 2}}}
			obs := newChurnObs()
			prog := churnProg(churnCfg{rounds: 6, work: 1, early: true}, obs)
			var err error
			if engine == "virtual" {
				err = runElasticVirtual(t, tr, plan, 0, 0, prog)
			} else {
				err = runElasticConcurrent(t, tr, plan, 0, 0, prog)
			}
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			obs.mu.Lock()
			defer obs.mu.Unlock()
			if got := obs.early[3]; got != "before-activation" {
				t.Errorf("joiner received %q under earlyTag, want the held pre-activation message", got)
			}
		})
	}
}

// An orderly leave surfaces to survivors as ErrPeerFailed with cause
// "leave" and to the leaver itself as an IsLeave error; the run
// completes over the remaining members.
func TestLeaveOrderly(t *testing.T) {
	for _, engine := range []string{"virtual", "concurrent"} {
		t.Run(engine, func(t *testing.T) {
			tr := model.UCFTestbedN(4)
			plan := &fabric.ChaosPlan{Churns: []fabric.Churn{{Pid: 2, LeaveAt: 3}}}
			obs := newChurnObs()
			prog := churnProg(churnCfg{rounds: 6, work: 1}, obs)
			var err error
			if engine == "virtual" {
				err = runElasticVirtual(t, tr, plan, 0, 0, prog)
			} else {
				err = runElasticConcurrent(t, tr, plan, 0, 0, prog)
			}
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			obs.mu.Lock()
			defer obs.mu.Unlock()
			if !IsLeave(obs.exit[2]) {
				t.Errorf("leaver unwound with %v, want an IsLeave error", obs.exit[2])
			}
			for _, pid := range []int{0, 1, 3} {
				if got := obs.fails[pid]; got != 1 {
					t.Errorf("survivor p%d absorbed %d failure notices, want 1", pid, got)
				}
				if got := obs.failed[pid]; !reflect.DeepEqual(got, []int{2}) {
					t.Errorf("survivor p%d Failed() = %v, want [2]", pid, got)
				}
				if _, finished := obs.members[pid]; !finished {
					t.Errorf("survivor p%d did not finish", pid)
				}
			}
		})
	}
}

// A crash-stop landing inside a reorganization epoch still surfaces to
// every survivor at the same barrier generation: everyone absorbs
// exactly one notice and the run completes on the rebalanced tree.
func TestCrashInsideReorgEpoch(t *testing.T) {
	for _, engine := range []string{"virtual", "concurrent"} {
		t.Run(engine, func(t *testing.T) {
			tr := model.UCFTestbedN(6)
			plan := &fabric.ChaosPlan{
				Crashes:    []fabric.Crash{{Pid: 4, AtStep: 4}},
				Stragglers: []fabric.Straggler{{Pid: 0, FromStep: 0, ToStep: 20, Factor: 6}},
			}
			obs := newChurnObs()
			prog := churnProg(churnCfg{rounds: 9, work: 1}, obs)
			var err error
			if engine == "virtual" {
				err = runElasticVirtual(t, tr, plan, 3, 42, prog)
			} else {
				err = runElasticConcurrent(t, tr, plan, 3, 42, prog)
			}
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			obs.mu.Lock()
			defer obs.mu.Unlock()
			for _, pid := range []int{0, 1, 2, 3, 5} {
				if got := obs.fails[pid]; got != 1 {
					t.Errorf("survivor p%d absorbed %d failure notices, want 1", pid, got)
				}
				if got := obs.failed[pid]; !reflect.DeepEqual(got, []int{4}) {
					t.Errorf("survivor p%d Failed() = %v, want [4]", pid, got)
				}
			}
		})
	}
}

// Sustained stragglers must change the ranking: the rebalanced leaf
// order differs from the static one, and equal seeds reproduce the
// exact same schedule (reports and final layout).
func TestReorgRebalancesAndIsDeterministic(t *testing.T) {
	tr := model.UCFTestbedN(8)
	before := leafPids(tr)
	layout := tr.SaveLayout()
	plan := &fabric.ChaosPlan{
		Stragglers: []fabric.Straggler{{Pid: 0, FromStep: 0, ToStep: 40, Factor: 10}},
	}
	run := func() (*churnObs, []int, error) {
		tr.RestoreLayout(layout)
		obs := newChurnObs()
		err := runElasticVirtual(t, tr, plan, 2, 42, churnProg(churnCfg{rounds: 10, work: 2}, obs))
		return obs, leafPids(tr), err
	}
	obs1, after1, err := run()
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	if reflect.DeepEqual(before, after1) {
		t.Errorf("leaf order unchanged by reorg under a 10x straggler on the fastest leaf: %v", after1)
	}
	obs2, after2, err := run()
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if !reflect.DeepEqual(after1, after2) {
		t.Errorf("same seed, different final layouts: %v vs %v", after1, after2)
	}
	if obs1.sums[0] != obs2.sums[0] {
		t.Errorf("same seed, different folds: %d vs %d", obs1.sums[0], obs2.sums[0])
	}
	tr.RestoreLayout(layout)
}

// Both engines must agree on the reorganization schedule: the same
// chaos plan and seed produce the same final leaf order and the same
// fold, starting from identical clones.
func TestReorgVirtualConcurrentAgree(t *testing.T) {
	base := model.UCFTestbedN(8)
	plan := &fabric.ChaosPlan{
		Stragglers: []fabric.Straggler{{Pid: 0, FromStep: 0, ToStep: 40, Factor: 8}},
		Churns:     []fabric.Churn{{Pid: 7, JoinAt: 2}},
	}
	trV := base.Clone()
	obsV := newChurnObs()
	if err := runElasticVirtual(t, trV, plan, 2, 42, churnProg(churnCfg{rounds: 8, work: 2}, obsV)); err != nil {
		t.Fatalf("virtual: %v", err)
	}
	trC := base.Clone()
	obsC := newChurnObs()
	if err := runElasticConcurrent(t, trC, plan, 2, 42, churnProg(churnCfg{rounds: 8, work: 2}, obsC)); err != nil {
		t.Fatalf("concurrent: %v", err)
	}
	if v, c := leafPids(trV), leafPids(trC); !reflect.DeepEqual(v, c) {
		t.Errorf("final layouts diverge: virtual %v vs concurrent %v", v, c)
	}
	if obsV.sums[0] != obsC.sums[0] {
		t.Errorf("folds diverge: virtual %d vs concurrent %d", obsV.sums[0], obsC.sums[0])
	}
	checkJoinSymmetry(t, obsV, []int{0, 1, 2, 3, 4, 5, 6, 7}, "virtual")
	checkJoinSymmetry(t, obsC, []int{0, 1, 2, 3, 4, 5, 6, 7}, "concurrent")
}

// Delivery-order permutations must not leak into a reorganizing,
// churning run: every replay fingerprint agrees, and the caller's tree
// comes back in its pristine layout.
func TestRunSchedulesAgreeUnderChurnAndReorg(t *testing.T) {
	tr := model.UCFTestbedN(6)
	pristine := leafPids(tr)
	eng := NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
	eng.Chaos = &fabric.ChaosPlan{
		Stragglers: []fabric.Straggler{{Pid: 1, FromStep: 0, ToStep: 20, Factor: 5}},
		Churns:     []fabric.Churn{{Pid: 5, JoinAt: 2}, {Pid: 2, LeaveAt: 5}},
	}
	eng.ReorgEvery = 3
	eng.ReorgSeed = 7
	obs := newChurnObs()
	set, err := eng.RunSchedules(churnProg(churnCfg{rounds: 8, work: 1}, obs), 3, 99)
	if err != nil {
		t.Fatalf("RunSchedules: %v", err)
	}
	if !set.Agree() {
		t.Errorf("replays diverge under churn+reorg: %s", set.Diff())
	}
	if got := leafPids(tr); !reflect.DeepEqual(got, pristine) {
		t.Errorf("tree layout not restored after RunSchedules: %v, want %v", got, pristine)
	}
}

// Checkpoints must survive a membership change in both directions: a
// leaver's last committed state stays restorable (shrunk) and a
// joiner's post-activation state commits like anyone else's (grown).
func TestCheckpointAcrossMembershipChange(t *testing.T) {
	for _, engine := range []string{"virtual", "concurrent"} {
		t.Run(engine, func(t *testing.T) {
			tr := model.UCFTestbedN(4)
			layout := tr.SaveLayout()
			store := NewCheckpointStore()
			plan := &fabric.ChaosPlan{Churns: []fabric.Churn{
				{Pid: 3, JoinAt: 2},
				{Pid: 2, LeaveAt: 4},
			}}
			obs := newChurnObs()
			prog := churnProg(churnCfg{rounds: 6, work: 1, save: true, ckptEv: 1}, obs)
			var err error
			if engine == "virtual" {
				eng := NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
				eng.Chaos = plan
				eng.Ckpt = store
				eng.CheckpointEvery = 1
				_, err = eng.Run(prog)
			} else {
				eng := NewConcurrent(tr)
				eng.Chaos = plan
				eng.Ckpt = store
				eng.CheckpointEvery = 1
				_, err = eng.Run(prog)
			}
			if err != nil {
				t.Fatalf("churn run: %v", err)
			}
			obs.mu.Lock()
			want := make(map[int]uint64, len(obs.saved))
			for pid, v := range obs.saved {
				want[pid] = v
			}
			obs.mu.Unlock()
			for _, pid := range []int{0, 1, 2, 3} {
				if _, ok := want[pid]; !ok {
					t.Fatalf("p%d committed no checkpoints", pid)
				}
				if store.LastStep(pid) <= 0 {
					t.Fatalf("store has no commit ordinal for p%d", pid)
				}
			}

			// Recovery run: full membership, no churn, same store. Every
			// processor — the departed p2 and the joiner p3 included — must
			// restore exactly the value it last committed.
			tr.RestoreLayout(layout)
			restored := make([]uint64, tr.NProcs())
			var mu sync.Mutex
			recovery := func(c Ctx) error {
				b, ok := c.Restore("acc")
				if !ok {
					return fmt.Errorf("p%d: no committed state to restore", c.Pid())
				}
				mu.Lock()
				restored[c.Pid()] = binary.BigEndian.Uint64(b)
				mu.Unlock()
				return SyncAll(c, "recovered")
			}
			if engine == "virtual" {
				eng := NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
				eng.Ckpt = store
				_, err = eng.Run(recovery)
			} else {
				eng := NewConcurrent(tr)
				eng.Ckpt = store
				_, err = eng.Run(recovery)
			}
			if err != nil {
				t.Fatalf("recovery run: %v", err)
			}
			for pid, w := range want {
				if restored[pid] != w {
					t.Errorf("p%d restored %d, want last committed %d", pid, restored[pid], w)
				}
			}
		})
	}
}

// TestChurnReorgSoakSeeded is the CI smoke (check.sh runs it under
// -race): seeded churn schedules with joins, leaves and a straggler
// burst, reorganizing every third barrier, on both engines. The virtual
// engine must reproduce itself bit-for-bit; the concurrent engine must
// agree with it on the fold and the final layout.
func TestChurnReorgSoakSeeded(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			base := model.UCFTestbedN(8)
			plan := &fabric.ChaosPlan{
				Seed:   seed,
				Churns: fabric.SeededChurn(seed, 8, 2, 2, 4),
				Stragglers: []fabric.Straggler{
					{Pid: 1, FromStep: 0, ToStep: 30, Factor: 5},
				},
			}
			run := func(engine string) (*churnObs, []int) {
				tr := base.Clone()
				obs := newChurnObs()
				prog := churnProg(churnCfg{rounds: 12, work: 1}, obs)
				var err error
				if engine == "virtual" {
					err = runElasticVirtual(t, tr, plan, 3, seed, prog)
				} else {
					err = runElasticConcurrent(t, tr, plan, 3, seed, prog)
				}
				if err != nil {
					t.Fatalf("%s: %v", engine, err)
				}
				return obs, leafPids(tr)
			}
			obs1, lay1 := run("virtual")
			obs2, lay2 := run("virtual")
			if !reflect.DeepEqual(lay1, lay2) || !reflect.DeepEqual(obs1.sums, obs2.sums) ||
				!reflect.DeepEqual(obs1.members, obs2.members) || !reflect.DeepEqual(obs1.failed, obs2.failed) {
				t.Errorf("virtual runs diverge: layouts %v vs %v, folds %v vs %v",
					lay1, lay2, obs1.sums, obs2.sums)
			}
			obsC, layC := run("concurrent")
			if !reflect.DeepEqual(lay1, layC) {
				t.Errorf("engines diverge on final layout: virtual %v vs concurrent %v", lay1, layC)
			}
			if obs1.sums[0] != obsC.sums[0] {
				t.Errorf("engines diverge on fold: virtual %d vs concurrent %d", obs1.sums[0], obsC.sums[0])
			}
			// Every finisher ends with the same membership and failure view.
			var wantM, wantF []int
			for pid, m := range obs1.members {
				if wantM == nil {
					wantM, wantF = m, obs1.failed[pid]
					continue
				}
				if !reflect.DeepEqual(m, wantM) || !reflect.DeepEqual(obs1.failed[pid], wantF) {
					t.Errorf("p%d view diverges: Members %v / Failed %v, want %v / %v",
						pid, m, obs1.failed[pid], wantM, wantF)
				}
			}
		})
	}
}

// quiesceVictimProg crashes pid 3 at its second Sync and keeps the
// corpse running past the survivors' next reorg cut: the victim sleeps
// across the cut, re-syncs once while dead (the drain must serve it),
// and only then returns. Survivors absorb the failure notice and keep
// going. A reorganization every barrier guarantees the engines hit
// their wait-for-unwinding-corpse path while the victim is still alive.
func quiesceVictimProg(rounds int) Program {
	return func(c Ctx) error {
		root := c.Tree().Root
		for r := 0; r < rounds; r++ {
			c.Charge(10 * float64(c.Pid()+1))
			err := c.Sync(root, "round")
			for err != nil {
				if IsCrashStop(err) {
					time.Sleep(60 * time.Millisecond)
					_ = c.Sync(root, "corpse")
					return err
				}
				var pf *ErrPeerFailed
				if !errors.As(err, &pf) {
					return err
				}
				err = c.Sync(root, "retry")
			}
		}
		return nil
	}
}

func TestReorgQuiescesUnwindingVictim(t *testing.T) {
	plan := &fabric.ChaosPlan{Seed: 5, Crashes: []fabric.Crash{{Pid: 3, AtStep: 1}}}
	t.Run("virtual", func(t *testing.T) {
		tr := model.UCFTestbedN(4)
		eng := NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
		eng.Chaos = plan
		eng.ReorgEvery = 1
		eng.ReorgSeed = 7
		rep, err := eng.Run(quiesceVictimProg(4))
		if err != nil {
			t.Fatalf("virtual run: %v", err)
		}
		if rep.Total <= 0 {
			t.Fatalf("virtual makespan %v, want > 0", rep.Total)
		}
	})
	t.Run("concurrent", func(t *testing.T) {
		tr := model.UCFTestbedN(4)
		eng := NewConcurrent(tr)
		eng.Chaos = plan
		eng.ReorgEvery = 1
		eng.ReorgSeed = 7
		if _, err := eng.Run(quiesceVictimProg(4)); err != nil {
			t.Fatalf("concurrent run: %v", err)
		}
	})
}

func TestJoinNoticeString(t *testing.T) {
	j := &ErrPeerJoined{Pid: 3, Step: 2}
	want := "hbsp: peer p3 joined at global step 2"
	if j.Error() != want {
		t.Fatalf("ErrPeerJoined.Error() = %q, want %q", j.Error(), want)
	}
}
