package hbsp

import (
	"fmt"
	"sort"
	"strings"

	"hbspk/internal/trace"
)

// Schedule exploration (DESIGN.md §5.3): the Virtual engine can replay
// a program under n deterministic delivery-order permutations and diff
// the observable final states. Permutation 0 is the canonical sorted
// order every normal run uses; permutation i > 0 shuffles each
// superstep's deliveries with a seeded generator. The HBSP^k promise is
// that a super^i-step's outcome is independent of message timing, so a
// correct program fingerprints identically under every permutation; a
// diff names the first processor, superstep and message (or saved
// state) where the outcomes diverge.

// deliveryRec is one message as a processor observed it: the global
// superstep it was delivered at, its identity, and a content hash.
type deliveryRec struct {
	step, src, tag, n int
	sum               uint64
}

func (d deliveryRec) String() string {
	return fmt.Sprintf("step=%d src=%d tag=%d len=%d sum=%016x", d.step, d.src, d.tag, d.n, d.sum)
}

// runRecord captures one run's observable state: per-processor delivery
// streams and the final value of every Save()d key.
type runRecord struct {
	streams [][]deliveryRec
	saves   []map[string][]byte
}

func newRunRecord(p int) *runRecord {
	return &runRecord{streams: make([][]deliveryRec, p), saves: make([]map[string][]byte, p)}
}

func (r *runRecord) noteDelivery(pid int, d deliveryRec) {
	r.streams[pid] = append(r.streams[pid], d)
}

func (r *runRecord) noteSaves(pid int, saves map[string][]byte) {
	if r.saves[pid] == nil {
		r.saves[pid] = make(map[string][]byte)
	}
	for k, b := range saves {
		r.saves[pid][k] = append([]byte(nil), b...)
	}
}

// canonical returns the per-processor delivery streams with each
// superstep's deliveries sorted into a canonical order. Permuting the
// delivery order within a superstep is exactly what exploration does on
// purpose, so streams compare as per-step multisets: a correct program
// delivers the same messages at the same steps under every schedule,
// and only a program whose sends depend on arrival order produces a
// different canonical stream.
func (r *runRecord) canonical() [][]deliveryRec {
	out := make([][]deliveryRec, len(r.streams))
	for pid, stream := range r.streams {
		s := append([]deliveryRec(nil), stream...)
		sort.Slice(s, func(a, b int) bool {
			if s[a].step != s[b].step {
				return s[a].step < s[b].step
			}
			if s[a].src != s[b].src {
				return s[a].src < s[b].src
			}
			if s[a].tag != s[b].tag {
				return s[a].tag < s[b].tag
			}
			if s[a].n != s[b].n {
				return s[a].n < s[b].n
			}
			return s[a].sum < s[b].sum
		})
		out[pid] = s
	}
	return out
}

// fingerprint folds the record into one comparable hash, insensitive to
// delivery order within a superstep.
func (r *runRecord) fingerprint() uint64 {
	h := payloadSum(nil)
	mix := func(vs ...uint64) {
		const prime64 = 1099511628211
		for _, v := range vs {
			for i := 0; i < 8; i++ {
				h ^= (v >> (8 * i)) & 0xFF
				h *= prime64
			}
		}
	}
	for pid, stream := range r.canonical() {
		for _, d := range stream {
			mix(uint64(pid), uint64(d.step), uint64(d.src), uint64(d.tag), uint64(d.n), d.sum)
		}
	}
	for pid, m := range r.saves {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			mix(uint64(pid), payloadSum([]byte(k)), payloadSum(m[k]))
		}
	}
	return h
}

// ScheduleRun is the outcome of one delivery-order permutation.
type ScheduleRun struct {
	// Perm is the permutation index; 0 is the canonical order.
	Perm int
	// Fingerprint hashes the run's observable state: every processor's
	// delivery stream plus its final Save()d values.
	Fingerprint uint64
	// Err is the run's program error, if any.
	Err error
	// Report is the run's superstep report.
	Report *trace.Report

	rec *runRecord
}

// ScheduleSet is the outcome of RunSchedules over every permutation.
type ScheduleSet struct {
	Seed int64
	Runs []ScheduleRun
}

// Agree reports whether every permutation produced the same
// fingerprint and error outcome as the canonical run.
func (s *ScheduleSet) Agree() bool {
	if len(s.Runs) == 0 {
		return true
	}
	base := s.Runs[0]
	for _, r := range s.Runs[1:] {
		if r.Fingerprint != base.Fingerprint || (r.Err == nil) != (base.Err == nil) {
			return false
		}
	}
	return true
}

// Diff describes the first divergence between the canonical run and a
// permutation: which processor, which superstep, which delivery or
// saved key differs. Empty when every permutation agrees.
func (s *ScheduleSet) Diff() string {
	if len(s.Runs) == 0 {
		return ""
	}
	base := s.Runs[0]
	for _, r := range s.Runs[1:] {
		if r.Fingerprint == base.Fingerprint && (r.Err == nil) == (base.Err == nil) {
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "perm %d (seed %d) diverges from the canonical order:", r.Perm, s.Seed)
		if (r.Err == nil) != (base.Err == nil) {
			fmt.Fprintf(&b, " error outcome differs (canonical: %v, perm: %v)", base.Err, r.Err)
			return b.String()
		}
		diffRecords(&b, base.rec, r.rec)
		return b.String()
	}
	return ""
}

func diffRecords(b *strings.Builder, base, perm *runRecord) {
	if base == nil || perm == nil {
		fmt.Fprintf(b, " fingerprints differ (no records kept)")
		return
	}
	baseStreams, permStreams := base.canonical(), perm.canonical()
	for pid := range baseStreams {
		bs, ps := baseStreams[pid], permStreams[pid]
		n := len(bs)
		if len(ps) < n {
			n = len(ps)
		}
		for i := 0; i < n; i++ {
			if bs[i] != ps[i] {
				fmt.Fprintf(b, " p%d delivery %d: canonical {%s} vs permuted {%s}", pid, i, bs[i], ps[i])
				return
			}
		}
		if len(bs) != len(ps) {
			fmt.Fprintf(b, " p%d delivered %d messages canonically vs %d permuted", pid, len(bs), len(ps))
			return
		}
	}
	for pid := range base.saves {
		keys := map[string]bool{}
		for k := range base.saves[pid] {
			keys[k] = true
		}
		for k := range perm.saves[pid] {
			keys[k] = true
		}
		sorted := make([]string, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for _, k := range sorted {
			bv, bok := base.saves[pid][k]
			pv, pok := perm.saves[pid][k]
			if bok != pok || string(bv) != string(pv) {
				fmt.Fprintf(b, " p%d saved state %q: canonical %d bytes (sum %016x) vs permuted %d bytes (sum %016x)",
					pid, k, len(bv), payloadSum(bv), len(pv), payloadSum(pv))
				return
			}
		}
	}
	fmt.Fprintf(b, " fingerprints differ but records match (hash collision?)")
}

// RunSchedules replays the program under n delivery-order permutations
// (permutation 0 canonical, the rest seeded shuffles) and returns the
// per-permutation outcomes for equivalence checking. The engine's
// configuration — chaos plan, verification, checkpointing — applies to
// every replay. The error return covers only harness misuse; program
// errors land in each ScheduleRun.
func (v *Virtual) RunSchedules(prog Program, n int, seed int64) (*ScheduleSet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hbsp: RunSchedules with n=%d permutations", n)
	}
	set := &ScheduleSet{Seed: seed}
	p := v.tree.NProcs()
	// A run with reorganization enabled mutates the tree's layout; every
	// replay must start from the pristine one or later permutations
	// would explore a different machine. The layout is restored again
	// after the last replay so the caller's tree is untouched.
	layout := v.tree.SaveLayout()
	for perm := 0; perm < n; perm++ {
		v.tree.RestoreLayout(layout)
		v.permIndex = perm
		v.permSeed = seed
		v.rec = newRunRecord(p)
		rep, err := v.Run(prog)
		run := ScheduleRun{Perm: perm, Err: err, Report: rep, rec: v.rec,
			Fingerprint: v.rec.fingerprint()}
		v.permIndex, v.permSeed, v.rec = 0, 0, nil
		set.Runs = append(set.Runs, run)
	}
	v.tree.RestoreLayout(layout)
	return set, nil
}

// shuffleDeliver applies the deterministic permutation for (seed, perm,
// step) to one superstep's deliveries: a Fisher–Yates shuffle driven by
// splitmix64, identical on every replay.
func shuffleDeliver(ms []pendingMsg, seed int64, perm, step int) {
	state := uint64(seed)*0x9E3779B97F4A7C15 + uint64(perm)*0xBF58476D1CE4E5B9 + uint64(step)*0x94D049BB133111EB + 1
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := len(ms) - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		ms[i], ms[j] = ms[j], ms[i]
	}
}
