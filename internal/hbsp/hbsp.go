// Package hbsp is HBSPlib: the superstep programming library of the
// HBSP^k model (§5.1), rebuilt in Go. Programs are SPMD functions run
// once per processor (leaf of the machine tree); they exchange bulk
// messages that become visible at the start of the next superstep, and
// they synchronize with scoped barriers: Sync(cluster) ends a
// super^i-step of that cluster's subtree, Sync(root) a global
// super^k-step.
//
// Two engines execute programs:
//
//   - Virtual runs the program on goroutines but charges a deterministic
//     virtual clock using package fabric — this is the paper's cost
//     model made executable, and the engine behind every experiment.
//   - Concurrent runs the program on the pvm substrate with real
//     parallelism and wall-clock timing; it exists to validate that the
//     algorithms are correct concurrent programs, not just costed ones.
//
// Both engines provide the HBSPlib enquiry and heterogeneity primitives:
// processor identity, machine ranking, speed, and workload shares.
package hbsp

import (
	"hbspk/internal/model"
)

// Message is one delivered bulk message.
type Message struct {
	// Src is the sending processor's pid; Tag is program-chosen.
	Src, Tag int
	// Payload is the message body. Receivers must treat it as
	// read-only: engines may share the sender's bytes.
	Payload []byte
}

// Ctx is a processor's view of the machine during a run: the HBSPlib
// API. A Ctx is confined to the goroutine running its program.
type Ctx interface {
	// Pid returns this processor's id (position among the leaves).
	Pid() int
	// NProcs returns the number of processors.
	NProcs() int
	// Tree returns the machine being run on.
	Tree() *model.Tree
	// Self returns this processor's leaf machine.
	Self() *model.Machine

	// Send queues a message for dst. It is delivered at the first
	// subsequent Sync whose scope contains both processors, and becomes
	// readable via Moves after that Sync returns.
	Send(dst, tag int, payload []byte) error
	// Moves returns the messages delivered by the last Sync, ordered by
	// sender pid and, within one sender, by send order.
	Moves() []Message

	// Charge accounts local computation: ops is work in fastest-machine
	// time units and is scaled by this machine's compute slowdown. The
	// charge lands in the w term of the enclosing superstep.
	Charge(ops float64)

	// Sync ends a super^i-step over the subtree of scope, which must be
	// an ancestor of (or equal to) this processor's leaf. Every
	// processor in that subtree must call Sync with the same scope for
	// the step to complete. When a scope member is dead, the first Sync
	// on that scope after the failure returns ErrPeerFailed (every live
	// member observes it at the same sync generation); subsequent Syncs
	// complete over the survivors.
	Sync(scope *model.Machine, label string) error

	// Failed returns the pids this processor knows to be dead, in
	// ascending order. The set grows exactly when a Sync returns
	// ErrPeerFailed, so all live members of a scope share the same view
	// at the same sync generation.
	Failed() []int

	// Members returns the pids this processor knows to be active
	// (activated at or before the run's start, or joined at a
	// membership cut), in ascending order. The set grows exactly when a
	// Sync returns ErrPeerJoined — mirroring Failed — so all live
	// members of a scope share the same view at the same sync
	// generation. Departed processors stay in Members and appear in
	// Failed; the live set is Members minus Failed.
	Members() []int

	// Save stages a checkpoint of named per-processor state. Staged
	// state is committed to the engine's CheckpointStore at the next
	// checkpointed superstep boundary (see CheckpointEvery); without a
	// store it is a no-op. The engine copies data at commit time.
	Save(key string, data []byte)

	// Restore returns the last committed checkpoint of the named state
	// from the engine's CheckpointStore, or false when none exists —
	// how a rerun resumes from the last checkpointed barrier.
	Restore(key string) ([]byte, bool)
}

// Program is an SPMD processor program.
type Program func(Ctx) error

// SyncAll synchronizes the whole machine: a super^k-step.
func SyncAll(c Ctx, label string) error { return c.Sync(c.Tree().Root, label) }

// Rank returns the processor's position in the fastest-first compute
// ranking (HBSPlib's heterogeneity enquiry: "functions return the rank
// of a processor").
func Rank(c Ctx) int { return c.Tree().Rank(c.Self()) }

// Speed returns the processor's compute slowdown (1 = fastest).
func Speed(c Ctx) float64 { return c.Self().CompSlowdown }

// Share returns the processor's balanced-workload fraction c_{i,j}
// (HBSPlib's "guide the programmer toward balanced workloads").
func Share(c Ctx) float64 { return c.Self().Share }

// Coordinator reports whether this processor is the coordinator of the
// given scope.
func Coordinator(c Ctx, scope *model.Machine) bool {
	return scope.Coordinator() == c.Self()
}
