package hbsp

import "hbspk/internal/obsv"

// spanSource is the seam through which layers above the engines (the
// collective library) reach a run's recorder and clock from a Ctx.
// Both engine Ctx implementations satisfy it; a foreign Ctx (a test
// double) simply yields no recorder.
type spanSource interface {
	obsvRecorder() *obsv.Recorder
	obsvNow() float64
}

// RecorderOf returns the recorder of the run the Ctx belongs to, or
// nil when observability is off or the Ctx is not an engine's.
func RecorderOf(c Ctx) *obsv.Recorder {
	if s, ok := c.(spanSource); ok {
		return s.obsvRecorder()
	}
	return nil
}

// NowOf returns the Ctx's current time on its engine clock: virtual
// units for the Virtual engine (last barrier exit plus charged work),
// microseconds since run start for the Concurrent engine. Zero for a
// foreign Ctx.
func NowOf(c Ctx) float64 {
	if s, ok := c.(spanSource); ok {
		return s.obsvNow()
	}
	return 0
}

func (c *vctx) obsvRecorder() *obsv.Recorder { return c.eng.Obsv }

// obsvNow is the processor's local virtual time: the clock staged at
// its last resume plus work charged since. The engine writes c.clock
// only while the processor is parked, so the read is ordered.
func (c *vctx) obsvNow() float64 { return c.clock + c.work }

func (c *cctx) obsvRecorder() *obsv.Recorder { return c.eng.Obsv }
func (c *cctx) obsvNow() float64             { return c.nowMicros() }
