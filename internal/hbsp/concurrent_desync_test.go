package hbsp

import (
	"errors"
	"strings"
	"testing"
	"time"

	"hbspk/internal/model"
)

// desyncTree builds a flat 4-leaf cluster for the watchdog tests.
func desyncTree(t *testing.T) *model.Tree {
	t.Helper()
	root := model.NewCluster("root", []*model.Machine{
		model.NewLeaf("p0"), model.NewLeaf("p1"),
		model.NewLeaf("p2"), model.NewLeaf("p3"),
	}, model.WithSync(1))
	return model.MustNew(root, 1).Normalize()
}

// TestConcurrentDesyncExitedMember is the regression for the
// silent-deadlock gap: before the watchdog, a processor returning early
// while the rest sync left the run blocked forever (this test only
// completed by -timeout panic). Now the exited-member check fires
// deterministically, well before any stall timeout.
func TestConcurrentDesyncExitedMember(t *testing.T) {
	tree := desyncTree(t)
	eng := NewConcurrent(tree)
	eng.DesyncTimeout = 30 * time.Second // deterministic path must not need the stall clock

	start := time.Now()
	_, err := eng.Run(func(ctx Ctx) error {
		if ctx.Pid() == 1 { //hbspk:ignore pidtaint (deliberate desync under test)
			return nil // p1 exits without ever syncing
		}
		return ctx.Sync(tree.Root, "step")
	})
	if !errors.Is(err, ErrDesync) {
		t.Fatalf("Run = %v, want ErrDesync", err)
	}
	if !strings.Contains(err.Error(), "p1") || !strings.Contains(err.Error(), "exited") {
		t.Errorf("error %q does not name the exited processor", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("exited-member desync took %v; should not wait for the stall timeout", elapsed)
	}
}

// TestConcurrentDesyncStalledBarriers covers the mismatched-barrier
// shape: every processor blocks, but on incompatible waits, so no
// barrier can ever complete and nobody exits. p0 sits at a second
// cluster-A sync that p1 will never join, while p1, p2 and p3 sit at a
// root sync that p0 can never reach — a cyclic wait the deterministic
// exited-member check cannot see, only the stall clock.
func TestConcurrentDesyncStalledBarriers(t *testing.T) {
	a := model.NewCluster("A", []*model.Machine{model.NewLeaf("a0"), model.NewLeaf("a1")}, model.WithSync(1))
	b := model.NewCluster("B", []*model.Machine{model.NewLeaf("b0"), model.NewLeaf("b1")}, model.WithSync(1))
	tree := model.MustNew(model.NewCluster("top", []*model.Machine{a, b}, model.WithSync(1)), 1).Normalize()
	scopeA := tree.Root.Children[0]
	eng := NewConcurrent(tree)
	eng.DesyncTimeout = 200 * time.Millisecond

	_, err := eng.Run(func(ctx Ctx) error {
		// Deliberate desync under test: every Sync below is pid-divergent.
		if ctx.Pid() == 0 { //hbspk:ignore pidtaint (deliberate desync under test)
			if err := ctx.Sync(scopeA, "inner"); err != nil { //hbspk:ignore syncdiscipline
				return err
			}
			// p1 never joins this second inner sync.
			return ctx.Sync(scopeA, "inner-again") //hbspk:ignore syncdiscipline
		}
		if ctx.Pid() == 1 { //hbspk:ignore pidtaint (deliberate desync under test)
			if err := ctx.Sync(scopeA, "inner"); err != nil { //hbspk:ignore syncdiscipline
				return err
			}
		}
		// p0 never reaches this root sync.
		return ctx.Sync(tree.Root, "step")
	})
	if !errors.Is(err, ErrDesync) {
		t.Fatalf("Run = %v, want ErrDesync", err)
	}
	// The report must name the lagging processor and where everyone waits.
	if !strings.Contains(err.Error(), "waiting:") || !strings.Contains(err.Error(), "lagging:") {
		t.Errorf("error %q lacks the waiting/lagging report", err)
	}
	if !strings.Contains(err.Error(), "p0") {
		t.Errorf("error %q does not name the lagging processor p0", err)
	}
}

// TestConcurrentDesyncDisabled checks the opt-out: a negative timeout
// must not spawn the watchdog, and a well-formed program still runs.
func TestConcurrentDesyncDisabled(t *testing.T) {
	tree := desyncTree(t)
	eng := NewConcurrent(tree)
	eng.DesyncTimeout = -1

	ran := 0
	rep, err := eng.Run(func(ctx Ctx) error {
		if err := ctx.Sync(tree.Root, "step"); err != nil {
			return err
		}
		if ctx.Pid() == 0 {
			ran++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran != 1 || len(rep.Steps) != 1 {
		t.Errorf("ran=%d steps=%d, want 1 and 1", ran, len(rep.Steps))
	}
}

// TestConcurrentWellFormedUnderWatchdog makes sure the watchdog never
// fires on a healthy multi-step program even with a tight timeout:
// progress between barriers resets the stall clock.
func TestConcurrentWellFormedUnderWatchdog(t *testing.T) {
	tree := desyncTree(t)
	eng := NewConcurrent(tree)
	eng.DesyncTimeout = 100 * time.Millisecond

	rep, err := eng.Run(func(ctx Ctx) error {
		for step := 0; step < 20; step++ {
			next := (ctx.Pid() + 1) % ctx.NProcs()
			if err := ctx.Send(next, step, []byte{byte(step)}); err != nil {
				return err
			}
			if err := ctx.Sync(tree.Root, "ring"); err != nil {
				return err
			}
			if got := len(ctx.Moves()); got != 1 {
				return errors.New("lost a message under the watchdog")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Steps) != 20 {
		t.Errorf("steps = %d, want 20", len(rep.Steps))
	}
}
