package hbsp

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hbspk/internal/fabric"
	"hbspk/internal/model"
)

func TestDRMAPutVisibleAfterSync(t *testing.T) {
	tr := model.UCFTestbedN(4)
	final := make([][]byte, tr.NProcs())
	_, err := RunVirtual(tr, fabric.PureModel(), func(c Ctx) error {
		defer EndDRMA(c)
		area, err := Register(c, "buf", make([]byte, 16))
		if err != nil {
			return err
		}
		// Everyone puts its pid at offset 4*pid of processor 0's area.
		if err := Put(c, 0, "buf", 4*c.Pid(), []byte{byte(c.Pid() + 1), 0, 0, 0}); err != nil {
			return err
		}
		// Not visible before the sync.
		if area.Bytes()[4*c.Pid()] != 0 {
			return fmt.Errorf("p%d: put visible before sync", c.Pid())
		}
		if _, err := DRMASync(c, c.Tree().Root, "puts"); err != nil {
			return err
		}
		final[c.Pid()] = append([]byte(nil), area.Bytes()...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 4, 0, 0, 0}
	if !bytes.Equal(final[0], want) {
		t.Errorf("p0 area = %v, want %v", final[0], want)
	}
	// Non-targets stay zero.
	if !bytes.Equal(final[2], make([]byte, 16)) {
		t.Errorf("p2 area modified: %v", final[2])
	}
}

func TestDRMAGetSplitPhase(t *testing.T) {
	tr := model.UCFTestbedN(3)
	var got []byte
	_, err := RunVirtual(tr, fabric.PureModel(), func(c Ctx) error {
		defer EndDRMA(c)
		mem := []byte(fmt.Sprintf("data-from-%d!", c.Pid()))
		if _, err := Register(c, "src", mem); err != nil {
			return err
		}
		if c.Pid() == 2 {
			if err := Get(c, 0, "src", 5, 6); err != nil {
				return err
			}
		}
		// Superstep 1: the request travels.
		rep, err := DRMASync(c, c.Tree().Root, "request")
		if err != nil {
			return err
		}
		if len(rep) != 0 {
			return fmt.Errorf("p%d: reply arrived a step early", c.Pid())
		}
		// Superstep 2: the reply arrives.
		rep, err = DRMASync(c, c.Tree().Root, "reply")
		if err != nil {
			return err
		}
		if c.Pid() == 2 {
			if len(rep[0]) != 1 {
				return fmt.Errorf("p2: %d replies from p0", len(rep[0]))
			}
			got = rep[0][0]
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "from-0" {
		t.Errorf("get returned %q, want \"from-0\"", got)
	}
}

func TestDRMAGetSnapshotsSourceAtReplyStep(t *testing.T) {
	// The get reply carries the value as of the superstep in which the
	// source answers, per the split-phase realization.
	tr := model.UCFTestbedN(2)
	var got []byte
	_, err := RunVirtual(tr, fabric.PureModel(), func(c Ctx) error {
		defer EndDRMA(c)
		mem := []byte{1}
		if _, err := Register(c, "v", mem); err != nil {
			return err
		}
		if c.Pid() == 1 {
			if err := Get(c, 0, "v", 0, 1); err != nil {
				return err
			}
		}
		if _, err := DRMASync(c, c.Tree().Root, "req"); err != nil {
			return err
		}
		if c.Pid() == 0 {
			mem[0] = 9 // mutate after answering: must not affect the reply
		}
		rep, err := DRMASync(c, c.Tree().Root, "rep")
		if err != nil {
			return err
		}
		if c.Pid() == 1 {
			got = rep[0][0]
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("reply = %v, want the pre-mutation snapshot [1]", got)
	}
}

func TestDRMAUnregisteredAreaFails(t *testing.T) {
	tr := model.UCFTestbedN(2)
	_, err := RunVirtual(tr, fabric.PureModel(), func(c Ctx) error {
		defer EndDRMA(c)
		if c.Pid() == 1 {
			if err := Put(c, 0, "nope", 0, []byte{1}); err != nil {
				return err
			}
		}
		_, err := DRMASync(c, c.Tree().Root, "s")
		return err
	})
	if !errors.Is(err, ErrUnregistered) {
		t.Errorf("err = %v, want ErrUnregistered", err)
	}
}

func TestDRMAPutBoundsChecked(t *testing.T) {
	tr := model.UCFTestbedN(2)
	_, err := RunVirtual(tr, fabric.PureModel(), func(c Ctx) error {
		defer EndDRMA(c)
		if _, err := Register(c, "small", make([]byte, 4)); err != nil {
			return err
		}
		if c.Pid() == 1 {
			if err := Put(c, 0, "small", 2, []byte{1, 2, 3, 4}); err != nil {
				return err
			}
		}
		_, err := DRMASync(c, c.Tree().Root, "s")
		return err
	})
	if err == nil {
		t.Fatal("overflowing put accepted")
	}
}

func TestDRMADuplicateRegistrationRejected(t *testing.T) {
	tr := model.UCFTestbedN(1)
	_, err := RunVirtual(tr, fabric.PureModel(), func(c Ctx) error {
		defer EndDRMA(c)
		if _, err := Register(c, "x", make([]byte, 1)); err != nil {
			return err
		}
		if _, err := Register(c, "x", make([]byte, 1)); err == nil {
			return errors.New("duplicate registration accepted")
		}
		if _, err := Register(c, "", nil); err == nil {
			return errors.New("empty name accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDRMADeregisterThenAccessFails(t *testing.T) {
	tr := model.UCFTestbedN(2)
	_, err := RunVirtual(tr, fabric.PureModel(), func(c Ctx) error {
		defer EndDRMA(c)
		area, err := Register(c, "gone", make([]byte, 8))
		if err != nil {
			return err
		}
		area.Deregister()
		if c.Pid() == 1 {
			if err := Put(c, 0, "gone", 0, []byte{1}); err != nil {
				return err
			}
		}
		_, err = DRMASync(c, c.Tree().Root, "s")
		return err
	})
	if !errors.Is(err, ErrUnregistered) {
		t.Errorf("err = %v, want ErrUnregistered", err)
	}
}

func TestDRMAConcurrentPutsResolveDeterministically(t *testing.T) {
	// Two writers target the same location; the higher pid's put is
	// applied last (Moves order), on both runs.
	tr := model.UCFTestbedN(3)
	run := func() byte {
		var v byte
		_, err := RunVirtual(tr, fabric.PureModel(), func(c Ctx) error {
			defer EndDRMA(c)
			area, err := Register(c, "cell", make([]byte, 1))
			if err != nil {
				return err
			}
			if c.Pid() != 0 {
				if err := Put(c, 0, "cell", 0, []byte{byte(c.Pid())}); err != nil {
					return err
				}
			}
			if _, err := DRMASync(c, c.Tree().Root, "race"); err != nil {
				return err
			}
			if c.Pid() == 0 {
				v = area.Bytes()[0]
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic put resolution: %d vs %d", a, b)
	}
	if a != 2 {
		t.Errorf("winner = %d, want 2 (highest pid, applied last)", a)
	}
}

func TestDRMAOnConcurrentEngine(t *testing.T) {
	tr := model.UCFTestbedN(4)
	final := make([][]byte, tr.NProcs())
	_, err := NewConcurrent(tr).Run(func(c Ctx) error {
		defer EndDRMA(c)
		area, err := Register(c, "buf", make([]byte, 4))
		if err != nil {
			return err
		}
		if err := Put(c, (c.Pid()+1)%4, "buf", c.Pid(), []byte{byte(c.Pid() + 10)}); err != nil {
			return err
		}
		if _, err := DRMASync(c, c.Tree().Root, "ring-puts"); err != nil {
			return err
		}
		final[c.Pid()] = append([]byte(nil), area.Bytes()...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < 4; pid++ {
		writer := (pid + 3) % 4
		if final[pid][writer] != byte(writer+10) {
			t.Errorf("pid %d area = %v, want %d at index %d", pid, final[pid], writer+10, writer)
		}
	}
}

func TestDRMAChargedLikeBulkMessages(t *testing.T) {
	// A put of n bytes must enter the h-relation like a send of the
	// same size (plus the small frame header).
	tr := model.UCFTestbedN(2)
	n := 10000
	rep, err := RunVirtual(tr, fabric.PureModel(), func(c Ctx) error {
		defer EndDRMA(c)
		if _, err := Register(c, "a", make([]byte, n)); err != nil {
			return err
		}
		if c.Pid() == 1 {
			if err := Put(c, 0, "a", 0, make([]byte, n)); err != nil {
				return err
			}
		}
		_, err := DRMASync(c, c.Tree().Root, "put")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	slowR := tr.SlowestLeaf().CommSlowdown
	wantMin := slowR * float64(n)
	if rep.Steps[0].H < wantMin {
		t.Errorf("put h = %v, want ≥ %v", rep.Steps[0].H, wantMin)
	}
}
