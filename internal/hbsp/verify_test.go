package hbsp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"hbspk/internal/fabric"
	"hbspk/internal/model"
)

// sendMutateProg sends a buffer to pid 1 and then rewrites it after the
// Send — the classic shared-buffer race both engines' checkers must
// catch at delivery time (the checksum stamped at Send no longer
// matches the delivered bytes).
func sendMutateProg(c Ctx) error {
	if c.Pid() == 0 {
		buf := []byte{1, 2, 3, 4}
		if err := c.Send(1, 0, buf); err != nil {
			return err
		}
		buf[0] = 0xEE //hbspk:ignore bufreuse (deliberate post-send mutation: this is what the verifier must catch)
	}
	return SyncAll(c, "deliver")
}

func TestVerifyCatchesMutationAfterSend(t *testing.T) {
	tr := model.UCFTestbedN(3)
	engines := map[string]func() error{
		"virtual": func() error {
			eng := NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
			eng.Verify = true
			_, err := eng.Run(sendMutateProg)
			return err
		},
		"concurrent": func() error {
			eng := NewConcurrent(tr)
			eng.Verify = true
			_, err := eng.Run(sendMutateProg)
			return err
		},
	}
	for name, run := range engines {
		t.Run(name, func(t *testing.T) {
			err := run()
			var nd *ErrNondeterminism
			if !errors.As(err, &nd) {
				t.Fatalf("err = %v, want ErrNondeterminism", err)
			}
			if nd.Pid != 1 || nd.Src != 0 {
				t.Errorf("violation at pid %d src %d, want pid 1 src 0 (%v)", nd.Pid, nd.Src, nd)
			}
		})
	}
}

// readerMutateProg has the receiver rewrite a delivered payload inside
// its read window; the window recheck at its next Sync must flag it.
func readerMutateProg(c Ctx) error {
	if c.Pid() == 0 {
		if err := c.Send(1, 0, []byte{9, 9}); err != nil {
			return err
		}
	}
	if err := SyncAll(c, "deliver"); err != nil {
		return err
	}
	if c.Pid() == 1 && len(c.Moves()) > 0 {
		c.Moves()[0].Payload[0] = 0x55
	}
	return SyncAll(c, "close")
}

func TestVerifyCatchesReadWindowMutation(t *testing.T) {
	tr := model.UCFTestbedN(3)
	engines := map[string]func() error{
		"virtual": func() error {
			eng := NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
			eng.Verify = true
			_, err := eng.Run(readerMutateProg)
			return err
		},
		"concurrent": func() error {
			eng := NewConcurrent(tr)
			eng.Verify = true
			_, err := eng.Run(readerMutateProg)
			return err
		},
	}
	for name, run := range engines {
		t.Run(name, func(t *testing.T) {
			err := run()
			var nd *ErrNondeterminism
			if !errors.As(err, &nd) {
				t.Fatalf("err = %v, want ErrNondeterminism", err)
			}
			if nd.Pid != 1 {
				t.Errorf("violation at pid %d, want 1 (%v)", nd.Pid, nd)
			}
		})
	}
}

func TestVerifyCleanProgramPassesBothEngines(t *testing.T) {
	tr := model.UCFTestbedN(4)
	prog := func(c Ctx) error {
		for r := 0; r < 3; r++ {
			payload := []byte{byte(c.Pid()), byte(r)}
			if err := c.Send((c.Pid()+1)%c.NProcs(), r, payload); err != nil {
				return err
			}
			if err := SyncAll(c, fmt.Sprintf("r%d", r)); err != nil {
				return err
			}
			sum := 0
			for _, m := range c.Moves() {
				sum += int(m.Payload[0])
			}
			c.Save("sum", []byte{byte(sum)})
		}
		return nil
	}
	veng := NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
	veng.Verify = true
	if _, err := veng.Run(prog); err != nil {
		t.Errorf("virtual: %v", err)
	}
	ceng := NewConcurrent(tr)
	ceng.Verify = true
	if _, err := ceng.Run(prog); err != nil {
		t.Errorf("concurrent: %v", err)
	}
}

// The happens-before branch of checkDelivery cannot fire through a
// well-formed engine run (every delivery crosses a barrier join), so
// the clock algebra is pinned down directly.
func TestVClockDominanceAndJoin(t *testing.T) {
	a, b := newVClock(3), newVClock(3)
	a.tick(0)
	b.tick(1)
	if a.dominates(b) || b.dominates(a) {
		t.Fatalf("concurrent clocks %v %v must not dominate each other", a, b)
	}
	j := a.clone()
	j.join(b)
	if !j.dominates(a) || !j.dominates(b) {
		t.Fatalf("join %v must dominate both inputs", j)
	}
	rt := decodeVClock(j.encodeInt64())
	if !rt.dominates(j) || !j.dominates(rt) {
		t.Fatalf("encode/decode round trip changed the clock: %v vs %v", j, rt)
	}
}

func TestCheckDeliveryFlagsMissingBarrierEdge(t *testing.T) {
	reader := VClock{2, 0, 0}
	stamp := VClock{0, 0, 4} // sender events the reader has never joined
	e := checkDelivery(0, 3, Message{Src: 2, Tag: 1}, msgMeta{src: 2, tag: 1, stamp: stamp, sum: payloadSum(nil)}, reader)
	if e == nil {
		t.Fatal("undominated stamp not flagged")
	}
	if e.Pid != 0 || e.Step != 3 || e.Src != 2 {
		t.Errorf("violation = %+v, want pid 0 step 3 src 2", e)
	}
}

// orderedPayload encodes v for the exploration programs.
func orderedPayload(v int64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(v))
	return b
}

// commutativeFoldProg is order-independent: every processor sends its
// pid to the root, which folds with addition and saves the total.
func commutativeFoldProg(c Ctx) error {
	if c.Pid() != 0 {
		if err := c.Send(0, 0, orderedPayload(int64(c.Pid()+1))); err != nil {
			return err
		}
	}
	if err := SyncAll(c, "gather"); err != nil {
		return err
	}
	if c.Pid() == 0 {
		total := int64(0)
		for _, m := range c.Moves() {
			total += int64(binary.BigEndian.Uint64(m.Payload))
		}
		c.Save("total", orderedPayload(total))
	}
	return SyncAll(c, "close")
}

// orderDependentFoldProg subtracts in Moves order — its result depends
// on delivery order, exactly what exploration must expose.
func orderDependentFoldProg(c Ctx) error {
	if c.Pid() != 0 {
		if err := c.Send(0, 0, orderedPayload(int64(c.Pid()*7+1))); err != nil {
			return err
		}
	}
	if err := SyncAll(c, "gather"); err != nil {
		return err
	}
	if c.Pid() == 0 {
		total := int64(1000)
		for _, m := range c.Moves() {
			total = total*3 - int64(binary.BigEndian.Uint64(m.Payload))
		}
		c.Save("total", orderedPayload(total))
	}
	return SyncAll(c, "close")
}

func TestRunSchedulesAgreeOnCommutativeFold(t *testing.T) {
	tr := model.UCFTestbedN(6)
	eng := NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
	set, err := eng.RunSchedules(commutativeFoldProg, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range set.Runs {
		if r.Err != nil {
			t.Fatalf("perm %d: %v", r.Perm, r.Err)
		}
	}
	if !set.Agree() {
		t.Errorf("commutative fold diverged: %s", set.Diff())
	}
}

func TestRunSchedulesDiffOrderDependentFold(t *testing.T) {
	tr := model.UCFTestbedN(6)
	eng := NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
	set, err := eng.RunSchedules(orderDependentFoldProg, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if set.Agree() {
		t.Fatal("order-dependent fold fingerprinted identically under permuted schedules")
	}
	diff := set.Diff()
	if diff == "" {
		t.Fatal("divergent set produced an empty diff")
	}
	if want := `p0 saved state "total"`; !containsStr(diff, want) {
		t.Errorf("diff %q does not name the divergent save %q", diff, want)
	}
}

func TestRunSchedulesDeterministicReplay(t *testing.T) {
	tr := model.UCFTestbedN(5)
	eng := NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
	a, err := eng.RunSchedules(orderDependentFoldProg, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.RunSchedules(orderDependentFoldProg, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Runs {
		if a.Runs[i].Fingerprint != b.Runs[i].Fingerprint {
			t.Errorf("perm %d not reproducible: %016x vs %016x",
				i, a.Runs[i].Fingerprint, b.Runs[i].Fingerprint)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
