package hbsp

import (
	"testing"

	"hbspk/internal/fabric"
	"hbspk/internal/model"
)

// The reorg makespan bench backs the PR's acceptance gate: under a
// straggler-heavy seeded chaos plan, a run that rebalances the tree
// from measured estimates must beat the frozen-tree baseline on
// modeled makespan. The workload partitions each round's work by the
// current balanced share c_{i,j} — exactly what the paper's balanced
// distributions do — so a share that keeps pointing at a machine whose
// measured speed collapsed keeps gating the superstep, and rebalancing
// pays for itself. hbspk-benchjson enforces the win via
//
//	-max-metric-rel 'BenchmarkReorgMakespan/reorg=BenchmarkReorgMakespan/frozen:model-cost:0.9'

// reorgBenchProg charges share-proportional work each round: the
// modeled equivalent of repartitioning the problem from the tree's
// current layout every superstep.
func reorgBenchProg(rounds int, scale float64) Program {
	return func(c Ctx) error {
		for r := 0; r < rounds; r++ {
			c.Charge(scale * c.Self().Share)
			if err := c.Sync(c.Tree().Root, "bench"); err != nil {
				return err
			}
		}
		return nil
	}
}

func benchReorgMakespan(b *testing.B, every int) {
	base := model.UCFTestbedN(8)
	plan := &fabric.ChaosPlan{
		Seed: 42,
		Stragglers: []fabric.Straggler{
			// The fastest leaf — holding the largest balanced share —
			// collapses to a tenth of its modeled speed for the whole run.
			{Pid: 0, FromStep: 0, ToStep: 1 << 20, Factor: 10},
		},
	}
	var makespan float64
	for i := 0; i < b.N; i++ {
		tr := base.Clone()
		eng := NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
		eng.Chaos = plan
		eng.ReorgEvery = every
		eng.ReorgSeed = 42
		rep, err := eng.Run(reorgBenchProg(24, 1e6))
		if err != nil {
			b.Fatal(err)
		}
		makespan = rep.Total
	}
	b.ReportMetric(makespan, "model-cost")
}

func BenchmarkReorgMakespan(b *testing.B) {
	b.Run("frozen", func(b *testing.B) { benchReorgMakespan(b, 0) })
	b.Run("reorg", func(b *testing.B) { benchReorgMakespan(b, 2) })
}
