package hbsp

import (
	"errors"
	"fmt"
)

// Direct Remote Memory Access, the second communication style of BSPlib
// (and so of HBSPlib, which "incorporates many of the functions ...
// contained in BSPlib", §5.1). Processors register named memory areas;
// Put writes into a remote registration and Get reads from one. Both are
// bulk-synchronous: a Put becomes visible at the destination, and a Get
// returns data snapshotted at the source, only after the next Sync whose
// scope covers both processors — exactly BSPlib's end-of-superstep
// semantics.
//
// DRMA is implemented on top of the engine's bulk messages with reserved
// tags, so it works identically on the virtual and concurrent engines
// and is charged like any other traffic.

const (
	// tagDRMAPut carries put payloads; tagDRMAGetReq get requests;
	// tagDRMAGetRep get replies. Reserved: user tags collide only if
	// they pick these exact values (documented on Reg).
	tagDRMAPut    = -1001
	tagDRMAGetReq = -1002
	tagDRMAGetRep = -1003
)

// ErrUnregistered is returned when a Put or Get names an area the
// destination has not registered.
var ErrUnregistered = errors.New("hbsp: unregistered DRMA area")

// Reg is a processor's handle to its registered memory area. All
// processors of a scope must register the same names (BSPlib's
// registration sequence rule); the library checks at access time rather
// than registration time, since registrations are purely local.
//
// The tags -1001..-1003 are reserved for DRMA traffic; user programs
// must not send messages with those tags on a Ctx that also uses DRMA.
type Reg struct {
	ctx  Ctx
	name string
	mem  []byte
}

// drmaState tracks the registrations of one processor. It lives in the
// Ctx-independent layer: both engines reach it through the regs map key
// on the Ctx interface value.
var drmaRegs = struct {
	// Keyed by Ctx (interface identity) then name. Each Ctx is confined
	// to one goroutine, and entries are removed when the program ends,
	// so no locking is needed beyond the map's per-Ctx confinement —
	// but engines run many Ctxs concurrently, so a mutex guards the
	// outer map.
	m map[Ctx]map[string]*Reg
}{}

// Register makes mem remotely accessible under name until Deregister.
// The returned Reg is used for local access; remote processors address
// the area by (pid, name).
func Register(c Ctx, name string, mem []byte) (*Reg, error) {
	if name == "" {
		return nil, errors.New("hbsp: empty DRMA registration name")
	}
	regs := ctxRegs(c, true)
	if _, dup := regs[name]; dup {
		return nil, fmt.Errorf("hbsp: DRMA area %q already registered", name)
	}
	r := &Reg{ctx: c, name: name, mem: mem}
	regs[name] = r
	return r, nil
}

// Deregister removes the area.
func (r *Reg) Deregister() {
	regs := ctxRegs(r.ctx, false)
	if regs != nil {
		delete(regs, r.name)
	}
}

// Bytes returns the registered memory (local view).
func (r *Reg) Bytes() []byte { return r.mem }

// Put schedules a write of src into the area named name at processor
// dst, at the given offset. The write lands at the end of the next
// covering superstep; concurrent puts to the same location resolve in
// (sender pid, send order) — the deterministic order of Moves.
func Put(c Ctx, dst int, name string, offset int, src []byte) error {
	f := newDRMAFrame(name, offset)
	f.payload(src)
	return c.Send(dst, tagDRMAPut, f.bytes())
}

// Get schedules a read of length bytes from the area named name at
// processor src, starting at offset. The data arrives after the *second*
// next sync: the request travels in the current superstep, the reply in
// the following one (BSPlib's split-phase get realized over messages).
// GetReply collects it.
func Get(c Ctx, src int, name string, offset, length int) error {
	f := newDRMAFrame(name, offset)
	f.length(length)
	return c.Send(src, tagDRMAGetReq, f.bytes())
}

// DRMASync must be called instead of a bare Sync by programs using DRMA:
// it synchronizes the scope, applies incoming puts to local
// registrations, answers get requests (the replies become visible after
// the caller's next DRMASync), and returns the get replies that arrived
// this step keyed by source pid.
func DRMASync(c Ctx, scope ScopeMachine, label string) (map[int][][]byte, error) {
	if err := c.Sync(scope, label); err != nil {
		return nil, err
	}
	regs := ctxRegs(c, false)
	replies := make(map[int][][]byte)
	for _, m := range c.Moves() {
		switch m.Tag {
		case tagDRMAPut:
			name, offset, body, err := parseDRMAFrame(m.Payload)
			if err != nil {
				return nil, err
			}
			r := regs[name]
			if r == nil {
				return nil, fmt.Errorf("%w: put into %q at processor %d", ErrUnregistered, name, c.Pid())
			}
			if offset < 0 || offset+len(body) > len(r.mem) {
				return nil, fmt.Errorf("hbsp: put of %d bytes at offset %d overflows area %q (%d bytes)",
					len(body), offset, name, len(r.mem))
			}
			copy(r.mem[offset:], body)
		case tagDRMAGetReq:
			name, offset, body, err := parseDRMAFrame(m.Payload)
			if err != nil {
				return nil, err
			}
			length, err := parseLength(body)
			if err != nil {
				return nil, err
			}
			r := regs[name]
			if r == nil {
				return nil, fmt.Errorf("%w: get from %q at processor %d", ErrUnregistered, name, c.Pid())
			}
			if offset < 0 || offset+length > len(r.mem) {
				return nil, fmt.Errorf("hbsp: get of %d bytes at offset %d overflows area %q (%d bytes)",
					length, offset, name, len(r.mem))
			}
			snapshot := append([]byte(nil), r.mem[offset:offset+length]...)
			rep := newDRMAFrame(name, offset)
			rep.payload(snapshot)
			if err := c.Send(m.Src, tagDRMAGetRep, rep.bytes()); err != nil { //hbspk:ignore commgraph (protocol: get replies are delivered by the next DRMASync of the caller)
				return nil, err
			}
		case tagDRMAGetRep:
			_, _, body, err := parseDRMAFrame(m.Payload)
			if err != nil {
				return nil, err
			}
			replies[m.Src] = append(replies[m.Src], body)
		}
	}
	return replies, nil
}

// EndDRMA releases the processor's registration table; programs call it
// before returning (a defer in the program body is idiomatic).
func EndDRMA(c Ctx) {
	drmaRegsMu.Lock()
	defer drmaRegsMu.Unlock()
	if drmaRegs.m != nil {
		delete(drmaRegs.m, c)
	}
}
