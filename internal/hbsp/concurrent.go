package hbsp

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"hbspk/internal/model"
	"hbspk/internal/pvm"
	"hbspk/internal/trace"
)

// Concurrent executes programs with real parallelism on the pvm
// substrate: every processor is a spawned task, bulk messages travel
// through task mailboxes, and scoped barriers are pvm group barriers.
// Heterogeneity can be emulated by time dilation: Charge busy-spins for
// ops·CompSlowdown·TimeUnit of wall time.
//
// The engine reports wall-clock step times, so its numbers are
// machine-dependent and noisy; it exists to validate that programs are
// correct concurrent code and deliver exactly the same data as the
// virtual engine. Programs must be well-formed SPMD (every processor of
// a scope syncs on it the same number of times); a malformed program is
// converted from a silent deadlock into ErrDesync by an always-on
// watchdog: every Sync registers a per-scope sync-generation waiter,
// and when a waited scope can provably never complete — a member
// already exited, or every live processor has been parked at a barrier
// for DesyncTimeout with no barrier completing — the run is halted with
// a report naming the waiting and lagging processors.
type Concurrent struct {
	tree *model.Tree
	// TimeUnit is the wall-clock duration of one fastest-machine work
	// unit for Charge; zero disables dilation.
	TimeUnit time.Duration
	// DesyncTimeout is how long every live processor must sit blocked at
	// barriers, with none completing, before the watchdog declares a
	// desync. Zero means the 2s default; negative disables the watchdog
	// entirely (the exited-member check included).
	DesyncTimeout time.Duration
}

// defaultDesyncTimeout balances catching real deadlocks quickly against
// never firing on a healthy but heavily dilated run: the stall clock
// only advances while every live processor is inside a barrier wait, so
// long Charge phases cannot trip it.
const defaultDesyncTimeout = 2 * time.Second

// NewConcurrent returns a wall-clock engine for the tree.
func NewConcurrent(t *model.Tree) *Concurrent { return &Concurrent{tree: t} }

// cctx is the per-processor Ctx of the concurrent engine.
type cctx struct {
	pid  int
	leaf *model.Machine
	eng  *Concurrent
	task *pvm.Task
	tids []pvm.TID

	outbox []pendingMsg
	inbox  []Message
	seq    int
	// syncSeq counts this processor's syncs per scope so that senders
	// and receivers agree on a message tag per (scope, generation).
	syncSeq map[*model.Machine]int

	shared *crun
}

// crun is the state shared by all processors of one Run.
type crun struct {
	mu      sync.Mutex
	steps   []trace.Step
	scopeID map[*model.Machine]int
	started time.Time

	// Desync watchdog state, all under mu: waiting maps pid to its
	// current barrier wait, exited records returned processors, progress
	// counts barrier completions and exits (any increment proves the run
	// is still advancing), desync latches the watchdog's verdict.
	nprocs   int
	waiting  map[int]*syncWait
	exited   map[int]bool
	progress uint64
	desync   error
	// arrived[pid][scope] is the highest sync generation pid has reached
	// on that scope. An exited member is only lagging for a waiter if it
	// never arrived at the waiter's generation; without this, a member
	// exiting right after the final barrier would race a still-parked
	// waiter into a false desync.
	arrived map[int]map[string]int
}

// syncWait describes one processor parked in Sync: the scope's label,
// this processor's sync generation for it, and the member pids that
// must arrive for the barrier to complete.
type syncWait struct {
	scope   string
	label   string
	gen     int
	members []int
}

// enterSync registers a barrier wait; leaveSync removes it and counts
// the completion as progress.
func (s *crun) enterSync(pid int, w *syncWait) {
	s.mu.Lock()
	s.waiting[pid] = w
	m := s.arrived[pid]
	if m == nil {
		m = make(map[string]int)
		s.arrived[pid] = m
	}
	m[w.scope] = w.gen
	s.mu.Unlock()
}

func (s *crun) leaveSync(pid int) {
	s.mu.Lock()
	delete(s.waiting, pid)
	s.progress++
	s.mu.Unlock()
}

func (s *crun) markExited(pid int) {
	s.mu.Lock()
	s.exited[pid] = true
	s.progress++
	s.mu.Unlock()
}

func (s *crun) desyncErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.desync
}

// watch polls the waiter registry until done closes. It declares a
// desync when a waited barrier can provably never complete:
//
//   - a member of a waited scope has already exited (deterministic, no
//     timeout involved), or
//   - every live processor has been parked at some barrier across a
//     full timeout window with no barrier completing in between —
//     barriers only complete through arrivals, and with nobody left to
//     arrive the run cannot advance.
//
// On a verdict it latches the structured error and halts the system,
// waking every parked barrier with ErrHalted.
func (s *crun) watch(sys *pvm.System, timeout time.Duration, done <-chan struct{}) {
	tick := timeout / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	var (
		stallSince    time.Time
		stallProgress uint64
		stalled       bool
	)
	for {
		select {
		case <-done:
			return
		case now := <-ticker.C:
			s.mu.Lock()
			if s.desync != nil {
				s.mu.Unlock()
				return
			}
			if err := s.exitedMemberDesync(); err != nil {
				s.desync = err
				s.mu.Unlock()
				sys.Halt()
				return
			}
			allParked := len(s.waiting) > 0 && len(s.waiting)+len(s.exited) == s.nprocs
			if !allParked || !stalled || s.progress != stallProgress {
				stalled = allParked
				stallProgress = s.progress
				stallSince = now
				s.mu.Unlock()
				continue
			}
			if now.Sub(stallSince) < timeout {
				s.mu.Unlock()
				continue
			}
			s.desync = s.stallDesync()
			s.mu.Unlock()
			sys.Halt()
			return
		}
	}
}

// exitedMemberDesync reports a waited scope with an exited member, a
// barrier that can never complete. Caller holds mu.
func (s *crun) exitedMemberDesync() error {
	for pid, w := range s.waiting {
		for _, m := range w.members {
			reached, ok := s.arrived[m][w.scope]
			if s.exited[m] && (!ok || reached < w.gen) {
				return fmt.Errorf("%w: p%d waits on %s#%d(%s) but member p%d already exited",
					ErrDesync, pid, w.scope, w.gen, w.label, m)
			}
		}
	}
	return nil
}

// stallDesync builds the stalled-barriers report: who waits where, and
// which scope members lag. Caller holds mu.
func (s *crun) stallDesync() error {
	var waitParts, lagParts []string
	lagging := map[int]bool{}
	for pid := 0; pid < s.nprocs; pid++ {
		w, ok := s.waiting[pid]
		if !ok {
			continue
		}
		waitParts = append(waitParts, fmt.Sprintf("p%d@%s#%d(%s)", pid, w.scope, w.gen, w.label))
		for _, m := range w.members {
			mw := s.waiting[m]
			if mw == nil || mw.scope != w.scope || mw.gen != w.gen {
				lagging[m] = true
			}
		}
	}
	for pid := 0; pid < s.nprocs; pid++ {
		if !lagging[pid] {
			continue
		}
		switch {
		case s.exited[pid]:
			lagParts = append(lagParts, fmt.Sprintf("p%d:exited", pid))
		case s.waiting[pid] != nil:
			w := s.waiting[pid]
			lagParts = append(lagParts, fmt.Sprintf("p%d:at %s#%d(%s)", pid, w.scope, w.gen, w.label))
		default:
			lagParts = append(lagParts, fmt.Sprintf("p%d:not at a barrier", pid))
		}
	}
	msg := "waiting: " + strings.Join(waitParts, " ")
	if len(lagParts) > 0 {
		msg += "; lagging: " + strings.Join(lagParts, " ")
	}
	return fmt.Errorf("%w: %s", ErrDesync, msg)
}

func (c *cctx) Pid() int             { return c.pid }
func (c *cctx) NProcs() int          { return c.eng.tree.NProcs() }
func (c *cctx) Tree() *model.Tree    { return c.eng.tree }
func (c *cctx) Self() *model.Machine { return c.leaf }
func (c *cctx) Moves() []Message     { return c.inbox }

func (c *cctx) Charge(ops float64) {
	if ops <= 0 || c.eng.TimeUnit <= 0 {
		return
	}
	d := time.Duration(ops * c.leaf.CompSlowdown * float64(c.eng.TimeUnit))
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		// Busy spin: emulated computation must consume CPU, not yield
		// it, to behave like the real slow machine.
	}
}

func (c *cctx) Send(dst, tag int, payload []byte) error {
	if dst < 0 || dst >= c.NProcs() {
		return fmt.Errorf("hbsp: send to pid %d of %d", dst, c.NProcs())
	}
	c.seq++
	c.outbox = append(c.outbox, pendingMsg{src: c.pid, dst: dst, tag: tag, payload: payload, seq: c.seq})
	return nil
}

// wireTag encodes (scope, generation, user tag) into a pvm tag so that
// messages of different supersteps never mix. User tags must fit 16
// bits; generations wrap within 20 bits, far beyond any real run.
func (c *cctx) wireTag(scope *model.Machine, gen, userTag int) int {
	c.shared.mu.Lock()
	id, ok := c.shared.scopeID[scope]
	if !ok {
		id = len(c.shared.scopeID) + 1
		c.shared.scopeID[scope] = id
	}
	c.shared.mu.Unlock()
	return id<<28 | (gen&0xFFFFF)<<8 | (userTag & 0xFF)
}

func (c *cctx) Sync(scope *model.Machine, label string) error {
	if scope == nil {
		return errors.New("hbsp: Sync with nil scope")
	}
	gen := c.syncSeq[scope]
	c.syncSeq[scope] = gen + 1

	leaves := scope.Leaves()
	inScope := make(map[int]bool, len(leaves))
	for _, l := range leaves {
		inScope[c.eng.tree.Pid(l)] = true
	}
	if !inScope[c.pid] {
		return fmt.Errorf("hbsp: processor %d syncing on foreign scope %s", c.pid, scope.Label())
	}

	start := time.Since(c.shared.started)

	// Transmit every queued message whose endpoints are both inside the
	// scope; the rest stay queued for a wider sync.
	var kept []pendingMsg
	sentBytes := 0
	for _, m := range c.outbox {
		if !inScope[m.dst] {
			kept = append(kept, m)
			continue
		}
		buf := pvm.NewBuffer()
		buf.PackInt32(int32(m.src), int32(m.tag))
		buf.PackBytes(m.payload)
		if err := c.task.Send(c.tids[m.dst], c.wireTag(scope, gen, 0), buf); err != nil {
			return err
		}
		sentBytes += len(m.payload)
	}
	c.outbox = kept

	barrier := fmt.Sprintf("sync:%s#%d", scope.Label(), gen)
	members := make([]int, len(leaves))
	for i, l := range leaves {
		members[i] = c.eng.tree.Pid(l)
	}
	c.shared.enterSync(c.pid, &syncWait{scope: scope.Label(), label: label, gen: gen, members: members})
	err := c.task.Barrier(barrier, len(leaves))
	c.shared.leaveSync(c.pid)
	if err != nil {
		// A halt during the wait means the watchdog declared a desync:
		// surface its structured report instead of the bare ErrHalted.
		if errors.Is(err, pvm.ErrHalted) {
			if derr := c.shared.desyncErr(); derr != nil {
				return derr
			}
		}
		return err
	}

	// All sends of this (scope, gen) happened before any barrier exit,
	// so the mailbox now holds the complete delivery.
	c.inbox = c.inbox[:0]
	recvBytes := 0
	var seqs []int
	for {
		m, ok := c.task.TryRecv(pvm.AnySource, c.wireTag(scope, gen, 0))
		if !ok {
			break
		}
		b := m.Buffer()
		src, err := b.UnpackInt32()
		if err != nil {
			return err
		}
		tag, err := b.UnpackInt32()
		if err != nil {
			return err
		}
		payload, err := b.UnpackBytes()
		if err != nil {
			return err
		}
		c.inbox = append(c.inbox, Message{Src: int(src), Tag: int(tag), Payload: payload})
		seqs = append(seqs, len(seqs))
		recvBytes += len(payload)
	}
	sortMessages(c.inbox, seqs)

	// The scope coordinator records the step.
	if scope.Coordinator() == c.leaf {
		end := time.Since(c.shared.started)
		c.shared.mu.Lock()
		c.shared.steps = append(c.shared.steps, trace.Step{
			Index:        len(c.shared.steps),
			Label:        label,
			ScopeLabel:   scope.Label(),
			ScopeName:    scope.Name,
			Level:        scope.Level,
			Participants: len(leaves),
			Time:         float64(end-start) / float64(time.Microsecond),
			Bytes:        sentBytes + recvBytes,
			Start:        float64(start) / float64(time.Microsecond),
			End:          float64(end) / float64(time.Microsecond),
		})
		c.shared.mu.Unlock()
	}
	return nil
}

// Run executes the program on every processor with real concurrency and
// returns a wall-clock report (times in microseconds).
func (e *Concurrent) Run(prog Program) (*trace.Report, error) {
	p := e.tree.NProcs()
	sys := pvm.NewSystem()
	shared := &crun{
		scopeID: make(map[*model.Machine]int),
		started: time.Now(),
		nprocs:  p,
		waiting: make(map[int]*syncWait),
		exited:  make(map[int]bool),
		arrived: make(map[int]map[string]int),
	}

	timeout := e.DesyncTimeout
	if timeout == 0 {
		timeout = defaultDesyncTimeout
	}
	if timeout > 0 {
		done := make(chan struct{})
		defer close(done)
		go shared.watch(sys, timeout, done)
	}

	tids := make([]pvm.TID, p)
	ready := make(chan struct{})
	for pid := 0; pid < p; pid++ {
		pid := pid
		tids[pid] = sys.Spawn(fmt.Sprintf("proc%d", pid), func(t *pvm.Task) error {
			// markExited runs even on panic, so a crashed processor still
			// triggers the deterministic exited-member desync check.
			defer shared.markExited(pid)
			<-ready
			c := &cctx{
				pid:     pid,
				leaf:    e.tree.Leaf(pid),
				eng:     e,
				task:    t,
				tids:    tids,
				syncSeq: make(map[*model.Machine]int),
				shared:  shared,
			}
			return prog(c)
		})
	}
	close(ready)
	err := sys.Wait()
	shared.mu.Lock()
	defer shared.mu.Unlock()
	// The watchdog's structured report beats the per-task ErrHalted noise
	// its Halt produced.
	if shared.desync != nil {
		err = shared.desync
	}
	total := float64(time.Since(shared.started)) / float64(time.Microsecond)
	return &trace.Report{Steps: shared.steps, Total: total}, err
}
