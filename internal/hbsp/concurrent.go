package hbsp

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"hbspk/internal/fabric"
	"hbspk/internal/model"
	"hbspk/internal/obsv"
	"hbspk/internal/pvm"
	"hbspk/internal/trace"
)

// Concurrent executes programs with real parallelism on the pvm
// substrate: every processor is a spawned task, bulk messages travel
// through task mailboxes, and scoped barriers are pvm group barriers.
// Heterogeneity can be emulated by time dilation: Charge busy-spins for
// ops·CompSlowdown·TimeUnit of wall time.
//
// The engine reports wall-clock step times, so its numbers are
// machine-dependent and noisy; it exists to validate that programs are
// correct concurrent code and deliver exactly the same data as the
// virtual engine. Programs must be well-formed SPMD (every processor of
// a scope syncs on it the same number of times); a malformed program is
// converted from a silent deadlock into ErrDesync by an always-on
// watchdog: every Sync registers a per-scope sync-generation waiter,
// and when a waited scope can provably never complete — a member
// already exited, or every live processor has been parked at a barrier
// for DesyncTimeout with no barrier completing — the run is halted with
// a report naming the waiting and lagging processors.
//
// A Chaos plan injects crash-stops and message faults with the same
// taxonomy as the virtual engine: a scope member's death surfaces to
// every live member as ErrPeerFailed at the same per-scope sync
// generation (the dying processor cancels the barriers of already
// parked survivors; late arrivals see the dead set before parking), and
// subsequent Syncs on that scope complete over the survivors.
type Concurrent struct {
	tree *model.Tree
	// TimeUnit is the wall-clock duration of one fastest-machine work
	// unit for Charge; zero disables dilation.
	TimeUnit time.Duration
	// DesyncTimeout is how long every live processor must sit blocked at
	// barriers, with none completing, before the watchdog declares a
	// desync. Zero means the 2s default; negative disables the watchdog
	// entirely (the exited-member check included).
	DesyncTimeout time.Duration

	// Chaos, when non-nil, injects the plan's faults. Crash-at-step and
	// message drop/duplicate fates match the virtual engine exactly
	// (they hash the same message identities); AtTime crashes and the
	// virtual-clock flavor of delays do not apply to wall-clock runs —
	// delays here park a message for the given number of the sender's
	// sync ordinals.
	Chaos *fabric.ChaosPlan

	// DetectFactor, when positive, arms a barrier-wait deadline of
	// DetectFactor × the observed mean barrier wait (EWMA), doubling
	// per successive timeout by the same processor. Expiry surfaces as
	// ErrTimeout: the peer's fate is unknown, unlike the definite
	// ErrPeerFailed of a detected crash. Off by default — crash
	// detection does not need it, it exists to model partitions.
	DetectFactor float64

	// Obsv, when non-nil, receives structured spans and metrics:
	// superstep spans (recorded by each scope's live coordinator,
	// measured only — the wall-clock engine makes no model prediction),
	// per-processor barrier waits, sampled deliveries, and chaos
	// injections. Times are microseconds since the run started.
	Obsv *obsv.Recorder

	// Verify enables the happens-before checker (DESIGN.md §5.3): every
	// message carries the sender's vector clock and a payload checksum
	// on the wire, clocks join at every barrier via a deposit exchange,
	// and a read without a barrier edge from its send — or a payload
	// that changed after Send — fails the processor with a typed
	// *ErrNondeterminism. Stamping is charged nothing: verification is
	// a harness, not part of the modeled protocol.
	Verify bool

	// Ckpt and CheckpointEvery enable superstep checkpointing, with the
	// same cadence and store semantics as the virtual engine: at every
	// CheckpointEvery-th completed global superstep each processor's
	// Save()d state is committed. The wall-clock engine does not charge
	// a modeled checkpoint cost (the commit's real cost is already in
	// the measured times); the virtual engine charges
	// Config.CheckpointByte for the same commits.
	Ckpt            *CheckpointStore
	CheckpointEvery int
}

// defaultDesyncTimeout balances catching real deadlocks quickly against
// never firing on a healthy but heavily dilated run: the stall clock
// only advances while every live processor is inside a barrier wait, so
// long Charge phases cannot trip it.
const defaultDesyncTimeout = 2 * time.Second

// NewConcurrent returns a wall-clock engine for the tree.
func NewConcurrent(t *model.Tree) *Concurrent { return &Concurrent{tree: t} }

// cctx is the per-processor Ctx of the concurrent engine.
type cctx struct {
	pid  int
	leaf *model.Machine
	eng  *Concurrent
	task *pvm.Task
	tids []pvm.TID

	outbox []pendingMsg
	inbox  []Message
	seq    int
	// batch groups one superstep's outbox per destination so each
	// mailbox is appended under a single lock acquisition; touched lists
	// the destinations with a non-empty batch.
	batch   [][]*pvm.Buffer
	touched []int
	// syncSeq counts this processor's syncs per scope so that senders
	// and receivers agree on a message tag per (scope, generation).
	syncSeq map[*model.Machine]int
	// ord counts this processor's Sync calls across all scopes: the
	// chaos plan's per-processor step ordinal.
	ord int

	failedView []int
	ckptStage  map[string][]byte

	// Verification state: this processor's vector clock, the metadata of
	// the current delivery window, and the count of completed syncs.
	vc     VClock
	inmeta []msgMeta
	steps  int

	shared *crun
}

// crun is the state shared by all processors of one Run.
type crun struct {
	mu      sync.Mutex
	sys     *pvm.System
	steps   []trace.Step
	scopeID map[*model.Machine]int
	started time.Time

	// Desync watchdog state, all under mu: waiting maps pid to its
	// current barrier wait, exited records returned processors, progress
	// counts barrier completions and exits (any increment proves the run
	// is still advancing), desync latches the watchdog's verdict.
	nprocs   int
	waiting  map[int]*syncWait
	exited   map[int]bool
	progress uint64
	desync   error
	// arrived[pid][scope] is the highest sync generation pid has reached
	// on that scope. An exited member is only lagging for a waiter if it
	// never arrived at the waiter's generation; without this, a member
	// exiting right after the final barrier would race a still-parked
	// waiter into a false desync.
	arrived map[int]map[string]int

	// Fault-tolerance state, under mu: dead records chaos-killed
	// processors; acked[pid][scope] is the dead set pid has
	// acknowledged on that scope (per scope, so a death learned through
	// a subscope still surfaces on every other scope containing the
	// victim); detectCount drives the optional deadline backoff;
	// waitEWMA tracks the mean successful barrier wait, the deadline's
	// prediction base.
	dead        map[int]*failInfo
	acked       map[int]map[string]map[int]bool
	detectCount map[int]int
	waitEWMA    time.Duration
}

// ackScope marks every dead member of the scope acknowledged by pid and
// returns the smallest newly dead member plus pid's updated global dead
// view. Caller holds mu. Returns -1 when nothing was unacknowledged.
func (s *crun) ackScope(pid int, scope string, members []int) (int, []int) {
	first := -1
	for _, m := range members {
		if s.dead[m] != nil && !s.acked[pid][scope][m] {
			if first < 0 || m < first {
				first = m
			}
		}
	}
	if first < 0 {
		return -1, nil
	}
	if s.acked[pid] == nil {
		s.acked[pid] = make(map[string]map[int]bool)
	}
	if s.acked[pid][scope] == nil {
		s.acked[pid][scope] = make(map[int]bool)
	}
	for _, m := range members {
		if s.dead[m] != nil {
			s.acked[pid][scope][m] = true
		}
	}
	union := make(map[int]bool)
	for _, perScope := range s.acked[pid] {
		for dp := range perScope {
			union[dp] = true
		}
	}
	return first, sortedPids(union)
}

// syncWait describes one processor parked in Sync: the scope's label,
// this processor's sync generation for it, the member pids that must
// arrive for the barrier to complete, and the pvm barrier name (so a
// crashing member can cancel exactly this wait).
type syncWait struct {
	scope   string
	label   string
	gen     int
	members []int
	barrier string
}

// checkAndEnter is the survivor side of the crash protocol's
// serialization point. Under one critical section it either (a) finds
// dead, unacknowledged members of the scope — acks them all, and
// returns the first one's failure record — or (b) registers the barrier
// wait, with the caller's barrier name extended by the acknowledged
// dead members of the scope so that shrunken barriers never collide
// with pre-failure ones. A crashing member holds the same lock while it
// marks itself dead and collects parked waiters to cancel, so every
// survivor either parks before the cancel or sees the dead set here.
func (s *crun) checkAndEnter(pid int, w *syncWait) (deadPid int, info *failInfo, deadView []int, count int) {
	s.mu.Lock()
	defer s.mu.Unlock()

	if first, view := s.ackScope(pid, w.scope, w.members); first >= 0 {
		return first, s.dead[first], view, 0
	}

	// Shrunken barrier identity: generation plus this pid's acked dead
	// members of the scope. The failure protocol guarantees every live
	// member acks the same dead set at the same generation, so all
	// survivors compute the same name and the same live count.
	var deadTag []string
	count = 0
	for _, m := range w.members {
		if s.acked[pid][w.scope][m] {
			deadTag = append(deadTag, fmt.Sprintf("%d", m))
		} else {
			count++
		}
	}
	if len(deadTag) > 0 {
		w.barrier += "!" + strings.Join(deadTag, ",")
	}
	s.waiting[pid] = w
	m := s.arrived[pid]
	if m == nil {
		m = make(map[string]int)
		s.arrived[pid] = m
	}
	m[w.scope] = w.gen
	return -1, nil, nil, count
}

// crashSelf is the victim side: mark pid dead under mu and collect the
// barrier names of parked survivors waiting on scopes containing pid,
// then cancel them outside the lock. Canceled waiters wake with
// ErrCanceled and convert it to ErrPeerFailed.
func (s *crun) crashSelf(pid, ord int) {
	s.mu.Lock()
	s.dead[pid] = &failInfo{step: ord, cause: "crash-stop"}
	var cancel []string
	for waiter, w := range s.waiting {
		if waiter == pid {
			continue
		}
		for _, m := range w.members {
			if m == pid {
				cancel = append(cancel, w.barrier)
				break
			}
		}
	}
	sys := s.sys
	s.mu.Unlock()
	for _, name := range cancel {
		sys.CancelBarrier(name)
	}
}

// ackCanceled handles a survivor woken by a crash cancel: ack every
// dead member of its scope and return the first one's record.
func (s *crun) ackCanceled(pid int, scope string, members []int) (int, *failInfo, []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	first, view := s.ackScope(pid, scope, members)
	if first < 0 {
		return -1, nil, nil
	}
	return first, s.dead[first], view
}

func (s *crun) leaveSync(pid int, wait time.Duration) {
	s.mu.Lock()
	delete(s.waiting, pid)
	s.progress++
	if wait > 0 {
		if s.waitEWMA == 0 {
			s.waitEWMA = wait
		} else {
			s.waitEWMA = (s.waitEWMA*4 + wait) / 5
		}
	}
	s.mu.Unlock()
}

func (s *crun) markExited(pid int) {
	s.mu.Lock()
	s.exited[pid] = true
	s.progress++
	s.mu.Unlock()
}

func (s *crun) desyncErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.desync
}

// barrierDeadline returns the optional detection deadline for pid: the
// engine's DetectFactor × the observed mean barrier wait, doubling per
// successive timeout (failure-detector backoff). Zero means no deadline.
func (s *crun) barrierDeadline(pid int, factor float64) time.Duration {
	if factor <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	base := s.waitEWMA
	if base <= 0 {
		return 0 // no history yet: no deadline
	}
	backoff := s.detectCount[pid]
	if backoff > 6 {
		backoff = 6
	}
	return time.Duration(factor * float64(base) * float64(int(1)<<uint(backoff)))
}

func (s *crun) noteTimeout(pid int) {
	s.mu.Lock()
	s.detectCount[pid]++
	s.mu.Unlock()
}

// watch polls the waiter registry until done closes. It declares a
// desync when a waited barrier can provably never complete:
//
//   - a member of a waited scope has already exited (deterministic, no
//     timeout involved), or
//   - every live processor has been parked at some barrier across a
//     full timeout window with no barrier completing in between —
//     barriers only complete through arrivals, and with nobody left to
//     arrive the run cannot advance.
//
// A chaos-killed member is not a desync: the victim's cancel already
// races ahead of the watchdog, which only re-cancels the waiter's
// barrier as a backstop.
//
// On a verdict it latches the structured error and halts the system,
// waking every parked barrier with ErrHalted.
func (s *crun) watch(sys *pvm.System, timeout time.Duration, done <-chan struct{}) {
	tick := timeout / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	var (
		stallSince    time.Time
		stallProgress uint64
		stalled       bool
	)
	for {
		select {
		case <-done:
			return
		case now := <-ticker.C:
			s.mu.Lock()
			if s.desync != nil {
				s.mu.Unlock()
				return
			}
			cancel, err := s.exitedMemberDesync()
			if err != nil {
				s.desync = err
				s.mu.Unlock()
				sys.Halt()
				return
			}
			s.mu.Unlock()
			for _, name := range cancel {
				sys.CancelBarrier(name)
			}
			s.mu.Lock()
			allParked := len(s.waiting) > 0 && len(s.waiting)+len(s.exited) == s.nprocs
			if !allParked || !stalled || s.progress != stallProgress {
				stalled = allParked
				stallProgress = s.progress
				stallSince = now
				s.mu.Unlock()
				continue
			}
			if now.Sub(stallSince) < timeout {
				s.mu.Unlock()
				continue
			}
			s.desync = s.stallDesync()
			s.mu.Unlock()
			sys.Halt()
			return
		}
	}
}

// exitedMemberDesync reports a waited scope with an exited member, a
// barrier that can never complete. Chaos-killed members are not a
// program bug: their waiters' barriers are returned for cancellation
// (the failure path) instead of a desync verdict. Caller holds mu.
func (s *crun) exitedMemberDesync() (cancel []string, err error) {
	for pid, w := range s.waiting {
		for _, m := range w.members {
			reached, ok := s.arrived[m][w.scope]
			if s.exited[m] && (!ok || reached < w.gen) {
				if s.dead[m] != nil {
					// Only a barrier that has not yet acknowledged this
					// death can hang on it; an acked barrier counts live
					// members only and completes without the corpse.
					if !s.acked[pid][w.scope][m] {
						cancel = append(cancel, w.barrier)
					}
					continue
				}
				return nil, fmt.Errorf("%w: p%d waits on %s#%d(%s) but member p%d already exited",
					ErrDesync, pid, w.scope, w.gen, w.label, m)
			}
		}
	}
	return cancel, nil
}

// stallDesync builds the stalled-barriers report: who waits where, and
// which scope members lag. Caller holds mu.
func (s *crun) stallDesync() error {
	var waitParts, lagParts []string
	lagging := map[int]bool{}
	for pid := 0; pid < s.nprocs; pid++ {
		w, ok := s.waiting[pid]
		if !ok {
			continue
		}
		waitParts = append(waitParts, fmt.Sprintf("p%d@%s#%d(%s)", pid, w.scope, w.gen, w.label))
		for _, m := range w.members {
			mw := s.waiting[m]
			if mw == nil || mw.scope != w.scope || mw.gen != w.gen {
				lagging[m] = true
			}
		}
	}
	for pid := 0; pid < s.nprocs; pid++ {
		if !lagging[pid] {
			continue
		}
		switch {
		case s.exited[pid]:
			lagParts = append(lagParts, fmt.Sprintf("p%d:exited", pid))
		case s.waiting[pid] != nil:
			w := s.waiting[pid]
			lagParts = append(lagParts, fmt.Sprintf("p%d:at %s#%d(%s)", pid, w.scope, w.gen, w.label))
		default:
			lagParts = append(lagParts, fmt.Sprintf("p%d:not at a barrier", pid))
		}
	}
	msg := "waiting: " + strings.Join(waitParts, " ")
	if len(lagParts) > 0 {
		msg += "; lagging: " + strings.Join(lagParts, " ")
	}
	return fmt.Errorf("%w: %s", ErrDesync, msg)
}

func (c *cctx) Pid() int             { return c.pid }
func (c *cctx) NProcs() int          { return c.eng.tree.NProcs() }
func (c *cctx) Tree() *model.Tree    { return c.eng.tree }
func (c *cctx) Self() *model.Machine { return c.leaf }
func (c *cctx) Moves() []Message     { return c.inbox }

func (c *cctx) Charge(ops float64) {
	if ops <= 0 || c.eng.TimeUnit <= 0 {
		return
	}
	slow := c.eng.Chaos.Slowdown(c.pid, c.ord)
	d := time.Duration(ops * c.leaf.CompSlowdown * slow * float64(c.eng.TimeUnit))
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		// Busy spin: emulated computation must consume CPU, not yield
		// it, to behave like the real slow machine.
	}
}

func (c *cctx) Failed() []int { return append([]int(nil), c.failedView...) }

func (c *cctx) Save(key string, data []byte) {
	if c.ckptStage == nil {
		c.ckptStage = make(map[string][]byte)
	}
	c.ckptStage[key] = append([]byte(nil), data...)
}

func (c *cctx) Restore(key string) ([]byte, bool) {
	if c.eng.Ckpt == nil {
		return nil, false
	}
	return c.eng.Ckpt.get(c.pid, key)
}

func (c *cctx) Send(dst, tag int, payload []byte) error {
	if dst < 0 || dst >= c.NProcs() {
		return fmt.Errorf("hbsp: send to pid %d of %d", dst, c.NProcs())
	}
	c.seq++
	m := pendingMsg{src: c.pid, dst: dst, tag: tag, payload: payload, seq: c.seq}
	if c.eng.Verify {
		m.stamp = c.vc.clone()
		m.sum = payloadSum(payload)
	}
	c.outbox = append(c.outbox, m)
	return nil
}

// wireTag encodes (scope, generation, user tag) into a pvm tag so that
// messages of different supersteps never mix. User tags must fit 8
// bits; generations wrap within 20 bits, far beyond any real run.
func (c *cctx) wireTag(scope *model.Machine, gen, userTag int) int {
	c.shared.mu.Lock()
	id, ok := c.shared.scopeID[scope]
	if !ok {
		id = len(c.shared.scopeID) + 1
		c.shared.scopeID[scope] = id
	}
	c.shared.mu.Unlock()
	return id<<28 | (gen&0xFFFFF)<<8 | (userTag & 0xFF)
}

func (c *cctx) Sync(scope *model.Machine, label string) error {
	if scope == nil {
		return errors.New("hbsp: Sync with nil scope")
	}
	if c.eng.Verify {
		// The closing barrier ends the window in which this superstep was
		// entitled to read its inbox: the payloads must still hash to
		// their delivery stamps.
		if e := recheckWindow(c.pid, c.steps, c.inbox, c.inmeta); e != nil {
			return e
		}
	}
	ord := c.ord
	c.ord++
	gen := c.syncSeq[scope]
	c.syncSeq[scope] = gen + 1

	// Crash-stop injection: the victim dies at the boundary, losing the
	// superstep in progress (nothing queued is flushed), and cancels the
	// barriers of already parked members so they observe the failure.
	if c.eng.Chaos.CrashNow(c.pid, ord, 0) {
		c.eng.Obsv.Chaos("crash", ord, c.pid, c.pid, c.nowMicros())
		c.shared.crashSelf(c.pid, ord)
		return fmt.Errorf("%w (p%d at step %d)", errCrashStop, c.pid, ord)
	}

	leaves := scope.Leaves()
	inScope := make(map[int]bool, len(leaves))
	for _, l := range leaves {
		inScope[c.eng.tree.Pid(l)] = true
	}
	if !inScope[c.pid] {
		return fmt.Errorf("hbsp: processor %d syncing on foreign scope %s", c.pid, scope.Label())
	}

	start := time.Since(c.shared.started)

	// Transmit every queued message whose endpoints are both inside the
	// scope; the rest stay queued for a wider sync. Chaos fates are
	// assigned at the first flush a message could take: dropped
	// messages vanish, duplicates go twice, delayed ones stay queued
	// until the sender's ordinal passes the hold. Messages to a dead
	// destination are dropped.
	var kept []pendingMsg
	sentBytes := 0
	for i := range c.outbox {
		m := c.outbox[i]
		if !inScope[m.dst] {
			kept = append(kept, m)
			continue
		}
		if !m.fated {
			f := c.eng.Chaos.MessageFate(m.src, m.dst, m.seq)
			m.fated, m.drop, m.dup = true, f.Drop, f.Duplicate
			if f.Delay > 0 {
				m.holdUntil = ord + f.Delay
			}
			switch {
			case f.Drop:
				c.eng.Obsv.Chaos("drop", ord, m.src, m.dst, c.nowMicros())
			case f.Duplicate:
				c.eng.Obsv.Chaos("duplicate", ord, m.src, m.dst, c.nowMicros())
			case f.Delay > 0:
				c.eng.Obsv.Chaos("delay", ord, m.src, m.dst, c.nowMicros())
			}
		}
		if m.holdUntil > ord {
			kept = append(kept, m)
			continue
		}
		if m.drop || c.deadPid(m.dst) {
			continue
		}
		copies := 1
		if m.dup {
			copies = 2
		}
		for n := 0; n < copies; n++ {
			buf := pvm.NewBuffer()
			buf.PackInt32(int32(m.src), int32(m.tag))
			buf.PackBytes(m.payload)
			if c.eng.Verify {
				buf.PackInt64(int64(m.sum))
				buf.PackInt64Slice(m.stamp.encodeInt64())
			}
			if c.batch == nil {
				c.batch = make([][]*pvm.Buffer, c.NProcs())
			}
			if len(c.batch[m.dst]) == 0 {
				c.touched = append(c.touched, m.dst)
			}
			c.batch[m.dst] = append(c.batch[m.dst], buf)
			sentBytes += len(m.payload)
		}
	}
	c.outbox = kept

	// One mailbox append per destination, in pid order: the whole
	// superstep's traffic to a peer lands under a single lock
	// acquisition.
	sort.Ints(c.touched)
	var sendErr error
	for _, dst := range c.touched {
		if sendErr == nil {
			sendErr = c.task.SendBatch(c.tids[dst], c.wireTag(scope, gen, 0), c.batch[dst])
		}
		c.batch[dst] = c.batch[dst][:0]
	}
	c.touched = c.touched[:0]
	if sendErr != nil {
		return sendErr
	}

	members := make([]int, len(leaves))
	for i, l := range leaves {
		members[i] = c.eng.tree.Pid(l)
	}
	wait := &syncWait{
		scope:   scope.Label(),
		label:   label,
		gen:     gen,
		members: members,
		barrier: fmt.Sprintf("sync:%s#%d", scope.Label(), gen),
	}
	deadPid, info, view, count := c.shared.checkAndEnter(c.pid, wait)
	if deadPid >= 0 {
		c.failedView = view
		return &ErrPeerFailed{Pid: deadPid, Step: info.step, Cause: info.cause}
	}
	deadline := c.shared.barrierDeadline(c.pid, c.eng.DetectFactor)
	bEnter := time.Since(c.shared.started)
	var err error
	var deposits map[pvm.TID][]byte
	if c.eng.Verify {
		// Barriers double as the clock-join: every participant deposits
		// its vector clock and gathers the others' on completion.
		dep := pvm.NewBuffer().PackInt64Slice(c.vc.encodeInt64()).Bytes()
		deposits, err = c.task.BarrierExchange(wait.barrier, count, deadline, dep)
	} else {
		err = c.task.BarrierTimeout(wait.barrier, count, deadline)
	}
	c.shared.leaveSync(c.pid, time.Since(c.shared.started)-start)
	if err == nil {
		c.eng.Obsv.BarrierWait(ord, c.pid, wait.scope, scope.Level,
			micros(bEnter), c.nowMicros())
	}
	if err != nil {
		switch {
		case errors.Is(err, pvm.ErrCanceled):
			// A member crashed while we were parked; convert the cancel
			// into the typed failure.
			if dp, di, dv := c.shared.ackCanceled(c.pid, wait.scope, members); dp >= 0 {
				c.failedView = dv
				return &ErrPeerFailed{Pid: dp, Step: di.step, Cause: di.cause}
			}
			return err
		case errors.Is(err, pvm.ErrTimeout):
			c.shared.noteTimeout(c.pid)
			return fmt.Errorf("hbsp: detection deadline on %s#%d(%s): %w",
				wait.scope, gen, label, err)
		case errors.Is(err, pvm.ErrHalted):
			// A halt during the wait means the watchdog declared a
			// desync: surface its structured report instead of the bare
			// ErrHalted.
			if derr := c.shared.desyncErr(); derr != nil {
				return derr
			}
		}
		return err
	}

	c.steps++
	if c.eng.Verify {
		for _, raw := range deposits {
			vs, derr := pvm.Wrap(raw).UnpackInt64Slice()
			if derr != nil {
				return derr
			}
			c.vc.join(decodeVClock(vs))
		}
		c.vc.tick(c.pid)
	}

	// All sends of this (scope, gen) happened before any barrier exit,
	// so the mailbox now holds the complete delivery. Payloads are
	// copied out of the pooled wires into one fresh slab per window —
	// delivered bytes keep garbage-collected lifetime (programs hold
	// collective results across supersteps), while the wire buffers
	// release straight back to the arena.
	c.inbox = c.inbox[:0]
	c.inmeta = c.inmeta[:0]
	recvBytes := 0
	msgs := c.task.TryRecvAll(pvm.AnySource, c.wireTag(scope, gen, 0))
	slabCap := 0
	for _, m := range msgs {
		slabCap += m.Len()
	}
	slab := make([]byte, 0, slabCap)
	for _, m := range msgs {
		b := m.Buffer()
		src, err := b.UnpackInt32()
		if err != nil {
			return err
		}
		tag, err := b.UnpackInt32()
		if err != nil {
			return err
		}
		payload, err := b.UnpackBytes()
		if err != nil {
			return err
		}
		// slabCap over-covers the framing, so these appends never
		// reallocate and earlier windows' slices stay intact.
		slab = append(slab, payload...)
		payload = slab[len(slab)-len(payload):]
		if c.eng.Verify {
			sum, err := b.UnpackInt64()
			if err != nil {
				return err
			}
			stamp, err := b.UnpackInt64Slice()
			if err != nil {
				return err
			}
			c.inmeta = append(c.inmeta, msgMeta{src: int(src), tag: int(tag),
				stamp: decodeVClock(stamp), sum: uint64(sum)})
		}
		c.inbox = append(c.inbox, Message{Src: int(src), Tag: int(tag), Payload: payload})
		recvBytes += len(payload)
		c.eng.Obsv.Delivery(ord, int(src), c.pid, int(tag), int64(len(payload)), c.nowMicros())
		m.Release()
	}
	if c.eng.Verify {
		// Sort inbox and metadata through one index permutation so the
		// stamps stay aligned with their messages, then run the
		// happens-before and checksum checks on the delivered window.
		idx := make([]int, len(c.inbox))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return c.inbox[idx[a]].Src < c.inbox[idx[b]].Src })
		inbox := make([]Message, len(c.inbox))
		metas := make([]msgMeta, len(c.inbox))
		for i, j := range idx {
			inbox[i], metas[i] = c.inbox[j], c.inmeta[j]
		}
		c.inbox, c.inmeta = inbox, metas
		for i, m := range c.inbox {
			if e := checkDelivery(c.pid, c.steps, m, c.inmeta[i], c.vc); e != nil {
				return e
			}
		}
	} else {
		// Arrival order is already per-sender FIFO; a stable sort by
		// source yields the engine's (Src, send order) delivery contract.
		sort.SliceStable(c.inbox, func(a, b int) bool { return c.inbox[a].Src < c.inbox[b].Src })
	}

	// Checkpoint commit at the global cadence, mirroring the virtual
	// engine's consistent cut: gen+1 completed global supersteps.
	if scope == c.eng.tree.Root && c.eng.Ckpt != nil && c.eng.CheckpointEvery > 0 &&
		(gen+1)%c.eng.CheckpointEvery == 0 {
		c.eng.Ckpt.commit(c.pid, gen+1, c.ckptStage)
		c.ckptStage = nil
	}

	// The scope coordinator records the step — the fastest live member,
	// so a dead coordinator's role fails over.
	if c.liveCoordinator(scope) == c.leaf {
		end := time.Since(c.shared.started)
		c.shared.mu.Lock()
		idx := len(c.shared.steps)
		c.shared.steps = append(c.shared.steps, trace.Step{
			Index:        idx,
			Label:        label,
			ScopeLabel:   scope.Label(),
			ScopeName:    scope.Name,
			Level:        scope.Level,
			Participants: count,
			Time:         float64(end-start) / float64(time.Microsecond),
			Bytes:        sentBytes + recvBytes,
			Start:        float64(start) / float64(time.Microsecond),
			End:          float64(end) / float64(time.Microsecond),
		})
		c.shared.mu.Unlock()
		c.eng.Obsv.Superstep(idx, label, scope.Label(), scope.Level,
			micros(start), micros(end), 0, int64(sentBytes+recvBytes))
	}
	return nil
}

// micros converts an engine-relative duration to the microsecond time
// base the observability layer uses for wall-clock runs.
func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// nowMicros is the processor's current time on the run clock.
func (c *cctx) nowMicros() float64 { return micros(time.Since(c.shared.started)) }

// deadPid reports whether pid is chaos-dead.
func (c *cctx) deadPid(pid int) bool {
	c.shared.mu.Lock()
	defer c.shared.mu.Unlock()
	return c.shared.dead[pid] != nil
}

// liveCoordinator is the scope coordinator restricted to leaves this
// processor does not know to be dead: coordinator failover.
func (c *cctx) liveCoordinator(scope *model.Machine) *model.Machine {
	if len(c.failedView) == 0 {
		return scope.Coordinator()
	}
	dead := make(map[int]bool, len(c.failedView))
	for _, pid := range c.failedView {
		dead[pid] = true
	}
	return scope.CoordinatorAmong(func(m *model.Machine) bool {
		return !dead[c.eng.tree.Pid(m)]
	})
}

// Run executes the program on every processor with real concurrency and
// returns a wall-clock report (times in microseconds). A chaos-injected
// crash-stop is not itself a run error: if the survivors complete, the
// run completes.
func (e *Concurrent) Run(prog Program) (*trace.Report, error) {
	p := e.tree.NProcs()
	sys := pvm.NewSystem()
	shared := &crun{
		sys:         sys,
		scopeID:     make(map[*model.Machine]int),
		started:     time.Now(),
		nprocs:      p,
		waiting:     make(map[int]*syncWait),
		exited:      make(map[int]bool),
		arrived:     make(map[int]map[string]int),
		dead:        make(map[int]*failInfo),
		acked:       make(map[int]map[string]map[int]bool),
		detectCount: make(map[int]int),
	}

	timeout := e.DesyncTimeout
	if timeout == 0 {
		timeout = defaultDesyncTimeout
	}
	if timeout > 0 {
		done := make(chan struct{})
		defer close(done)
		go shared.watch(sys, timeout, done)
	}

	tids := make([]pvm.TID, p)
	ready := make(chan struct{})
	for pid := 0; pid < p; pid++ {
		pid := pid
		tids[pid] = sys.Spawn(fmt.Sprintf("proc%d", pid), func(t *pvm.Task) error {
			// markExited runs even on panic, so a crashed processor still
			// triggers the deterministic exited-member desync check.
			defer shared.markExited(pid)
			<-ready
			c := &cctx{
				pid:     pid,
				leaf:    e.tree.Leaf(pid),
				eng:     e,
				task:    t,
				tids:    tids,
				syncSeq: make(map[*model.Machine]int),
				shared:  shared,
			}
			if e.Verify {
				c.vc = newVClock(p)
			}
			err := prog(c)
			if errors.Is(err, errCrashStop) {
				// The victim's own crash is the experiment, not a
				// program failure; the run's verdict belongs to the
				// survivors.
				return nil
			}
			return err
		})
	}
	close(ready)
	err := sys.Wait()
	shared.mu.Lock()
	defer shared.mu.Unlock()
	// The watchdog's structured report beats the per-task ErrHalted noise
	// its Halt produced — but a nondeterminism verdict is the root cause
	// when a processor failed verification and left its peers stranded.
	if shared.desync != nil {
		err = shared.desync
		for _, taskErr := range sys.Errors() {
			var nd *ErrNondeterminism
			if errors.As(taskErr, &nd) {
				err = taskErr
				break
			}
		}
	}
	total := float64(time.Since(shared.started)) / float64(time.Microsecond)
	return &trace.Report{Steps: shared.steps, Total: total}, err
}
