package hbsp

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"hbspk/internal/fabric"
	"hbspk/internal/model"
	"hbspk/internal/obsv"
	"hbspk/internal/pvm"
	"hbspk/internal/trace"
)

// Concurrent executes programs with real parallelism on the pvm
// substrate: every processor is a spawned task, bulk messages travel
// through task mailboxes, and scoped barriers are pvm group barriers.
// Heterogeneity can be emulated by time dilation: Charge busy-spins for
// ops·CompSlowdown·TimeUnit of wall time.
//
// The engine reports wall-clock step times, so its numbers are
// machine-dependent and noisy; it exists to validate that programs are
// correct concurrent code and deliver exactly the same data as the
// virtual engine. Programs must be well-formed SPMD (every processor of
// a scope syncs on it the same number of times); a malformed program is
// converted from a silent deadlock into ErrDesync by an always-on
// watchdog: every Sync registers a per-scope sync-generation waiter,
// and when a waited scope can provably never complete — a member
// already exited, or every live processor has been parked at a barrier
// for DesyncTimeout with no barrier completing — the run is halted with
// a report naming the waiting and lagging processors.
//
// A Chaos plan injects crash-stops and message faults with the same
// taxonomy as the virtual engine: a scope member's death surfaces to
// every live member as ErrPeerFailed at the same per-scope sync
// generation (the dying processor cancels the barriers of already
// parked survivors; late arrivals see the dead set before parking), and
// subsequent Syncs on that scope complete over the survivors.
type Concurrent struct {
	tree *model.Tree
	// TimeUnit is the wall-clock duration of one fastest-machine work
	// unit for Charge; zero disables dilation.
	TimeUnit time.Duration
	// DesyncTimeout is how long every live processor must sit blocked at
	// barriers, with none completing, before the watchdog declares a
	// desync. Zero means the 2s default; negative disables the watchdog
	// entirely (the exited-member check included).
	DesyncTimeout time.Duration

	// Chaos, when non-nil, injects the plan's faults. Crash-at-step and
	// message drop/duplicate fates match the virtual engine exactly
	// (they hash the same message identities); AtTime crashes and the
	// virtual-clock flavor of delays do not apply to wall-clock runs —
	// delays here park a message for the given number of the sender's
	// sync ordinals.
	Chaos *fabric.ChaosPlan

	// DetectFactor, when positive, arms a barrier-wait deadline of
	// DetectFactor × the observed mean barrier wait (EWMA), doubling
	// per successive timeout by the same processor. Expiry surfaces as
	// ErrTimeout: the peer's fate is unknown, unlike the definite
	// ErrPeerFailed of a detected crash. Off by default — crash
	// detection does not need it, it exists to model partitions.
	DetectFactor float64

	// Obsv, when non-nil, receives structured spans and metrics:
	// superstep spans (recorded by each scope's live coordinator,
	// measured only — the wall-clock engine makes no model prediction),
	// per-processor barrier waits, sampled deliveries, and chaos
	// injections. Times are microseconds since the run started.
	Obsv *obsv.Recorder

	// Verify enables the happens-before checker (DESIGN.md §5.3): every
	// message carries the sender's vector clock and a payload checksum
	// on the wire, clocks join at every barrier via a deposit exchange,
	// and a read without a barrier edge from its send — or a payload
	// that changed after Send — fails the processor with a typed
	// *ErrNondeterminism. Stamping is charged nothing: verification is
	// a harness, not part of the modeled protocol.
	Verify bool

	// Ckpt and CheckpointEvery enable superstep checkpointing, with the
	// same cadence and store semantics as the virtual engine: at every
	// CheckpointEvery-th completed global superstep each processor's
	// Save()d state is committed. The wall-clock engine does not charge
	// a modeled checkpoint cost (the commit's real cost is already in
	// the measured times); the virtual engine charges
	// Config.CheckpointByte for the same commits.
	Ckpt            *CheckpointStore
	CheckpointEvery int

	// ReorgEvery, ReorgSeed and ReorgAlpha mirror the virtual engine's
	// reorganization knobs (DESIGN.md §5.7): every ReorgEvery-th
	// completed global superstep the run opens a cut window — all live
	// processors park on a pair of cut barriers while one applier
	// rebalances the tree from the shared EWMA estimates via the seeded
	// model.PlanReorg. The same window activates dormant joiners. The
	// tree is mutated in place; restore it with Tree.SaveLayout /
	// RestoreLayout to rerun from the pristine layout.
	ReorgEvery int
	ReorgSeed  int64
	ReorgAlpha float64

	// Plan mirrors the virtual engine's planner seam (DESIGN.md §5.9).
	// On this engine the hook fires from the single cut applier inside
	// a cut window — the engine's only SPMD-quiescent points — so
	// online refinement commits at the reorg/membership cadence; set
	// ReorgEvery to open windows on a straggler-free run.
	Plan PlanHook

	// Transport, when non-nil, builds the pvm transport each Run
	// attaches to its System (DESIGN.md §5.10) — a fresh instance per
	// run, closed when the run ends. Nil keeps the in-proc direct path.
	// A transport that severs mid-run surfaces as ErrPeerFailed with
	// cause "link lost", through the same shrink protocol as a crash.
	Transport func() (pvm.Transport, error)
}

// defaultDesyncTimeout balances catching real deadlocks quickly against
// never firing on a healthy but heavily dilated run: the stall clock
// only advances while every live processor is inside a barrier wait, so
// long Charge phases cannot trip it.
const defaultDesyncTimeout = 2 * time.Second

// NewConcurrent returns a wall-clock engine for the tree.
func NewConcurrent(t *model.Tree) *Concurrent { return &Concurrent{tree: t} }

// cctx is the per-processor Ctx of the concurrent engine.
type cctx struct {
	pid  int
	leaf *model.Machine
	eng  *Concurrent
	task *pvm.Task
	tids []pvm.TID

	outbox []pendingMsg
	inbox  []Message
	seq    int
	// batch groups one superstep's outbox per destination so each
	// mailbox is appended under a single lock acquisition; touched lists
	// the destinations with a non-empty batch.
	batch   [][]*pvm.Buffer
	touched []int
	// syncSeq counts this processor's syncs per scope so that senders
	// and receivers agree on a message tag per (scope, generation).
	syncSeq map[*model.Machine]int
	// ord counts this processor's Sync calls across all scopes: the
	// chaos plan's per-processor step ordinal.
	ord int
	// opsAcc accumulates Charge()d ops since the last Sync; the amount
	// is captured at Sync entry and, only if the barrier succeeds, its
	// effective slowdown is folded into the shared reorg estimate —
	// the same observe-on-success rule the virtual engine applies, so
	// equal seeds produce equal estimate streams on both engines.
	opsAcc float64
	// rootDone counts this processor's successful root-scope syncs: the
	// engine-independent consistent-cut ordinal (a joiner starts at its
	// activation cut), driving checkpoint cadence and cut windows.
	rootDone int

	failedView  []int
	membersView []int
	ckptStage   map[string][]byte

	// Verification state: this processor's vector clock, the metadata of
	// the current delivery window, and the count of completed syncs.
	vc     VClock
	inmeta []msgMeta
	steps  int

	shared *crun
}

// crun is the state shared by all processors of one Run.
type crun struct {
	mu      sync.Mutex
	sys     *pvm.System
	steps   []trace.Step
	scopeID map[*model.Machine]int
	started time.Time

	// Desync watchdog state, all under mu: waiting maps pid to its
	// current barrier wait, exited records returned processors, progress
	// counts barrier completions and exits (any increment proves the run
	// is still advancing), desync latches the watchdog's verdict.
	nprocs   int
	waiting  map[int]*syncWait
	exited   map[int]bool
	progress uint64
	desync   error
	// arrived[pid][scope] is the highest sync generation pid has reached
	// on that scope. An exited member is only lagging for a waiter if it
	// never arrived at the waiter's generation; without this, a member
	// exiting right after the final barrier would race a still-parked
	// waiter into a false desync.
	arrived map[int]map[string]int

	// Fault-tolerance state, under mu: dead records chaos-killed
	// processors; acked[pid][scope] is the dead set pid has
	// acknowledged on that scope (per scope, so a death learned through
	// a subscope still surfaces on every other scope containing the
	// victim); detectCount drives the optional deadline backoff;
	// waitEWMA tracks the mean successful barrier wait, the deadline's
	// prediction base.
	dead        map[int]*failInfo
	acked       map[int]map[string]map[int]bool
	detectCount map[int]int
	waitEWMA    time.Duration
	// exitc wakes a cut applier waiting for a crash victim's goroutine
	// to finish unwinding: a resumed victim still runs user code that
	// may read the tree, so the applier must not rebalance over it.
	// Signaled by markExited; waits under mu.
	exitc *sync.Cond

	// Elastic-membership state, under mu. dormant pids await their
	// activation cut behind a per-pid gate channel (their tasks are
	// pre-spawned but parked); joined records activated latecomers
	// (pid -> activation cut) pending acknowledgment;
	// ackedJoin[pid][scope] is the joined set pid has acknowledged on
	// that scope — the join notice burns one sync generation on every
	// scope containing the newcomer, for every member including the
	// newcomer itself, mirroring the virtual engine exactly;
	// knownActive[pid] is pid's membership view; gens[scope] is the
	// next sync generation of the scope (every Sync entry raises it),
	// snapshotted into joinGens at activation so a newcomer's syncSeq
	// starts aligned with the old members'.
	dormant     map[int]bool
	joined      map[int]int
	ackedJoin   map[int]map[string]map[int]bool
	knownActive map[int]map[int]bool
	gens        map[string]int
	joinGens    map[int]map[string]int
	gates       map[int]chan struct{}
	// cutGens is the applier's snapshot of gens at the last membership
	// cut, taken while every live processor is parked inside the cut
	// window; members re-align their per-scope generations against it
	// when they leave the window (a rebalance can move a leaf under a
	// scope it has never synced on).
	cutGens map[string]int

	// Reorganization state, under mu: rer folds each processor's
	// measured effective compute slowdown; epoch counts applied
	// reorganizations.
	rer   *model.Reranker
	epoch int

	// planDead tracks the dead-set size last reported to the PlanHook
	// (guarded by mu), so each death surfaces as exactly one
	// TreeChanged at the next cut window.
	planDead int
}

// ackScope marks exactly ONE dead member of the scope — the smallest
// unacknowledged one — acknowledged by pid, and returns it plus pid's
// updated global dead view. One peer per notice is what keeps barrier
// generations aligned under near-simultaneous deaths: a member that
// entered between two deaths must burn one generation per victim, so a
// member that learned of both at once must burn two as well. Batching
// would let the late entrant fold both into one burned generation and
// park one generation behind its peers forever. Caller holds mu.
// Returns -1 when nothing was unacknowledged.
func (s *crun) ackScope(pid int, scope string, members []int) (int, []int) {
	first := -1
	for _, m := range members {
		if s.dead[m] != nil && !s.acked[pid][scope][m] {
			if first < 0 || m < first {
				first = m
			}
		}
	}
	if first < 0 {
		return -1, nil
	}
	if s.acked[pid] == nil {
		s.acked[pid] = make(map[string]map[int]bool)
	}
	if s.acked[pid][scope] == nil {
		s.acked[pid][scope] = make(map[int]bool)
	}
	s.acked[pid][scope][first] = true
	union := make(map[int]bool)
	for _, perScope := range s.acked[pid] {
		for dp := range perScope {
			union[dp] = true
		}
	}
	return first, sortedPids(union)
}

// ackJoinScope marks every joined (activated-latecomer) member of the
// scope acknowledged by pid and returns the smallest newly joined
// member, its activation cut, and pid's updated membership view. The
// requester itself counts — a newcomer burns the same notice generation
// as everyone else, which keeps per-scope generations aligned. Caller
// holds mu. Returns -1 when nothing was unacknowledged.
func (s *crun) ackJoinScope(pid int, scope string, members []int) (int, int, []int) {
	first := -1
	for _, m := range members {
		if _, ok := s.joined[m]; ok && !s.ackedJoin[pid][scope][m] {
			if first < 0 || m < first {
				first = m
			}
		}
	}
	if first < 0 {
		return -1, 0, nil
	}
	if s.ackedJoin[pid] == nil {
		s.ackedJoin[pid] = make(map[string]map[int]bool)
	}
	if s.ackedJoin[pid][scope] == nil {
		s.ackedJoin[pid][scope] = make(map[int]bool)
	}
	if s.knownActive[pid] == nil {
		s.knownActive[pid] = make(map[int]bool)
	}
	for _, m := range members {
		if _, ok := s.joined[m]; ok {
			s.ackedJoin[pid][scope][m] = true
			s.knownActive[pid][m] = true
		}
	}
	return first, s.joined[first], sortedPids(s.knownActive[pid])
}

// syncWait describes one processor parked in Sync: the scope's label,
// this processor's sync generation for it, the member pids that must
// arrive for the barrier to complete, and the pvm barrier name (so a
// crashing member can cancel exactly this wait).
type syncWait struct {
	scope   string
	label   string
	gen     int
	members []int
	barrier string
}

// checkAndEnter is the survivor side of the crash protocol's
// serialization point. Under one critical section it either (a) finds
// dead, unacknowledged members of the scope — acks them all, and
// returns the first one's failure record — or (b) registers the barrier
// wait, with the caller's barrier name extended by the acknowledged
// dead members of the scope so that shrunken barriers never collide
// with pre-failure ones. A crashing member holds the same lock while it
// marks itself dead and collects parked waiters to cancel, so every
// survivor either parks before the cancel or sees the dead set here.
func (s *crun) checkAndEnter(pid int, w *syncWait) (res enterResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res.deadPid, res.joinPid = -1, -1

	// gens tracks the scope's next generation regardless of the path
	// this sync takes: a notice-consumed generation is still burned.
	if w.gen+1 > s.gens[w.scope] {
		s.gens[w.scope] = w.gen + 1
	}

	if first, view := s.ackScope(pid, w.scope, w.members); first >= 0 {
		res.deadPid, res.deadInfo, res.deadView = first, s.dead[first], view
		return res
	}
	if first, step, view := s.ackJoinScope(pid, w.scope, w.members); first >= 0 {
		res.joinPid, res.joinStep, res.joinView = first, step, view
		return res
	}

	// Shrunken barrier identity: generation plus this pid's acked dead
	// members of the scope. The failure protocol guarantees every live
	// member acks the same dead set at the same generation, so all
	// survivors compute the same name and the same live count. Dormant
	// members are outside the run entirely until their activation cut:
	// not counted and not tagged.
	var deadTag []string
	for _, m := range w.members {
		if s.dormant[m] {
			continue
		}
		if s.acked[pid][w.scope][m] {
			deadTag = append(deadTag, fmt.Sprintf("%d", m))
		} else {
			res.count++
		}
	}
	if len(deadTag) > 0 {
		w.barrier += "!" + strings.Join(deadTag, ",")
	}
	s.waiting[pid] = w
	m := s.arrived[pid]
	if m == nil {
		m = make(map[string]int)
		s.arrived[pid] = m
	}
	m[w.scope] = w.gen
	return res
}

// enterResult is checkAndEnter's verdict: exactly one of a dead-peer
// notice (deadPid >= 0), a join notice (joinPid >= 0), or a registered
// barrier wait of the given live count.
type enterResult struct {
	deadPid  int
	deadInfo *failInfo
	deadView []int
	joinPid  int
	joinStep int
	joinView []int
	count    int
}

// crashSelf is the victim side: mark pid dead under mu and collect the
// barrier names of parked survivors waiting on scopes containing pid,
// then cancel them outside the lock. Canceled waiters wake with
// ErrCanceled and convert it to ErrPeerFailed.
func (s *crun) crashSelf(pid, ord int, cause string) {
	s.mu.Lock()
	s.dead[pid] = &failInfo{step: ord, cause: cause}
	var cancel []string
	for waiter, w := range s.waiting {
		if waiter == pid {
			continue
		}
		for _, m := range w.members {
			if m == pid {
				cancel = append(cancel, w.barrier)
				break
			}
		}
	}
	sys := s.sys
	s.mu.Unlock()
	for _, name := range cancel {
		sys.CancelBarrier(name)
	}
}

// ackCanceled handles a survivor woken by a crash cancel: ack every
// dead member of its scope and return the first one's record.
func (s *crun) ackCanceled(pid int, scope string, members []int) (int, *failInfo, []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	first, view := s.ackScope(pid, scope, members)
	if first < 0 {
		return -1, nil, nil
	}
	return first, s.dead[first], view
}

func (s *crun) leaveSync(pid int, wait time.Duration) {
	s.mu.Lock()
	delete(s.waiting, pid)
	s.progress++
	if wait > 0 {
		if s.waitEWMA == 0 {
			s.waitEWMA = wait
		} else {
			s.waitEWMA = (s.waitEWMA*4 + wait) / 5
		}
	}
	s.mu.Unlock()
}

func (s *crun) markExited(pid int) {
	s.mu.Lock()
	s.exited[pid] = true
	s.progress++
	s.exitc.Broadcast()
	// When the last non-dormant task exits, no cut window can ever run
	// again (appliers are live tasks), so never-activated joiners are
	// released: their gates close, and the waking tasks see no joined
	// record and return without running the program.
	var release []chan struct{}
	if len(s.exited) == s.nprocs-len(s.dormant) {
		for dp := range s.dormant {
			release = append(release, s.gates[dp])
		}
	}
	s.mu.Unlock()
	for _, g := range release {
		close(g)
	}
}

// deadUnwindingLocked reports whether any crash-stopped or departed
// processor's goroutine is still running user code. Caller holds mu.
func (s *crun) deadUnwindingLocked() bool {
	for pid := range s.dead {
		if !s.exited[pid] {
			return true
		}
	}
	return false
}

func (s *crun) desyncErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.desync
}

// barrierDeadline returns the optional detection deadline for pid: the
// engine's DetectFactor × the observed mean barrier wait, doubling per
// successive timeout (failure-detector backoff). Zero means no deadline.
func (s *crun) barrierDeadline(pid int, factor float64) time.Duration {
	if factor <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	base := s.waitEWMA
	if base <= 0 {
		return 0 // no history yet: no deadline
	}
	backoff := s.detectCount[pid]
	if backoff > 6 {
		backoff = 6
	}
	return time.Duration(factor * float64(base) * float64(int(1)<<uint(backoff)))
}

func (s *crun) noteTimeout(pid int) {
	s.mu.Lock()
	s.detectCount[pid]++
	s.mu.Unlock()
}

// observe folds one processor's measured effective compute slowdown
// into the shared reorg estimate.
func (s *crun) observe(pid int, sample float64) {
	s.mu.Lock()
	s.rer.Observe(pid, sample)
	s.mu.Unlock()
}

// watch polls the waiter registry until done closes. It declares a
// desync when a waited barrier can provably never complete:
//
//   - a member of a waited scope has already exited (deterministic, no
//     timeout involved), or
//   - every live processor has been parked at some barrier across a
//     full timeout window with no barrier completing in between —
//     barriers only complete through arrivals, and with nobody left to
//     arrive the run cannot advance.
//
// A chaos-killed member is not a desync: the victim's cancel already
// races ahead of the watchdog, which only re-cancels the waiter's
// barrier as a backstop.
//
// On a verdict it latches the structured error and halts the system,
// waking every parked barrier with ErrHalted.
func (s *crun) watch(sys *pvm.System, timeout time.Duration, done <-chan struct{}) {
	tick := timeout / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	var (
		stallSince    time.Time
		stallProgress uint64
		stalled       bool
	)
	for {
		select {
		case <-done:
			return
		case now := <-ticker.C:
			s.mu.Lock()
			if s.desync != nil {
				s.mu.Unlock()
				return
			}
			cancel, err := s.exitedMemberDesync()
			if err != nil {
				s.desync = err
				s.mu.Unlock()
				sys.Halt()
				return
			}
			s.mu.Unlock()
			for _, name := range cancel {
				sys.CancelBarrier(name)
			}
			s.mu.Lock()
			// Dormant processors are parked by definition: their tasks
			// idle behind activation gates, so they never count as
			// missing arrivals.
			allParked := len(s.waiting) > 0 && len(s.waiting)+len(s.exited)+len(s.dormant) == s.nprocs
			if !allParked || !stalled || s.progress != stallProgress {
				stalled = allParked
				stallProgress = s.progress
				stallSince = now
				s.mu.Unlock()
				continue
			}
			if now.Sub(stallSince) < timeout {
				s.mu.Unlock()
				continue
			}
			s.desync = s.stallDesync()
			s.mu.Unlock()
			sys.Halt()
			return
		}
	}
}

// exitedMemberDesync reports a waited scope with an exited member, a
// barrier that can never complete. Chaos-killed members are not a
// program bug: their waiters' barriers are returned for cancellation
// (the failure path) instead of a desync verdict. Caller holds mu.
func (s *crun) exitedMemberDesync() (cancel []string, err error) {
	for pid, w := range s.waiting {
		for _, m := range w.members {
			reached, ok := s.arrived[m][w.scope]
			if s.exited[m] && (!ok || reached < w.gen) {
				if s.dead[m] != nil {
					// Only a barrier that has not yet acknowledged this
					// death can hang on it; an acked barrier counts live
					// members only and completes without the corpse.
					if !s.acked[pid][w.scope][m] {
						cancel = append(cancel, w.barrier)
					}
					continue
				}
				return nil, fmt.Errorf("%w: p%d waits on %s#%d(%s) but member p%d already exited",
					ErrDesync, pid, w.scope, w.gen, w.label, m)
			}
		}
	}
	return cancel, nil
}

// stallDesync builds the stalled-barriers report: who waits where, and
// which scope members lag. Caller holds mu.
func (s *crun) stallDesync() error {
	var waitParts, lagParts []string
	lagging := map[int]bool{}
	for pid := 0; pid < s.nprocs; pid++ {
		w, ok := s.waiting[pid]
		if !ok {
			continue
		}
		waitParts = append(waitParts, fmt.Sprintf("p%d@%s#%d(%s)", pid, w.scope, w.gen, w.label))
		for _, m := range w.members {
			mw := s.waiting[m]
			if mw == nil || mw.scope != w.scope || mw.gen != w.gen {
				lagging[m] = true
			}
		}
	}
	for pid := 0; pid < s.nprocs; pid++ {
		if !lagging[pid] {
			continue
		}
		switch {
		case s.exited[pid]:
			lagParts = append(lagParts, fmt.Sprintf("p%d:exited", pid))
		case s.waiting[pid] != nil:
			w := s.waiting[pid]
			lagParts = append(lagParts, fmt.Sprintf("p%d:at %s#%d(%s)", pid, w.scope, w.gen, w.label))
		default:
			lagParts = append(lagParts, fmt.Sprintf("p%d:not at a barrier", pid))
		}
	}
	msg := "waiting: " + strings.Join(waitParts, " ")
	if len(lagParts) > 0 {
		msg += "; lagging: " + strings.Join(lagParts, " ")
	}
	return fmt.Errorf("%w: %s", ErrDesync, msg)
}

func (c *cctx) Pid() int             { return c.pid }
func (c *cctx) NProcs() int          { return c.eng.tree.NProcs() }
func (c *cctx) Tree() *model.Tree    { return c.eng.tree }
func (c *cctx) Self() *model.Machine { return c.leaf }
func (c *cctx) Moves() []Message     { return c.inbox }

func (c *cctx) Charge(ops float64) {
	if ops <= 0 {
		return
	}
	c.opsAcc += ops
	if c.eng.TimeUnit <= 0 {
		return
	}
	slow := c.eng.Chaos.Slowdown(c.pid, c.ord)
	d := time.Duration(ops * c.leaf.CompSlowdown * slow * float64(c.eng.TimeUnit))
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		// Busy spin: emulated computation must consume CPU, not yield
		// it, to behave like the real slow machine.
	}
}

func (c *cctx) Failed() []int { return append([]int(nil), c.failedView...) }

func (c *cctx) Members() []int { return append([]int(nil), c.membersView...) }

func (c *cctx) Save(key string, data []byte) {
	if c.ckptStage == nil {
		c.ckptStage = make(map[string][]byte)
	}
	c.ckptStage[key] = append([]byte(nil), data...)
}

func (c *cctx) Restore(key string) ([]byte, bool) {
	if c.eng.Ckpt == nil {
		return nil, false
	}
	return c.eng.Ckpt.get(c.pid, key)
}

func (c *cctx) Send(dst, tag int, payload []byte) error {
	if dst < 0 || dst >= c.NProcs() {
		return fmt.Errorf("hbsp: send to pid %d of %d", dst, c.NProcs())
	}
	c.seq++
	m := pendingMsg{src: c.pid, dst: dst, tag: tag, payload: payload, seq: c.seq}
	if c.eng.Verify {
		m.stamp = c.vc.clone()
		m.sum = payloadSum(payload)
	}
	c.outbox = append(c.outbox, m)
	return nil
}

// wireTag encodes (scope, generation, user tag) into a pvm tag so that
// messages of different supersteps never mix. User tags must fit 8
// bits; generations wrap within 20 bits, far beyond any real run.
func (c *cctx) wireTag(scope *model.Machine, gen, userTag int) int {
	c.shared.mu.Lock()
	id, ok := c.shared.scopeID[scope]
	if !ok {
		id = len(c.shared.scopeID) + 1
		c.shared.scopeID[scope] = id
	}
	c.shared.mu.Unlock()
	return id<<28 | (gen&0xFFFFF)<<8 | (userTag & 0xFF)
}

func (c *cctx) Sync(scope *model.Machine, label string) error {
	if scope == nil {
		return errors.New("hbsp: Sync with nil scope")
	}
	if c.eng.Verify {
		// The closing barrier ends the window in which this superstep was
		// entitled to read its inbox: the payloads must still hash to
		// their delivery stamps.
		if e := recheckWindow(c.pid, c.steps, c.inbox, c.inmeta); e != nil {
			return e
		}
	}
	ord := c.ord
	c.ord++
	gen := c.syncSeq[scope]
	c.syncSeq[scope] = gen + 1
	// The superstep's charged work is captured here and folded into the
	// reorg estimate only if the barrier succeeds — a failed sync drops
	// its work, matching the virtual engine's observe-on-success rule.
	ops := c.opsAcc
	c.opsAcc = 0

	// Crash-stop injection: the victim dies at the boundary, losing the
	// superstep in progress (nothing queued is flushed), and cancels the
	// barriers of already parked members so they observe the failure.
	if c.eng.Chaos.CrashNow(c.pid, ord, 0) {
		c.eng.Obsv.Chaos("crash", ord, c.pid, c.pid, c.nowMicros())
		c.shared.crashSelf(c.pid, ord, "crash-stop")
		return fmt.Errorf("%w (p%d at step %d)", errCrashStop, c.pid, ord)
	}
	// Orderly departure rides the crash machinery with a distinct cause:
	// survivors shrink their barriers exactly as for a crash but read
	// "leave" in the report, and the victim unwinds with errLeave.
	if c.eng.Chaos.LeaveNow(c.pid, ord) {
		c.eng.Obsv.Chaos("leave", ord, c.pid, c.pid, c.nowMicros())
		c.shared.crashSelf(c.pid, ord, "leave")
		return fmt.Errorf("%w (p%d at step %d)", errLeave, c.pid, ord)
	}

	leaves := scope.Leaves()
	inScope := make(map[int]bool, len(leaves))
	for _, l := range leaves {
		inScope[c.eng.tree.Pid(l)] = true
	}
	if !inScope[c.pid] {
		return fmt.Errorf("hbsp: processor %d syncing on foreign scope %s", c.pid, scope.Label())
	}

	start := time.Since(c.shared.started)

	// Transmit every queued message whose endpoints are both inside the
	// scope; the rest stay queued for a wider sync. Chaos fates are
	// assigned at the first flush a message could take: dropped
	// messages vanish, duplicates go twice, delayed ones stay queued
	// until the sender's ordinal passes the hold. Messages to a dead
	// destination are dropped.
	var kept []pendingMsg
	sentBytes := 0
	for i := range c.outbox {
		m := c.outbox[i]
		if !inScope[m.dst] {
			kept = append(kept, m)
			continue
		}
		if c.holdDst(scope.Label(), m.dst) {
			// Destination not yet reachable at this generation: dormant,
			// or joined but with its notice still unacknowledged by this
			// sender — flushing now would tag the message with the
			// notice-burn generation nobody ever receives. Held messages
			// flush on the retry sync, landing at the same post-ack step
			// the virtual engine delivers them. Fate stays unassigned,
			// as in the virtual engine's hold.
			kept = append(kept, m)
			continue
		}
		if !m.fated {
			f := c.eng.Chaos.MessageFate(m.src, m.dst, m.seq)
			m.fated, m.drop, m.dup = true, f.Drop, f.Duplicate
			if f.Delay > 0 {
				m.holdUntil = ord + f.Delay
			}
			switch {
			case f.Drop:
				c.eng.Obsv.Chaos("drop", ord, m.src, m.dst, c.nowMicros())
			case f.Duplicate:
				c.eng.Obsv.Chaos("duplicate", ord, m.src, m.dst, c.nowMicros())
			case f.Delay > 0:
				c.eng.Obsv.Chaos("delay", ord, m.src, m.dst, c.nowMicros())
			}
		}
		if m.holdUntil > ord {
			kept = append(kept, m)
			continue
		}
		if m.drop || c.deadPid(m.dst) {
			continue
		}
		copies := 1
		if m.dup {
			copies = 2
		}
		for n := 0; n < copies; n++ {
			buf := pvm.NewBuffer()
			buf.PackInt32(int32(m.src), int32(m.tag))
			buf.PackBytes(m.payload)
			if c.eng.Verify {
				buf.PackInt64(int64(m.sum))
				buf.PackInt64Slice(m.stamp.encodeInt64())
			}
			if c.batch == nil {
				c.batch = make([][]*pvm.Buffer, c.NProcs())
			}
			if len(c.batch[m.dst]) == 0 {
				c.touched = append(c.touched, m.dst)
			}
			c.batch[m.dst] = append(c.batch[m.dst], buf)
			sentBytes += len(m.payload)
		}
	}
	c.outbox = kept

	members := make([]int, len(leaves))
	for i, l := range leaves {
		members[i] = c.eng.tree.Pid(l)
	}

	// One mailbox append per destination, in pid order: the whole
	// superstep's traffic to a peer lands under a single lock
	// acquisition.
	sort.Ints(c.touched)
	var sendErr error
	lostDst := -1
	for _, dst := range c.touched {
		if sendErr == nil {
			if sendErr = c.task.SendBatch(c.tids[dst], c.wireTag(scope, gen, 0), c.batch[dst]); sendErr != nil && errors.Is(sendErr, pvm.ErrPeerLost) {
				lostDst = dst
			}
		}
		c.batch[dst] = c.batch[dst][:0]
	}
	c.touched = c.touched[:0]
	if sendErr != nil {
		if lostDst >= 0 && lostDst != c.pid {
			// A severed wire link is a detected peer failure: run the
			// same shrink protocol as a crash, so every survivor of the
			// scope observes ErrPeerFailed at one consistent generation
			// and later Syncs complete over the remaining members.
			c.shared.crashSelf(lostDst, ord, "link lost")
			if dp, di, dv := c.shared.ackCanceled(c.pid, scope.Label(), members); dp >= 0 {
				c.failedView = dv
				return &ErrPeerFailed{Pid: dp, Step: di.step, Cause: di.cause}
			}
		}
		return sendErr
	}
	wait := &syncWait{
		scope:   scope.Label(),
		label:   label,
		gen:     gen,
		members: members,
		barrier: fmt.Sprintf("sync:%s#%d", scope.Label(), gen),
	}
	res := c.shared.checkAndEnter(c.pid, wait)
	if res.deadPid >= 0 {
		c.failedView = res.deadView
		return &ErrPeerFailed{Pid: res.deadPid, Step: res.deadInfo.step, Cause: res.deadInfo.cause}
	}
	if res.joinPid >= 0 {
		c.membersView = res.joinView
		return &ErrPeerJoined{Pid: res.joinPid, Step: res.joinStep}
	}
	count := res.count
	deadline := c.shared.barrierDeadline(c.pid, c.eng.DetectFactor)
	bEnter := time.Since(c.shared.started)
	var err error
	var deposits map[pvm.TID][]byte
	if c.eng.Verify {
		// Barriers double as the clock-join: every participant deposits
		// its vector clock and gathers the others' on completion.
		dep := pvm.NewBuffer().PackInt64Slice(c.vc.encodeInt64()).Bytes()
		deposits, err = c.task.BarrierExchange(wait.barrier, count, deadline, dep)
	} else {
		err = c.task.BarrierTimeout(wait.barrier, count, deadline)
	}
	c.shared.leaveSync(c.pid, time.Since(c.shared.started)-start)
	if err == nil {
		c.eng.Obsv.BarrierWait(ord, c.pid, wait.scope, scope.Level,
			micros(bEnter), c.nowMicros())
	}
	if err != nil {
		switch {
		case errors.Is(err, pvm.ErrCanceled):
			// A member crashed while we were parked; convert the cancel
			// into the typed failure.
			if dp, di, dv := c.shared.ackCanceled(c.pid, wait.scope, members); dp >= 0 {
				c.failedView = dv
				return &ErrPeerFailed{Pid: dp, Step: di.step, Cause: di.cause}
			}
			return err
		case errors.Is(err, pvm.ErrTimeout):
			c.shared.noteTimeout(c.pid)
			return fmt.Errorf("hbsp: detection deadline on %s#%d(%s): %w",
				wait.scope, gen, label, err)
		case errors.Is(err, pvm.ErrHalted):
			// A halt during the wait means the watchdog declared a
			// desync: surface its structured report instead of the bare
			// ErrHalted.
			if derr := c.shared.desyncErr(); derr != nil {
				return derr
			}
		}
		return err
	}

	c.steps++
	if c.eng.Verify {
		for _, raw := range deposits {
			vs, derr := pvm.Wrap(raw).UnpackInt64Slice()
			if derr != nil {
				return derr
			}
			c.vc.join(decodeVClock(vs))
		}
		c.vc.tick(c.pid)
	}

	// All sends of this (scope, gen) happened before any barrier exit,
	// so the mailbox now holds the complete delivery. Payloads are
	// copied out of the pooled wires into one fresh slab per window —
	// delivered bytes keep garbage-collected lifetime (programs hold
	// collective results across supersteps), while the wire buffers
	// release straight back to the arena.
	c.inbox = c.inbox[:0]
	c.inmeta = c.inmeta[:0]
	recvBytes := 0
	// A malformed frame aborts the superstep, but the rest of the
	// drained window still holds pooled wire records: hand the
	// remainder (current message included) back to the arena before
	// surfacing the error.
	releaseRest := func(rest []pvm.Message, err error) error {
		for _, m := range rest {
			m.Release()
		}
		return err
	}
	msgs := c.task.TryRecvAll(pvm.AnySource, c.wireTag(scope, gen, 0))
	slabCap := 0
	for _, m := range msgs {
		slabCap += m.Len()
	}
	slab := make([]byte, 0, slabCap)
	for i, m := range msgs {
		b := m.Buffer()
		src, err := b.UnpackInt32()
		if err != nil {
			return releaseRest(msgs[i:], err)
		}
		tag, err := b.UnpackInt32()
		if err != nil {
			return releaseRest(msgs[i:], err)
		}
		payload, err := b.UnpackBytes()
		if err != nil {
			return releaseRest(msgs[i:], err)
		}
		// slabCap over-covers the framing, so these appends never
		// reallocate and earlier windows' slices stay intact.
		slab = append(slab, payload...)
		payload = slab[len(slab)-len(payload):]
		if c.eng.Verify {
			sum, err := b.UnpackInt64()
			if err != nil {
				return releaseRest(msgs[i:], err)
			}
			stamp, err := b.UnpackInt64Slice()
			if err != nil {
				return releaseRest(msgs[i:], err)
			}
			c.inmeta = append(c.inmeta, msgMeta{src: int(src), tag: int(tag),
				stamp: decodeVClock(stamp), sum: uint64(sum)})
		}
		c.inbox = append(c.inbox, Message{Src: int(src), Tag: int(tag), Payload: payload})
		recvBytes += len(payload)
		c.eng.Obsv.Delivery(ord, int(src), c.pid, int(tag), int64(len(payload)), c.nowMicros())
		m.Release()
	}
	if c.eng.Verify {
		// Sort inbox and metadata through one index permutation so the
		// stamps stay aligned with their messages, then run the
		// happens-before and checksum checks on the delivered window.
		idx := make([]int, len(c.inbox))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return c.inbox[idx[a]].Src < c.inbox[idx[b]].Src })
		inbox := make([]Message, len(c.inbox))
		metas := make([]msgMeta, len(c.inbox))
		for i, j := range idx {
			inbox[i], metas[i] = c.inbox[j], c.inmeta[j]
		}
		c.inbox, c.inmeta = inbox, metas
		for i, m := range c.inbox {
			if e := checkDelivery(c.pid, c.steps, m, c.inmeta[i], c.vc); e != nil {
				return e
			}
		}
	} else {
		// Arrival order is already per-sender FIFO; a stable sort by
		// source yields the engine's (Src, send order) delivery contract.
		sort.SliceStable(c.inbox, func(a, b int) bool { return c.inbox[a].Src < c.inbox[b].Src })
	}

	// Fold the superstep's measured effective compute slowdown — static
	// slowdown times the transient straggler factor — into the shared
	// reorg estimate (observe-on-success; see the ops capture above).
	if ops > 0 {
		c.shared.observe(c.pid, c.leaf.CompSlowdown*c.eng.Chaos.Slowdown(c.pid, ord))
	}

	// Checkpoint commit at the consistent-cut cadence: rootDone counts
	// this processor's successful global barriers (a joiner starts at
	// its activation cut), so every live processor commits at the same
	// cut ordinals even though per-scope generations shift under churn.
	if scope == c.eng.tree.Root {
		c.rootDone++
		if c.eng.Ckpt != nil && c.eng.CheckpointEvery > 0 &&
			c.rootDone%c.eng.CheckpointEvery == 0 {
			c.eng.Ckpt.commit(c.pid, c.rootDone, c.ckptStage)
			c.ckptStage = nil
		}
	}

	// The scope coordinator records the step — the fastest live member,
	// so a dead coordinator's role fails over.
	if c.liveCoordinator(scope) == c.leaf {
		end := time.Since(c.shared.started)
		c.shared.mu.Lock()
		idx := len(c.shared.steps)
		c.shared.steps = append(c.shared.steps, trace.Step{
			Index:        idx,
			Label:        label,
			ScopeLabel:   scope.Label(),
			ScopeName:    scope.Name,
			Level:        scope.Level,
			Participants: count,
			Time:         float64(end-start) / float64(time.Microsecond),
			Bytes:        sentBytes + recvBytes,
			Start:        float64(start) / float64(time.Microsecond),
			End:          float64(end) / float64(time.Microsecond),
		})
		c.shared.mu.Unlock()
		c.eng.Obsv.Superstep(idx, label, scope.Label(), scope.Level,
			micros(start), micros(end), 0, int64(sentBytes+recvBytes))
	}

	// Cut window: when this global barrier's ordinal triggers a reorg
	// or an activation, every participant parks on a pair of cut
	// barriers while one applier rebalances the tree and opens joiner
	// gates. The step record above already read the pre-reorg layout,
	// so nothing reads the tree while the applier mutates it.
	if scope == c.eng.tree.Root && c.pendingCut(c.rootDone) {
		if err := c.cutWindow(members, count); err != nil {
			return err
		}
	}
	return nil
}

// pendingCut reports whether the cut at global ordinal R has work: a
// scheduled reorganization or a dormant processor whose activation
// point has been reached. Every participant of the barrier computes the
// same verdict — R is shared, ReorgEvery is config, and the dormant set
// only changes inside cut windows.
func (c *cctx) pendingCut(R int) bool {
	if c.eng.ReorgEvery > 0 && R%c.eng.ReorgEvery == 0 {
		return true
	}
	s := c.shared
	s.mu.Lock()
	defer s.mu.Unlock()
	for pid := range s.dormant {
		if c.eng.Chaos.JoinStep(pid) <= R {
			return true
		}
	}
	return false
}

// cutWindow serializes one consistent cut: cut:in waits until every
// participant has finished its post-barrier reads (deliveries, step
// record), the smallest live participant applies the cut, and cut:out
// holds everyone until the tree is stable again.
func (c *cctx) cutWindow(members []int, count int) error {
	R := c.rootDone
	if err := c.task.BarrierTimeout(fmt.Sprintf("cut:in#%d", R), count, 0); err != nil {
		return c.cutErr(err)
	}
	var applyErr error
	if c.shared.applierPid(members) == c.pid {
		applyErr = c.applyCut(R)
	}
	if err := c.task.BarrierTimeout(fmt.Sprintf("cut:out#%d", R), count, 0); err != nil {
		return c.cutErr(err)
	}
	// Re-align this processor's per-scope sync generations with the
	// cut's snapshot: a rebalance can move the leaf under a scope it has
	// never synced on, where peers already burned generations. The
	// snapshot — not the live registry — is what keeps this safe: fast
	// members leaving the window burn new generations concurrently, and
	// reading those here would push this processor's next barrier past
	// its peers'. Scope generations advance in lockstep across a scope's
	// members, so for scopes this processor already synced the
	// assignment is a no-op.
	s := c.shared
	s.mu.Lock()
	snap := s.cutGens
	c.eng.tree.Root.Walk(func(m *model.Machine) {
		if g := snap[m.Label()]; g > 0 && g > c.syncSeq[m] {
			c.syncSeq[m] = g
		}
	})
	s.mu.Unlock()
	return applyErr
}

// cutErr converts a watchdog halt during a cut barrier into the
// structured desync report, like the main barrier path.
func (c *cctx) cutErr(err error) error {
	if errors.Is(err, pvm.ErrHalted) {
		if derr := c.shared.desyncErr(); derr != nil {
			return derr
		}
	}
	return err
}

// applierPid picks the cut's single applier: the smallest live,
// non-dormant participant. Every participant computes the same answer —
// the dead set cannot grow while all scope members are inside the cut
// window (crashes fire only at Sync entry).
func (s *crun) applierPid(members []int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	best := -1
	for _, m := range members {
		if s.dormant[m] || s.dead[m] != nil {
			continue
		}
		if best < 0 || m < best {
			best = m
		}
	}
	return best
}

// applyCut is the applier side of the cut window: rebalance the tree
// from the shared estimates, then activate every dormant processor
// whose join point has been reached. Reorg strictly precedes activation
// — an opened gate's task starts reading the tree immediately.
func (c *cctx) applyCut(R int) error {
	e, s := c.eng, c.shared
	var planOldFP uint64
	planReorged := false
	if e.Plan != nil {
		planOldFP = e.tree.Fingerprint()
	}
	if e.ReorgEvery > 0 && R%e.ReorgEvery == 0 {
		s.mu.Lock()
		// Crash victims and leavers unwind with their error and may still
		// be running user code that reads the tree (a fault-tolerant
		// session walks scope leaves to report its live view). Wait them
		// out before rebalancing: every live member is parked inside the
		// cut window, a dead requester's re-sync resolves immediately
		// under mu, and its deferred markExited signals exitc.
		for s.deadUnwindingLocked() {
			s.exitc.Wait()
		}
		s.epoch++
		epoch := s.epoch
		est := s.rer.Estimates()
		s.mu.Unlock()
		plan := model.PlanReorg(e.tree, est, e.ReorgSeed, epoch)
		if err := e.tree.Reorganize(plan); err != nil {
			return err
		}
		planReorged = true
		e.Obsv.Reorg(epoch, plan.Moved, c.nowMicros())
		// A rebalance can move a leaf under a scope whose members
		// acknowledged a death or join it only saw elsewhere. Equalize the
		// per-scope ack sets across the live processors so a moved-in
		// member computes the same dead tag and burns the same notice
		// generations as its new peers (the virtual engine equalizes at
		// the same point).
		s.mu.Lock()
		s.equalizeAcksLocked(s.acked)
		s.equalizeAcksLocked(s.ackedJoin)
		s.mu.Unlock()
	}

	s.mu.Lock()
	// Snapshot the generation registry while every live processor is
	// parked inside the cut window: members re-align their per-scope
	// generations against this stable copy after cut:out, and joiners
	// seed theirs from it.
	cutGens := make(map[string]int, len(s.gens))
	for k, v := range s.gens {
		cutGens[k] = v
	}
	s.cutGens = cutGens
	var act []int
	for pid := range s.dormant {
		if e.Chaos.JoinStep(pid) <= R {
			act = append(act, pid)
		}
	}
	sort.Ints(act)
	var gates []chan struct{}
	for _, pid := range act {
		delete(s.dormant, pid)
	}
	for _, pid := range act {
		s.joined[pid] = R
		ka := make(map[int]bool, s.nprocs)
		for q := 0; q < s.nprocs; q++ {
			if !s.dormant[q] {
				ka[q] = true
			}
		}
		s.knownActive[pid] = ka
		s.seedAcksLocked(e.tree, pid, R)
		snap := make(map[string]int, len(s.gens))
		for k, v := range s.gens {
			snap[k] = v
		}
		s.joinGens[pid] = snap
		gates = append(gates, s.gates[pid])
	}
	planDeadChanged := len(s.dead) != s.planDead
	s.planDead = len(s.dead)
	s.mu.Unlock()
	// Plan hooks fire before the joiners' gates open: an activated
	// joiner starts deciding immediately, and it must find the
	// invalidated cache. All live incumbents are still parked between
	// the cut barriers.
	if e.Plan != nil {
		if planReorged || len(act) > 0 || planDeadChanged {
			e.Plan.TreeChanged(e.tree, planOldFP)
		}
		e.Plan.GlobalBarrier(e.tree, R)
	}
	for i, pid := range act {
		e.Obsv.Chaos("join", R, pid, pid, c.nowMicros())
		close(gates[i])
	}
	return nil
}

// equalizeAcksLocked unions the per-scope-label acknowledgment sets
// (dead or joined) of every live, non-dormant processor and writes the
// union back to each. Called with mu held, from the cut applier while
// every live processor is parked inside the cut window.
func (s *crun) equalizeAcksLocked(sets map[int]map[string]map[int]bool) {
	union := make(map[string]map[int]bool)
	live := func(pid int) bool { return !s.dormant[pid] && s.dead[pid] == nil }
	for pid, perScope := range sets {
		if !live(pid) {
			continue
		}
		for label, set := range perScope {
			u := union[label]
			if u == nil {
				u = make(map[int]bool, len(set))
				union[label] = u
			}
			for q := range set {
				u[q] = true
			}
		}
	}
	for pid := 0; pid < s.nprocs; pid++ {
		if !live(pid) {
			continue
		}
		for label, u := range union {
			if sets[pid] == nil {
				sets[pid] = make(map[string]map[int]bool)
			}
			cp := sets[pid][label]
			if cp == nil {
				cp = make(map[int]bool, len(u))
				sets[pid][label] = cp
			}
			for q := range u {
				cp[q] = true
			}
		}
	}
}

// seedAcksLocked copies, per scope, a live old member's acknowledged
// dead and joined sets onto a newcomer — the concurrent mirror of the
// virtual engine's seedAcks. The failure protocol keeps those sets
// identical across live members of a scope at a global cut, so the
// newcomer will burn exactly the pending notice generations the old
// members still owe, keeping per-scope sync generations aligned. Caller
// holds mu.
func (s *crun) seedAcksLocked(t *model.Tree, pid, cut int) {
	t.Root.Walk(func(scope *model.Machine) {
		label := scope.Label()
		donor := -1
		for _, l := range scope.Leaves() {
			lp := t.Pid(l)
			if lp == pid || s.dormant[lp] || s.dead[lp] != nil || s.joined[lp] == cut {
				continue
			}
			if donor < 0 || lp < donor {
				donor = lp
			}
		}
		if donor < 0 {
			return
		}
		if deadSet := s.acked[donor][label]; len(deadSet) > 0 {
			if s.acked[pid] == nil {
				s.acked[pid] = make(map[string]map[int]bool)
			}
			cp := make(map[int]bool, len(deadSet))
			for d := range deadSet {
				cp[d] = true
			}
			s.acked[pid][label] = cp
		}
		if joinSet := s.ackedJoin[donor][label]; len(joinSet) > 0 {
			if s.ackedJoin[pid] == nil {
				s.ackedJoin[pid] = make(map[string]map[int]bool)
			}
			cp := make(map[int]bool, len(joinSet))
			for j := range joinSet {
				cp[j] = true
			}
			s.ackedJoin[pid][label] = cp
		}
	})
}

// micros converts an engine-relative duration to the microsecond time
// base the observability layer uses for wall-clock runs.
func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// nowMicros is the processor's current time on the run clock.
func (c *cctx) nowMicros() float64 { return micros(time.Since(c.shared.started)) }

// deadPid reports whether pid is chaos-dead.
func (c *cctx) deadPid(pid int) bool {
	c.shared.mu.Lock()
	defer c.shared.mu.Unlock()
	return c.shared.dead[pid] != nil
}

// dormantPid reports whether pid awaits its activation cut. Messages to
// a dormant destination are held in the sender's outbox until the first
// shared superstep after activation — the virtual engine holds them in
// its undelivered pool the same way.
func (c *cctx) dormantPid(pid int) bool {
	c.shared.mu.Lock()
	defer c.shared.mu.Unlock()
	return c.shared.dormant[pid]
}

// holdDst reports whether a message to dst must stay queued at a flush
// on the given scope: dst is dormant, or dst joined at a cut whose
// notice this sender has not yet consumed on the scope. In the latter
// case the current sync is about to burn the join-notice generation, so
// a flush now would wire-tag the message with a generation no receiver
// ever drains; the retry sync flushes it one generation later, where
// the whole scope — newcomer included — receives.
func (c *cctx) holdDst(scope string, dst int) bool {
	s := c.shared
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dormant[dst] {
		return true
	}
	if _, joined := s.joined[dst]; joined && !s.ackedJoin[c.pid][scope][dst] {
		return true
	}
	return false
}

// liveCoordinator is the scope coordinator restricted to leaves this
// processor knows to be active members and not dead: coordinator
// failover, plus exclusion of dormant (not-yet-joined) leaves. Both
// views are generation-aligned across a scope's live members by the
// notice protocols, so exactly one participant claims the role.
func (c *cctx) liveCoordinator(scope *model.Machine) *model.Machine {
	if len(c.failedView) == 0 && len(c.membersView) == c.NProcs() {
		return scope.Coordinator()
	}
	dead := make(map[int]bool, len(c.failedView))
	for _, pid := range c.failedView {
		dead[pid] = true
	}
	active := make(map[int]bool, len(c.membersView))
	for _, pid := range c.membersView {
		active[pid] = true
	}
	return scope.CoordinatorAmong(func(m *model.Machine) bool {
		pid := c.eng.tree.Pid(m)
		return active[pid] && !dead[pid]
	})
}

// Run executes the program on every processor with real concurrency and
// returns a wall-clock report (times in microseconds). A chaos-injected
// crash-stop is not itself a run error: if the survivors complete, the
// run completes.
func (e *Concurrent) Run(prog Program) (*trace.Report, error) {
	p := e.tree.NProcs()
	sys := pvm.NewSystem()
	if e.Transport != nil {
		tr, err := e.Transport()
		if err != nil {
			return nil, fmt.Errorf("hbsp: transport: %w", err)
		}
		if tr != nil {
			if err := sys.SetTransport(tr); err != nil {
				_ = tr.Close()
				return nil, fmt.Errorf("hbsp: transport attach: %w", err)
			}
			// LIFO: the transport outlives every deferred teardown below
			// (watchdog included), so pumps drain only after the tasks
			// are done sending.
			defer func() { _ = tr.Close() }()
		}
	}
	shared := &crun{
		sys:         sys,
		scopeID:     make(map[*model.Machine]int),
		started:     time.Now(),
		nprocs:      p,
		waiting:     make(map[int]*syncWait),
		exited:      make(map[int]bool),
		arrived:     make(map[int]map[string]int),
		dead:        make(map[int]*failInfo),
		acked:       make(map[int]map[string]map[int]bool),
		detectCount: make(map[int]int),
		dormant:     make(map[int]bool),
		joined:      make(map[int]int),
		ackedJoin:   make(map[int]map[string]map[int]bool),
		knownActive: make(map[int]map[int]bool),
		gens:        make(map[string]int),
		joinGens:    make(map[int]map[string]int),
		gates:       make(map[int]chan struct{}),
		rer:         model.NewReranker(p, e.ReorgAlpha),
	}
	shared.exitc = sync.NewCond(&shared.mu)
	// Elastic membership: processors with a churn JoinAt fate start
	// dormant behind a gate; their pre-spawned tasks idle until the
	// applier of their activation cut closes the gate (or until the run
	// ends without reaching it).
	for pid := 0; pid < p; pid++ {
		if e.Chaos.JoinStep(pid) > 0 {
			shared.dormant[pid] = true
			shared.gates[pid] = make(chan struct{})
		}
	}
	actives := make([]int, 0, p)
	for pid := 0; pid < p; pid++ {
		if !shared.dormant[pid] {
			actives = append(actives, pid)
		}
	}
	for _, pid := range actives {
		ka := make(map[int]bool, len(actives))
		for _, q := range actives {
			ka[q] = true
		}
		shared.knownActive[pid] = ka
	}

	timeout := e.DesyncTimeout
	if timeout == 0 {
		timeout = defaultDesyncTimeout
	}
	if timeout > 0 {
		done := make(chan struct{})
		defer close(done)
		go shared.watch(sys, timeout, done)
	}

	tids := make([]pvm.TID, p)
	ready := make(chan struct{})
	for pid := 0; pid < p; pid++ {
		pid := pid
		gate := shared.gates[pid]
		tids[pid] = sys.Spawn(fmt.Sprintf("proc%d", pid), func(t *pvm.Task) error {
			// markExited runs even on panic, so a crashed processor still
			// triggers the deterministic exited-member desync check.
			defer shared.markExited(pid)
			if gate != nil {
				// Dormant until the activation cut's applier closes the
				// gate. A gate closed by the last exiting active task
				// instead (no cut reached the join point) leaves no
				// joined record: the program never runs on this pid.
				<-gate
				shared.mu.Lock()
				_, activated := shared.joined[pid]
				shared.mu.Unlock()
				if !activated {
					return nil
				}
			} else {
				<-ready
			}
			c := &cctx{
				pid:     pid,
				leaf:    e.tree.Leaf(pid),
				eng:     e,
				task:    t,
				tids:    tids,
				syncSeq: make(map[*model.Machine]int),
				shared:  shared,
			}
			if gate != nil {
				// A newcomer's state starts at the activation cut: its
				// per-scope sync generations at the snapshot the applier
				// took, its membership and failure views as seeded, and
				// its cut ordinal at the activation point. The tree is
				// stable here — every old member is parked at cut:out
				// until the applier (which closed this gate last) exits
				// the window.
				shared.mu.Lock()
				c.rootDone = shared.joined[pid]
				c.membersView = sortedPids(shared.knownActive[pid])
				union := make(map[int]bool)
				for _, perScope := range shared.acked[pid] {
					for dp := range perScope {
						union[dp] = true
					}
				}
				c.failedView = sortedPids(union)
				snap := shared.joinGens[pid]
				shared.mu.Unlock()
				e.tree.Root.Walk(func(m *model.Machine) {
					if g := snap[m.Label()]; g > 0 {
						c.syncSeq[m] = g
					}
				})
			} else {
				c.membersView = append([]int(nil), actives...)
			}
			if e.Verify {
				c.vc = newVClock(p)
			}
			err := prog(c)
			if errors.Is(err, errCrashStop) || errors.Is(err, errLeave) {
				// The victim's own crash or departure is the experiment,
				// not a program failure; the run's verdict belongs to
				// the survivors.
				return nil
			}
			return err
		})
	}
	close(ready)
	err := sys.Wait()
	shared.mu.Lock()
	defer shared.mu.Unlock()
	// The watchdog's structured report beats the per-task ErrHalted noise
	// its Halt produced — but a nondeterminism verdict is the root cause
	// when a processor failed verification and left its peers stranded.
	if shared.desync != nil {
		err = shared.desync
		for _, taskErr := range sys.Errors() {
			var nd *ErrNondeterminism
			if errors.As(taskErr, &nd) {
				err = taskErr
				break
			}
		}
	}
	total := float64(time.Since(shared.started)) / float64(time.Microsecond)
	return &trace.Report{Steps: shared.steps, Total: total}, err
}
