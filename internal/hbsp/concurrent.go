package hbsp

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hbspk/internal/model"
	"hbspk/internal/pvm"
	"hbspk/internal/trace"
)

// Concurrent executes programs with real parallelism on the pvm
// substrate: every processor is a spawned task, bulk messages travel
// through task mailboxes, and scoped barriers are pvm group barriers.
// Heterogeneity can be emulated by time dilation: Charge busy-spins for
// ops·CompSlowdown·TimeUnit of wall time.
//
// The engine reports wall-clock step times, so its numbers are
// machine-dependent and noisy; it exists to validate that programs are
// correct concurrent code and deliver exactly the same data as the
// virtual engine. Programs must be well-formed SPMD (every processor of
// a scope syncs on it the same number of times); unlike the virtual
// engine, a malformed program blocks rather than returning ErrDesync.
type Concurrent struct {
	tree *model.Tree
	// TimeUnit is the wall-clock duration of one fastest-machine work
	// unit for Charge; zero disables dilation.
	TimeUnit time.Duration
}

// NewConcurrent returns a wall-clock engine for the tree.
func NewConcurrent(t *model.Tree) *Concurrent { return &Concurrent{tree: t} }

// cctx is the per-processor Ctx of the concurrent engine.
type cctx struct {
	pid  int
	leaf *model.Machine
	eng  *Concurrent
	task *pvm.Task
	tids []pvm.TID

	outbox []pendingMsg
	inbox  []Message
	seq    int
	// syncSeq counts this processor's syncs per scope so that senders
	// and receivers agree on a message tag per (scope, generation).
	syncSeq map[*model.Machine]int

	shared *crun
}

// crun is the state shared by all processors of one Run.
type crun struct {
	mu      sync.Mutex
	steps   []trace.Step
	scopeID map[*model.Machine]int
	started time.Time
}

func (c *cctx) Pid() int             { return c.pid }
func (c *cctx) NProcs() int          { return c.eng.tree.NProcs() }
func (c *cctx) Tree() *model.Tree    { return c.eng.tree }
func (c *cctx) Self() *model.Machine { return c.leaf }
func (c *cctx) Moves() []Message     { return c.inbox }

func (c *cctx) Charge(ops float64) {
	if ops <= 0 || c.eng.TimeUnit <= 0 {
		return
	}
	d := time.Duration(ops * c.leaf.CompSlowdown * float64(c.eng.TimeUnit))
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		// Busy spin: emulated computation must consume CPU, not yield
		// it, to behave like the real slow machine.
	}
}

func (c *cctx) Send(dst, tag int, payload []byte) error {
	if dst < 0 || dst >= c.NProcs() {
		return fmt.Errorf("hbsp: send to pid %d of %d", dst, c.NProcs())
	}
	c.seq++
	c.outbox = append(c.outbox, pendingMsg{src: c.pid, dst: dst, tag: tag, payload: payload, seq: c.seq})
	return nil
}

// wireTag encodes (scope, generation, user tag) into a pvm tag so that
// messages of different supersteps never mix. User tags must fit 16
// bits; generations wrap within 20 bits, far beyond any real run.
func (c *cctx) wireTag(scope *model.Machine, gen, userTag int) int {
	c.shared.mu.Lock()
	id, ok := c.shared.scopeID[scope]
	if !ok {
		id = len(c.shared.scopeID) + 1
		c.shared.scopeID[scope] = id
	}
	c.shared.mu.Unlock()
	return id<<28 | (gen&0xFFFFF)<<8 | (userTag & 0xFF)
}

func (c *cctx) Sync(scope *model.Machine, label string) error {
	if scope == nil {
		return errors.New("hbsp: Sync with nil scope")
	}
	gen := c.syncSeq[scope]
	c.syncSeq[scope] = gen + 1

	leaves := scope.Leaves()
	inScope := make(map[int]bool, len(leaves))
	for _, l := range leaves {
		inScope[c.eng.tree.Pid(l)] = true
	}
	if !inScope[c.pid] {
		return fmt.Errorf("hbsp: processor %d syncing on foreign scope %s", c.pid, scope.Label())
	}

	start := time.Since(c.shared.started)

	// Transmit every queued message whose endpoints are both inside the
	// scope; the rest stay queued for a wider sync.
	var kept []pendingMsg
	sentBytes := 0
	for _, m := range c.outbox {
		if !inScope[m.dst] {
			kept = append(kept, m)
			continue
		}
		buf := pvm.NewBuffer()
		buf.PackInt32(int32(m.src), int32(m.tag))
		buf.PackBytes(m.payload)
		if err := c.task.Send(c.tids[m.dst], c.wireTag(scope, gen, 0), buf); err != nil {
			return err
		}
		sentBytes += len(m.payload)
	}
	c.outbox = kept

	barrier := fmt.Sprintf("sync:%s#%d", scope.Label(), gen)
	if err := c.task.Barrier(barrier, len(leaves)); err != nil {
		return err
	}

	// All sends of this (scope, gen) happened before any barrier exit,
	// so the mailbox now holds the complete delivery.
	c.inbox = c.inbox[:0]
	recvBytes := 0
	var seqs []int
	for {
		m, ok := c.task.TryRecv(pvm.AnySource, c.wireTag(scope, gen, 0))
		if !ok {
			break
		}
		b := m.Buffer()
		src, err := b.UnpackInt32()
		if err != nil {
			return err
		}
		tag, err := b.UnpackInt32()
		if err != nil {
			return err
		}
		payload, err := b.UnpackBytes()
		if err != nil {
			return err
		}
		c.inbox = append(c.inbox, Message{Src: int(src), Tag: int(tag), Payload: payload})
		seqs = append(seqs, len(seqs))
		recvBytes += len(payload)
	}
	sortMessages(c.inbox, seqs)

	// The scope coordinator records the step.
	if scope.Coordinator() == c.leaf {
		end := time.Since(c.shared.started)
		c.shared.mu.Lock()
		c.shared.steps = append(c.shared.steps, trace.Step{
			Index:        len(c.shared.steps),
			Label:        label,
			ScopeLabel:   scope.Label(),
			ScopeName:    scope.Name,
			Level:        scope.Level,
			Participants: len(leaves),
			Time:         float64(end-start) / float64(time.Microsecond),
			Bytes:        sentBytes + recvBytes,
			Start:        float64(start) / float64(time.Microsecond),
			End:          float64(end) / float64(time.Microsecond),
		})
		c.shared.mu.Unlock()
	}
	return nil
}

// Run executes the program on every processor with real concurrency and
// returns a wall-clock report (times in microseconds).
func (e *Concurrent) Run(prog Program) (*trace.Report, error) {
	p := e.tree.NProcs()
	sys := pvm.NewSystem()
	shared := &crun{scopeID: make(map[*model.Machine]int), started: time.Now()}

	tids := make([]pvm.TID, p)
	ready := make(chan struct{})
	for pid := 0; pid < p; pid++ {
		pid := pid
		tids[pid] = sys.Spawn(fmt.Sprintf("proc%d", pid), func(t *pvm.Task) error {
			<-ready
			c := &cctx{
				pid:     pid,
				leaf:    e.tree.Leaf(pid),
				eng:     e,
				task:    t,
				tids:    tids,
				syncSeq: make(map[*model.Machine]int),
				shared:  shared,
			}
			return prog(c)
		})
	}
	close(ready)
	err := sys.Wait()
	shared.mu.Lock()
	defer shared.mu.Unlock()
	total := float64(time.Since(shared.started)) / float64(time.Microsecond)
	return &trace.Report{Steps: shared.steps, Total: total}, err
}
