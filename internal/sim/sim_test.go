package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		e.Schedule(d, func() { order = append(order, d) })
	}
	if n := e.Run(); n != 5 {
		t.Fatalf("processed %d events, want 5", n)
	}
	if !sort.Float64sAreSorted(order) {
		t.Errorf("events out of order: %v", order)
	}
	if e.Now() != 5 {
		t.Errorf("clock = %v, want 5", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(2, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v, want [1 3]", times)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(-5, func() { fired = true })
	e.Run()
	if !fired || e.Now() != 0 {
		t.Errorf("fired=%v now=%v, want true/0", fired, e.Now())
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("ScheduleAt in the past did not panic")
		}
	}()
	e.ScheduleAt(5, func() {})
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(float64(i), func() { count++ })
	}
	if n := e.RunUntil(5); n != 5 {
		t.Errorf("processed %d, want 5", n)
	}
	if e.Now() != 5 || count != 5 || e.Pending() != 5 {
		t.Errorf("now=%v count=%d pending=%d", e.Now(), count, e.Pending())
	}
	e.Run()
	if count != 10 {
		t.Errorf("count=%d after Run, want 10", count)
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	var spans [][2]float64
	for i := 0; i < 3; i++ {
		r.Acquire(10, func(s, en float64) { spans = append(spans, [2]float64{s, en}) })
	}
	e.Run()
	want := [][2]float64{{0, 10}, {10, 20}, {20, 30}}
	for i, w := range want {
		if spans[i] != w {
			t.Errorf("span %d = %v, want %v", i, spans[i], w)
		}
	}
}

func TestAcquireAfterHonorsReadiness(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	var start, end float64
	r.AcquireAfter(7, 3, func(s, en float64) { start, end = s, en })
	e.Run()
	if start != 7 || end != 10 {
		t.Errorf("span = [%v,%v], want [7,10]", start, end)
	}
	// Queued behind the first: readiness 2 is dominated by busyUntil 10.
	r.AcquireAfter(2, 1, func(s, en float64) { start, end = s, en })
	e.Run()
	if start != 10 || end != 11 {
		t.Errorf("span = [%v,%v], want [10,11]", start, end)
	}
}

func TestResourceZeroAndNegativeDuration(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	if end := r.Acquire(-4, nil); end != 0 {
		t.Errorf("negative duration end = %v, want 0", end)
	}
	if end := r.Acquire(0, nil); end != 0 {
		t.Errorf("zero duration end = %v, want 0", end)
	}
}

// Property: for any set of delays, Run fires all events, in
// nondecreasing time order, and leaves the clock at the max delay.
func TestPropertyAllEventsFireInOrder(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		n := int(count%50) + 1
		maxd := 0.0
		var fired []float64
		for i := 0; i < n; i++ {
			d := rng.Float64() * 100
			if d > maxd {
				maxd = d
			}
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		if e.Run() != n {
			return false
		}
		return sort.Float64sAreSorted(fired) && e.Now() == maxd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: a FIFO resource's total busy time equals the sum of
// durations, and spans never overlap.
func TestPropertyResourceNoOverlap(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		r := NewResource(e)
		n := int(count%20) + 1
		total := 0.0
		var spans [][2]float64
		for i := 0; i < n; i++ {
			d := rng.Float64() * 10
			total += d
			r.Acquire(d, func(s, en float64) { spans = append(spans, [2]float64{s, en}) })
		}
		e.Run()
		if len(spans) != n {
			return false
		}
		for i := 1; i < n; i++ {
			if spans[i][0] < spans[i-1][1]-1e-12 {
				return false
			}
		}
		return spans[n-1][1] >= total-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
