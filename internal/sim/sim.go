// Package sim is a small deterministic discrete-event simulation core:
// an event calendar with a virtual clock, plus a FIFO Resource for
// modeling serialized devices (network injectors, links). Package fabric
// uses it for the optional packet-level communication mode that
// validates the HBSP^k g·h abstraction against a finer-grained model.
package sim

import (
	"container/heap"
	"fmt"
)

// Engine owns the virtual clock and the pending-event calendar. Events
// scheduled for the same instant fire in scheduling order, which keeps
// runs deterministic.
type Engine struct {
	now    float64
	seq    int64
	events eventHeap
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn after the given delay of virtual time. A negative
// delay is treated as zero (fire at the current instant, after already
// scheduled same-instant events).
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) ScheduleAt(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{time: t, seq: e.seq, fn: fn})
}

// Run processes events until the calendar is empty and returns the
// number of events processed.
func (e *Engine) Run() int {
	n := 0
	for e.events.Len() > 0 {
		e.step()
		n++
	}
	return n
}

// RunUntil processes events with time ≤ horizon, advances the clock to
// the horizon, and returns the number of events processed.
func (e *Engine) RunUntil(horizon float64) int {
	n := 0
	for e.events.Len() > 0 && e.events[0].time <= horizon {
		e.step()
		n++
	}
	if e.now < horizon {
		e.now = horizon
	}
	return n
}

func (e *Engine) step() {
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.time
	ev.fn()
}

// Pending returns the number of events still on the calendar.
func (e *Engine) Pending() int { return e.events.Len() }

type event struct {
	time float64
	seq  int64
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Resource is a FIFO-serialized device: each Acquire occupies it for a
// duration, starting no earlier than both the current time and the end
// of the previous occupation. It models a NIC injecting packets or a
// half-duplex link draining them.
type Resource struct {
	engine    *Engine
	busyUntil float64
}

// NewResource returns a resource bound to the engine, free immediately.
func NewResource(e *Engine) *Resource { return &Resource{engine: e} }

// Acquire occupies the resource for dur starting at
// max(now, end-of-queue) and schedules done(start, end) at the end
// instant. It returns the end time.
func (r *Resource) Acquire(dur float64, done func(start, end float64)) float64 {
	if dur < 0 {
		dur = 0
	}
	start := r.engine.Now()
	if r.busyUntil > start {
		start = r.busyUntil
	}
	end := start + dur
	r.busyUntil = end
	if done != nil {
		r.engine.ScheduleAt(end, func() { done(start, end) })
	}
	return end
}

// AcquireAfter is Acquire but with an earliest-start constraint: the
// occupation cannot begin before ready (e.g. a packet cannot enter a
// downstream link before the upstream finished emitting it).
func (r *Resource) AcquireAfter(ready, dur float64, done func(start, end float64)) float64 {
	if dur < 0 {
		dur = 0
	}
	start := r.engine.Now()
	if ready > start {
		start = ready
	}
	if r.busyUntil > start {
		start = r.busyUntil
	}
	end := start + dur
	r.busyUntil = end
	if done != nil {
		r.engine.ScheduleAt(end, func() { done(start, end) })
	}
	return end
}

// FreeAt returns the time at which the resource becomes free.
func (r *Resource) FreeAt() float64 { return r.busyUntil }
