// Package bsp is the homogeneous baseline: Valiant's plain BSP cost
// model (§2, reference [19]), which the paper generalizes. It predicts
// collective costs while ignoring heterogeneity — every processor is
// assumed as fast as the fastest — and so quantifies what the HBSP^k
// model adds: the gap between a BSP prediction and the heterogeneous
// machine's actual (simulated) behaviour is the cost of pretending a
// heterogeneous cluster is uniform.
package bsp

import (
	"hbspk/internal/model"
)

// Machine is a plain BSP machine: p identical processors, bandwidth g,
// barrier cost L.
type Machine struct {
	P int
	G float64
	L float64
}

// Of views a heterogeneous tree as BSP by dropping every r and taking
// the root's sync cost: the prediction a BSP programmer would make for
// the same cluster.
func Of(t *model.Tree) Machine {
	return Machine{P: t.NProcs(), G: t.G, L: t.Root.SyncCost}
}

// StepTime is the BSP superstep cost w + g·h + L.
func (m Machine) StepTime(w, h float64) float64 { return w + m.G*h + m.L }

// Gather predicts the cost of gathering n bytes at one processor:
// the root receives n(p-1)/p bytes (equal pieces, no self-send), so
// h = n(p-1)/p.
func (m Machine) Gather(n int) float64 {
	h := float64(n) * float64(m.P-1) / float64(m.P)
	return m.StepTime(0, h)
}

// BcastOnePhase predicts the one-phase broadcast: the root sends n bytes
// to each of the other p-1 processors.
func (m Machine) BcastOnePhase(n int) float64 {
	return m.StepTime(0, float64(n)*float64(m.P-1))
}

// BcastTwoPhase predicts the two-phase broadcast of Juurlink & Wijshoff
// (reference [11]): scatter h = n, then all-gather h = n, two barriers.
// On a homogeneous machine this is the paper's g·n·(1 + r_s) + 2L with
// r_s = 1.
func (m Machine) BcastTwoPhase(n int) float64 {
	return m.StepTime(0, float64(n)) + m.StepTime(0, float64(n))
}

// Scatter predicts the scatter of n bytes in equal pieces.
func (m Machine) Scatter(n int) float64 { return m.Gather(n) }

// AllGather predicts the all-gather with equal pieces: every processor
// sends its n/p piece to p-1 peers and receives n(p-1)/p.
func (m Machine) AllGather(n int) float64 {
	h := float64(n) * float64(m.P-1) / float64(m.P)
	return m.StepTime(0, h)
}

// TotalExchange predicts a balanced all-to-all of n bytes total per
// processor row.
func (m Machine) TotalExchange(n int) float64 {
	h := float64(n) * float64(m.P-1) / float64(m.P)
	return m.StepTime(0, h)
}

// Reduce predicts a direct reduction of p vectors of w bytes at the
// root with per-byte combine cost opCost.
func (m Machine) Reduce(w int, opCost float64) float64 {
	work := opCost * float64(w) * float64(m.P-1)
	return m.StepTime(work, float64(w)*float64(m.P-1))
}
