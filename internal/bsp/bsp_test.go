package bsp

import (
	"fmt"
	"math"
	"testing"

	"hbspk/internal/cost"
	"hbspk/internal/model"
)

func TestOfDropsHeterogeneity(t *testing.T) {
	tr := model.UCFTestbed()
	m := Of(tr)
	if m.P != 10 || m.G != tr.G || m.L != tr.Root.SyncCost {
		t.Errorf("Of = %+v", m)
	}
}

func TestBSPMatchesHBSPOnHomogeneousMachine(t *testing.T) {
	// On a homogeneous machine the HBSP^k cost model must reduce to
	// plain BSP: the h-relation arithmetic agrees for every collective.
	tr := model.Homogeneous(8, 500)
	m := Of(tr)
	n := 80000
	root := 0
	if got, want := m.Gather(n), cost.GatherFlat(tr, root, cost.EqualDist(tr, n)).Total(); math.Abs(got-want) > 1e-9 {
		t.Errorf("gather: bsp %v vs hbsp %v", got, want)
	}
	if got, want := m.BcastOnePhase(n), cost.BcastOnePhaseFlat(tr, root, n).Total(); math.Abs(got-want) > 1e-9 {
		t.Errorf("bcast-1p: bsp %v vs hbsp %v", got, want)
	}
	if got, want := m.Scatter(n), cost.ScatterFlat(tr, root, cost.EqualDist(tr, n)).Total(); math.Abs(got-want) > 1e-9 {
		t.Errorf("scatter: bsp %v vs hbsp %v", got, want)
	}
}

func TestBSPTwoPhaseNearHBSPOnHomogeneous(t *testing.T) {
	// The two-phase broadcast differs only by the (p-1)/p self-piece
	// factor; on 8 processors the BSP idealization g·n is within 15%.
	tr := model.Homogeneous(8, 500)
	m := Of(tr)
	n := 80000
	got := m.BcastTwoPhase(n)
	want := cost.BcastTwoPhaseFlat(tr, 0, cost.EqualDist(tr, n)).Total()
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("bcast-2p: bsp %v vs hbsp %v", got, want)
	}
}

func TestBSPUnderpredictsOnHeterogeneousMachine(t *testing.T) {
	// Pretending a strongly heterogeneous cluster is homogeneous
	// underestimates the two-phase broadcast: the slowest machine's
	// r_s = 3 inflates the exchange phase, which BSP cannot see.
	leaves := make([]*model.Machine, 6)
	for i := range leaves {
		r := 1 + float64(i)*0.4
		leaves[i] = model.NewLeaf(fmt.Sprintf("ws%d", i), model.WithComm(r), model.WithComp(r))
	}
	tr := model.MustNew(model.NewCluster("lan", leaves, model.WithSync(25000)), 1).Normalize()
	m := Of(tr)
	n := 500000
	bspPred := m.BcastTwoPhase(n)
	hbspPred := cost.BcastTwoPhaseFlat(tr, tr.Pid(tr.FastestLeaf()), cost.EqualDist(tr, n)).Total()
	if bspPred >= hbspPred {
		t.Errorf("BSP %v should underpredict HBSP %v on a heterogeneous machine", bspPred, hbspPred)
	}
	if hbspPred/bspPred < 1.1 {
		t.Errorf("gap %vx too small to be the heterogeneity penalty", hbspPred/bspPred)
	}
}

func TestReducePrediction(t *testing.T) {
	m := Machine{P: 4, G: 2, L: 10}
	// work = 0.1·100·3 = 30; h = 300; T = 30 + 600 + 10.
	if got := m.Reduce(100, 0.1); got != 640 {
		t.Errorf("reduce = %v, want 640", got)
	}
}

func TestAllGatherAndTotalExchange(t *testing.T) {
	m := Machine{P: 10, G: 1, L: 100}
	n := 10000
	if got, want := m.AllGather(n), 9000.0+100; got != want {
		t.Errorf("allgather = %v, want %v", got, want)
	}
	if got, want := m.TotalExchange(n), 9000.0+100; got != want {
		t.Errorf("total exchange = %v, want %v", got, want)
	}
}
