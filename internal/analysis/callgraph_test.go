package analysis

import "testing"

func TestCallGraphGolden(t *testing.T) {
	t.Parallel()
	runGolden(t, CommGraph, "callgraph")
}

func TestStaleIgnoreGolden(t *testing.T) {
	t.Parallel()
	runGolden(t, CommGraph, "staleignore")
}

func TestCostParamsCalibrationGolden(t *testing.T) {
	t.Parallel()
	runGolden(t, CostParams, "costparamscal")
}

// TestCallGraphFixpoint asserts the synchronizes set directly: mutual
// recursion converges with both parties marked, method and function
// values mark their creators — including function and method values
// passed as call arguments, the collective-combiner seam pidtaint and
// bufown depend on — and a barrier-free helper stays unmarked (the
// over-approximation is not an any-call approximation).
func TestCallGraphFixpoint(t *testing.T) {
	t.Parallel()
	loader, err := NewLoader("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("callgraph")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	pass := &Pass{
		Analyzer:  CommGraph,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(Diagnostic) {},
	}
	g := buildCallGraph(pass)
	syncsByName := map[string]bool{}
	for fn := range g.decls {
		syncsByName[fn.Name()] = g.syncs[fn]
	}
	wantSync := []string{"pingSync", "pongSync", "viaMethodValue", "viaFuncValue", "syncHelper",
		"afterMutualRecursion", "afterMethodValue", "afterFuncValue",
		"passesFuncValueArg", "passesMethodValueArg"}
	for _, name := range wantSync {
		if !syncsByName[name] {
			t.Errorf("fixpoint misses %s: must be marked synchronizing", name)
		}
	}
	wantClean := []string{"pureHelper", "afterPureHelper", "pureStep", "passesPureFuncValueArg", "apply"}
	for _, name := range wantClean {
		if syncsByName[name] {
			t.Errorf("fixpoint over-marks %s: it contains no barrier on any path", name)
		}
	}
}
