package analysis

import (
	"strings"
	"testing"
)

// runGolden applies one analyzer to its fixture package and fails on
// any mismatch with the `// want` expectations.
func runGolden(t *testing.T, a *Analyzer, pattern string) {
	t.Helper()
	res, err := Golden(a, "testdata", pattern)
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	for _, p := range res.Problems {
		t.Errorf("%s", p)
	}
	if len(res.Diagnostics) == 0 {
		t.Errorf("analyzer %s reported nothing on its fixture", a.Name)
	}
}

func TestSyncDisciplineGolden(t *testing.T) { runGolden(t, SyncDiscipline, "syncdiscipline") }

func TestCommGraphGolden(t *testing.T) { runGolden(t, CommGraph, "commgraph") }

func TestSyncFlowGolden(t *testing.T) { runGolden(t, SyncFlow, "syncflow") }

func TestBufReuseGolden(t *testing.T) { runGolden(t, BufReuse, "bufreuse") }

func TestUncheckedRunGolden(t *testing.T) { runGolden(t, UncheckedRun, "uncheckedrun") }

func TestCostParamsGolden(t *testing.T) { runGolden(t, CostParams, "costparams") }

func TestLockOrderGolden(t *testing.T) { runGolden(t, LockOrder, "lockorder") }

// TestSuiteOnRepo runs the full suite over the repository itself: the
// tree must stay clean, so hbspk-vet can gate CI. This doubles as an
// integration test of the module-aware loader.
func TestSuiteOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module from source")
	}
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	loader.IncludeTests = true
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from the module", len(pkgs))
	}
	diags, err := RunAnalyzers(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		pos := loader.Fset().Position(d.Pos)
		t.Errorf("%s: %s (%s)", pos, d.Message, d.Analyzer)
	}
}

// TestIgnoreDirectiveParsing pins the suppression comment grammar.
func TestIgnoreDirectiveParsing(t *testing.T) {
	cases := []struct {
		text string
		name string
		ok   bool
	}{
		{"//hbspk:ignore", "", true},
		{"//hbspk:ignore syncdiscipline", "syncdiscipline", true},
		{"//hbspk:ignore bufreuse trailing words", "bufreuse", true},
		{"// regular comment", "", false},
		{"//hbspk:ignored", "", false}, // a longer word is not the directive
	}
	for _, c := range cases {
		name, ok := parseIgnore(c.text)
		if ok != c.ok || name != c.name {
			t.Errorf("parseIgnore(%q) = %q, %v; want %q, %v", c.text, name, ok, c.name, c.ok)
		}
	}
}

// TestWantPatternSplitting pins the golden-comment grammar.
func TestWantPatternSplitting(t *testing.T) {
	got := splitWantPatterns("\"first\" `second` \"with \\\" quote\"")
	want := []string{"first", "second", `with " quote`}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("splitWantPatterns = %q, want %q", got, want)
	}
}
