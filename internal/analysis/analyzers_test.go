package analysis

import (
	"strings"
	"testing"
)

// runGolden applies one analyzer to its fixture package and fails on
// any mismatch with the `// want` expectations.
func runGolden(t *testing.T, a *Analyzer, pattern string) {
	t.Helper()
	res, err := Golden(a, "testdata", pattern)
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	for _, p := range res.Problems {
		t.Errorf("%s", p)
	}
	if len(res.Diagnostics) == 0 {
		t.Errorf("analyzer %s reported nothing on its fixture", a.Name)
	}
}

func TestSyncDisciplineGolden(t *testing.T) {
	t.Parallel()
	runGolden(t, SyncDiscipline, "syncdiscipline")
}

func TestCommGraphGolden(t *testing.T) {
	t.Parallel()
	runGolden(t, CommGraph, "commgraph")
}

func TestSyncFlowGolden(t *testing.T) {
	t.Parallel()
	runGolden(t, SyncFlow, "syncflow")
}

func TestBufReuseGolden(t *testing.T) {
	t.Parallel()
	runGolden(t, BufReuse, "bufreuse")
}

func TestPidTaintGolden(t *testing.T) {
	t.Parallel()
	runGolden(t, PidTaint, "pidtaint")
}

func TestBufOwnGolden(t *testing.T) {
	t.Parallel()
	runGolden(t, BufOwn, "bufown")
}

func TestUncheckedRunGolden(t *testing.T) {
	t.Parallel()
	runGolden(t, UncheckedRun, "uncheckedrun")
}

func TestCostParamsGolden(t *testing.T) {
	t.Parallel()
	runGolden(t, CostParams, "costparams")
}

func TestLockOrderGolden(t *testing.T) {
	t.Parallel()
	runGolden(t, LockOrder, "lockorder")
}

// TestSuiteOnRepo runs the full suite over the repository itself: the
// tree must stay clean, so hbspk-vet can gate CI. This doubles as an
// integration test of the module-aware loader.
func TestSuiteOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module from source")
	}
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	loader.IncludeTests = true
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from the module", len(pkgs))
	}
	diags, err := RunAnalyzers(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		pos := loader.Fset().Position(d.Pos)
		t.Errorf("%s: %s (%s)", pos, d.Message, d.Analyzer)
	}
}

// TestDedupeOverlapping pins the cross-analyzer rule: when bufown and
// bufreuse both fire on one call, only bufown's path-sensitive report
// survives; findings at other positions and from other analyzers pass
// through untouched.
func TestDedupeOverlapping(t *testing.T) {
	t.Parallel()
	diags := []Diagnostic{
		{Pos: 10, Analyzer: BufOwn.Name, Message: "sent again"},
		{Pos: 10, Analyzer: BufReuse.Name, Message: "resent"},
		{Pos: 20, Analyzer: BufReuse.Name, Message: "pack after send"},
		{Pos: 10, Analyzer: PidTaint.Name, Message: "unrelated"},
	}
	ran := map[string]bool{BufOwn.Name: true, BufReuse.Name: true}
	out := dedupeOverlapping(diags, ran)
	if len(out) != 3 {
		t.Fatalf("dedupe kept %d diagnostics, want 3: %v", len(out), out)
	}
	for _, d := range out {
		if d.Analyzer == BufReuse.Name && d.Pos == 10 {
			t.Errorf("bufreuse finding at the bufown position survived the dedupe")
		}
	}
	// Without both analyzers in the run there is nothing to dedupe.
	solo := dedupeOverlapping([]Diagnostic{{Pos: 10, Analyzer: BufReuse.Name}}, map[string]bool{BufReuse.Name: true})
	if len(solo) != 1 {
		t.Errorf("dedupe with bufown absent dropped a finding")
	}
}

// TestIgnoreDirectiveParsing pins the suppression comment grammar,
// including the comma-separated multi-analyzer form.
func TestIgnoreDirectiveParsing(t *testing.T) {
	t.Parallel()
	cases := []struct {
		text  string
		names string // comma-joined expectation
		ok    bool
	}{
		{"//hbspk:ignore", "", true},
		{"//hbspk:ignore syncdiscipline", "syncdiscipline", true},
		{"//hbspk:ignore bufreuse trailing words", "bufreuse", true},
		{"//hbspk:ignore bufreuse,bufown deliberate double send", "bufreuse,bufown", true},
		{"//hbspk:ignore a,b,c", "a,b,c", true},
		{"// regular comment", "", false},
		{"//hbspk:ignored", "", false}, // a longer word is not the directive
	}
	for _, c := range cases {
		names, ok := parseIgnore(c.text)
		got := strings.Join(names, ",")
		if ok != c.ok || (ok && got != c.names) {
			t.Errorf("parseIgnore(%q) = %q, %v; want %q, %v", c.text, got, ok, c.names, c.ok)
		}
	}
}

// TestWantPatternSplitting pins the golden-comment grammar.
func TestWantPatternSplitting(t *testing.T) {
	t.Parallel()
	got := splitWantPatterns("\"first\" `second` \"with \\\" quote\"")
	want := []string{"first", "second", `with " quote`}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("splitWantPatterns = %q, want %q", got, want)
	}
}
