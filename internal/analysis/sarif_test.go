package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"
)

// TestSARIFStructure pins the 2.1.0 shape: schema URI, version, one run
// with tool.driver.rules, and results whose ruleIndex points back into
// the rules array with a precise region.
func TestSARIFStructure(t *testing.T) {
	t.Parallel()
	fset := token.NewFileSet()
	f := fset.AddFile("pkg/a.go", -1, 1000)
	f.SetLines([]int{0, 100, 200, 300})
	pos := f.Pos(105) // line 2, col 6
	end := f.Pos(130) // line 2, col 31

	diags := []Diagnostic{
		{Pos: pos, End: end, Analyzer: "pidtaint", Message: "divergent arms"},
		{Pos: pos, Analyzer: "variantcheck", Message: "cheaper variant"},
	}
	doc := SARIFDoc(fset, diags, []*Analyzer{PidTaint, BufOwn}, "", map[string]string{"variantcheck": "advice"})

	var buf bytes.Buffer
	if err := doc.WriteSARIF(&buf); err != nil {
		t.Fatal(err)
	}
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}

	if v := log["version"]; v != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", v)
	}
	if s, _ := log["$schema"].(string); s == "" {
		t.Error("missing $schema")
	}
	runs, _ := log["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "hbspk-vet" {
		t.Errorf("driver name = %v", driver["name"])
	}
	rules := driver["rules"].([]any)
	ruleIDs := make([]string, len(rules))
	for i, r := range rules {
		ruleIDs[i] = r.(map[string]any)["id"].(string)
	}
	results := run["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	for _, raw := range results {
		r := raw.(map[string]any)
		idx := int(r["ruleIndex"].(float64))
		if idx < 0 || idx >= len(ruleIDs) || ruleIDs[idx] != r["ruleId"] {
			t.Errorf("result ruleIndex %d does not resolve to ruleId %v", idx, r["ruleId"])
		}
		locs := r["locations"].([]any)
		phys := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
		if phys["artifactLocation"].(map[string]any)["uri"] != "pkg/a.go" {
			t.Errorf("artifact uri = %v", phys["artifactLocation"])
		}
		region := phys["region"].(map[string]any)
		if int(region["startLine"].(float64)) != 2 {
			t.Errorf("startLine = %v, want 2", region["startLine"])
		}
	}

	first := results[0].(map[string]any)
	region := first["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)["region"].(map[string]any)
	if int(region["endColumn"].(float64)) != 31 {
		t.Errorf("endColumn = %v, want 31", region["endColumn"])
	}
	if first["level"] != "error" {
		t.Errorf("pidtaint level = %v, want error", first["level"])
	}
	second := results[1].(map[string]any)
	if second["level"] != "note" {
		t.Errorf("advisory level = %v, want note", second["level"])
	}
}
