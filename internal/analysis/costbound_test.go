package analysis

import (
	"testing"

	"hbspk/internal/model"
)

func TestCostBoundGolden(t *testing.T) { runGolden(t, CostBound, "costbound") }

// loadCostboundPass loads the costbound fixture and wraps it in a pass,
// the extractor's input shape.
func loadCostboundPass(t *testing.T) *Pass {
	t.Helper()
	loader, err := NewLoader("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("costbound")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages for the fixture, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	return &Pass{
		Analyzer:  CostBound,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(Diagnostic) {},
	}
}

// TestExtractCostsSymbolic pins the rendered per-superstep cost
// expressions: segment boundaries at synchronizing calls, constant
// folding of make sizes, element-size scaling, per-proc payloads
// multiplied by p, and the +L term only on plain barriers.
func TestExtractCostsSymbolic(t *testing.T) {
	pass := loadCostboundPass(t)
	funcs := map[string]FuncCost{}
	for _, fc := range ExtractCosts(pass) {
		funcs[fc.Name] = fc
	}

	er, ok := funcs["exchangeRounds"]
	if !ok {
		t.Fatal("exchangeRounds was not extracted")
	}
	if len(er.Steps) != 2 {
		t.Fatalf("exchangeRounds: %d steps, want 2", len(er.Steps))
	}
	s0 := er.Steps[0]
	if got, want := s0.Cost().String(), "coll(BcastOnePhase, 4096)"; got != want {
		t.Errorf("step 0 cost = %q, want %q", got, want)
	}
	if !s0.SyncIsColl || s0.Sync != "BcastOnePhase" {
		t.Errorf("step 0 closed by %q (coll=%v), want the collective", s0.Sync, s0.SyncIsColl)
	}
	s1 := er.Steps[1]
	if got, want := s1.Cost().String(), "g*rmax*(128 + size(len(payload))) + L"; got != want {
		t.Errorf("step 1 cost = %q, want %q", got, want)
	}
	if s1.Sync != "Sync(scope)" {
		t.Errorf("step 1 closed by %q, want Sync(scope)", s1.Sync)
	}
	if len(s1.Sends) != 2 || s1.Sends[0].Dst != "1" || s1.Sends[0].Tag != "5" {
		t.Errorf("step 1 sends = %+v, want two folded tag-5 sends", s1.Sends)
	}

	rp, ok := funcs["reducePerProc"]
	if !ok {
		t.Fatal("reducePerProc was not extracted")
	}
	if len(rp.Steps) != 1 {
		t.Fatalf("reducePerProc: %d steps, want 1", len(rp.Steps))
	}
	if got, want := rp.Steps[0].Cost().String(), "coll(Reduce, p*8*size(len(words)))"; got != want {
		t.Errorf("reducePerProc cost = %q, want %q", got, want)
	}
}

// TestCostExprEval evaluates an extracted bound against a calibrated
// tree: free sizes must be reported, unbound sizes must error, and the
// bound must reproduce g·rmax·h + L arithmetic exactly.
func TestCostExprEval(t *testing.T) {
	pass := loadCostboundPass(t)
	var bound *Expr
	for _, fc := range ExtractCosts(pass) {
		if fc.Name == "exchangeRounds" {
			bound = fc.Steps[1].Cost()
		}
	}
	if bound == nil {
		t.Fatal("no bound extracted for exchangeRounds")
	}
	free := bound.FreeSizes()
	if len(free) != 1 || free[0] != "len(payload)" {
		t.Fatalf("FreeSizes = %v, want [len(payload)]", free)
	}

	tr := model.UCFTestbed()
	if _, err := bound.Eval(&CostEnv{Tree: tr}); err == nil {
		t.Error("Eval with unbound size should error")
	}
	env := &CostEnv{Tree: tr, Sizes: map[string]float64{"len(payload)": 1024}}
	got, err := bound.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := env.param("g")
	rmax, _ := env.param("rmax")
	L, _ := env.param("L")
	want := g*rmax*(128+1024) + L
	if got != want {
		t.Errorf("Eval = %g, want g*rmax*1152 + L = %g", got, want)
	}

	// A coll node resolves through the closed-form hooks.
	collExpr := Coll("BcastOnePhase", Const(4096))
	v, err := collExpr.Eval(env)
	if err != nil || v <= 0 {
		t.Errorf("coll(BcastOnePhase, 4096) eval = %g, %v", v, err)
	}
	if _, err := Coll("NoSuchVariant", Const(1)).Eval(env); err == nil {
		t.Error("unknown collective variant should error")
	}
}
