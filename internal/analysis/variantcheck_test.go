package analysis

import (
	"strings"
	"testing"

	"hbspk/internal/model"
	"hbspk/internal/obsv"
)

// The two golden runs are the "known switchpoints as static advice"
// contract: flat -> hierarchical broadcast on the deep grid, one-phase
// -> two-phase broadcast on the calibrated UCF testbed.

func TestVariantCheckGoldenGrid(t *testing.T) {
	runGolden(t, VariantCheck(model.WideAreaGrid(3, 4, 12, 25000, 250000), 1.2), "variantcheck")
}

func TestVariantCheckGoldenUCF(t *testing.T) {
	runGolden(t, VariantCheck(model.UCFTestbed(), 1.2), "variantcheckucf")
}

// TestVariantCheckRatio: the advice threshold is configurable — at a
// ratio above the actual win nothing is reported.
func TestVariantCheckRatio(t *testing.T) {
	loader, err := NewLoader("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("variantcheck")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkgs, []*Analyzer{VariantCheck(model.WideAreaGrid(3, 4, 12, 25000, 250000), 10)})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Analyzer == VariantCheckName {
			t.Errorf("ratio 10 should silence the 3.4x win: %s", d.Message)
		}
	}
}

// TestCommGraphExport pins the exported wire document over the
// costbound fixture: folded edges, symbolic byte expressions, cost
// strings, and deterministic encoding.
func TestCommGraphExport(t *testing.T) {
	loader, err := NewLoader("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("costbound")
	if err != nil {
		t.Fatal(err)
	}
	doc := CommGraphDocOf(pkgs, "hbspk")
	if doc.Schema != obsv.CommGraphSchema {
		t.Fatalf("schema = %q", doc.Schema)
	}
	if len(doc.Packages) != 1 || doc.Packages[0].Path != "costbound" {
		t.Fatalf("packages = %+v", doc.Packages)
	}
	var er *obsv.FuncGraph
	for i, f := range doc.Packages[0].Funcs {
		if f.Name == "exchangeRounds" {
			er = &doc.Packages[0].Funcs[i]
		}
	}
	if er == nil {
		t.Fatal("exchangeRounds missing from the export")
	}
	if len(er.Steps) != 2 {
		t.Fatalf("exchangeRounds steps = %+v", er.Steps)
	}
	if got := er.Steps[0].Collectives; len(got) != 1 || got[0] != "BcastOnePhase" {
		t.Errorf("step 0 collectives = %v", got)
	}
	wantEdge := obsv.CommEdge{Src: "*", Dst: "1", Tag: "5", Bytes: "128"}
	if len(er.Steps[1].Edges) != 2 || er.Steps[1].Edges[0] != wantEdge {
		t.Errorf("step 1 edges = %+v, want first %+v", er.Steps[1].Edges, wantEdge)
	}
	if !strings.Contains(er.Steps[1].Cost, "g*rmax*") || !strings.HasSuffix(er.Steps[1].Cost, "+ L") {
		t.Errorf("step 1 cost = %q", er.Steps[1].Cost)
	}

	var a, b strings.Builder
	if err := doc.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	doc2 := CommGraphDocOf(pkgs, "hbspk")
	if err := doc2.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("export is not deterministic")
	}
	parsed, err := obsv.ParseCommGraph(strings.NewReader(a.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Packages) != 1 {
		t.Fatalf("round trip lost packages: %+v", parsed.Packages)
	}
}
