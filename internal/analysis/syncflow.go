package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SyncFlow tracks delivered-buffer lifetimes across superstep
// boundaries, interprocedurally. A payload obtained from Moves() in
// superstep λ is guaranteed only until the next synchronizing call: the
// engine may recycle the delivery window, and under faults the bytes
// can be gone entirely. SyncFlow taints locals that alias a delivered
// buffer (the Moves slice, a Message field, a sub-slice — anything
// sharing the backing array; function results are presumed fresh
// copies) and reports
//
//   - a read of a tainted local after a later superstep boundary in the
//     same function, where "boundary" includes calls to package-local
//     helpers that synchronize transitively (the call graph's fixpoint
//     fact), and
//   - a tainted argument handed to a package-local helper that itself
//     crosses a boundary before reading that parameter — the stale read
//     happens inside the callee, so it is reported at the hand-off.
//
// Holding a buffer across a barrier on purpose (e.g. two-phase
// broadcast keeping its piece for reassembly) is occasionally sound
// when the program re-sends the bytes before anyone mutates them; such
// audited cases carry `//hbspk:ignore syncflow`.
var SyncFlow = &Analyzer{
	Name: "syncflow",
	Doc:  "flag delivered buffers read across superstep boundaries, through helper calls",
	Run:  runSyncFlow,
}

func runSyncFlow(pass *Pass) error {
	g := sharedCallGraph(pass)
	var facts map[*types.Func]map[int]bool
	if pass.pkg != nil {
		if pass.pkg.staleParams == nil {
			pass.pkg.staleParams = staleParamFacts(pass, g)
		}
		facts = pass.pkg.staleParams
	} else {
		facts = staleParamFacts(pass, g)
	}
	for _, f := range pass.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			checkSyncFlow(pass, g, facts, body)
		})
	}
	return nil
}

// flowState is one forward pass over a body in source order: a
// superstep generation counter bumped at every synchronizing call, and
// the set of Moves-aliasing locals with the generation each was bound
// in. Reads of a local bound in an older generation invoke onStale.
type flowState struct {
	pass    *Pass
	g       *callGraph
	gen  int
	bind map[types.Object]int
	// skip marks idents already judged as arguments of a synchronizing
	// call: they are read before the callee's internal barrier, so the
	// walk must not re-judge them at the post-call generation.
	skip    map[*ast.Ident]bool
	onStale func(id *ast.Ident, obj types.Object, boundAt int)
	// onCall, when set, probes each call site before the generation
	// bump the callee may cause.
	onCall func(call *ast.CallExpr)
}

func newFlowState(pass *Pass, g *callGraph) *flowState {
	return &flowState{
		pass: pass,
		g:    g,
		bind: make(map[types.Object]int),
		skip: make(map[*ast.Ident]bool),
	}
}

func (s *flowState) walk(body *ast.BlockStmt) {
	walkBody(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if s.onCall != nil {
				s.onCall(x)
			}
			if s.g.callSynchronizes(x) {
				// The call's arguments are read before the callee's
				// internal barrier: judge them at the pre-bump
				// generation, then advance.
				for _, arg := range x.Args {
					ast.Inspect(arg, func(n ast.Node) bool {
						if _, ok := n.(*ast.FuncLit); ok {
							return false
						}
						if id, ok := n.(*ast.Ident); ok {
							s.use(id)
							s.skip[id] = true
						}
						return true
					})
				}
				s.gen++
			}
		case *ast.AssignStmt:
			s.assign(x)
		case *ast.ValueSpec:
			for i, name := range x.Names {
				var rhs ast.Expr
				if len(x.Values) == len(x.Names) {
					rhs = x.Values[i]
				} else if len(x.Values) == 1 {
					rhs = x.Values[0]
				}
				obj := s.pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if rhs != nil && s.aliased(rhs) {
					s.bind[obj] = s.gen
				}
			}
		case *ast.RangeStmt:
			if s.aliased(x.X) {
				for _, lhs := range []ast.Expr{x.Key, x.Value} {
					if lhs == nil {
						continue
					}
					if obj := identObj(s.pass.TypesInfo, lhs); obj != nil {
						s.bind[obj] = s.gen
					}
				}
			}
		case *ast.Ident:
			s.use(x)
		}
		return true
	})
}

// assign rebinds each identifier target: an aliasing RHS taints it at
// the current generation; any other RHS (a fresh allocation, a copy via
// append/encode/decode) clears it. Runs before the statement's idents
// are visited, so the LHS write itself is never mistaken for a read.
func (s *flowState) assign(st *ast.AssignStmt) {
	for i, lhs := range st.Lhs {
		var rhs ast.Expr
		if len(st.Rhs) == len(st.Lhs) {
			rhs = st.Rhs[i]
		} else if len(st.Rhs) == 1 {
			rhs = st.Rhs[0]
		}
		obj := identObj(s.pass.TypesInfo, lhs)
		if obj == nil {
			continue
		}
		if rhs != nil && s.aliased(rhs) {
			s.bind[obj] = s.gen
		} else if st.Tok == token.ASSIGN || st.Tok == token.DEFINE {
			delete(s.bind, obj)
		}
	}
}

func (s *flowState) use(id *ast.Ident) {
	if s.skip[id] {
		return
	}
	obj := s.pass.TypesInfo.Uses[id]
	if obj == nil || s.onStale == nil {
		return
	}
	if boundAt, ok := s.bind[obj]; ok && boundAt < s.gen {
		s.onStale(id, obj, boundAt)
	}
}

// aliased reports whether e shares backing storage with a delivered
// buffer: the Moves() slice itself, an element, field, sub-slice,
// dereference or address of one, or a local already tainted. Function
// calls are presumed to return fresh storage (append-copies, unpackers,
// digests), which keeps the legitimate decode-then-fold idiom clean.
func (s *flowState) aliased(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := identObj(s.pass.TypesInfo, x)
		if obj == nil {
			return false
		}
		_, ok := s.bind[obj]
		return ok
	case *ast.CallExpr:
		return isCtxMethod(s.pass, x, "Moves")
	case *ast.IndexExpr:
		return s.aliased(x.X)
	case *ast.SliceExpr:
		return s.aliased(x.X)
	case *ast.SelectorExpr:
		return s.aliased(x.X)
	case *ast.StarExpr:
		return s.aliased(x.X)
	case *ast.UnaryExpr:
		return x.Op == token.AND && s.aliased(x.X)
	}
	return false
}

// staleParamFacts computes, for every package-local function that
// synchronizes, which buffer-like parameters it reads after its own
// first boundary. A caller passing a delivered buffer in such a
// position ships bytes that expire mid-callee.
func staleParamFacts(pass *Pass, g *callGraph) map[*types.Func]map[int]bool {
	facts := make(map[*types.Func]map[int]bool)
	for fn, fd := range g.decls {
		if !g.syncs[fn] {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		params := make(map[types.Object]int)
		st := newFlowState(pass, g)
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			if aliasableParam(p.Type()) {
				params[p] = i
				st.bind[p] = 0
			}
		}
		if len(params) == 0 {
			continue
		}
		var hit map[int]bool
		st.onStale = func(id *ast.Ident, obj types.Object, boundAt int) {
			if idx, ok := params[obj]; ok && boundAt == 0 {
				if hit == nil {
					hit = make(map[int]bool)
				}
				hit[idx] = true
			}
		}
		st.walk(fd.Body)
		if hit != nil {
			facts[fn] = hit
		}
	}
	return facts
}

// aliasableParam reports whether a parameter of this type can alias a
// delivered buffer (reference semantics).
func aliasableParam(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map:
		return true
	}
	return false
}

func checkSyncFlow(pass *Pass, g *callGraph, facts map[*types.Func]map[int]bool, body *ast.BlockStmt) {
	st := newFlowState(pass, g)
	st.onStale = func(id *ast.Ident, obj types.Object, boundAt int) {
		pass.Reportf(id.Pos(),
			"delivered buffer %q received in superstep generation %d read after a later superstep boundary: payloads are only valid until the next Sync", id.Name, boundAt)
	}
	// Cross-function early reads: a tainted argument in a parameter
	// position the callee reads after its own boundary is reported at
	// the hand-off, where the fix belongs (copy before passing).
	st.onCall = func(call *ast.CallExpr) {
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return
		}
		for idx := range facts[fn] {
			if idx < len(call.Args) && st.aliased(call.Args[idx]) {
				pass.Reportf(call.Args[idx].Pos(),
					"delivered buffer passed to %s, which synchronizes before reading it: the payload expires at that boundary", fn.Name())
			}
		}
	}
	st.walk(body)
}
