package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path ("hbspk/internal/pvm"); external
	// test packages carry a "_test" suffix.
	Path string
	// Dir is the package's directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Lazily-built per-package summaries, shared across the analyzers of
	// one RunAnalyzers invocation so the interprocedural layer (call
	// graph, stale-parameter facts, alignment summaries) is computed once
	// per package rather than once per analyzer — the cache that keeps
	// the whole-repo run inside the CI wall-time budget.
	cg          *callGraph
	staleParams map[*types.Func]map[int]bool
	alignSums   map[*types.Func]string
}

// Loader loads packages of one module from source, resolving in-module
// imports against the module directory and everything else through the
// standard library's source importer — no compiled export data and no
// network are required. It implements types.Importer for dependencies.
type Loader struct {
	// ModuleDir is the directory holding go.mod; ModulePath the module
	// path declared there.
	ModuleDir  string
	ModulePath string
	// IncludeTests merges in-package _test.go files into requested
	// packages and additionally loads external test packages.
	IncludeTests bool

	fset     *token.FileSet
	std      types.Importer
	deps     map[string]*types.Package
	building map[string]bool
}

// NewLoader returns a loader for the module rooted at dir. When the
// directory has no go.mod, modulePath may be "" and only stdlib imports
// resolve (the testdata harness runs in this mode with self-contained
// packages).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		ModuleDir: abs,
		fset:      token.NewFileSet(),
		deps:      make(map[string]*types.Package),
		building:  make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	if data, err := os.ReadFile(filepath.Join(abs, "go.mod")); err == nil {
		l.ModulePath = modulePathOf(string(data))
	}
	return l, nil
}

// modulePathOf extracts the module path from go.mod contents.
func modulePathOf(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import resolves a dependency import: in-module paths load from source
// under ModuleDir (without test files), everything else delegates to the
// stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.localDir(path); ok {
		if pkg, ok := l.deps[path]; ok {
			return pkg, nil
		}
		if l.building[path] {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
		l.building[path] = true
		defer delete(l.building, path)
		loaded, err := l.load(dir, path, false)
		if err != nil {
			return nil, err
		}
		if len(loaded) == 0 {
			return nil, fmt.Errorf("analysis: no Go files in %q", path)
		}
		l.deps[path] = loaded[0].Types
		return loaded[0].Types, nil
	}
	return l.std.Import(path)
}

// localDir maps an import path to a directory inside the module, if it
// belongs to it.
func (l *Loader) localDir(path string) (string, bool) {
	if l.ModulePath == "" {
		// Rootless mode (testdata): import paths are directories relative
		// to ModuleDir.
		dir := filepath.Join(l.ModuleDir, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	}
	if path == l.ModulePath {
		return l.ModuleDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Load loads the packages named by patterns: either directory paths
// ("./internal/pvm", possibly with a trailing "/...") or the bare "./..."
// walking the whole module. Each pattern must resolve to at least one
// package.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		expanded, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		path := l.importPathOf(dir)
		loaded, err := l.load(dir, path, l.IncludeTests)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, loaded...)
	}
	return pkgs, nil
}

func (l *Loader) expand(pattern string) ([]string, error) {
	recursive := false
	if pattern == "all" {
		pattern, recursive = ".", true
	}
	if rest, ok := strings.CutSuffix(pattern, "/..."); ok {
		pattern, recursive = rest, true
		if pattern == "" {
			pattern = "."
		}
	}
	root := pattern
	if !filepath.IsAbs(root) {
		root = filepath.Join(l.ModuleDir, root)
	}
	st, err := os.Stat(root)
	if err != nil || !st.IsDir() {
		return nil, fmt.Errorf("analysis: pattern %q: not a directory under %s", pattern, l.ModuleDir)
	}
	if !recursive {
		return []string{root}, nil
	}
	var dirs []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") && !strings.HasPrefix(e.Name(), "_") {
			return true
		}
	}
	return false
}

func (l *Loader) importPathOf(dir string) string {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || rel == "." {
		if l.ModulePath != "" {
			return l.ModulePath
		}
		return "."
	}
	rel = filepath.ToSlash(rel)
	if l.ModulePath != "" {
		return l.ModulePath + "/" + rel
	}
	return rel
}

// load parses and type-checks the package in dir. With tests set, the
// in-package _test.go files are merged and an external _test package, if
// present, is returned as a second Package.
func (l *Loader) load(dir, path string, tests bool) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var base, inTest, extTest []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !tests {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		switch {
		case !isTest:
			base = append(base, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			extTest = append(extTest, f)
		default:
			inTest = append(inTest, f)
		}
	}
	var pkgs []*Package
	if len(base)+len(inTest) > 0 {
		pkg, err := l.check(path, dir, append(base, inTest...))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
		// The external test package imports the base package; make the
		// just-checked unit available to it (without test files would be
		// more faithful, but the merged unit is a superset and cheaper).
		if len(extTest) > 0 {
			if _, ok := l.deps[path]; !ok {
				l.deps[path] = pkg.Types
			}
		}
	}
	if len(extTest) > 0 {
		pkg, err := l.check(path+"_test", dir, extTest)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check type-checks one compilation unit. Type errors are fatal: the
// analyzers require fully typed trees.
func (l *Loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if typeErr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, typeErr)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}
