package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"hbspk/internal/plan"
	"hbspk/internal/model"
)

// The symbolic cost-expression grammar (DESIGN.md §5.6). A superstep's
// statically extracted cost bound is an expression over the HBSP^k
// model parameters:
//
//	expr := const
//	      | param                     g, rmax, L, p
//	      | size(src-text)            a payload byte count
//	      | coll(variant, expr)       a collective's closed form at size expr
//	      | expr + expr | expr · expr | max(expr, expr) | k·expr
//
// Parameters are resolved against a concrete machine tree (g = t.G,
// rmax = the largest leaf communication slowdown, L = the largest
// barrier cost of any scope — upper bounds, since the analysis cannot
// know which scope a barrier resolves to), sizes against a caller-
// provided binding of source expressions to byte counts, and coll nodes
// against the closed-form hooks of internal/collective.

// ExprOp is a cost-expression node kind.
type ExprOp uint8

const (
	// OpConst is a literal value (Val).
	OpConst ExprOp = iota
	// OpParam is a named model parameter (Name: "g", "rmax", "L").
	OpParam
	// OpSize is a symbolic payload byte count; Name holds the source
	// expression it came from ("len(local)", "n*8").
	OpSize
	// OpColl is a collective call's closed-form cost: Name is the
	// variant, Args[0] the total-size expression.
	OpColl
	// OpAdd, OpMul, OpMax combine Args.
	OpAdd
	OpMul
	OpMax
)

// Expr is one node of a symbolic cost expression.
type Expr struct {
	Op   ExprOp
	Val  float64
	Name string
	Args []*Expr
}

// Constructors. Add and Mul fold their identities so rendered
// expressions stay minimal.

func Const(v float64) *Expr    { return &Expr{Op: OpConst, Val: v} }
func Param(name string) *Expr  { return &Expr{Op: OpParam, Name: name} }
func SizeSym(src string) *Expr { return &Expr{Op: OpSize, Name: src} }
func Coll(name string, size *Expr) *Expr {
	return &Expr{Op: OpColl, Name: name, Args: []*Expr{size}}
}

func Add(args ...*Expr) *Expr {
	var kept []*Expr
	for _, a := range args {
		if a == nil || (a.Op == OpConst && a.Val == 0) {
			continue
		}
		kept = append(kept, a)
	}
	switch len(kept) {
	case 0:
		return Const(0)
	case 1:
		return kept[0]
	}
	return &Expr{Op: OpAdd, Args: kept}
}

func Mul(args ...*Expr) *Expr {
	var kept []*Expr
	for _, a := range args {
		if a == nil {
			continue
		}
		if a.Op == OpConst && a.Val == 1 {
			continue
		}
		if a.Op == OpConst && a.Val == 0 {
			return Const(0)
		}
		kept = append(kept, a)
	}
	switch len(kept) {
	case 0:
		return Const(1)
	case 1:
		return kept[0]
	}
	return &Expr{Op: OpMul, Args: kept}
}

func Max(args ...*Expr) *Expr {
	var kept []*Expr
	for _, a := range args {
		if a != nil {
			kept = append(kept, a)
		}
	}
	switch len(kept) {
	case 0:
		return Const(0)
	case 1:
		return kept[0]
	}
	return &Expr{Op: OpMax, Args: kept}
}

// String renders the expression in the documented grammar.
func (e *Expr) String() string {
	switch e.Op {
	case OpConst:
		return trimFloat(e.Val)
	case OpParam:
		return e.Name
	case OpSize:
		return "size(" + e.Name + ")"
	case OpColl:
		return fmt.Sprintf("coll(%s, %s)", e.Name, e.Args[0])
	case OpAdd:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = a.String()
		}
		return strings.Join(parts, " + ")
	case OpMul:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			s := a.String()
			if a.Op == OpAdd {
				s = "(" + s + ")"
			}
			parts[i] = s
		}
		return strings.Join(parts, "*")
	case OpMax:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = a.String()
		}
		return "max(" + strings.Join(parts, ", ") + ")"
	}
	return "?"
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// CostEnv supplies concrete values for evaluation: a calibrated machine
// tree for the model parameters and collective closed forms, plus
// optional bindings for symbolic sizes (keyed by their source text).
type CostEnv struct {
	Tree  *model.Tree
	Sizes map[string]float64
}

// params derives the parameter values the grammar documents.
func (env *CostEnv) param(name string) (float64, error) {
	t := env.Tree
	if t == nil {
		return 0, fmt.Errorf("no machine tree bound for parameter %s", name)
	}
	switch name {
	case "g":
		return t.G, nil
	case "rmax":
		r := 0.0
		for _, l := range t.Leaves() {
			if l.CommSlowdown > r {
				r = l.CommSlowdown
			}
		}
		return r, nil
	case "L":
		L := 0.0
		t.Root.Walk(func(m *model.Machine) {
			if m.SyncCost > L {
				L = m.SyncCost
			}
		})
		return L, nil
	case "p":
		return float64(t.NProcs()), nil
	}
	return 0, fmt.Errorf("unknown model parameter %s", name)
}

// Eval resolves the expression against env. Unresolvable symbols (an
// unbound size, a missing tree) return an error naming the symbol, so
// callers can fall back to printing the expression symbolically.
func (e *Expr) Eval(env *CostEnv) (float64, error) {
	switch e.Op {
	case OpConst:
		return e.Val, nil
	case OpParam:
		return env.param(e.Name)
	case OpSize:
		if v, ok := env.Sizes[e.Name]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("unbound size %q", e.Name)
	case OpColl:
		if env.Tree == nil {
			return 0, fmt.Errorf("no machine tree bound for coll(%s)", e.Name)
		}
		n, err := e.Args[0].Eval(env)
		if err != nil {
			return 0, err
		}
		v, ok := plan.VariantByName(e.Name)
		if !ok {
			return 0, fmt.Errorf("no closed-form hook for collective %s", e.Name)
		}
		return v.Predict(env.Tree, int(n)), nil
	case OpAdd:
		sum := 0.0
		for _, a := range e.Args {
			v, err := a.Eval(env)
			if err != nil {
				return 0, err
			}
			sum += v
		}
		return sum, nil
	case OpMul:
		prod := 1.0
		for _, a := range e.Args {
			v, err := a.Eval(env)
			if err != nil {
				return 0, err
			}
			prod *= v
		}
		return prod, nil
	case OpMax:
		best := math.Inf(-1)
		for _, a := range e.Args {
			v, err := a.Eval(env)
			if err != nil {
				return 0, err
			}
			if v > best {
				best = v
			}
		}
		return best, nil
	}
	return 0, fmt.Errorf("bad expression op %d", e.Op)
}

// FreeSizes returns the distinct unbound size symbols, sorted — what a
// caller must bind for Eval to succeed on a calibrated tree.
func (e *Expr) FreeSizes() []string {
	set := map[string]bool{}
	var walk func(*Expr)
	walk = func(x *Expr) {
		if x.Op == OpSize {
			set[x.Name] = true
		}
		for _, a := range x.Args {
			walk(a)
		}
	}
	walk(e)
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
