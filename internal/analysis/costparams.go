package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"path/filepath"
)

// CostParams flags statically invalid HBSP^k model parameters:
//
//   - a literal bandwidth indicator g ≤ 0 handed to model.New/MustNew
//     (Validate rejects it at run time; the analyzer moves the failure
//     to vet time);
//   - WithComm/WithComp options with literal r or slowdown ≤ 0;
//   - WithSync with a literal negative L (zero is legal: a free
//     barrier);
//   - WithShare with a literal share outside [0, 1];
//   - a tree built by MustNew passed directly to an engine or fabric
//     constructor without .Normalize() — Validate requires the fastest
//     machine at r = 1, which only Normalize establishes.
var CostParams = &Analyzer{
	Name: "costparams",
	Doc:  "flag literal out-of-range g/L/r/share parameters and non-normalized trees",
	Run:  runCostParams,
}

// engineCtorNames take a *model.Tree that must be normalized.
var engineCtorNames = map[string]bool{
	"NewVirtual": true, "NewConcurrent": true, "RunVirtual": true,
	"New": true, // fabric.New(tree, cfg)
	"Run": true, "RunConcurrent": true, // hbspk facade
}

func runCostParams(pass *Pass) error {
	// The calibration artifact, when present, turns //hbspk:calibrated
	// annotations into drift checks; found once per package.
	var cal Calibration
	var calOK bool
	if len(pass.Files) > 0 {
		dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
		cal, calOK = findCalibration(dir)
	}
	for _, f := range pass.Files {
		lines := calibratedLines(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCostCall(pass, call, lines, cal, calOK)
			return true
		})
	}
	return nil
}

func checkCostCall(pass *Pass, call *ast.CallExpr, lines map[int]calibratedDirective, cal Calibration, calOK bool) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch fn.Name() {
	case "New", "MustNew":
		// Tree constructors: (root, g). Identified by a *Tree result.
		if len(call.Args) == 2 && resultsTree(fn) {
			if v, ok := constValue(pass, call.Args[1]); ok {
				if v <= 0 {
					pass.Reportf(call.Args[1].Pos(), "bandwidth indicator g = %v, want > 0: Validate will reject this tree", v)
				}
				checkCalibrated(pass, call.Args[1], v, lines, cal, calOK)
			}
		}
	case "WithComm":
		if v, ok := optionArg(pass, fn, call); ok {
			if v <= 0 {
				pass.Reportf(call.Args[0].Pos(), "communication slowdown r = %v, want > 0", v)
			}
			checkCalibrated(pass, call.Args[0], v, lines, cal, calOK)
		}
	case "WithComp":
		if v, ok := optionArg(pass, fn, call); ok {
			if v <= 0 {
				pass.Reportf(call.Args[0].Pos(), "compute slowdown = %v, want > 0", v)
			}
			checkCalibrated(pass, call.Args[0], v, lines, cal, calOK)
		}
	case "WithSync":
		if v, ok := optionArg(pass, fn, call); ok {
			if v < 0 {
				pass.Reportf(call.Args[0].Pos(), "synchronization cost L = %v, want >= 0", v)
			}
			checkCalibrated(pass, call.Args[0], v, lines, cal, calOK)
		}
	case "WithShare":
		if v, ok := optionArg(pass, fn, call); ok {
			if v < 0 || v > 1 {
				pass.Reportf(call.Args[0].Pos(), "workload share c = %v, want in [0, 1]", v)
			}
			checkCalibrated(pass, call.Args[0], v, lines, cal, calOK)
		}
	}
	// Non-normalized tree flowing straight into an engine: the tree
	// argument is itself a MustNew call (not ...Normalize()).
	if engineCtorNames[fn.Name()] {
		for _, arg := range call.Args {
			inner, ok := ast.Unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			ifn := calleeFunc(pass.TypesInfo, inner)
			if ifn == nil || ifn.Name() != "MustNew" || !resultsTree(ifn) {
				continue
			}
			if typeNameOf(pass.TypesInfo.TypeOf(arg)) == "Tree" {
				pass.Reportf(arg.Pos(), "tree passed to %s without Normalize: Validate requires the fastest machine at r = 1", fn.Name())
			}
		}
	}
}

// resultsTree reports whether fn returns a *Tree (possibly with error).
func resultsTree(fn *types.Func) bool {
	res := fn.Type().(*types.Signature).Results()
	return res.Len() >= 1 && typeNameOf(res.At(0).Type()) == "Tree"
}

// optionArg extracts the literal numeric argument of a WithX option
// constructor, requiring the callee to return an Option-shaped result.
func optionArg(pass *Pass, fn *types.Func, call *ast.CallExpr) (float64, bool) {
	if len(call.Args) != 1 {
		return 0, false
	}
	if res := fn.Type().(*types.Signature).Results(); res.Len() != 1 || typeNameOf(res.At(0).Type()) != "Option" {
		return 0, false
	}
	return constValue(pass, call.Args[0])
}

// constValue folds a compile-time constant expression to float64.
func constValue(pass *Pass, e ast.Expr) (float64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, ok := constant.Float64Val(constant.ToFloat(tv.Value))
	_ = ok // representable-with-rounding is fine for range checks
	return v, tv.Value.Kind() != constant.Unknown
}
