package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The tracking half of bufown: recognizing acquisitions (Recv and
// friends, NewBuffer chains, Buffer() aliases), interpreting uses, and
// the escape rules that retire a resource from the analysis.

// recvPairNames are the mailbox draws returning (Message, error) or
// (Message, bool); the second result is the acquisition guard.
var recvPairNames = map[string]bool{
	"Recv": true, "RecvTimeout": true, "RecvContext": true, "TryRecv": true,
}

// sendNames transfer ownership of a *Buffer argument to the fabric.
var sendNames = map[string]bool{"Send": true, "Mcast": true, "SendBatch": true}

func isMessageType(t types.Type) bool { return typeNameOf(t) == "Message" }

func (w *ownWalker) assign(st *ast.AssignStmt, env *ownEnv) {
	info := w.pass.TypesInfo

	// Guarded acquisition: m, err := t.Recv(...) / m, ok := t.TryRecv(...).
	if len(st.Lhs) == 2 && len(st.Rhs) == 1 {
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
			fn := calleeFunc(info, call)
			if fn != nil && recvPairNames[fn.Name()] && isMessageType(resultType(fn, 0)) {
				w.useExpr(call, env)
				mObj := identObj(info, st.Lhs[0])
				if mObj != nil {
					env.vars[mObj] = &res{
						kind:     resMsg,
						state:    stOwned,
						acq:      st.Lhs[0].Pos(),
						pairObj:  identObj(info, st.Lhs[1]),
						pairIsOk: fn.Name() == "TryRecv",
					}
				}
				return
			}
		}
	}

	if len(st.Lhs) == 1 && len(st.Rhs) == 1 {
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
			fn := calleeFunc(info, call)
			lhsObj := identObj(info, st.Lhs[0])
			switch {
			// msgs := t.TryRecvAll(...): elements acquire when ranged.
			case fn != nil && fn.Name() == "TryRecvAll" && lhsObj != nil:
				w.useExpr(call, env)
				env.sliceSrc[lhsObj] = true
				return
			// buf := NewBuffer().Pack...(...): a send-side buffer,
			// tracked for the ownership transfer at its Send.
			case lhsObj != nil && newBufferChain(info, call):
				w.useExpr(call, env)
				env.vars[lhsObj] = &res{kind: resBuf, state: stOwned, acq: st.Lhs[0].Pos()}
				return
			// b := m.Buffer(): b aliases m's pooled wire record.
			case fn != nil && fn.Name() == "Buffer" && lhsObj != nil:
				if mObj := identObj(info, receiverExpr(call)); mObj != nil {
					if r, tracked := env.vars[mObj]; tracked && r.kind == resMsg {
						w.useExpr(call, env) // use-after-release check on m
						env.vars[lhsObj] = &res{kind: resBuf, state: stOwned, acq: st.Lhs[0].Pos(), aliasOf: mObj}
						return
					}
				}
			}
		}
	}

	// Everything else: evaluate the right side, escape tracked values
	// that flow somewhere we cannot follow, and rebind overwritten
	// locals to untracked.
	for i, lhs := range st.Lhs {
		var rhs ast.Expr
		if len(st.Rhs) == len(st.Lhs) {
			rhs = st.Rhs[i]
		} else if len(st.Rhs) == 1 {
			rhs = st.Rhs[0]
		}
		if rhs != nil {
			w.useExpr(rhs, env)
			// m2 := m / x.field = m: the value now has a second name or
			// lives in the heap; both retire it.
			if obj := identObj(info, rhs); obj != nil {
				if _, tracked := env.vars[obj]; tracked {
					w.escapeObj(obj, env)
				}
				if env.sliceSrc[obj] {
					w.escapeSlice(obj, env)
				}
			}
		}
		if obj := identObj(info, lhs); obj != nil {
			delete(env.vars, obj)
			delete(env.sliceSrc, obj)
		} else {
			w.useExpr(lhs, env)
		}
	}
}

// resultType returns fn's i-th result type, or nil.
func resultType(fn *types.Func, i int) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() <= i {
		return nil
	}
	return sig.Results().At(i).Type()
}

// newBufferChain reports whether call is NewBuffer() or a Pack chain
// rooted at one (Pack methods return their receiver).
func newBufferChain(info *types.Info, call *ast.CallExpr) bool {
	if typeNameOf(info.TypeOf(call)) != "Buffer" {
		return false
	}
	for {
		fn := calleeFunc(info, call)
		if fn != nil && fn.Name() == "NewBuffer" {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		inner, ok := ast.Unparen(sel.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		call = inner
	}
}

func (w *ownWalker) useExprs(es []ast.Expr, env *ownEnv) {
	for _, e := range es {
		w.useExpr(e, env)
	}
}

// useExpr walks an expression, dispatching calls to evalCall and
// escaping resources captured by closures or composite values.
func (w *ownWalker) useExpr(e ast.Expr, env *ownEnv) {
	if e == nil {
		return
	}
	info := w.pass.TypesInfo
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.escapeIn(x, env)
			return false
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				if obj := identObj(info, elt); obj != nil {
					w.escapeObj(obj, env)
				}
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if obj := identObj(info, kv.Value); obj != nil {
						w.escapeObj(obj, env)
					}
				}
			}
			return true
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if obj := identObj(info, x.X); obj != nil {
					w.escapeObj(obj, env)
				}
			}
			return true
		case *ast.CallExpr:
			w.evalCall(x, env)
			return true
		}
		return true
	})
}

// escapeIn escapes every tracked resource mentioned anywhere in e.
func (w *ownWalker) escapeIn(e ast.Node, env *ownEnv) {
	info := w.pass.TypesInfo
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := identObj(info, id); obj != nil {
				w.escapeObj(obj, env)
				if env.sliceSrc[obj] {
					w.escapeSlice(obj, env)
				}
			}
		}
		return true
	})
}

func (w *ownWalker) escapeObj(obj types.Object, env *ownEnv) {
	if r, ok := env.vars[obj]; ok {
		r.state = stEscaped
	}
}

// escapeSlice retires a TryRecvAll slice and the elements ranged from
// it: once the slice is handed to a call (releaseRest and friends), the
// callee owns the remaining messages.
func (w *ownWalker) escapeSlice(obj types.Object, env *ownEnv) {
	delete(env.sliceSrc, obj)
	for _, r := range env.vars {
		if r.elemOf == obj {
			r.state = stEscaped
		}
	}
}

// evalCall applies one call's ownership effects.
func (w *ownWalker) evalCall(call *ast.CallExpr, env *ownEnv) {
	info := w.pass.TypesInfo
	fn := calleeFunc(info, call)
	name := ""
	if fn != nil {
		name = fn.Name()
	}
	robj := identObj(info, receiverExpr(call))
	var r *res
	if robj != nil {
		r = env.vars[robj]
	}

	switch {
	case name == "Release" && r != nil && r.kind == resMsg:
		switch r.state {
		case stReleased:
			w.reportf(call.Pos(), call.End(),
				"double release of wire message %q: its reference was already dropped", robj.Name())
		case stTransferred:
			w.reportf(call.Pos(), call.End(),
				"wire message %q released while its bytes are in flight (sent at line %d): the pool may recycle them before delivery",
				robj.Name(), w.pass.Fset.Position(r.sentAt).Line)
		case stOwned, stMaybeOwned, stUnowned:
			if r.deferred {
				w.reportf(call.Pos(), call.End(),
					"wire message %q released twice: a deferred Release is already pending", robj.Name())
			}
			r.state = stReleased
		}
		return
	case name == "Buffer" && r != nil && r.kind == resMsg:
		if r.state == stReleased {
			w.reportf(call.Pos(), call.End(),
				"Buffer() on released wire message %q: the bytes may already back another message", robj.Name())
		}
		return
	case r != nil && r.kind == resBuf:
		// Any data method on a *Buffer aliasing a dead message reads
		// (or writes) recycled pool bytes.
		owner := r
		ownerName := robj.Name()
		if r.aliasOf != nil {
			if or, ok := env.vars[r.aliasOf]; ok {
				owner = or
				ownerName = r.aliasOf.Name()
			}
		}
		if owner.kind == resMsg && owner.state == stReleased {
			w.reportf(call.Pos(), call.End(),
				"use of buffer %q after message %q was released: the pooled bytes may be recycled", robj.Name(), ownerName)
		}
		return
	case sendNames[name]:
		w.sendCall(call, env)
		return
	case name == "panic" || name == "Release" || name == "Buffer":
		return
	}

	// Unknown callee: tracked values in argument position escape — the
	// callee may release, store, or forward them.
	for _, arg := range call.Args {
		// Skip the structural Pack/Unpack receivers already handled via
		// their own evalCall visit; only idents in the arg trees escape.
		ast.Inspect(arg, func(n ast.Node) bool {
			if _, ok := n.(*ast.CallExpr); ok {
				// A nested call's result is a fresh value; the call
				// itself is judged by its own evalCall visit.
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := identObj(info, id); obj != nil {
					if _, tracked := env.vars[obj]; tracked {
						w.escapeObj(obj, env)
					}
					if env.sliceSrc[obj] {
						w.escapeSlice(obj, env)
					}
				}
			}
			return true
		})
	}
}

// sendCall transfers ownership of *Buffer arguments to the fabric and
// reports re-sends — including on a state only some paths transferred,
// which is a bug on exactly those paths.
func (w *ownWalker) sendCall(call *ast.CallExpr, env *ownEnv) {
	info := w.pass.TypesInfo
	for _, arg := range call.Args {
		obj := identObj(info, arg)
		if obj == nil {
			// SendBatch([]*Buffer{a, b}): transfer each element.
			if cl, ok := ast.Unparen(arg).(*ast.CompositeLit); ok {
				for _, elt := range cl.Elts {
					if eo := identObj(info, elt); eo != nil {
						w.transferBuf(elt, eo, env)
					}
				}
			}
			w.useExpr(arg, env)
			continue
		}
		r, tracked := env.vars[obj]
		if !tracked {
			continue
		}
		if r.kind == resBuf {
			w.transferBuf(arg, obj, env)
		} else {
			w.escapeObj(obj, env)
		}
	}
}

func (w *ownWalker) transferBuf(at ast.Expr, obj types.Object, env *ownEnv) {
	r, ok := env.vars[obj]
	if !ok {
		return
	}
	target := r
	targetName := obj.Name()
	if r.aliasOf != nil {
		or, tracked := env.vars[r.aliasOf]
		if !tracked {
			return
		}
		if or.state == stReleased {
			w.reportf(at.Pos(), at.End(),
				"buffer %q sent after message %q was released: recycled pool bytes would go on the wire", obj.Name(), r.aliasOf.Name())
			return
		}
		target = or
		targetName = r.aliasOf.Name()
	}
	switch target.state {
	case stTransferred:
		w.reportf(at.Pos(), at.End(),
			"buffer %q sent again: ownership transferred to the fabric at line %d, a buffer is sendable exactly once",
			targetName, w.pass.Fset.Position(target.sentAt).Line)
	case stMaybeTransferred:
		w.reportf(at.Pos(), at.End(),
			"buffer %q may already have been sent on some paths: ownership would transfer twice", targetName)
	case stOwned, stMaybeOwned:
		target.state = stTransferred
		target.sentAt = at.Pos()
	}
}

func (w *ownWalker) rangeStmt(st *ast.RangeStmt, env *ownEnv) flow {
	info := w.pass.TypesInfo
	w.useExpr(st.X, env)

	// Ranging over a TryRecvAll result acquires one message per
	// iteration; each must be settled before the iteration ends.
	var srcObj, elemObj types.Object
	if obj := identObj(info, st.X); obj != nil && env.sliceSrc[obj] {
		// Only the final loop over the batch owns its elements; an
		// earlier pass (sizing, validation) borrows them.
		if w.lastRange[obj] == st {
			srcObj = obj
		}
	}
	if st.Value != nil {
		if vObj := identObj(info, st.Value); vObj != nil && isMessageType(vObj.Type()) {
			if srcObj != nil || rangesTryRecvAll(info, st.X) {
				elemObj = vObj
			}
		}
	}

	body := func(e *ownEnv) flow {
		if elemObj != nil {
			e.vars[elemObj] = &res{kind: resMsg, state: stOwned, acq: st.Value.Pos(), elemOf: srcObj}
		}
		fl := w.block(st.Body.List, e)
		if elemObj != nil {
			if r, ok := e.vars[elemObj]; ok {
				if fl == flowNormal && r.state == stOwned && !r.deferred {
					w.reportf(st.Value.Pos(), st.Value.End(),
						"wire message %q from TryRecvAll is not released on every path through the loop body", elemObj.Name())
				}
				delete(e.vars, elemObj)
			}
		}
		return fl
	}
	w.loopBody(body, env)
	return flowNormal
}

// rangesTryRecvAll reports whether e is a direct TryRecvAll call.
func rangesTryRecvAll(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == "TryRecvAll"
}

func (w *ownWalker) deferStmt(st *ast.DeferStmt, env *ownEnv) {
	info := w.pass.TypesInfo
	call := st.Call

	// defer m.Release(): the canonical panic-safe discharge.
	if fn := calleeFunc(info, call); fn != nil && fn.Name() == "Release" {
		if robj := identObj(info, receiverExpr(call)); robj != nil {
			if r, ok := env.vars[robj]; ok && r.kind == resMsg {
				if r.deferred {
					w.reportf(call.Pos(), call.End(),
						"wire message %q released twice: a deferred Release is already pending", robj.Name())
				}
				r.deferred = true
				return
			}
		}
	}

	// defer func() { m.Release() }(): a closure releasing tracked
	// messages and touching nothing else counts the same; any other
	// captured resource escapes.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok && len(call.Args) == 0 {
		released, others := closureReleases(info, lit, env)
		for _, obj := range released {
			env.vars[obj].deferred = true
		}
		for _, obj := range others {
			w.escapeObj(obj, env)
		}
		return
	}

	w.useExpr(call, env)
}

// closureReleases partitions the tracked resources a closure mentions:
// those used only as Release receivers, and everything else.
func closureReleases(info *types.Info, lit *ast.FuncLit, env *ownEnv) (released, others []types.Object) {
	uses := make(map[types.Object]int)
	releases := make(map[types.Object]int)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(info, call); fn != nil && fn.Name() == "Release" {
				if obj := identObj(info, receiverExpr(call)); obj != nil {
					releases[obj]++
				}
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := identObj(info, id); obj != nil {
				if _, tracked := env.vars[obj]; tracked {
					uses[obj]++
				}
			}
		}
		return true
	})
	for obj := range uses {
		if releases[obj] > 0 {
			released = append(released, obj)
		} else {
			others = append(others, obj)
		}
	}
	return released, others
}
