package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SyncDiscipline flags Sync/barrier calls nested under
// processor-divergent control flow inside SPMD program functions.
//
// The HBSP^k model requires every processor of a scope to sync on it
// the same number of times (§5.1). A Sync guarded by `if c.Pid() == root`
// — or a loop whose bounds depend on the processor's identity — executes
// a different number of times on different processors, which deadlocks
// the concurrent engine and desyncs the virtual one. The analyzer
// tracks processor-identity taint (Pid, Rank, Coordinator enquiries and
// locals derived from them) through each function body and reports any
// synchronizing call lexically inside control flow whose condition is
// tainted. Deliberately divergent code (there is almost never a reason)
// can be suppressed with `//hbspk:ignore syncdiscipline`.
var SyncDiscipline = &Analyzer{
	Name: "syncdiscipline",
	Doc:  "flag Sync/barrier calls under processor-divergent conditionals or loops",
	Run:  runSyncDiscipline,
}

// divergentFuncNames are package-level enquiry helpers whose results
// differ per processor when handed a Ctx.
var divergentFuncNames = map[string]bool{
	"Rank": true, "Coordinator": true, "Speed": true, "Share": true,
}

func runSyncDiscipline(pass *Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			checkSyncDiscipline(pass, body)
		})
	}
	return nil
}

func checkSyncDiscipline(pass *Pass, body *ast.BlockStmt) {
	tainted := collectPidTaint(pass, body)
	div := divergence{pass: pass, tainted: tainted}
	div.stmt(body, nil)
}

// collectPidTaint returns the set of local variables derived from
// processor identity, via a forward pass over the body in source order
// (assignments in Go programs flow forward; a fixpoint is not needed for
// the straight-line derivations this analyzer targets).
func collectPidTaint(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	isDivergent := func(e ast.Expr) bool {
		return exprDivergent(pass, e, tainted)
	}
	walkBody(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				var rhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				} else if len(st.Rhs) == 1 {
					rhs = st.Rhs[0]
				}
				if rhs == nil || !isDivergent(rhs) {
					continue
				}
				if obj := identObj(pass.TypesInfo, lhs); obj != nil {
					tainted[obj] = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				var rhs ast.Expr
				if len(st.Values) == len(st.Names) {
					rhs = st.Values[i]
				} else if len(st.Values) == 1 {
					rhs = st.Values[0]
				}
				if rhs == nil || !isDivergent(rhs) {
					continue
				}
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					tainted[obj] = true
				}
			}
		}
		return true
	})
	return tainted
}

// exprDivergent reports whether e's value depends on the processor's
// identity: it mentions a Pid/Self enquiry on a Ctx, a divergent helper
// call, Moves() (delivered messages differ per processor), or a tainted
// local.
func exprDivergent(pass *Pass, e ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if obj := identObj(pass.TypesInfo, x); obj != nil && tainted[obj] {
				found = true
			}
		case *ast.CallExpr:
			fn := calleeFunc(pass.TypesInfo, x)
			if fn == nil {
				return true
			}
			if rt := receiverType(pass.TypesInfo, x); rt != nil && isCtxType(rt) {
				switch fn.Name() {
				case "Pid", "Self", "Moves":
					found = true
				}
				return true
			}
			if divergentFuncNames[fn.Name()] && len(x.Args) > 0 && isCtxType(pass.TypesInfo.TypeOf(x.Args[0])) {
				found = true
			}
		}
		return true
	})
	return found
}

// divergence walks statements tracking the innermost divergent control
// construct; sync calls encountered under one are reported.
type divergence struct {
	pass    *Pass
	tainted map[types.Object]bool
}

// stmt walks s; under is the position of the controlling divergent
// condition, or nil outside divergent control flow.
func (d *divergence) stmt(n ast.Node, under *token.Pos) {
	switch st := n.(type) {
	case nil:
		return
	case *ast.BlockStmt:
		for _, s := range st.List {
			d.stmt(s, under)
		}
	case *ast.IfStmt:
		d.stmt(st.Init, under)
		d.expr(st.Cond, under)
		branchUnder := under
		if d.divergent(st.Cond) {
			pos := st.Cond.Pos()
			branchUnder = &pos
		}
		d.stmt(st.Body, branchUnder)
		d.stmt(st.Else, branchUnder)
	case *ast.ForStmt:
		d.stmt(st.Init, under)
		bodyUnder := under
		if st.Cond != nil && d.divergent(st.Cond) {
			pos := st.Cond.Pos()
			bodyUnder = &pos
		}
		d.expr(st.Cond, under)
		d.stmt(st.Post, bodyUnder)
		d.stmt(st.Body, bodyUnder)
	case *ast.RangeStmt:
		bodyUnder := under
		if st.X != nil && d.divergent(st.X) {
			pos := st.X.Pos()
			bodyUnder = &pos
		}
		d.expr(st.X, under)
		d.stmt(st.Body, bodyUnder)
	case *ast.SwitchStmt:
		d.stmt(st.Init, under)
		d.expr(st.Tag, under)
		tagDiv := st.Tag != nil && d.divergent(st.Tag)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			caseUnder := under
			caseDiv := tagDiv
			for _, e := range cc.List {
				d.expr(e, under)
				if d.divergent(e) {
					caseDiv = true
				}
			}
			if caseDiv {
				pos := cc.Pos()
				caseUnder = &pos
			}
			for _, s := range cc.Body {
				d.stmt(s, caseUnder)
			}
		}
	case *ast.TypeSwitchStmt:
		d.stmt(st.Init, under)
		d.stmt(st.Assign, under)
		d.stmt(st.Body, under)
	case *ast.SelectStmt:
		d.stmt(st.Body, under)
	case *ast.CaseClause:
		for _, s := range st.Body {
			d.stmt(s, under)
		}
	case *ast.CommClause:
		d.stmt(st.Comm, under)
		for _, s := range st.Body {
			d.stmt(s, under)
		}
	case *ast.LabeledStmt:
		d.stmt(st.Stmt, under)
	case *ast.ExprStmt:
		d.expr(st.X, under)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			d.expr(e, under)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			d.expr(e, under)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						d.expr(v, under)
					}
				}
			}
		}
	case *ast.GoStmt:
		d.expr(st.Call, under)
	case *ast.DeferStmt:
		d.expr(st.Call, under)
	case *ast.SendStmt:
		d.expr(st.Value, under)
	case *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt, *ast.BadStmt:
		// No sync calls possible.
	}
}

// expr scans an expression for sync calls, reporting any found under a
// divergent condition. Nested function literals are separate units.
func (d *divergence) expr(e ast.Expr, under *token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if under != nil && isSyncCall(d.pass.TypesInfo, call) {
			cond := d.pass.Fset.Position(*under)
			d.pass.Reportf(call.Pos(),
				"synchronizing call under processor-divergent control flow (condition at line %d): every processor of the scope must sync the same number of times", cond.Line)
		}
		return true
	})
}

func (d *divergence) divergent(e ast.Expr) bool {
	return exprDivergent(d.pass, e, d.tainted)
}
