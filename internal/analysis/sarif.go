package analysis

import (
	"encoding/json"
	"go/token"
	"io"
	"path/filepath"
	"sort"
)

// SARIF 2.1.0 export: the standard interchange form for static-analysis
// results, consumed by code-scanning UIs and CI gates. One run per
// document, one reportingDescriptor per analyzer that fired or ran, one
// result per diagnostic with a precise region (endLine/endColumn when
// the analyzer reported a range). Advisory analyzers (variantcheck) map
// to level "note", everything else to "error" — mirroring hbspk-vet's
// exit-code split.

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
)

type SARIFLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
	EndLine     int `json:"endLine,omitempty"`
	EndColumn   int `json:"endColumn,omitempty"`
}

// SARIFDoc builds the SARIF log for one vet run. analyzers is the set
// that ran (their docs become the rule metadata even with zero
// findings, so a clean run still names its checks); moduleDir rebases
// file names to module-relative URIs.
func SARIFDoc(fset *token.FileSet, diags []Diagnostic, analyzers []*Analyzer, moduleDir string, advisory map[string]string) *SARIFLog {
	var rules []sarifRule
	index := make(map[string]int)
	addRule := func(name, doc string) {
		if _, ok := index[name]; ok {
			return
		}
		index[name] = len(rules)
		rules = append(rules, sarifRule{ID: name, ShortDescription: sarifMessage{Text: doc}})
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	for _, name := range sortedKeys(advisory) {
		addRule(name, advisory[name])
	}
	// Diagnostics can carry analyzers outside the declared set
	// (staleignore, variantcheck): register them as they appear.
	for _, d := range diags {
		addRule(d.Analyzer, d.Analyzer)
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		uri := pos.Filename
		if rel, err := filepath.Rel(moduleDir, uri); err == nil {
			uri = filepath.ToSlash(rel)
		}
		region := sarifRegion{StartLine: pos.Line, StartColumn: pos.Column}
		if d.End.IsValid() {
			end := fset.Position(d.End)
			region.EndLine = end.Line
			region.EndColumn = end.Column
		}
		level := "error"
		if _, ok := advisory[d.Analyzer]; ok {
			level = "note"
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: index[d.Analyzer],
			Level:     level,
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: uri},
					Region:           region,
				},
			}},
		})
	}

	return &SARIFLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "hbspk-vet", Rules: rules}},
			Results: results,
		}},
	}
}

// WriteSARIF encodes the log as indented JSON.
func (l *SARIFLog) WriteSARIF(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l)
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
