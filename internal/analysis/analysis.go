// Package analysis is hbspk's static-analysis toolkit: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus a module-aware package
// loader built on go/parser and go/types, and the HBSP^k-specific
// analyzers themselves.
//
// The analyzers encode the correctness invariants of the HBSP^k
// programming model (§5.1's HBSPlib) that the compiler cannot check:
//
//   - syncdiscipline: Sync/barrier calls must not sit under
//     processor-divergent control flow — every processor of a scope must
//     sync the same number of times, or the concurrent engine deadlocks.
//   - bufreuse: pvm.Buffers must not be packed into after they were
//     sent, and message payloads must not be mutated after Send — engines
//     may share the sender's bytes.
//   - uncheckedrun: errors from Run/Sync/Send/collective calls must not
//     be dropped; a swallowed desync error is a silent wrong answer.
//   - costparams: literal model parameters (g, r, L, c shares) must be
//     in their valid ranges, and trees must be normalized before running.
//   - lockorder: no inverted mutex acquisition orders, and no lock may
//     be taken while holding pvm.System's leaf lock.
//
// The suite is exposed on the command line as cmd/hbspk-vet, a
// multichecker in the style of go vet.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. The zero analyzer is invalid: Name, Doc
// and Run are all required.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command
	// line; it must be a valid Go identifier.
	Name string
	// Doc is the analyzer's help text; the first line is its summary.
	Doc string
	// Run applies the analyzer to one type-checked package, reporting
	// findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver fills it in.
	Report func(Diagnostic)

	// noLint maps file base name to the set of lines carrying an
	// analyzer suppression directive.
	noLint map[string]map[int]map[string]bool

	// fired, when non-nil, records every directive that actually
	// suppressed a finding, keyed by ignoreKey; the driver uses it to
	// flag stale directives after all analyzers have run.
	fired map[string]bool

	// pkg, when set by the driver, carries the loaded package so
	// analyzers can share per-package computations (the call graph,
	// per-function summaries) instead of rebuilding them per pass.
	pkg *Package
}

// ignoreKey identifies one suppression directive: the bare form and
// each named form on a line are distinct directives.
func ignoreKey(file string, line int, name string) string {
	return fmt.Sprintf("%s:%d:%s", file, line, name)
}

// Diagnostic is one finding at a source position. End, when valid,
// closes the finding's source range (exclusive), giving SARIF regions
// and editor integrations a precise extent; a zero End means the
// finding is a point at Pos.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted finding at pos unless the line carries an
// `//hbspk:ignore <name>` (or bare `//hbspk:ignore`) directive.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportRangef(pos, token.NoPos, format, args...)
}

// ReportRangef reports a formatted finding spanning [pos, end), subject
// to the same suppression directives as Reportf. Analyzers that hold the
// offending node pass its Pos/End pair so downstream consumers (SARIF,
// -json) get the full extent rather than a single column.
func (p *Pass) ReportRangef(pos, end token.Pos, format string, args ...any) {
	if p.suppressed(pos) {
		return
	}
	p.Report(Diagnostic{Pos: pos, End: end, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// suppressed reports whether pos's line carries an ignore directive for
// this analyzer.
func (p *Pass) suppressed(pos token.Pos) bool {
	if p.noLint == nil {
		p.buildNoLint()
	}
	position := p.Fset.Position(pos)
	lines := p.noLint[position.Filename]
	if lines == nil {
		return false
	}
	names := lines[position.Line]
	if names == nil {
		return false
	}
	hit := false
	if names[""] {
		p.markFired(position.Filename, position.Line, "")
		hit = true
	}
	if names[p.Analyzer.Name] {
		p.markFired(position.Filename, position.Line, p.Analyzer.Name)
		hit = true
	}
	return hit
}

func (p *Pass) markFired(file string, line int, name string) {
	if p.fired != nil {
		p.fired[ignoreKey(file, line, name)] = true
	}
}

func (p *Pass) buildNoLint() {
	p.noLint = make(map[string]map[int]map[string]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				position := p.Fset.Position(c.Pos())
				lines := p.noLint[position.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					p.noLint[position.Filename] = lines
				}
				if lines[position.Line] == nil {
					lines[position.Line] = make(map[string]bool)
				}
				for _, name := range names {
					lines[position.Line][name] = true
				}
			}
		}
	}
}

// parseIgnore recognizes `//hbspk:ignore` (the bare form, returned as
// the single name ""), `//hbspk:ignore name ...`, and the multi-name
// form `//hbspk:ignore name1,name2 ...` — one line occasionally needs
// to silence two analyzers whose checks overlap (bufreuse and bufown
// both see a deliberate resend under test).
func parseIgnore(text string) (names []string, ok bool) {
	const prefix = "//hbspk:ignore"
	if len(text) < len(prefix) || text[:len(prefix)] != prefix {
		return nil, false
	}
	rest := text[len(prefix):]
	if len(rest) > 0 && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false // e.g. //hbspk:ignored is not a directive
	}
	for len(rest) > 0 && (rest[0] == ' ' || rest[0] == '\t') {
		rest = rest[1:]
	}
	for i := 0; i < len(rest); i++ {
		if rest[i] == ' ' || rest[i] == '\t' {
			rest = rest[:i]
			break
		}
	}
	if rest == "" {
		return []string{""}, true
	}
	for _, name := range strings.Split(rest, ",") {
		if name != "" {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return []string{""}, true
	}
	return names, true
}

// All returns the full hbspk-vet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		SyncDiscipline,
		PidTaint,
		CommGraph,
		SyncFlow,
		BufReuse,
		BufOwn,
		UncheckedRun,
		CostParams,
		CostBound,
		LockOrder,
	}
}

// knownAnalyzerNames is the universe of names an //hbspk:ignore
// directive may legitimately cite: the full suite plus the analyzers
// that exist outside All() (the stale-directive sweep itself and the
// tree-parameterized variant advice). A directive naming anything else
// is rename rot — the analyzer it once silenced no longer exists under
// that name, so the directive silences nothing and never will.
func knownAnalyzerNames() map[string]bool {
	known := map[string]bool{
		StaleIgnoreName:  true,
		VariantCheckName: true,
	}
	for _, a := range All() {
		known[a.Name] = true
	}
	return known
}

// StaleIgnoreName is the pseudo-analyzer under which unused suppression
// directives are reported: an //hbspk:ignore that suppresses nothing is
// stale — the code it excused has moved or been fixed — and stale
// directives mask future regressions on their line.
const StaleIgnoreName = "staleignore"

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position, followed by a stale-directive sweep:
// an ignore directive naming an analyzer in this run (or a bare ignore,
// when the full suite ran) that suppressed nothing is itself reported
// under StaleIgnoreName. Directives naming analyzers outside the run
// set are not judged. Analyzer runtime errors are returned after the
// diagnostics collected so far.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	var firstErr error
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, pkg := range pkgs {
		fired := make(map[string]bool)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d Diagnostic) { diags = append(diags, d) },
				fired:     fired,
				pkg:       pkg,
			}
			if err := a.Run(pass); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		diags = append(diags, staleIgnores(pkg, ran, fired)...)
	}
	diags = dedupeOverlapping(diags, ran)
	sortDiagnostics(pkgs, diags)
	return diags, firstErr
}

// dedupeOverlapping drops the shallower of two findings that diagnose
// the same defect at the same position: bufown's path-sensitive
// ownership proofs subsume bufreuse's source-order resend and
// pack-after-send reports, so when both analyzers ran and both fired on
// one call, only bufown's (which names the offending path) survives.
func dedupeOverlapping(diags []Diagnostic, ran map[string]bool) []Diagnostic {
	if !ran[BufOwn.Name] || !ran[BufReuse.Name] {
		return diags
	}
	owned := make(map[token.Pos]bool)
	for _, d := range diags {
		if d.Analyzer == BufOwn.Name {
			owned[d.Pos] = true
		}
	}
	if len(owned) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		if d.Analyzer == BufReuse.Name && owned[d.Pos] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// staleIgnores reports each suppression directive in pkg that no
// analyzer of this run consumed. Bare directives can only be judged
// when every analyzer of the full suite ran.
func staleIgnores(pkg *Package, ran map[string]bool, fired map[string]bool) []Diagnostic {
	fullSuite := true
	for _, a := range All() {
		if !ran[a.Name] {
			fullSuite = false
			break
		}
	}
	known := knownAnalyzerNames()
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				for _, name := range names {
					if name == "" && !fullSuite {
						continue
					}
					if name != "" && !known[name] {
						pos := c.Pos()
						out = append(out, Diagnostic{
							Pos:      pos,
							Analyzer: StaleIgnoreName,
							Message: fmt.Sprintf(
								"//hbspk:ignore %s names no analyzer (renamed or removed?): the directive silences nothing", name),
						})
						continue
					}
					if name != "" && !ran[name] {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					if fired[ignoreKey(pos.Filename, pos.Line, name)] {
						continue
					}
					what := "//hbspk:ignore"
					if name != "" {
						what += " " + name
					}
					out = append(out, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: StaleIgnoreName,
						Message:  fmt.Sprintf("stale %s: the directive suppresses nothing on its line", what),
					})
				}
			}
		}
	}
	return out
}

func sortDiagnostics(pkgs []*Package, diags []Diagnostic) {
	if len(pkgs) == 0 {
		return
	}
	fset := pkgs[0].Fset
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
