package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CommGraph builds the per-superstep communication topology of each
// SPMD function — which sends, receives and collectives fall between
// which synchronizing calls — and flags shapes that are static deadlock
// candidates:
//
//   - an unmatched send: a Send after the function's last superstep
//     boundary, in a function that manages its own supersteps. The
//     message is queued but never flushed, so the receiver's next
//     barrier waits for data that cannot arrive.
//   - a receive no superstep has delivered: Moves() read before the
//     first synchronizing call of a program body — the delivery window
//     opens only after a barrier.
//   - a collective or Sync whose scope argument is processor-divergent:
//     different processors would sync on different scopes, the
//     scoped-barrier flavor of desync. Ancestor-of-self scopes
//     (enclosingScope and friends) are convergent per construction —
//     every member of the returned scope computes the same scope — and
//     are not reported.
//
// Sends in functions with no superstep boundary at all are the helper
// pattern (queue now, caller flushes) and are not reported.
var CommGraph = &Analyzer{
	Name: "commgraph",
	Doc:  "flag unmatched sends, receives before any delivery, and divergent-scope collectives",
	Run:  runCommGraph,
}

// scopeAncestorNames are helpers returning an ancestor scope of the
// calling processor's leaf: divergent in the taint sense (they depend
// on Self) but convergent per scope membership — every leaf under the
// returned scope computes the same scope, so barriers on it agree.
var scopeAncestorNames = map[string]bool{
	"enclosingScope": true, "ScopeAt": true, "scopeAt": true, "Ancestor": true,
}

func runCommGraph(pass *Pass) error {
	entries := programEntryBodies(pass)
	g := sharedCallGraph(pass)
	for _, f := range pass.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			checkCommTopology(pass, g, body, entries[body])
		})
	}
	return nil
}

// programEntryBodies finds function literals handed directly to an
// engine entry point (Run, RunVirtual, RunSchedules, ...): bodies known
// to execute from superstep zero, where a Moves() read before the first
// Sync cannot have been delivered anything.
func programEntryBodies(pass *Pass) map[*ast.BlockStmt]bool {
	entries := make(map[*ast.BlockStmt]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			switch fn.Name() {
			case "Run", "RunVirtual", "RunVirtualChaos", "RunSchedules", "RunConcurrent":
			default:
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					entries[lit.Body] = true
				}
			}
			return true
		})
	}
	return entries
}

// commEvent is one communication action in source order.
type commEvent struct {
	pos  token.Pos
	call *ast.CallExpr
	kind int // evSend, evSync, evMoves
}

const (
	evSend = iota
	evSync
	evMoves
)

func checkCommTopology(pass *Pass, g *callGraph, body *ast.BlockStmt, isEntry bool) {
	tainted := collectPidTaint(pass, body)
	convergent := collectConvergentScopes(pass, body)

	var events []commEvent
	walkBody(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case g.callSynchronizes(call):
			events = append(events, commEvent{pos: call.Pos(), call: call, kind: evSync})
			checkScopeDivergence(pass, call, tainted, convergent)
		case isCtxMethod(pass, call, "Send"):
			events = append(events, commEvent{pos: call.Pos(), call: call, kind: evSend})
		case isCtxMethod(pass, call, "Moves"):
			events = append(events, commEvent{pos: call.Pos(), call: call, kind: evMoves})
		}
		return true
	})

	var syncs []token.Pos
	for _, e := range events {
		if e.kind == evSync {
			syncs = append(syncs, e.pos)
		}
	}
	if len(syncs) == 0 {
		return // helper pattern: the caller owns the superstep boundaries
	}
	lastSync := syncs[len(syncs)-1]
	firstSync := syncs[0]
	loops := syncLoopRanges(body, syncs)

	for _, e := range events {
		switch e.kind {
		case evSend:
			if e.pos > lastSync && !insideAny(loops, e.pos) {
				pass.Reportf(e.pos,
					"unmatched send: no Sync follows, so the message is queued but never delivered (static deadlock candidate)")
			}
		case evMoves:
			if isEntry && e.pos < firstSync && !insideAny(loops, e.pos) {
				pass.Reportf(e.pos,
					"Moves() read before the first Sync: no superstep has delivered anything yet")
			}
		}
	}
}

// isCtxMethod reports whether call is the named method on an HBSPlib
// context.
func isCtxMethod(pass *Pass, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	rt := receiverType(pass.TypesInfo, call)
	return rt != nil && isCtxType(rt)
}

// syncLoopRanges returns the source ranges of for/range statements that
// contain a synchronizing call: a send (or receive) inside such a loop
// meets a barrier on the next iteration even when it sits after the
// loop's sync lexically.
func syncLoopRanges(body *ast.BlockStmt, syncs []token.Pos) [][2]token.Pos {
	var out [][2]token.Pos
	add := func(pos, end token.Pos) {
		for _, s := range syncs {
			if s > pos && s < end {
				out = append(out, [2]token.Pos{pos, end})
				return
			}
		}
	}
	walkBody(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ForStmt:
			add(st.Pos(), st.End())
		case *ast.RangeStmt:
			add(st.Pos(), st.End())
		}
		return true
	})
	return out
}

func insideAny(ranges [][2]token.Pos, pos token.Pos) bool {
	for _, r := range ranges {
		if pos > r[0] && pos < r[1] {
			return true
		}
	}
	return false
}

// collectConvergentScopes marks locals bound to a convergent scope
// expression, so `scope := enclosingScope(t, c.Self(), lvl)` followed by
// `c.Sync(scope, ...)` is recognized through the intermediate variable.
func collectConvergentScopes(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	conv := make(map[types.Object]bool)
	walkBody(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Lhs) != len(st.Rhs) {
			return true
		}
		for i, lhs := range st.Lhs {
			if !scopeConvergentExpr(pass, st.Rhs[i], conv) {
				continue
			}
			if obj := identObj(pass.TypesInfo, lhs); obj != nil {
				conv[obj] = true
			}
		}
		return true
	})
	return conv
}

// scopeConvergentExpr reports whether e is a scope expression that is
// divergent in the taint sense but convergent per scope membership:
// every processor belonging to the resulting scope computes that same
// scope, so a barrier on it agrees. That covers ancestor-of-self
// helpers (each member of the returned subtree names the same subtree)
// and the bare c.Self() singleton scope.
func scopeConvergentExpr(pass *Pass, e ast.Expr, conv map[types.Object]bool) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := identObj(pass.TypesInfo, x)
		return obj != nil && conv[obj]
	case *ast.CallExpr:
		fn := calleeFunc(pass.TypesInfo, x)
		if fn == nil {
			return false
		}
		if scopeAncestorNames[fn.Name()] {
			return true
		}
		if fn.Name() == "Self" {
			rt := receiverType(pass.TypesInfo, x)
			return rt != nil && isCtxType(rt)
		}
	}
	return false
}

// checkScopeDivergence flags a synchronizing call whose scope argument
// differs per processor: members would wait on different barriers. The
// scope expression is the first argument of a Ctx.Sync method call, or
// the Machine argument of a collective.
func checkScopeDivergence(pass *Pass, call *ast.CallExpr, tainted, convergent map[types.Object]bool) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	var scope ast.Expr
	switch {
	case fn.Name() == "Sync" && len(call.Args) >= 1:
		if rt := receiverType(pass.TypesInfo, call); rt != nil && isCtxType(rt) {
			scope = call.Args[0]
		}
	case collectiveNames[fn.Name()] && len(call.Args) >= 2 &&
		isCtxType(pass.TypesInfo.TypeOf(call.Args[0])):
		if typeNameOf(pass.TypesInfo.TypeOf(call.Args[1])) == "Machine" {
			scope = call.Args[1]
		}
	}
	if scope == nil {
		return
	}
	if exprDivergent(pass, scope, tainted) && !scopeConvergentExpr(pass, scope, convergent) {
		pass.Reportf(scope.Pos(),
			"scope argument is processor-divergent: members would sync on different scopes (static deadlock candidate)")
	}
}
