package analysis

import (
	"encoding/csv"
	"fmt"
	"go/ast"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The calibration cross-check: a literal model parameter annotated with
//
//	//hbspk:calibrated <param> [tol]
//
// is compared against the fitted value of <param> in the committed
// calibration artifact (results/calibrate.csv, the output of
// hbspk-bench calibrate). The annotation is opt-in per literal — most
// numeric literals are not calibrated quantities — and catches drift in
// either direction: a preset edited without re-running calibration, or
// a re-calibration whose result nobody copied back into the code. tol
// is a relative tolerance, default 0.05.

// defaultCalibrationTol is the relative drift allowed when the
// directive does not name one.
const defaultCalibrationTol = 0.05

// calibrationFile is the artifact searched for upward from each
// analyzed source file.
const calibrationFile = "results/calibrate.csv"

// Calibration maps parameter names ("g", "L_{1,0}") to fitted values.
type Calibration map[string]float64

// LoadCalibration parses a calibration CSV with a param,true,fitted,...
// header, as written by the calibrate experiment.
func LoadCalibration(path string) (Calibration, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseCalibration(f)
}

func parseCalibration(r io.Reader) (Calibration, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("analysis: calibration csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("analysis: calibration csv is empty")
	}
	fitted := -1
	for i, col := range rows[0] {
		if strings.TrimSpace(col) == "fitted" {
			fitted = i
		}
	}
	if fitted < 0 {
		return nil, fmt.Errorf("analysis: calibration csv has no fitted column: %v", rows[0])
	}
	cal := Calibration{}
	for _, row := range rows[1:] {
		if len(row) <= fitted {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(row[fitted]), 64)
		if err != nil {
			continue // non-numeric rows (R^2 footer variants) are skipped
		}
		cal[strings.TrimSpace(row[0])] = v
	}
	return cal, nil
}

// findCalibration walks up from dir looking for results/calibrate.csv,
// stopping at a go.mod boundary (inclusive) or after a fixed number of
// levels. Fixture packages can carry their own artifact.
func findCalibration(dir string) (Calibration, bool) {
	for range 8 {
		path := filepath.Join(dir, filepath.FromSlash(calibrationFile))
		if _, err := os.Stat(path); err == nil {
			cal, err := LoadCalibration(path)
			return cal, err == nil
		}
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return nil, false
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil, false
		}
		dir = parent
	}
	return nil, false
}

// parseCalibrated recognizes `//hbspk:calibrated <param> [tol]`.
func parseCalibrated(text string) (param string, tol float64, ok bool) {
	const prefix = "//hbspk:calibrated"
	rest, found := strings.CutPrefix(text, prefix)
	if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return "", 0, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", 0, false
	}
	tol = defaultCalibrationTol
	if len(fields) >= 2 {
		if v, err := strconv.ParseFloat(fields[1], 64); err == nil && v > 0 {
			tol = v
		}
	}
	return fields[0], tol, true
}

// calibratedDirective is one annotation site.
type calibratedDirective struct {
	param string
	tol   float64
}

// calibratedLines collects the annotations of one file, keyed by line.
func calibratedLines(pass *Pass, f *ast.File) map[int]calibratedDirective {
	var out map[int]calibratedDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			param, tol, ok := parseCalibrated(c.Text)
			if !ok {
				continue
			}
			if out == nil {
				out = make(map[int]calibratedDirective)
			}
			out[pass.Fset.Position(c.Pos()).Line] = calibratedDirective{param: param, tol: tol}
		}
	}
	return out
}

// checkCalibrated compares a literal parameter value at pos against the
// calibration artifact, when the literal's line carries a directive.
func checkCalibrated(pass *Pass, pos ast.Node, v float64, lines map[int]calibratedDirective, cal Calibration, calOK bool) {
	if lines == nil {
		return
	}
	d, ok := lines[pass.Fset.Position(pos.Pos()).Line]
	if !ok {
		return
	}
	if !calOK {
		return // no artifact to compare against: the cross-check is inert
	}
	fitted, ok := cal[d.param]
	if !ok {
		pass.Reportf(pos.Pos(),
			"//hbspk:calibrated %s: no such parameter in %s", d.param, calibrationFile)
		return
	}
	var drift float64
	if fitted != 0 {
		drift = math.Abs(v-fitted) / math.Abs(fitted)
	} else {
		drift = math.Abs(v - fitted)
	}
	if drift > d.tol {
		pass.Reportf(pos.Pos(),
			"calibrated parameter %s = %v drifts %.1f%% from the fitted value %v in %s (tol %.0f%%): re-run calibration or fix the literal",
			d.param, v, drift*100, fitted, calibrationFile, d.tol*100)
	}
}
