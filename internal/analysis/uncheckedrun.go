package analysis

import (
	"go/ast"
	"go/types"
)

// UncheckedRun flags dropped errors from the HBSP^k run-time surface:
// engine Run/Wait, Ctx Sync/Send, SyncAll, pvm Send/Mcast/Barrier/
// Spawn-collection via Wait, and every collective. A swallowed error
// from any of these turns a detected desync or delivery failure into a
// silently wrong answer, so unlike a general errcheck this one is
// always-on for the model's own calls. Only outright drops are flagged
// (the call as a bare statement, go, or defer); an explicit `_ =` is
// treated as a deliberate, visible discard.
var UncheckedRun = &Analyzer{
	Name: "uncheckedrun",
	Doc:  "flag dropped errors from Run/Sync/Send/collective calls",
	Run:  runUncheckedRun,
}

// uncheckedNames are callee names whose error results must be consumed
// when the callee belongs to the model's surface (method on a Ctx/Task/
// System/engine, or function with a Ctx argument).
var uncheckedNames = map[string]bool{
	"Sync": true, "SyncAll": true, "Send": true, "Mcast": true,
	"Barrier": true, "Run": true, "RunConcurrent": true, "RunVirtual": true,
	"Wait": true,
}

func runUncheckedRun(pass *Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			walkBody(body, func(n ast.Node) bool {
				var call *ast.CallExpr
				switch st := n.(type) {
				case *ast.ExprStmt:
					call, _ = st.X.(*ast.CallExpr)
				case *ast.GoStmt:
					call = st.Call
				case *ast.DeferStmt:
					call = st.Call
				}
				if call == nil || !isUncheckedTarget(pass, call) {
					return true
				}
				fn := calleeFunc(pass.TypesInfo, call)
				pass.Reportf(call.Pos(), "error result of %s is dropped: a desync or delivery failure would be silently ignored", fn.Name())
				return true
			})
		})
	}
	return nil
}

// isUncheckedTarget reports whether the call is an error-returning call
// of the model's surface.
func isUncheckedTarget(pass *Pass, call *ast.CallExpr) bool {
	if !returnsError(pass.TypesInfo, call) {
		return false
	}
	info := pass.TypesInfo
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	name := fn.Name()
	if rt := receiverType(info, call); rt != nil {
		if !uncheckedNames[name] {
			return false
		}
		switch {
		case isCtxType(rt):
			return name == "Sync" || name == "Send"
		case typeNameOf(rt) == "Task":
			return name == "Send" || name == "Mcast" || name == "Barrier"
		case typeNameOf(rt) == "System":
			return name == "Wait"
		case typeNameOf(rt) == "Virtual" || typeNameOf(rt) == "Concurrent":
			return name == "Run"
		}
		return false
	}
	switch name {
	case "SyncAll":
		return len(call.Args) > 0 && isCtxType(info.TypeOf(call.Args[0]))
	case "Run", "RunVirtual", "RunConcurrent":
		// The facade runners: recognized by their (*Report, error) shape
		// so that unrelated functions named Run stay out of scope.
		sig := fn.Type().(*types.Signature)
		return sig.Results().Len() == 2 && typeNameOf(sig.Results().At(0).Type()) == "Report"
	}
	return collectiveNames[name] && len(call.Args) > 0 && isCtxType(info.TypeOf(call.Args[0]))
}
