// Package syncflow is the golden fixture for the syncflow analyzer: a
// self-contained replica of the HBSPlib Ctx surface with seeded
// delivered-buffer lifetime violations, including the cross-function
// shapes that need the package call graph. The analyzer keys on method
// sets, not import paths, so the stubs exercise exactly the production
// detection logic.
package syncflow

type Machine struct{}

type Tree struct{ Root *Machine }

type Message struct {
	Src, Tag int
	Payload  []byte
}

type Ctx interface {
	Pid() int
	NProcs() int
	Tree() *Tree
	Self() *Machine
	Moves() []Message
	Send(dst, tag int, payload []byte) error
	Sync(scope *Machine, label string) error
}

func consume(b []byte) error { return nil }

func decode(b []byte) []int { return make([]int, len(b)) }

// --- violations ---

func staleAcrossSync(c Ctx, scope *Machine) error {
	var first []byte
	if err := c.Sync(scope, "deliver"); err != nil {
		return err
	}
	for _, m := range c.Moves() {
		first = m.Payload
	}
	if err := c.Sync(scope, "next step"); err != nil {
		return err
	}
	return consume(first) // want `delivered buffer "first" received in superstep generation 1 read after a later superstep boundary`
}

// The boundary is a helper whose Sync only the call graph can see.
func staleAcrossHelperBoundary(c Ctx, scope *Machine) error {
	if err := c.Sync(scope, "deliver"); err != nil {
		return err
	}
	moves := c.Moves()
	if err := stepOnce(c, scope); err != nil {
		return err
	}
	return consume(moves[0].Payload) // want `delivered buffer "moves" received in superstep generation 1 read after a later superstep boundary`
}

func stepOnce(c Ctx, scope *Machine) error { return c.Sync(scope, "hidden boundary") }

// The buffer expires inside the callee: relayAfterBarrier crosses its
// own barrier before reading its parameter, so handing it a delivered
// payload is an early read one frame down.
func staleArgToHelper(c Ctx, scope *Machine) error {
	if err := c.Sync(scope, "deliver"); err != nil {
		return err
	}
	var payload []byte
	for _, m := range c.Moves() {
		payload = m.Payload
	}
	return relayAfterBarrier(c, scope, payload) // want `delivered buffer passed to relayAfterBarrier, which synchronizes before reading it`
}

func relayAfterBarrier(c Ctx, scope *Machine, b []byte) error {
	if err := c.Sync(scope, "cross"); err != nil {
		return err
	}
	return consume(b)
}

// --- well-formed programs ---

// Reads within the delivering superstep are the model working as
// intended.
func readInWindow(c Ctx, scope *Machine) error {
	if err := c.Sync(scope, "deliver"); err != nil {
		return err
	}
	for _, m := range c.Moves() {
		if err := consume(m.Payload); err != nil {
			return err
		}
	}
	return c.Sync(scope, "done")
}

// Copies and decoded values are fresh storage: function results are
// presumed to not alias the delivery window.
func copyOutlivesWindow(c Ctx, scope *Machine) error {
	if err := c.Sync(scope, "deliver"); err != nil {
		return err
	}
	var kept []byte
	var nums []int
	for _, m := range c.Moves() {
		kept = append([]byte(nil), m.Payload...)
		nums = decode(m.Payload)
	}
	if err := c.Sync(scope, "next step"); err != nil {
		return err
	}
	_ = nums
	return consume(kept)
}

// Arguments of a synchronizing call are read before the callee's
// internal barrier: passing the live window to a collective-shaped
// helper is fine when the helper reads it pre-barrier.
func argReadBeforeCalleeBarrier(c Ctx, scope *Machine) error {
	if err := c.Sync(scope, "deliver"); err != nil {
		return err
	}
	var payload []byte
	for _, m := range c.Moves() {
		payload = m.Payload
	}
	return relayBeforeBarrier(c, scope, payload)
}

func relayBeforeBarrier(c Ctx, scope *Machine, b []byte) error {
	if err := consume(b); err != nil {
		return err
	}
	return c.Sync(scope, "after reading")
}

// The known-unprovable case: two-phase reassembly holds its own piece
// across the exchange barrier and re-sends it before any writer could
// touch the bytes — sound by protocol, invisible to the analyzer, so it
// carries an audited suppression.
func twoPhaseReassembly(c Ctx, scope *Machine) error {
	if err := c.Sync(scope, "phase 1"); err != nil {
		return err
	}
	var mine []byte
	for _, m := range c.Moves() {
		mine = m.Payload
	}
	if err := c.Send(0, 1, mine); err != nil {
		return err
	}
	if err := c.Sync(scope, "phase 2 exchange"); err != nil {
		return err
	}
	return consume(mine) //hbspk:ignore syncflow (audited: the piece was re-sent before any writer could mutate it)
}

// A directive that excuses nothing is itself a finding: it would mask a
// future regression on its line.
func cleanButExcused(c Ctx, scope *Machine) error {
	return c.Sync(scope, "nothing to excuse") //hbspk:ignore syncflow // want `stale //hbspk:ignore syncflow: the directive suppresses nothing`
}
