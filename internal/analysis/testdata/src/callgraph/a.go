// Package callgraph is the golden fixture for the synchronizes
// fixpoint's edge cases: mutual recursion must converge, method values
// and function values must count as boundaries at the point the value
// is taken, and interface method calls on a Ctx-shaped receiver must
// stay recognized. The diagnostics are commgraph's unmatched-send
// reports — each fires only if the preceding call is known to
// synchronize, so every `want` below is a positive fixpoint fact.
package callgraph

type Machine struct{}

type Ctx interface {
	Pid() int
	Send(dst, tag int, payload []byte) error
	Sync(scope *Machine, label string) error
}

// --- mutual recursion: pingSync <-> pongSync, the barrier bottoms out
// in pongSync. The fixpoint must converge and mark both.

func pingSync(c Ctx, depth int) error {
	if depth == 0 {
		return nil
	}
	return pongSync(c, depth-1)
}

func pongSync(c Ctx, depth int) error {
	if depth == 0 {
		return c.Sync(nil, "bottom")
	}
	return pingSync(c, depth-1)
}

func afterMutualRecursion(c Ctx) error {
	if err := pingSync(c, 3); err != nil {
		return err
	}
	return c.Send(1, 0, []byte("x")) // want `unmatched send: no Sync follows`
}

// --- method value: the barrier is taken as a value and called through
// a variable. The creator is conservatively a synchronizer.

func viaMethodValue(c Ctx) error {
	barrier := c.Sync
	return barrier(nil, "indirect")
}

func afterMethodValue(c Ctx) error {
	if err := viaMethodValue(c); err != nil {
		return err
	}
	return c.Send(1, 1, []byte("y")) // want `unmatched send: no Sync follows`
}

// --- function value: a local synchronizing helper escapes into a
// variable before the call.

func syncHelper(c Ctx) error { return c.Sync(nil, "helper") }

func viaFuncValue(c Ctx) error {
	f := syncHelper
	return f(c)
}

func afterFuncValue(c Ctx) error {
	if err := viaFuncValue(c); err != nil {
		return err
	}
	return c.Send(1, 2, []byte("z")) // want `unmatched send: no Sync follows`
}

// --- interface call: Sync resolved through an embedded interface's
// method set is still a structural boundary.

type Worker interface {
	Ctx
	Work() error
}

func afterInterfaceSync(w Worker) error {
	if err := w.Sync(nil, "iface"); err != nil {
		return err
	}
	return w.Send(1, 3, []byte("w")) // want `unmatched send: no Sync follows`
}

// --- value-position arguments: a synchronizing function value or
// method value handed to a combiner-taking helper (the collective
// argument shape) makes the passer a synchronizer — the callee may
// invoke it, and pidtaint's alignment summaries lean on exactly this
// edge. Asserted through the fixpoint in TestCallGraphFixpoint; the
// sends stay undiagnosed because apply itself is not a structural
// boundary.

func apply(c Ctx, combine func(Ctx) error) error {
	return combine(c)
}

func passesFuncValueArg(c Ctx, scope *Machine, data []byte) error {
	if err := apply(c, syncHelper); err != nil {
		return err
	}
	return c.Send(1, 5, []byte("f"))
}

type node struct{}

func (node) step(c Ctx) error { return c.Sync(nil, "node-step") }

func passesMethodValueArg(c Ctx, scope *Machine, data []byte) error {
	var n node
	if err := apply(c, n.step); err != nil {
		return err
	}
	return c.Send(1, 6, []byte("m"))
}

// A pure function value passed the same way adds no synchronizing edge.
func pureStep(c Ctx) error { return nil }

func passesPureFuncValueArg(c Ctx, scope *Machine, data []byte) error {
	if err := apply(c, pureStep); err != nil {
		return err
	}
	return c.Send(1, 7, []byte("n"))
}

// --- the over-approximation is not an any-call approximation: a
// helper with no barrier anywhere stays unmarked, so the send after it
// is the caller-flushes pattern, not a finding.

func pureHelper(c Ctx) error { return c.Send(2, 9, []byte("p")) }

func afterPureHelper(c Ctx) error {
	if err := pureHelper(c); err != nil {
		return err
	}
	return c.Send(1, 4, []byte("q"))
}
