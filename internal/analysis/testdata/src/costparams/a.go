// Package costparams is the golden fixture for the costparams
// analyzer: stub model constructors and options with seeded
// out-of-range literal parameters.
package costparams

type Machine struct{}

type Option func(*Machine)

func WithComm(r float64) Option  { return nil }
func WithComp(s float64) Option  { return nil }
func WithSync(l float64) Option  { return nil }
func WithShare(c float64) Option { return nil }

func NewLeaf(name string, opts ...Option) *Machine { return &Machine{} }

type Tree struct{}

func (t *Tree) Normalize() *Tree { return t }

func New(root *Machine, g float64) (*Tree, error) { return &Tree{}, nil }

func MustNew(root *Machine, g float64) *Tree { return &Tree{} }

type Engine struct{}

func NewVirtual(t *Tree) *Engine    { return &Engine{} }
func NewConcurrent(t *Tree) *Engine { return &Engine{} }

const negativeLatency = -25000.0

// --- violations ---

func zeroBandwidth(root *Machine) *Tree {
	return MustNew(root, 0) // want `bandwidth indicator g = 0, want > 0`
}

func negativeBandwidth(root *Machine) (*Tree, error) {
	return New(root, -1.5) // want `bandwidth indicator g = -1.5, want > 0`
}

func badOptions() *Machine {
	return NewLeaf("w",
		WithComm(0),             // want `communication slowdown r = 0, want > 0`
		WithComp(-2),            // want `compute slowdown = -2, want > 0`
		WithSync(negativeLatency), // want `synchronization cost L = -25000, want >= 0`
		WithShare(1.5),          // want `workload share c = 1.5, want in \[0, 1\]`
	)
}

func negativeShare() Option {
	return WithShare(-0.25) // want `workload share c = -0.25, want in \[0, 1\]`
}

func rawTreeIntoEngine(root *Machine) *Engine {
	return NewVirtual(MustNew(root, 1)) // want `tree passed to NewVirtual without Normalize`
}

// --- valid uses ---

func normalizedTree(root *Machine) *Engine {
	return NewVirtual(MustNew(root, 1).Normalize())
}

func freeBarrierIsLegal() Option {
	return WithSync(0)
}

func runtimeValuesAreOutOfScope(g float64) *Tree {
	// Only literals are checked; dynamic values are Validate's job.
	return MustNew(&Machine{}, g)
}

func boundaryShare() Option {
	return WithShare(1)
}
