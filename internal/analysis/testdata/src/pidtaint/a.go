// Package pidtaint is the golden fixture for the alignment analyzer:
// stub HBSPlib vocabulary plus seeded misalignment bugs (branch arms
// with different synchronization sequences, early returns that skip
// barriers, pid-bounded sync loops) and audited-aligned negatives (the
// coordinator-election idiom, ancestor-of-self scopes, helpers that
// sync identically in both arms).
package pidtaint

type Machine struct{}

func (m *Machine) Contains(pid int) bool { return true }

type Ctx interface {
	Pid() int
	Self() *Machine
	Send(dst, tag int, payload []byte) error
	Moves() [][]byte
	Sync(scope *Machine, label string) error
}

func SyncAll(c Ctx, label string) error { return c.Sync(nil, label) }

func Gather(c Ctx, scope *Machine, root int, n []byte) error { return c.Sync(scope, "gather") }
func Reduce(c Ctx, scope *Machine, root int, n []byte) error { return c.Sync(scope, "reduce") }

func enclosingScope(c Ctx, lvl int) *Machine { _ = c.Self(); return nil }

func Coordinator(c Ctx, scope *Machine) int { return 0 }

// --- violations ---

// Arms synchronize differently: the root runs a gather, everyone else
// a bare sync. Sequences diverge at the first collective.
func armsDifferentCollective(c Ctx, scope *Machine, data []byte) error {
	if c.Pid() == 0 { // want `pid-divergent branches synchronize differently`
		return Gather(c, scope, 0, data)
	}
	return SyncAll(c, "fallback")
}

// One arm syncs twice, the other once: counts differ even though both
// arms end in the same collective.
func armsDifferentCount(c Ctx, scope *Machine, data []byte) error {
	if c.Pid()%2 == 0 { // want `pid-divergent branches synchronize differently`
		if err := SyncAll(c, "extra"); err != nil {
			return err
		}
	}
	return Gather(c, scope, 0, data)
}

// An early return on the pid-tainted branch skips the barrier that
// follows the if: the returning processors never reach "after".
func earlyReturnSkipsBarrier(c Ctx, data []byte) error {
	if c.Pid() > 3 { // want `pid-divergent branches synchronize differently`
		return nil
	}
	return SyncAll(c, "after")
}

// A sync inside a loop whose bound is the processor id: pid 0 syncs
// zero times, pid 7 seven times.
func pidBoundedSyncLoop(c Ctx) error {
	for i := 0; i < c.Pid(); i++ { // want `loop bound is pid-divergent and the body synchronizes`
		if err := SyncAll(c, "round"); err != nil {
			return err
		}
	}
	return nil
}

// Misalignment through a helper: the then-arm calls a helper that
// synchronizes twice, the else-arm syncs once inline. The per-function
// summary exposes the difference interprocedurally.
func doubleSync(c Ctx) error {
	if err := SyncAll(c, "one"); err != nil {
		return err
	}
	return SyncAll(c, "two")
}

func misalignedThroughHelper(c Ctx) error {
	if c.Pid() == 0 { // want `pid-divergent branches synchronize differently`
		return doubleSync(c)
	}
	return SyncAll(c, "one")
}

// A pid-divergent switch whose cases sync on different labels.
func divergentSwitch(c Ctx, scope *Machine) error {
	switch c.Pid() % 3 { // want `pid-divergent switch arms synchronize differently`
	case 0:
		return c.Sync(scope, "a")
	case 1:
		return c.Sync(scope, "b")
	default:
		return nil
	}
}

// Ranging over delivered messages with a synchronizing body: delivery
// counts differ per processor, so sync counts do too.
func syncPerDelivery(c Ctx) error {
	for range c.Moves() { // want `ranging over a pid-divergent value with a synchronizing body`
		if err := SyncAll(c, "per-msg"); err != nil {
			return err
		}
	}
	return nil
}

// --- aligned (negative) patterns ---

// The coordinator-election idiom: the root does extra non-synchronizing
// work (sends), but both arms rejoin with the identical barrier.
func coordinatorDoesExtraSends(c Ctx, scope *Machine, data []byte) error {
	root := Coordinator(c, scope)
	if c.Pid() == root {
		for dst := 0; dst < 4; dst++ {
			if err := c.Send(dst, 1, data); err != nil {
				return err
			}
		}
	}
	return SyncAll(c, "rejoin")
}

// Both arms synchronize identically — different payloads, same
// sequence.
func armsAligned(c Ctx, scope *Machine, a, b []byte) error {
	if c.Pid() == 0 {
		if err := c.Send(1, 0, a); err != nil {
			return err
		}
		return Gather(c, scope, 0, a)
	}
	if err := c.Send(0, 0, b); err != nil {
		return err
	}
	return Gather(c, scope, 0, b)
}

// Ancestor-of-self scopes are divergent in the taint sense but
// convergent per scope membership: a barrier on one is aligned.
func ancestorScopeIsConvergent(c Ctx) error {
	scope := enclosingScope(c, 1)
	if scope != nil {
		return c.Sync(scope, "cluster")
	}
	return c.Sync(nil, "cluster")
}

// A uniform (untainted) branch may synchronize asymmetrically: every
// processor takes the same arm.
func uniformBranch(c Ctx, quorum bool) error {
	if quorum {
		return SyncAll(c, "commit")
	}
	return nil
}

// The same helper called in both arms is trivially aligned.
func helperBothArms(c Ctx) error {
	if c.Pid() == 0 {
		return doubleSync(c)
	}
	return doubleSync(c)
}

// Error returns mirrored in both arms stay aligned: each arm's sync
// sequence (including the error exit) is identical.
func alignedErrorHandling(c Ctx, scope *Machine, data []byte) error {
	if c.Pid()%2 == 0 {
		if err := Gather(c, scope, 0, data); err != nil {
			return err
		}
		return SyncAll(c, "done")
	}
	if err := Gather(c, scope, 0, data); err != nil {
		return err
	}
	return SyncAll(c, "done")
}

func errorf(string) error { return nil }

// The membership guard: processors outside the scope abort with an
// error before any barrier. An abort surfaces to the whole scope, so
// the sync-free error return is not a desync.
func membershipGuardAborts(c Ctx, scope *Machine, data []byte) error {
	if c.Pid() > 7 {
		return errorf("outside scope")
	}
	if err := Gather(c, scope, 0, data); err != nil {
		return err
	}
	return SyncAll(c, "done")
}
