// Package costparamscal is the golden fixture for the calibration
// cross-check: its own results/calibrate.csv fits g = 1 and
// L_{1,0} = 25000, so an annotated literal matching the fit is silent,
// a drifted one is flagged, and an annotation citing a parameter the
// artifact does not fit is flagged as such.
package costparamscal

type Machine struct{}

type Tree struct{ Root *Machine }

type Option func(*Machine)

func WithSync(l float64) Option { return nil }

func WithComm(r float64) Option { return nil }

func NewCluster(name string, children []*Machine, opts ...Option) *Machine { return nil }

func MustNew(root *Machine, g float64) *Tree { return nil }

func calibratedOK() *Tree {
	root := NewCluster("lan", nil, WithSync(25000)) //hbspk:calibrated L_{1,0}
	return MustNew(root, 1)                         //hbspk:calibrated g
}

func calibratedDrift() *Tree {
	// 30000 is 20% off the fitted 25000: someone edited the preset
	// without re-running calibration.
	root := NewCluster("lan", nil, WithSync(30000)) //hbspk:calibrated L_{1,0}  // want `calibrated parameter L_\{1,0\} = 30000 drifts 20.0% from the fitted value 25000`
	return MustNew(root, 1)
}

func calibratedWideTolerance() *Tree {
	// The same 20% drift under an explicit 0.25 tolerance is accepted.
	root := NewCluster("lan", nil, WithSync(30000)) //hbspk:calibrated L_{1,0} 0.25
	return MustNew(root, 1)
}

func calibratedUnknownParam() *Tree {
	root := NewCluster("lan", nil, WithSync(25000)) //hbspk:calibrated L_{9,9}  // want `no such parameter in results/calibrate.csv`
	return MustNew(root, 1)
}

func unannotated() *Tree {
	// Without the directive a drifted literal is not judged: most
	// literals are not calibrated quantities.
	root := NewCluster("lan", nil, WithSync(90000))
	return MustNew(root, 4)
}
