// Package staleignore is the golden fixture for the stale-directive
// sweep: a directive that suppresses a real finding is consumed, one on
// a clean line is stale, and one naming an analyzer that no longer
// exists under that name (rename rot) silences nothing and never will.
package staleignore

type Machine struct{}

type Ctx interface {
	Pid() int
	Send(dst, tag int, payload []byte) error
	Sync(scope *Machine, label string) error
}

func consumedDirective(c Ctx) error {
	if err := c.Sync(nil, "step"); err != nil {
		return err
	}
	return c.Send(1, 0, []byte("x")) //hbspk:ignore commgraph -- deliberate: flushed by the caller's next super-step
}

func staleDirective(c Ctx) error {
	//hbspk:ignore commgraph // want `stale //hbspk:ignore commgraph: the directive suppresses nothing on its line`
	return c.Sync(nil, "clean")
}

func renameRot(c Ctx) error {
	if err := c.Sync(nil, "step"); err != nil {
		return err
	}
	// The analyzer was renamed commtopology -> commgraph long ago; the
	// directive cites the dead name, so the finding below it is live.
	return c.Send(1, 0, []byte("y")) //hbspk:ignore commtopology // want `unmatched send` `//hbspk:ignore commtopology names no analyzer \(renamed or removed\?\): the directive silences nothing`
}
