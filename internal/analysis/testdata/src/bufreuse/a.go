// Package bufreuse is the golden fixture for the bufreuse analyzer:
// stub pvm Buffer/Task types and an HBSPlib Ctx, with seeded
// send-then-mutate hazards.
package bufreuse

type TID int

type Buffer struct{ data []byte }

func NewBuffer() *Buffer { return &Buffer{} }

func (b *Buffer) PackInt32(vs ...int32) *Buffer { return b }
func (b *Buffer) PackBytes(p []byte) *Buffer    { return b }

type Task struct{}

func (t *Task) Send(dst TID, tag int, buf *Buffer) error         { return nil }
func (t *Task) Mcast(dsts []TID, tag int, buf *Buffer) error     { return nil }
func (t *Task) Barrier(name string, count int) error             { return nil }
func (t *Task) Recv(src TID, tag int) (struct{ Src TID }, error) { return struct{ Src TID }{}, nil }

type Machine struct{}

type Ctx interface {
	Pid() int
	Send(dst, tag int, payload []byte) error
	Sync(scope *Machine, label string) error
}

// --- violations ---

func packAfterSend(t *Task) error {
	buf := NewBuffer()
	buf.PackInt32(1)
	if err := t.Send(1, 7, buf); err != nil {
		return err
	}
	buf.PackInt32(2)         // want `PackInt32 into buffer "buf" already sent`
	return t.Send(2, 7, buf) // want `buffer "buf" resent`
}

func packAfterMcast(t *Task) error {
	buf := NewBuffer().PackBytes([]byte("hello"))
	if err := t.Mcast([]TID{1, 2}, 3, buf); err != nil {
		return err
	}
	buf.PackBytes([]byte("tail")) // want `PackBytes into buffer "buf" already sent`
	return nil
}

func resendWithoutPacking(t *Task) error {
	buf := NewBuffer().PackInt32(1)
	if err := t.Send(1, 7, buf); err != nil {
		return err
	}
	return t.Send(2, 7, buf) // want `buffer "buf" resent`
}

func mutatePayloadAfterSend(c Ctx, scope *Machine) error {
	payload := []byte("abc")
	if err := c.Send(1, 0, payload); err != nil {
		return err
	}
	payload[0] = 'z' // want `store into "payload" already sent`
	return c.Sync(scope, "step")
}

func appendPayloadAfterSend(c Ctx) error {
	payload := make([]byte, 0, 16)
	payload = append(payload, 1, 2, 3)
	if err := c.Send(1, 0, payload); err != nil {
		return err
	}
	payload = append(payload, 4) // want `append into payload "payload" already queued by Send`
	return nil
}

func copyIntoSentPayload(c Ctx, fresh []byte) error {
	payload := make([]byte, 8)
	if err := c.Send(1, 0, payload); err != nil {
		return err
	}
	copy(payload, fresh) // want `copy into payload "payload" already queued by Send`
	return nil
}

func sliceOfSentPayload(c Ctx) error {
	payload := make([]byte, 8)
	if err := c.Send(1, 0, payload[:4]); err != nil {
		return err
	}
	payload[5] = 1 // want `store into "payload" already sent`
	return nil
}

// --- safe patterns ---

func freshBufferPerMessage(t *Task) error {
	for dst := TID(0); dst < 4; dst++ {
		buf := NewBuffer()
		buf.PackInt32(int32(dst))
		if err := t.Send(dst, 7, buf); err != nil {
			return err
		}
	}
	return nil
}

func rebindResets(t *Task) error {
	buf := NewBuffer().PackInt32(1)
	if err := t.Send(1, 7, buf); err != nil {
		return err
	}
	buf = NewBuffer()
	buf.PackInt32(2)
	return t.Send(2, 7, buf)
}

func freshPayloadAfterSend(c Ctx) error {
	payload := []byte("abc")
	if err := c.Send(1, 0, payload); err != nil {
		return err
	}
	payload = []byte("new backing array")
	payload[0] = 'z'
	return nil
}

type Message struct{ Src TID }

func (m Message) Release() {}

// A deferred send runs after the body: packing below the defer happens
// before the buffer is handed to the fabric, so nothing is reused.
func deferredSendThenPack(t *Task, dst TID) {
	buf := NewBuffer()
	defer t.Send(dst, 1, buf)
	buf.PackInt32(42)
}

// defer msg.Release() is cleanup, not reuse: lifetime discipline for
// the pooled record is bufown's domain.
func deferReleaseIsCleanup(t *Task, m Message, dst TID) error {
	defer m.Release()
	buf := NewBuffer().PackInt32(9)
	return t.Send(dst, 2, buf)
}

// Two deferred sends of one buffer still resend it — the LIFO replay
// orders the later defer first, and the earlier one doubles the send.
func deferredDoubleSend(t *Task, dst TID) {
	buf := NewBuffer().PackInt32(1)
	defer t.Send(dst, 1, buf) // want `buffer "buf" resent`
	defer t.Send(dst, 2, buf)
}
