// Package commgraph is the golden fixture for the commgraph analyzer:
// a self-contained replica of the HBSPlib Ctx surface with seeded
// communication-topology violations — unmatched sends, reads before any
// delivery, and divergent-scope barriers. The analyzer keys on method
// sets, not import paths, so the stubs exercise exactly the production
// detection logic.
package commgraph

type Machine struct{}

func (m *Machine) Coordinator() *Machine { return m }

type Tree struct{ Root *Machine }

func (t *Tree) Pid(m *Machine) int { return 0 }

func (t *Tree) ScopeAt(m *Machine, lvl int) *Machine { return m }

type Message struct {
	Src, Tag int
	Payload  []byte
}

type Ctx interface {
	Pid() int
	NProcs() int
	Tree() *Tree
	Self() *Machine
	Moves() []Message
	Send(dst, tag int, payload []byte) error
	Sync(scope *Machine, label string) error
}

func SyncAll(c Ctx, label string) error { return c.Sync(nil, label) }

func Gather(c Ctx, scope *Machine, root int, payload []byte) error {
	return c.Sync(scope, "gather")
}

// Run stands in for the engine entry points: its function-literal
// argument executes from superstep zero.
func Run(prog func(Ctx) error) error { return nil }

// scopeOf stands in for any per-processor scope choice that is NOT an
// ancestor-of-self lookup; barriers on its result cannot agree.
func scopeOf(pid int) *Machine { return nil }

// --- violations ---

func sendAfterLastSync(c Ctx, scope *Machine) error {
	if err := c.Sync(scope, "step"); err != nil {
		return err
	}
	return c.Send(1, 0, []byte("orphan")) // want `unmatched send: no Sync follows`
}

// The interprocedural case: the boundary is buried two calls deep, so
// only the call-graph fixpoint can see that the send after it dangles.
func sendAfterHelperSync(c Ctx, scope *Machine) error {
	if err := syncDeep(c, scope); err != nil {
		return err
	}
	return c.Send(1, 3, []byte("orphan")) // want `unmatched send: no Sync follows`
}

func syncDeep(c Ctx, scope *Machine) error { return syncDeeper(c, scope) }

func syncDeeper(c Ctx, scope *Machine) error { return c.Sync(scope, "deep") }

func readBeforeDelivery() error {
	return Run(func(c Ctx) error {
		for _, m := range c.Moves() { // want `Moves\(\) read before the first Sync`
			_ = m
		}
		return SyncAll(c, "late")
	})
}

func divergentScopeSync(c Ctx) error {
	return c.Sync(scopeOf(c.Pid()), "per-pid scope") // want `scope argument is processor-divergent`
}

func divergentScopeLocal(c Ctx) error {
	mine := scopeOf(c.Pid())
	return c.Sync(mine, "via local") // want `scope argument is processor-divergent`
}

func divergentCollectiveScope(c Ctx) error {
	return Gather(c, scopeOf(c.Pid()), 0, nil) // want `scope argument is processor-divergent`
}

// --- well-formed programs ---

func sendThenSync(c Ctx, scope *Machine, root int) error {
	if c.Pid() != root {
		if err := c.Send(root, 1, []byte("x")); err != nil {
			return err
		}
	}
	return c.Sync(scope, "gather")
}

// A send lexically after the loop's sync still meets a barrier on the
// next iteration.
func sendInSyncLoop(c Ctx, scope *Machine) error {
	for i := 0; i < 3; i++ {
		if err := c.Sync(scope, "round"); err != nil {
			return err
		}
		if err := c.Send(0, i, []byte("for next round")); err != nil {
			return err
		}
	}
	return nil
}

// Zero-sync helpers queue messages for the caller's barrier; only
// functions that manage their own supersteps are judged.
func queueForCaller(c Ctx, dst int) error {
	return c.Send(dst, 9, []byte("caller will sync"))
}

// Ancestor-of-self scopes are divergent in the taint sense but
// convergent per scope membership, directly or through a local.
func convergentScopes(c Ctx) error {
	cluster := c.Tree().ScopeAt(c.Self(), 1)
	if err := c.Sync(cluster, "cluster"); err != nil {
		return err
	}
	if err := c.Sync(c.Tree().ScopeAt(c.Self(), 2), "wider"); err != nil {
		return err
	}
	return c.Sync(c.Self(), "leaf singleton")
}

// The known-unprovable case: a reply server answers requests after its
// own barrier, relying on the caller's next sync to deliver them — the
// DRMA protocol shape, audited by hand.
func replyServer(c Ctx, scope *Machine) error {
	if err := c.Sync(scope, "deliver"); err != nil {
		return err
	}
	for _, m := range c.Moves() {
		if err := c.Send(m.Src, 7, []byte{1}); err != nil { //hbspk:ignore commgraph (replies are delivered by the caller's next sync)
			return err
		}
	}
	return nil
}
