// Package costbound is the golden fixture for the costbound analyzer
// and its symbolic cost extractor: a self-contained replica of the
// HBSPlib Ctx surface with one seeded flat fan-out in a program body,
// plus helper functions whose extracted per-superstep cost expressions
// the unit tests pin exactly.
package costbound

type Machine struct{}

type Ctx interface {
	Pid() int
	NProcs() int
	Send(dst, tag int, payload []byte) error
	Sync(scope *Machine, label string) error
}

func SyncAll(c Ctx, label string) error { return c.Sync(nil, label) }

func BcastOnePhase(c Ctx, scope *Machine, root int, data []byte) ([]byte, error) {
	return data, c.Sync(scope, "bcast")
}

func Reduce(c Ctx, scope *Machine, root int, local []int64, op func(a, b int64) int64) ([]int64, error) {
	return local, c.Sync(scope, "reduce")
}

// Run stands in for the engine entry points: its function-literal
// argument executes from superstep zero.
func Run(prog func(Ctx) error) error { return nil }

// --- the seeded violation ---

// flatFanout hand-rolls a broadcast: the pid-0 root sends to every
// processor in one superstep, costing g·n·(p−1) at the root on any
// machine tree.
func flatFanout() error {
	return Run(func(c Ctx) error {
		data := make([]byte, 1<<20)
		if c.Pid() == 0 {
			for dst := 1; dst < c.NProcs(); dst++ {
				if err := c.Send(dst, 7, data); err != nil { // want `flat fan-out: one pid-guarded root sends to every processor`
					return err
				}
			}
		}
		return SyncAll(c, "fanout")
	})
}

// --- clean shapes ---

// usesCollective delegates to the library: no diagnostic.
func usesCollective() error {
	return Run(func(c Ctx) error {
		_, err := BcastOnePhase(c, nil, 0, make([]byte, 4096))
		if err != nil {
			return err
		}
		return SyncAll(c, "done")
	})
}

// totalExchangeEntry: every processor sends in the loop — no pid guard
// nests the send, so this is an h-relation, not a flat fan-out. The
// skip-self test is a sibling if, not an ancestor.
func totalExchangeEntry() error {
	return Run(func(c Ctx) error {
		data := make([]byte, 64)
		for dst := 0; dst < c.NProcs(); dst++ {
			if dst == c.Pid() {
				continue
			}
			if err := c.Send(dst, 11, data); err != nil {
				return err
			}
		}
		return SyncAll(c, "exchange")
	})
}

// flatInsideLibrary: the same shape in a plain function is the
// legitimate implementation of a flat collective — only program entry
// bodies are judged.
func flatInsideLibrary(c Ctx, data []byte) error {
	if c.Pid() == 0 {
		for dst := 1; dst < c.NProcs(); dst++ {
			if err := c.Send(dst, 9, data); err != nil {
				return err
			}
		}
	}
	return c.Sync(nil, "lib")
}

// --- extraction subjects (no diagnostics; pinned by the unit tests) ---

// exchangeRounds has two superstep segments: one closed by a collective
// (whose closed form carries its own barriers, so no +L), one closed by
// a plain scoped sync (+L).
func exchangeRounds(c Ctx, scope *Machine, payload []byte) error {
	if _, err := BcastOnePhase(c, scope, 0, make([]byte, 4096)); err != nil {
		return err
	}
	if err := c.Send(1, 5, make([]byte, 128)); err != nil {
		return err
	}
	if err := c.Send(2, 5, payload); err != nil {
		return err
	}
	return c.Sync(scope, "round")
}

// reducePerProc sends typed words (8-byte elements) and runs a per-proc
// collective: the extractor scales element sizes and multiplies the
// per-proc payload by p.
func reducePerProc(c Ctx, scope *Machine, words []int64) error {
	_, err := Reduce(c, scope, 0, words, func(a, b int64) int64 { return a + b })
	return err
}
