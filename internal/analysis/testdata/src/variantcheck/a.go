// Package variantcheck is the golden fixture for the collective-variant
// advice analyzer, checked against the deep wide-area grid tree
// (WideAreaGrid(3, 4, 12, 25000, 250000)): a megabyte broadcast through
// the flat one-phase variant is the "flat broadcast on a deep tree"
// mistake — the hierarchical variant is statically several times
// cheaper — while small payloads sit on the flat side of the crossover
// and symbolic payloads have no fixed side at all.
package variantcheck

type Machine struct{}

type Ctx interface {
	Pid() int
	NProcs() int
	Send(dst, tag int, payload []byte) error
	Sync(scope *Machine, label string) error
}

func BcastOnePhase(c Ctx, scope *Machine, root int, data []byte) ([]byte, error) {
	return data, c.Sync(scope, "bcast")
}

func Gather(c Ctx, scope *Machine, root int, local []byte) (map[int][]byte, error) {
	return nil, c.Sync(scope, "gather")
}

func Run(prog func(Ctx) error) error { return nil }

func broadcastLarge() error {
	return Run(func(c Ctx) error {
		_, err := BcastOnePhase(c, nil, 0, make([]byte, 1<<20)) // want `collective BcastOnePhase at n=1048576 bytes costs .* BcastHier costs .* cheaper`
		return err
	})
}

func broadcastSmall() error {
	return Run(func(c Ctx) error {
		// 64 bytes is far below the flat -> hierarchical crossover: the
		// per-level barriers of the hierarchical variant dominate.
		_, err := BcastOnePhase(c, nil, 0, make([]byte, 64))
		return err
	})
}

func broadcastUnknownSize(c Ctx, data []byte) error {
	// A symbolic payload has no fixed side of the crossover: no advice.
	_, err := BcastOnePhase(c, nil, 0, data)
	return err
}

func gatherLarge() error {
	return Run(func(c Ctx) error {
		// The flat gather is never beaten by the hierarchical one on this
		// model (same wide-area bytes, extra barriers): no advice even at
		// a megabyte per processor.
		_, err := Gather(c, nil, 0, make([]byte, 1<<20))
		return err
	})
}
