// Package variantcheckucf is the second variantcheck golden, checked
// against the calibrated UCF testbed: a megabyte one-phase broadcast
// sits far above the paper's one-phase -> two-phase crossover
// n* = L/(g·(m−2−r_s)) ≈ 3.7 KB, so the two-phase family is statically
// several times cheaper (on this near-flat tree the hierarchical
// two-phase edges out plain two-phase by its slightly cheaper top
// level, and is what the advice names).
package variantcheckucf

type Machine struct{}

type Ctx interface {
	Pid() int
	NProcs() int
	Send(dst, tag int, payload []byte) error
	Sync(scope *Machine, label string) error
}

func BcastOnePhase(c Ctx, scope *Machine, root int, data []byte) ([]byte, error) {
	return data, c.Sync(scope, "bcast")
}

func Run(prog func(Ctx) error) error { return nil }

func broadcastLarge() error {
	return Run(func(c Ctx) error {
		_, err := BcastOnePhase(c, nil, 0, make([]byte, 1<<20)) // want `collective BcastOnePhase at n=1048576 bytes costs .* BcastHierTwoPhase costs .* cheaper`
		return err
	})
}

func broadcastSmall() error {
	return Run(func(c Ctx) error {
		_, err := BcastOnePhase(c, nil, 0, make([]byte, 64))
		return err
	})
}
