// Package bufown is the golden fixture for the linear-ownership
// checker: a stub of the pvm mailbox API plus seeded lifetime bugs
// (leaks on early error returns, double releases, uses after release,
// path-sensitive re-sends, release-in-flight, panic leaks) and the
// audited-clean idioms (err-guarded acquisition, deferred release,
// ownership hand-offs to helpers and callers).
package bufown

type TID int

type Buffer struct{ data []byte }

func NewBuffer() *Buffer                        { return &Buffer{} }
func (b *Buffer) PackInt32(vs ...int32) *Buffer { return b }
func (b *Buffer) UnpackInt32() (int32, error)   { return 0, nil }
func (b *Buffer) UnpackBytes() ([]byte, error)  { return nil, nil }

type Message struct {
	Src TID
	Tag int
}

func (m Message) Release()        {}
func (m Message) Buffer() *Buffer { return &Buffer{} }
func (m Message) Len() int        { return 0 }

type Task struct{}

func (t *Task) Recv(src TID, tag int) (Message, error)       { return Message{}, nil }
func (t *Task) TryRecv(src TID, tag int) (Message, bool)     { return Message{}, false }
func (t *Task) TryRecvAll(src TID, tag int) []Message        { return nil }
func (t *Task) Send(dst TID, tag int, buf *Buffer) error     { return nil }
func (t *Task) Mcast(dsts []TID, tag int, buf *Buffer) error { return nil }

// --- violations ---

// The classic leak: an early error return between acquisition and
// release drops the wire reference.
func leakOnErrorReturn(t *Task) error {
	m, err := t.Recv(1, 0)
	if err != nil {
		return err
	}
	b := m.Buffer()
	if _, err := b.UnpackInt32(); err != nil {
		return err // want `not released on this return path`
	}
	m.Release()
	return nil
}

// Never released at all: the reference leaks at the final return.
func neverReleased(t *Task) int {
	m, ok := t.TryRecv(1, 0)
	if !ok {
		return 0
	}
	return m.Len() // want `not released on this return path`
}

// Same leak without a return: reported where the reference was taken,
// since nothing past the end of the scope can release it.
func neverReleasedFallsOff(t *Task) {
	m, ok := t.TryRecv(1, 0) // want `not released on every path`
	if !ok {
		return
	}
	observe(m.Len())
}

func observe(int) {}

func doubleRelease(t *Task) error {
	m, err := t.Recv(1, 0)
	if err != nil {
		return err
	}
	m.Release()
	m.Release() // want `double release`
	return nil
}

// Unpacking through an alias of a released message reads bytes the pool
// may already have recycled into another message.
func useAfterRelease(t *Task) (int32, error) {
	m, err := t.Recv(1, 0)
	if err != nil {
		return 0, err
	}
	b := m.Buffer()
	m.Release()
	return b.UnpackInt32() // want `use of buffer "b" after message "m" was released`
}

// Path-sensitive re-send: one arm already transferred the buffer, so
// the unconditional send doubles it on that path. (bufreuse's
// source-ordered rule sees two sends but cannot tell the paths apart.)
func resendOnSomePaths(t *Task, urgent bool) error {
	buf := NewBuffer().PackInt32(7)
	if urgent {
		if err := t.Send(2, 1, buf); err != nil {
			return err
		}
	}
	return t.Send(3, 1, buf) // want `may already have been sent on some paths`
}

func resendDefinite(t *Task) {
	buf := NewBuffer().PackInt32(1)
	_ = t.Send(2, 1, buf)
	_ = t.Send(3, 1, buf) // want `sent again: ownership transferred`
}

// Forwarding a received message's bytes hands the pooled record to the
// fabric; releasing before delivery recycles bytes still on the wire.
func releaseInFlight(t *Task) error {
	m, err := t.Recv(1, 0)
	if err != nil {
		return err
	}
	fwd := m.Buffer()
	if err := t.Send(2, 1, fwd); err != nil {
		return err
	}
	m.Release() // want `released while its bytes are in flight`
	return nil
}

// A panic between acquisition and release leaks unless the release is
// deferred.
func leakOnPanic(t *Task, n int) {
	m, ok := t.TryRecv(1, 0)
	if !ok {
		return
	}
	if n < 0 {
		panic("negative fan-in count") // want `leaks if this panic unwinds`
	}
	m.Release()
}

// An explicit Release with a deferred one pending drops two references
// for one acquisition.
func doubleWithDefer(t *Task) error {
	m, err := t.Recv(1, 0)
	if err != nil {
		return err
	}
	defer m.Release()
	if m.Len() == 0 {
		return nil
	}
	m.Release() // want `a deferred Release is already pending`
	return nil
}

// The TryRecvAll drain-loop bug: an early return mid-iteration leaks
// the current message (and strands the rest of the batch).
func drainLeaky(t *Task) error {
	for _, m := range t.TryRecvAll(1, 0) {
		b := m.Buffer()
		if _, err := b.UnpackInt32(); err != nil {
			return err // want `not released on this return path`
		}
		m.Release()
	}
	return nil
}

// --- audited-clean idioms ---

// The guarded acquisition: on the error arm nothing was delivered, so
// returning without Release is correct.
func errGuardClean(t *Task) error {
	m, err := t.Recv(1, 0)
	if err != nil {
		return err
	}
	defer m.Release()
	if _, err := m.Buffer().UnpackInt32(); err != nil {
		return err
	}
	return nil
}

// A closure that releases on the way out is as good as a direct defer.
func closureDeferClean(t *Task) error {
	m, err := t.Recv(1, 0)
	if err != nil {
		return err
	}
	defer func() { m.Release() }()
	return nil
}

// Returning the message transfers the obligation to the caller.
func transferToCaller(t *Task) (Message, error) {
	m, err := t.Recv(1, 0)
	if err != nil {
		return Message{}, err
	}
	return m, nil
}

// Handing the message to a helper transfers the obligation to it.
func handedToHelper(t *Task) {
	m, ok := t.TryRecv(1, 0)
	if !ok {
		return
	}
	consume(m)
}

func consume(m Message) { m.Release() }

// Release on every arm of a branch keeps the reference balanced.
func releasedOnBothArms(t *Task, keep bool) []byte {
	m, ok := t.TryRecv(1, 0)
	if !ok {
		return nil
	}
	var out []byte
	if keep {
		raw, _ := m.Buffer().UnpackBytes()
		out = append(out, raw...)
		m.Release()
	} else {
		m.Release()
	}
	return out
}

// A read-only sizing pass before the owning drain: only the last loop
// over the batch carries the release obligation.
func drainSized(t *Task) int {
	msgs := t.TryRecvAll(1, 0)
	total := 0
	for _, m := range msgs {
		total += m.Len()
	}
	for _, m := range msgs {
		m.Release()
	}
	return total
}

// The drain loop done right: release per iteration, and on an error
// hand the remaining batch (current element included) to a helper that
// owns the cleanup.
func drainForward(t *Task, rest func([]Message, error) error) error {
	msgs := t.TryRecvAll(1, 0)
	for i, m := range msgs {
		b := m.Buffer()
		if _, err := b.UnpackInt32(); err != nil {
			return rest(msgs[i:], err)
		}
		m.Release()
	}
	return nil
}
