// Package syncdiscipline is the golden fixture for the syncdiscipline
// analyzer: a self-contained replica of the HBSPlib Ctx surface with
// seeded violations. The analyzer keys on method sets, not import
// paths, so the stubs exercise exactly the production detection logic.
package syncdiscipline

type Machine struct{}

func (m *Machine) Coordinator() *Machine { return m }

type Tree struct{ Root *Machine }

func (t *Tree) Pid(m *Machine) int { return 0 }

type Message struct {
	Src, Tag int
	Payload  []byte
}

type Ctx interface {
	Pid() int
	NProcs() int
	Tree() *Tree
	Self() *Machine
	Moves() []Message
	Send(dst, tag int, payload []byte) error
	Sync(scope *Machine, label string) error
}

func SyncAll(c Ctx, label string) error { return c.Sync(nil, label) }

func Rank(c Ctx) int { return c.Pid() }

// --- violations ---

func syncUnderPidIf(c Ctx, scope *Machine, root int) error {
	if c.Pid() == root {
		return c.Sync(scope, "root only") // want `synchronizing call under processor-divergent control flow`
	}
	return nil
}

func syncUnderTaintedLocal(c Ctx, scope *Machine) error {
	me := c.Pid()
	amRoot := me == 0
	if amRoot {
		if err := c.Sync(scope, "tainted"); err != nil { // want `synchronizing call under processor-divergent control flow`
			return err
		}
	}
	return nil
}

func syncInPidBoundedLoop(c Ctx, scope *Machine) error {
	for i := 0; i < c.Pid(); i++ {
		if err := c.Sync(scope, "loop"); err != nil { // want `synchronizing call under processor-divergent control flow`
			return err
		}
	}
	return nil
}

func syncAllUnderRank(c Ctx) error {
	if Rank(c) == 0 {
		return SyncAll(c, "fastest only") // want `synchronizing call under processor-divergent control flow`
	}
	return nil
}

func syncUnderDivergentSwitch(c Ctx, scope *Machine, root int) error {
	switch {
	case c.Pid() != root:
		return c.Sync(scope, "non-root") // want `synchronizing call under processor-divergent control flow`
	}
	return nil
}

func syncPerMessage(c Ctx, scope *Machine) error {
	for range c.Moves() {
		if err := c.Sync(scope, "per message"); err != nil { // want `synchronizing call under processor-divergent control flow`
			return err
		}
	}
	return nil
}

func syncUnderElse(c Ctx, scope *Machine) error {
	if c.Pid() == 0 {
		return nil
	} else {
		return c.Sync(scope, "else branch") // want `synchronizing call under processor-divergent control flow`
	}
}

// --- well-formed programs ---

func sendUnderPidThenSync(c Ctx, scope *Machine, root int) error {
	if c.Pid() != root {
		if err := c.Send(root, 1, []byte("x")); err != nil {
			return err
		}
	}
	return c.Sync(scope, "gather")
}

func uniformLoop(c Ctx, scope *Machine, rounds int) error {
	for i := 0; i < rounds; i++ {
		if err := c.Sync(scope, "round"); err != nil {
			return err
		}
	}
	return nil
}

func errCheckIdiom(c Ctx, scope *Machine) error {
	if err := c.Sync(scope, "top level"); err != nil {
		return err
	}
	return nil
}

func treePidIsNotDivergent(c Ctx, scope *Machine) error {
	rootPid := c.Tree().Pid(scope.Coordinator())
	if rootPid == 0 {
		return c.Sync(scope, "tree lookup is processor-independent")
	}
	return nil
}

func suppressed(c Ctx, scope *Machine) error {
	if c.Pid() == 0 {
		return c.Sync(scope, "audited") //hbspk:ignore syncdiscipline
	}
	return nil
}
