// Package uncheckedrun is the golden fixture for the uncheckedrun
// analyzer: stub engines, Ctx, pvm types and collectives with seeded
// dropped errors.
package uncheckedrun

import "fmt"

type Machine struct{}

type Tree struct{ Root *Machine }

type Report struct{}

type Ctx interface {
	Pid() int
	Send(dst, tag int, payload []byte) error
	Sync(scope *Machine, label string) error
}

type Program func(Ctx) error

type Virtual struct{}

func (v *Virtual) Run(prog Program) (*Report, error) { return nil, nil }

func RunVirtual(t *Tree, prog Program) (*Report, error) { return nil, nil }

func SyncAll(c Ctx, label string) error { return c.Sync(nil, label) }

func Gather(c Ctx, scope *Machine, root int, local []byte) (map[int][]byte, error) {
	return nil, nil
}

type TID int

type Buffer struct{}

type Task struct{}

func (t *Task) Send(dst TID, tag int, buf *Buffer) error     { return nil }
func (t *Task) Mcast(dsts []TID, tag int, buf *Buffer) error { return nil }
func (t *Task) Barrier(name string, count int) error         { return nil }

type System struct{}

func (s *System) Wait() error { return nil }

// --- violations ---

func dropSync(c Ctx, scope *Machine) {
	c.Sync(scope, "step") // want `error result of Sync is dropped`
}

func dropSend(c Ctx) {
	c.Send(1, 0, nil) // want `error result of Send is dropped`
}

func dropSyncAll(c Ctx) {
	SyncAll(c, "global") // want `error result of SyncAll is dropped`
}

func dropEngineRun(v *Virtual, prog Program) {
	v.Run(prog) // want `error result of Run is dropped`
}

func dropFacadeRun(t *Tree, prog Program) {
	RunVirtual(t, prog) // want `error result of RunVirtual is dropped`
}

func dropCollective(c Ctx, scope *Machine) {
	Gather(c, scope, 0, nil) // want `error result of Gather is dropped`
}

func dropBarrier(t *Task) {
	t.Barrier("b", 4) // want `error result of Barrier is dropped`
}

func dropWait(s *System) {
	s.Wait() // want `error result of Wait is dropped`
}

func dropInGoroutine(c Ctx, scope *Machine) {
	go c.Sync(scope, "racing") // want `error result of Sync is dropped`
}

// --- checked uses ---

func checkedSync(c Ctx, scope *Machine) error {
	if err := c.Sync(scope, "step"); err != nil {
		return err
	}
	return nil
}

func checkedRun(v *Virtual, prog Program) error {
	_, err := v.Run(prog)
	return err
}

func deliberateDiscard(c Ctx, scope *Machine) {
	// An explicit blank assignment is a visible decision, not a drop.
	_ = c.Sync(scope, "fire and forget")
}

func unrelatedCallsAreFine() {
	fmt.Println("logging is not part of the model surface")
}

func unrelatedRunIsFine() {
	run() // a local helper named run is not the facade
}

func run() error { return nil }
