// Package lockorder is the golden fixture for the lockorder analyzer:
// a stub pvm.System leaf lock and an ABBA inversion pair.
package lockorder

import "sync"

type System struct {
	mu    sync.Mutex
	tasks map[int]*Task
}

type Task struct {
	mu   sync.Mutex
	mbox []int
}

type crun struct {
	mu    sync.Mutex
	steps []int
}

// --- violations ---

func lockTaskUnderSystem(s *System, t *Task) {
	s.mu.Lock()
	t.mu.Lock() // want `acquiring Task.mu while holding System.mu`
	t.mbox = append(t.mbox, 1)
	t.mu.Unlock()
	s.mu.Unlock()
}

func lockRunStateUnderSystem(s *System, r *crun) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.mu.Lock() // want `acquiring crun.mu while holding System.mu`
	r.steps = append(r.steps, 1)
	r.mu.Unlock()
}

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func abOrder(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock order inversion`
	b.mu.Unlock()
}

func baOrder(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `lock order inversion`
	a.mu.Unlock()
}

// --- safe patterns ---

func handoff(s *System, t *Task) {
	// The real pvm idiom: snapshot under the System lock, release, then
	// touch the task.
	s.mu.Lock()
	task := s.tasks[0]
	s.mu.Unlock()
	task.mu.Lock()
	task.mbox = nil
	task.mu.Unlock()
	_ = t
}

type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

func consistentOrder1(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func consistentOrder2(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
}
