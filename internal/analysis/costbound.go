package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CostBound is the symbolic superstep cost extractor: it walks each
// SPMD function's communication actions, partitions them into superstep
// segments at the synchronizing calls (reusing the transitive-
// synchronizes fixpoint of the call graph), and derives a symbolic cost
// bound per segment in the grammar of costexpr.go —
//
//	T_step <= g·rmax·(Σ payload bytes) + Σ coll(variant, n) + L
//
// an over-approximation of equation 1's T = w + g·h + L: the
// h-relation is bounded by the total bytes sent at the worst slowdown,
// the barrier by the most expensive scope, and local work w is not
// statically modeled. The facts feed `hbspk-vet -cost`, the commgraph
// JSON export, and the variantcheck advice pass.
//
// As a diagnostic analyzer it reports one model-visible mistake on its
// own: a hand-rolled flat fan-out in a program entry body — a
// pid-guarded loop over all processors sending from one root in a
// single superstep. That shape costs the root g·n·(p−1) on any tree
// and ignores the hierarchy entirely; the collective library's
// broadcast/scatter variants (and variantcheck's switchpoints) exist
// precisely to replace it.
var CostBound = &Analyzer{
	Name: "costbound",
	Doc:  "extract symbolic superstep cost bounds; flag hand-rolled flat fan-outs in program bodies",
	Run:  runCostBound,
}

// SendFact is one raw Ctx.Send: the destination and tag as folded
// decimal literals or "*", and the payload size expression.
type SendFact struct {
	Pos      token.Pos
	Dst, Tag string
	Bytes    *Expr
}

// CollFact is one collective-library call with its total-size
// expression (already scaled per the variant's size convention).
type CollFact struct {
	Pos  token.Pos
	Name string
	Size *Expr
}

// StepCostFact is one superstep segment of a function body.
type StepCostFact struct {
	// Index is the segment's 0-based position.
	Index int
	// Sync names the closing synchronizing call; "" for the trailing
	// segment of a body (or a helper with no boundary at all).
	Sync string
	// SyncIsColl marks a segment closed by a collective call (whose
	// closed form already includes its own barriers).
	SyncIsColl bool
	// InLoop marks a segment whose closing sync sits inside a loop:
	// facts are per iteration.
	InLoop bool
	Sends  []SendFact
	Colls  []CollFact
}

// Cost assembles the segment's symbolic cost bound.
func (s *StepCostFact) Cost() *Expr {
	var sizes []*Expr
	for _, snd := range s.Sends {
		sizes = append(sizes, snd.Bytes)
	}
	var terms []*Expr
	if len(sizes) > 0 {
		terms = append(terms, Mul(Param("g"), Param("rmax"), Add(sizes...)))
	}
	for _, c := range s.Colls {
		terms = append(terms, Coll(c.Name, c.Size))
	}
	if s.Sync != "" && !s.SyncIsColl {
		terms = append(terms, Param("L"))
	}
	return Add(terms...)
}

// FuncCost is one function's extracted per-superstep cost facts.
type FuncCost struct {
	Name  string
	Pos   token.Pos
	Steps []StepCostFact
}

// collSizeSpec maps a collective entrypoint to the argument carrying
// its payload and how that argument relates to the family's total
// problem size n: PerProc payloads are scaled by p, slice payloads by
// their element size, map payloads stay symbolic totals.
type collSizeSpec struct {
	Arg     int
	PerProc bool
}

var collSizeSpecs = map[string]collSizeSpec{
	"Gather":            {3, true},
	"GatherHier":        {1, true},
	"BcastOnePhase":     {3, false},
	"BcastTwoPhase":     {3, false},
	"BcastBinomial":     {3, false},
	"BcastHier":         {1, false},
	"BcastHierTwoPhase": {1, false},
	"Scatter":           {3, false},
	"ScatterHier":       {1, false},
	"AllGather":         {2, true},
	"AllGatherHier":     {1, true},
	"Reduce":            {3, true},
	"ReduceHier":        {1, true},
	"AllReduce":         {1, true},
	"Scan":              {2, true},
	"ScanHier":          {1, true},
	"TotalExchange":     {2, false},
	"TotalExchangeHier": {1, false},
	"ReduceScatter":     {2, true},
}

// ExtractCosts runs the extractor over every function body of the pass.
// Functions with no communication actions are omitted.
func ExtractCosts(pass *Pass) []FuncCost {
	g := buildCallGraph(pass)
	var out []FuncCost
	for _, f := range pass.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			fc := extractBody(pass, g, name, body)
			if fc != nil {
				out = append(out, *fc)
			}
		})
	}
	return out
}

func extractBody(pass *Pass, g *callGraph, name string, body *ast.BlockStmt) *FuncCost {
	var events []commEvent
	walkBody(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case g.callSynchronizes(call):
			events = append(events, commEvent{pos: call.Pos(), call: call, kind: evSync})
		case isCtxMethod(pass, call, "Send"):
			events = append(events, commEvent{pos: call.Pos(), call: call, kind: evSend})
		}
		return true
	})
	if len(events) == 0 {
		return nil
	}
	var syncs []token.Pos
	for _, e := range events {
		if e.kind == evSync {
			syncs = append(syncs, e.pos)
		}
	}
	loops := syncLoopRanges(body, syncs)

	fc := &FuncCost{Name: name, Pos: body.Pos()}
	cur := StepCostFact{Index: 0}
	closeSeg := func(syncLabel string, isColl, inLoop bool) {
		cur.Sync = syncLabel
		cur.SyncIsColl = isColl
		cur.InLoop = inLoop
		fc.Steps = append(fc.Steps, cur)
		cur = StepCostFact{Index: len(fc.Steps)}
	}
	for _, e := range events {
		switch e.kind {
		case evSend:
			cur.Sends = append(cur.Sends, sendFactOf(pass, e.call, e.pos))
		case evSync:
			label, isColl := syncLabelOf(pass, e.call)
			if cf, ok := collFactOf(pass, e.call, e.pos); ok {
				cur.Colls = append(cur.Colls, cf)
			}
			closeSeg(label, isColl, insideAny(loops, e.pos))
		}
	}
	// A trailing segment with communication but no closing barrier — the
	// helper pattern (caller flushes) or an unmatched send commgraph
	// already reports. Keep the facts; the segment costs no L.
	if len(cur.Sends) > 0 || len(cur.Colls) > 0 {
		closeSeg("", false, false)
	}
	return fc
}

// syncLabelOf names a synchronizing call for the step facts.
func syncLabelOf(pass *Pass, call *ast.CallExpr) (label string, isColl bool) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return "sync", false
	}
	name := fn.Name()
	if collectiveNames[name] {
		return name, true
	}
	switch name {
	case "Sync":
		if len(call.Args) >= 1 {
			return "Sync(" + types.ExprString(call.Args[0]) + ")", false
		}
		return "Sync", false
	case "SyncAll", "Barrier":
		return name, false
	}
	return name + "()", false
}

// sendFactOf folds one Ctx.Send(dst, tag, payload) call.
func sendFactOf(pass *Pass, call *ast.CallExpr, pos token.Pos) SendFact {
	f := SendFact{Pos: pos, Dst: "*", Tag: "*", Bytes: Const(0)}
	if len(call.Args) >= 3 {
		f.Dst = foldInt(pass, call.Args[0])
		f.Tag = foldInt(pass, call.Args[1])
		f.Bytes = sizeExprOf(pass, call.Args[2])
	}
	return f
}

// collFactOf folds one collective call into a (variant, total size)
// fact using the size-argument table.
func collFactOf(pass *Pass, call *ast.CallExpr, pos token.Pos) (CollFact, bool) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return CollFact{}, false
	}
	spec, ok := collSizeSpecs[fn.Name()]
	if !ok || !collectiveNames[fn.Name()] {
		return CollFact{}, false
	}
	if len(call.Args) == 0 || !isCtxType(pass.TypesInfo.TypeOf(call.Args[0])) {
		return CollFact{}, false
	}
	size := SizeSym("?")
	if spec.Arg < len(call.Args) {
		size = sizeExprOf(pass, call.Args[spec.Arg])
	}
	if spec.PerProc {
		size = Mul(Param("p"), size)
	}
	return CollFact{Pos: pos, Name: fn.Name(), Size: size}, true
}

// foldInt renders an int argument as a decimal literal when it is a
// compile-time constant, "*" otherwise.
func foldInt(pass *Pass, e ast.Expr) string {
	if v, ok := constValue(pass, e); ok && v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return "*"
}

// sizeExprOf derives the byte-size expression of a payload argument:
//
//   - make([]T, N): sizeof(T)·N, with N folded when constant;
//   - a composite literal: its folded length;
//   - nil: 0 bytes;
//   - anything else: the symbolic size(len(<source text>)), scaled by
//     the element size for non-byte slices.
func sizeExprOf(pass *Pass, e ast.Expr) *Expr {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" && len(x.Args) >= 2 {
			elem := elemBytes(pass, pass.TypesInfo.TypeOf(e))
			if v, ok := constValue(pass, x.Args[1]); ok {
				return Const(elem * v)
			}
			return Mul(Const(elem), SizeSym(types.ExprString(x.Args[1])))
		}
	case *ast.CompositeLit:
		if t := pass.TypesInfo.TypeOf(e); t != nil {
			if _, ok := t.Underlying().(*types.Slice); ok {
				return Const(elemBytes(pass, t) * float64(len(x.Elts)))
			}
		}
	case *ast.Ident:
		if x.Name == "nil" {
			return Const(0)
		}
	}
	elem := elemBytes(pass, pass.TypesInfo.TypeOf(e))
	scaled := SizeSym("len(" + types.ExprString(e) + ")")
	if elem != 1 {
		return Mul(Const(elem), scaled)
	}
	return scaled
}

// elemBytes returns the element size of a slice type in bytes, 1 for
// byte slices, maps and anything unsized (a map's symbolic size is
// already a byte total).
func elemBytes(pass *Pass, t types.Type) float64 {
	if t == nil {
		return 1
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return 1
	}
	sizes := types.SizesFor("gc", "amd64")
	if sizes == nil {
		sizes = &types.StdSizes{WordSize: 8, MaxAlign: 8}
	}
	if b, ok := sl.Elem().Underlying().(*types.Basic); ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8) {
		return 1
	}
	return float64(sizes.Sizeof(sl.Elem()))
}

// runCostBound reports hand-rolled flat fan-outs in program entry
// bodies: a loop over all processors sending under a pid guard. The
// collective library's own variants are exactly where this shape
// legitimately lives, so only entry bodies (function literals handed to
// an engine) are judged.
func runCostBound(pass *Pass) error {
	entries := programEntryBodies(pass)
	for body := range entries {
		reportFlatFanout(pass, body)
	}
	return nil
}

func reportFlatFanout(pass *Pass, body *ast.BlockStmt) {
	// Walk with an explicit ancestor stack so a Send can see its
	// enclosing loops and pid guards.
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok && len(stack) > 0 {
			return false
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok || !isCtxMethod(pass, call, "Send") {
			return true
		}
		inAllProcsLoop, underPidGuard := false, false
		for _, anc := range stack[:len(stack)-1] {
			switch a := anc.(type) {
			case *ast.ForStmt:
				if a.Cond != nil && mentionsNProcs(a.Cond) {
					inAllProcsLoop = true
				}
			case *ast.RangeStmt:
				if mentionsNProcs(a.X) {
					inAllProcsLoop = true
				}
			case *ast.IfStmt:
				if mentionsPidEquality(a.Cond) {
					underPidGuard = true
				}
			}
		}
		if inAllProcsLoop && underPidGuard {
			pass.Reportf(call.Pos(),
				"flat fan-out: one pid-guarded root sends to every processor in a single superstep (cost g·n·(p−1) at the root); use a broadcast/scatter collective — hbspk-vet -cost -tree quantifies the switchpoint")
		}
		return true
	}
	ast.Inspect(body, visit)
}

func mentionsNProcs(e ast.Expr) bool {
	return strings.Contains(types.ExprString(e), "NProcs()")
}

func mentionsPidEquality(e ast.Expr) bool {
	s := types.ExprString(e)
	return strings.Contains(s, "Pid()") && strings.Contains(s, "==")
}
