package analysis

import (
	"go/ast"
	"go/types"
)

// The interprocedural layer: a package-local call graph over declared
// functions and methods, plus a fact fixpoint. Both commgraph and
// syncflow need one answer cross-function: "does calling fn synchronize
// processors?" — a helper that buries a Sync three calls deep is still
// a superstep boundary at its call site. The graph is package-local by
// design (the loader type-checks one package at a time); calls into
// other packages fall back to the structural isSyncCall test, which
// already recognizes the model's exported vocabulary (Sync, SyncAll,
// Barrier, the collectives).

// callGraph indexes a package's function declarations and the
// synchronizes-transitively fact.
type callGraph struct {
	info *types.Info
	// decls maps each declared function or method to its body.
	decls map[*types.Func]*ast.FuncDecl
	// syncs holds the fixpoint: fn contains a synchronizing call,
	// directly or through any chain of package-local callees.
	syncs map[*types.Func]bool
}

// sharedCallGraph returns the package's call graph, building it once
// and caching it on the Package when the driver supplied one; standalone
// passes (tests, the cost exporter) fall back to a private build. The
// graph depends only on the package's syntax and types, never on the
// requesting analyzer, so sharing is safe.
func sharedCallGraph(pass *Pass) *callGraph {
	if pass.pkg == nil {
		return buildCallGraph(pass)
	}
	if pass.pkg.cg == nil {
		pass.pkg.cg = buildCallGraph(pass)
	}
	return pass.pkg.cg
}

// buildCallGraph indexes the pass's files and runs the fixpoint.
func buildCallGraph(pass *Pass) *callGraph {
	g := &callGraph{
		info:  pass.TypesInfo,
		decls: make(map[*types.Func]*ast.FuncDecl),
		syncs: make(map[*types.Func]bool),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				g.decls[obj] = fd
			}
		}
	}

	// Seed with direct synchronizers, then propagate caller-ward until
	// stable: a function synchronizes if any call in its body does.
	//
	// Besides direct calls, a value-position reference to a function — a
	// method value (f := c.Sync), a function value passed around or
	// called through a variable — is treated as a call edge at the point
	// the value is taken. That over-approximates (taking the value is
	// not calling it) but never under-approximates within the package:
	// the synchronizes fact must be conservative, since a missed
	// boundary turns into a false "unmatched send" and a false clean
	// bill on a desync.
	edges := make(map[*types.Func][]*types.Func) // callee -> callers
	for obj, fd := range g.decls {
		direct := false
		// calleeNodes are the Fun nodes of direct calls; references
		// elsewhere are value positions.
		calleeNodes := make(map[ast.Node]bool)
		walkBody(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				calleeNodes[ast.Unparen(call.Fun)] = true
			}
			return true
		})
		walkBody(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if isSyncCall(pass.TypesInfo, x) {
					direct = true
				}
				if callee := calleeFunc(pass.TypesInfo, x); callee != nil {
					if _, local := g.decls[callee]; local {
						edges[callee] = append(edges[callee], obj)
					}
				}
			case *ast.Ident:
				if calleeNodes[ast.Node(x)] {
					return true
				}
				if fn, ok := pass.TypesInfo.Uses[x].(*types.Func); ok {
					if _, local := g.decls[fn]; local {
						edges[fn] = append(edges[fn], obj)
					}
					if fn.Name() == "SyncAll" {
						direct = true
					}
				}
			case *ast.SelectorExpr:
				if calleeNodes[ast.Node(x)] {
					return true
				}
				sel, ok := pass.TypesInfo.Selections[x]
				if !ok || sel.Kind() != types.MethodVal {
					return true
				}
				fn, ok := sel.Obj().(*types.Func)
				if !ok {
					return true
				}
				if _, local := g.decls[fn]; local {
					edges[fn] = append(edges[fn], obj)
				}
				if (fn.Name() == "Sync" || fn.Name() == "Barrier") && isCtxType(pass.TypesInfo.TypeOf(x.X)) {
					direct = true
				}
			}
			return true
		})
		if direct {
			g.syncs[obj] = true
		}
	}
	work := make([]*types.Func, 0, len(g.syncs))
	for fn := range g.syncs {
		work = append(work, fn)
	}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range edges[fn] {
			if !g.syncs[caller] {
				g.syncs[caller] = true
				work = append(work, caller)
			}
		}
	}
	return g
}

// callSynchronizes reports whether the call is a superstep boundary:
// a structural sync (Sync/SyncAll/Barrier/collective) or a call to a
// package-local function that synchronizes transitively.
func (g *callGraph) callSynchronizes(call *ast.CallExpr) bool {
	if isSyncCall(g.info, call) {
		return true
	}
	fn := calleeFunc(g.info, call)
	return fn != nil && g.syncs[fn]
}
