package analysis

import (
	"go/ast"
	"go/types"
)

// The interprocedural layer: a package-local call graph over declared
// functions and methods, plus a fact fixpoint. Both commgraph and
// syncflow need one answer cross-function: "does calling fn synchronize
// processors?" — a helper that buries a Sync three calls deep is still
// a superstep boundary at its call site. The graph is package-local by
// design (the loader type-checks one package at a time); calls into
// other packages fall back to the structural isSyncCall test, which
// already recognizes the model's exported vocabulary (Sync, SyncAll,
// Barrier, the collectives).

// callGraph indexes a package's function declarations and the
// synchronizes-transitively fact.
type callGraph struct {
	pass *Pass
	// decls maps each declared function or method to its body.
	decls map[*types.Func]*ast.FuncDecl
	// syncs holds the fixpoint: fn contains a synchronizing call,
	// directly or through any chain of package-local callees.
	syncs map[*types.Func]bool
}

// buildCallGraph indexes the pass's files and runs the fixpoint.
func buildCallGraph(pass *Pass) *callGraph {
	g := &callGraph{
		pass:  pass,
		decls: make(map[*types.Func]*ast.FuncDecl),
		syncs: make(map[*types.Func]bool),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				g.decls[obj] = fd
			}
		}
	}

	// Seed with direct synchronizers, then propagate caller-ward until
	// stable: a function synchronizes if any call in its body does.
	edges := make(map[*types.Func][]*types.Func) // callee -> callers
	for obj, fd := range g.decls {
		direct := false
		walkBody(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isSyncCall(pass.TypesInfo, call) {
				direct = true
			}
			if callee := calleeFunc(pass.TypesInfo, call); callee != nil {
				if _, local := g.decls[callee]; local {
					edges[callee] = append(edges[callee], obj)
				}
			}
			return true
		})
		if direct {
			g.syncs[obj] = true
		}
	}
	work := make([]*types.Func, 0, len(g.syncs))
	for fn := range g.syncs {
		work = append(work, fn)
	}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range edges[fn] {
			if !g.syncs[caller] {
				g.syncs[caller] = true
				work = append(work, caller)
			}
		}
	}
	return g
}

// callSynchronizes reports whether the call is a superstep boundary:
// a structural sync (Sync/SyncAll/Barrier/collective) or a call to a
// package-local function that synchronizes transitively.
func (g *callGraph) callSynchronizes(call *ast.CallExpr) bool {
	if isSyncCall(g.pass.TypesInfo, call) {
		return true
	}
	fn := calleeFunc(g.pass.TypesInfo, call)
	return fn != nil && g.syncs[fn]
}
