package analysis

import (
	"go/ast"

	"hbspk/internal/plan"
	"hbspk/internal/model"
)

// VariantCheckName identifies the collective-variant advice analyzer.
// Unlike the correctness suite it needs a concrete machine tree, so it
// is constructed per invocation (hbspk-vet -cost -tree) rather than
// joining All(); its findings are advice, not errors — hbspk-vet
// reports them under a distinct exit code.
const VariantCheckName = "variantcheck"

// VariantCheck returns an analyzer that evaluates every collective
// callsite whose payload size is statically known against the shipped
// variants' closed-form costs on tree, and reports when a statically
// knowable switch — flat to hierarchical, one-phase to two-phase —
// wins by more than ratio. This is the paper's §4.4 switchpoint
// reasoning run at vet time: the crossovers (n* = L/(g·(m−2−r_s)) and
// its hierarchical analogues) are properties of the calibrated model,
// so a callsite on the wrong side of one is visible without running
// the program.
func VariantCheck(tree *model.Tree, ratio float64) *Analyzer {
	if ratio < 1 {
		ratio = 1
	}
	return &Analyzer{
		Name: VariantCheckName,
		Doc:  "advise collective-variant switches the machine tree makes statically profitable",
		Run: func(pass *Pass) error {
			return runVariantCheck(pass, tree, ratio)
		},
	}
}

func runVariantCheck(pass *Pass, tree *model.Tree, ratio float64) error {
	env := &CostEnv{Tree: tree}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			cf, ok := collFactOf(pass, call, call.Pos())
			if !ok {
				return true
			}
			v, ok := plan.VariantByName(cf.Name)
			if !ok {
				return true
			}
			// Advice only when the payload size folds: a symbolic size has
			// no fixed side of the crossover.
			nf, err := cf.Size.Eval(env)
			if err != nil || nf < 1 {
				return true
			}
			size := int(nf)
			called := v.Predict(tree, size)
			best, bestCost, ok := plan.BestVariant(tree, v.Family, size)
			if !ok || best.Name == v.Name || bestCost <= 0 {
				return true
			}
			if called > bestCost*ratio {
				pass.Reportf(call.Pos(),
					"collective %s at n=%d bytes costs %.4g on this tree; %s costs %.4g (%.1fx cheaper) — switch is statically knowable",
					cf.Name, size, called, best.Name, bestCost, called/bestCost)
			}
			return true
		})
	}
	return nil
}
