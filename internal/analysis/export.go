package analysis

import (
	"path/filepath"

	"hbspk/internal/obsv"
)

// CommGraphDocOf exports the static communication topology of the
// loaded packages in the stable hbspk-commgraph/1 wire format: per
// function, per superstep segment, the send edges (endpoints and tags
// folded to decimal literals where the analysis can, "*" where it
// cannot), the collective calls, and the segment's symbolic cost-bound
// expression. The document is the static half of the conformance gate
// (obsv.CheckConformance) and a machine-readable artifact in its own
// right (hbspk-vet -commgraph-out).
func CommGraphDocOf(pkgs []*Package, module string) *obsv.CommGraphDoc {
	doc := &obsv.CommGraphDoc{Schema: obsv.CommGraphSchema, Module: module}
	for _, pkg := range pkgs {
		pass := &Pass{
			Analyzer:  CostBound,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(Diagnostic) {},
		}
		pg := obsv.PkgGraph{Path: pkg.Path}
		for _, fc := range ExtractCosts(pass) {
			pos := pkg.Fset.Position(fc.Pos)
			fg := obsv.FuncGraph{
				Name: fc.Name,
				File: filepath.Base(pos.Filename),
				Line: pos.Line,
			}
			for _, st := range fc.Steps {
				topo := obsv.StepTopo{
					Index: st.Index,
					Sync:  st.Sync,
					Loop:  st.InLoop,
					Cost:  st.Cost().String(),
				}
				for _, s := range st.Sends {
					topo.Edges = append(topo.Edges, obsv.CommEdge{
						Src:   "*", // the sender is whichever pid executes the line
						Dst:   s.Dst,
						Tag:   s.Tag,
						Bytes: s.Bytes.String(),
					})
				}
				for _, c := range st.Colls {
					topo.Collectives = append(topo.Collectives, c.Name)
				}
				fg.Steps = append(fg.Steps, topo)
			}
			pg.Funcs = append(pg.Funcs, fg)
		}
		if len(pg.Funcs) > 0 {
			doc.Packages = append(doc.Packages, pg)
		}
	}
	doc.Normalize()
	return doc
}
