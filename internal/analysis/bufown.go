package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BufOwn is a path-sensitive linear-ownership checker for the
// refcounted wire-buffer pool. Every pvm.Message drawn from the mailbox
// (Recv, RecvTimeout, RecvContext, TryRecv, the elements of
// TryRecvAll) holds one reference to a pooled wire record; the holder
// must release it on every path, exactly once, and must not touch the
// wire bytes afterwards. The analyzer interprets each function body
// path-sensitively over a small ownership lattice
//
//	owned → released | transferred | escaped
//
// with a Maybe* tier for states weakened at joins, and reports
//
//   - a message still owned at a return, a panic, or the end of its
//     block (the leak on an early error return is the classic case);
//   - a second Release, including an explicit Release with a deferred
//     one pending;
//   - Buffer() on a released message, or any use of a *Buffer that
//     aliases one — the bytes may already back an unrelated message;
//   - a Send of a buffer whose ownership was already transferred by an
//     earlier Send (the path-sensitive deepening of bufreuse's
//     source-ordered resend rule);
//   - Release while the message's bytes are in flight: m.Buffer()
//     wraps the pooled record, so handing it to Send and then releasing
//     recycles bytes the receiver hasn't read yet.
//
// The checker is deliberately conservative at joins: a state weakened
// to MaybeOwned or MaybeTransferred never reports a leak on its own
// (only a definite re-send does), acquisition guarded by the idiomatic
// `m, err := t.Recv(...); if err != nil { return err }` refines to
// unowned on the error arm, and a message handed to any call, stored,
// returned, or captured by a closure escapes the analysis. Audited
// exceptions carry `//hbspk:ignore bufown`.
var BufOwn = &Analyzer{
	Name: "bufown",
	Doc:  "enforce release-exactly-once ownership of pooled wire buffers, path-sensitively",
	Run:  runBufOwn,
}

func runBufOwn(pass *Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			w := &ownWalker{pass: pass, reported: make(map[token.Pos]bool)}
			w.lastRange = collectLastRanges(pass.TypesInfo, body)
			w.block(body.List, newOwnEnv())
		})
	}
	return nil
}

// collectLastRanges maps each ranged-over local to the final RangeStmt
// that iterates it. Ownership of a drained batch is consumed once, by
// the last loop over it; earlier passes (sizing, validation) borrow the
// elements without taking on the release obligation.
func collectLastRanges(info *types.Info, body *ast.BlockStmt) map[types.Object]*ast.RangeStmt {
	last := make(map[types.Object]*ast.RangeStmt)
	ast.Inspect(body, func(n ast.Node) bool {
		if st, ok := n.(*ast.RangeStmt); ok {
			if obj := identObj(info, st.X); obj != nil {
				last[obj] = st
			}
		}
		return true
	})
	return last
}

// ownState is the per-resource lattice. The Maybe tier records joins
// that weakened a definite state; every rule that reports on a definite
// state stays silent on its Maybe counterpart, except the re-send of a
// MaybeTransferred buffer, which is a bug on the path that sent it.
type ownState int

const (
	stOwned ownState = iota
	stMaybeOwned
	stUnowned // acquisition failed on this path (err != nil arm)
	stReleased
	stTransferred
	stMaybeTransferred
	stEscaped
)

const (
	resMsg = iota // a pvm.Message holding a wire reference
	resBuf        // a *pvm.Buffer from NewBuffer (send-side)
)

// res is the tracked state of one message or buffer local.
type res struct {
	kind     int
	state    ownState
	acq      token.Pos    // acquisition site, for leak messages
	pairObj  types.Object // the err/ok bound with the acquisition
	pairIsOk bool         // pairObj is TryRecv's bool, not an error
	deferred bool         // a defer m.Release() is registered
	sentAt   token.Pos    // where ownership transferred
	aliasOf  types.Object // buffer local -> owning message
	elemOf   types.Object // range element -> its TryRecvAll slice
}

// ownEnv maps locals to ownership state; sliceSrc marks locals holding
// a TryRecvAll result whose elements acquire ownership when ranged.
type ownEnv struct {
	vars     map[types.Object]*res
	sliceSrc map[types.Object]bool
}

func newOwnEnv() *ownEnv {
	return &ownEnv{vars: make(map[types.Object]*res), sliceSrc: make(map[types.Object]bool)}
}

func (e *ownEnv) clone() *ownEnv {
	c := newOwnEnv()
	for obj, r := range e.vars {
		cp := *r
		c.vars[obj] = &cp
	}
	for obj := range e.sliceSrc {
		c.sliceSrc[obj] = true
	}
	return c
}

// merge folds b into a at a control-flow join. States agree or weaken:
// the Maybe tier absorbs disagreement, escape absorbs everything, and a
// resource tracked on only one side keeps its state (it was declared in
// that arm; its block-end check already ran).
func (e *ownEnv) merge(b *ownEnv) {
	for obj, rb := range b.vars {
		ra, ok := e.vars[obj]
		if !ok {
			cp := *rb
			e.vars[obj] = &cp
			continue
		}
		ra.deferred = ra.deferred && rb.deferred
		if ra.state == rb.state {
			continue
		}
		ra.state = joinState(ra.state, rb.state)
		if ra.sentAt == 0 {
			ra.sentAt = rb.sentAt
		}
	}
	for obj := range b.sliceSrc {
		e.sliceSrc[obj] = true
	}
}

func joinState(a, b ownState) ownState {
	if a == stEscaped || b == stEscaped {
		return stEscaped
	}
	hasOwned := a == stOwned || b == stOwned || a == stMaybeOwned || b == stMaybeOwned
	hasTransferred := a == stTransferred || b == stTransferred || a == stMaybeTransferred || b == stMaybeTransferred
	switch {
	case hasTransferred && hasOwned:
		return stMaybeTransferred
	case hasTransferred:
		return stTransferred
	case hasOwned:
		return stMaybeOwned
	}
	return stReleased // released ⊔ unowned: obligation met either way
}

// flow classifies how a statement list ends.
type flow int

const (
	flowNormal flow = iota
	flowJump        // break/continue/goto: leaves the block, not the function
	flowExit        // return or panic
)

// ownWalker interprets one function body. quiet suppresses reports
// during the pre-merge pass over loop bodies; reported dedupes the
// replayed pass.
type ownWalker struct {
	pass      *Pass
	quiet     int
	reported  map[token.Pos]bool
	lastRange map[types.Object]*ast.RangeStmt
}

func (w *ownWalker) reportf(pos, end token.Pos, format string, args ...any) {
	if w.quiet > 0 || w.reported[pos] {
		return
	}
	w.reported[pos] = true
	w.pass.ReportRangef(pos, end, format, args...)
}

// block interprets a statement list, then leak-checks every resource
// acquired inside it that is still definitely owned on the fallthrough
// exit — the variable's scope is over, so nothing can release it later.
func (w *ownWalker) block(stmts []ast.Stmt, env *ownEnv) flow {
	before := make(map[types.Object]bool, len(env.vars))
	for obj := range env.vars {
		before[obj] = true
	}
	fl := w.stmts(stmts, env)
	for obj, r := range env.vars {
		if before[obj] {
			continue
		}
		if fl == flowNormal && r.kind == resMsg && r.state == stOwned && !r.deferred {
			w.reportf(r.acq, r.acq,
				"wire message %q is not released on every path: the pooled buffer leaks", obj.Name())
		}
		delete(env.vars, obj)
	}
	return fl
}

func (w *ownWalker) stmts(stmts []ast.Stmt, env *ownEnv) flow {
	for _, s := range stmts {
		if fl := w.stmt(s, env); fl != flowNormal {
			return fl
		}
	}
	return flowNormal
}

// exitCheck reports every message still definitely owned when the
// function exits here; deferred releases and escapes discharge the
// obligation, Maybe states stay silent by design.
func (w *ownWalker) exitCheck(pos, end token.Pos, env *ownEnv, onPanic bool) {
	for obj, r := range env.vars {
		if r.kind != resMsg || r.state != stOwned || r.deferred {
			continue
		}
		if onPanic {
			w.reportf(pos, end,
				"wire message %q (acquired at line %d) leaks if this panic unwinds: release it with defer",
				obj.Name(), w.pass.Fset.Position(r.acq).Line)
		} else {
			w.reportf(pos, end,
				"wire message %q (acquired at line %d) is not released on this return path",
				obj.Name(), w.pass.Fset.Position(r.acq).Line)
		}
	}
}

func (w *ownWalker) stmt(s ast.Stmt, env *ownEnv) flow {
	switch st := s.(type) {
	case nil:
		return flowNormal
	case *ast.BlockStmt:
		return w.block(st.List, env)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if id, isId := ast.Unparen(call.Fun).(*ast.Ident); isId && id.Name == "panic" {
				w.useExprs(call.Args, env)
				w.exitCheck(call.Pos(), call.End(), env, true)
				return flowExit
			}
		}
		w.useExpr(st.X, env)
		return flowNormal
	case *ast.ReturnStmt:
		// Returned resources transfer to the caller before the leak
		// check: `return m, nil` hands the obligation over.
		for _, e := range st.Results {
			if obj := identObj(w.pass.TypesInfo, e); obj != nil {
				if r, ok := env.vars[obj]; ok {
					r.state = stEscaped
					continue
				}
			}
			w.useExpr(e, env)
		}
		w.exitCheck(st.Pos(), st.End(), env, false)
		return flowExit
	case *ast.BranchStmt:
		return flowJump
	case *ast.AssignStmt:
		w.assign(st, env)
		return flowNormal
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.useExpr(v, env)
					}
				}
			}
		}
		return flowNormal
	case *ast.DeferStmt:
		w.deferStmt(st, env)
		return flowNormal
	case *ast.GoStmt:
		// The goroutine's schedule is unknowable: everything it touches
		// escapes.
		w.escapeIn(st.Call, env)
		return flowNormal
	case *ast.SendStmt:
		w.useExpr(st.Chan, env)
		w.escapeIn(st.Value, env)
		return flowNormal
	case *ast.IncDecStmt:
		w.useExpr(st.X, env)
		return flowNormal
	case *ast.IfStmt:
		return w.ifStmt(st, env)
	case *ast.ForStmt:
		w.stmt(st.Init, env)
		w.useExpr(st.Cond, env)
		w.loopBody(func(e *ownEnv) flow {
			fl := w.block(st.Body.List, e)
			w.stmt(st.Post, e)
			return fl
		}, env)
		return flowNormal
	case *ast.RangeStmt:
		return w.rangeStmt(st, env)
	case *ast.SwitchStmt:
		w.stmt(st.Init, env)
		w.useExpr(st.Tag, env)
		return w.caseArms(st.Body.List, env)
	case *ast.TypeSwitchStmt:
		w.stmt(st.Init, env)
		w.stmt(st.Assign, env)
		return w.caseArms(st.Body.List, env)
	case *ast.SelectStmt:
		var arms [][]ast.Stmt
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			body := cc.Body
			if cc.Comm != nil {
				body = append([]ast.Stmt{cc.Comm}, body...)
			}
			arms = append(arms, body)
		}
		return w.joinArms(arms, true, env)
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, env)
	}
	return flowNormal
}

// caseArms interprets a switch body: each clause from a copy of the
// incoming state, joined afterwards, with an implicit empty arm when no
// default exists.
func (w *ownWalker) caseArms(clauses []ast.Stmt, env *ownEnv) flow {
	hasDefault := false
	var arms [][]ast.Stmt
	for _, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			w.useExpr(e, env)
		}
		arms = append(arms, cc.Body)
	}
	return w.joinArms(arms, !hasDefault, env)
}

// joinArms runs each arm from a clone of env and merges the survivors;
// implicitEmpty adds the fall-past arm of a switch without default (or
// a select that may not fire any tracked case).
func (w *ownWalker) joinArms(arms [][]ast.Stmt, implicitEmpty bool, env *ownEnv) flow {
	var outs []*ownEnv
	allExit := len(arms) > 0
	for _, body := range arms {
		e := env.clone()
		fl := w.block(body, e)
		if fl != flowExit {
			allExit = false
		}
		if fl != flowExit {
			outs = append(outs, e)
		}
	}
	if implicitEmpty {
		outs = append(outs, env.clone())
		allExit = false
	}
	if len(outs) == 0 {
		if allExit {
			return flowExit
		}
		return flowNormal
	}
	first := outs[0]
	for _, o := range outs[1:] {
		first.merge(o)
	}
	*env = *first
	return flowNormal
}

// loopBody interprets a loop body twice: a quiet pass whose result is
// merged into the entry state (the back edge), then a reporting pass
// over the weakened state, so a Release or Send that reaches itself
// around the loop is caught without double-reporting.
func (w *ownWalker) loopBody(body func(*ownEnv) flow, env *ownEnv) {
	pre := env.clone()
	w.quiet++
	probe := env.clone()
	body(probe)
	w.quiet--
	pre.merge(probe)
	out := pre.clone()
	body(out)
	pre.merge(out)
	*env = *pre
}

func (w *ownWalker) ifStmt(st *ast.IfStmt, env *ownEnv) flow {
	w.stmt(st.Init, env)
	w.useExpr(st.Cond, env)

	thenEnv := env.clone()
	elseEnv := env.clone()
	w.refine(st.Cond, thenEnv, elseEnv)

	thenFl := w.block(st.Body.List, thenEnv)
	elseFl := flowNormal
	switch e := st.Else.(type) {
	case *ast.BlockStmt:
		elseFl = w.block(e.List, elseEnv)
	case *ast.IfStmt:
		elseFl = w.ifStmt(e, elseEnv)
	}

	switch {
	case thenFl == flowExit && elseFl == flowExit:
		return flowExit
	case thenFl == flowExit:
		*env = *elseEnv
		return elseFl
	case elseFl == flowExit:
		*env = *thenEnv
		return thenFl
	default:
		thenEnv.merge(elseEnv)
		*env = *thenEnv
		if thenFl == flowJump && elseFl == flowJump {
			return flowJump
		}
		return flowNormal
	}
}

// refine narrows acquisition state through the guard idioms: in
// `if err != nil`, the then-arm's paired message was never delivered;
// in `if ok` (TryRecv), the then-arm owns it and the else-arm does not.
// A guard mentioning the paired variable in any shape the refiner does
// not recognize weakens the message to MaybeOwned on both arms.
func (w *ownWalker) refine(cond ast.Expr, thenEnv, elseEnv *ownEnv) {
	if cond == nil {
		return
	}
	handled := make(map[types.Object]bool)
	setPair := func(pair types.Object, unownedArm *ownEnv) {
		for obj, r := range thenEnv.vars { // clones share the key set
			if r.pairObj != pair {
				continue
			}
			handled[pair] = true
			if ru := unownedArm.vars[obj]; ru != nil && ru.state == stOwned {
				ru.state = stUnowned
			}
		}
	}
	var apply func(e ast.Expr)
	apply = func(e ast.Expr) {
		switch x := ast.Unparen(e).(type) {
		case *ast.BinaryExpr:
			if x.Op == token.LAND {
				// Both operands hold on the then-arm; the else-arm learns
				// nothing, which is sound (no refinement there).
				applyThenOnly(w, x.X, thenEnv, handled)
				applyThenOnly(w, x.Y, thenEnv, handled)
				return
			}
			obj, isNil := nilCompare(w.pass.TypesInfo, x)
			if obj == nil {
				return
			}
			if x.Op == token.NEQ && isNil { // err != nil: then-arm unowned
				setPair(obj, thenEnv)
			} else if x.Op == token.EQL && isNil { // err == nil: else-arm unowned
				setPair(obj, elseEnv)
			}
		case *ast.UnaryExpr:
			if x.Op == token.NOT { // !ok: then-arm unowned
				if obj := identObj(w.pass.TypesInfo, x.X); obj != nil {
					setPair(obj, thenEnv)
				}
			}
		case *ast.Ident: // bare ok: else-arm unowned
			if obj := identObj(w.pass.TypesInfo, x); obj != nil {
				setPair(obj, elseEnv)
			}
		}
	}
	apply(cond)

	// Unrecognized guards over a paired variable: weaken rather than
	// guess, so neither arm can report a definite leak.
	ast.Inspect(cond, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		pair := identObj(w.pass.TypesInfo, id)
		if pair == nil || handled[pair] {
			return true
		}
		for _, e := range []*ownEnv{thenEnv, elseEnv} {
			for _, r := range e.vars {
				if r.pairObj == pair && r.state == stOwned {
					r.state = stMaybeOwned
				}
			}
		}
		return true
	})
}

// applyThenOnly refines one conjunct of an && guard on the then-arm.
func applyThenOnly(w *ownWalker, e ast.Expr, thenEnv *ownEnv, handled map[types.Object]bool) {
	refineArm := func(pair types.Object, unowned bool) {
		for obj, r := range thenEnv.vars {
			if r.pairObj != pair {
				continue
			}
			handled[pair] = true
			if unowned && r.state == stOwned {
				thenEnv.vars[obj].state = stUnowned
			}
		}
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		obj, isNil := nilCompare(w.pass.TypesInfo, x)
		if obj != nil && isNil {
			refineArm(obj, x.Op == token.NEQ)
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			if obj := identObj(w.pass.TypesInfo, x.X); obj != nil {
				refineArm(obj, true)
			}
		}
	case *ast.Ident:
		if obj := identObj(w.pass.TypesInfo, x); obj != nil {
			refineArm(obj, false)
		}
	}
}

// nilCompare decomposes `x != nil` / `x == nil`, returning x's object.
func nilCompare(info *types.Info, x *ast.BinaryExpr) (types.Object, bool) {
	isNilIdent := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if isNilIdent(x.Y) {
		return identObj(info, x.X), true
	}
	if isNilIdent(x.X) {
		return identObj(info, x.Y), true
	}
	return nil, false
}
