package analysis

import (
	"go/ast"
	"go/token"
)

// LockOrder flags two mutex hazards in one package:
//
//   - acquiring any other mutex while holding pvm.System's state lock —
//     System.mu is a leaf lock by contract (every System method releases
//     it before touching a Task or barrier), and nesting under it
//     deadlocks against the task/barrier paths that lock in the other
//     order;
//   - inverted acquisition orders: function A locks T1.mu then T2.mu
//     while function B locks T2.mu then T1.mu — the classic ABBA
//     deadlock.
//
// Locks are keyed by the named type owning the mutex field ("System.mu",
// "crun.mu"). The analysis is intra-function and source-ordered: a
// deferred Unlock holds to the end of the function, an explicit Unlock
// releases at its statement.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "flag mutex acquisition while holding the pvm.System leaf lock, and ABBA order inversions",
	Run:  runLockOrder,
}

// lockUse is one Lock call with the set of keys already held there.
type lockUse struct {
	key  string
	pos  token.Pos
	held []string
	fn   string
}

func runLockOrder(pass *Pass) error {
	var uses []lockUse
	for _, f := range pass.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			uses = append(uses, collectLockUses(pass, name, body)...)
		})
	}

	// Leaf-lock rule: nothing may be acquired under System.mu.
	for _, u := range uses {
		for _, h := range u.held {
			if isSystemLock(h) && !isSystemLock(u.key) {
				pass.Reportf(u.pos, "acquiring %s while holding %s: pvm.System's lock is a leaf lock, release it first", u.key, h)
			}
		}
	}

	// ABBA rule: the same ordered pair in both directions anywhere in
	// the package.
	type pair struct{ first, second string }
	firstPos := make(map[pair]token.Pos)
	for _, u := range uses {
		for _, h := range u.held {
			if h == u.key {
				continue
			}
			p := pair{h, u.key}
			if _, ok := firstPos[p]; !ok {
				firstPos[p] = u.pos
			}
		}
	}
	for p, pos := range firstPos {
		inv := pair{p.second, p.first}
		if _, ok := firstPos[inv]; ok {
			pass.Reportf(pos, "lock order inversion: %s is acquired while holding %s here, and %s while holding %s elsewhere in the package", p.second, p.first, p.first, p.second)
		}
	}
	return nil
}

// collectLockUses walks one body in source order maintaining the held
// set.
func collectLockUses(pass *Pass, fnName string, body *ast.BlockStmt) []lockUse {
	type lockEvent struct {
		pos     token.Pos
		key     string
		lock    bool // false = unlock
		forever bool // deferred unlock: never releases within the body
	}
	var events []lockEvent
	walkBody(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			if key, isLock, ok := mutexCall(pass, st.Call); ok && !isLock {
				events = append(events, lockEvent{pos: st.Pos(), key: key, lock: false, forever: true})
			}
			return false
		case *ast.CallExpr:
			if key, isLock, ok := mutexCall(pass, st); ok {
				events = append(events, lockEvent{pos: st.Pos(), key: key, lock: isLock})
			}
		}
		return true
	})
	// Source order approximates execution order intra-function.
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].pos < events[j-1].pos; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
	var held []string
	var uses []lockUse
	for _, ev := range events {
		if ev.lock {
			uses = append(uses, lockUse{key: ev.key, pos: ev.pos, held: append([]string(nil), held...), fn: fnName})
			held = append(held, ev.key)
		} else if !ev.forever {
			for i := len(held) - 1; i >= 0; i-- {
				if held[i] == ev.key {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		}
	}
	return uses
}

// mutexCall recognizes x.mu.Lock()/Unlock() (and RLock/RUnlock) where mu
// is a sync.Mutex/RWMutex-shaped field of a named struct, returning the
// lock key "Type.field".
func mutexCall(pass *Pass, call *ast.CallExpr) (key string, isLock, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", false, false
	}
	var lock bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		lock = true
	case "Unlock", "RUnlock":
		lock = false
	default:
		return "", false, false
	}
	mt := pass.TypesInfo.TypeOf(sel.X)
	if mt == nil {
		return "", false, false
	}
	name := typeNameOf(mt)
	if name != "Mutex" && name != "RWMutex" {
		return "", false, false
	}
	// The mutex expression: a field selection owner.field.
	fieldSel, okField := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !okField {
		// A bare local mutex cannot participate in cross-type ordering.
		return "", false, false
	}
	ownerType := pass.TypesInfo.TypeOf(fieldSel.X)
	owner := typeNameOf(ownerType)
	if owner == "" {
		return "", false, false
	}
	return owner + "." + fieldSel.Sel.Name, lock, true
}

// isSystemLock matches the pvm.System state lock.
func isSystemLock(key string) bool { return key == "System.mu" }
