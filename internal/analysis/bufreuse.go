package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BufReuse flags aliasing hazards around sent message data:
//
//   - packing into a *pvm.Buffer after it has been handed to
//     Task.Send/Mcast — ownership of the buffer's wire record transfers
//     to the fabric at the send, so later Pack calls write into bytes
//     the receiver (or, after recycling, an unrelated message) may be
//     reading;
//   - sending a *pvm.Buffer twice — a buffer is sendable exactly once
//     (the runtime rejects the resend), pack a fresh buffer per send;
//   - mutating a []byte payload after it was queued with Ctx.Send —
//     engines may deliver the sender's slice itself (hbsp.Message
//     documents "engines may share the sender's bytes"), so writes,
//     appends and copies into the slice race with the receiver.
//
// The check is per-function and source-ordered: a reuse is reported when
// it appears after a send of the same variable with no intervening
// reassignment. Rebinding the variable to a fresh buffer/slice resets
// the tracking. Deferred calls are replayed after the body in LIFO
// order — the execution order, not the textual one — so a
// `defer t.Send(…, buf)` ahead of the packing code is not a
// pack-after-send, and `defer msg.Release()` is plain cleanup, not a
// reuse (its lifetime rules belong to bufown).
var BufReuse = &Analyzer{
	Name: "bufreuse",
	Doc:  "flag pvm.Buffer packing and payload mutation after the data was sent",
	Run:  runBufReuse,
}

func runBufReuse(pass *Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			checkBufReuse(pass, body)
		})
	}
	return nil
}

// sentEvent records where a variable's bytes were last sent.
type sentEvent struct {
	pos  token.Pos
	kind string // "buffer" or "payload"
}

func checkBufReuse(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	sent := make(map[types.Object]sentEvent)

	// Events in source order: position ordering within one body is the
	// analyzer's approximation of control flow (documented in Doc).
	// Deferred statements run after the body, last defer first: their
	// events replay in a later phase, keyed so LIFO order holds.
	type event struct {
		phase int
		pos   token.Pos
		fn    func()
	}
	var events []event
	defers := collectDeferRanges(body)
	add := func(pos token.Pos, fn func()) {
		events = append(events, event{defers.phaseOf(pos), pos, fn})
	}

	walkBody(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			// append/copy into a sent payload mutate shared bytes.
			if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && len(st.Args) > 0 {
				if bi, okb := info.Uses[id].(*types.Builtin); okb && (bi.Name() == "append" || bi.Name() == "copy") {
					if obj := payloadObj(info, st.Args[0]); obj != nil {
						pos := st.Pos()
						biName := bi.Name()
						add(pos, func() {
							if ev, ok := sent[obj]; ok && ev.kind == "payload" {
								pass.Reportf(pos, "%s into payload %q already queued by Send at line %d: engines may share the sender's bytes", biName, obj.Name(), pass.Fset.Position(ev.pos).Line)
							}
						})
					}
				}
			}
			fn := calleeFunc(info, st)
			if fn == nil {
				return true
			}
			name := fn.Name()
			// Sends: Task.Send(dst, tag, *Buffer) / Task.Mcast(dsts, tag,
			// *Buffer) mark the buffer; Ctx.Send(dst, tag, payload) marks
			// the payload slice.
			if rt := receiverType(info, st); rt != nil {
				switch {
				case (name == "Send" || name == "Mcast") && len(st.Args) == 3 && typeNameOf(info.TypeOf(st.Args[2])) == "Buffer":
					if obj := identObj(info, st.Args[2]); obj != nil {
						pos := st.Pos()
						add(pos, func() {
							if ev, ok := sent[obj]; ok && ev.kind == "buffer" {
								pass.Reportf(pos, "buffer %q resent: ownership transferred at the send on line %d, a buffer is sendable exactly once", obj.Name(), pass.Fset.Position(ev.pos).Line)
							}
							sent[obj] = sentEvent{pos, "buffer"}
						})
					}
				case name == "Send" && isCtxType(rt) && len(st.Args) == 3:
					if obj := payloadObj(info, st.Args[2]); obj != nil {
						pos := st.Pos()
						add(pos, func() { sent[obj] = sentEvent{pos, "payload"} })
					}
				case strings.HasPrefix(name, "Pack") && typeNameOf(rt) == "Buffer":
					if obj := identObj(info, receiverExpr(st)); obj != nil {
						pos := st.Pos()
						add(pos, func() {
							if ev, ok := sent[obj]; ok && ev.kind == "buffer" {
								pass.Reportf(pos, "%s into buffer %q already sent at line %d: the send owns the buffer's bytes, pack into a fresh one", name, obj.Name(), pass.Fset.Position(ev.pos).Line)
							}
						})
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				var rhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				}
				// Indexed store payload[i] = x mutates shared bytes.
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if obj := payloadObj(info, ix.X); obj != nil {
						pos := lhs.Pos()
						add(pos, func() {
							if ev, ok := sent[obj]; ok {
								pass.Reportf(pos, "store into %q already sent at line %d: engines may share the sender's bytes", obj.Name(), pass.Fset.Position(ev.pos).Line)
							}
						})
					}
					continue
				}
				// Wholesale rebinding resets tracking, unless the new
				// value still aliases the old one (append(x, ...)).
				if obj := identObj(info, lhs); obj != nil {
					if rhs != nil && exprMentions(info, rhs, obj) {
						continue
					}
					pos := lhs.Pos()
					add(pos, func() { delete(sent, obj) })
				}
			}
		}
		return true
	})

	// Replay in execution order: body first, then the defers.
	sortEvents := func() {
		less := func(a, b event) bool {
			if a.phase != b.phase {
				return a.phase < b.phase
			}
			return a.pos < b.pos
		}
		for i := 1; i < len(events); i++ {
			for j := i; j > 0 && less(events[j], events[j-1]); j-- {
				events[j], events[j-1] = events[j-1], events[j]
			}
		}
	}
	sortEvents()
	for _, ev := range events {
		ev.fn()
	}
}

// deferRanges maps positions inside defer statements to their replay
// phase: 0 for body code, then one phase per defer in reverse textual
// order (the last defer pushed runs first).
type deferRanges []struct{ pos, end token.Pos }

func collectDeferRanges(body *ast.BlockStmt) deferRanges {
	var dr deferRanges
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			dr = append(dr, struct{ pos, end token.Pos }{d.Pos(), d.End()})
		}
		return true
	})
	return dr
}

func (dr deferRanges) phaseOf(pos token.Pos) int {
	for i := len(dr) - 1; i >= 0; i-- {
		if pos >= dr[i].pos && pos < dr[i].end {
			return len(dr) - i
		}
	}
	return 0
}

// payloadObj resolves expressions naming a []byte variable: the bare
// identifier or a slice of it (payload[a:b] still aliases payload).
func payloadObj(info *types.Info, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(sl.X)
	}
	obj := identObj(info, e)
	if obj == nil {
		return nil
	}
	if sl, ok := obj.Type().Underlying().(*types.Slice); ok && isBasic(sl.Elem(), types.Uint8) {
		return obj
	}
	return nil
}

// exprMentions reports whether e references obj.
func exprMentions(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && identObj(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}
