package analysis

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// wantRe matches golden-diagnostic expectations: `// want "regex"` or
// `// want `+"`regex`"+`, with multiple quoted regexes allowed.
var wantRe = regexp.MustCompile("// want (\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))*)")

// GoldenResult is the outcome of one golden run, consumable by a
// *testing.T without this package importing testing.
type GoldenResult struct {
	// Problems lists mismatches: unexpected diagnostics and unmatched
	// expectations, formatted with positions.
	Problems []string
	// Diagnostics holds everything the analyzer reported.
	Diagnostics []Diagnostic
}

// Golden loads the packages under testdataDir (each pattern is a
// directory relative to testdataDir/src) in rootless mode, runs the
// analyzer, and checks every reported diagnostic against the `// want
// "regex"` comments in the sources — the analysistest contract: each
// diagnostic must match a want on its line, and every want must be
// matched by a diagnostic.
func Golden(a *Analyzer, testdataDir string, patterns ...string) (*GoldenResult, error) {
	loader, err := NewLoader(filepath.Join(testdataDir, "src"))
	if err != nil {
		return nil, err
	}
	loader.IncludeTests = true
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	diags, err := RunAnalyzers(pkgs, []*Analyzer{a})
	if err != nil {
		return nil, err
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
		line    int
		file    string
	}
	// wants indexed by file:line.
	wants := make(map[string][]*want)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			collectWants(pkg, f, func(file string, line int, re *regexp.Regexp) {
				key := file + ":" + strconv.Itoa(line)
				wants[key] = append(wants[key], &want{re: re, line: line, file: file})
			})
		}
	}

	res := &GoldenResult{Diagnostics: diags}
	fset := loader.Fset()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := pos.Filename + ":" + strconv.Itoa(pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			res.Problems = append(res.Problems,
				fmt.Sprintf("%s: unexpected diagnostic: %s", pos, d.Message))
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				res.Problems = append(res.Problems,
					fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re))
			}
		}
	}
	return res, nil
}

// collectWants scans a file's comments for want expectations.
func collectWants(pkg *Package, f *ast.File, add func(file string, line int, re *regexp.Regexp)) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			for _, quoted := range splitWantPatterns(m[1] + m[2]) {
				re, err := regexp.Compile(quoted)
				if err != nil {
					continue
				}
				add(pos.Filename, pos.Line, re)
			}
		}
	}
}

// splitWantPatterns unquotes a sequence of "..." / `...` patterns.
func splitWantPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return out
			}
			if un, err := strconv.Unquote(s[:end+1]); err == nil {
				out = append(out, un)
			}
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[2+end:])
		default:
			return out
		}
	}
	return out
}
