package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PidTaint statically proves collective-call alignment: every processor
// of a scope must reach the same sequence of synchronizing operations
// (Sync, barriers, the collectives and their FT variants), or the
// concurrent engine deadlocks and a wire transport hangs distributed.
//
// The analyzer seeds a taint lattice at processor-identity sources
// (Pid, Self, Moves, the Rank/Coordinator/Speed/Share enquiries),
// propagates it through assignments and arithmetic, and abstracts each
// function body into its synchronization sequence — a string of sync
// tokens, composed interprocedurally through cached per-function
// summaries over the package-local call graph. At every branch whose
// condition is pid-tainted it compares the arms' sequences (each
// extended with the function's continuation, so an early return that
// skips a later barrier is a mismatch); at every loop whose bound is
// pid-tainted it checks the body synchronizes nothing. Arms that rejoin
// with identical sequences — the audited coordinator-election idiom,
// where `if c.Pid() == root` guards extra sends but equal barriers —
// are aligned and pass.
//
// Where syncdiscipline flags any synchronizing call lexically under
// divergent control (the blunt, always-sound rule), pidtaint proves the
// sharper property the HBSP^k model actually requires: the *sequence*
// of synchronizing operations is identical across processors. Its
// findings are the subset that genuinely desync.
//
// Arms are compared on their sync-token projection: structural markers
// (early-return `$`, break `^`, uniform-alternative grouping) are
// erased first, so arms that reach the same synchronizing operations
// through different local shapes — mirrored error handling, an extra
// validation return before any barrier — compare equal. The projection
// keeps order and multiplicity, so a skipped, reordered or repeated
// barrier still mismatches.
//
// Carve-outs (mirroring commgraph's convergent-local rules): locals
// bound to ancestor-of-self scope expressions (enclosingScope, ScopeAt,
// Ancestor) are divergent in the taint sense but convergent per scope
// membership, and do not make a condition divergent. Error-typed values
// are never divergence sources: `if err != nil { return err }` aborts
// the superstep program, and the engines surface an abort to every
// member of the scope, so the error path is not a silent desync.
// Sequences the analyzer cannot fold (calls through function values it
// cannot resolve) are assumed non-synchronizing, matching the suite's
// structural fallback; audited-unprovable divergence carries
// `//hbspk:ignore pidtaint`.
var PidTaint = &Analyzer{
	Name: "pidtaint",
	Doc:  "prove synchronizing-call alignment across processors under pid-tainted control flow",
	Run:  runPidTaint,
}

func runPidTaint(pass *Pass) error {
	a := &aligner{
		pass:       pass,
		g:          sharedCallGraph(pass),
		inProgress: make(map[*types.Func]bool),
	}
	if pass.pkg != nil {
		if pass.pkg.alignSums == nil {
			pass.pkg.alignSums = make(map[*types.Func]string)
		}
		a.summaries = pass.pkg.alignSums
	} else {
		a.summaries = make(map[*types.Func]string)
	}
	for _, f := range pass.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			env := a.newEnv(body, true)
			a.seqStmts(body.List, seqEnd, env)
		})
	}
	return nil
}

// seqEnd terminates every sequence: the function's exit. An early
// return yields it directly, dropping the continuation, which is
// exactly how a processor that returns early skips later barriers.
const seqEnd = "$"

// aligner carries the per-package state of the alignment analysis:
// the call graph and the memoized per-function synchronization
// summaries (cached on the Package across analyzer passes).
type aligner struct {
	pass       *Pass
	g          *callGraph
	summaries  map[*types.Func]string
	inProgress map[*types.Func]bool
}

// alignEnv is the per-body environment: the pid-taint set, the
// convergent-scope carve-outs, locals holding synchronizing function
// values, and whether mismatches are reported (summaries are computed
// silently; each body is judged exactly once, as its own unit).
type alignEnv struct {
	tainted    map[types.Object]bool
	convergent map[types.Object]bool
	syncValued map[types.Object]string
	report     bool
}

func (a *aligner) newEnv(body *ast.BlockStmt, report bool) *alignEnv {
	return &alignEnv{
		tainted:    collectPidTaint(a.pass, body),
		convergent: collectConvergentScopes(a.pass, body),
		syncValued: collectSyncValued(a.pass, a.g, body),
		report:     report,
	}
}

// collectSyncValued marks locals bound to a synchronizing function or
// method value (`barrier := c.Sync`, `f := syncHelper`), so an indirect
// call through the local still contributes a sync token. The token is
// derived from the value's origin, keeping syntactically identical
// bindings comparable across branch arms.
func collectSyncValued(pass *Pass, g *callGraph, body *ast.BlockStmt) map[types.Object]string {
	vals := make(map[types.Object]string)
	walkBody(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Lhs) != len(st.Rhs) {
			return true
		}
		for i, lhs := range st.Lhs {
			tok := syncValueToken(pass, g, st.Rhs[i])
			if tok == "" {
				continue
			}
			if obj := identObj(pass.TypesInfo, lhs); obj != nil {
				vals[obj] = tok
			}
		}
		return true
	})
	return vals
}

// syncValueToken returns the sync token a value-position expression
// would contribute when later called, or "".
func syncValueToken(pass *Pass, g *callGraph, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[x].(*types.Func); ok && g.syncs[fn] {
			return "call:" + fn.Name()
		}
	case *ast.SelectorExpr:
		sel, ok := pass.TypesInfo.Selections[x]
		if !ok || sel.Kind() != types.MethodVal {
			return ""
		}
		fn, ok := sel.Obj().(*types.Func)
		if !ok {
			return ""
		}
		if (fn.Name() == "Sync" || fn.Name() == "Barrier") && isCtxType(pass.TypesInfo.TypeOf(x.X)) {
			return fn.Name() + "(?)"
		}
		if g.syncs[fn] {
			return "call:" + fn.Name()
		}
	}
	return ""
}

// divergentCond reports whether a branch condition or loop bound is
// pid-divergent after the convergent-scope carve-out: mentions of
// convergent locals and ancestor-of-self scope expressions do not
// count, everything exprDivergent recognizes does.
func (a *aligner) divergentCond(e ast.Expr, env *alignEnv) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		sub, ok := n.(ast.Expr)
		if ok && scopeConvergentExpr(a.pass, sub, env.convergent) {
			return false // convergent subtree: same value on every member
		}
		switch x := n.(type) {
		case *ast.Ident:
			obj := identObj(a.pass.TypesInfo, x)
			if obj == nil || !env.tainted[obj] || env.convergent[obj] {
				return true
			}
			// Error values are taint sinks, not divergence sources: the
			// abort path is visible to the whole scope.
			if isErrorType(obj.Type()) {
				return true
			}
			found = true
		case *ast.CallExpr:
			fn := calleeFunc(a.pass.TypesInfo, x)
			if fn == nil {
				return true
			}
			if rt := receiverType(a.pass.TypesInfo, x); rt != nil && isCtxType(rt) {
				switch fn.Name() {
				case "Pid", "Self", "Moves":
					found = true
				}
				return true
			}
			if divergentFuncNames[fn.Name()] && len(x.Args) > 0 && isCtxType(a.pass.TypesInfo.TypeOf(x.Args[0])) {
				found = true
			}
		}
		return true
	})
	return found
}

// summary returns fn's synchronization sequence, memoized; recursion
// bottoms out in an opaque µ-token so mutually recursive helpers stay
// comparable without diverging.
func (a *aligner) summary(fn *types.Func) string {
	if s, ok := a.summaries[fn]; ok {
		return s
	}
	fd := a.g.decls[fn]
	if fd == nil {
		return ""
	}
	if a.inProgress[fn] {
		return "µ" + fn.Name()
	}
	a.inProgress[fn] = true
	env := a.newEnv(fd.Body, false)
	s := a.seqStmts(fd.Body.List, seqEnd, env)
	delete(a.inProgress, fn)
	a.summaries[fn] = s
	return s
}

// callToken renders one call's contribution to a sequence: a sync
// token, a spliced local-callee summary, or "" for calls assumed
// non-synchronizing.
func (a *aligner) callToken(call *ast.CallExpr, env *alignEnv) string {
	info := a.pass.TypesInfo
	if isSyncCall(info, call) {
		return syncCallToken(info, call)
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		// Indirect call: a local known to hold a synchronizing value
		// contributes its origin token; anything else is assumed
		// non-synchronizing (the suite's structural fallback).
		if obj := identObj(info, call.Fun); obj != nil {
			return env.syncValued[obj]
		}
		return ""
	}
	if _, local := a.g.decls[fn]; local {
		s := a.summary(fn)
		s = strings.TrimSuffix(s, seqEnd)
		// A helper that synchronizes nothing contributes nothing; its
		// internal returns and branches are invisible to the caller's
		// alignment.
		if !hasSyncToken(s) {
			return ""
		}
		return "[" + s + "]"
	}
	return ""
}

// syncCallToken names a structural synchronizing call precisely enough
// that two arms syncing "the same way" compare equal and two arms
// syncing on different scopes or labels do not. Literal label arguments
// are folded in; non-literal labels compare as "?" (assumed uniform).
func syncCallToken(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "sync"
	}
	name := fn.Name()
	switch {
	case name == "Sync" && len(call.Args) >= 2:
		return "Sync(" + types.ExprString(call.Args[0]) + "," + litToken(call.Args[1]) + ")"
	case name == "SyncAll" && len(call.Args) >= 2:
		return "SyncAll(" + litToken(call.Args[1]) + ")"
	case name == "Barrier" && len(call.Args) >= 1:
		return "Barrier(" + litToken(call.Args[0]) + ")"
	case collectiveNames[name] && len(call.Args) >= 2:
		return name + "(" + types.ExprString(call.Args[1]) + ")"
	}
	return name
}

// litToken folds a basic-literal argument into the token; anything
// computed compares as "?", which is assumed uniform across processors.
func litToken(e ast.Expr) string {
	if bl, ok := ast.Unparen(e).(*ast.BasicLit); ok {
		return bl.Value
	}
	return "?"
}

// exprSeq concatenates the call tokens of an expression tree in visit
// order (deterministic, identical across compared arms). Nested
// function literals are separate analysis units and contribute nothing
// here.
func (a *aligner) exprSeq(e ast.Expr, env *alignEnv) string {
	if e == nil {
		return ""
	}
	var sb strings.Builder
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if tok := a.callToken(call, env); tok != "" {
				sb.WriteString(tok)
				sb.WriteString(";")
			}
		}
		return true
	})
	return sb.String()
}

// seqStmts folds a statement list right-to-left onto the continuation,
// so every statement's sequence value is "everything that synchronizes
// from here to the end of the function".
func (a *aligner) seqStmts(stmts []ast.Stmt, cont string, env *alignEnv) string {
	suffix := cont
	for i := len(stmts) - 1; i >= 0; i-- {
		suffix = a.seqStmt(stmts[i], suffix, env)
	}
	return suffix
}

// hasSyncToken reports whether a rendered sequence contains any actual
// synchronizing operation, as opposed to pure structure ($, |, loop
// braces from empty bodies).
func hasSyncToken(s string) bool {
	for _, r := range s {
		if r == '$' || r == '(' || r == ')' || r == '|' || r == '^' {
			continue
		}
		if r == '{' || r == '}' || r == '[' || r == ']' || r == ';' {
			continue
		}
		return true
	}
	return false
}

// syncProjection erases the structural markers from a sequence, leaving
// the ordered sync tokens. Two divergent arms are compared on their
// projections: an early return ahead of no barrier, a uniform branch
// whose arms sync identically, or mirrored error exits are all shapes
// with equal projections, while a skipped, repeated or reordered
// synchronizing operation is not. Token-internal parentheses are erased
// too, identically on both sides, so equality is preserved.
// isErrorAbortBranch reports whether a branch body is nothing but a
// return whose final result is a freshly produced, non-nil error: the
// shape of a validation abort (`if me < 0 { return nil, fmt.Errorf(…) }`)
// as opposed to a silent opt-out (`return nil`), which stays divergent.
func isErrorAbortBranch(info *types.Info, body *ast.BlockStmt) bool {
	if len(body.List) != 1 {
		return false
	}
	ret, ok := body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) == 0 {
		return false
	}
	last := ret.Results[len(ret.Results)-1]
	t := info.TypeOf(last)
	if t == nil || !isErrorType(t) {
		return false
	}
	if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	return true
}

func syncProjection(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '$', '^', '|', '(', ')', '[', ']':
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// renderSeq makes a sequence human-readable for diagnostics.
func renderSeq(s string) string {
	s = strings.TrimSuffix(s, seqEnd)
	s = strings.TrimSuffix(s, ";")
	if s == "" {
		return "(no sync)"
	}
	if strings.HasSuffix(s, seqEnd) || strings.Contains(s, seqEnd) {
		s = strings.ReplaceAll(s, seqEnd, "<return>")
	}
	return s
}

func (a *aligner) seqStmt(s ast.Stmt, cont string, env *alignEnv) string {
	switch st := s.(type) {
	case nil:
		return cont
	case *ast.BlockStmt:
		return a.seqStmts(st.List, cont, env)
	case *ast.ExprStmt:
		return a.exprSeq(st.X, env) + cont
	case *ast.AssignStmt:
		var sb strings.Builder
		for _, e := range st.Rhs {
			sb.WriteString(a.exprSeq(e, env))
		}
		return sb.String() + cont
	case *ast.ReturnStmt:
		var sb strings.Builder
		for _, e := range st.Results {
			sb.WriteString(a.exprSeq(e, env))
		}
		return sb.String() + seqEnd
	case *ast.BranchStmt:
		// break/continue/goto: skips the rest of the enclosing block.
		// Loop bodies are sequenced against an empty continuation, so
		// the marker distinguishes "leaves early" from "falls through".
		return "^"
	case *ast.IfStmt:
		initSeq := a.seqStmt(st.Init, "", env)
		condSeq := a.exprSeq(st.Cond, env)
		div := a.divergentCond(st.Cond, env)
		// Membership-guard carve-out: a divergent guard whose only body
		// is `return ..., <fresh error>` aborts the processors it
		// selects rather than desyncing them — the engines surface the
		// abort to the whole scope, same as the err != nil idiom. The
		// abort arm must itself be sync-free: `return Gather(…)` both
		// synchronizes and returns its error, and stays divergent.
		if div && st.Else == nil && isErrorAbortBranch(a.pass.TypesInfo, st.Body) {
			probe := *env
			probe.report = false
			if !hasSyncToken(a.seqStmts(st.Body.List, "", &probe)) {
				div = false
			}
		}
		// Divergent branches embed the continuation: an early return in
		// one arm must be compared against the other arm *plus* every
		// barrier that follows the if. Uniform branches are sequenced
		// locally to keep growth linear.
		armCont := ""
		if div {
			armCont = cont
		}
		thenSeq := a.seqStmts(st.Body.List, armCont, env)
		elseSeq := armCont
		switch e := st.Else.(type) {
		case *ast.BlockStmt:
			elseSeq = a.seqStmts(e.List, armCont, env)
		case *ast.IfStmt:
			elseSeq = a.seqStmt(e, armCont, env)
		}
		if div {
			if syncProjection(thenSeq) != syncProjection(elseSeq) && env.report {
				a.pass.ReportRangef(st.Cond.Pos(), st.Cond.End(),
					"pid-divergent branches synchronize differently (then: %s / else: %s): processors taking different arms desync",
					renderSeq(thenSeq), renderSeq(elseSeq))
			}
			return initSeq + condSeq + thenSeq
		}
		if thenSeq == elseSeq {
			return initSeq + condSeq + thenSeq + cont
		}
		return initSeq + condSeq + "(" + thenSeq + "|" + elseSeq + ")" + cont
	case *ast.ForStmt:
		initSeq := a.seqStmt(st.Init, "", env)
		condSeq := a.exprSeq(st.Cond, env)
		postSeq := a.seqStmt(st.Post, "", env)
		bodySeq := a.seqStmts(st.Body.List, "", env)
		inner := condSeq + bodySeq + postSeq
		if st.Cond != nil && a.divergentCond(st.Cond, env) && hasSyncToken(inner) && env.report {
			a.pass.ReportRangef(st.Cond.Pos(), st.Cond.End(),
				"loop bound is pid-divergent and the body synchronizes (%s): processors would sync different numbers of times",
				renderSeq(bodySeq))
		}
		if !hasSyncToken(inner) {
			return initSeq + cont
		}
		return initSeq + "loop{" + inner + "}" + cont
	case *ast.RangeStmt:
		rangeSeq := a.exprSeq(st.X, env)
		bodySeq := a.seqStmts(st.Body.List, "", env)
		if a.divergentCond(st.X, env) && hasSyncToken(bodySeq) && env.report {
			a.pass.ReportRangef(st.X.Pos(), st.X.End(),
				"ranging over a pid-divergent value with a synchronizing body (%s): iteration counts differ per processor",
				renderSeq(bodySeq))
		}
		if !hasSyncToken(bodySeq) {
			return rangeSeq + cont
		}
		return rangeSeq + "loop{" + bodySeq + "}" + cont
	case *ast.SwitchStmt:
		initSeq := a.seqStmt(st.Init, "", env)
		tagSeq := a.exprSeq(st.Tag, env)
		div := st.Tag != nil && a.divergentCond(st.Tag, env)
		hasDefault := false
		var caseExprsDiv bool
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				if a.divergentCond(e, env) {
					caseExprsDiv = true
				}
			}
		}
		div = div || caseExprsDiv
		armCont := ""
		if div {
			armCont = cont
		}
		var arms []string
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			arms = append(arms, a.seqStmts(cc.Body, armCont, env))
		}
		if !hasDefault {
			arms = append(arms, armCont) // no default: fallthrough arm
		}
		if div {
			for i := 1; i < len(arms); i++ {
				if syncProjection(arms[i]) != syncProjection(arms[0]) {
					if env.report {
						pos, end := st.Pos(), st.End()
						if st.Tag != nil {
							pos, end = st.Tag.Pos(), st.Tag.End()
						}
						a.pass.ReportRangef(pos, end,
							"pid-divergent switch arms synchronize differently (%s vs %s): processors taking different cases desync",
							renderSeq(arms[0]), renderSeq(arms[i]))
					}
					break
				}
			}
			return initSeq + tagSeq + arms[0]
		}
		allEqual := true
		for i := 1; i < len(arms); i++ {
			if arms[i] != arms[0] {
				allEqual = false
				break
			}
		}
		if allEqual {
			return initSeq + tagSeq + arms[0] + cont
		}
		return initSeq + tagSeq + "(" + strings.Join(arms, "|") + ")" + cont
	case *ast.TypeSwitchStmt:
		var arms []string
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			arms = append(arms, a.seqStmts(cc.Body, "", env))
		}
		uniform := true
		for i := 1; i < len(arms); i++ {
			if arms[i] != arms[0] {
				uniform = false
				break
			}
		}
		if len(arms) == 0 || (uniform && arms[0] == "") {
			return cont
		}
		return "(" + strings.Join(arms, "|") + ")" + cont
	case *ast.SelectStmt:
		var arms []string
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			arms = append(arms, a.seqStmts(cc.Body, "", env))
		}
		any := false
		for _, arm := range arms {
			if hasSyncToken(arm) {
				any = true
			}
		}
		if !any {
			return cont
		}
		return "(" + strings.Join(arms, "|") + ")" + cont
	case *ast.LabeledStmt:
		return a.seqStmt(st.Stmt, cont, env)
	case *ast.DeferStmt:
		if tok := a.callToken(st.Call, env); tok != "" {
			return "defer{" + tok + "}" + cont
		}
		return a.exprSeq(st.Call, env) + cont
	case *ast.GoStmt:
		if tok := a.callToken(st.Call, env); tok != "" {
			return "go{" + tok + "}" + cont
		}
		return a.exprSeq(st.Call, env) + cont
	case *ast.DeclStmt:
		var sb strings.Builder
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						sb.WriteString(a.exprSeq(v, env))
					}
				}
			}
		}
		return sb.String() + cont
	case *ast.SendStmt:
		return a.exprSeq(st.Chan, env) + a.exprSeq(st.Value, env) + cont
	case *ast.IncDecStmt:
		return a.exprSeq(st.X, env) + cont
	}
	return cont
}
