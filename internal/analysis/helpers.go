package analysis

import (
	"go/ast"
	"go/types"
)

// The analyzers key on the HBSP^k vocabulary structurally — method sets
// and type names — rather than on hard-coded import paths, so they work
// unchanged on the real packages, on the public hbspk facade, and on the
// self-contained fixtures under testdata.

// isCtxType reports whether t is an HBSPlib processor context: a type
// whose method set has both Pid() int and a Sync method. This matches
// hbsp.Ctx, the hbspk.Ctx alias, and the engines' concrete vctx/cctx.
func isCtxType(t types.Type) bool {
	if t == nil {
		return false
	}
	ms := types.NewMethodSet(t)
	if ptr := types.NewPointer(t); ms.Len() == 0 {
		ms = types.NewMethodSet(ptr)
	}
	var hasPid, hasSync bool
	for i := 0; i < ms.Len(); i++ {
		f, ok := ms.At(i).Obj().(*types.Func)
		if !ok {
			continue
		}
		sig := f.Type().(*types.Signature)
		switch f.Name() {
		case "Pid":
			if sig.Params().Len() == 0 && sig.Results().Len() == 1 && isBasic(sig.Results().At(0).Type(), types.Int) {
				hasPid = true
			}
		case "Sync":
			hasSync = true
		}
	}
	return hasPid && hasSync
}

func isBasic(t types.Type, kind types.BasicKind) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// typeNameOf returns the bare name of t's named type ("Buffer",
// "System"), or "".
func typeNameOf(t types.Type) string {
	if n := namedOf(t); n != nil {
		return n.Obj().Name()
	}
	return ""
}

// calleeFunc resolves a call to its *types.Func (method or function),
// following selector and plain identifiers; nil for indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		// Package-qualified call: pkg.Fn.
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// receiverType returns the type of a method call's receiver expression,
// or nil for non-method calls.
func receiverType(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		return info.TypeOf(sel.X)
	}
	return nil
}

// receiverExpr returns a method call's receiver expression, or nil.
func receiverExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// returnsError reports whether the call's last result is error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}

// collectiveNames are the SPMD collective entry points of package
// collective and the hbspk facade; all synchronize internally.
var collectiveNames = map[string]bool{
	"Gather": true, "GatherHier": true,
	"BcastOnePhase": true, "BcastTwoPhase": true, "BcastHier": true,
	"BcastHierTwoPhase": true, "BcastBinomial": true,
	"Scatter": true, "ScatterHier": true,
	"AllGather": true, "AllGatherHier": true,
	"Reduce": true, "ReduceHier": true, "AllReduce": true,
	"Scan": true, "ScanHier": true,
	"TotalExchange": true, "TotalExchangeHier": true,
	"ReduceScatter": true, "DRMASync": true,
}

// isSyncCall reports whether the call synchronizes processors: a Sync
// method on a Ctx, a SyncAll helper, a pvm barrier, or a collective.
func isSyncCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	name := fn.Name()
	if rt := receiverType(info, call); rt != nil {
		if name == "Sync" && isCtxType(rt) {
			return true
		}
		if name == "Barrier" && typeNameOf(rt) == "Task" {
			return true
		}
		return false
	}
	if name == "SyncAll" {
		return true
	}
	if collectiveNames[name] && len(call.Args) > 0 && isCtxType(info.TypeOf(call.Args[0])) {
		return true
	}
	return false
}

// funcBodies yields every function or method body in the file together
// with a printable name.
func funcBodies(f *ast.File, visit func(name string, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn.Name.Name, fn.Body)
			}
		case *ast.FuncLit:
			if fn.Body != nil {
				visit("func literal", fn.Body)
			}
		}
		return true
	})
}

// walkBody walks one function body without descending into nested
// function literals (funcBodies visits those as their own units).
func walkBody(body *ast.BlockStmt, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}

// identObj resolves an identifier expression to its object, unwrapping
// parens; nil otherwise.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
