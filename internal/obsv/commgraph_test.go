package obsv

import (
	"bytes"
	"strings"
	"testing"
)

func testDoc() *CommGraphDoc {
	return &CommGraphDoc{
		Schema: CommGraphSchema,
		Module: "hbspk",
		Packages: []PkgGraph{
			{
				Path: "hbspk/internal/collective",
				Funcs: []FuncGraph{
					{
						Name: "Gather", File: "gather.go", Line: 17,
						Steps: []StepTopo{{
							Index: 0, Sync: "Sync(scope)", Cost: "g*rmax*(len(local)) + L",
							Edges: []CommEdge{{Src: "*", Dst: "*", Tag: "1", Bytes: "len(local)"}},
						}},
					},
					{
						Name: "statusRound", File: "ft.go", Line: 300,
						Steps: []StepTopo{{
							Index: 0, Sync: "Sync(scope)",
							Edges: []CommEdge{{Src: "*", Dst: "0", Tag: "40", Bytes: "1"}},
						}},
					},
				},
			},
		},
	}
}

// TestConformanceCleanRun: deliveries covered by static edges pass; the
// concrete-tag edge that never fired is advisory only.
func TestConformanceCleanRun(t *testing.T) {
	doc := testDoc()
	deliveries := []Delivery{
		{Src: 3, Dst: 0, Tag: 1, Count: 4, Bytes: 4096},
		{Src: 7, Dst: 0, Tag: 1, Count: 1, Bytes: 1024},
	}
	rep := CheckConformance(doc, deliveries)
	if !rep.OK() {
		t.Fatalf("clean run reported unexplained deliveries: %v", rep.Unexplained)
	}
	if len(rep.Unobserved) != 1 || rep.Unobserved[0].Edge.Tag != "40" {
		t.Errorf("want exactly the tag-40 edge unobserved, got %v", rep.Unobserved)
	}
	if !strings.Contains(rep.String(), "every observed delivery is explained") {
		t.Errorf("report text: %q", rep.String())
	}
}

// TestConformanceUndeclaredSend: a delivery whose tag no static edge
// declares fails the gate — the undeclared-send fixture of the CI smoke.
func TestConformanceUndeclaredSend(t *testing.T) {
	doc := testDoc()
	deliveries := []Delivery{
		{Src: 3, Dst: 0, Tag: 1, Count: 1, Bytes: 64},
		{Src: 2, Dst: 5, Tag: 99, Count: 2, Bytes: 128}, // nobody declares tag 99
	}
	rep := CheckConformance(doc, deliveries)
	if rep.OK() {
		t.Fatal("undeclared tag-99 delivery passed the gate")
	}
	if len(rep.Unexplained) != 1 || rep.Unexplained[0].Tag != 99 {
		t.Fatalf("unexplained = %v, want exactly the tag-99 class", rep.Unexplained)
	}
	if !strings.Contains(rep.String(), "UNEXPLAINED") {
		t.Errorf("report text misses the violation: %q", rep.String())
	}
}

// TestConformanceConcreteEndpoints: a concrete dst pattern must reject
// a delivery to a different dst even under the same tag.
func TestConformanceConcreteEndpoints(t *testing.T) {
	doc := testDoc()
	rep := CheckConformance(doc, []Delivery{{Src: 2, Dst: 6, Tag: 40, Count: 1}})
	if rep.OK() {
		t.Fatal("tag-40 delivery to dst 6 matched an edge pinned to dst 0")
	}
	rep = CheckConformance(doc, []Delivery{{Src: 2, Dst: 0, Tag: 40, Count: 1}})
	if !rep.OK() {
		t.Fatalf("tag-40 delivery to dst 0 should match: %v", rep.Unexplained)
	}
	for _, e := range rep.Unobserved {
		if e.Edge.Tag == "40" {
			t.Errorf("matched tag-40 edge still reported unobserved: %v", e)
		}
	}
}

// TestReadDeliveriesFromJSONL parses a mixed event stream, keeps only
// deliveries, and aggregates per (src, dst, tag).
func TestReadDeliveriesFromJSONL(t *testing.T) {
	events := []Event{
		{Kind: KindSuperstep, Step: 0, Pid: -1, Src: -1, Dst: -1, Tag: -1, Name: "gather"},
		{Kind: KindDelivery, Step: 0, Pid: 0, Src: 3, Dst: 0, Tag: 1, Bytes: 100},
		{Kind: KindDelivery, Step: 0, Pid: 0, Src: 3, Dst: 0, Tag: 1, Bytes: 50},
		{Kind: KindDelivery, Step: 1, Pid: 2, Src: 0, Dst: 2, Tag: 7, Bytes: 9},
		{Kind: KindBarrier, Step: 1, Pid: 2, Src: -1, Dst: -1, Tag: -1},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDeliveries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []Delivery{
		{Src: 3, Dst: 0, Tag: 1, Count: 2, Bytes: 150},
		{Src: 0, Dst: 2, Tag: 7, Count: 1, Bytes: 9},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d delivery classes, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("delivery[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestCommGraphRoundTripDeterministic: encode -> parse -> encode is
// byte-identical, and normalization sorts shuffled input.
func TestCommGraphRoundTripDeterministic(t *testing.T) {
	doc := testDoc()
	// Shuffle: reverse funcs and edges.
	doc.Packages[0].Funcs[0], doc.Packages[0].Funcs[1] = doc.Packages[0].Funcs[1], doc.Packages[0].Funcs[0]
	var a bytes.Buffer
	if err := doc.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseCommGraph(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := parsed.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("round trip not byte-identical:\n%s\nvs\n%s", a.String(), b.String())
	}
	if parsed.Packages[0].Funcs[0].Name != "statusRound" { // ft.go sorts before gather.go
		t.Errorf("normalization did not sort funcs by (file, line): first is %q", parsed.Packages[0].Funcs[0].Name)
	}
	if _, err := ParseCommGraph(strings.NewReader(`{"schema":"bogus/9"}`)); err == nil {
		t.Error("bogus schema accepted")
	}
}
