package obsv

import (
	"math"
	"strconv"
	"sync/atomic"
)

// Config sizes a Recorder.
type Config struct {
	// Capacity is the span ring's size (rounded up to a power of two);
	// the ring keeps the most recent Capacity events. Default 1<<16.
	Capacity int
	// SampleEvery keeps one of every N delivery spans (metrics always
	// count every delivery). 0 or 1 keeps all; negative keeps none.
	SampleEvery int
}

// Recorder collects spans and metrics for one run. All emission
// methods are safe on a nil receiver and no-op there, so engines hold
// a bare *Recorder field and pay one predictable branch when
// observability is off.
//
// Recorder implements pvm's Observer interface structurally
// (MailboxDepth, PoolDraw), so the substrate can feed it without an
// import cycle.
type Recorder struct {
	metrics *Registry
	ring    *ring
	sample  int64
	nDeliv  atomic.Int64

	// Hot handles, resolved once at construction so emission never
	// takes the registry lock.
	hrel         *Histogram
	barrierWait  *Histogram
	mailboxDepth *Histogram
	stepsTotal   *Counter
	messages     *Counter
	bytesTotal   *Counter
	poolHit      *Counter
	poolMiss     *Counter
	chaosTotal   *Counter
	reorgTotal   *Counter
	predTotal    *Gauge
	measTotal    *Gauge
	predSum      atomicFloat
	measSum      atomicFloat
}

// atomicFloat is a float64 accumulated with CAS on its bits.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) float64 {
	for {
		old := f.bits.Load()
		sum := math.Float64frombits(old) + v
		if f.bits.CompareAndSwap(old, math.Float64bits(sum)) {
			return sum
		}
	}
}

// Default bucket bounds. Time buckets are decades because the engine
// clock unit differs between engines (virtual units vs µs); byte and
// depth buckets are powers of four / two.
var (
	timeBuckets  = []float64{0.1, 1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8}
	byteBuckets  = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 1 << 22}
	depthBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}
)

// New returns a Recorder with registered metric families.
func New(cfg Config) *Recorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1 << 16
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 1
	}
	reg := NewRegistry()
	reg.Help("hbspk_supersteps_total", "Completed supersteps.")
	reg.Help("hbspk_superstep_h_relation", "Heterogeneous h-relation per superstep (rated byte units).")
	reg.Help("hbspk_barrier_wait", "Per-processor barrier wait (engine time units).")
	reg.Help("hbspk_mailbox_depth", "Staged mailbox depth observed at delivery.")
	reg.Help("hbspk_messages_total", "Messages delivered.")
	reg.Help("hbspk_bytes_total", "Bytes delivered, overall and per (src,dst,tag).")
	reg.Help("hbspk_pool_draws_total", "Wire-buffer pool draws by result.")
	reg.Help("hbspk_chaos_injections_total", "Chaos injections observed by fate.")
	reg.Help("hbspk_reorgs_total", "Barrier-time tree reorganizations applied.")
	reg.Help("hbspk_predicted_time_total", "Summed cost-model predicted superstep time T_i.")
	reg.Help("hbspk_measured_time_total", "Summed measured superstep time.")
	r := &Recorder{
		metrics: reg,
		ring:    newRing(cfg.Capacity),
		sample:  int64(cfg.SampleEvery),

		hrel:         reg.Histogram("hbspk_superstep_h_relation", byteBuckets),
		barrierWait:  reg.Histogram("hbspk_barrier_wait", timeBuckets),
		mailboxDepth: reg.Histogram("hbspk_mailbox_depth", depthBuckets),
		stepsTotal:   reg.Counter("hbspk_supersteps_total"),
		messages:     reg.Counter("hbspk_messages_total"),
		bytesTotal:   reg.Counter("hbspk_bytes_total"),
		poolHit:      reg.Counter("hbspk_pool_draws_total", "result", "hit"),
		poolMiss:     reg.Counter("hbspk_pool_draws_total", "result", "miss"),
		chaosTotal:   reg.Counter("hbspk_chaos_injections_total"),
		reorgTotal:   reg.Counter("hbspk_reorgs_total"),
		predTotal:    reg.Gauge("hbspk_predicted_time_total"),
		measTotal:    reg.Gauge("hbspk_measured_time_total"),
	}
	return r
}

// Metrics exposes the recorder's registry (nil for a nil recorder).
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.metrics
}

// Events returns the buffered spans in emission order. Call only after
// the instrumented engines have quiesced (see ring.snapshot).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.ring.snapshot()
}

// Lost reports how many events were evicted or dropped from the ring.
func (r *Recorder) Lost() uint64 {
	if r == nil {
		return 0
	}
	return r.ring.lost()
}

// Superstep records one completed super^i-step span: measured bounds
// on the engine clock plus the model's predicted T_i for the same step.
func (r *Recorder) Superstep(step int, label, scope string, level int, start, end, pred float64, bytes int64) {
	if r == nil {
		return
	}
	r.stepsTotal.Inc()
	r.predTotal.Set(r.predSum.add(pred))
	r.measTotal.Set(r.measSum.add(end - start))
	r.ring.put(Event{
		Kind: KindSuperstep, Step: int32(step), Pid: -1, Src: -1, Dst: -1, Tag: -1,
		Level: int32(level), Bytes: bytes, Start: start, End: end, Pred: pred,
		Name: label, Scope: scope,
	})
}

// HRelation records a superstep's heterogeneous h-relation.
func (r *Recorder) HRelation(h float64) {
	if r == nil {
		return
	}
	r.hrel.Observe(h)
}

// BarrierWait records one processor's wait inside a Sync: from barrier
// entry (start) to step completion (end).
func (r *Recorder) BarrierWait(step, pid int, scope string, level int, start, end float64) {
	if r == nil {
		return
	}
	r.barrierWait.Observe(end - start)
	r.ring.put(Event{
		Kind: KindBarrier, Step: int32(step), Pid: int32(pid), Src: -1, Dst: -1, Tag: -1,
		Level: int32(level), Start: start, End: end, Scope: scope,
	})
}

// Collective records one collective-library call on one processor.
func (r *Recorder) Collective(name string, pid int, start, end float64, bytes int64) {
	if r == nil {
		return
	}
	r.ring.put(Event{
		Kind: KindCollective, Step: -1, Pid: int32(pid), Src: -1, Dst: -1, Tag: -1,
		Bytes: bytes, Start: start, End: end, Name: name,
	})
}

// Delivery records one delivered message. Metrics count every call;
// the span is kept for one in every SampleEvery calls.
func (r *Recorder) Delivery(step, src, dst, tag int, bytes int64, at float64) {
	if r == nil {
		return
	}
	r.messages.Inc()
	r.bytesTotal.Add(bytes)
	r.metrics.Counter("hbspk_bytes_total",
		"src", itoa(src), "dst", itoa(dst), "tag", itoa(tag)).Add(bytes)
	if r.sample > 1 {
		if r.nDeliv.Add(1)%r.sample != 1 {
			return
		}
	} else if r.sample < 0 {
		return
	}
	r.ring.put(Event{
		Kind: KindDelivery, Step: int32(step), Pid: int32(dst),
		Src: int32(src), Dst: int32(dst), Tag: int32(tag),
		Bytes: bytes, Start: at, End: at,
	})
}

// Chaos records one observed fault injection; fate is the injection's
// name (drop, duplicate, delay, crash, straggler).
func (r *Recorder) Chaos(fate string, step, src, dst int, at float64) {
	if r == nil {
		return
	}
	r.chaosTotal.Inc()
	r.metrics.Counter("hbspk_chaos_injections_total", "fate", fate).Inc()
	r.ring.put(Event{
		Kind: KindChaos, Step: int32(step), Pid: int32(dst),
		Src: int32(src), Dst: int32(dst), Tag: -1,
		Start: at, End: at, Name: fate,
	})
}

// Reorg records one applied barrier-time tree reorganization: epoch is
// the reorg ordinal, moved how many leaves changed slots.
func (r *Recorder) Reorg(epoch, moved int, at float64) {
	if r == nil {
		return
	}
	r.reorgTotal.Inc()
	r.ring.put(Event{
		Kind: KindReorg, Step: int32(epoch), Pid: -1,
		Src: int32(moved), Dst: -1, Tag: -1,
		Start: at, End: at, Name: "reorg",
	})
}

// Pick records one planner variant selection: the auto-tuned
// dispatcher chose variant for the family at n payload bytes, at
// corrected model cost pred. The observing processor emits it once per
// decision-cache miss, so a run's pick history reads directly off the
// event stream.
func (r *Recorder) Pick(family, variant string, pid int, n int64, pred, at float64) {
	if r == nil {
		return
	}
	r.metrics.Counter("hbspk_planner_picks_total", "family", family, "variant", variant).Inc()
	r.ring.put(Event{
		Kind: KindPick, Step: -1, Pid: int32(pid), Src: -1, Dst: -1, Tag: -1,
		Bytes: n, Start: at, End: at, Pred: pred,
		Name: family + "->" + variant,
	})
}

// MailboxDepth records the staged depth of a mailbox at delivery time.
// Part of pvm's structural Observer interface.
func (r *Recorder) MailboxDepth(depth int) {
	if r == nil {
		return
	}
	r.mailboxDepth.Observe(float64(depth))
}

// PoolDraw records one wire-buffer pool draw. Part of pvm's structural
// Observer interface.
func (r *Recorder) PoolDraw(hit bool) {
	if r == nil {
		return
	}
	if hit {
		r.poolHit.Inc()
	} else {
		r.poolMiss.Inc()
	}
}

// TransportFrame records one frame crossing a wire transport, split by
// transport name and direction. Part of pvm's structural FrameObserver
// extension; the in-proc fast path never emits it, so a nonzero count
// is itself proof the run left the process. Frames are per-batch, not
// per-message, so the registry lookup here is off the per-message path.
func (r *Recorder) TransportFrame(transport string, out bool, frameBytes int) {
	if r == nil {
		return
	}
	dir := "rx"
	if out {
		dir = "tx"
	}
	r.metrics.Counter("hbspk_transport_frames_total", "transport", transport, "dir", dir).Inc()
	r.metrics.Counter("hbspk_transport_bytes_total", "transport", transport, "dir", dir).Add(int64(frameBytes))
}

func itoa(v int) string { return strconv.Itoa(v) }
