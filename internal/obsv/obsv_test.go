package obsv

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"hbspk/internal/cost"
	"hbspk/internal/trace"
)

func TestRingKeepsMostRecentAndCountsLost(t *testing.T) {
	t.Parallel()
	r := newRing(8)
	for i := 0; i < 20; i++ {
		r.put(Event{Kind: KindDelivery, Step: int32(i)})
	}
	evs := r.snapshot()
	if len(evs) != 8 {
		t.Fatalf("snapshot holds %d events, want 8", len(evs))
	}
	for i, e := range evs {
		if want := int32(12 + i); e.Step != want {
			t.Errorf("slot %d holds step %d, want %d (emission order broken)", i, e.Step, want)
		}
	}
	if got := r.lost(); got != 12 {
		t.Errorf("lost() = %d, want 12", got)
	}
}

func TestRingRoundsCapacityUp(t *testing.T) {
	t.Parallel()
	r := newRing(5)
	if len(r.slots) != 8 {
		t.Errorf("capacity 5 allocated %d slots, want 8", len(r.slots))
	}
}

func TestRingConcurrentPut(t *testing.T) {
	t.Parallel()
	// Hammer the ring from many goroutines; under -race this verifies
	// the ticket/seq protocol. Offered = kept + lost must always hold.
	r := newRing(64)
	var wg sync.WaitGroup
	const writers, each = 8, 500
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.put(Event{Kind: KindDelivery, Pid: int32(w), Step: int32(i)})
			}
		}()
	}
	wg.Wait()
	kept := len(r.snapshot())
	if got := uint64(kept) + r.lost(); got != writers*each {
		t.Errorf("kept %d + lost %d = %d, want %d offered", kept, r.lost(), got, writers*each)
	}
}

func TestKindStrings(t *testing.T) {
	t.Parallel()
	for k, want := range map[Kind]string{
		KindSuperstep: "superstep", KindCollective: "collective",
		KindBarrier: "barrier", KindDelivery: "delivery",
		KindChaos: "chaos", Kind(0): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	t.Parallel()
	var r *Recorder
	r.Superstep(0, "x", "y", 1, 0, 1, 1, 1)
	r.HRelation(1)
	r.BarrierWait(0, 0, "y", 1, 0, 1)
	r.Collective("x", 0, 0, 1, 1)
	r.Delivery(0, 0, 1, 2, 3, 4)
	r.Chaos("drop", 0, 0, 1, 2)
	r.MailboxDepth(3)
	r.PoolDraw(true)
	if r.Metrics() != nil || r.Events() != nil || r.Lost() != 0 {
		t.Error("nil recorder must expose nothing")
	}
	// Nil registry and nil metric handles are no-ops too.
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("y").Set(1)
	reg.Histogram("z", []float64{1}).Observe(1)
	reg.Help("x", "h")
	if err := reg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil registry write: %v", err)
	}
}

func TestDeliverySampling(t *testing.T) {
	t.Parallel()
	r := New(Config{Capacity: 1024, SampleEvery: 10})
	for i := 0; i < 100; i++ {
		r.Delivery(0, 1, 2, 3, 10, float64(i))
	}
	if got := len(r.Events()); got != 10 {
		t.Errorf("SampleEvery=10 kept %d of 100 delivery spans, want 10", got)
	}
	// Metrics still count every delivery.
	if got := r.messages.Value(); got != 100 {
		t.Errorf("messages counter = %d, want 100", got)
	}
	neg := New(Config{Capacity: 64, SampleEvery: -1})
	neg.Delivery(0, 1, 2, 3, 10, 0)
	if got := len(neg.Events()); got != 0 {
		t.Errorf("SampleEvery=-1 kept %d spans, want 0", got)
	}
}

func TestRecorderAggregates(t *testing.T) {
	t.Parallel()
	r := fixtureRecorder()
	if got := r.stepsTotal.Value(); got != 2 {
		t.Errorf("steps = %d, want 2", got)
	}
	if got := r.predTotal.Value(); math.Abs(got-260.5) > 1e-9 {
		t.Errorf("predicted total = %v, want 260.5", got)
	}
	if got := r.measTotal.Value(); math.Abs(got-260) > 1e-9 {
		t.Errorf("measured total = %v, want 260", got)
	}
	if hit, miss := r.poolHit.Value(), r.poolMiss.Value(); hit != 2 || miss != 1 {
		t.Errorf("pool draws hit=%d miss=%d, want 2/1", hit, miss)
	}
	if got := r.mailboxDepth.Count(); got != 2 {
		t.Errorf("mailbox depth count = %d, want 2", got)
	}
	if got := r.Lost(); got != 0 {
		t.Errorf("lost = %d, want 0", got)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	t.Parallel()
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	h := reg.Histogram("d", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 5000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-5056.5) > 1e-9 {
		t.Errorf("sum = %v, want 5056.5", got)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`d_bucket{le="1"} 2`, // cumulative: 0.5 and the boundary value 1
		`d_bucket{le="10"} 3`,
		`d_bucket{le="100"} 4`,
		`d_bucket{le="+Inf"} 5`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("prometheus output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestRegistryLabelOrderAndReuse(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	a := reg.Counter("m", "b", "2", "a", "1")
	b := reg.Counter("m", "a", "1", "b", "2")
	if a != b {
		t.Error("label order must not split a child")
	}
	a.Inc()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if want := `m{a="1",b="2"} 1`; !strings.Contains(buf.String(), want) {
		t.Errorf("labels not canonicalized, want %q in:\n%s", want, buf.String())
	}
}

func TestRegistryHelpThenTyped(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	reg.Help("m", "about m")
	reg.Gauge("m").Set(2.5)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# HELP m about m") || !strings.Contains(out, "# TYPE m gauge") {
		t.Errorf("help-then-typed family rendered wrong:\n%s", out)
	}
	if !strings.Contains(out, "m 2.5") {
		t.Errorf("gauge value missing:\n%s", out)
	}
}

func TestFmtFloat(t *testing.T) {
	t.Parallel()
	for v, want := range map[float64]string{
		3:     "3",
		-12:   "-12",
		2.5:   "2.5",
		1e20:  "1e+20",
		0.001: "0.001",
	} {
		if got := fmtFloat(v); got != want {
			t.Errorf("fmtFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestAttributeRatio(t *testing.T) {
	t.Parallel()
	rows := Attribute([]Event{
		{Kind: KindSuperstep, Step: 0, Name: "a", Start: 0, End: 10, Pred: 8},
		{Kind: KindSuperstep, Step: 1, Name: "b", Start: 10, End: 12, Pred: 0},
		{Kind: KindBarrier, Step: 0}, // ignored
	})
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if math.Abs(rows[0].Ratio-1.25) > 1e-9 {
		t.Errorf("row 0 ratio = %v, want 1.25", rows[0].Ratio)
	}
	if rows[1].Ratio != 0 {
		t.Errorf("zero-pred row ratio = %v, want 0", rows[1].Ratio)
	}
}

func TestAttributeBreakdownStepMismatch(t *testing.T) {
	t.Parallel()
	bd := cost.Breakdown{G: 1, Steps: []cost.Step{
		{Label: "up", Work: 5, H: 3},
	}}
	rep := &trace.Report{Steps: []trace.Step{
		{Label: "up", Time: 9},
		{Label: "extra", Time: 2},
	}}
	out := AttributeBreakdown("t", bd, rep).String()
	// The unmatched measured step renders with "-" prediction partners
	// instead of being dropped.
	if !strings.Contains(out, "extra") {
		t.Errorf("extra measured step dropped:\n%s", out)
	}
	if !strings.Contains(out, "1.125") { // 9 / (5+3)
		t.Errorf("ratio for matched step missing:\n%s", out)
	}
}

func TestEventDur(t *testing.T) {
	t.Parallel()
	e := Event{Start: 2, End: 5.5}
	if got := e.Dur(); got != 3.5 {
		t.Errorf("Dur = %v, want 3.5", got)
	}
}

func TestWriteJSONLOneObjectPerEvent(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	evs := fixtureRecorder().Events()
	if err := WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != len(evs) {
		t.Errorf("%d lines for %d events", lines, len(evs))
	}
}

func BenchmarkRecorderDelivery(b *testing.B) {
	r := New(Config{Capacity: 1 << 12, SampleEvery: 64})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Delivery(0, 1, 2, 3, 128, float64(i))
	}
}

func BenchmarkRingPut(b *testing.B) {
	r := newRing(1 << 12)
	ev := Event{Kind: KindDelivery, Bytes: 128}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.put(ev)
	}
}

func ExampleAttribTable() {
	rows := Attribute([]Event{
		{Kind: KindSuperstep, Step: 0, Name: "gather", Scope: "root", Level: 1, Bytes: 100, Start: 0, End: 10, Pred: 10},
	})
	fmt.Println(len(rows))
	// Output: 1
}
