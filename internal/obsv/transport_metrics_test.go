package obsv

import (
	"testing"

	"hbspk/internal/pvm"
)

// The Recorder must satisfy pvm's structural FrameObserver extension so
// wire transports can feed it per-transport traffic counters.
var _ pvm.FrameObserver = (*Recorder)(nil)

func TestTransportFrameCounters(t *testing.T) {
	r := New(Config{})
	r.TransportFrame("unix", true, 100)
	r.TransportFrame("unix", true, 28)
	r.TransportFrame("unix", false, 64)
	r.TransportFrame("tcp", false, 9)

	reg := r.Metrics()
	cases := []struct {
		transport, dir string
		frames, bytes  int64
	}{
		{"unix", "tx", 2, 128},
		{"unix", "rx", 1, 64},
		{"tcp", "rx", 1, 9},
	}
	for _, tc := range cases {
		frames := reg.Counter("hbspk_transport_frames_total", "transport", tc.transport, "dir", tc.dir).Value()
		bytes := reg.Counter("hbspk_transport_bytes_total", "transport", tc.transport, "dir", tc.dir).Value()
		if frames != tc.frames || bytes != tc.bytes {
			t.Errorf("%s/%s: frames=%d bytes=%d, want frames=%d bytes=%d",
				tc.transport, tc.dir, frames, bytes, tc.frames, tc.bytes)
		}
	}

	// Nil receiver: the engines' observability-off path.
	var nilR *Recorder
	nilR.TransportFrame("unix", true, 1)
}
