package obsv

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the exporter golden files")

// fixtureRecorder replays a small deterministic run through a Recorder:
// two supersteps with barriers and deliveries, a collective span, a
// chaos injection, and substrate observations. Every exporter golden
// test renders this same fixture.
func fixtureRecorder() *Recorder {
	r := New(Config{Capacity: 64})
	r.Collective("gather", 2, 0, 260, 1200)
	r.HRelation(900)
	r.BarrierWait(0, 0, "cluster", 1, 80, 120)
	r.BarrierWait(0, 1, "cluster", 1, 95, 120)
	r.Delivery(0, 1, 0, 3, 400, 120)
	r.Delivery(0, 2, 0, 3, 500, 120)
	r.Superstep(0, "gather", "cluster", 1, 0, 120, 110.5, 900)
	r.Chaos("drop", 1, 2, 0, 130)
	r.HRelation(300)
	r.BarrierWait(1, 0, "root", 2, 200, 260)
	r.Delivery(1, 0, 2, 4, 300, 260)
	r.Superstep(1, "bcast", "root", 2, 120, 260, 150, 300)
	r.MailboxDepth(2)
	r.MailboxDepth(7)
	r.PoolDraw(false)
	r.PoolDraw(true)
	r.PoolDraw(true)
	return r
}

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/obsv -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file; diff below or rerun with -update\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenJSONL(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, fixtureRecorder().Events()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "events.jsonl.golden", buf.Bytes())
}

func TestGoldenChromeTrace(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fixtureRecorder().Events()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.json.golden", buf.Bytes())
}

func TestGoldenPrometheus(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := fixtureRecorder().Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.prom.golden", buf.Bytes())
}

func TestGoldenAttribution(t *testing.T) {
	t.Parallel()
	rows := Attribute(fixtureRecorder().Events())
	tb := AttribTable("attribution: predicted T_i vs measured", rows)
	checkGolden(t, "attribution.txt.golden", []byte(tb.String()))
}
