package obsv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The static↔runtime conformance gate. hbspk-vet exports the static
// communication graph of the analyzed packages as a CommGraphDoc
// (`-commgraph-out`); this file is the runtime half: it loads that
// document plus a run's JSONL span events and verifies every observed
// message delivery is explained by a static edge. Communication the
// analysis never saw — a send added behind the analyzers' back, a tag
// rewritten in flight, chaos duplications with forged identities — is
// reported as a conformance violation. The reverse direction (static
// edges that never fired) is advisory: a whole-repo graph legitimately
// contains edges the particular run does not exercise.

// CommGraphSchema identifies the wire format; bump on incompatible
// change. The serialization contract (stable ordering, "*" wildcards,
// symbolic byte expressions) is documented in DESIGN.md §5.6.
const CommGraphSchema = "hbspk-commgraph/1"

// CommGraphDoc is the exported static communication topology of a set
// of packages: per function, per superstep, the message edges and
// collective calls with their symbolic payload-size expressions.
type CommGraphDoc struct {
	Schema   string     `json:"schema"`
	Module   string     `json:"module,omitempty"`
	Packages []PkgGraph `json:"packages"`
}

// PkgGraph is one package's functions, sorted by (file, line).
type PkgGraph struct {
	Path  string      `json:"path"`
	Funcs []FuncGraph `json:"funcs"`
}

// FuncGraph is the per-superstep topology of one function body.
type FuncGraph struct {
	Name  string     `json:"name"`
	File  string     `json:"file"`
	Line  int        `json:"line"`
	Steps []StepTopo `json:"steps"`
}

// StepTopo is one superstep segment: the sends and collectives between
// two synchronizing calls, the closing barrier, and the segment's
// symbolic cost bound.
type StepTopo struct {
	// Index is the segment's position in the body, 0-based; the last
	// segment of a body with a trailing sync has Sync == "".
	Index int `json:"index"`
	// Sync names the closing synchronizing call ("Sync(scope)",
	// "GatherHier", ...); "" for a trailing segment with no barrier.
	Sync string `json:"sync,omitempty"`
	// Loop marks segments inside a synchronizing loop: the edges and
	// cost are per iteration.
	Loop bool `json:"loop,omitempty"`
	// Cost is the segment's symbolic cost-bound expression.
	Cost string `json:"cost,omitempty"`
	// Edges are the raw sends, sorted by (src, dst, tag, bytes).
	Edges []CommEdge `json:"edges,omitempty"`
	// Collectives are collective-library calls (each expands to its own
	// edges at run time), sorted.
	Collectives []string `json:"collectives,omitempty"`
}

// CommEdge is one static send: each endpoint and the tag are either a
// decimal literal the analysis could fold or "*" (statically unknown).
type CommEdge struct {
	Src   string `json:"src"`
	Dst   string `json:"dst"`
	Tag   string `json:"tag"`
	Bytes string `json:"bytes,omitempty"`
}

// Normalize sorts the document into its canonical order so encoding is
// deterministic regardless of construction order.
func (d *CommGraphDoc) Normalize() {
	sort.Slice(d.Packages, func(i, j int) bool { return d.Packages[i].Path < d.Packages[j].Path })
	for pi := range d.Packages {
		p := &d.Packages[pi]
		sort.Slice(p.Funcs, func(i, j int) bool {
			if p.Funcs[i].File != p.Funcs[j].File {
				return p.Funcs[i].File < p.Funcs[j].File
			}
			return p.Funcs[i].Line < p.Funcs[j].Line
		})
		for fi := range p.Funcs {
			for si := range p.Funcs[fi].Steps {
				s := &p.Funcs[fi].Steps[si]
				sort.Slice(s.Edges, func(i, j int) bool { return s.Edges[i].less(s.Edges[j]) })
				sort.Strings(s.Collectives)
			}
		}
	}
}

func (e CommEdge) less(o CommEdge) bool {
	if e.Src != o.Src {
		return e.Src < o.Src
	}
	if e.Dst != o.Dst {
		return e.Dst < o.Dst
	}
	if e.Tag != o.Tag {
		return e.Tag < o.Tag
	}
	return e.Bytes < o.Bytes
}

// WriteJSON encodes the document canonically (normalized, indented,
// stable key order via the struct definitions).
func (d *CommGraphDoc) WriteJSON(w io.Writer) error {
	d.Normalize()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("obsv: writing commgraph: %w", err)
	}
	return nil
}

// ParseCommGraph decodes and validates a commgraph document.
func ParseCommGraph(r io.Reader) (*CommGraphDoc, error) {
	var d CommGraphDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("obsv: parsing commgraph: %w", err)
	}
	if d.Schema != CommGraphSchema {
		return nil, fmt.Errorf("obsv: commgraph schema %q, want %q", d.Schema, CommGraphSchema)
	}
	return &d, nil
}

// Delivery is one observed (src, dst, tag) message class from a run's
// JSONL events, with its occurrence count and total bytes.
type Delivery struct {
	Src, Dst, Tag int
	Count         int
	Bytes         int64
}

// ReadDeliveries extracts the delivery events from a JSONL event stream
// (the format WriteJSONL emits), aggregated by (src, dst, tag) and
// sorted. Unknown lines and non-delivery kinds are skipped, so the
// reader accepts a full mixed event file.
func ReadDeliveries(r io.Reader) ([]Delivery, error) {
	type key struct{ src, dst, tag int }
	agg := map[key]*Delivery{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e jsonlEvent
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("obsv: events line %d: %w", line, err)
		}
		if e.Kind != KindDelivery.String() {
			continue
		}
		k := key{int(e.Src), int(e.Dst), int(e.Tag)}
		d := agg[k]
		if d == nil {
			d = &Delivery{Src: k.src, Dst: k.dst, Tag: k.tag}
			agg[k] = d
		}
		d.Count++
		d.Bytes += e.Bytes
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obsv: reading events: %w", err)
	}
	out := make([]Delivery, 0, len(agg))
	for _, d := range agg {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Tag != b.Tag {
			return a.Tag < b.Tag
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
	return out, nil
}

// endpointMatches reports whether a static endpoint/tag pattern ("*" or
// a decimal literal) covers the concrete runtime value.
func endpointMatches(pattern string, v int) bool {
	if pattern == "*" || pattern == "" {
		return true
	}
	n, err := strconv.Atoi(pattern)
	return err == nil && n == v
}

// Matches reports whether the static edge explains the delivery.
func (e CommEdge) Matches(d Delivery) bool {
	return endpointMatches(e.Src, d.Src) && endpointMatches(e.Dst, d.Dst) && endpointMatches(e.Tag, d.Tag)
}

// EdgeRef locates one static edge for reporting.
type EdgeRef struct {
	Pkg, Func string
	Step      int
	Edge      CommEdge
}

func (r EdgeRef) String() string {
	return fmt.Sprintf("%s.%s step %d: (%s -> %s, tag %s)", r.Pkg, r.Func, r.Step, r.Edge.Src, r.Edge.Dst, r.Edge.Tag)
}

// ConformanceReport is the outcome of checking a run against the static
// communication graph.
type ConformanceReport struct {
	// Unexplained are observed deliveries no static edge covers:
	// untracked communication, the fatal direction.
	Unexplained []Delivery
	// Unobserved are static edges with a fully concrete tag that the
	// run never exercised: advisory (dead code, or a run that simply
	// does not take that path).
	Unobserved []EdgeRef
	// Deliveries and Edges count what was checked.
	Deliveries, Edges int
}

// OK reports whether the run conforms: every observed delivery is
// explained by the static graph.
func (r *ConformanceReport) OK() bool { return len(r.Unexplained) == 0 }

// String renders the report for humans.
func (r *ConformanceReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conformance: %d delivery class(es) against %d static edge(s)\n", r.Deliveries, r.Edges)
	if r.OK() {
		b.WriteString("every observed delivery is explained by a static edge\n")
	}
	for _, d := range r.Unexplained {
		fmt.Fprintf(&b, "UNEXPLAINED delivery (src %d -> dst %d, tag %d) x%d, %d bytes: no static edge declares it\n",
			d.Src, d.Dst, d.Tag, d.Count, d.Bytes)
	}
	for _, e := range r.Unobserved {
		fmt.Fprintf(&b, "unobserved static edge %s (advisory)\n", e)
	}
	return b.String()
}

// CheckConformance verifies every delivery of the run against the
// static graph. The containment direction is sound for what the static
// analysis models — raw Ctx.Send edges and collective-library tags —
// because the exporter over-approximates unknown endpoints to "*": a
// delivery is only unexplained when even the over-approximation cannot
// produce it.
func CheckConformance(doc *CommGraphDoc, deliveries []Delivery) *ConformanceReport {
	rep := &ConformanceReport{Deliveries: len(deliveries)}
	type flatEdge struct {
		ref  EdgeRef
		seen bool
	}
	var edges []*flatEdge
	for _, p := range doc.Packages {
		for _, f := range p.Funcs {
			for _, s := range f.Steps {
				for _, e := range s.Edges {
					edges = append(edges, &flatEdge{ref: EdgeRef{Pkg: p.Path, Func: f.Name, Step: s.Index, Edge: e}})
				}
			}
		}
	}
	rep.Edges = len(edges)
	for _, d := range deliveries {
		explained := false
		for _, fe := range edges {
			if fe.ref.Edge.Matches(d) {
				fe.seen = true
				explained = true
				// Keep scanning: every edge that can produce the
				// delivery counts as exercised.
			}
		}
		if !explained {
			rep.Unexplained = append(rep.Unexplained, d)
		}
	}
	for _, fe := range edges {
		if !fe.seen && fe.ref.Edge.Tag != "*" && fe.ref.Edge.Tag != "" {
			rep.Unobserved = append(rep.Unobserved, fe.ref)
		}
	}
	return rep
}
