package obsv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// The metrics registry. Metric handles (Counter, Gauge, Histogram) are
// lock-free atomics once obtained; obtaining one takes the registry
// lock, so hot paths hold handles instead of looking metrics up per
// update. Families are typed at first registration; Prometheus text
// export renders families and label sets in sorted order so output is
// deterministic and golden-testable.

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; negative deltas are ignored.
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge's value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the gauge's value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution with cumulative
// (Prometheus-style) bucket semantics.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// metricKind types a family at first registration.
type metricKind uint8

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is one metric name: its type, help text, and children keyed by
// serialized label set.
type family struct {
	kind     metricKind
	help     string
	bounds   []float64
	children map[string]any // serialized labels → *Counter/*Gauge/*Histogram
}

// Registry hosts metric families. The zero value is not usable; create
// with NewRegistry. A nil *Registry returns nil handles, which are
// themselves no-ops, so disabled observability needs no branches.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey serializes k/v pairs into a canonical child key and the
// rendered Prometheus label block.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(a, b int) bool { return kvs[a].k < kvs[b].k })
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	return b.String()
}

func (g *Registry) fam(name string, kind metricKind) *family {
	f, ok := g.families[name]
	if !ok {
		f = &family{kind: kind, children: make(map[string]any)}
		g.families[name] = f
	} else if f.kind == 0 {
		// Help() pre-created the family untyped; first typed use wins.
		f.kind = kind
	}
	return f
}

// Counter returns the counter of the family name with the given label
// pairs (key, value, key, value, ...), creating it on first use.
func (g *Registry) Counter(name string, labels ...string) *Counter {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	f := g.fam(name, kindCounter)
	key := labelKey(labels)
	c, ok := f.children[key].(*Counter)
	if !ok {
		c = &Counter{}
		f.children[key] = c
	}
	return c
}

// Gauge returns the gauge of the family name with the given label
// pairs, creating it on first use.
func (g *Registry) Gauge(name string, labels ...string) *Gauge {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	f := g.fam(name, kindGauge)
	key := labelKey(labels)
	v, ok := f.children[key].(*Gauge)
	if !ok {
		v = &Gauge{}
		f.children[key] = v
	}
	return v
}

// Histogram returns the histogram of the family name with the given
// bucket bounds and label pairs, creating it on first use. Bounds are
// fixed at family creation; later calls reuse the family's bounds.
func (g *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	f := g.fam(name, kindHistogram)
	if f.bounds == nil {
		f.bounds = append([]float64(nil), bounds...)
		sort.Float64s(f.bounds)
	}
	key := labelKey(labels)
	h, ok := f.children[key].(*Histogram)
	if !ok {
		h = &Histogram{bounds: f.bounds, buckets: make([]atomic.Int64, len(f.bounds)+1)}
		f.children[key] = h
	}
	return h
}

// Help sets the family's HELP text (creates an untyped-as-counter
// family if the name is new; the first typed registration wins).
func (g *Registry) Help(name, help string) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.families[name]; ok {
		f.help = help
		return
	}
	g.families[name] = &family{help: help, children: make(map[string]any)}
}

// fmtFloat renders a sample the way Prometheus expects: integral
// values without an exponent, the rest in shortest form.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format, families and label sets sorted.
func (g *Registry) WritePrometheus(w io.Writer) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	names := make([]string, 0, len(g.families))
	for name := range g.families {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := g.families[name]
		if len(f.children) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.kind)
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			switch m := f.children[key].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", name, block(key), m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", name, block(key), fmtFloat(m.Value()))
			case *Histogram:
				cum := int64(0)
				for i, bound := range m.bounds {
					cum += m.buckets[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", name, block(join(key, `le=`+quoteFloat(bound))), cum)
				}
				cum += m.buckets[len(m.bounds)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", name, block(join(key, `le="+Inf"`)), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", name, block(key), fmtFloat(m.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", name, block(key), m.Count())
			}
		}
	}
	g.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

func quoteFloat(v float64) string { return `"` + fmtFloat(v) + `"` }

// block renders a serialized label key as {..} or nothing.
func block(key string) string {
	if key == "" {
		return ""
	}
	return "{" + key + "}"
}

// join appends one rendered label to a serialized key.
func join(key, label string) string {
	if key == "" {
		return label
	}
	return key + "," + label
}
