package obsv

import (
	"encoding/json"
	"fmt"
	"io"
)

// Exporters. All three formats render a []Event snapshot
// deterministically (events are already in emission order), so they
// are golden-testable.

// jsonlEvent is the JSONL wire form of an Event. Fields that do not
// apply to the event's kind are omitted.
type jsonlEvent struct {
	Kind  string  `json:"kind"`
	Step  int32   `json:"step"`
	Pid   int32   `json:"pid"`
	Src   int32   `json:"src"`
	Dst   int32   `json:"dst"`
	Tag   int32   `json:"tag"`
	Level int32   `json:"level"`
	Bytes int64   `json:"bytes,omitempty"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Pred  float64 `json:"pred,omitempty"`
	Name  string  `json:"name,omitempty"`
	Scope string  `json:"scope,omitempty"`
}

// WriteJSONL writes one JSON object per line per event. Integer
// identity fields always appear (-1 means "not applicable"; 0 is a
// valid pid/step/tag and must not vanish).
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, e := range events {
		je := jsonlEvent{
			Kind: e.Kind.String(), Step: e.Step, Pid: e.Pid,
			Src: e.Src, Dst: e.Dst, Tag: e.Tag,
			Level: e.Level, Bytes: e.Bytes,
			Start: e.Start, End: e.End, Pred: e.Pred,
			Name: e.Name, Scope: e.Scope,
		}
		if err := enc.Encode(je); err != nil {
			return fmt.Errorf("obsv: writing jsonl: %w", err)
		}
	}
	return nil
}

// chromeEvent is one Chrome trace-event (the JSON Array/Object format
// understood by chrome://tracing and Perfetto). Timestamps are
// nominally microseconds; for virtual-clock runs the unit is one
// fastest-machine time unit instead (the viewer only cares about
// relative magnitudes).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int32          `json:"pid"`
	Tid  int32          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the events as a Chrome trace. Supersteps and
// collectives become complete ("ph":"X") slices; barrier waits become
// per-processor slices; deliveries and chaos injections become instant
// ("ph":"i") events on the receiving processor's track. The trace
// process is the engine (pid 0); each HBSP processor is a thread.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		Unit        string        `json:"displayTimeUnit"`
	}{Unit: "ms"}
	// Metadata: name the engine-wide track (tid -1 renders oddly, remap
	// to a high tid) and each processor thread lazily.
	const engineTid = 1_000_000
	tid := func(pid int32) int32 {
		if pid < 0 {
			return engineTid
		}
		return pid
	}
	for _, e := range events {
		ce := chromeEvent{Name: e.Name, Cat: e.Kind.String(), Pid: 0, Tid: tid(e.Pid), Ts: e.Start}
		switch e.Kind {
		case KindSuperstep:
			d := e.Dur()
			ce.Ph, ce.Dur = "X", &d
			ce.Args = map[string]any{
				"step": e.Step, "level": e.Level, "scope": e.Scope,
				"bytes": e.Bytes, "pred": e.Pred, "measured": d,
			}
		case KindCollective:
			d := e.Dur()
			ce.Ph, ce.Dur = "X", &d
			ce.Args = map[string]any{"bytes": e.Bytes}
		case KindBarrier:
			d := e.Dur()
			ce.Ph, ce.Dur = "X", &d
			ce.Name = "barrier"
			ce.Args = map[string]any{"step": e.Step, "level": e.Level, "scope": e.Scope}
		case KindDelivery:
			ce.Ph, ce.S = "i", "t"
			ce.Name = "delivery"
			ce.Args = map[string]any{
				"step": e.Step, "src": e.Src, "dst": e.Dst,
				"tag": e.Tag, "bytes": e.Bytes,
			}
		case KindChaos:
			ce.Ph, ce.S = "i", "p"
			ce.Name = "chaos:" + e.Name
			ce.Args = map[string]any{"step": e.Step, "src": e.Src, "dst": e.Dst}
		case KindReorg:
			ce.Ph, ce.S = "i", "g"
			ce.Name = "reorg"
			ce.Args = map[string]any{"epoch": e.Step, "moved": e.Src}
		default:
			continue
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("obsv: writing chrome trace: %w", err)
	}
	return nil
}
