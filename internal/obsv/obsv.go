// Package obsv is the observability layer of HBSP^k: structured spans
// for supersteps, collectives, barriers and message deliveries, a
// metrics registry (counters, gauges, histograms) with a Prometheus
// text exporter, model-vs-measured cost attribution, and trace
// exporters (JSONL and Chrome trace-event JSON, loadable in
// chrome://tracing or Perfetto).
//
// The layer is built for a near-zero disabled cost: every emission
// helper is a method on *Recorder that no-ops on a nil receiver, so an
// engine holds a plain `*obsv.Recorder` field and the hot path pays one
// nil check when observability is off. When on, events land in a
// lock-free ring buffer of inline records — the ring's slots are the
// event pool, so steady-state emission allocates nothing — and a
// sampling knob thins the highest-volume span kind (message
// deliveries).
//
// Time base: events carry the emitting engine's clock — virtual time
// units for the Virtual engine, microseconds for the Concurrent engine
// and the pvm substrate. Exporters pass the values through (Chrome
// trace timestamps are nominally microseconds; for virtual-clock runs
// the unit is "one fastest-machine time unit" instead).
package obsv

import (
	"sync/atomic"
)

// Kind classifies an event.
type Kind uint8

const (
	// KindSuperstep is one completed super^i-step: Start/End bound the
	// step on the engine clock, Pred carries the cost model's predicted
	// T_i(λ) for the same step, Bytes its delivered traffic.
	KindSuperstep Kind = iota + 1
	// KindCollective is one collective-library call on one processor
	// (wall-clock bounds; collectives span several supersteps).
	KindCollective
	// KindBarrier is one processor's wait inside a Sync: Start is the
	// moment the processor entered the barrier, End the moment the step
	// completed; End-Start is the barrier-wait the processor paid.
	KindBarrier
	// KindDelivery is one delivered message (sampled by SampleEvery).
	KindDelivery
	// KindChaos is one observed fault injection (drop, duplicate,
	// delay, crash, straggler); Name carries the fate.
	KindChaos
	// KindReorg is one barrier-time tree reorganization: Step carries
	// the reorg epoch, Src the number of leaves that changed slots.
	KindReorg
	// KindPick is one planner variant selection (DESIGN.md §5.9): Name
	// carries "family->Variant", Bytes the payload size the decision
	// was made for, Pred the corrected model cost that won.
	KindPick
)

// String returns the kind's wire name (used by every exporter).
func (k Kind) String() string {
	switch k {
	case KindSuperstep:
		return "superstep"
	case KindCollective:
		return "collective"
	case KindBarrier:
		return "barrier"
	case KindDelivery:
		return "delivery"
	case KindChaos:
		return "chaos"
	case KindReorg:
		return "reorg"
	case KindPick:
		return "pick"
	}
	return "unknown"
}

// Event is one recorded span or point event. The struct is stored
// inline in the ring's slots; emission copies it by value and never
// allocates.
type Event struct {
	Kind Kind
	// Step is the superstep index the event belongs to (-1 = unknown,
	// e.g. a collective span covering several steps).
	Step int32
	// Pid is the processor the event describes (-1 = engine-wide).
	Pid int32
	// Src, Dst, Tag identify a message for delivery/chaos events
	// (-1 = not applicable).
	Src, Dst, Tag int32
	// Level is the scope level i of a superstep/barrier event.
	Level int32
	// Bytes is the traffic the event accounts for.
	Bytes int64
	// Start and End bound the event on the emitting engine's clock;
	// point events set End = Start.
	Start, End float64
	// Pred is the cost model's predicted T_i(λ) for superstep spans
	// (0 elsewhere).
	Pred float64
	// Name labels the event: the superstep label, collective name, or
	// chaos fate.
	Name string
	// Scope is the scope machine's label for superstep/barrier events.
	Scope string
}

// Dur returns the event's span length on its engine clock.
func (e Event) Dur() float64 { return e.End - e.Start }

// ring is a lock-free bounded MPMC event buffer keeping the most
// recent Capacity events. Writers claim a slot with an atomic ticket
// and guard the write with a per-slot sequence (odd = write in
// progress); a writer that catches a wrapped slot still being written
// drops its event instead of blocking — emission never waits.
type ring struct {
	slots []ringSlot
	mask  uint64
	next  atomic.Uint64 // tickets issued = events offered
	drop  atomic.Uint64 // events dropped on wrapped-slot collisions
}

type ringSlot struct {
	// seq is even when the slot is stable (2·(ticket+1) of the event it
	// holds, 0 when empty) and odd while a writer owns it.
	seq atomic.Uint64
	ev  Event
}

func newRing(capacity int) *ring {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &ring{slots: make([]ringSlot, n), mask: uint64(n - 1)}
}

// put records one event. Lock-free: a slot whose previous tenant is
// still mid-write (the ring wrapped a full lap during that write) is
// abandoned and the event counted as dropped.
func (r *ring) put(ev Event) {
	ticket := r.next.Add(1) - 1
	s := &r.slots[ticket&r.mask]
	old := s.seq.Load()
	if old&1 == 1 || !s.seq.CompareAndSwap(old, old|1) {
		r.drop.Add(1)
		return
	}
	s.ev = ev
	s.seq.Store(2 * (ticket + 1))
}

// snapshot returns the buffered events in emission order. It must not
// race active writers (exporters run after the engines quiesce); a
// slot observed mid-write is skipped rather than torn.
func (r *ring) snapshot() []Event {
	total := r.next.Load()
	n := total
	if n > uint64(len(r.slots)) {
		n = uint64(len(r.slots))
	}
	out := make([]Event, 0, n)
	for ticket := total - n; ticket < total; ticket++ {
		s := &r.slots[ticket&r.mask]
		seq := s.seq.Load()
		if seq != 2*(ticket+1) {
			continue // overwritten by a later lap, or still being written
		}
		out = append(out, s.ev)
	}
	return out
}

// lost returns how many offered events are no longer in the buffer:
// overwritten by newer laps plus write-collision drops.
func (r *ring) lost() uint64 {
	total := r.next.Load()
	kept := total
	if kept > uint64(len(r.slots)) {
		kept = uint64(len(r.slots))
	}
	return total - kept + r.drop.Load()
}
