package obsv

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugServer is a live diagnostics endpoint for a running simulation:
// /metrics (Prometheus text), /debug/pprof/* and /debug/vars (expvar).
// It serves the metrics registry only — span snapshots are
// post-quiesce (see ring.snapshot) and are exported by the CLI after
// the run instead.
type DebugServer struct {
	Addr string // the bound address (useful with ":0")
	ln   net.Listener
	srv  *http.Server
}

// ServeDebug binds addr and serves the debug endpoint in the
// background until Close.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obsv: binding debug endpoint: %w", err)
	}
	ds := &DebugServer{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = ds.srv.Serve(ln) }()
	return ds, nil
}

// Close stops the endpoint.
func (d *DebugServer) Close() error {
	if d == nil || d.srv == nil {
		return nil
	}
	return d.srv.Close()
}
