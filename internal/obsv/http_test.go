package obsv

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeDebugMetricsAndVars(t *testing.T) {
	t.Parallel()
	rec := fixtureRecorder()
	ds, err := ServeDebug("127.0.0.1:0", rec.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ds.Close() })

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + ds.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics returned %d", code)
	}
	if !strings.Contains(body, "hbspk_supersteps_total 2") {
		t.Errorf("/metrics missing superstep counter:\n%s", body)
	}

	code, body = get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars returned %d", code)
	}
	if !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars missing expvar memstats")
	}

	if code, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline returned %d", code)
	}
}

func TestServeDebugBadAddr(t *testing.T) {
	t.Parallel()
	if _, err := ServeDebug("256.0.0.1:bogus", NewRegistry()); err == nil {
		t.Error("bad address must fail to bind")
	}
}

func TestDebugServerNilClose(t *testing.T) {
	t.Parallel()
	var ds *DebugServer
	if err := ds.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}
