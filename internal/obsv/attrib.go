package obsv

import (
	"fmt"

	"hbspk/internal/cost"
	"hbspk/internal/trace"
)

// Attribution joins the cost model's predicted per-superstep time
// T_i(λ) = w_i + g·h + L_{i,j} against what the engine measured,
// mirroring the paper's Tables 2–3 (predicted vs measured with an
// accuracy factor per row).

// AttribRow is one superstep of the attribution report.
type AttribRow struct {
	Step  int
	Label string
	Scope string
	Level int
	Bytes int64
	// Pred is the model's T_i; Measured the engine's span length
	// (virtual units or µs, per the engine); Ratio is Measured/Pred
	// (>1 = slower than the model, 0 when Pred is 0).
	Pred, Measured, Ratio float64
}

// Attribute extracts attribution rows from a span snapshot's
// superstep events, in execution order.
func Attribute(events []Event) []AttribRow {
	var rows []AttribRow
	for _, e := range events {
		if e.Kind != KindSuperstep {
			continue
		}
		row := AttribRow{
			Step: int(e.Step), Label: e.Name, Scope: e.Scope,
			Level: int(e.Level), Bytes: e.Bytes,
			Pred: e.Pred, Measured: e.Dur(),
		}
		if row.Pred > 0 {
			row.Ratio = row.Measured / row.Pred
		}
		rows = append(rows, row)
	}
	return rows
}

// AttribTable renders attribution rows as a table with a totals line.
func AttribTable(title string, rows []AttribRow) *trace.Table {
	tb := trace.NewTable(title,
		"#", "label", "scope", "lvl", "bytes", "predicted", "measured", "meas/pred")
	var predSum, measSum float64
	for _, r := range rows {
		ratio := "-"
		if r.Pred > 0 {
			ratio = fmt.Sprintf("%.3f", r.Ratio)
		}
		tb.Add(
			fmt.Sprintf("%d", r.Step), r.Label, r.Scope,
			fmt.Sprintf("%d", r.Level), fmt.Sprintf("%d", r.Bytes),
			fmt.Sprintf("%.4g", r.Pred), fmt.Sprintf("%.4g", r.Measured), ratio,
		)
		predSum += r.Pred
		measSum += r.Measured
	}
	total := "-"
	if predSum > 0 {
		total = fmt.Sprintf("%.3f", measSum/predSum)
	}
	tb.Add("", "total", "", "", "",
		fmt.Sprintf("%.4g", predSum), fmt.Sprintf("%.4g", measSum), total)
	return tb
}

// AttributeBreakdown joins a closed-form cost.Breakdown (the analytic
// prediction for a whole collective) against a measured trace.Report,
// step by step in execution order. Extra steps on either side render
// with a "-" partner, so a step-count mismatch is visible rather than
// silently truncated.
func AttributeBreakdown(title string, bd cost.Breakdown, rep *trace.Report) *trace.Table {
	tb := trace.NewTable(title,
		"#", "predicted step", "T_pred", "measured step", "T_meas", "meas/pred")
	n := len(bd.Steps)
	if len(rep.Steps) > n {
		n = len(rep.Steps)
	}
	var predSum, measSum float64
	for i := 0; i < n; i++ {
		pl, pv, ml, mv := "-", "-", "-", "-"
		ratio := "-"
		var pt, mt float64
		if i < len(bd.Steps) {
			pt = bd.Steps[i].Time(bd.G)
			pl, pv = bd.Steps[i].Label, fmt.Sprintf("%.4g", pt)
			predSum += pt
		}
		if i < len(rep.Steps) {
			mt = rep.Steps[i].Time
			ml, mv = rep.Steps[i].Label, fmt.Sprintf("%.4g", mt)
			measSum += mt
		}
		if i < len(bd.Steps) && i < len(rep.Steps) && pt > 0 {
			ratio = fmt.Sprintf("%.3f", mt/pt)
		}
		tb.Add(fmt.Sprintf("%d", i), pl, pv, ml, mv, ratio)
	}
	total := "-"
	if predSum > 0 {
		total = fmt.Sprintf("%.3f", measSum/predSum)
	}
	tb.Add("", "total", fmt.Sprintf("%.4g", predSum),
		"", fmt.Sprintf("%.4g", measSum), total)
	return tb
}
