package pvm

import (
	"fmt"
	"sync"
	"testing"
)

// Microbenchmarks of the message fabric's hot path. Each reports
// allocs/op so the benchmark-regression gate (make bench, BENCH_PR4.json)
// can hold the send path to its allocation budget.
//
// Traffic is paced with a credit window, mirroring how superstep
// barriers bound in-flight messages in real HBSP runs: an unpaced
// producer would outrun the receiver without bound, which measures
// queue growth rather than the send path.

// benchWindow is the number of in-flight messages allowed before the
// sender waits for a credit.
const benchWindow = 32

// benchCreditTag is reserved for flow-control credits.
const benchCreditTag = 1 << 20

func sendCredit(t *Task, dst TID) error {
	return t.Send(dst, benchCreditTag, NewBuffer().PackInt32(1))
}

func awaitCredit(t *Task, src TID) error {
	m, err := t.Recv(src, benchCreditTag)
	if err != nil {
		return err
	}
	m.Release()
	return nil
}

func BenchmarkSendRecv(b *testing.B) {
	for _, size := range []int{64, 4096, 65536} {
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			runSendRecvBench(b, size)
		})
	}
}

// BenchmarkSendRecvObsvOff is the observability overhead guard: the
// identical workload to BenchmarkSendRecv with the observer explicitly
// cleared. make bench holds it within 5% of BenchmarkSendRecv on both
// ns/op and allocs/op (hbspk-benchjson -max-rel), so the disabled-path
// cost of the obsv hooks — one atomic pointer load per delivery and
// pool draw — stays invisible.
func BenchmarkSendRecvObsvOff(b *testing.B) {
	SetObserver(nil)
	for _, size := range []int{64, 4096, 65536} {
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			runSendRecvBench(b, size)
		})
	}
}

// benchObserver is a minimal metrics sink standing in for
// obsv.Recorder (pvm cannot import obsv: structural interface only).
type benchObserver struct{ depth, draws int64 }

func (o *benchObserver) MailboxDepth(d int) { o.depth += int64(d) }
func (o *benchObserver) PoolDraw(hit bool)  { o.draws++ }

// BenchmarkSendRecvObsvOn measures the enabled-observer cost of the
// same workload: informational, not gated.
func BenchmarkSendRecvObsvOn(b *testing.B) {
	SetObserver(&benchObserver{})
	defer SetObserver(nil)
	for _, size := range []int{64, 4096, 65536} {
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			runSendRecvBench(b, size)
		})
	}
}

// runSendRecvBench is the shared credit-paced ping workload behind the
// SendRecv benchmark family.
func runSendRecvBench(b *testing.B, size int) {
	payload := make([]byte, size)
	s := NewSystem()
	var recvTID, sendTID TID
	done := make(chan error, 1)
	ready := make(chan struct{})
	recvTID = s.Spawn("recv", func(t *Task) error {
		close(ready)
		for i := 0; i < b.N; i++ {
			m, err := t.Recv(AnySource, 7)
			if err != nil {
				done <- err
				return err
			}
			_, err = m.Buffer().UnpackBytes()
			m.Release()
			if err != nil {
				done <- err
				return err
			}
			if (i+1)%benchWindow == 0 {
				if err := sendCredit(t, sendTID); err != nil {
					done <- err
					return err
				}
			}
		}
		done <- nil
		return nil
	})
	sendTID = s.Spawn("send", func(t *Task) error {
		<-ready
		b.ReportAllocs()
		b.SetBytes(int64(size))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i >= benchWindow && i%benchWindow == 0 {
				if err := awaitCredit(t, recvTID); err != nil {
					return err
				}
			}
			buf := NewBuffer()
			buf.PackBytes(payload)
			if err := t.Send(recvTID, 7, buf); err != nil {
				return err
			}
		}
		b.StopTimer()
		return nil
	})
	if err := <-done; err != nil {
		b.Fatal(err)
	}
	if err := s.Wait(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMcastFanout measures one multicast to f destinations per
// iteration: the pooled fabric shares a single wire buffer across the
// fan-out.
func BenchmarkMcastFanout(b *testing.B) {
	for _, fanout := range []int{4, 16} {
		b.Run(fmt.Sprintf("f=%d", fanout), func(b *testing.B) {
			payload := make([]byte, 4096)
			s := NewSystem()
			tids := make([]TID, fanout)
			var sendTID TID
			var wg sync.WaitGroup
			wg.Add(fanout)
			ready := make(chan struct{})
			for i := 0; i < fanout; i++ {
				tids[i] = s.Spawn(fmt.Sprintf("recv%d", i), func(t *Task) error {
					defer wg.Done()
					<-ready
					for n := 0; n < b.N; n++ {
						m, err := t.Recv(AnySource, 3)
						if err != nil {
							return err
						}
						m.Release()
						if (n+1)%benchWindow == 0 {
							if err := sendCredit(t, sendTID); err != nil {
								return err
							}
						}
					}
					return nil
				})
			}
			sendTID = s.Spawn("send", func(t *Task) error {
				close(ready)
				b.ReportAllocs()
				b.SetBytes(int64(len(payload) * fanout))
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					if n >= benchWindow && n%benchWindow == 0 {
						for _, r := range tids {
							if err := awaitCredit(t, r); err != nil {
								return err
							}
						}
					}
					buf := NewBuffer()
					buf.PackBytes(payload)
					if err := t.Mcast(tids, 3, buf); err != nil {
						return err
					}
				}
				b.StopTimer()
				wg.Wait()
				return nil
			})
			if err := s.Wait(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkMailboxContention hammers one receiver from many senders:
// with the split sender/receiver locks, enqueues no longer serialize
// against the drain.
func BenchmarkMailboxContention(b *testing.B) {
	for _, senders := range []int{4, 16} {
		b.Run(fmt.Sprintf("senders=%d", senders), func(b *testing.B) {
			payload := make([]byte, 256)
			s := NewSystem()
			var recvTID TID
			sendTIDs := make([]TID, senders)
			done := make(chan error, 1)
			ready := make(chan struct{})
			total := b.N * senders
			recvTID = s.Spawn("recv", func(t *Task) error {
				close(ready)
				for i := 0; i < total; i++ {
					m, err := t.Recv(AnySource, AnyTag)
					if err != nil {
						done <- err
						return err
					}
					m.Release()
					if (i+1)%benchWindow == 0 {
						for _, st := range sendTIDs {
							if err := sendCredit(t, st); err != nil {
								done <- err
								return err
							}
						}
					}
				}
				done <- nil
				return nil
			})
			var start sync.WaitGroup
			start.Add(1)
			for i := 0; i < senders; i++ {
				i := i
				sendTIDs[i] = s.Spawn(fmt.Sprintf("send%d", i), func(t *Task) error {
					<-ready
					start.Wait()
					for n := 0; n < b.N; n++ {
						if n >= benchWindow && n%benchWindow == 0 {
							if err := awaitCredit(t, recvTID); err != nil {
								return err
							}
						}
						buf := NewBuffer()
						buf.PackBytes(payload)
						if err := t.Send(recvTID, i, buf); err != nil {
							return err
						}
					}
					return nil
				})
			}
			<-ready
			b.ReportAllocs()
			b.ResetTimer()
			start.Done()
			if err := <-done; err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := s.Wait(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
