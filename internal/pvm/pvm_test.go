package pvm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestBufferRoundTrip(t *testing.T) {
	b := NewBuffer()
	b.PackInt32(42, -7).PackInt64(1 << 40).PackFloat64(3.25).
		PackString("héllo").PackBytes([]byte{1, 2, 3})
	if v, err := b.UnpackInt32(); err != nil || v != 42 {
		t.Fatalf("int32 #1 = %v, %v", v, err)
	}
	if v, err := b.UnpackInt32(); err != nil || v != -7 {
		t.Fatalf("int32 #2 = %v, %v", v, err)
	}
	if v, err := b.UnpackInt64(); err != nil || v != 1<<40 {
		t.Fatalf("int64 = %v, %v", v, err)
	}
	if v, err := b.UnpackFloat64(); err != nil || v != 3.25 {
		t.Fatalf("float64 = %v, %v", v, err)
	}
	if v, err := b.UnpackString(); err != nil || v != "héllo" {
		t.Fatalf("string = %q, %v", v, err)
	}
	if v, err := b.UnpackBytes(); err != nil || !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("bytes = %v, %v", v, err)
	}
	if b.Remaining() != 0 {
		t.Errorf("remaining = %d, want 0", b.Remaining())
	}
}

func TestBufferTypeMismatchDetected(t *testing.T) {
	b := NewBuffer().PackInt32(1)
	if _, err := b.UnpackFloat64(); err == nil {
		t.Error("type mismatch not detected")
	}
}

func TestBufferUnderflow(t *testing.T) {
	b := NewBuffer()
	if _, err := b.UnpackInt32(); !errors.Is(err, ErrBufferUnderflow) {
		t.Errorf("err = %v, want ErrBufferUnderflow", err)
	}
}

func TestInt32SliceRoundTrip(t *testing.T) {
	in := []int32{5, -1, 0, 1 << 30}
	b := NewBuffer().PackInt32Slice(in)
	out, err := b.UnpackInt32Slice()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], in[i])
		}
	}
}

func TestPropertyBufferRoundTrip(t *testing.T) {
	f := func(i32 []int32, f64 []float64, s string) bool {
		b := NewBuffer()
		b.PackInt32Slice(i32)
		for _, v := range f64 {
			b.PackFloat64(v)
		}
		b.PackString(s)
		got32, err := b.UnpackInt32Slice()
		if err != nil || len(got32) != len(i32) {
			return false
		}
		for i := range i32 {
			if got32[i] != i32[i] {
				return false
			}
		}
		for _, v := range f64 {
			g, err := b.UnpackFloat64()
			if err != nil || (g != v && !(g != g && v != v)) { // NaN-safe
				return false
			}
		}
		gs, err := b.UnpackString()
		return err == nil && gs == s && b.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSendRecv(t *testing.T) {
	s := NewSystem()
	done := make(chan int32, 1)
	var a TID
	b := s.Spawn("receiver", func(t *Task) error {
		m, err := t.Recv(AnySource, 5)
		if err != nil {
			return err
		}
		defer m.Release()
		v, err := m.Buffer().UnpackInt32()
		if err != nil {
			return err
		}
		done <- v
		return nil
	})
	a = s.Spawn("sender", func(t *Task) error {
		return t.Send(b, 5, NewBuffer().PackInt32(99))
	})
	_ = a
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if v := <-done; v != 99 {
		t.Errorf("received %d, want 99", v)
	}
}

func TestSelectiveReceiveByTagAndSource(t *testing.T) {
	s := NewSystem()
	result := make(chan []int, 1)
	recv := s.Spawn("recv", func(t *Task) error {
		// Wait for both, then pick tag 2 first regardless of arrival.
		for t.Pending() < 2 {
			time.Sleep(10 * time.Microsecond)
		}
		var order []int
		m, err := t.Recv(AnySource, 2)
		if err != nil {
			return err
		}
		order = append(order, m.Tag)
		m, err = t.Recv(AnySource, 1)
		if err != nil {
			return err
		}
		order = append(order, m.Tag)
		result <- order
		return nil
	})
	s.Spawn("send", func(t *Task) error {
		if err := t.Send(recv, 1, NewBuffer().PackInt32(1)); err != nil {
			return err
		}
		return t.Send(recv, 2, NewBuffer().PackInt32(2))
	})
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := <-result; got[0] != 2 || got[1] != 1 {
		t.Errorf("selective order = %v, want [2 1]", got)
	}
}

func TestPerSenderOrderPreserved(t *testing.T) {
	s := NewSystem()
	const n = 200
	out := make(chan []int32, 1)
	recv := s.Spawn("recv", func(t *Task) error {
		var got []int32
		for i := 0; i < n; i++ {
			m, err := t.Recv(AnySource, AnyTag)
			if err != nil {
				return err
			}
			v, err := m.Buffer().UnpackInt32()
			m.Release()
			if err != nil {
				return err
			}
			got = append(got, v)
		}
		out <- got
		return nil
	})
	s.Spawn("send", func(t *Task) error {
		for i := int32(0); i < n; i++ {
			if err := t.Send(recv, 0, NewBuffer().PackInt32(i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	got := <-out
	for i := int32(0); i < n; i++ {
		if got[i] != i {
			t.Fatalf("order violated at %d: %d", i, got[i])
		}
	}
}

func TestMcastSkipsSelf(t *testing.T) {
	s := NewSystem()
	const peers = 4
	var tids []TID
	var mu sync.Mutex
	counts := make(map[TID]int)
	ready := make(chan struct{})
	for i := 0; i < peers; i++ {
		tid := s.Spawn(fmt.Sprintf("t%d", i), func(t *Task) error {
			<-ready
			if t.TID() == tids[0] {
				if err := t.Mcast(tids, 9, NewBuffer().PackInt32(1)); err != nil {
					return err
				}
				return nil
			}
			m, err := t.Recv(tids[0], 9)
			if err != nil {
				return err
			}
			m.Release()
			mu.Lock()
			counts[t.TID()]++
			mu.Unlock()
			return nil
		})
		tids = append(tids, tid)
	}
	close(ready)
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(counts) != peers-1 {
		t.Errorf("%d receivers, want %d", len(counts), peers-1)
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	s := NewSystem()
	const n = 8
	var mu sync.Mutex
	before, after := 0, 0
	for i := 0; i < n; i++ {
		s.Spawn(fmt.Sprintf("t%d", i), func(tk *Task) error {
			mu.Lock()
			before++
			mu.Unlock()
			if err := tk.Barrier("b", n); err != nil {
				return err
			}
			mu.Lock()
			if before != n {
				t.Errorf("task released before all arrived: %d/%d", before, n)
			}
			after++
			mu.Unlock()
			return nil
		})
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if after != n {
		t.Errorf("after = %d, want %d", after, n)
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	s := NewSystem()
	const n, rounds = 4, 5
	for i := 0; i < n; i++ {
		s.Spawn(fmt.Sprintf("t%d", i), func(t *Task) error {
			for r := 0; r < rounds; r++ {
				if err := t.Barrier("gen", n); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierExchangeGathersDeposits(t *testing.T) {
	s := NewSystem()
	const n, rounds = 4, 3
	for i := 0; i < n; i++ {
		i := i
		s.Spawn(fmt.Sprintf("t%d", i), func(tk *Task) error {
			for r := 0; r < rounds; r++ {
				got, err := tk.BarrierExchange("x", n, 0, []byte{byte(i), byte(r)})
				if err != nil {
					return err
				}
				if len(got) != n {
					return fmt.Errorf("round %d: %d deposits, want %d", r, len(got), n)
				}
				seen := make(map[byte]bool)
				for tid, b := range got {
					if len(b) != 2 || b[1] != byte(r) {
						return fmt.Errorf("round %d: deposit from %d = %v", r, tid, b)
					}
					seen[b[0]] = true
				}
				if len(seen) != n {
					return fmt.Errorf("round %d: deposits from %d distinct tasks, want %d", r, len(seen), n)
				}
			}
			return nil
		})
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierExchangeTimeoutWithdrawsDeposit(t *testing.T) {
	s := NewSystem()
	release := make(chan struct{})
	s.Spawn("early", func(tk *Task) error {
		// First arrival times out and must take its deposit with it.
		if _, err := tk.BarrierExchange("w", 2, 20*time.Millisecond, []byte("stale")); !errors.Is(err, ErrTimeout) {
			return fmt.Errorf("first arrival err = %v, want ErrTimeout", err)
		}
		close(release)
		got, err := tk.BarrierExchange("w", 2, 0, []byte("fresh"))
		if err != nil {
			return err
		}
		for _, b := range got {
			if string(b) == "stale" {
				return errors.New("withdrawn deposit leaked into the completed round")
			}
		}
		if len(got) != 2 {
			return fmt.Errorf("%d deposits, want 2", len(got))
		}
		return nil
	})
	s.Spawn("late", func(tk *Task) error {
		<-release
		got, err := tk.BarrierExchange("w", 2, 0, []byte("peer"))
		if err != nil {
			return err
		}
		if len(got) != 2 {
			return fmt.Errorf("%d deposits, want 2", len(got))
		}
		return nil
	})
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestSendToUnknownTask(t *testing.T) {
	s := NewSystem()
	s.Spawn("t", func(t *Task) error {
		if err := t.Send(12345, 0, NewBuffer()); err == nil {
			return errors.New("send to unknown task succeeded")
		}
		return nil
	})
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestHaltUnblocksRecvAndBarrier(t *testing.T) {
	s := NewSystem()
	s.Spawn("stuck-recv", func(t *Task) error {
		_, err := t.Recv(AnySource, AnyTag)
		if !errors.Is(err, ErrHalted) {
			return fmt.Errorf("recv err = %v, want ErrHalted", err)
		}
		return nil
	})
	s.Spawn("stuck-barrier", func(t *Task) error {
		err := t.Barrier("never", 99)
		if !errors.Is(err, ErrHalted) {
			return fmt.Errorf("barrier err = %v, want ErrHalted", err)
		}
		return nil
	})
	s.Halt()
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestPanicIsCollected(t *testing.T) {
	s := NewSystem()
	s.Spawn("boom", func(t *Task) error { panic("kaput") })
	err := s.Wait()
	if err == nil {
		t.Fatal("panic not reported")
	}
}

func TestTryRecv(t *testing.T) {
	s := NewSystem()
	s.Spawn("t", func(t *Task) error {
		if m, ok := t.TryRecv(AnySource, AnyTag); ok {
			m.Release()
			return errors.New("TryRecv matched on empty mailbox")
		}
		if err := t.Send(t.TID(), 3, NewBuffer().PackInt32(1)); err != nil {
			return err
		}
		if m, ok := t.TryRecv(AnySource, 4); ok {
			m.Release()
			return errors.New("TryRecv matched wrong tag")
		}
		if m, ok := t.TryRecv(AnySource, 3); !ok || m.Tag != 3 {
			return errors.New("TryRecv missed matching message")
		}
		return nil
	})
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// Property: a random message storm between n tasks loses nothing: every
// byte sent is received.
func TestPropertyNoMessageLoss(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		perTask := 1 + rng.Intn(20)
		s := NewSystem()
		var tids []TID
		var mu sync.Mutex
		received := 0
		ready := make(chan struct{})
		for i := 0; i < n; i++ {
			i := i
			tid := s.Spawn(fmt.Sprintf("t%d", i), func(t *Task) error {
				<-ready
				for j := 0; j < perTask; j++ {
					dst := tids[(i+1+j)%n]
					if dst == t.TID() {
						continue
					}
					if err := t.Send(dst, j, NewBuffer().PackInt32(int32(j))); err != nil {
						return err
					}
				}
				if err := t.Barrier("sent", n); err != nil {
					return err
				}
				for {
					m, ok := t.TryRecv(AnySource, AnyTag)
					if !ok {
						break
					}
					if _, err := m.Buffer().UnpackInt32(); err != nil {
						return err
					}
					mu.Lock()
					received++
					mu.Unlock()
				}
				return nil
			})
			tids = append(tids, tid)
		}
		close(ready)
		if err := s.Wait(); err != nil {
			return false
		}
		sent := 0
		for i := 0; i < n; i++ {
			for j := 0; j < perTask; j++ {
				if tids[(i+1+j)%n] != tids[i] {
					sent++
				}
			}
		}
		return received == sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// FuzzBufferUnpack feeds arbitrary bytes to the unpackers: they must
// return errors, never panic, on corrupt frames. (Runs its seed corpus
// as a regular test; `go test -fuzz=FuzzBufferUnpack` explores further.)
func FuzzBufferUnpack(f *testing.F) {
	f.Add([]byte{})
	f.Add(NewBuffer().PackInt32(5).Bytes())
	f.Add(NewBuffer().PackString("x").PackFloat64(1.5).Bytes())
	f.Add([]byte{5, 0, 0, 0, 200}) // bytes code with a lying length
	f.Add([]byte{1, 2})            // truncated int32
	f.Fuzz(func(t *testing.T, data []byte) {
		// Drain with a fixed decoder sequence: progress is guaranteed
		// because every successful unpack consumes bytes and the first
		// failure stops the loop.
		b := Wrap(data)
		for b.Remaining() > 0 {
			if _, err := b.UnpackInt32(); err != nil {
				break
			}
		}
		// Every decoder on raw input must stay panic-free.
		_, _ = Wrap(data).UnpackInt32Slice()
		_, _ = Wrap(data).UnpackInt64Slice()
		_, _ = Wrap(data).UnpackBytes()
		_, _ = Wrap(data).UnpackFloat64()
		_, _ = Wrap(data).UnpackString()
		_, _ = Wrap(data).UnpackInt64()
	})
}
