package pvm

import (
	"bytes"
	"math"
	"testing"
)

// FuzzBufferRoundTrip packs values derived from the fuzz input in a
// fixed order and checks they unpack bit-identically: the wire format
// must be lossless for any value, including NaNs, negative lengths'
// worth of bytes, and empty strings.
func FuzzBufferRoundTrip(f *testing.F) {
	f.Add(int32(-1), int64(1<<40), math.Pi, "scope", []byte{0xFF, 0x00})
	f.Add(int32(0), int64(0), 0.0, "", []byte{})
	f.Add(int32(math.MinInt32), int64(math.MinInt64), math.Inf(-1), "a\x00b", []byte("payload"))
	f.Fuzz(func(t *testing.T, i32 int32, i64 int64, fl float64, s string, p []byte) {
		b := NewBuffer()
		b.PackInt32(i32).PackInt64(i64).PackFloat64(fl).PackString(s).PackBytes(p)
		b.PackInt64Slice([]int64{i64, i64 + 1})
		b.PackInt32Slice([]int32{i32, i32 ^ -1})

		r := Wrap(b.Bytes())
		gi32, err := r.UnpackInt32()
		if err != nil || gi32 != i32 {
			t.Fatalf("int32: %v %v, want %v", gi32, err, i32)
		}
		gi64, err := r.UnpackInt64()
		if err != nil || gi64 != i64 {
			t.Fatalf("int64: %v %v, want %v", gi64, err, i64)
		}
		gfl, err := r.UnpackFloat64()
		if err != nil || math.Float64bits(gfl) != math.Float64bits(fl) {
			t.Fatalf("float64: %v %v, want %v", gfl, err, fl)
		}
		gs, err := r.UnpackString()
		if err != nil || gs != s {
			t.Fatalf("string: %q %v, want %q", gs, err, s)
		}
		gp, err := r.UnpackBytes()
		if err != nil || !bytes.Equal(gp, p) {
			t.Fatalf("bytes: %v %v, want %v", gp, err, p)
		}
		g64s, err := r.UnpackInt64Slice()
		if err != nil || len(g64s) != 2 || g64s[0] != i64 || g64s[1] != i64+1 {
			t.Fatalf("int64 slice: %v %v", g64s, err)
		}
		g32s, err := r.UnpackInt32Slice()
		if err != nil || len(g32s) != 2 || g32s[0] != i32 || g32s[1] != i32^-1 {
			t.Fatalf("int32 slice: %v %v", g32s, err)
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bytes left after unpacking everything", r.Remaining())
		}
	})
}

// FuzzUnpack feeds arbitrary bytes to every unpacker: corrupt frames —
// truncated bodies, wrong type codes, hostile length prefixes — must
// come back as errors, never panics or runaway allocations.
func FuzzUnpack(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{codeInt32, 0, 0, 0})                          // truncated int32 body
	f.Add([]byte{codeBytes, 0xFF, 0xFF, 0xFF, 0xFF})           // 4G-1 length, no body
	f.Add([]byte{codeBytes, 0x80, 0x00, 0x00, 0x00, 1, 2, 3})  // >2^31 length
	f.Add([]byte{codeString, 0x00, 0x00, 0x00, 0x05, 'a'})     // short string
	f.Add(NewBuffer().PackInt64Slice([]int64{7}).Bytes()[:10]) // torn slice frame
	f.Fuzz(func(t *testing.T, data []byte) {
		unpackers := []func(*Buffer) error{
			func(b *Buffer) error { _, err := b.UnpackInt32(); return err },
			func(b *Buffer) error { _, err := b.UnpackInt64(); return err },
			func(b *Buffer) error { _, err := b.UnpackFloat64(); return err },
			func(b *Buffer) error { _, err := b.UnpackString(); return err },
			func(b *Buffer) error { _, err := b.UnpackBytes(); return err },
			func(b *Buffer) error { _, err := b.UnpackInt64Slice(); return err },
			func(b *Buffer) error { _, err := b.UnpackInt32Slice(); return err },
		}
		for _, unpack := range unpackers {
			b := Wrap(data)
			// Drain the frame; every step either consumes input or errors,
			// so this terminates.
			for b.Remaining() > 0 {
				if err := unpack(b); err != nil {
					break
				}
			}
		}
	})
}
