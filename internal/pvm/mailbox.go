package pvm

import "sort"

// The indexed mailbox. Senders stage under sendMu; the receiving side
// drains the staging into per-(src, tag) queues under recvMu, so the
// dominant exact-match receive is a map lookup plus a head pop instead
// of a linear scan, and a burst of senders never serializes against
// the receiver's matching. Wildcard receives fall back to picking the
// smallest arrival stamp across the matching queue heads.

// mkey indexes one queue of the mailbox.
type mkey struct {
	src TID
	tag int
}

// msgq is one FIFO of the index: a slice consumed from head so pops
// are O(1). Vacated slots are zeroed immediately — a popped Message
// (and its payload) must not stay reachable from the mailbox.
type msgq struct {
	items []Message
	head  int
}

func (q *msgq) push(m Message) { q.items = append(q.items, m) }

func (q *msgq) pop() Message {
	m := q.items[q.head]
	q.items[q.head] = Message{}
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return m
}

func (q *msgq) empty() bool     { return q.head == len(q.items) }
func (q *msgq) len() int        { return len(q.items) - q.head }
func (q *msgq) peekSeq() uint64 { return q.items[q.head].seq }

// maxFreeQueues bounds the per-task recycled queue records. The HBSP
// engines encode the superstep generation in the tag, so keys churn;
// recycling keeps that from allocating a fresh queue every superstep.
const maxFreeQueues = 64

// deliverOne stages a message from a sender. Only sendMu is taken, so
// concurrent senders contend with each other and a parked receiver,
// never with an actively matching one.
func (t *Task) deliverOne(m Message) error {
	t.sendMu.Lock()
	if t.halted {
		t.sendMu.Unlock()
		return ErrHalted
	}
	t.seq++
	m.seq = t.seq
	t.staged = append(t.staged, m)
	depth := len(t.staged)
	t.cond.Broadcast()
	t.sendMu.Unlock()
	if o := observerOf(); o != nil {
		o.MailboxDepth(depth)
	}
	return nil
}

// deliverBatch stages a whole outbox under one lock acquisition.
func (t *Task) deliverBatch(ms []Message) error {
	t.sendMu.Lock()
	if t.halted {
		t.sendMu.Unlock()
		return ErrHalted
	}
	for i := range ms {
		t.seq++
		ms[i].seq = t.seq
	}
	t.staged = append(t.staged, ms...)
	depth := len(t.staged)
	t.cond.Broadcast()
	t.sendMu.Unlock()
	if o := observerOf(); o != nil {
		o.MailboxDepth(depth)
	}
	return nil
}

// recvOnce drains the staging and attempts one indexed pop, returning
// the staging version observed for park/retry decisions.
func (t *Task) recvOnce(src TID, tag int) (Message, uint64, bool) {
	t.recvMu.Lock()
	ver := t.drainLocked()
	m, ok := t.popLocked(src, tag)
	t.recvMu.Unlock()
	return m, ver, ok
}

// drainLocked moves staged messages into the indexed queues and
// returns the staging version (t.seq) they cover. The vacated staging
// backing is zeroed and ping-ponged back for the next burst of
// senders. Caller holds recvMu.
func (t *Task) drainLocked() uint64 {
	t.sendMu.Lock()
	staged := t.staged
	t.staged = t.spare[:0]
	ver := t.seq
	t.sendMu.Unlock()
	for i := range staged {
		m := staged[i]
		k := mkey{src: m.Src, tag: m.Tag}
		q := t.queues[k]
		if q == nil {
			q = t.getq()
			t.queues[k] = q
		}
		q.push(m)
		staged[i] = Message{} // the index owns the reference now
	}
	t.spare = staged[:0]
	return ver
}

// findLocked locates the queue holding the oldest message matching
// (src, tag); queues in the index are never empty. Caller holds recvMu
// and has drained.
func (t *Task) findLocked(src TID, tag int) (mkey, *msgq) {
	if src != AnySource && tag != AnyTag {
		k := mkey{src: src, tag: tag}
		return k, t.queues[k]
	}
	var (
		bestK mkey
		best  *msgq
	)
	for k, q := range t.queues {
		if src != AnySource && k.src != src {
			continue
		}
		if tag != AnyTag && k.tag != tag {
			continue
		}
		if best == nil || q.peekSeq() < best.peekSeq() {
			bestK, best = k, q
		}
	}
	return bestK, best
}

// popLocked removes and returns the oldest matching message. Caller
// holds recvMu and has drained.
func (t *Task) popLocked(src TID, tag int) (Message, bool) {
	k, q := t.findLocked(src, tag)
	if q == nil {
		return Message{}, false
	}
	m := q.pop()
	if q.empty() {
		t.dropq(k, q)
	}
	return m, true
}

func (t *Task) getq() *msgq {
	if n := len(t.qfree); n > 0 {
		q := t.qfree[n-1]
		t.qfree = t.qfree[:n-1]
		return q
	}
	return new(msgq)
}

// dropq removes an emptied queue from the index — tags churn per
// superstep, so empty queues must not accumulate — and recycles the
// record.
func (t *Task) dropq(k mkey, q *msgq) {
	delete(t.queues, k)
	if len(t.qfree) < maxFreeQueues {
		t.qfree = append(t.qfree, q)
	}
}

// TryRecvAll drains every queued message matching (src, tag) in
// arrival order, without blocking, under one lock acquisition. The
// exact-match case hands the queue's backing to the caller in place;
// wildcard matches are merged by arrival stamp. The HBSP engines use
// it to collect a superstep's whole inbox at once.
func (t *Task) TryRecvAll(src TID, tag int) []Message {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	t.drainLocked()
	if src != AnySource && tag != AnyTag {
		k := mkey{src: src, tag: tag}
		q := t.queues[k]
		if q == nil {
			return nil
		}
		out := q.items[q.head:]
		delete(t.queues, k)
		// The backing transfers to the caller; recycle only the record.
		*q = msgq{}
		if len(t.qfree) < maxFreeQueues {
			t.qfree = append(t.qfree, q)
		}
		return out
	}
	var out []Message
	for k, q := range t.queues {
		if src != AnySource && k.src != src {
			continue
		}
		if tag != AnyTag && k.tag != tag {
			continue
		}
		out = append(out, q.items[q.head:]...)
		for i := q.head; i < len(q.items); i++ {
			q.items[i] = Message{}
		}
		q.items, q.head = q.items[:0], 0
		t.dropq(k, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}
