package pvm

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// The deadline-bounded primitives back the HBSP failure detectors: a
// dead peer must turn a blocking Recv or Barrier into a typed error,
// never a hang.

func TestRecvTimeoutExpires(t *testing.T) {
	sys := NewSystem()
	sys.Spawn("idle", func(task *Task) error {
		start := time.Now()
		_, err := task.RecvTimeout(AnySource, 7, 30*time.Millisecond)
		if !errors.Is(err, ErrTimeout) {
			return fmt.Errorf("err = %v, want ErrTimeout", err)
		}
		if time.Since(start) > 2*time.Second {
			return fmt.Errorf("timeout took %v", time.Since(start))
		}
		return nil
	})
	if err := sys.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestRecvTimeoutDeliversEarlyMessage(t *testing.T) {
	sys := NewSystem()
	var a, b TID
	ready := make(chan struct{})
	a = sys.Spawn("sender", func(task *Task) error {
		<-ready
		return task.Send(b, 3, NewBuffer().PackInt32(99))
	})
	b = sys.Spawn("receiver", func(task *Task) error {
		m, err := task.RecvTimeout(a, 3, 5*time.Second)
		if err != nil {
			return err
		}
		defer m.Release()
		v, err := m.Buffer().UnpackInt32()
		if err != nil {
			return err
		}
		if v != 99 {
			return fmt.Errorf("payload = %d, want 99", v)
		}
		return nil
	})
	close(ready)
	if err := sys.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestRecvContextCanceled(t *testing.T) {
	sys := NewSystem()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	sys.Spawn("waiter", func(task *Task) error {
		m, err := task.RecvContext(ctx, AnySource, 1)
		if err == nil {
			m.Release()
			return fmt.Errorf("recv returned without a message")
		}
		if !errors.Is(err, context.Canceled) {
			return fmt.Errorf("err = %v, want context.Canceled in chain", err)
		}
		return nil
	})
	if err := sys.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestRecvContextDeadlineWrapsErrTimeout(t *testing.T) {
	sys := NewSystem()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	sys.Spawn("waiter", func(task *Task) error {
		_, err := task.RecvContext(ctx, AnySource, 1)
		if !errors.Is(err, ErrTimeout) {
			return fmt.Errorf("err = %v, want ErrTimeout in chain", err)
		}
		return nil
	})
	if err := sys.Wait(); err != nil {
		t.Fatal(err)
	}
}

// A timed-out barrier waiter must roll its arrival back so a later
// retry is not double-counted: after p0's timeout, a fresh pair of
// arrivals completes the barrier with exactly count arrivals.
func TestBarrierTimeoutRollsBackArrival(t *testing.T) {
	sys := NewSystem()
	timedOut := make(chan struct{})
	sys.Spawn("early", func(task *Task) error {
		err := task.BarrierTimeout("b", 2, 20*time.Millisecond)
		if !errors.Is(err, ErrTimeout) {
			return fmt.Errorf("first wait err = %v, want ErrTimeout", err)
		}
		close(timedOut)
		return task.Barrier("b", 2)
	})
	sys.Spawn("late", func(task *Task) error {
		<-timedOut
		return task.Barrier("b", 2)
	})
	if err := sys.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestCancelBarrierWakesWaiterTyped(t *testing.T) {
	sys := NewSystem()
	parked := make(chan struct{})
	sys.Spawn("waiter", func(task *Task) error {
		close(parked)
		err := task.Barrier("doomed", 2)
		if !errors.Is(err, ErrCanceled) {
			return fmt.Errorf("err = %v, want ErrCanceled", err)
		}
		// Other barriers are unaffected by the cancellation.
		return task.Barrier("fine", 1)
	})
	go func() {
		<-parked
		time.Sleep(10 * time.Millisecond)
		sys.CancelBarrier("doomed")
	}()
	if err := sys.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestCancelBarrierLatchesForLateArrivals(t *testing.T) {
	sys := NewSystem()
	sys.CancelBarrier("gone")
	sys.Spawn("late", func(task *Task) error {
		if err := task.Barrier("gone", 2); !errors.Is(err, ErrCanceled) {
			return fmt.Errorf("err = %v, want ErrCanceled", err)
		}
		return nil
	})
	if err := sys.Wait(); err != nil {
		t.Fatal(err)
	}
}
