package pvm

import (
	"fmt"
	"sort"
	"sync"
)

// Dynamic process groups, PVM's pvm_joingroup / pvm_lvgroup /
// pvm_gettid / pvm_gsize family: tasks join named groups at runtime,
// are assigned dense instance numbers, and can barrier or multicast
// within the group. HBSPlib's cluster scopes are static; groups are the
// dynamic complement the substrate offered.

type group struct {
	mu      sync.Mutex
	members map[TID]int // tid → instance number
	free    []int       // recycled instance numbers (smallest first)
	next    int
}

func (s *System) group(name string) *group {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.groups == nil {
		s.groups = make(map[string]*group)
	}
	g, ok := s.groups[name]
	if !ok {
		g = &group{members: make(map[TID]int)}
		s.groups[name] = g
	}
	return g
}

// JoinGroup adds the task to the named group and returns its instance
// number: the smallest number not in use, so instances stay dense as
// tasks come and go (PVM's behavior). Joining twice returns the same
// instance.
func (t *Task) JoinGroup(name string) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("pvm: empty group name")
	}
	g := t.sys.group(name)
	g.mu.Lock()
	defer g.mu.Unlock()
	if inst, ok := g.members[t.tid]; ok {
		return inst, nil
	}
	var inst int
	if len(g.free) > 0 {
		inst = g.free[0]
		g.free = g.free[1:]
	} else {
		inst = g.next
		g.next++
	}
	g.members[t.tid] = inst
	return inst, nil
}

// LeaveGroup removes the task; its instance number becomes reusable.
func (t *Task) LeaveGroup(name string) error {
	g := t.sys.group(name)
	g.mu.Lock()
	defer g.mu.Unlock()
	inst, ok := g.members[t.tid]
	if !ok {
		return fmt.Errorf("pvm: task %d not in group %q", t.tid, name)
	}
	delete(g.members, t.tid)
	i := sort.SearchInts(g.free, inst)
	g.free = append(g.free, 0)
	copy(g.free[i+1:], g.free[i:])
	g.free[i] = inst
	return nil
}

// GroupSize returns the current member count (pvm_gsize).
func (t *Task) GroupSize(name string) int {
	g := t.sys.group(name)
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.members)
}

// GroupInstance returns the task's instance number in the group, or -1
// (pvm_getinst).
func (t *Task) GroupInstance(name string) int {
	g := t.sys.group(name)
	g.mu.Lock()
	defer g.mu.Unlock()
	if inst, ok := g.members[t.tid]; ok {
		return inst
	}
	return -1
}

// GroupTID returns the TID holding the given instance number, or -1
// (pvm_gettid).
func (t *Task) GroupTID(name string, instance int) TID {
	g := t.sys.group(name)
	g.mu.Lock()
	defer g.mu.Unlock()
	for tid, inst := range g.members {
		if inst == instance {
			return tid
		}
	}
	return -1
}

// GroupMembers returns the member TIDs ordered by instance number.
func (t *Task) GroupMembers(name string) []TID {
	g := t.sys.group(name)
	g.mu.Lock()
	defer g.mu.Unlock()
	type pair struct {
		tid  TID
		inst int
	}
	ps := make([]pair, 0, len(g.members))
	for tid, inst := range g.members {
		ps = append(ps, pair{tid, inst})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].inst < ps[j].inst })
	out := make([]TID, len(ps))
	for i, p := range ps {
		out[i] = p.tid
	}
	return out
}

// GroupMcast multicasts to every current member except the sender
// (pvm_bcast — PVM's "broadcast" excludes the caller like mcast).
func (t *Task) GroupMcast(name string, tag int, buf *Buffer) error {
	return t.Mcast(t.GroupMembers(name), tag, buf)
}
