package pvm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestGroupJoinAssignsDenseInstances(t *testing.T) {
	s := NewSystem()
	const n = 6
	insts := make([]int, n)
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		i := i
		s.Spawn(fmt.Sprintf("t%d", i), func(tk *Task) error {
			inst, err := tk.JoinGroup("work")
			if err != nil {
				return err
			}
			mu.Lock()
			insts[i] = inst
			mu.Unlock()
			// Idempotent: rejoining returns the same instance.
			again, err := tk.JoinGroup("work")
			if err != nil || again != inst {
				return fmt.Errorf("rejoin gave %d, want %d (%v)", again, inst, err)
			}
			return tk.Barrier("done", n)
		})
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, inst := range insts {
		if inst < 0 || inst >= n || seen[inst] {
			t.Fatalf("instances not dense/unique: %v", insts)
		}
		seen[inst] = true
	}
}

func TestGroupLeaveRecyclesInstances(t *testing.T) {
	s := NewSystem()
	s.Spawn("solo", func(tk *Task) error {
		if _, err := tk.JoinGroup("g"); err != nil {
			return err
		}
		if err := tk.LeaveGroup("g"); err != nil {
			return err
		}
		if tk.GroupSize("g") != 0 {
			return errors.New("group not empty after leave")
		}
		inst, err := tk.JoinGroup("g")
		if err != nil {
			return err
		}
		if inst != 0 {
			return fmt.Errorf("instance after recycle = %d, want 0", inst)
		}
		if err := tk.LeaveGroup("nope"); err == nil {
			return errors.New("leaving a group never joined succeeded")
		}
		return nil
	})
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupLookupsAndMcast(t *testing.T) {
	s := NewSystem()
	const n = 4
	recv := make([]int, n)
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		i := i
		s.Spawn(fmt.Sprintf("t%d", i), func(tk *Task) error {
			inst, err := tk.JoinGroup("g")
			if err != nil {
				return err
			}
			if err := tk.Barrier("joined", n); err != nil {
				return err
			}
			if got := tk.GroupInstance("g"); got != inst {
				return fmt.Errorf("GroupInstance = %d, want %d", got, inst)
			}
			if got := tk.GroupTID("g", inst); got != tk.TID() {
				return fmt.Errorf("GroupTID = %d, want %d", got, tk.TID())
			}
			if got := tk.GroupSize("g"); got != n {
				return fmt.Errorf("GroupSize = %d, want %d", got, n)
			}
			if len(tk.GroupMembers("g")) != n {
				return errors.New("GroupMembers incomplete")
			}
			// Instance 0 multicasts to the group.
			if inst == 0 {
				if err := tk.GroupMcast("g", 7, NewBuffer().PackInt32(1)); err != nil {
					return err
				}
			} else {
				m, err := tk.Recv(AnySource, 7)
				if err != nil {
					return err
				}
				m.Release()
				mu.Lock()
				recv[i]++
				mu.Unlock()
			}
			return nil
		})
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, v := range recv {
		count += v
	}
	if count != n-1 {
		t.Errorf("%d members received the mcast, want %d", count, n-1)
	}
}

func TestGroupInstanceOfNonMember(t *testing.T) {
	s := NewSystem()
	s.Spawn("t", func(tk *Task) error {
		if got := tk.GroupInstance("never"); got != -1 {
			return fmt.Errorf("instance = %d, want -1", got)
		}
		if got := tk.GroupTID("never", 3); got != -1 {
			return fmt.Errorf("tid = %d, want -1", got)
		}
		if _, err := tk.JoinGroup(""); err == nil {
			return errors.New("empty group name accepted")
		}
		return nil
	})
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestProbeDoesNotConsume(t *testing.T) {
	s := NewSystem()
	s.Spawn("t", func(tk *Task) error {
		if tk.Probe(AnySource, AnyTag) {
			return errors.New("probe matched on empty mailbox")
		}
		if err := tk.Send(tk.TID(), 4, NewBuffer().PackInt32(1)); err != nil {
			return err
		}
		if !tk.Probe(AnySource, 4) {
			return errors.New("probe missed queued message")
		}
		if !tk.Probe(AnySource, 4) {
			return errors.New("probe consumed the message")
		}
		if tk.Probe(AnySource, 5) {
			return errors.New("probe matched wrong tag")
		}
		m, ok := tk.TryRecv(AnySource, 4)
		if !ok {
			return errors.New("message gone after probes")
		}
		m.Release()
		return nil
	})
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}
