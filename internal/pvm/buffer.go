// Package pvm is an in-process substrate in the style of PVM, the
// Parallel Virtual Machine the paper's HBSPlib was implemented on
// (§5.1): spawned tasks with mailboxes, typed pack/unpack message
// buffers in a fixed big-endian wire format (PVM's XDR), selective
// receive by source and tag, multicast, and named group barriers. Tasks
// are goroutines and wires are in-memory queues; the semantics visible
// to HBSPlib — reliable, ordered, typed point-to-point messaging — match
// the original.
package pvm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Wire-format type codes, one per packed value, so that unpacking
// mismatches are detected instead of silently misreading (PVM's typed
// packing behaves the same way).
const (
	codeInt32 byte = iota + 1
	codeInt64
	codeFloat64
	codeString
	codeBytes
)

// CodeBytes is the wire type code of a packed byte slice, exported for
// callers that need to peek at undecoded frames (package hbsp's DRMA
// layer distinguishes payload frames from length frames this way).
const CodeBytes = codeBytes

// ErrBufferUnderflow is returned when unpacking past the end of a
// buffer.
var ErrBufferUnderflow = errors.New("pvm: unpack past end of buffer")

// Buffer is a typed pack/unpack message buffer. Packing appends; a
// buffer received in a message unpacks from the front in packing order.
type Buffer struct {
	data []byte
	off  int
	w    *wire // pooled backing; nil for Wrap'd and zero-value buffers
	sent bool  // handed to Send/Mcast; the fabric owns the bytes now
}

// NewBuffer returns an empty send buffer backed by the wire arena:
// its bytes recycle through a sync.Pool once the receiver releases the
// delivered message.
func NewBuffer() *Buffer {
	w := newWire()
	return &Buffer{data: w.data[:0], w: w}
}

// adopt transfers ownership of the packed bytes to the fabric. A
// buffer is sendable exactly once: the wire record (when pooled)
// travels with the message, so a second send would alias a payload the
// receiver may already have released back to the pool.
func (b *Buffer) adopt() (*wire, error) {
	if b.sent {
		return nil, errors.New("pvm: buffer already sent; pack a fresh buffer per send")
	}
	b.sent = true
	if b.w != nil {
		// Packing may have grown past the pooled array; the wire record
		// follows wherever the data lives now.
		b.w.data = b.data
	}
	return b.w, nil
}

// bufferFrom wraps received bytes for unpacking.
func bufferFrom(data []byte) *Buffer { return &Buffer{data: data} }

// Wrap returns an unpacker over raw wire bytes produced by a Buffer's
// Bytes. The buffer aliases data.
func Wrap(data []byte) *Buffer { return bufferFrom(data) }

// Len returns the total encoded length in bytes.
func (b *Buffer) Len() int { return len(b.data) }

// Remaining returns the number of unread bytes.
func (b *Buffer) Remaining() int { return len(b.data) - b.off }

// Bytes returns the encoded wire bytes.
func (b *Buffer) Bytes() []byte { return b.data }

func (b *Buffer) packCode(c byte) { b.data = append(b.data, c) }

func (b *Buffer) checkCode(want byte) error {
	if b.off >= len(b.data) {
		return ErrBufferUnderflow
	}
	got := b.data[b.off]
	if got != want {
		return fmt.Errorf("pvm: unpack type mismatch: have code %d, want %d", got, want)
	}
	b.off++
	return nil
}

func (b *Buffer) take(n int) ([]byte, error) {
	// n < 0 happens when a corrupt length prefix above 2^31 wraps on a
	// 32-bit int; without the guard the slice below would panic.
	if n < 0 || b.off+n > len(b.data) {
		return nil, ErrBufferUnderflow
	}
	out := b.data[b.off : b.off+n]
	b.off += n
	return out, nil
}

// PackInt32 appends 32-bit integers.
func (b *Buffer) PackInt32(vs ...int32) *Buffer {
	for _, v := range vs {
		b.packCode(codeInt32)
		b.data = binary.BigEndian.AppendUint32(b.data, uint32(v))
	}
	return b
}

// UnpackInt32 reads the next 32-bit integer.
func (b *Buffer) UnpackInt32() (int32, error) {
	if err := b.checkCode(codeInt32); err != nil {
		return 0, err
	}
	raw, err := b.take(4)
	if err != nil {
		return 0, err
	}
	return int32(binary.BigEndian.Uint32(raw)), nil
}

// PackInt64 appends 64-bit integers.
func (b *Buffer) PackInt64(vs ...int64) *Buffer {
	for _, v := range vs {
		b.packCode(codeInt64)
		b.data = binary.BigEndian.AppendUint64(b.data, uint64(v))
	}
	return b
}

// UnpackInt64 reads the next 64-bit integer.
func (b *Buffer) UnpackInt64() (int64, error) {
	if err := b.checkCode(codeInt64); err != nil {
		return 0, err
	}
	raw, err := b.take(8)
	if err != nil {
		return 0, err
	}
	return int64(binary.BigEndian.Uint64(raw)), nil
}

// PackFloat64 appends IEEE-754 doubles.
func (b *Buffer) PackFloat64(vs ...float64) *Buffer {
	for _, v := range vs {
		b.packCode(codeFloat64)
		b.data = binary.BigEndian.AppendUint64(b.data, math.Float64bits(v))
	}
	return b
}

// UnpackFloat64 reads the next double.
func (b *Buffer) UnpackFloat64() (float64, error) {
	if err := b.checkCode(codeFloat64); err != nil {
		return 0, err
	}
	raw, err := b.take(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.BigEndian.Uint64(raw)), nil
}

// PackString appends a length-prefixed string.
func (b *Buffer) PackString(s string) *Buffer {
	b.packCode(codeString)
	b.data = binary.BigEndian.AppendUint32(b.data, uint32(len(s)))
	b.data = append(b.data, s...)
	return b
}

// UnpackString reads the next string.
func (b *Buffer) UnpackString() (string, error) {
	if err := b.checkCode(codeString); err != nil {
		return "", err
	}
	raw, err := b.take(4)
	if err != nil {
		return "", err
	}
	n := int(binary.BigEndian.Uint32(raw))
	body, err := b.take(n)
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// PackBytes appends a length-prefixed byte slice.
func (b *Buffer) PackBytes(p []byte) *Buffer {
	b.packCode(codeBytes)
	b.data = binary.BigEndian.AppendUint32(b.data, uint32(len(p)))
	b.data = append(b.data, p...)
	return b
}

// UnpackBytes reads the next byte slice. The returned slice aliases the
// buffer; copy it if it must outlive the message.
func (b *Buffer) UnpackBytes() ([]byte, error) {
	if err := b.checkCode(codeBytes); err != nil {
		return nil, err
	}
	raw, err := b.take(4)
	if err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(raw))
	return b.take(n)
}

// PackInt64Slice appends a length-prefixed []int64 in one call.
func (b *Buffer) PackInt64Slice(vs []int64) *Buffer {
	b.packCode(codeBytes)
	b.data = binary.BigEndian.AppendUint32(b.data, uint32(8*len(vs)))
	for _, v := range vs {
		b.data = binary.BigEndian.AppendUint64(b.data, uint64(v))
	}
	return b
}

// UnpackInt64Slice reads a slice packed by PackInt64Slice.
func (b *Buffer) UnpackInt64Slice() ([]int64, error) {
	raw, err := b.UnpackBytes()
	if err != nil {
		return nil, err
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("pvm: int64 slice payload of %d bytes", len(raw))
	}
	out := make([]int64, len(raw)/8)
	for i := range out {
		out[i] = int64(binary.BigEndian.Uint64(raw[8*i:]))
	}
	return out, nil
}

// PackInt32Slice appends a length-prefixed []int32 in one call.
func (b *Buffer) PackInt32Slice(vs []int32) *Buffer {
	b.packCode(codeBytes)
	b.data = binary.BigEndian.AppendUint32(b.data, uint32(4*len(vs)))
	for _, v := range vs {
		b.data = binary.BigEndian.AppendUint32(b.data, uint32(v))
	}
	return b
}

// UnpackInt32Slice reads a slice packed by PackInt32Slice.
func (b *Buffer) UnpackInt32Slice() ([]int32, error) {
	raw, err := b.UnpackBytes()
	if err != nil {
		return nil, err
	}
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("pvm: int32 slice payload of %d bytes", len(raw))
	}
	out := make([]int32, len(raw)/4)
	for i := range out {
		out[i] = int32(binary.BigEndian.Uint32(raw[4*i:]))
	}
	return out, nil
}
