package pvm

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// loopTransport is a minimal conforming Transport: it copies each
// message's wire bytes, releases the adopted reference, and re-enters
// the destination mailbox through Inject — the same shape a socket
// transport has, minus the socket.
type loopTransport struct {
	sys *System

	mu       sync.Mutex
	delivers int // Deliver calls, to observe batching
	messages int
	failDst  TID // when set, Deliver to this dst fails after consuming
}

func (lt *loopTransport) Name() string             { return "loop" }
func (lt *loopTransport) Attach(sys *System) error { lt.sys = sys; return nil }
func (lt *loopTransport) Close() error             { return nil }

func (lt *loopTransport) Deliver(dst TID, ms []Message) error {
	lt.mu.Lock()
	lt.delivers++
	lt.messages += len(ms)
	fail := lt.failDst != 0 && dst == lt.failDst
	lt.mu.Unlock()
	for _, m := range ms {
		wire := append([]byte(nil), m.Buffer().Bytes()...)
		src, tag := m.Src, m.Tag
		m.Release()
		if fail {
			continue
		}
		if err := lt.sys.Inject(src, dst, tag, wire); err != nil {
			return err
		}
	}
	if fail {
		return ErrPeerLost
	}
	return nil
}

func (lt *loopTransport) counts() (delivers, messages int) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.delivers, lt.messages
}

func TestTransportRoutesSends(t *testing.T) {
	sys := NewSystem()
	lt := &loopTransport{}
	if err := sys.SetTransport(lt); err != nil {
		t.Fatalf("SetTransport: %v", err)
	}
	done := make(chan error, 1)
	recv := sys.Spawn("recv", func(task *Task) error {
		for i := 0; i < 4; i++ {
			m, err := task.RecvTimeout(AnySource, 7, 5*time.Second)
			if err != nil {
				return err
			}
			v, err := m.Buffer().UnpackInt64()
			m.Release()
			if err != nil {
				return err
			}
			if v != int64(10+i) {
				t.Errorf("message %d = %d, want %d (per-sender FIFO broken)", i, v, 10+i)
			}
		}
		done <- nil
		return nil
	})
	sys.Spawn("send", func(task *Task) error {
		if err := task.Send(recv, 7, NewBuffer().PackInt64(10)); err != nil {
			return err
		}
		batch := []*Buffer{NewBuffer().PackInt64(11), NewBuffer().PackInt64(12)}
		if err := task.SendBatch(recv, 7, batch); err != nil {
			return err
		}
		return task.Mcast([]TID{recv}, 7, NewBuffer().PackInt64(13))
	})
	<-done
	if err := sys.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	delivers, messages := lt.counts()
	if messages != 4 {
		t.Fatalf("transport carried %d messages, want 4", messages)
	}
	// Send, SendBatch (coalesced), Mcast: three Deliver calls.
	if delivers != 3 {
		t.Fatalf("transport saw %d Deliver calls, want 3 (SendBatch must coalesce)", delivers)
	}
}

func TestTransportMcastConsumesRefsOnError(t *testing.T) {
	sys := NewSystem()
	lt := &loopTransport{}
	if err := sys.SetTransport(lt); err != nil {
		t.Fatalf("SetTransport: %v", err)
	}
	var a, b, c TID
	errc := make(chan error, 1)
	a = sys.Spawn("a", func(task *Task) error {
		m, err := task.RecvTimeout(AnySource, 1, 5*time.Second)
		if err == nil {
			m.Release()
		}
		return nil
	})
	b = sys.Spawn("b", func(task *Task) error {
		// The failing destination: its message is consumed by the
		// transport but never injected.
		return nil
	})
	c = sys.Spawn("c", func(task *Task) error {
		m, err := task.RecvTimeout(AnySource, 1, 5*time.Second)
		if err == nil {
			m.Release()
		}
		return nil
	})
	lt.failDst = b
	sys.Spawn("send", func(task *Task) error {
		errc <- task.Mcast([]TID{a, b, c}, 1, NewBuffer().PackInt32(9))
		return nil
	})
	if err := <-errc; !errors.Is(err, ErrPeerLost) {
		t.Fatalf("Mcast over severed link = %v, want ErrPeerLost", err)
	}
	// a received before the failure; c's reference was dropped by Mcast
	// without delivery, so its receive times out — but no refcount panic
	// and no leak-induced hang.
	sys.Halt()
	_ = sys.Wait()
}

func TestInjectUnknownTask(t *testing.T) {
	sys := NewSystem()
	if err := sys.Inject(0, 42, 1, []byte{1}); err == nil {
		t.Fatal("Inject to unknown task succeeded")
	}
}

func TestTransportRegistry(t *testing.T) {
	fs := TransportFactories()
	if len(fs) == 0 || fs[0].Name != "inproc" || fs[0].New != nil {
		t.Fatalf("registry head = %+v, want the in-proc default", fs)
	}
	for _, f := range fs {
		if f.Name == "" {
			t.Fatal("registered transport with empty name")
		}
	}
}
