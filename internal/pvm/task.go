package pvm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// TID identifies a spawned task, PVM-style.
type TID int

// AnySource and AnyTag are the wildcards of selective receive.
const (
	AnySource TID = -1
	AnyTag    int = -1
)

// Message is a delivered packed buffer. The payload aliases the
// sender's wire buffer: treat it as read-only, and call Release once
// done with it to return the backing to the arena.
type Message struct {
	Src TID
	Tag int
	buf []byte
	w   *wire
	seq uint64 // per-mailbox arrival stamp, orders wildcard matches
}

// Buffer returns an unpacker positioned at the start of the message.
// The unpacker aliases the message's wire bytes: it is only valid
// until Release, and must not itself be sent.
func (m Message) Buffer() *Buffer { return bufferFrom(m.buf) }

// Len returns the message's wire length in bytes.
func (m Message) Len() int { return len(m.buf) }

// Release returns the message's wire buffer to the arena. Call it at
// most once, after the payload (and anything unpacked from it, which
// aliases the same bytes) is no longer needed. A multicast payload is
// shared: the backing recycles only when every destination releases.
func (m Message) Release() { m.w.release() }

// ErrHalted is returned by blocking operations after Halt.
var ErrHalted = errors.New("pvm: system halted")

// ErrTimeout is returned by deadline-bounded blocking operations
// (RecvTimeout, RecvContext, BarrierTimeout) when the deadline expires
// before the operation completes.
var ErrTimeout = errors.New("pvm: operation timed out")

// ErrCanceled is returned by Barrier waiters whose barrier was torn
// down with CancelBarrier before it completed.
var ErrCanceled = errors.New("pvm: barrier canceled")

// System is the virtual machine: it spawns tasks, routes messages and
// hosts group barriers.
type System struct {
	mu       sync.RWMutex
	tasks    map[TID]*Task
	nextTID  TID
	halted   bool
	wg       sync.WaitGroup
	barriers map[string]*barrier
	groups   map[string]*group

	errMu sync.Mutex
	errs  []error

	// transport, when non-nil, owns message delivery (SetTransport).
	// Written once before any Spawn; read without synchronization on
	// the send path.
	transport Transport
}

// NewSystem returns an empty virtual machine.
func NewSystem() *System {
	return &System{
		tasks:    make(map[TID]*Task),
		barriers: make(map[string]*barrier),
	}
}

// Spawn starts fn as a new task and returns its TID. A panic inside fn
// is recovered and reported by Wait; an error return is likewise
// collected.
func (s *System) Spawn(name string, fn func(*Task) error) TID {
	s.mu.Lock()
	tid := s.nextTID
	s.nextTID++
	t := &Task{tid: tid, name: name, sys: s, halted: s.halted}
	t.cond = sync.NewCond(&t.sendMu)
	t.queues = make(map[mkey]*msgq)
	s.tasks[tid] = t
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				s.report(fmt.Errorf("pvm: task %d (%s) panicked: %v", tid, name, r))
			}
		}()
		if err := fn(t); err != nil {
			s.report(fmt.Errorf("pvm: task %d (%s): %w", tid, name, err))
		}
	}()
	return tid
}

func (s *System) report(err error) {
	s.errMu.Lock()
	s.errs = append(s.errs, err)
	s.errMu.Unlock()
}

// Wait blocks until every spawned task has returned and reports the
// first collected error.
func (s *System) Wait() error {
	s.wg.Wait()
	s.errMu.Lock()
	defer s.errMu.Unlock()
	if len(s.errs) > 0 {
		return s.errs[0]
	}
	return nil
}

// Errors returns all collected task errors after Wait.
func (s *System) Errors() []error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return append([]error(nil), s.errs...)
}

// Halt wakes every blocked receive and barrier with ErrHalted. Used to
// tear down a wedged system in tests and error paths.
func (s *System) Halt() {
	s.mu.Lock()
	s.halted = true
	tasks := make([]*Task, 0, len(s.tasks))
	for _, t := range s.tasks {
		tasks = append(tasks, t)
	}
	barriers := make([]*barrier, 0, len(s.barriers))
	for _, b := range s.barriers {
		barriers = append(barriers, b)
	}
	s.mu.Unlock()
	for _, t := range tasks {
		t.sendMu.Lock()
		t.halted = true
		t.cond.Broadcast()
		t.sendMu.Unlock()
	}
	for _, b := range barriers {
		b.mu.Lock()
		b.halted = true
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

func (s *System) task(tid TID) (*Task, error) {
	s.mu.RLock()
	t, ok := s.tasks[tid]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("pvm: no such task %d", tid)
	}
	return t, nil
}

// Task is one spawned process: a goroutine plus a selective-receive
// mailbox. The mailbox is split in two so senders and the receiver do
// not serialize: senders append to a staging slice under sendMu, the
// receiving side drains the staging into per-(src, tag) indexed queues
// under recvMu and matches against the index.
type Task struct {
	tid  TID
	name string
	sys  *System

	// Sender side: the staging queue, arrival stamping, the halt flag
	// and the wakeup cond live under sendMu. seq doubles as the staging
	// version a parked receiver watches for.
	sendMu sync.Mutex
	cond   *sync.Cond
	staged []Message
	seq    uint64
	halted bool

	// Receiver side: recvMu serializes receivers and guards the index.
	// Lock order is recvMu before sendMu; sendMu is never held while
	// taking recvMu.
	queues map[mkey]*msgq
	spare  []Message // recycled staging backing, ping-ponged with staged
	qfree  []*msgq   // recycled queue records (wire tags churn per superstep)
	recvMu sync.Mutex
}

// TID returns the task's identity.
func (t *Task) TID() TID { return t.tid }

// System returns the virtual machine that spawned the task. Relay
// tasks bridging remote processes use it to halt the whole system when
// their peer's link drops.
func (t *Task) System() *System { return t.sys }

// Name returns the task's spawn name.
func (t *Task) Name() string { return t.name }

// Send enqueues the buffer at dst without copying: ownership of the
// packed bytes transfers to the receiver, which releases them back to
// the arena. Delivery is reliable and per-sender ordered. A buffer can
// be sent only once, and must not be packed into afterwards (the
// bufreuse analyzer enforces both). Sending to a halted system or an
// unknown task returns an error.
func (t *Task) Send(dst TID, tag int, buf *Buffer) error {
	target, err := t.sys.task(dst)
	if err != nil {
		return err
	}
	w, err := buf.adopt()
	if err != nil {
		return err
	}
	m := Message{Src: t.tid, Tag: tag, buf: buf.data, w: w}
	if tr := t.sys.transport; tr != nil {
		return tr.Deliver(dst, []Message{m})
	}
	return target.deliverOne(m)
}

// SendBatch enqueues one message per buffer at dst under a single
// mailbox lock acquisition, preserving slice order. Each buffer is
// adopted exactly as in Send.
func (t *Task) SendBatch(dst TID, tag int, bufs []*Buffer) error {
	if len(bufs) == 0 {
		return nil
	}
	target, err := t.sys.task(dst)
	if err != nil {
		return err
	}
	ms := make([]Message, len(bufs))
	for i, buf := range bufs {
		w, err := buf.adopt()
		if err != nil {
			return err
		}
		ms[i] = Message{Src: t.tid, Tag: tag, buf: buf.data, w: w}
	}
	if tr := t.sys.transport; tr != nil {
		return tr.Deliver(dst, ms)
	}
	return target.deliverBatch(ms)
}

// Mcast sends the buffer to every listed destination (PVM's
// pvm_mcast), skipping the sender itself. All destinations share one
// wire buffer, reference-counted by the fan-out; no per-destination
// copy is made. Every destination is resolved up front, so an unknown
// TID fails the multicast before any delivery.
func (t *Task) Mcast(dsts []TID, tag int, buf *Buffer) error {
	var arr [16]*Task
	targets := arr[:0]
	for _, d := range dsts {
		if d == t.tid {
			continue
		}
		target, err := t.sys.task(d)
		if err != nil {
			return err
		}
		targets = append(targets, target)
	}
	if len(targets) == 0 {
		return nil // nothing adopted; the buffer stays usable
	}
	w, err := buf.adopt()
	if err != nil {
		return err
	}
	w.retain(int32(len(targets) - 1))
	if tr := t.sys.transport; tr != nil {
		// Deliver consumes one reference per call, error or not; a
		// failed fan-out only has the untried tail left to drop.
		var firstErr error
		for _, target := range targets {
			if firstErr != nil {
				w.release()
				continue
			}
			m := Message{Src: t.tid, Tag: tag, buf: buf.data, w: w}
			if err := tr.Deliver(target.tid, []Message{m}); err != nil {
				firstErr = err
			}
		}
		return firstErr
	}
	for i, target := range targets {
		if err := target.deliverOne(Message{Src: t.tid, Tag: tag, buf: buf.data, w: w}); err != nil {
			// The undelivered tail's references die with the error.
			for j := i; j < len(targets); j++ {
				w.release()
			}
			return err
		}
	}
	return nil
}

// Recv blocks until a message matching src and tag (either may be a
// wildcard) is available and removes it from the mailbox. Matching
// respects arrival order among matching messages.
func (t *Task) Recv(src TID, tag int) (Message, error) {
	for {
		m, ver, ok := t.recvOnce(src, tag)
		if ok {
			return m, nil
		}
		t.sendMu.Lock()
		for t.seq == ver && !t.halted {
			t.cond.Wait()
		}
		halted := t.halted && t.seq == ver
		t.sendMu.Unlock()
		if halted {
			return Message{}, ErrHalted
		}
	}
}

// RecvTimeout is Recv with a deadline: it blocks until a matching
// message arrives, the system halts, or d elapses, in which case it
// returns ErrTimeout. A non-positive d degrades to a non-blocking
// probe-and-fail.
func (t *Task) RecvTimeout(src TID, tag int, d time.Duration) (Message, error) {
	deadline := time.Now().Add(d)
	var timer *time.Timer
	if d > 0 {
		// The timer only wakes the cond; the loop re-checks the clock.
		timer = time.AfterFunc(d, func() {
			t.sendMu.Lock()
			t.cond.Broadcast()
			t.sendMu.Unlock()
		})
		defer timer.Stop()
	}
	for {
		m, ver, ok := t.recvOnce(src, tag)
		if ok {
			return m, nil
		}
		t.sendMu.Lock()
		for t.seq == ver && !t.halted && time.Now().Before(deadline) {
			t.cond.Wait()
		}
		halted := t.halted && t.seq == ver
		t.sendMu.Unlock()
		if halted {
			return Message{}, ErrHalted
		}
		if !time.Now().Before(deadline) {
			// One final drain so a message racing the deadline wins.
			if m, _, ok := t.recvOnce(src, tag); ok {
				return m, nil
			}
			return Message{}, fmt.Errorf("pvm: recv(src=%d, tag=%d) after %v: %w", src, tag, d, ErrTimeout)
		}
	}
}

// RecvContext is Recv bounded by a context: it returns the context's
// error (wrapped with ErrTimeout for deadline expiry) once ctx is done.
func (t *Task) RecvContext(ctx context.Context, src TID, tag int) (Message, error) {
	stop := context.AfterFunc(ctx, func() {
		t.sendMu.Lock()
		t.cond.Broadcast()
		t.sendMu.Unlock()
	})
	defer stop()
	for {
		m, ver, ok := t.recvOnce(src, tag)
		if ok {
			return m, nil
		}
		t.sendMu.Lock()
		for t.seq == ver && !t.halted && ctx.Err() == nil {
			t.cond.Wait()
		}
		halted := t.halted && t.seq == ver
		t.sendMu.Unlock()
		if halted {
			return Message{}, ErrHalted
		}
		if err := ctx.Err(); err != nil {
			// One final drain so a message racing the cancellation wins.
			if m, _, ok := t.recvOnce(src, tag); ok {
				return m, nil
			}
			if errors.Is(err, context.DeadlineExceeded) {
				return Message{}, fmt.Errorf("pvm: recv(src=%d, tag=%d): %w: %w", src, tag, ErrTimeout, err)
			}
			return Message{}, fmt.Errorf("pvm: recv(src=%d, tag=%d): %w", src, tag, err)
		}
	}
}

// TryRecv is Recv without blocking; ok reports whether a match existed.
func (t *Task) TryRecv(src TID, tag int) (Message, bool) {
	m, _, ok := t.recvOnce(src, tag)
	return m, ok
}

// Probe reports whether a matching message is queued, without consuming
// it (PVM's pvm_probe).
func (t *Task) Probe(src TID, tag int) bool {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	t.drainLocked()
	_, q := t.findLocked(src, tag)
	return q != nil
}

// Pending returns the number of queued messages.
func (t *Task) Pending() int {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	n := 0
	for _, q := range t.queues {
		n += q.len()
	}
	t.sendMu.Lock()
	n += len(t.staged)
	t.sendMu.Unlock()
	return n
}

type barrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	arrived  int
	gen      int
	halted   bool
	canceled bool
	// deposits collects the current generation's BarrierExchange
	// payloads; on completion they move into results keyed by the
	// generation they belong to, reference-counted so late wakers of an
	// already-recycled barrier still find their round's data.
	deposits map[TID][]byte
	results  map[int]*barrierResult
}

type barrierResult struct {
	data    map[TID][]byte
	readers int
}

// takeResult hands one waiter its generation's gathered deposits,
// freeing the round once every participant has collected. Caller holds
// b.mu.
func (b *barrier) takeResult(gen int) map[TID][]byte {
	r := b.results[gen]
	if r == nil {
		return nil
	}
	r.readers--
	if r.readers <= 0 {
		delete(b.results, gen)
	}
	return r.data
}

// Barrier blocks until count tasks have entered the named barrier
// (PVM's pvm_barrier). All participants must agree on count.
func (t *Task) Barrier(name string, count int) error {
	return t.BarrierTimeout(name, count, 0)
}

// BarrierTimeout is Barrier with a deadline: when d is positive and
// elapses before the barrier completes, the task withdraws its arrival
// (so a later retry is not double-counted) and returns ErrTimeout. A
// zero or negative d waits forever. A barrier torn down with
// CancelBarrier returns ErrCanceled to every waiter and every
// subsequent arrival.
func (t *Task) BarrierTimeout(name string, count int, d time.Duration) error {
	_, err := t.BarrierExchange(name, count, d, nil)
	return err
}

// BarrierExchange is BarrierTimeout with an all-gather bolted on: each
// participant deposits a byte slice on arrival and, when the barrier
// completes, receives every participant's deposit keyed by TID. The
// verification layer uses it to join vector clocks at barriers without
// a second round of messaging. Deposits are copied on entry, so the
// caller may reuse its buffer immediately. A withdrawn (timed-out)
// arrival takes its deposit with it; CancelBarrier discards the
// pending round's deposits.
func (t *Task) BarrierExchange(name string, count int, d time.Duration, deposit []byte) (map[TID][]byte, error) {
	if count <= 0 {
		return nil, fmt.Errorf("pvm: barrier %q with count %d", name, count)
	}
	s := t.sys
	s.mu.Lock()
	if s.halted {
		s.mu.Unlock()
		return nil, ErrHalted
	}
	b, ok := s.barriers[name]
	if !ok {
		b = &barrier{}
		b.cond = sync.NewCond(&b.mu)
		s.barriers[name] = b
	}
	s.mu.Unlock()

	var deadline time.Time
	var timer *time.Timer
	if d > 0 {
		deadline = time.Now().Add(d)
		timer = time.AfterFunc(d, func() {
			b.mu.Lock()
			b.cond.Broadcast()
			b.mu.Unlock()
		})
		defer timer.Stop()
	}

	b.mu.Lock()
	defer b.mu.Unlock()
	if b.canceled {
		return nil, fmt.Errorf("pvm: barrier %q: %w", name, ErrCanceled)
	}
	gen := b.gen
	if b.deposits == nil {
		b.deposits = make(map[TID][]byte)
	}
	b.deposits[t.tid] = append([]byte(nil), deposit...)
	b.arrived++
	if b.arrived >= count {
		b.arrived = 0
		if b.results == nil {
			b.results = make(map[int]*barrierResult)
		}
		b.results[gen] = &barrierResult{data: b.deposits, readers: count}
		b.deposits = nil
		b.gen++
		b.cond.Broadcast()
		return b.takeResult(gen), nil
	}
	for b.gen == gen && !b.halted && !b.canceled {
		if d > 0 && !time.Now().Before(deadline) {
			b.arrived--
			delete(b.deposits, t.tid)
			return nil, fmt.Errorf("pvm: barrier %q after %v: %w", name, d, ErrTimeout)
		}
		b.cond.Wait()
	}
	if b.gen != gen {
		return b.takeResult(gen), nil // completed while we were checking
	}
	if b.canceled {
		return nil, fmt.Errorf("pvm: barrier %q: %w", name, ErrCanceled)
	}
	return nil, ErrHalted
}

// CancelBarrier tears down the named barrier: every current waiter and
// every later arrival gets ErrCanceled. Unlike Halt it affects only
// this barrier, so the rest of the system keeps running — the hook the
// failure-detection layer uses to un-park survivors of a crashed peer.
// Canceling a name nobody has arrived at yet still latches: the cancel
// may race ahead of the waiter it is meant to wake.
func (s *System) CancelBarrier(name string) {
	s.mu.Lock()
	b, ok := s.barriers[name]
	if !ok {
		b = &barrier{}
		b.cond = sync.NewCond(&b.mu)
		s.barriers[name] = b
	}
	s.mu.Unlock()
	b.mu.Lock()
	b.canceled = true
	b.arrived = 0
	b.deposits = nil
	b.cond.Broadcast()
	b.mu.Unlock()
}
