package pvm

import (
	"errors"
	"sync"
)

// ErrPeerLost is wrapped by transports when a peer's link is severed —
// the connection closed, reset, or failed mid-delivery. The engines map
// it into their failure-detection taxonomy (ErrPeerFailed) exactly like
// a detected crash, so a dead wire degrades a run instead of hanging it.
var ErrPeerLost = errors.New("pvm: transport peer lost")

// Transport abstracts the message plane under a System. The nil
// transport is the in-proc fast path: deliveries go straight into the
// destination's indexed mailbox with zero copies and pooled backing.
// A non-nil transport owns delivery instead: Send, SendBatch and Mcast
// hand it the adopted messages and the transport is responsible for
// getting them into the destination mailbox (for a wire transport, via
// System.Inject on the receiving side).
//
// Contract:
//
//   - Deliver must be synchronous: it must not return success before
//     every message in the batch is observable by the destination's
//     receive operations. The engines rely on "all sends of a superstep
//     happen before any barrier exit", so a transport that buffers
//     without acknowledgement would break barrier-delimited delivery.
//   - Deliver consumes the batch: each message's wire reference is owned
//     by the transport from the moment Deliver is called, on success and
//     on error alike (release after copying to the wire, or transfer to
//     the destination mailbox for loopback paths).
//   - Per-sender FIFO: two Deliver calls from the same task to the same
//     destination must stage in call order.
//   - Errors map into the pvm taxonomy: a severed link wraps
//     ErrPeerLost, an acknowledgement deadline wraps ErrTimeout, and a
//     halted destination system surfaces ErrHalted.
type Transport interface {
	// Name identifies the transport flavor ("inproc", "unix", "tcp").
	Name() string
	// Attach binds the transport to the System whose tasks it will
	// carry. Called once by SetTransport before any task is spawned.
	Attach(sys *System) error
	// Deliver carries a batch of already-adopted messages to dst.
	Deliver(dst TID, ms []Message) error
	// Close tears the transport down (listeners, connections, pumps).
	Close() error
}

// TransportFactory names one registered transport flavor. A nil New is
// the in-proc direct path (no Transport object at all), which is how
// the default registers itself.
type TransportFactory struct {
	Name string
	New  func() (Transport, error)
}

var (
	transportsMu sync.Mutex
	transports   = []TransportFactory{{Name: "inproc", New: nil}}
)

// RegisterTransport adds a transport flavor to the process-global
// registry. The conformance suite iterates the registry so every
// registered transport is exercised by the same collective matrix.
func RegisterTransport(f TransportFactory) {
	transportsMu.Lock()
	defer transportsMu.Unlock()
	for _, have := range transports {
		if have.Name == f.Name {
			panic("pvm: duplicate transport " + f.Name)
		}
	}
	transports = append(transports, f)
}

// TransportFactories returns a copy of the registry, in-proc first.
func TransportFactories() []TransportFactory {
	transportsMu.Lock()
	defer transportsMu.Unlock()
	return append([]TransportFactory(nil), transports...)
}

// SetTransport attaches tr and routes subsequent Send/SendBatch/Mcast
// calls through it. Must be called before any Spawn: the field is read
// without synchronization on the send path, relying on Spawn's
// happens-before edge. A nil tr is a no-op (the in-proc default).
func (s *System) SetTransport(tr Transport) error {
	if tr == nil {
		return nil
	}
	if err := tr.Attach(s); err != nil {
		return err
	}
	s.transport = tr
	return nil
}

// Inject stages a received wire payload into dst's mailbox on behalf of
// src. It is the re-entry point for wire transports: the bytes are
// copied into a fresh pooled backing (the caller's frame buffer is not
// retained) and delivered exactly like a local send, so receivers see
// no difference between transports.
func (s *System) Inject(src, dst TID, tag int, wire []byte) error {
	target, err := s.task(dst)
	if err != nil {
		return err
	}
	w := newWire()
	w.data = append(w.data[:0], wire...)
	if err := target.deliverOne(Message{Src: src, Tag: tag, buf: w.data, w: w}); err != nil {
		w.release()
		return err
	}
	return nil
}
