package wiretrans

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hbspk/internal/pvm"
)

func init() {
	pvm.RegisterTransport(pvm.TransportFactory{Name: "unix", New: func() (pvm.Transport, error) {
		return NewLoopback("unix")
	}})
	pvm.RegisterTransport(pvm.TransportFactory{Name: "tcp", New: func() (pvm.Transport, error) {
		return NewLoopback("tcp")
	}})
}

// ackResult is one BATCH acknowledgement.
type ackResult struct {
	code   int32
	detail string
}

// Ack codes.
const (
	ackOK int32 = iota
	ackHalted
	ackNoTask
	ackBad
)

// Loopback is a pvm.Transport that pushes every delivery through a
// real socket: the System's sends are framed, written to a connection,
// read back by a server pump attached to the same System, injected
// into the destination mailbox, and acknowledged. Functionally the
// messages land where the in-proc path would put them — but they cross
// a genuine network stack with real framing, partial reads, and
// connection failure modes, which is exactly what the conformance and
// chaos suites need to exercise.
//
// Deliver is synchronous: it returns only after the server pump has
// injected the whole batch and acked it, preserving the engines'
// "all sends of a superstep happen before barrier exit" contract.
type Loopback struct {
	network string // "unix" or "tcp"
	sys     *pvm.System

	ln  net.Listener
	dir string // unix socket directory, removed on Close
	cli *link  // client side: Deliver writes, ack reader reads

	seqMu sync.Mutex
	seq   int64
	acks  map[int64]chan ackResult

	// AckTimeout bounds one Deliver round trip. The default is generous:
	// on loopback an ack is microseconds away, so expiry means the pump
	// died, not congestion.
	AckTimeout time.Duration

	closeOnce sync.Once
	closed    chan struct{}
	failMu    sync.Mutex
	failErr   error
	wg        sync.WaitGroup

	sevMu      sync.Mutex
	severAfter int64 // server frames until abrupt close; <0 = never
}

// NewLoopback returns an unattached loopback transport over the given
// network ("unix" or "tcp"). The listener and connection are created
// by Attach.
func NewLoopback(network string) (*Loopback, error) {
	switch network {
	case "unix", "tcp":
	default:
		return nil, fmt.Errorf("wiretrans: unsupported network %q", network)
	}
	return &Loopback{
		network:    network,
		acks:       make(map[int64]chan ackResult),
		AckTimeout: 30 * time.Second,
		closed:     make(chan struct{}),
		severAfter: -1,
	}, nil
}

// Name implements pvm.Transport.
func (l *Loopback) Name() string { return l.network }

// Attach implements pvm.Transport: it brings up the listener, dials it,
// handshakes, and starts the server pump and the ack reader.
func (l *Loopback) Attach(sys *pvm.System) error {
	l.sys = sys
	addr := "127.0.0.1:0"
	if l.network == "unix" {
		dir, err := os.MkdirTemp("", "hbspk-wt-*")
		if err != nil {
			return fmt.Errorf("wiretrans: socket dir: %w", err)
		}
		l.dir = dir
		addr = filepath.Join(dir, "loop.sock")
	}
	ln, err := net.Listen(l.network, addr)
	if err != nil {
		l.removeDir()
		return fmt.Errorf("wiretrans: listen %s: %w", l.network, err)
	}
	l.ln = ln

	accepted := make(chan net.Conn, 1)
	acceptErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			acceptErr <- err
			return
		}
		accepted <- conn
	}()

	conn, err := net.DialTimeout(l.network, ln.Addr().String(), handshakeTimeout)
	if err != nil {
		_ = ln.Close()
		l.removeDir()
		return fmt.Errorf("wiretrans: dial %s: %w", l.network, err)
	}
	l.cli = &link{conn: conn, transport: l.network}
	if err := l.cli.sendHello(helloInfo{role: roleTransport, pid: -1}); err != nil {
		_ = conn.Close()
		_ = ln.Close()
		l.removeDir()
		return err
	}

	var srvConn net.Conn
	select {
	case srvConn = <-accepted:
	case err := <-acceptErr:
		_ = conn.Close()
		_ = ln.Close()
		l.removeDir()
		return fmt.Errorf("wiretrans: accept: %w", err)
	case <-time.After(handshakeTimeout):
		_ = conn.Close()
		_ = ln.Close()
		l.removeDir()
		return fmt.Errorf("wiretrans: accept: %w", pvm.ErrTimeout)
	}
	srv := &link{conn: srvConn, transport: l.network}
	h, err := srv.readHello()
	if err != nil {
		_ = srv.close()
		_ = conn.Close()
		_ = ln.Close()
		l.removeDir()
		return err
	}
	if h.role != roleTransport {
		_ = srv.sendWelcome(welcomeRejected, "not a transport client")
		_ = srv.close()
		_ = conn.Close()
		_ = ln.Close()
		l.removeDir()
		return fmt.Errorf("%w: unexpected role %d", ErrBadFrame, h.role)
	}
	if err := srv.sendWelcome(welcomeOK, ""); err != nil {
		_ = srv.close()
		_ = conn.Close()
		_ = ln.Close()
		l.removeDir()
		return err
	}
	if err := l.cli.readWelcome(); err != nil {
		_ = srv.close()
		_ = conn.Close()
		_ = ln.Close()
		l.removeDir()
		return err
	}

	l.wg.Add(2)
	go l.serverPump(srv)
	go l.ackReader()
	return nil
}

// Deliver implements pvm.Transport. It consumes the batch's wire
// references (copying each payload into the frame), writes one
// coalesced BATCH frame, and blocks until the server pump acks it.
func (l *Loopback) Deliver(dst pvm.TID, ms []pvm.Message) error {
	l.seqMu.Lock()
	l.seq++
	seq := l.seq
	ch := make(chan ackResult, 1)
	l.acks[seq] = ch
	l.seqMu.Unlock()

	body := pvm.Wrap(nil).
		PackInt64(seq).
		PackInt32(int32(dst), int32(len(ms)))
	for _, m := range ms {
		body.PackInt32(int32(m.Src)).PackInt64(int64(m.Tag)).PackBytes(m.Buffer().Bytes())
		m.Release()
	}

	if err := l.cli.writeFrame(frameBatch, body.Bytes()); err != nil {
		l.dropAck(seq)
		if ferr := l.failedErr(); ferr != nil {
			return ferr
		}
		return err
	}

	timer := time.NewTimer(l.AckTimeout)
	defer timer.Stop()
	select {
	case ack := <-ch:
		switch ack.code {
		case ackOK:
			return nil
		case ackHalted:
			return pvm.ErrHalted
		case ackNoTask:
			return fmt.Errorf("wiretrans: deliver to %d: %s", dst, ack.detail)
		default:
			return fmt.Errorf("%w: deliver to %d: %s", ErrBadFrame, dst, ack.detail)
		}
	case <-l.closed:
		l.dropAck(seq)
		if ferr := l.failedErr(); ferr != nil {
			return ferr
		}
		return fmt.Errorf("wiretrans: %s transport closed: %w", l.network, pvm.ErrPeerLost)
	case <-timer.C:
		l.dropAck(seq)
		return fmt.Errorf("wiretrans: %s ack after %v: %w", l.network, l.AckTimeout, pvm.ErrTimeout)
	}
}

func (l *Loopback) dropAck(seq int64) {
	l.seqMu.Lock()
	delete(l.acks, seq)
	l.seqMu.Unlock()
}

// serverPump reads BATCH frames, injects their messages into the
// destination mailbox, and writes the ack. It also implements Sever:
// when the armed frame budget runs out, both connections are torn down
// abruptly, mid-protocol, with no goodbye — the failure mode the
// abrupt-close chaos test exercises.
func (l *Loopback) serverPump(srv *link) {
	defer l.wg.Done()
	defer func() { _ = srv.close() }()
	var scratch []byte
	for {
		kind, body, next, err := srv.readFrame(scratch)
		if err != nil {
			l.fail(fmt.Errorf("wiretrans: %s server: %w: %v", l.network, pvm.ErrPeerLost, err))
			return
		}
		scratch = next
		if kind != frameBatch {
			l.fail(fmt.Errorf("%w: server got kind %d", ErrBadFrame, kind))
			return
		}
		if l.countSever() {
			// Abrupt close: no ack for the frame just read, no goodbye.
			l.fail(fmt.Errorf("wiretrans: %s link severed: %w", l.network, pvm.ErrPeerLost))
			return
		}
		seq, code, detail := l.injectBatch(body)
		ackBody := pvm.Wrap(nil).PackInt64(seq).PackInt32(code).PackString(detail)
		if err := srv.writeFrame(frameAck, ackBody.Bytes()); err != nil {
			l.fail(err)
			return
		}
	}
}

// injectBatch decodes one BATCH body and stages every message.
func (l *Loopback) injectBatch(body []byte) (seq int64, code int32, detail string) {
	b := pvm.Wrap(body)
	seq, err := b.UnpackInt64()
	if err != nil {
		return 0, ackBad, err.Error()
	}
	dst, err := b.UnpackInt32()
	if err != nil {
		return seq, ackBad, err.Error()
	}
	n, err := b.UnpackInt32()
	if err != nil {
		return seq, ackBad, err.Error()
	}
	for i := int32(0); i < n; i++ {
		src, err := b.UnpackInt32()
		if err != nil {
			return seq, ackBad, err.Error()
		}
		tag, err := b.UnpackInt64()
		if err != nil {
			return seq, ackBad, err.Error()
		}
		wire, err := b.UnpackBytes()
		if err != nil {
			return seq, ackBad, err.Error()
		}
		if err := l.sys.Inject(pvm.TID(src), pvm.TID(dst), int(tag), wire); err != nil {
			if err == pvm.ErrHalted {
				return seq, ackHalted, ""
			}
			return seq, ackNoTask, err.Error()
		}
	}
	return seq, ackOK, ""
}

// ackReader completes pending Delivers as acks come back.
func (l *Loopback) ackReader() {
	defer l.wg.Done()
	var scratch []byte
	for {
		kind, body, next, err := l.cli.readFrame(scratch)
		if err != nil {
			l.fail(fmt.Errorf("wiretrans: %s ack reader: %w: %v", l.network, pvm.ErrPeerLost, err))
			return
		}
		scratch = next
		if kind != frameAck {
			l.fail(fmt.Errorf("%w: ack reader got kind %d", ErrBadFrame, kind))
			return
		}
		b := pvm.Wrap(body)
		seq, err := b.UnpackInt64()
		if err != nil {
			l.fail(fmt.Errorf("%w: %v", ErrBadFrame, err))
			return
		}
		code, err := b.UnpackInt32()
		if err != nil {
			l.fail(fmt.Errorf("%w: %v", ErrBadFrame, err))
			return
		}
		detail, _ := b.UnpackString()
		l.seqMu.Lock()
		ch := l.acks[seq]
		delete(l.acks, seq)
		l.seqMu.Unlock()
		if ch != nil {
			ch <- ackResult{code: code, detail: detail}
		}
	}
}

// Sever arms an abrupt connection teardown after n more delivered
// frames (0 = at the next frame). Subsequent Delivers fail with
// pvm.ErrPeerLost, which the engines detect as a peer failure.
func (l *Loopback) Sever(n int64) {
	l.sevMu.Lock()
	l.severAfter = n
	l.sevMu.Unlock()
}

// countSever burns one frame of the armed sever budget and reports
// whether the link must drop now.
func (l *Loopback) countSever() bool {
	l.sevMu.Lock()
	defer l.sevMu.Unlock()
	if l.severAfter < 0 {
		return false
	}
	if l.severAfter == 0 {
		return true
	}
	l.severAfter--
	return false
}

// fail latches the first terminal error, tears down the connections,
// and unblocks every pending Deliver.
func (l *Loopback) fail(err error) {
	l.closeOnce.Do(func() {
		l.failMu.Lock()
		l.failErr = err
		l.failMu.Unlock()
		close(l.closed)
		if l.cli != nil {
			_ = l.cli.close()
		}
		if l.ln != nil {
			_ = l.ln.Close()
		}
	})
}

func (l *Loopback) failedErr() error {
	l.failMu.Lock()
	defer l.failMu.Unlock()
	return l.failErr
}

// Close implements pvm.Transport: a graceful teardown (nil failure).
func (l *Loopback) Close() error {
	l.fail(nil)
	l.wg.Wait()
	l.removeDir()
	return nil
}

func (l *Loopback) removeDir() {
	if l.dir != "" {
		_ = os.RemoveAll(l.dir)
		l.dir = ""
	}
}
