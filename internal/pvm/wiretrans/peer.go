package wiretrans

import (
	"time"

	"hbspk/internal/pvm"
)

// Peer is the process-spanning SPMD surface: what a processor can do
// regardless of whether it lives in the coordinator (a pvm task) or in
// a worker OS process (a Worker over a socket). Pids are dense
// [0, NProcs); by construction pid 0 is the coordinator-local program
// and pid == TID on the coordinator's System.
type Peer interface {
	Pid() int
	NProcs() int
	// Send delivers payload to dst under tag. Reliable, per-sender
	// ordered, like pvm.Task.Send.
	Send(dst, tag int, payload []byte) error
	// Recv blocks for the next matching envelope; negative src or tag
	// is a wildcard. Bounded by the peer's operation timeout.
	Recv(src, tag int) (Envelope, error)
	// Barrier enters the named barrier with a deposit and returns every
	// participant's deposit keyed by pid, exactly BarrierExchange.
	Barrier(name string, count int, deposit []byte) (map[int][]byte, error)
}

// localPeer adapts a coordinator-local pvm task to Peer.
type localPeer struct {
	task    *pvm.Task
	pid     int
	nprocs  int
	timeout time.Duration
}

// LocalPeer wraps a pvm task as a Peer. The caller guarantees the
// pid↔TID correspondence (spawn the pid-0 program first, then relays
// in pid order).
func LocalPeer(task *pvm.Task, pid, nprocs int, timeout time.Duration) Peer {
	return &localPeer{task: task, pid: pid, nprocs: nprocs, timeout: timeout}
}

func (lp *localPeer) Pid() int    { return lp.pid }
func (lp *localPeer) NProcs() int { return lp.nprocs }

func (lp *localPeer) Send(dst, tag int, payload []byte) error {
	return lp.task.Send(pvm.TID(dst), tag, pvm.NewBuffer().PackBytes(payload))
}

func (lp *localPeer) Recv(src, tag int) (Envelope, error) {
	s := pvm.TID(src)
	if src < 0 {
		s = pvm.AnySource
	}
	tg := tag
	if tag < 0 {
		tg = pvm.AnyTag
	}
	m, err := lp.task.RecvTimeout(s, tg, lp.timeout)
	if err != nil {
		return Envelope{}, err
	}
	payload, uerr := m.Buffer().UnpackBytes()
	env := Envelope{Src: int(m.Src), Tag: m.Tag}
	if uerr == nil {
		env.Payload = append([]byte(nil), payload...)
	}
	m.Release()
	if uerr != nil {
		return Envelope{}, uerr
	}
	return env, nil
}

func (lp *localPeer) Barrier(name string, count int, deposit []byte) (map[int][]byte, error) {
	res, err := lp.task.BarrierExchange(name, count, lp.timeout, deposit)
	if err != nil {
		return nil, err
	}
	out := make(map[int][]byte, len(res))
	for tid, data := range res {
		out[int(tid)] = data
	}
	return out, nil
}
