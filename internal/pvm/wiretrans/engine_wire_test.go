package wiretrans

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"

	"hbspk/internal/hbsp"
	"hbspk/internal/model"
	"hbspk/internal/pvm"
	"hbspk/internal/testutil"
)

// ringProg exchanges a tagged value around the ring each superstep and
// verifies the arithmetic, so any loss, reordering or corruption on
// the wire surfaces as a hard error.
func ringProg(steps int) hbsp.Program {
	return func(c hbsp.Ctx) error {
		pid, n := c.Pid(), c.NProcs()
		for s := 0; s < steps; s++ {
			want := uint64(((pid+n-1)%n)*1000 + s)
			payload := binary.BigEndian.AppendUint64(nil, uint64(pid*1000+s))
			if err := c.Send((pid+1)%n, s, payload); err != nil {
				return err
			}
			if err := hbsp.SyncAll(c, fmt.Sprintf("ring%d", s)); err != nil {
				return err
			}
			moves := c.Moves()
			if len(moves) != 1 {
				return fmt.Errorf("p%d step %d: %d moves, want 1", pid, s, len(moves))
			}
			got := binary.BigEndian.Uint64(moves[0].Payload)
			if got != want {
				return fmt.Errorf("p%d step %d: received %d, want %d", pid, s, got, want)
			}
		}
		return nil
	}
}

func TestConcurrentEngineOverWire(t *testing.T) {
	for _, network := range []string{"unix", "tcp"} {
		t.Run(network, func(t *testing.T) {
			testutil.CheckGoroutines(t)
			eng := hbsp.NewConcurrent(model.UCFTestbedN(4))
			eng.Verify = true // vector-clock checker across the wire
			eng.Transport = func() (pvm.Transport, error) { return NewLoopback(network) }
			if _, err := eng.Run(ringProg(5)); err != nil {
				t.Fatalf("run over %s: %v", network, err)
			}
		})
	}
}

func TestAbruptCloseIsDetectedAsPeerFailure(t *testing.T) {
	// The abrupt-connection-close chaos case: the link under a running
	// engine severs with no goodbye mid-run. The run must fail fast —
	// typed, not hung — with the shrink protocol reporting the
	// unreachable peer as failed with cause "link lost".
	testutil.CheckGoroutines(t)
	trc := make(chan *Loopback, 1)
	eng := hbsp.NewConcurrent(model.UCFTestbedN(4))
	eng.Transport = func() (pvm.Transport, error) {
		tr, err := NewLoopback("tcp")
		if err == nil {
			// The ring program sends 4 batch frames per superstep; sever
			// partway through the run, past the first barrier.
			tr.Sever(6)
			trc <- tr
		}
		return tr, err
	}
	start := time.Now()
	_, err := eng.Run(ringProg(50))
	elapsed := time.Since(start)
	<-trc
	if err == nil {
		t.Fatal("run over a severed link succeeded")
	}
	var pf *hbsp.ErrPeerFailed
	switch {
	case errors.As(err, &pf):
		if pf.Cause != "link lost" {
			t.Fatalf("ErrPeerFailed cause = %q, want \"link lost\"", pf.Cause)
		}
	case errors.Is(err, pvm.ErrPeerLost):
		// The severing deliver was a self-send: no peer to blame, but
		// still the typed transport error, not a hang.
	default:
		t.Fatalf("run error = %v, want ErrPeerFailed or pvm.ErrPeerLost", err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("failure detection took %v", elapsed)
	}
}
