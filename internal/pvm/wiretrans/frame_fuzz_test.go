package wiretrans

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"hbspk/internal/pvm"
)

// chunkReader yields at most chunk bytes per Read — the io-level half
// of split-read robustness (the net.Conn double lives in
// chunkconn_test.go).
type chunkReader struct {
	r     io.Reader
	chunk int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(p) > c.chunk {
		p = p[:c.chunk]
	}
	return c.r.Read(p)
}

func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(byte(frameBatch), []byte{}, 1)
	f.Add(byte(frameMsg), []byte("hello"), 3)
	f.Add(byte(0xFF), bytes.Repeat([]byte{0xAB}, 4096), 7)
	f.Fuzz(func(t *testing.T, kind byte, body []byte, chunk int) {
		if chunk < 1 {
			chunk = 1
		}
		frame := AppendFrame(nil, kind, body)
		gotKind, gotBody, _, n, err := ReadFrame(&chunkReader{r: bytes.NewReader(frame), chunk: chunk}, nil)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if n != len(frame) {
			t.Fatalf("frame length %d, wrote %d", n, len(frame))
		}
		if gotKind != kind || !bytes.Equal(gotBody, body) {
			t.Fatalf("frame mutated: kind %d→%d, body %d→%d bytes", kind, gotKind, len(body), len(gotBody))
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	f.Add(AppendFrame(nil, frameAck, []byte("ok")))
	f.Add(AppendFrame(nil, frameBatch, bytes.Repeat([]byte{1}, 100))[:20]) // truncated
	f.Fuzz(func(t *testing.T, raw []byte) {
		kind, body, _, n, err := ReadFrame(bytes.NewReader(raw), nil)
		if err != nil {
			// Every failure must be one of the typed errors or a clean
			// EOF — never a panic, never unbounded allocation.
			switch {
			case errors.Is(err, io.EOF),
				errors.Is(err, ErrTruncatedFrame),
				errors.Is(err, ErrFrameTooBig),
				errors.Is(err, ErrBadFrame):
			default:
				t.Fatalf("untyped frame error: %v", err)
			}
			return
		}
		// A parsed frame must re-encode to exactly the bytes consumed.
		if n > len(raw) {
			t.Fatalf("claimed %d bytes from a %d-byte input", n, len(raw))
		}
		if got := AppendFrame(nil, kind, body); !bytes.Equal(got, raw[:n]) {
			t.Fatalf("parse/encode mismatch on %d-byte frame", n)
		}
	})
}

// FuzzBatchBody drives the transport's BATCH decoder with arbitrary
// bodies: a corrupt peer must produce a typed ack (the empty System
// has no tasks, so every injection attempt acks no-such-task), never a
// panic.
func FuzzBatchBody(f *testing.F) {
	l := &Loopback{network: "tcp", sys: pvm.NewSystem()}
	valid := func(msgs int) []byte {
		b := pvm.Wrap(nil).PackInt64(7).PackInt32(1, int32(msgs))
		for i := 0; i < msgs; i++ {
			b.PackInt32(int32(i)).PackInt64(int64(100 + i)).PackBytes([]byte("payload"))
		}
		return b.Bytes()
	}
	f.Add(valid(0))
	f.Add(valid(2))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, body []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("BATCH decoder panicked: %v", r)
			}
		}()
		l.injectBatch(body)
	})
}
