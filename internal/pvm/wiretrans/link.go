package wiretrans

import (
	"fmt"
	"net"
	"sync"
	"time"

	"hbspk/internal/pvm"
)

// Handshake constants. Every connection opens with a HELLO carrying
// the protocol magic and version plus the dialer's identity (pid,
// nprocs, membership generation); the acceptor answers WELCOME with an
// error code, so identity or generation mismatches are rejected before
// any message flows.
const (
	protoMagic   = "hbspk-wire"
	protoVersion = 1

	roleTransport int32 = 0 // a Loopback client carrying Deliver batches
	roleWorker    int32 = 1 // a worker process joining a hub
)

// Welcome codes.
const (
	welcomeOK int32 = iota
	welcomeRejected
)

const handshakeTimeout = 10 * time.Second

type helloInfo struct {
	role   int32
	pid    int32
	nprocs int32
	gen    int64
}

// link wraps one connection with a write lock (frames from concurrent
// writers must not interleave) and per-link frame accounting.
type link struct {
	conn      net.Conn
	transport string // metrics label: "unix" or "tcp"

	wmu sync.Mutex
}

func (l *link) writeFrame(kind byte, body []byte) error {
	frame := AppendFrame(nil, kind, body)
	l.wmu.Lock()
	_, err := l.conn.Write(frame)
	l.wmu.Unlock()
	if err != nil {
		return fmt.Errorf("wiretrans: write %s frame: %w: %w", l.transport, pvm.ErrPeerLost, err)
	}
	observeFrame(l.transport, true, len(frame))
	return nil
}

// readFrame reads one frame, reusing scratch across calls.
func (l *link) readFrame(scratch []byte) (kind byte, body, next []byte, err error) {
	kind, body, next, n, err := ReadFrame(l.conn, scratch)
	if err == nil {
		observeFrame(l.transport, false, n)
	}
	return kind, body, next, err
}

func (l *link) close() error { return l.conn.Close() }

// sendHello writes the opening HELLO frame.
func (l *link) sendHello(h helloInfo) error {
	body := pvm.Wrap(nil).
		PackString(protoMagic).
		PackInt32(protoVersion, h.role, h.pid, h.nprocs).
		PackInt64(h.gen)
	return l.writeFrame(frameHello, body.Bytes())
}

// readHello reads and validates the opening HELLO frame.
func (l *link) readHello() (helloInfo, error) {
	deadline := time.Now().Add(handshakeTimeout)
	_ = l.conn.SetReadDeadline(deadline)
	defer func() { _ = l.conn.SetReadDeadline(time.Time{}) }()
	kind, body, _, err := l.readFrame(nil)
	if err != nil {
		return helloInfo{}, fmt.Errorf("wiretrans: handshake read: %w", err)
	}
	if kind != frameHello {
		return helloInfo{}, fmt.Errorf("%w: expected HELLO, got kind %d", ErrBadFrame, kind)
	}
	b := pvm.Wrap(body)
	magic, err := b.UnpackString()
	if err != nil {
		return helloInfo{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if magic != protoMagic {
		return helloInfo{}, fmt.Errorf("%w: bad magic %q", ErrBadFrame, magic)
	}
	var h helloInfo
	version, err := b.UnpackInt32()
	if err == nil && version != protoVersion {
		return helloInfo{}, fmt.Errorf("%w: protocol version %d, want %d", ErrBadFrame, version, protoVersion)
	}
	if err == nil {
		h.role, err = b.UnpackInt32()
	}
	if err == nil {
		h.pid, err = b.UnpackInt32()
	}
	if err == nil {
		h.nprocs, err = b.UnpackInt32()
	}
	if err == nil {
		h.gen, err = b.UnpackInt64()
	}
	if err != nil {
		return helloInfo{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return h, nil
}

// sendWelcome answers a HELLO.
func (l *link) sendWelcome(code int32, detail string) error {
	body := pvm.Wrap(nil).PackInt32(code).PackString(detail)
	return l.writeFrame(frameWelcome, body.Bytes())
}

// readWelcome reads the WELCOME answer and surfaces a rejection as an
// error.
func (l *link) readWelcome() error {
	deadline := time.Now().Add(handshakeTimeout)
	_ = l.conn.SetReadDeadline(deadline)
	defer func() { _ = l.conn.SetReadDeadline(time.Time{}) }()
	kind, body, _, err := l.readFrame(nil)
	if err != nil {
		return fmt.Errorf("wiretrans: handshake read: %w", err)
	}
	if kind != frameWelcome {
		return fmt.Errorf("%w: expected WELCOME, got kind %d", ErrBadFrame, kind)
	}
	b := pvm.Wrap(body)
	code, err := b.UnpackInt32()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if code != welcomeOK {
		detail, _ := b.UnpackString()
		return fmt.Errorf("wiretrans: handshake rejected: %s", detail)
	}
	return nil
}

// dialRetry dials with retries until the deadline — worker processes
// race the coordinator's listener at startup, and a connection refused
// within the window is an ordering artifact, not a failure.
func dialRetry(network, addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("wiretrans: dial %s %s: %w (last: %v)", network, addr, pvm.ErrTimeout, lastErr)
		}
		conn, err := net.DialTimeout(network, addr, remain)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
}
