package wiretrans

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"hbspk/internal/pvm"
)

// The multi-process smoke program: a broadcast + reduce round trip per
// round, verified the same way the in-proc engines' Verify mode works —
// vector clocks exchanged at every barrier prove each delivery is
// happens-before ordered (stamped clock dominated by the receiver's),
// and FNV checksums prove payloads crossed the wire unmutated. It runs
// over any Peer, so one program covers the coordinator-local pid and
// every worker process.

// Message tags of the SPMD program.
const (
	tagBcast  = 101
	tagReduce = 102
)

// vclock is a dense per-pid vector clock. (The hbsp package keeps its
// clock methods unexported; the few lines are reimplemented here
// rather than widening that API for a test program.)
type vclock []uint64

func (c vclock) tick(pid int) { c[pid]++ }

func (c vclock) join(o vclock) {
	for i := range c {
		if i < len(o) && o[i] > c[i] {
			c[i] = o[i]
		}
	}
}

// dominates reports whether c >= o componentwise: o happened-before or
// equals c.
func (c vclock) dominates(o vclock) bool {
	for i := range c {
		var ov uint64
		if i < len(o) {
			ov = o[i]
		}
		if c[i] < ov {
			return false
		}
	}
	return true
}

func (c vclock) encode() []byte {
	out := make([]byte, 0, 8*len(c))
	for _, v := range c {
		out = binary.BigEndian.AppendUint64(out, v)
	}
	return out
}

func decodeClock(raw []byte, n int) (vclock, error) {
	if len(raw) != 8*n {
		return nil, fmt.Errorf("wiretrans: clock deposit of %d bytes, want %d", len(raw), 8*n)
	}
	c := make(vclock, n)
	for i := range c {
		c[i] = binary.BigEndian.Uint64(raw[8*i:])
	}
	return c, nil
}

// fnv64a is the same FNV-1a the verification layer checksums payloads
// with.
func fnv64a(p []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range p {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// stamp packs (checksum, clock, data) into one payload.
func stamp(clk vclock, data []byte) []byte {
	return pvm.Wrap(nil).
		PackInt64(int64(fnv64a(data))).
		PackBytes(clk.encode()).
		PackBytes(data).
		Bytes()
}

// unstamp reverses stamp. The returned data is a copy.
func unstamp(payload []byte, nprocs int) (sum uint64, clk vclock, data []byte, err error) {
	b := pvm.Wrap(payload)
	s, err := b.UnpackInt64()
	if err != nil {
		return 0, nil, nil, err
	}
	rawClk, err := b.UnpackBytes()
	if err != nil {
		return 0, nil, nil, err
	}
	clk, err = decodeClock(rawClk, nprocs)
	if err != nil {
		return 0, nil, nil, err
	}
	raw, err := b.UnpackBytes()
	if err != nil {
		return 0, nil, nil, err
	}
	return uint64(s), clk, append([]byte(nil), raw...), nil
}

// detPayload is the deterministic broadcast body for a round — every
// process can recompute it, so receivers verify content, not just
// checksums.
func detPayload(round, nbytes int) []byte {
	out := make([]byte, nbytes)
	for i := range out {
		out[i] = byte(round*31 + i*7 + 0x5A)
	}
	return out
}

// localFold is pid's deterministic reduce contribution for a round.
func localFold(pid, round int, data []byte) int64 {
	return int64(fnv64a(data)&0xFFFF)*int64(pid+1) + int64(round)
}

// barrierJoin enters a named barrier depositing the local clock, joins
// every participant's deposit, and ticks — the standard barrier edge
// of the happens-before order.
func barrierJoin(p Peer, clk vclock, name string) error {
	res, err := p.Barrier(name, p.NProcs(), clk.encode())
	if err != nil {
		return err
	}
	for pid, raw := range res {
		other, derr := decodeClock(raw, p.NProcs())
		if derr != nil {
			return fmt.Errorf("pid %d deposit: %w", pid, derr)
		}
		clk.join(other)
	}
	clk.tick(p.Pid())
	return nil
}

// RunSPMD runs the verified broadcast+reduce program: per round, pid 0
// broadcasts a stamped deterministic payload, every receiver checks
// ordering, checksum and content, then all pids fold a deterministic
// local value back to pid 0, which checks the total against the
// closed-form oracle; a final verdict barrier makes every process
// agree on the outcome. Returns the bytes this peer put on the wire.
func RunSPMD(p Peer, rounds, nbytes int) (int64, error) {
	pid, n := p.Pid(), p.NProcs()
	clk := make(vclock, n)
	var moved int64
	for r := 0; r < rounds; r++ {
		if err := barrierJoin(p, clk, fmt.Sprintf("spmd:start#%d", r)); err != nil {
			return moved, fmt.Errorf("round %d start: %w", r, err)
		}
		data := detPayload(r, nbytes)
		if pid == 0 {
			for dst := 1; dst < n; dst++ {
				payload := stamp(clk, data)
				if err := p.Send(dst, tagBcast, payload); err != nil {
					return moved, fmt.Errorf("round %d bcast to %d: %w", r, dst, err)
				}
				moved += int64(len(payload))
			}
		}
		if err := barrierJoin(p, clk, fmt.Sprintf("spmd:bcast#%d", r)); err != nil {
			return moved, fmt.Errorf("round %d bcast barrier: %w", r, err)
		}
		if pid != 0 {
			env, err := p.Recv(0, tagBcast)
			if err != nil {
				return moved, fmt.Errorf("round %d bcast recv: %w", r, err)
			}
			sum, sclk, got, err := unstamp(env.Payload, n)
			if err != nil {
				return moved, fmt.Errorf("round %d bcast payload: %w", r, err)
			}
			switch {
			case !clk.dominates(sclk):
				return moved, fmt.Errorf("round %d verify: broadcast delivery not ordered before the barrier (clock %v vs stamp %v)", r, clk, sclk)
			case fnv64a(got) != sum:
				return moved, fmt.Errorf("round %d verify: broadcast checksum mismatch", r)
			case !bytes.Equal(got, data):
				return moved, fmt.Errorf("round %d verify: broadcast payload diverged from the deterministic oracle", r)
			}
		}
		local := localFold(pid, r, data)
		if pid != 0 {
			payload := stamp(clk, binary.BigEndian.AppendUint64(nil, uint64(local)))
			if err := p.Send(0, tagReduce, payload); err != nil {
				return moved, fmt.Errorf("round %d reduce send: %w", r, err)
			}
			moved += int64(len(payload))
		}
		if err := barrierJoin(p, clk, fmt.Sprintf("spmd:reduce#%d", r)); err != nil {
			return moved, fmt.Errorf("round %d reduce barrier: %w", r, err)
		}
		verdict := []byte("K")
		if pid == 0 {
			total := local
			for src := 1; src < n; src++ {
				env, err := p.Recv(src, tagReduce)
				if err != nil {
					verdict = []byte(fmt.Sprintf("E: reduce recv from %d: %v", src, err))
					break
				}
				sum, sclk, raw, err := unstamp(env.Payload, n)
				switch {
				case err != nil:
					verdict = []byte(fmt.Sprintf("E: reduce payload from %d: %v", src, err))
				case !clk.dominates(sclk):
					verdict = []byte(fmt.Sprintf("E: reduce from %d not ordered before the barrier", src))
				case fnv64a(raw) != sum:
					verdict = []byte(fmt.Sprintf("E: reduce checksum from %d", src))
				case len(raw) != 8:
					verdict = []byte(fmt.Sprintf("E: reduce payload from %d is %d bytes", src, len(raw)))
				default:
					total += int64(binary.BigEndian.Uint64(raw))
					continue
				}
				break
			}
			if verdict[0] == 'K' {
				var oracle int64
				for i := 0; i < n; i++ {
					oracle += localFold(i, r, data)
				}
				if total != oracle {
					verdict = []byte(fmt.Sprintf("E: reduce total %d, oracle %d", total, oracle))
				}
			}
		}
		res, err := p.Barrier(fmt.Sprintf("spmd:verdict#%d", r), n, verdict)
		if err != nil {
			return moved, fmt.Errorf("round %d verdict barrier: %w", r, err)
		}
		if v := res[0]; len(v) == 0 || v[0] != 'K' {
			return moved, fmt.Errorf("round %d verify failed: %s", r, v)
		}
	}
	return moved, nil
}
