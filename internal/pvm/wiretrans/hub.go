package wiretrans

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"hbspk/internal/pvm"
)

// Hub is the coordinator side of a multi-process run. It listens for
// worker processes, handshakes them by (pid, nprocs, generation), and
// hands each accepted connection to a Relay task spawned on the
// coordinator's pvm.System. The relay is the worker's proxy inside the
// System: its TID stands in for the worker's pid, messages sent to it
// are forwarded over the wire, and the worker's sends and barrier
// entries are replayed onto the System — so local tasks and remote
// processes are indistinguishable to each other.
type Hub struct {
	network string
	nprocs  int
	gen     int64
	ln      net.Listener

	mu     sync.Mutex
	cond   *sync.Cond
	conns  map[int]*link
	closed bool

	wg sync.WaitGroup
}

// NewHub listens on network/addr ("unix" + socket path, or "tcp" +
// host:port; ":0" picks a free port) and starts accepting workers.
// gen is the membership generation every worker must present.
func NewHub(network, addr string, nprocs int, gen int64) (*Hub, error) {
	if nprocs < 1 {
		return nil, fmt.Errorf("wiretrans: hub with %d processors", nprocs)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("wiretrans: hub listen %s %s: %w", network, addr, err)
	}
	h := &Hub{
		network: network,
		nprocs:  nprocs,
		gen:     gen,
		ln:      ln,
		conns:   make(map[int]*link),
	}
	h.cond = sync.NewCond(&h.mu)
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Addr returns the listener's resolved address (the port picked for
// ":0", the socket path for unix).
func (h *Hub) Addr() string { return h.ln.Addr().String() }

func (h *Hub) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			// Listener closed: either Close or process teardown.
			return
		}
		h.wg.Add(1)
		go h.admit(conn)
	}
}

// admit handshakes one inbound connection and registers it by pid.
func (h *Hub) admit(conn net.Conn) {
	defer h.wg.Done()
	lk := &link{conn: conn, transport: h.network}
	hello, err := lk.readHello()
	if err != nil {
		_ = lk.close()
		return
	}
	reject := func(why string) {
		_ = lk.sendWelcome(welcomeRejected, why)
		_ = lk.close()
	}
	switch {
	case hello.role != roleWorker:
		reject(fmt.Sprintf("role %d is not a worker", hello.role))
		return
	case hello.pid < 1 || int(hello.pid) >= h.nprocs:
		reject(fmt.Sprintf("pid %d out of range [1,%d)", hello.pid, h.nprocs))
		return
	case int(hello.nprocs) != h.nprocs:
		reject(fmt.Sprintf("nprocs %d, hub has %d", hello.nprocs, h.nprocs))
		return
	case hello.gen != h.gen:
		reject(fmt.Sprintf("generation %d, hub is at %d", hello.gen, h.gen))
		return
	}
	h.mu.Lock()
	if h.closed || h.conns[int(hello.pid)] != nil {
		h.mu.Unlock()
		reject(fmt.Sprintf("pid %d already connected", hello.pid))
		return
	}
	h.conns[int(hello.pid)] = lk
	h.cond.Broadcast()
	h.mu.Unlock()
	if err := lk.sendWelcome(welcomeOK, ""); err != nil {
		h.mu.Lock()
		if h.conns[int(hello.pid)] == lk {
			delete(h.conns, int(hello.pid))
		}
		h.mu.Unlock()
		_ = lk.close()
	}
}

// waitConn blocks until the worker for pid has connected.
func (h *Hub) waitConn(pid int, timeout time.Duration) (*link, error) {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		h.mu.Lock()
		h.cond.Broadcast()
		h.mu.Unlock()
	})
	defer timer.Stop()
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if lk := h.conns[pid]; lk != nil {
			return lk, nil
		}
		if h.closed {
			return nil, fmt.Errorf("wiretrans: hub closed before worker %d connected", pid)
		}
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("wiretrans: worker %d did not connect within %v: %w", pid, timeout, pvm.ErrTimeout)
		}
		h.cond.Wait()
	}
}

// Relay returns the task body standing in for worker pid. Spawn order
// fixes the pid↔TID correspondence: the coordinator spawns its own
// pid-0 program first, then relays for pids 1..nprocs-1, so pid == TID
// everywhere. The relay forwards mailbox traffic to the worker and
// replays the worker's sends and barrier entries; if the worker's link
// drops without a BYE, the relay halts the whole System so the
// coordinator fails fast instead of hanging at the next barrier.
func (h *Hub) Relay(pid int, timeout time.Duration) func(*pvm.Task) error {
	return func(task *pvm.Task) error {
		lk, err := h.waitConn(pid, timeout)
		if err != nil {
			task.System().Halt()
			return err
		}
		ctx, cancel := context.WithCancel(context.Background())
		fwdDone := make(chan struct{})
		go h.forward(ctx, task, lk, fwdDone)
		err = h.control(task, lk, pid)
		cancel()
		<-fwdDone
		h.mu.Lock()
		if h.conns[pid] == lk {
			delete(h.conns, pid)
		}
		h.mu.Unlock()
		_ = lk.close()
		if err != nil {
			task.System().Halt()
		}
		return err
	}
}

// forward drains the relay's mailbox to the worker: every message the
// System routes at this TID becomes a MSG frame on the wire.
func (h *Hub) forward(ctx context.Context, task *pvm.Task, lk *link, done chan<- struct{}) {
	defer close(done)
	for {
		m, err := task.RecvContext(ctx, pvm.AnySource, pvm.AnyTag)
		if err != nil {
			return // canceled or halted
		}
		payload, uerr := m.Buffer().UnpackBytes()
		var werr error
		if uerr == nil {
			body := pvm.Wrap(nil).
				PackInt32(int32(m.Src)).
				PackInt64(int64(m.Tag)).
				PackBytes(payload)
			werr = lk.writeFrame(frameMsg, body.Bytes())
		}
		m.Release()
		if uerr != nil || werr != nil {
			return // malformed envelope or dead link; control notices too
		}
	}
}

// control replays the worker's protocol frames onto the System.
func (h *Hub) control(task *pvm.Task, lk *link, pid int) error {
	var scratch []byte
	for {
		kind, body, next, err := lk.readFrame(scratch)
		if err != nil {
			return fmt.Errorf("wiretrans: worker %d link: %w: %v", pid, pvm.ErrPeerLost, err)
		}
		scratch = next
		switch kind {
		case frameSend:
			b := pvm.Wrap(body)
			dst, err := b.UnpackInt32()
			var tag int64
			if err == nil {
				tag, err = b.UnpackInt64()
			}
			var payload []byte
			if err == nil {
				payload, err = b.UnpackBytes()
			}
			if err != nil {
				return fmt.Errorf("%w: worker %d SEND: %v", ErrBadFrame, pid, err)
			}
			if err := task.Send(pvm.TID(dst), int(tag), pvm.NewBuffer().PackBytes(payload)); err != nil {
				return fmt.Errorf("wiretrans: worker %d send to %d: %w", pid, dst, err)
			}
		case frameBarrier:
			b := pvm.Wrap(body)
			name, err := b.UnpackString()
			var count int32
			if err == nil {
				count, err = b.UnpackInt32()
			}
			var tmoMillis int64
			if err == nil {
				tmoMillis, err = b.UnpackInt64()
			}
			var deposit []byte
			if err == nil {
				deposit, err = b.UnpackBytes()
			}
			if err != nil {
				return fmt.Errorf("%w: worker %d BARRIER: %v", ErrBadFrame, pid, err)
			}
			res, berr := task.BarrierExchange(name, int(count), time.Duration(tmoMillis)*time.Millisecond, deposit)
			if berr != nil {
				eb := pvm.Wrap(nil).PackInt32(barrierErrCode(berr)).PackString(berr.Error())
				if werr := lk.writeFrame(frameBarrierErr, eb.Bytes()); werr != nil {
					return werr
				}
				continue
			}
			ob := pvm.Wrap(nil).PackInt32(int32(len(res)))
			for tid, data := range res {
				ob.PackInt32(int32(tid)).PackBytes(data)
			}
			if werr := lk.writeFrame(frameBarrierOK, ob.Bytes()); werr != nil {
				return werr
			}
		case frameBye:
			return nil
		default:
			return fmt.Errorf("%w: worker %d sent kind %d", ErrBadFrame, pid, kind)
		}
	}
}

// Barrier error codes carried on BARRIERERR frames.
const (
	berrTimeout int32 = iota + 1
	berrCanceled
	berrHalted
	berrOther
)

func barrierErrCode(err error) int32 {
	switch {
	case errors.Is(err, pvm.ErrTimeout):
		return berrTimeout
	case errors.Is(err, pvm.ErrCanceled):
		return berrCanceled
	case errors.Is(err, pvm.ErrHalted):
		return berrHalted
	default:
		return berrOther
	}
}

// Close tears the hub down: the listener stops, every registered
// worker connection closes, and pending waitConn calls fail.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	conns := make([]*link, 0, len(h.conns))
	for _, lk := range h.conns {
		conns = append(conns, lk)
	}
	h.cond.Broadcast()
	h.mu.Unlock()
	err := h.ln.Close()
	for _, lk := range conns {
		_ = lk.close()
	}
	h.wg.Wait()
	return err
}
