package wiretrans

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hbspk/internal/pvm"
	"hbspk/internal/testutil"
)

const testTimeout = 15 * time.Second

// startHub brings up a hub plus its coordinator System with the pid-0
// program and relays spawned in pid order (so pid == TID).
func startHub(t *testing.T, network string, nprocs int, pid0 func(*pvm.Task) error) (*Hub, *pvm.System) {
	t.Helper()
	addr := "127.0.0.1:0"
	if network == "unix" {
		addr = filepath.Join(t.TempDir(), "hub.sock")
	}
	h, err := NewHub(network, addr, nprocs, 1)
	if err != nil {
		t.Fatalf("NewHub: %v", err)
	}
	t.Cleanup(func() { _ = h.Close() })
	sys := pvm.NewSystem()
	if tid := sys.Spawn("pid0", pid0); tid != 0 {
		t.Fatalf("pid0 spawned as TID %d", tid)
	}
	for pid := 1; pid < nprocs; pid++ {
		sys.Spawn(fmt.Sprintf("relay%d", pid), h.Relay(pid, testTimeout))
	}
	return h, sys
}

func TestHubWorkerSPMD(t *testing.T) {
	for _, network := range []string{"unix", "tcp"} {
		t.Run(network, func(t *testing.T) {
			testutil.CheckGoroutines(t)
			const nprocs = 3
			h, sys := startHub(t, network, nprocs, func(task *pvm.Task) error {
				_, err := RunSPMD(LocalPeer(task, 0, nprocs, testTimeout), 3, 2048)
				return err
			})

			var wg sync.WaitGroup
			workerErrs := make([]error, nprocs)
			for pid := 1; pid < nprocs; pid++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					w, err := DialWorker(network, h.Addr(), pid, nprocs, 1, testTimeout)
					if err != nil {
						workerErrs[pid] = err
						return
					}
					defer func() { _ = w.Close() }()
					if _, err := RunSPMD(w, 3, 2048); err != nil {
						workerErrs[pid] = err
					}
				}(pid)
			}
			wg.Wait()
			if err := sys.Wait(); err != nil {
				t.Fatalf("coordinator: %v", err)
			}
			for pid, err := range workerErrs {
				if err != nil {
					t.Fatalf("worker %d: %v", pid, err)
				}
			}
		})
	}
}

func TestHubRejectsBadHandshake(t *testing.T) {
	testutil.CheckGoroutines(t)
	h, err := NewHub("tcp", "127.0.0.1:0", 3, 7)
	if err != nil {
		t.Fatalf("NewHub: %v", err)
	}
	t.Cleanup(func() { _ = h.Close() })

	cases := []struct {
		name        string
		pid, nprocs int
		gen         int64
	}{
		{"pid out of range", 5, 3, 7},
		{"pid zero is the coordinator", 0, 3, 7},
		{"nprocs mismatch", 1, 4, 7},
		{"generation mismatch", 1, 3, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DialWorker("tcp", h.Addr(), tc.pid, tc.nprocs, tc.gen, 3*time.Second); err == nil {
				t.Fatal("handshake accepted")
			}
		})
	}
	// A valid handshake still goes through afterwards.
	w, err := DialWorker("tcp", h.Addr(), 1, 3, 7, 3*time.Second)
	if err != nil {
		t.Fatalf("valid handshake rejected: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestWorkerLinkDropHaltsCoordinator(t *testing.T) {
	// A worker that vanishes without BYE must not hang the coordinator:
	// the relay halts the System, so pid 0 (parked in a receive) wakes
	// with a typed error instead of blocking forever.
	testutil.CheckGoroutines(t)
	const nprocs = 2
	pid0Err := make(chan error, 1)
	h, sys := startHub(t, "tcp", nprocs, func(task *pvm.Task) error {
		m, err := task.RecvTimeout(pvm.AnySource, 9, testTimeout)
		if err == nil {
			m.Release()
		}
		pid0Err <- err
		return nil
	})

	w, err := DialWorker("tcp", h.Addr(), 1, nprocs, 1, testTimeout)
	if err != nil {
		t.Fatalf("DialWorker: %v", err)
	}
	// Abrupt close: no BYE.
	_ = w.lk.close()
	<-w.done

	err = <-pid0Err
	if !errors.Is(err, pvm.ErrHalted) {
		t.Fatalf("pid0 receive after worker drop = %v, want ErrHalted", err)
	}
	if werr := sys.Wait(); werr == nil || !errors.Is(werr, pvm.ErrPeerLost) {
		t.Fatalf("coordinator Wait = %v, want a pvm.ErrPeerLost relay error", werr)
	}
}

func TestWorkerBarrierTimeoutIsTyped(t *testing.T) {
	// A barrier the peers never complete must come back to the worker
	// as the same typed ErrTimeout the in-proc API returns.
	testutil.CheckGoroutines(t)
	const nprocs = 2
	h, sys := startHub(t, "tcp", nprocs, func(task *pvm.Task) error {
		// pid0 never enters the barrier.
		_, err := task.RecvTimeout(pvm.AnySource, 9, testTimeout)
		if errors.Is(err, pvm.ErrHalted) {
			return nil
		}
		return err
	})

	w, err := DialWorker("tcp", h.Addr(), 1, nprocs, 1, testTimeout)
	if err != nil {
		t.Fatalf("DialWorker: %v", err)
	}
	w.SetTimeout(300 * time.Millisecond)
	if _, err := w.Barrier("nobody-comes", nprocs, nil); !errors.Is(err, pvm.ErrTimeout) {
		t.Fatalf("Barrier = %v, want pvm.ErrTimeout", err)
	}
	w.SetTimeout(testTimeout)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	sys.Halt()
	_ = sys.Wait()
}
