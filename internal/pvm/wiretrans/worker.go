package wiretrans

import (
	"fmt"
	"sync"
	"time"

	"hbspk/internal/pvm"
)

// Envelope is one application message as the Peer API sees it: the
// hub/worker protocol wraps every payload in a single packed byte
// field, so local pvm tasks and remote workers exchange identical
// bytes.
type Envelope struct {
	Src     int
	Tag     int
	Payload []byte
}

// Worker is the client side of the hub/worker protocol: one per worker
// OS process. It implements Peer over a single connection — sends and
// barrier entries go up as frames, routed messages and barrier results
// come back down into a small selective-receive inbox.
type Worker struct {
	lk     *link
	pid    int
	nprocs int

	// Timeout bounds each Recv and Barrier. Zero means the dial
	// timeout's default.
	timeout time.Duration

	mu      sync.Mutex
	cond    *sync.Cond
	inbox   []Envelope
	replies []barrierReply
	err     error
	done    chan struct{}
}

type barrierReply struct {
	data map[int][]byte
	err  error
}

// DialWorker connects to a hub, retrying the dial until timeout (the
// worker usually races the coordinator's listener at startup), and
// completes the pid+generation handshake. The returned Worker's per-op
// timeout defaults to the same value; SetTimeout overrides it.
func DialWorker(network, addr string, pid, nprocs int, gen int64, timeout time.Duration) (*Worker, error) {
	conn, err := dialRetry(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	lk := &link{conn: conn, transport: network}
	if err := lk.sendHello(helloInfo{role: roleWorker, pid: int32(pid), nprocs: int32(nprocs), gen: gen}); err != nil {
		_ = lk.close()
		return nil, err
	}
	if err := lk.readWelcome(); err != nil {
		_ = lk.close()
		return nil, err
	}
	w := &Worker{lk: lk, pid: pid, nprocs: nprocs, timeout: timeout, done: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)
	go w.reader()
	return w, nil
}

// Pid implements Peer.
func (w *Worker) Pid() int { return w.pid }

// NProcs implements Peer.
func (w *Worker) NProcs() int { return w.nprocs }

// SetTimeout overrides the per-operation deadline.
func (w *Worker) SetTimeout(d time.Duration) { w.timeout = d }

// reader demultiplexes the downlink: routed messages into the inbox,
// barrier outcomes into the reply queue.
func (w *Worker) reader() {
	defer close(w.done)
	var scratch []byte
	for {
		kind, body, next, err := w.lk.readFrame(scratch)
		if err != nil {
			w.fail(fmt.Errorf("wiretrans: hub link: %w: %v", pvm.ErrPeerLost, err))
			return
		}
		scratch = next
		switch kind {
		case frameMsg:
			b := pvm.Wrap(body)
			src, err := b.UnpackInt32()
			var tag int64
			if err == nil {
				tag, err = b.UnpackInt64()
			}
			var payload []byte
			if err == nil {
				payload, err = b.UnpackBytes()
			}
			if err != nil {
				w.fail(fmt.Errorf("%w: MSG: %v", ErrBadFrame, err))
				return
			}
			env := Envelope{Src: int(src), Tag: int(tag), Payload: append([]byte(nil), payload...)}
			w.mu.Lock()
			w.inbox = append(w.inbox, env)
			w.cond.Broadcast()
			w.mu.Unlock()
		case frameBarrierOK:
			b := pvm.Wrap(body)
			n, err := b.UnpackInt32()
			if err != nil {
				w.fail(fmt.Errorf("%w: BARRIEROK: %v", ErrBadFrame, err))
				return
			}
			data := make(map[int][]byte, n)
			for i := int32(0); i < n; i++ {
				tid, err := b.UnpackInt32()
				var dep []byte
				if err == nil {
					dep, err = b.UnpackBytes()
				}
				if err != nil {
					w.fail(fmt.Errorf("%w: BARRIEROK: %v", ErrBadFrame, err))
					return
				}
				data[int(tid)] = append([]byte(nil), dep...)
			}
			w.pushReply(barrierReply{data: data})
		case frameBarrierErr:
			b := pvm.Wrap(body)
			code, err := b.UnpackInt32()
			detail, _ := b.UnpackString()
			if err != nil {
				w.fail(fmt.Errorf("%w: BARRIERERR: %v", ErrBadFrame, err))
				return
			}
			w.pushReply(barrierReply{err: barrierErrFromCode(code, detail)})
		default:
			w.fail(fmt.Errorf("%w: hub sent kind %d", ErrBadFrame, kind))
			return
		}
	}
}

func barrierErrFromCode(code int32, detail string) error {
	switch code {
	case berrTimeout:
		return fmt.Errorf("wiretrans: barrier: %w: %s", pvm.ErrTimeout, detail)
	case berrCanceled:
		return fmt.Errorf("wiretrans: barrier: %w: %s", pvm.ErrCanceled, detail)
	case berrHalted:
		return fmt.Errorf("wiretrans: barrier: %w: %s", pvm.ErrHalted, detail)
	default:
		return fmt.Errorf("wiretrans: barrier failed: %s", detail)
	}
}

func (w *Worker) pushReply(r barrierReply) {
	w.mu.Lock()
	w.replies = append(w.replies, r)
	w.cond.Broadcast()
	w.mu.Unlock()
}

func (w *Worker) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// Send implements Peer: the payload travels as one SEND frame and is
// replayed by the relay as a pvm send to dst's TID.
func (w *Worker) Send(dst, tag int, payload []byte) error {
	body := pvm.Wrap(nil).
		PackInt32(int32(dst)).
		PackInt64(int64(tag)).
		PackBytes(payload)
	return w.lk.writeFrame(frameSend, body.Bytes())
}

// Recv implements Peer: it blocks until an inbox envelope matches src
// and tag (negative values are wildcards), in arrival order.
func (w *Worker) Recv(src, tag int) (Envelope, error) {
	deadline := time.Now().Add(w.timeout)
	timer := time.AfterFunc(w.timeout, func() {
		w.mu.Lock()
		w.cond.Broadcast()
		w.mu.Unlock()
	})
	defer timer.Stop()
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		for i, env := range w.inbox {
			if (src >= 0 && env.Src != src) || (tag >= 0 && env.Tag != tag) {
				continue
			}
			w.inbox = append(w.inbox[:i], w.inbox[i+1:]...)
			return env, nil
		}
		if w.err != nil {
			return Envelope{}, w.err
		}
		if !time.Now().Before(deadline) {
			return Envelope{}, fmt.Errorf("wiretrans: recv(src=%d, tag=%d) after %v: %w", src, tag, w.timeout, pvm.ErrTimeout)
		}
		w.cond.Wait()
	}
}

// Barrier implements Peer: the entry travels as a BARRIER frame, the
// hub parks the relay in the System's BarrierExchange, and the result
// (every participant's deposit keyed by pid) comes back down.
func (w *Worker) Barrier(name string, count int, deposit []byte) (map[int][]byte, error) {
	body := pvm.Wrap(nil).
		PackString(name).
		PackInt32(int32(count)).
		PackInt64(w.timeout.Milliseconds()).
		PackBytes(deposit)
	if err := w.lk.writeFrame(frameBarrier, body.Bytes()); err != nil {
		return nil, err
	}
	// The hub bounds the barrier by the same timeout; the extra slack
	// covers the protocol round trip so the hub's typed answer wins the
	// race against the local clock.
	deadline := time.Now().Add(w.timeout + 5*time.Second)
	timer := time.AfterFunc(time.Until(deadline), func() {
		w.mu.Lock()
		w.cond.Broadcast()
		w.mu.Unlock()
	})
	defer timer.Stop()
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if len(w.replies) > 0 {
			r := w.replies[0]
			w.replies = w.replies[1:]
			return r.data, r.err
		}
		if w.err != nil {
			return nil, w.err
		}
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("wiretrans: barrier %q: %w", name, pvm.ErrTimeout)
		}
		w.cond.Wait()
	}
}

// Close departs cleanly: a BYE frame, then the connection drops and
// the reader drains out.
func (w *Worker) Close() error {
	_ = w.lk.writeFrame(frameBye, nil)
	err := w.lk.close()
	<-w.done
	return err
}
