package wiretrans

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// chunkConn is a net.Conn test double that fragments traffic: Reads
// return at most maxRead bytes and Writes are issued to the underlying
// conn in maxWrite-byte pieces — the worst-case syscall behavior of a
// congested TCP stream, which the frame layer must reassemble exactly.
type chunkConn struct {
	net.Conn
	maxRead, maxWrite int
}

func (c *chunkConn) Read(p []byte) (int, error) {
	if c.maxRead > 0 && len(p) > c.maxRead {
		p = p[:c.maxRead]
	}
	return c.Conn.Read(p)
}

func (c *chunkConn) Write(p []byte) (int, error) {
	if c.maxWrite <= 0 {
		return c.Conn.Write(p)
	}
	total := 0
	for len(p) > 0 {
		n := c.maxWrite
		if n > len(p) {
			n = len(p)
		}
		m, err := c.Conn.Write(p[:n])
		total += m
		if err != nil {
			return total, err
		}
		p = p[m:]
	}
	return total, nil
}

func TestFramesSurviveChunkedConn(t *testing.T) {
	// Every read returns 1 byte, every write is split into 3-byte
	// pieces: frames must reassemble bit-exact anyway.
	a, b := net.Pipe()
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
	sender := &link{conn: &chunkConn{Conn: a, maxWrite: 3}, transport: "test"}
	receiver := &link{conn: &chunkConn{Conn: b, maxRead: 1}, transport: "test"}

	frames := []struct {
		kind byte
		body []byte
	}{
		{frameHello, nil},
		{frameBatch, bytes.Repeat([]byte{0xC3}, 1000)},
		{frameAck, []byte{0}},
		{frameBye, []byte("goodbye")},
	}
	errc := make(chan error, 1)
	go func() {
		for _, fr := range frames {
			if err := sender.writeFrame(fr.kind, fr.body); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	var scratch []byte
	for i, want := range frames {
		kind, body, next, err := receiver.readFrame(scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		scratch = next
		if kind != want.kind || !bytes.Equal(body, want.body) {
			t.Fatalf("frame %d mutated: kind %d→%d, %d→%d bytes", i, want.kind, kind, len(want.body), len(body))
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("writer: %v", err)
	}
}

func TestReadFrameTypedErrors(t *testing.T) {
	big := make([]byte, 4)
	big[0], big[1], big[2], big[3] = 0xFF, 0xFF, 0xFF, 0xFF
	cases := []struct {
		name string
		raw  []byte
		want error
	}{
		{"clean EOF", nil, io.EOF},
		{"header cut short", []byte{0, 0}, ErrTruncatedFrame},
		{"zero length", []byte{0, 0, 0, 0}, ErrBadFrame},
		{"oversize length", append(big, 1), ErrFrameTooBig},
		{"body cut short", AppendFrame(nil, frameMsg, bytes.Repeat([]byte{1}, 64))[:10], ErrTruncatedFrame},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, _, err := ReadFrame(bytes.NewReader(tc.raw), nil)
			if !errors.Is(err, tc.want) {
				t.Fatalf("ReadFrame = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestHandshakeOverChunkedConn(t *testing.T) {
	// The full HELLO/WELCOME exchange through fragmenting conns.
	a, b := net.Pipe()
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
	_ = a.SetDeadline(time.Now().Add(5 * time.Second))
	_ = b.SetDeadline(time.Now().Add(5 * time.Second))
	dialer := &link{conn: &chunkConn{Conn: a, maxRead: 1, maxWrite: 2}, transport: "test"}
	acceptor := &link{conn: &chunkConn{Conn: b, maxRead: 1, maxWrite: 2}, transport: "test"}

	errc := make(chan error, 1)
	go func() {
		if err := dialer.sendHello(helloInfo{role: roleWorker, pid: 2, nprocs: 4, gen: 9}); err != nil {
			errc <- err
			return
		}
		errc <- dialer.readWelcome()
	}()
	h, err := acceptor.readHello()
	if err != nil {
		t.Fatalf("readHello: %v", err)
	}
	if h.role != roleWorker || h.pid != 2 || h.nprocs != 4 || h.gen != 9 {
		t.Fatalf("hello = %+v", h)
	}
	if err := acceptor.sendWelcome(welcomeOK, ""); err != nil {
		t.Fatalf("sendWelcome: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("dialer: %v", err)
	}
}
