package wiretrans

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hbspk/internal/pvm"
	"hbspk/internal/testutil"
)

func TestLoopbackRoundTrip(t *testing.T) {
	for _, network := range []string{"unix", "tcp"} {
		t.Run(network, func(t *testing.T) {
			testutil.CheckGoroutines(t)
			tr, err := NewLoopback(network)
			if err != nil {
				t.Fatalf("NewLoopback: %v", err)
			}
			sys := pvm.NewSystem()
			if err := sys.SetTransport(tr); err != nil {
				t.Fatalf("SetTransport: %v", err)
			}
			t.Cleanup(func() { _ = tr.Close() })

			const msgs = 32
			recv := sys.Spawn("recv", func(task *pvm.Task) error {
				for i := 0; i < msgs; i++ {
					m, err := task.RecvTimeout(pvm.AnySource, 3, 10*time.Second)
					if err != nil {
						return err
					}
					v, err := m.Buffer().UnpackInt64()
					m.Release()
					if err != nil {
						return err
					}
					if v != int64(i) {
						return fmt.Errorf("message %d carried %d: order or content lost on the wire", i, v)
					}
				}
				return nil
			})
			sys.Spawn("send", func(task *pvm.Task) error {
				// Mix Send, SendBatch and Mcast so all three routes cross
				// the socket.
				for i := 0; i < msgs; {
					switch {
					case i%8 == 5:
						if err := task.Mcast([]pvm.TID{recv}, 3, pvm.NewBuffer().PackInt64(int64(i))); err != nil {
							return err
						}
						i++
					case i%8 == 2 && i+2 <= msgs:
						batch := []*pvm.Buffer{
							pvm.NewBuffer().PackInt64(int64(i)),
							pvm.NewBuffer().PackInt64(int64(i + 1)),
						}
						if err := task.SendBatch(recv, 3, batch); err != nil {
							return err
						}
						i += 2
					default:
						if err := task.Send(recv, 3, pvm.NewBuffer().PackInt64(int64(i))); err != nil {
							return err
						}
						i++
					}
				}
				return nil
			})
			if err := sys.Wait(); err != nil {
				t.Fatalf("Wait: %v", err)
			}
			if err := tr.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}

func TestLoopbackBarrierDeliveryContract(t *testing.T) {
	// The engines' core assumption: a Send that returned before a
	// barrier entry is receivable immediately after the barrier exits,
	// with no extra wait. TryRecv (non-blocking) right after the
	// barrier must therefore see the message.
	testutil.CheckGoroutines(t)
	tr, err := NewLoopback("unix")
	if err != nil {
		t.Fatalf("NewLoopback: %v", err)
	}
	sys := pvm.NewSystem()
	if err := sys.SetTransport(tr); err != nil {
		t.Fatalf("SetTransport: %v", err)
	}
	t.Cleanup(func() { _ = tr.Close() })

	const rounds = 50
	recv := sys.Spawn("recv", func(task *pvm.Task) error {
		for r := 0; r < rounds; r++ {
			if err := task.Barrier(fmt.Sprintf("b#%d", r), 2); err != nil {
				return err
			}
			m, ok := task.TryRecv(pvm.AnySource, r)
			if !ok {
				return fmt.Errorf("round %d: message not visible right after the barrier — Deliver returned before injection", r)
			}
			m.Release()
		}
		return nil
	})
	if recv != 0 {
		t.Fatalf("recv spawned as %d", recv)
	}
	sys.Spawn("send", func(task *pvm.Task) error {
		for r := 0; r < rounds; r++ {
			if err := task.Send(recv, r, pvm.NewBuffer().PackInt32(int32(r))); err != nil {
				return err
			}
			if err := task.Barrier(fmt.Sprintf("b#%d", r), 2); err != nil {
				return err
			}
		}
		return nil
	})
	if err := sys.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestLoopbackSeverFailsDelivers(t *testing.T) {
	testutil.CheckGoroutines(t)
	tr, err := NewLoopback("tcp")
	if err != nil {
		t.Fatalf("NewLoopback: %v", err)
	}
	sys := pvm.NewSystem()
	if err := sys.SetTransport(tr); err != nil {
		t.Fatalf("SetTransport: %v", err)
	}
	t.Cleanup(func() { _ = tr.Close() })

	errc := make(chan error, 1)
	recv := sys.Spawn("recv", func(task *pvm.Task) error {
		m, err := task.RecvTimeout(pvm.AnySource, 1, 10*time.Second)
		if err == nil {
			m.Release()
		}
		return nil
	})
	sys.Spawn("send", func(task *pvm.Task) error {
		if err := task.Send(recv, 1, pvm.NewBuffer().PackInt32(1)); err != nil {
			errc <- err
			return nil
		}
		tr.Sever(0)
		// Every delivery after the sever must fail with the typed
		// peer-lost error, promptly (no ack-timeout stall).
		errc <- task.Send(recv, 1, pvm.NewBuffer().PackInt32(2))
		return nil
	})
	if err := <-errc; !errors.Is(err, pvm.ErrPeerLost) {
		t.Fatalf("Send over severed link = %v, want pvm.ErrPeerLost", err)
	}
	sys.Halt()
	_ = sys.Wait()
}

// frameCountObserver counts wire frames via the FrameObserver
// extension, structurally like obsv.Recorder.
type frameCountObserver struct {
	mu     sync.Mutex
	frames map[string]int
	bytes  map[string]int
}

func (o *frameCountObserver) MailboxDepth(int) {}
func (o *frameCountObserver) PoolDraw(bool)    {}
func (o *frameCountObserver) TransportFrame(transport string, out bool, frameBytes int) {
	dir := "in"
	if out {
		dir = "out"
	}
	o.mu.Lock()
	o.frames[transport+"/"+dir]++
	o.bytes[transport+"/"+dir] += frameBytes
	o.mu.Unlock()
}

func TestLoopbackFrameObserver(t *testing.T) {
	// Process-global observer: not parallel, restored on cleanup.
	obs := &frameCountObserver{frames: map[string]int{}, bytes: map[string]int{}}
	pvm.SetObserver(obs)
	t.Cleanup(func() { pvm.SetObserver(nil) })

	tr, err := NewLoopback("unix")
	if err != nil {
		t.Fatalf("NewLoopback: %v", err)
	}
	sys := pvm.NewSystem()
	if err := sys.SetTransport(tr); err != nil {
		t.Fatalf("SetTransport: %v", err)
	}
	recv := sys.Spawn("recv", func(task *pvm.Task) error {
		m, err := task.RecvTimeout(pvm.AnySource, 1, 10*time.Second)
		if err != nil {
			return err
		}
		m.Release()
		return nil
	})
	sys.Spawn("send", func(task *pvm.Task) error {
		return task.Send(recv, 1, pvm.NewBuffer().PackInt32(7))
	})
	if err := sys.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	// At least: hello+batch written, hello(read)+welcome+ack traffic.
	if obs.frames["unix/out"] == 0 || obs.frames["unix/in"] == 0 {
		t.Fatalf("frame observer saw %v", obs.frames)
	}
	if obs.bytes["unix/out"] == 0 || obs.bytes["unix/in"] == 0 {
		t.Fatalf("frame observer byte counts %v", obs.bytes)
	}
}
