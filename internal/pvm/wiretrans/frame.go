// Package wiretrans carries pvm messages over real sockets: a
// length-prefixed frame layer on top of the existing pack/unpack wire
// format, loopback unix-socket and TCP transports that plug into
// pvm.System via SetTransport, and a hub/worker protocol that lets one
// coordinator process plus N worker OS processes run a real
// multi-process HBSP^k program — the paper's original PVM-daemon
// deployment, modernized. DESIGN.md §5.10 documents the architecture.
package wiretrans

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hbspk/internal/pvm"
)

// A frame is [4-byte big-endian length][kind byte][body]; the length
// counts the kind byte plus the body, never the prefix itself. Frame
// bodies reuse pvm's typed pack/unpack encoding, so the frame layer
// inherits its fuzzed robustness and its type-mismatch detection.
const (
	frameHeader = 4 // length prefix
	// MaxFrame bounds a single frame (kind + body). Anything larger is
	// rejected before allocation, so a corrupt or hostile length prefix
	// cannot balloon memory.
	MaxFrame = 16 << 20
)

// Frame kinds. The first group is the transport plane (Deliver/ack);
// the second is the hub/worker control plane.
const (
	frameHello byte = iota + 1
	frameWelcome
	frameBatch
	frameAck
	frameMsg        // hub → worker: a routed message
	frameSend       // worker → hub: send request
	frameBarrier    // worker → hub: barrier entry
	frameBarrierOK  // hub → worker: barrier completed, deposits attached
	frameBarrierErr // hub → worker: barrier failed, typed code attached
	frameBye        // worker → hub: clean departure
)

var (
	// ErrFrameTooBig is returned when a length prefix exceeds MaxFrame.
	ErrFrameTooBig = errors.New("wiretrans: frame exceeds size limit")
	// ErrTruncatedFrame is returned when the stream ends inside a frame.
	ErrTruncatedFrame = errors.New("wiretrans: truncated frame")
	// ErrBadFrame is returned for structurally invalid frames (zero
	// length, unknown kind where one is required, malformed body).
	ErrBadFrame = errors.New("wiretrans: malformed frame")
)

// AppendFrame appends one encoded frame to dst and returns the
// extended slice. Callers hand the result to a single Write so a frame
// is never split across syscalls on the send side (write coalescing:
// a Deliver batch is one frame, one write).
func AppendFrame(dst []byte, kind byte, body []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(1+len(body)))
	dst = append(dst, kind)
	return append(dst, body...)
}

// ReadFrame reads one frame from r into buf (grown as needed) and
// returns the kind, the body aliasing buf, the possibly-regrown buf,
// and the total frame length on the wire. A clean EOF before any
// header byte returns io.EOF; an EOF anywhere inside a frame returns
// ErrTruncatedFrame.
func ReadFrame(r io.Reader, buf []byte) (kind byte, body, scratch []byte, n int, err error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, buf, 0, io.EOF
		}
		return 0, nil, buf, 0, fmt.Errorf("%w: %v", ErrTruncatedFrame, err)
	}
	size := int(binary.BigEndian.Uint32(hdr[:]))
	switch {
	case size == 0:
		return 0, nil, buf, 0, fmt.Errorf("%w: zero-length frame", ErrBadFrame)
	case size > MaxFrame:
		return 0, nil, buf, 0, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooBig, size, MaxFrame)
	}
	if cap(buf) < size {
		buf = make([]byte, size)
	}
	buf = buf[:size]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, buf, 0, fmt.Errorf("%w: %v", ErrTruncatedFrame, err)
	}
	return buf[0], buf[1:], buf, frameHeader + size, nil
}

// observeFrame reports one framed transfer to the process observer
// when it implements the FrameObserver extension.
func observeFrame(transport string, out bool, frameBytes int) {
	if fo, ok := pvm.InstalledObserver().(pvm.FrameObserver); ok {
		fo.TransportFrame(transport, out, frameBytes)
	}
}
