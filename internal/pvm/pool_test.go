package pvm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// Tests of the pooled wire-buffer fabric: recycling must never alias a
// message the receiver still holds, ownership transfer must reject
// reuse of a sent buffer, and the split-lock mailbox must preserve
// per-sender FIFO under contention. Run these under -race.

// pattern fills a deterministic payload for (sender, n).
func pattern(sender, n, size int) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = byte(sender*31 + n*7 + i)
	}
	return p
}

// TestPoolRecyclingNeverAliasesLiveMessage is the aliasing property
// test: a receiver holds a window of delivered messages while senders
// keep the pool churning; held payloads must stay intact until their
// Release, whatever recycled wire any new send picks up.
func TestPoolRecyclingNeverAliasesLiveMessage(t *testing.T) {
	const (
		senders  = 4
		perSend  = 300
		size     = 512
		holdSize = 64
	)
	s := NewSystem()
	var recvTID TID
	done := make(chan struct{})
	recvTID = s.Spawn("recv", func(rt *Task) error {
		defer close(done)
		rng := rand.New(rand.NewSource(1))
		type held struct {
			m    Message
			want []byte
		}
		var window []held
		check := func(h held) error {
			got, err := h.m.Buffer().UnpackBytes()
			if err != nil {
				return err
			}
			if !bytes.Equal(got, h.want) {
				return fmt.Errorf("held message from %d corrupted by recycling", h.m.Src)
			}
			h.m.Release()
			return nil
		}
		counts := make([]int, senders+1)
		for i := 0; i < senders*perSend; i++ {
			m, err := rt.Recv(AnySource, AnyTag)
			if err != nil {
				return err
			}
			want := pattern(int(m.Src), counts[m.Src], size)
			counts[m.Src]++
			window = append(window, held{m: m, want: want})
			// Hold a full window, then verify-and-release in random
			// order: every payload must still read back intact.
			if len(window) >= holdSize {
				rng.Shuffle(len(window), func(a, b int) {
					window[a], window[b] = window[b], window[a]
				})
				for _, h := range window {
					if err := check(h); err != nil {
						return err
					}
				}
				window = window[:0]
			}
		}
		for _, h := range window {
			if err := check(h); err != nil {
				return err
			}
		}
		return nil
	})
	for sn := 1; sn <= senders; sn++ {
		sn := sn
		s.Spawn(fmt.Sprintf("send%d", sn), func(st *Task) error {
			for n := 0; n < perSend; n++ {
				buf := NewBuffer().PackBytes(pattern(int(st.TID()), n, size))
				if err := st.Send(recvTID, sn, buf); err != nil {
					return err
				}
			}
			return nil
		})
	}
	<-done
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestMailboxContentionPerSenderFIFO floods one receiver from many
// concurrent senders and asserts messages from each sender arrive in
// send order, wildcard receive or not.
func TestMailboxContentionPerSenderFIFO(t *testing.T) {
	const (
		senders = 8
		perSend = 500
	)
	s := NewSystem()
	var recvTID TID
	done := make(chan struct{})
	recvTID = s.Spawn("recv", func(rt *Task) error {
		defer close(done)
		last := map[TID]int64{}
		for i := 0; i < senders*perSend; i++ {
			m, err := rt.Recv(AnySource, AnyTag)
			if err != nil {
				return err
			}
			n, err := m.Buffer().UnpackInt64()
			if err != nil {
				return err
			}
			m.Release()
			if prev, ok := last[m.Src]; ok && n != prev+1 {
				return fmt.Errorf("sender %d: got %d after %d, want FIFO", m.Src, n, prev)
			}
			last[m.Src] = n
		}
		return nil
	})
	var start sync.WaitGroup
	start.Add(1)
	for sn := 0; sn < senders; sn++ {
		sn := sn
		s.Spawn(fmt.Sprintf("send%d", sn), func(st *Task) error {
			start.Wait()
			for n := 0; n < perSend; n++ {
				if err := st.Send(recvTID, sn, NewBuffer().PackInt64(int64(n))); err != nil {
					return err
				}
			}
			return nil
		})
	}
	start.Done()
	<-done
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestSendRejectsReuse: ownership of a buffer transfers on send, so
// sending it again (or multicasting it after a send) must fail rather
// than alias a possibly recycled wire.
func TestSendRejectsReuse(t *testing.T) {
	s := NewSystem()
	var a TID
	errs := make(chan error, 1)
	a = s.Spawn("a", func(t *Task) error {
		m, err := t.Recv(AnySource, 1)
		if err != nil {
			return err
		}
		m.Release()
		return nil
	})
	s.Spawn("b", func(t *Task) error {
		buf := NewBuffer().PackInt32(7)
		if err := t.Send(a, 1, buf); err != nil {
			errs <- err
			return err
		}
		errs <- t.Send(a, 1, buf) //hbspk:ignore bufreuse (the test asserts the runtime rejects exactly this resend)
		return nil
	})
	if err := <-errs; err == nil {
		t.Fatal("second Send of the same buffer succeeded, want ownership error")
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestSendBatchDeliversInOrder covers the engines' bulk-delivery path:
// one SendBatch must arrive as consecutive messages in slice order.
func TestSendBatchDeliversInOrder(t *testing.T) {
	const n = 100
	s := NewSystem()
	var recvTID TID
	done := make(chan error, 1)
	recvTID = s.Spawn("recv", func(t *Task) error {
		for i := 0; i < n; i++ {
			m, err := t.Recv(AnySource, 5)
			if err != nil {
				done <- err
				return err
			}
			got, err := m.Buffer().UnpackInt64()
			if err != nil {
				done <- err
				return err
			}
			m.Release()
			if got != int64(i) {
				err := fmt.Errorf("message %d carries %d, want batch order", i, got)
				done <- err
				return err
			}
		}
		done <- nil
		return nil
	})
	s.Spawn("send", func(t *Task) error {
		bufs := make([]*Buffer, n)
		for i := range bufs {
			bufs[i] = NewBuffer().PackInt64(int64(i))
		}
		return t.SendBatch(recvTID, 5, bufs)
	})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestTryRecvAll covers the bulk drain: exact-match drains one queue
// in arrival order; the wildcard merges queues by arrival stamp.
func TestTryRecvAll(t *testing.T) {
	s := NewSystem()
	var recvTID TID
	done := make(chan error, 1)
	sent := make(chan struct{})
	recvTID = s.Spawn("recv", func(t *Task) error {
		<-sent
		report := func(err error) error { done <- err; return err }
		exact := t.TryRecvAll(AnySource, 9)
		if len(exact) != 3 {
			return report(fmt.Errorf("tag 9: got %d messages, want 3", len(exact)))
		}
		for i, m := range exact {
			got, err := m.Buffer().UnpackInt64()
			if err != nil {
				return report(err)
			}
			if got != int64(i) {
				return report(fmt.Errorf("tag 9 message %d carries %d, want arrival order", i, got))
			}
			m.Release()
		}
		rest := t.TryRecvAll(AnySource, AnyTag)
		if len(rest) != 2 {
			return report(fmt.Errorf("wildcard: got %d messages, want 2", len(rest)))
		}
		for i, m := range rest {
			if m.Tag != 10+i {
				return report(fmt.Errorf("wildcard message %d has tag %d, want stamp order", i, m.Tag))
			}
			m.Release()
		}
		if extra := t.TryRecvAll(AnySource, AnyTag); len(extra) != 0 {
			return report(fmt.Errorf("drained mailbox still yields %d messages", len(extra)))
		}
		return report(nil)
	})
	s.Spawn("send", func(t *Task) error {
		for i := 0; i < 3; i++ {
			if err := t.Send(recvTID, 9, NewBuffer().PackInt64(int64(i))); err != nil {
				return err
			}
		}
		for i := 0; i < 2; i++ {
			if err := t.Send(recvTID, 10+i, NewBuffer().PackInt64(int64(i))); err != nil {
				return err
			}
		}
		close(sent)
		return nil
	})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestMcastSharesOneWire: after a multicast every receiver sees the
// payload, each Release drops one reference, and the last Release
// recycles without corrupting the others (exercised via -race and the
// content checks).
func TestMcastSharesOneWire(t *testing.T) {
	const fanout = 5
	s := NewSystem()
	tids := make([]TID, fanout)
	var wg sync.WaitGroup
	wg.Add(fanout)
	errs := make(chan error, fanout)
	ready := make(chan struct{})
	for i := 0; i < fanout; i++ {
		tids[i] = s.Spawn(fmt.Sprintf("recv%d", i), func(t *Task) error {
			defer wg.Done()
			<-ready
			m, err := t.Recv(AnySource, 2)
			if err != nil {
				errs <- err
				return err
			}
			defer m.Release()
			got, err := m.Buffer().UnpackString()
			if err != nil {
				errs <- err
				return err
			}
			if got != "shared-wire" {
				err := fmt.Errorf("got %q", got)
				errs <- err
				return err
			}
			return nil
		})
	}
	s.Spawn("send", func(t *Task) error {
		close(ready)
		return t.Mcast(tids, 2, NewBuffer().PackString("shared-wire"))
	})
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestReleaseTwicePanics: over-releasing is a refcount bug and must
// fail loudly, not silently double-free into the pool.
func TestReleaseTwicePanics(t *testing.T) {
	s := NewSystem()
	var recvTID TID
	done := make(chan error, 1)
	recvTID = s.Spawn("recv", func(t *Task) error {
		m, err := t.Recv(AnySource, 1)
		if err != nil {
			done <- err
			return err
		}
		m.Release()
		defer func() {
			if recover() == nil {
				done <- fmt.Errorf("second Release did not panic")
			} else {
				done <- nil
			}
		}()
		m.Release() //hbspk:ignore bufown (the test asserts the second Release panics)
		return nil
	})
	s.Spawn("send", func(t *Task) error {
		return t.Send(recvTID, 1, NewBuffer().PackInt32(1))
	})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}
