package pvm

import "sync/atomic"

// Observer receives substrate-level observability signals. It is a
// structural seam: obsv.Recorder implements it without pvm importing
// obsv (or vice versa). Implementations must be cheap and
// goroutine-safe — calls come from the send path.
type Observer interface {
	// MailboxDepth reports a receiver's staged-mailbox depth right
	// after a delivery.
	MailboxDepth(depth int)
	// PoolDraw reports one wire-buffer pool draw; hit means the draw
	// recycled a pooled backing array rather than allocating.
	PoolDraw(hit bool)
}

// FrameObserver is an optional extension of Observer for wire
// transports: implementations that also want per-transport frame and
// byte counts implement it and transports type-assert at attach time.
// obsv.Recorder implements it structurally, like Observer itself.
type FrameObserver interface {
	// TransportFrame reports one framed transfer on the named
	// transport; out distinguishes writes from reads, frameBytes is the
	// full frame length including the length prefix.
	TransportFrame(transport string, out bool, frameBytes int)
}

// observer is process-global: the wire pool is shared by every System
// in the process, so the hook is too. Tests that set it must not run
// in parallel with other tests and must restore nil.
var observer atomic.Pointer[Observer]

// InstalledObserver returns the process-global observer (or nil), for
// transport implementations outside this package.
func InstalledObserver() Observer { return observerOf() }

// SetObserver installs (or, with nil, removes) the substrate observer.
func SetObserver(o Observer) {
	if o == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&o)
}

// observerOf returns the installed observer or nil. One atomic load:
// this is the entire disabled-mode cost on the send path.
func observerOf() Observer {
	if p := observer.Load(); p != nil {
		return *p
	}
	return nil
}
