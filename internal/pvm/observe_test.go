package pvm

import (
	"sync/atomic"
	"testing"
)

// countingObserver tallies substrate signals. Counters are atomic:
// callbacks arrive from sender goroutines.
type countingObserver struct {
	depths atomic.Int64
	draws  atomic.Int64
}

func (o *countingObserver) MailboxDepth(int)  { o.depths.Add(1) }
func (o *countingObserver) PoolDraw(hit bool) { o.draws.Add(1) }

// ping sends one message from a spawned task to another and waits for
// both to finish.
func ping(t *testing.T) {
	t.Helper()
	s := NewSystem()
	recv := s.Spawn("recv", func(task *Task) error {
		m, err := task.Recv(AnySource, 1)
		if err != nil {
			return err
		}
		m.Release()
		return nil
	})
	s.Spawn("send", func(task *Task) error {
		return task.Send(recv, 1, NewBuffer().PackInt32(7))
	})
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestObserverInstallAndClear exercises the process-global observer
// seam: installed, it sees every delivery and pool draw; cleared, the
// substrate stops calling it. The observer is process-global state, so
// this test must not run in parallel and restores nil on exit.
func TestObserverInstallAndClear(t *testing.T) {
	o := &countingObserver{}
	SetObserver(o)
	defer SetObserver(nil)

	ping(t)
	depths, draws := o.depths.Load(), o.draws.Load()
	if depths == 0 {
		t.Error("observer saw no mailbox depths")
	}
	if draws == 0 {
		t.Error("observer saw no pool draws")
	}

	SetObserver(nil)
	if got := observerOf(); got != nil {
		t.Fatalf("observerOf() = %v after clear, want nil", got)
	}
	ping(t)
	if o.depths.Load() != depths || o.draws.Load() != draws {
		t.Error("cleared observer still receives callbacks")
	}
}
