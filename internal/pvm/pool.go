package pvm

import (
	"sync"
	"sync/atomic"
)

// The fast path of the fabric: Send hands the sender's packed bytes to
// the receiver without copying. Each in-flight payload is owned by a
// reference-counted wire record; Mcast shares one record across the
// whole fan-out (refcount = fan-out). When the last holder releases,
// the backing array parks in a sync.Pool and the next NewBuffer draws
// it back out, so steady-state traffic allocates nothing on the wire.

// maxPooledCap bounds the backing arrays the arena recycles; anything
// larger is left to the garbage collector so one huge message cannot
// pin arena memory forever.
const maxPooledCap = 1 << 20

// wire is a reference-counted wire payload. refs counts the Messages
// (and, before the send, the Buffer) that alias data.
type wire struct {
	data []byte
	refs atomic.Int32
}

var wirePool = sync.Pool{New: func() any { return new(wire) }}

// newWire draws a recycled wire record holding a single reference.
func newWire() *wire {
	w := wirePool.Get().(*wire)
	w.refs.Store(1)
	if o := observerOf(); o != nil {
		// A recycled backing still has capacity; a fresh record (or one
		// whose oversized backing was left to the GC) does not.
		o.PoolDraw(cap(w.data) > 0)
	}
	return w
}

// retain adds n references (Mcast arming a fan-out).
func (w *wire) retain(n int32) {
	if w != nil && n > 0 {
		w.refs.Add(n)
	}
}

// release drops one reference; the last one returns the backing to the
// pool. Releasing more references than were taken is a lifetime bug in
// the caller and panics rather than corrupting a recycled buffer.
func (w *wire) release() {
	if w == nil {
		return
	}
	switch n := w.refs.Add(-1); {
	case n == 0:
		if cap(w.data) <= maxPooledCap {
			w.data = w.data[:0]
			wirePool.Put(w)
		}
	case n < 0:
		panic("pvm: wire buffer released more times than retained")
	}
}
