package bytemark

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hbspk/internal/model"
	"hbspk/internal/trace"
)

// Index is one machine's measured composite score: iterations per
// virtual second relative to the reference machine, BYTEmark-style
// (larger is faster). Because measurement is noisy, Index is an
// imperfect estimate of 1/CompSlowdown — the imperfection the paper
// observes when the second fastest processor's c_j comes out too large.
type Index struct {
	Machine   *model.Machine
	Composite float64
	PerKernel map[string]float64
}

// Suite runs the ten kernels against a machine tree.
type Suite struct {
	// Scale sizes the kernels (1 = quick, 10 = thorough).
	Scale int
	// NoiseAmp is the relative amplitude of per-kernel measurement
	// error, modeling a non-dedicated machine; 0 measures exactly.
	NoiseAmp float64
	// Seed makes measurement errors reproducible.
	Seed int64
}

// DefaultSuite mirrors the paper's setup: moderate scale with a few
// percent of measurement noise from the non-dedicated cluster.
func DefaultSuite(seed int64) Suite { return Suite{Scale: 2, NoiseAmp: 0.08, Seed: seed} }

// Measure runs the suite "on" every leaf of the tree: kernels execute
// for real (their outputs are self-checked), and each machine's
// throughput is its operation count divided by the virtual duration
// ops·CompSlowdown·(1+noise). The composite is the geometric mean over
// kernels, normalized so the best machine scores 1.
func (s Suite) Measure(t *model.Tree) ([]Index, error) {
	if s.Scale < 1 {
		s.Scale = 1
	}
	kernels := Kernels()
	rng := rand.New(rand.NewSource(s.Seed))
	leaves := t.Leaves()
	out := make([]Index, len(leaves))
	for li, leaf := range leaves {
		per := make(map[string]float64, len(kernels))
		logSum, wSum := 0.0, 0.0
		for _, k := range kernels {
			res, err := k.Run(s.Seed+int64(li), s.Scale)
			if err != nil {
				return nil, fmt.Errorf("bytemark: %s on %s: %w", k.Name, leaf.Name, err)
			}
			noise := 1.0
			if s.NoiseAmp > 0 {
				noise = 1 + s.NoiseAmp*(rng.Float64()*2-1)
			}
			duration := res.Ops * leaf.CompSlowdown * noise
			throughput := res.Ops / duration // = 1/(slowdown·noise)
			per[k.Name] = throughput
			logSum += k.Weight * math.Log(throughput)
			wSum += k.Weight
		}
		out[li] = Index{Machine: leaf, Composite: math.Exp(logSum / wSum), PerKernel: per}
	}
	best := 0.0
	for _, ix := range out {
		if ix.Composite > best {
			best = ix.Composite
		}
	}
	for i := range out {
		out[i].Composite /= best
		for k := range out[i].PerKernel {
			out[i].PerKernel[k] /= best
		}
	}
	return out, nil
}

// Ranking orders the indices fastest-first.
func Ranking(ixs []Index) []Index {
	out := append([]Index(nil), ixs...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Composite > out[j].Composite })
	return out
}

// ApplyShares overwrites the tree's c_{i,j} from measured indices:
// leaf shares proportional to the composite score (the faster the
// machine looks, the more data it receives), renormalized by
// Tree.Normalize. This is the paper's balanced-workload estimation: "c_i
// is computed using the BYTEmark results" (§5.1) — including its error.
func ApplyShares(t *model.Tree, ixs []Index) {
	total := 0.0
	for _, ix := range ixs {
		total += ix.Composite
	}
	for _, ix := range ixs {
		ix.Machine.Share = ix.Composite / total
	}
	t.Normalize()
}

// Table renders the measured indices as a ranking table.
func Table(ixs []Index) *trace.Table {
	tb := trace.NewTable("BYTEmark ranking", "rank", "machine", "index", "true slowdown")
	for rank, ix := range Ranking(ixs) {
		tb.AddF(rank, ix.Machine.Name, ix.Composite, ix.Machine.CompSlowdown)
	}
	return tb
}

// KernelTable renders the per-kernel indices of every machine — the
// full BYTEmark report card, one row per machine, one column per
// kernel, ordered fastest-first.
func KernelTable(ixs []Index) *trace.Table {
	kernels := Kernels()
	header := []string{"machine", "composite"}
	for _, k := range kernels {
		header = append(header, k.Name)
	}
	tb := trace.NewTable("BYTEmark per-kernel indices", header...)
	for _, ix := range Ranking(ixs) {
		row := []interface{}{ix.Machine.Name, ix.Composite}
		for _, k := range kernels {
			row = append(row, ix.PerKernel[k.Name])
		}
		tb.AddF(row...)
	}
	return tb
}
