// Package bytemark is a from-scratch benchmark suite in the mould of
// BYTE Magazine's BYTEmark (reference [16] of the paper), which the
// experimental section uses to rank processors: "The ranking of
// processors is determined by the BYTEmark benchmark, which consists of
// tests such as sorting, floating-point manipulation, and numerical
// analysis."
//
// The suite has the original's ten kernels — numeric sort, string sort,
// bitfield operations, emulated floating point, Fourier coefficients,
// assignment problem, IDEA-style cipher, Huffman compression, neural net
// and LU decomposition. Every kernel really computes (outputs are
// self-checked), runs deterministically from a seed, and reports an
// abstract operation count. Suite measurement turns operation counts
// into per-machine indices by charging each machine's compute slowdown
// plus a seeded per-kernel measurement error — exactly the imperfect
// estimate that drives the paper's Figure 3(b) result, where the second
// fastest processor's c_j is overestimated.
package bytemark

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Result is one kernel execution: the abstract operations performed and
// a checksum of the computed output (used by the self-checks).
type Result struct {
	Ops      float64
	Checksum uint64
}

// Kernel is one BYTEmark test.
type Kernel struct {
	Name string
	// Weight is the kernel's contribution exponent to the composite
	// index (the original separates integer and FP indices; we fold
	// them into one geometric mean with these weights).
	Weight float64
	// Run executes the kernel at the given scale with a deterministic
	// seed.
	Run func(seed int64, scale int) (Result, error)
}

// Kernels returns the ten tests of the suite.
func Kernels() []Kernel {
	return []Kernel{
		{"numeric-sort", 1, NumericSort},
		{"string-sort", 1, StringSort},
		{"bitfield", 1, Bitfield},
		{"fp-emulation", 1, FPEmulation},
		{"fourier", 1, Fourier},
		{"assignment", 1, Assignment},
		{"idea", 1, IDEA},
		{"huffman", 1, Huffman},
		{"neural-net", 1, NeuralNet},
		{"lu-decomposition", 1, LUDecomposition},
	}
}

func mix(sum uint64, v uint64) uint64 {
	sum ^= v + 0x9e3779b97f4a7c15 + (sum << 6) + (sum >> 2)
	return sum
}

// NumericSort heap-sorts random int32 arrays and verifies sortedness,
// counting comparisons and swaps.
func NumericSort(seed int64, scale int) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	n := 200 * scale
	a := make([]int32, n)
	for i := range a {
		a[i] = int32(rng.Uint32())
	}
	ops := 0.0
	var siftDown func(lo, hi int)
	siftDown = func(lo, hi int) {
		root := lo
		for {
			child := 2*root + 1
			if child > hi {
				return
			}
			ops++
			if child+1 <= hi && a[child] < a[child+1] {
				child++
			}
			if a[root] >= a[child] {
				return
			}
			a[root], a[child] = a[child], a[root]
			ops++
			root = child
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(i, n-1)
	}
	for i := n - 1; i > 0; i-- {
		a[0], a[i] = a[i], a[0]
		siftDown(0, i-1)
	}
	sum := uint64(0)
	for i := 1; i < n; i++ {
		if a[i-1] > a[i] {
			return Result{}, fmt.Errorf("bytemark: numeric sort failed at %d", i)
		}
		sum = mix(sum, uint64(uint32(a[i])))
	}
	return Result{Ops: ops, Checksum: sum}, nil
}

// StringSort sorts random byte strings and verifies order, counting
// comparisons.
func StringSort(seed int64, scale int) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	n := 60 * scale
	ss := make([]string, n)
	for i := range ss {
		b := make([]byte, 4+rng.Intn(28))
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		ss[i] = string(b)
	}
	ops := 0
	sort.Slice(ss, func(i, j int) bool {
		ops++
		return ss[i] < ss[j]
	})
	sum := uint64(0)
	for i := 1; i < n; i++ {
		if ss[i-1] > ss[i] {
			return Result{}, fmt.Errorf("bytemark: string sort failed at %d", i)
		}
		sum = mix(sum, uint64(len(ss[i]))^uint64(ss[i][0]))
	}
	return Result{Ops: float64(ops), Checksum: sum}, nil
}

// Bitfield runs set/clear/toggle operations over a bit array.
func Bitfield(seed int64, scale int) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	bits := make([]uint64, 64*scale)
	nbits := len(bits) * 64
	ops := 0.0
	for i := 0; i < 1000*scale; i++ {
		start := rng.Intn(nbits)
		count := 1 + rng.Intn(256)
		mode := i % 3
		for j := 0; j < count; j++ {
			pos := (start + j) % nbits
			w, b := pos/64, uint(pos%64)
			switch mode {
			case 0:
				bits[w] |= 1 << b
			case 1:
				bits[w] &^= 1 << b
			case 2:
				bits[w] ^= 1 << b
			}
			ops++
		}
	}
	sum := uint64(0)
	for _, w := range bits {
		sum = mix(sum, w)
	}
	return Result{Ops: ops, Checksum: sum}, nil
}

// FPEmulation emulates floating point in fixed-point arithmetic: 16.16
// multiply, divide and square-root loops, checked against float64.
func FPEmulation(seed int64, scale int) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	const one = 1 << 16
	fxMul := func(a, b int64) int64 { return a * b >> 16 }
	fxDiv := func(a, b int64) int64 {
		if b == 0 {
			return 0
		}
		return (a << 16) / b
	}
	fxSqrt := func(a int64) int64 {
		if a <= 0 {
			return 0
		}
		x := a
		for i := 0; i < 20; i++ {
			x = (x + fxDiv(a, x)) / 2
		}
		return x
	}
	ops := 0.0
	sum := uint64(0)
	for i := 0; i < 400*scale; i++ {
		a := int64(1+rng.Intn(1000)) * one / int64(1+rng.Intn(50))
		b := int64(1+rng.Intn(1000)) * one / int64(1+rng.Intn(50))
		m := fxMul(a, b)
		d := fxDiv(a, b)
		s := fxSqrt(a)
		ops += 22 // 1 mul + 1 div + 20 Newton steps
		// Spot-check against float64 with generous tolerance.
		fa, fb := float64(a)/one, float64(b)/one
		if math.Abs(float64(m)/one-fa*fb) > 0.01*math.Abs(fa*fb)+0.01 {
			return Result{}, fmt.Errorf("bytemark: fixed mul diverged")
		}
		if math.Abs(float64(s)/one-math.Sqrt(fa)) > 0.01*math.Sqrt(fa)+0.01 {
			return Result{}, fmt.Errorf("bytemark: fixed sqrt diverged")
		}
		sum = mix(sum, uint64(m)^uint64(d)^uint64(s))
	}
	return Result{Ops: ops, Checksum: sum}, nil
}

// Fourier computes Fourier series coefficients of x^2 on [0, 2π] by
// trapezoidal integration and checks the DC term analytically.
func Fourier(seed int64, scale int) (Result, error) {
	_ = seed // the integrand is fixed; seed kept for interface symmetry
	terms := 8 + scale/4
	const steps = 200
	ops := 0.0
	integrate := func(f func(float64) float64) float64 {
		h := 2 * math.Pi / steps
		s := (f(0) + f(2*math.Pi)) / 2
		for i := 1; i < steps; i++ {
			s += f(float64(i) * h)
			ops++
		}
		return s * h
	}
	wave := func(x float64) float64 { return x * x }
	a0 := integrate(wave) / (2 * math.Pi)
	want := 4 * math.Pi * math.Pi / 3
	if math.Abs(a0-want) > 0.01*want {
		return Result{}, fmt.Errorf("bytemark: fourier a0 = %v, want %v", a0, want)
	}
	sum := mix(0, math.Float64bits(a0))
	for k := 1; k <= terms; k++ {
		k := float64(k)
		ak := integrate(func(x float64) float64 { return wave(x) * math.Cos(k*x) }) / math.Pi
		bk := integrate(func(x float64) float64 { return wave(x) * math.Sin(k*x) }) / math.Pi
		sum = mix(sum, math.Float64bits(ak)^math.Float64bits(bk))
	}
	return Result{Ops: ops, Checksum: sum}, nil
}

// Assignment solves random assignment problems with row/column
// reduction plus greedy augmentation, verifying the assignment is a
// permutation.
func Assignment(seed int64, scale int) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	size := 8 + scale/2
	if size > 64 {
		size = 64
	}
	ops := 0.0
	sum := uint64(0)
	for rep := 0; rep < 4; rep++ {
		c := make([][]int, size)
		for i := range c {
			c[i] = make([]int, size)
			for j := range c[i] {
				c[i][j] = rng.Intn(1000)
			}
		}
		// Row and column reduction.
		for i := 0; i < size; i++ {
			m := c[i][0]
			for _, v := range c[i] {
				if v < m {
					m = v
				}
				ops++
			}
			for j := range c[i] {
				c[i][j] -= m
			}
		}
		for j := 0; j < size; j++ {
			m := c[0][j]
			for i := 0; i < size; i++ {
				if c[i][j] < m {
					m = c[i][j]
				}
				ops++
			}
			for i := 0; i < size; i++ {
				c[i][j] -= m
			}
		}
		// Greedy assignment on the reduced matrix, cheapest first.
		assigned := make([]int, size)
		usedCol := make([]bool, size)
		for i := range assigned {
			assigned[i] = -1
		}
		for i := 0; i < size; i++ {
			best, bestJ := 1<<30, -1
			for j := 0; j < size; j++ {
				ops++
				if !usedCol[j] && c[i][j] < best {
					best, bestJ = c[i][j], j
				}
			}
			assigned[i] = bestJ
			usedCol[bestJ] = true
		}
		seen := make([]bool, size)
		for _, j := range assigned {
			if j < 0 || seen[j] {
				return Result{}, fmt.Errorf("bytemark: assignment is not a permutation")
			}
			seen[j] = true
			sum = mix(sum, uint64(j))
		}
	}
	return Result{Ops: ops, Checksum: sum}, nil
}

// IDEA runs an IDEA-style block cipher (multiplication modulo 2^16+1,
// addition modulo 2^16, XOR) and verifies decrypt(encrypt(x)) == x.
func IDEA(seed int64, scale int) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	mulMod := func(a, b uint32) uint32 {
		// IDEA's multiplication: 0 represents 2^16, modulo 2^16 + 1.
		if a == 0 {
			a = 1 << 16
		}
		if b == 0 {
			b = 1 << 16
		}
		p := (uint64(a) * uint64(b)) % 65537
		return uint32(p % 65536)
	}
	mulInv := func(a uint32) uint32 {
		// Inverse modulo 65537 (prime) by exponentiation.
		if a == 0 {
			a = 1 << 16
		}
		inv := uint64(1)
		base, e := uint64(a)%65537, 65537-2
		for ; e > 0; e >>= 1 {
			if e&1 == 1 {
				inv = inv * base % 65537
			}
			base = base * base % 65537
		}
		return uint32(inv % 65536)
	}
	key := make([]uint32, 8)
	for i := range key {
		key[i] = uint32(rng.Intn(65536))
	}
	const rounds = 8
	ops := 0.0
	sum := uint64(0)
	for blk := 0; blk < 50*scale; blk++ {
		x0 := uint32(rng.Intn(65536))
		x1 := uint32(rng.Intn(65536))
		a, b := x0, x1
		for r := 0; r < rounds; r++ {
			a = mulMod(a, key[r%8])
			b = (b + key[(r+3)%8]) % 65536
			a, b = b, a^b
			ops += 3
		}
		// Invert.
		for r := rounds - 1; r >= 0; r-- {
			a, b = b^a, a
			b = (b + 65536 - key[(r+3)%8]) % 65536
			a = mulMod(a, mulInv(key[r%8]))
			ops += 3
		}
		if a != x0 || b != x1 {
			return Result{}, fmt.Errorf("bytemark: idea round-trip failed (%d,%d) != (%d,%d)", a, b, x0, x1)
		}
		sum = mix(sum, uint64(a)<<16|uint64(b))
	}
	return Result{Ops: ops, Checksum: sum}, nil
}

// Huffman builds a Huffman code for random text and verifies the
// encode/decode round trip.
func Huffman(seed int64, scale int) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	text := make([]byte, 500*scale)
	for i := range text {
		// Skewed distribution so the code is nontrivial.
		text[i] = byte('a' + int(math.Sqrt(float64(rng.Intn(676)))))
	}
	freq := map[byte]int{}
	for _, ch := range text {
		freq[ch]++
	}
	type node struct {
		ch          byte
		weight      int
		left, right *node
	}
	var heapNodes []*node
	for ch, w := range freq {
		heapNodes = append(heapNodes, &node{ch: ch, weight: w})
	}
	sort.Slice(heapNodes, func(i, j int) bool {
		if heapNodes[i].weight != heapNodes[j].weight {
			return heapNodes[i].weight < heapNodes[j].weight
		}
		return heapNodes[i].ch < heapNodes[j].ch
	})
	ops := float64(len(text))
	for len(heapNodes) > 1 {
		a, b := heapNodes[0], heapNodes[1]
		merged := &node{weight: a.weight + b.weight, left: a, right: b}
		heapNodes = heapNodes[2:]
		i := sort.Search(len(heapNodes), func(i int) bool { return heapNodes[i].weight >= merged.weight })
		heapNodes = append(heapNodes, nil)
		copy(heapNodes[i+1:], heapNodes[i:])
		heapNodes[i] = merged
		ops += float64(len(heapNodes))
	}
	root := heapNodes[0]
	codes := map[byte][]byte{}
	var walk func(n *node, prefix []byte)
	walk = func(n *node, prefix []byte) {
		if n.left == nil && n.right == nil {
			codes[n.ch] = append([]byte(nil), prefix...)
			return
		}
		walk(n.left, append(prefix, 0))
		walk(n.right, append(prefix, 1))
	}
	if root.left == nil && root.right == nil {
		codes[root.ch] = []byte{0}
	} else {
		walk(root, nil)
	}
	var encoded []byte
	for _, ch := range text {
		encoded = append(encoded, codes[ch]...)
		ops++
	}
	var decoded []byte
	n := root
	for _, bit := range encoded {
		if n.left != nil {
			if bit == 0 {
				n = n.left
			} else {
				n = n.right
			}
		}
		if n.left == nil && n.right == nil {
			decoded = append(decoded, n.ch)
			n = root
		}
		ops++
	}
	if string(decoded) != string(text) {
		return Result{}, fmt.Errorf("bytemark: huffman round-trip failed (%d vs %d bytes)", len(decoded), len(text))
	}
	sum := mix(0, uint64(len(encoded)))
	return Result{Ops: ops, Checksum: sum}, nil
}

// NeuralNet trains a tiny multilayer perceptron on XOR by
// backpropagation and verifies it learns. An unlucky initialization can
// land in a local minimum, so training restarts with fresh weights up to
// a few times (the operation count accumulates across restarts, as a
// real benchmark's wall clock would).
func NeuralNet(seed int64, scale int) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	var res Result
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		var r Result
		r, err = neuralNetOnce(rng, scale)
		res.Ops += r.Ops
		res.Checksum = r.Checksum
		if err == nil {
			return res, nil
		}
	}
	return Result{}, err
}

func neuralNetOnce(rng *rand.Rand, scale int) (Result, error) {
	const hidden = 4
	w1 := make([][]float64, hidden) // hidden x 3 (2 inputs + bias)
	for i := range w1 {
		w1[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	w2 := make([]float64, hidden+1)
	for i := range w2 {
		w2[i] = rng.NormFloat64()
	}
	sigmoid := func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
	inputs := [][2]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := []float64{0, 1, 1, 0}
	ops := 0.0
	epochs := 400 * scale
	lr := 0.7
	var out float64
	forward := func(in [2]float64) ([]float64, float64) {
		h := make([]float64, hidden)
		for i := range h {
			h[i] = sigmoid(w1[i][0]*in[0] + w1[i][1]*in[1] + w1[i][2])
			ops += 3
		}
		o := w2[hidden]
		for i := range h {
			o += w2[i] * h[i]
			ops++
		}
		return h, sigmoid(o)
	}
	for e := 0; e < epochs; e++ {
		for k, in := range inputs {
			h, o := forward(in)
			out = o
			dOut := (o - targets[k]) * o * (1 - o)
			for i := range h {
				dH := dOut * w2[i] * h[i] * (1 - h[i])
				w2[i] -= lr * dOut * h[i]
				w1[i][0] -= lr * dH * in[0]
				w1[i][1] -= lr * dH * in[1]
				w1[i][2] -= lr * dH
				ops += 4
			}
			w2[hidden] -= lr * dOut
		}
	}
	correct := 0
	for k, in := range inputs {
		_, o := forward(in)
		if (o > 0.5) == (targets[k] > 0.5) {
			correct++
		}
	}
	if correct < 3 {
		return Result{}, fmt.Errorf("bytemark: neural net failed to learn XOR (%d/4)", correct)
	}
	return Result{Ops: ops, Checksum: mix(0, math.Float64bits(out))}, nil
}

// LUDecomposition factors diagonally dominant random matrices, solves
// A·x = b and verifies the residual.
func LUDecomposition(seed int64, scale int) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	n := 10 + scale/2
	if n > 80 {
		n = 80
	}
	ops := 0.0
	sum := uint64(0)
	for rep := 0; rep < 3; rep++ {
		a := make([][]float64, n)
		orig := make([][]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			orig[i] = make([]float64, n)
			row := 0.0
			for j := range a[i] {
				a[i][j] = rng.Float64()*2 - 1
				row += math.Abs(a[i][j])
			}
			a[i][i] += row + 1 // diagonal dominance
			copy(orig[i], a[i])
			b[i] = rng.Float64() * 10
		}
		// Doolittle LU in place, no pivoting (dominant diagonal).
		for k := 0; k < n; k++ {
			for i := k + 1; i < n; i++ {
				a[i][k] /= a[k][k]
				for j := k + 1; j < n; j++ {
					a[i][j] -= a[i][k] * a[k][j]
					ops += 2
				}
			}
		}
		// Solve L·y = b, U·x = y.
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			y[i] = b[i]
			for j := 0; j < i; j++ {
				y[i] -= a[i][j] * y[j]
				ops += 2
			}
		}
		for i := n - 1; i >= 0; i-- {
			x[i] = y[i]
			for j := i + 1; j < n; j++ {
				x[i] -= a[i][j] * x[j]
				ops += 2
			}
			x[i] /= a[i][i]
		}
		for i := 0; i < n; i++ {
			r := -b[i]
			for j := 0; j < n; j++ {
				r += orig[i][j] * x[j]
			}
			if math.Abs(r) > 1e-6 {
				return Result{}, fmt.Errorf("bytemark: LU residual %v at row %d", r, i)
			}
			sum = mix(sum, math.Float64bits(x[i]))
		}
	}
	return Result{Ops: ops, Checksum: sum}, nil
}
