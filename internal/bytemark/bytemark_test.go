package bytemark

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"hbspk/internal/model"
)

func TestAllKernelsSelfCheck(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				res, err := k.Run(seed, 2)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Ops <= 0 {
					t.Errorf("seed %d: ops = %v, want > 0", seed, res.Ops)
				}
			}
		})
	}
}

func TestKernelsDeterministic(t *testing.T) {
	for _, k := range Kernels() {
		a, err := k.Run(42, 2)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		b, err := k.Run(42, 2)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if a != b {
			t.Errorf("%s: nondeterministic: %+v vs %+v", k.Name, a, b)
		}
	}
}

func TestKernelsScaleIncreasesWork(t *testing.T) {
	for _, k := range Kernels() {
		small, err := k.Run(1, 1)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		big, err := k.Run(1, 8)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if big.Ops <= small.Ops {
			t.Errorf("%s: scale 8 ops %v not above scale 1 ops %v", k.Name, big.Ops, small.Ops)
		}
	}
}

func TestTenKernelsLikeTheOriginal(t *testing.T) {
	ks := Kernels()
	if len(ks) != 10 {
		t.Fatalf("suite has %d kernels, want 10 (BYTEmark's count)", len(ks))
	}
	names := map[string]bool{}
	for _, k := range ks {
		names[k.Name] = true
	}
	for _, want := range []string{"numeric-sort", "string-sort", "fourier", "lu-decomposition"} {
		if !names[want] {
			t.Errorf("missing kernel %q", want)
		}
	}
}

func TestMeasureExactWithoutNoise(t *testing.T) {
	tr := model.UCFTestbed()
	ixs, err := Suite{Scale: 1, NoiseAmp: 0, Seed: 1}.Measure(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Noiseless measurement recovers exactly 1/slowdown (normalized).
	for _, ix := range ixs {
		want := 1 / ix.Machine.CompSlowdown
		if math.Abs(ix.Composite-want) > 1e-9 {
			t.Errorf("%s: index %v, want %v", ix.Machine.Name, ix.Composite, want)
		}
	}
}

func TestMeasureRankingMostlyCorrectWithNoise(t *testing.T) {
	tr := model.UCFTestbed()
	ixs, err := DefaultSuite(7).Measure(tr)
	if err != nil {
		t.Fatal(err)
	}
	ranked := Ranking(ixs)
	// With 8% noise the extremes must still rank correctly: the spread
	// of true slowdowns (1 to 2.2) dominates the error.
	if ranked[0].Machine != tr.FastestLeaf() {
		t.Errorf("fastest misranked: got %s", ranked[0].Machine.Name)
	}
	if ranked[len(ranked)-1].Machine != tr.SlowestLeaf() {
		t.Errorf("slowest misranked: got %s", ranked[len(ranked)-1].Machine.Name)
	}
}

func TestMeasureDeterministicPerSeed(t *testing.T) {
	tr := model.UCFTestbedN(4)
	a, err := DefaultSuite(3).Measure(tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultSuite(3).Measure(tr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Composite != b[i].Composite {
			t.Errorf("machine %d: %v vs %v", i, a[i].Composite, b[i].Composite)
		}
	}
	c, err := DefaultSuite(4).Measure(tr)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Composite != c[i].Composite {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical noisy measurements")
	}
}

func TestApplySharesFollowsIndices(t *testing.T) {
	tr := model.UCFTestbed()
	ixs, err := Suite{Scale: 1, NoiseAmp: 0, Seed: 1}.Measure(tr)
	if err != nil {
		t.Fatal(err)
	}
	ApplyShares(tr, ixs)
	if err := tr.Validate(); err != nil {
		t.Fatalf("tree invalid after ApplyShares: %v", err)
	}
	// Noiseless: shares ∝ 1/slowdown, so fastest/slowest share ratio
	// equals slowest/fastest slowdown ratio.
	f, s := tr.FastestLeaf(), tr.SlowestLeaf()
	want := s.CompSlowdown / f.CompSlowdown
	got := f.Share / s.Share
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("share ratio %v, want %v", got, want)
	}
}

func TestTableRendersRanking(t *testing.T) {
	tr := model.UCFTestbedN(4)
	ixs, err := Suite{Scale: 1, NoiseAmp: 0, Seed: 1}.Measure(tr)
	if err != nil {
		t.Fatal(err)
	}
	out := Table(ixs).String()
	if !strings.Contains(out, "BYTEmark ranking") || !strings.Contains(out, "sgi-o2-a") {
		t.Errorf("table missing content:\n%s", out)
	}
}

// Property: the composite index is always in (0, 1] and the best machine
// scores exactly 1, for any seed and noise level under 50%.
func TestPropertyIndexNormalization(t *testing.T) {
	tr := model.UCFTestbedN(5)
	f := func(seed int64, noiseRaw uint8) bool {
		noise := float64(noiseRaw%50) / 100
		ixs, err := Suite{Scale: 1, NoiseAmp: noise, Seed: seed}.Measure(tr)
		if err != nil {
			return false
		}
		best := 0.0
		for _, ix := range ixs {
			if ix.Composite <= 0 || ix.Composite > 1+1e-12 {
				return false
			}
			if ix.Composite > best {
				best = ix.Composite
			}
		}
		return math.Abs(best-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestKernelTableHasAllColumns(t *testing.T) {
	tr := model.UCFTestbedN(3)
	ixs, err := Suite{Scale: 1, NoiseAmp: 0, Seed: 1}.Measure(tr)
	if err != nil {
		t.Fatal(err)
	}
	tb := KernelTable(ixs)
	if len(tb.Header) != 2+len(Kernels()) {
		t.Errorf("header has %d columns, want %d", len(tb.Header), 2+len(Kernels()))
	}
	if len(tb.Rows) != 3 {
		t.Errorf("%d rows, want 3", len(tb.Rows))
	}
	out := tb.String()
	for _, k := range Kernels() {
		if !strings.Contains(out, k.Name) {
			t.Errorf("missing kernel column %q", k.Name)
		}
	}
}
