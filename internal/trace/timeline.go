package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Timeline renders the run as an ASCII Gantt chart: one row per scope
// that executed steps, time flowing left to right, each step drawn as a
// box whose width is proportional to its duration. Concurrent cluster
// steps appear on separate rows, making the super^1/super^2 structure of
// an HBSP^k run visible at a glance.
//
//	M_{1,0} SMP   ▕██gather██▏      ▕█bcast█▏
//	M_{1,2} LAN   ▕████gather████▏  ▕███bcast███▏
//	M_{2,0} wan                   ▕███up███▏
func (r *Report) Timeline(width int) string {
	if len(r.Steps) == 0 {
		return "(no supersteps)\n"
	}
	if width < 40 {
		width = 40
	}
	end := r.Total
	for _, s := range r.Steps {
		if s.End > end {
			end = s.End
		}
	}
	if end == 0 {
		end = 1
	}

	// Group steps by scope, keep scope order by first appearance sorted
	// by level then index label for stable output.
	type row struct {
		key   string
		steps []Step
	}
	byScope := map[string]*row{}
	var keys []string
	for _, s := range r.Steps {
		key := fmt.Sprintf("%s %s", s.ScopeLabel, s.ScopeName)
		rw, ok := byScope[key]
		if !ok {
			rw = &row{key: key}
			byScope[key] = rw
			keys = append(keys, key)
		}
		rw.steps = append(rw.steps, s)
	}
	sort.Strings(keys)

	label := 0
	for _, k := range keys {
		if len(k) > label {
			label = len(k)
		}
	}
	chart := width - label - 3
	if chart < 20 {
		chart = 20
	}
	scale := float64(chart) / end

	var b strings.Builder
	fmt.Fprintf(&b, "timeline (total %.4g, 1 col ≈ %.3g)\n", r.Total, end/float64(chart))
	for _, k := range keys {
		rw := byScope[k]
		line := make([]rune, chart)
		for i := range line {
			line[i] = ' '
		}
		for _, s := range rw.steps {
			lo := int(s.Start * scale)
			hi := int(s.End * scale)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > chart {
				hi = chart
			}
			name := []rune(s.Label)
			for i := lo; i < hi && i < chart; i++ {
				line[i] = '█'
			}
			// Overlay the label when the box is wide enough.
			if hi-lo >= len(name)+2 {
				mid := lo + (hi-lo-len(name))/2
				copy(line[mid:], name)
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", label, k, string(line))
	}
	return b.String()
}
