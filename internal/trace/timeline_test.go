package trace

import (
	"strings"
	"testing"
)

func TestTimelineRendersScopesAndBoxes(t *testing.T) {
	r := &Report{
		Steps: []Step{
			{Label: "gather", ScopeLabel: "M_{1,0}", ScopeName: "SMP", Start: 0, End: 50},
			{Label: "gather", ScopeLabel: "M_{1,2}", ScopeName: "LAN", Start: 0, End: 80},
			{Label: "up", ScopeLabel: "M_{2,0}", ScopeName: "wan", Start: 80, End: 100},
		},
		Total: 100,
	}
	out := r.Timeline(100)
	for _, want := range []string{"M_{1,0} SMP", "M_{1,2} LAN", "M_{2,0} wan", "█"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// The WAN row's box must start later than the SMP row's.
	lines := strings.Split(out, "\n")
	var smp, wan string
	for _, l := range lines {
		if strings.HasPrefix(l, "M_{1,0}") {
			smp = l
		}
		if strings.HasPrefix(l, "M_{2,0}") {
			wan = l
		}
	}
	if strings.Index(wan, "█") <= strings.Index(smp, "█") {
		t.Errorf("wan step should start after smp step:\n%s", out)
	}
}

func TestTimelineEmptyAndDegenerate(t *testing.T) {
	empty := (&Report{}).Timeline(80)
	if !strings.Contains(empty, "no supersteps") {
		t.Errorf("empty timeline: %q", empty)
	}
	// Zero-duration steps still render one column.
	r := &Report{Steps: []Step{{Label: "z", ScopeLabel: "M_{1,0}", ScopeName: "x", Start: 0, End: 0}}}
	out := r.Timeline(10) // width below minimum gets clamped
	if !strings.Contains(out, "█") {
		t.Errorf("zero-duration step invisible:\n%s", out)
	}
}

func TestTimelineLabelOverlay(t *testing.T) {
	r := &Report{
		Steps: []Step{{Label: "verywidestep", ScopeLabel: "M_{1,0}", ScopeName: "s", Start: 0, End: 100}},
		Total: 100,
	}
	out := r.Timeline(120)
	if !strings.Contains(out, "verywidestep") {
		t.Errorf("wide box should carry its label:\n%s", out)
	}
}
