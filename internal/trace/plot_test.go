package trace

import (
	"strings"
	"testing"
)

func TestPlotRendersSeriesAndLegend(t *testing.T) {
	p := NewPlot("Figure 3(a)", "bytes", "T_s/T_f")
	p.Add("p=2", []float64{1, 2, 3}, []float64{0.9, 0.9, 0.9})
	p.Add("p=10", []float64{1, 2, 3}, []float64{1.25, 1.3, 1.31})
	out := p.Render(60, 12)
	for _, want := range []string{"Figure 3(a)", "o=p=2", "*=p=10", "T_s/T_f", "bytes"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "*") {
		t.Errorf("glyphs missing:\n%s", out)
	}
}

func TestPlotEmptyAndDegenerate(t *testing.T) {
	if out := NewPlot("t", "x", "y").Render(40, 8); !strings.Contains(out, "no data") {
		t.Errorf("empty plot: %q", out)
	}
	// A single point (degenerate ranges) must not divide by zero.
	out := NewPlot("t", "x", "y").Add("s", []float64{5}, []float64{7}).Render(40, 8)
	if !strings.Contains(out, "o") {
		t.Errorf("single point invisible:\n%s", out)
	}
}

func TestPlotOverlapMarked(t *testing.T) {
	p := NewPlot("", "", "")
	p.Add("a", []float64{1, 2}, []float64{1, 2})
	p.Add("b", []float64{1, 2}, []float64{1, 2})
	out := p.Render(40, 8)
	if !strings.Contains(out, "?") {
		t.Errorf("overlapping points not marked:\n%s", out)
	}
}

func TestPlotClampsTinyBox(t *testing.T) {
	p := NewPlot("", "", "").Add("s", []float64{0, 1}, []float64{0, 1})
	out := p.Render(1, 1)
	if len(strings.Split(out, "\n")) < 8 {
		t.Errorf("box not clamped to minimums:\n%s", out)
	}
}
