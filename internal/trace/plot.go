package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Plot renders labeled (x, y) series as an ASCII scatter chart — enough
// to eyeball the paper's figures straight from hbspk-bench. Each series
// gets a distinct glyph; axes are annotated with min/max.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	series []plotSeries
}

type plotSeries struct {
	name string
	xs   []float64
	ys   []float64
}

var plotGlyphs = []rune{'o', '*', '+', 'x', '#', '@', '%', '&'}

// NewPlot returns an empty plot.
func NewPlot(title, xlabel, ylabel string) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Add appends one series; xs and ys must have equal length.
func (p *Plot) Add(name string, xs, ys []float64) *Plot {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	p.series = append(p.series, plotSeries{name: name, xs: xs[:n], ys: ys[:n]})
	return p
}

// Render draws the chart in the given character box (minimums 30×8
// enforced).
func (p *Plot) Render(width, height int) string {
	if width < 30 {
		width = 30
	}
	if height < 8 {
		height = 8
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range p.series {
		for i := range s.xs {
			xmin, xmax = math.Min(xmin, s.xs[i]), math.Max(xmax, s.xs[i])
			ymin, ymax = math.Min(ymin, s.ys[i]), math.Max(ymax, s.ys[i])
			points++
		}
	}
	if points == 0 {
		return "(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	place := func(x, y float64, glyph rune) {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		r := int(math.Round((ymax - y) / (ymax - ymin) * float64(height-1)))
		if grid[r][c] != ' ' && grid[r][c] != glyph {
			grid[r][c] = '?' // overlapping series
			return
		}
		grid[r][c] = glyph
	}
	for si, s := range p.series {
		glyph := plotGlyphs[si%len(plotGlyphs)]
		idx := make([]int, len(s.xs))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return s.xs[idx[a]] < s.xs[idx[b]] })
		for _, i := range idx {
			place(s.xs[i], s.ys[i], glyph)
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	fmt.Fprintf(&b, "%.4g %s\n", ymax, p.YLabel)
	for _, row := range grid {
		fmt.Fprintf(&b, "  |%s|\n", string(row))
	}
	fmt.Fprintf(&b, "%.4g %s", ymin, strings.Repeat(" ", width/2))
	fmt.Fprintf(&b, "[%.4g .. %.4g] %s\n", xmin, xmax, p.XLabel)
	legend := make([]string, len(p.series))
	for si, s := range p.series {
		legend[si] = fmt.Sprintf("%c=%s", plotGlyphs[si%len(plotGlyphs)], s.name)
	}
	fmt.Fprintf(&b, "  legend: %s\n", strings.Join(legend, "  "))
	return b.String()
}
