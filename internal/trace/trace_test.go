package trace

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Report {
	return &Report{
		Steps: []Step{
			{Index: 0, Label: "gather", ScopeLabel: "M_{1,0}", ScopeName: "lan",
				Level: 1, Participants: 4, W: 10, H: 100, Comm: 100, Sync: 5, Time: 115,
				Flows: 3, Bytes: 300},
			{Index: 1, Label: "up", ScopeLabel: "M_{2,0}", ScopeName: "wan",
				Level: 2, Participants: 2, W: 0, H: 50, Comm: 500, Sync: 50, Time: 550,
				Flows: 1, Bytes: 50},
		},
		Total: 665,
	}
}

func TestReportAggregates(t *testing.T) {
	r := sample()
	if r.Supersteps() != 2 {
		t.Errorf("Supersteps = %d, want 2", r.Supersteps())
	}
	if r.BytesMoved() != 350 {
		t.Errorf("BytesMoved = %d, want 350", r.BytesMoved())
	}
	if r.CommTime() != 600 {
		t.Errorf("CommTime = %v, want 600", r.CommTime())
	}
	if r.SyncTime() != 55 {
		t.Errorf("SyncTime = %v, want 55", r.SyncTime())
	}
	if got := r.AtLevel(2); len(got) != 1 || got[0].Label != "up" {
		t.Errorf("AtLevel(2) = %v", got)
	}
	if got := r.AtLevel(3); got != nil {
		t.Errorf("AtLevel(3) = %v, want nil", got)
	}
}

func TestReportString(t *testing.T) {
	s := sample().String()
	for _, want := range []string{"gather", "M_{2,0}", "total virtual time: 665"} {
		if !strings.Contains(s, want) {
			t.Errorf("report rendering missing %q:\n%s", want, s)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("t", "a", "bee")
	tb.Add("xxxxx", "y")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4 (title, header, rule, row):\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== t ==") {
		t.Errorf("missing title: %q", lines[0])
	}
	// Header and row must be equally wide (aligned columns).
	if len(lines[1]) != len(lines[3]) {
		t.Errorf("misaligned: header %d chars, row %d chars", len(lines[1]), len(lines[3]))
	}
}

func TestTableAddF(t *testing.T) {
	tb := NewTable("", "s", "f", "i")
	tb.AddF("x", 3.14159, 42)
	row := tb.Rows[0]
	if row[0] != "x" || row[1] != "3.142" || row[2] != "42" {
		t.Errorf("AddF row = %v", row)
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Add(`plain`, `needs,"quoting"`)
	csv := tb.CSV()
	want := "a,b\nplain,\"needs,\"\"quoting\"\"\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.Add("only-one")
	out := tb.String()
	if !strings.Contains(out, "only-one") {
		t.Errorf("ragged row dropped:\n%s", out)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := sample()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Total != r.Total || len(back.Steps) != len(r.Steps) {
		t.Fatalf("round trip changed shape: %+v", back)
	}
	for i := range r.Steps {
		if back.Steps[i] != r.Steps[i] {
			t.Errorf("step %d differs: %+v vs %+v", i, back.Steps[i], r.Steps[i])
		}
	}
	if _, err := ReadJSON(bytes.NewBufferString("{broken")); err == nil {
		t.Error("corrupt JSON accepted")
	}
}
