// Package trace records what an HBSP^k run did: one entry per executed
// super^i-step with its cost ingredients, plus rendering helpers for the
// experiment tables and figures.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Step is one executed super^i-step.
type Step struct {
	// Index is the step's position in execution order.
	Index int
	// Label is the program-supplied step name; ScopeLabel and
	// ScopeName identify the step's scope machine (M_{i,j} / name).
	Label      string
	ScopeLabel string
	ScopeName  string
	// Level is i; Participants the number of processors that
	// synchronized.
	Level        int
	Participants int
	// W, H, Comm, Sync and Time are the charged cost ingredients:
	// T = W + Comm + Sync with Comm = g·H in the pure model.
	W, H, Comm, Sync, Time float64
	// Ckpt is the checkpoint-commit charge added past the step's end
	// (the maximum over participants), nonzero only at checkpointed
	// superstep boundaries.
	Ckpt float64
	// Flows and Bytes summarize the step's delivered traffic.
	Flows, Bytes int
	// GatingPid is the processor whose work set W (-1 when none);
	// Imbalance is W over the mean positive per-processor work.
	GatingPid int
	Imbalance float64
	// Start and End bound the step on the virtual clock (End - Start
	// may exceed Time when participants entered the barrier at
	// different local times).
	Start, End float64
}

// Report is the full record of one run.
type Report struct {
	// Steps in execution order.
	Steps []Step
	// Total is the finishing virtual time: the maximum leaf clock.
	Total float64
}

// Supersteps returns the number of executed steps.
func (r *Report) Supersteps() int { return len(r.Steps) }

// AtLevel returns the steps whose scope sits at level i.
func (r *Report) AtLevel(i int) []Step {
	var out []Step
	for _, s := range r.Steps {
		if s.Level == i {
			out = append(out, s)
		}
	}
	return out
}

// BytesMoved sums the traffic over all steps.
func (r *Report) BytesMoved() int {
	n := 0
	for _, s := range r.Steps {
		n += s.Bytes
	}
	return n
}

// CommTime sums the communication charges over all steps.
func (r *Report) CommTime() float64 {
	t := 0.0
	for _, s := range r.Steps {
		t += s.Comm
	}
	return t
}

// SyncTime sums the synchronization charges over all steps.
func (r *Report) SyncTime() float64 {
	t := 0.0
	for _, s := range r.Steps {
		t += s.Sync
	}
	return t
}

// String renders the run as an ASCII profile.
func (r *Report) String() string {
	tb := NewTable("superstep profile",
		"#", "label", "scope", "lvl", "procs", "w", "comm", "L", "T", "bytes", "gate")
	for _, s := range r.Steps {
		gate := "-"
		if s.GatingPid >= 0 {
			gate = fmt.Sprintf("p%d (%.2gx)", s.GatingPid, s.Imbalance)
		}
		tb.Add(
			fmt.Sprintf("%d", s.Index),
			s.Label,
			fmt.Sprintf("%s %s", s.ScopeLabel, s.ScopeName),
			fmt.Sprintf("%d", s.Level),
			fmt.Sprintf("%d", s.Participants),
			fmt.Sprintf("%.4g", s.W),
			fmt.Sprintf("%.4g", s.Comm),
			fmt.Sprintf("%.4g", s.Sync),
			fmt.Sprintf("%.4g", s.Time),
			fmt.Sprintf("%d", s.Bytes),
			gate,
		)
	}
	return tb.String() + fmt.Sprintf("total virtual time: %.6g\n", r.Total)
}

// Table is a titled grid with aligned ASCII and CSV renderings, used for
// every regenerated figure and table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; missing cells render empty, extras are kept.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddF appends a row of formatted values: strings pass through, float64
// render with %.4g, ints with %d.
func (t *Table) AddF(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case string:
			cells[i] = x
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		case int:
			cells[i] = fmt.Sprintf("%d", x)
		default:
			cells[i] = fmt.Sprint(x)
		}
	}
	t.Add(cells...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			fmt.Fprintf(&b, "%-*s", width[i]+2, c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range width {
		_ = i
		b.WriteString(strings.Repeat("-", w+2))
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	writeRow := func(r []string) {
		for i, c := range r {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(esc(c))
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// WriteJSON serializes the report (all step fields are exported).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON loads a report written by WriteJSON.
func ReadJSON(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("trace: decoding report: %w", err)
	}
	return &r, nil
}
