package collective

import (
	"fmt"

	"hbspk/internal/hbsp"
	"hbspk/internal/model"
)

const (
	tagBcast    = 2
	tagBcastEx  = 3
	tagScatter  = 4
	tagExchange = 5
)

// BcastOnePhase is the one-phase broadcast of §4.4 over the scope's
// subtree: the processor with pid root sends all of data to every other
// processor in one super^i-step. Every participant returns the data.
func BcastOnePhase(c hbsp.Ctx, scope *model.Machine, root int, data []byte) ([]byte, error) {
	defer span(c, "bcast-one-phase")(len(data))
	pids := participants(c, scope)
	if c.Pid() == root {
		for _, pid := range pids {
			if pid == root {
				continue
			}
			if err := c.Send(pid, tagBcast, data); err != nil {
				return nil, err
			}
		}
	}
	if err := c.Sync(scope, "bcast-1p"); err != nil {
		return nil, err
	}
	if c.Pid() == root {
		return data, nil
	}
	for _, m := range c.Moves() {
		if m.Tag == tagBcast && m.Src == root {
			return m.Payload, nil
		}
	}
	return nil, fmt.Errorf("collective: processor %d missed the broadcast", c.Pid())
}

// BcastTwoPhase is the two-phase broadcast of §4.4 over the scope's
// subtree: the root scatters pieces of data (sized by d, one entry per
// participant; nil means equal pieces) in the first super^i-step, and in
// the second every participant sends its piece to every other. Each
// participant returns the reassembled data. §5.3 notes the analysis is
// unchanged if the first phase distributes c_j·n pieces — pass
// BalancedPieces for that policy.
func BcastTwoPhase(c hbsp.Ctx, scope *model.Machine, root int, data []byte, d Dist) ([]byte, error) {
	defer span(c, "bcast-two-phase")(len(data))
	pids := participants(c, scope)
	me := indexOf(pids, c.Pid())
	if me < 0 {
		return nil, fmt.Errorf("collective: pid %d outside scope %s", c.Pid(), scope.Label())
	}
	var n int
	if c.Pid() == root {
		n = len(data)
		if d == nil {
			d = EqualPieces(c, scope, n)
		}
		if d.Total() != n || len(d) != len(pids) {
			return nil, fmt.Errorf("collective: piece distribution %v does not cover %d bytes over %d processors",
				d, n, len(pids))
		}
		pieces := d.cut(data)
		for i, pid := range pids {
			if pid == root {
				continue
			}
			if err := c.Send(pid, tagBcast, pieces[i]); err != nil {
				return nil, err
			}
		}
	}
	if err := c.Sync(scope, "bcast-2p scatter"); err != nil {
		return nil, err
	}

	var mine []byte
	if c.Pid() == root {
		mine = d.cut(data)[me]
	} else {
		for _, m := range c.Moves() {
			if m.Tag == tagBcast && m.Src == root {
				mine = m.Payload
			}
		}
	}
	// Phase 2: total exchange of pieces. Zero-length pieces still
	// reassemble correctly (nothing to send).
	for _, pid := range pids {
		if pid == c.Pid() || len(mine) == 0 {
			continue
		}
		if err := c.Send(pid, tagBcastEx, mine); err != nil {
			return nil, err
		}
	}
	if err := c.Sync(scope, "bcast-2p exchange"); err != nil {
		return nil, err
	}
	pieceBy := map[int][]byte{c.Pid(): mine} //hbspk:ignore syncflow (audited: own piece is re-sent before anyone can mutate it; reassembly needs it across the exchange barrier)
	for _, m := range c.Moves() {
		if m.Tag == tagBcastEx {
			pieceBy[m.Src] = m.Payload
		}
	}
	var out []byte
	for _, pid := range pids {
		out = append(out, pieceBy[pid]...)
	}
	return out, nil
}

// BcastHier is the hierarchical broadcast of §4.4 generalized to any k:
// level by level from the top, the data travels from each scope's
// coordinator to the coordinators of its children — one-phase or
// two-phase at the top level per twoPhaseTop, always two-phase inside
// clusters (the paper's intra-cluster choice). Only the machine's
// fastest processor may supply data; every processor returns the full
// data.
func BcastHier(c hbsp.Ctx, data []byte, twoPhaseTop bool) ([]byte, error) {
	defer span(c, "bcast-hier")(len(data))
	t := c.Tree()
	if t.K() == 0 {
		return data, nil
	}
	have := data
	if c.Self() != t.FastestLeaf() {
		have = nil
	}
	for lvl := t.K(); lvl >= 1; lvl-- {
		twoPhase := twoPhaseTop || lvl < t.K()
		// A processor takes part in the level's step when it is the
		// coordinator of a child of a level-lvl scope on its chain, or
		// a direct leaf child of that scope.
		scope := enclosingScope(t, c.Self(), lvl)
		if scope == nil {
			continue
		}
		rootPid := t.Pid(scope.Coordinator())
		// The step moves data between the coordinators of scope's
		// children; only those processors exchange, everyone under the
		// scope synchronizes.
		var coords []int
		for _, child := range scope.Children {
			coords = append(coords, t.Pid(child.Coordinator()))
		}
		amCoord := indexOf(coords, c.Pid()) >= 0

		if !twoPhase {
			if c.Pid() == rootPid {
				for _, pid := range coords {
					if pid != rootPid {
						if err := c.Send(pid, tagBcast, have); err != nil {
							return nil, err
						}
					}
				}
			}
			if err := c.Sync(scope, fmt.Sprintf("bcast^%d-1p", lvl)); err != nil {
				return nil, err
			}
			if amCoord && c.Pid() != rootPid {
				for _, m := range c.Moves() {
					if m.Tag == tagBcast && m.Src == rootPid {
						have = m.Payload
					}
				}
			}
			continue
		}

		// Two-phase among the child coordinators.
		m := len(coords)
		var pieces [][]byte
		if c.Pid() == rootPid {
			sizes := make(Dist, m)
			q, r := len(have)/m, len(have)%m
			for i := range sizes {
				sizes[i] = q
				if i < r {
					sizes[i]++
				}
			}
			pieces = sizes.cut(have)
			for i, pid := range coords {
				if pid != rootPid {
					if err := c.Send(pid, tagBcast, pieces[i]); err != nil {
						return nil, err
					}
				}
			}
		}
		if err := c.Sync(scope, fmt.Sprintf("bcast^%d scatter", lvl)); err != nil {
			return nil, err
		}
		var mine []byte
		if c.Pid() == rootPid {
			mine = pieces[indexOf(coords, c.Pid())]
		} else if amCoord {
			for _, msg := range c.Moves() {
				if msg.Tag == tagBcast && msg.Src == rootPid {
					mine = msg.Payload
				}
			}
		}
		if amCoord {
			for _, pid := range coords {
				if pid == c.Pid() || len(mine) == 0 {
					continue
				}
				if err := c.Send(pid, tagBcastEx, mine); err != nil {
					return nil, err
				}
			}
		}
		if err := c.Sync(scope, fmt.Sprintf("bcast^%d exchange", lvl)); err != nil {
			return nil, err
		}
		if amCoord {
			pieceBy := map[int][]byte{c.Pid(): mine} //hbspk:ignore syncflow (audited: own piece is re-sent before anyone can mutate it; reassembly needs it across the exchange barrier)
			for _, msg := range c.Moves() {
				if msg.Tag == tagBcastEx {
					pieceBy[msg.Src] = msg.Payload
				}
			}
			have = nil
			for _, pid := range coords {
				have = append(have, pieceBy[pid]...)
			}
		}
	}
	if have == nil {
		return nil, fmt.Errorf("collective: processor %d ended the hierarchical broadcast empty", c.Pid())
	}
	return have, nil
}
