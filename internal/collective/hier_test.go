package collective

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"hbspk/internal/fabric"
	"hbspk/internal/hbsp"
	"hbspk/internal/model"
)

func TestAllGatherHierEveryoneHasEverything(t *testing.T) {
	for _, tr := range []*model.Tree{
		model.Figure1Cluster(),
		model.WideAreaGrid(2, 3, 10, 100, 1000),
		model.UCFTestbedN(5),
		model.SingleProcessor(),
	} {
		tr := tr
		ok := make([]bool, tr.NProcs())
		runPure(t, tr, func(c hbsp.Ctx) error {
			out, err := AllGatherHier(c, payloadFor(c.Pid(), 20+c.Pid()))
			if err != nil {
				return err
			}
			if len(out) != c.NProcs() {
				return fmt.Errorf("pid %d holds %d pieces", c.Pid(), len(out))
			}
			for pid := 0; pid < c.NProcs(); pid++ {
				if !bytes.Equal(out[pid], payloadFor(pid, 20+pid)) {
					return fmt.Errorf("pid %d: piece %d corrupted", c.Pid(), pid)
				}
			}
			ok[c.Pid()] = true
			return nil
		})
		for pid, v := range ok {
			if !v {
				t.Errorf("%s: pid %d incomplete", tr.Root.Name, pid)
			}
		}
	}
}

func TestAllGatherHierBeatsFlatOnSlowWAN(t *testing.T) {
	// On a machine with slow upper links, the hierarchical all-gather
	// must beat the flat one: pieces cross the WAN once, not p times.
	tr := model.WideAreaGrid(3, 6, 20, 25000, 250000)
	piece := 40000
	measure := func(prog hbsp.Program) float64 {
		rep, err := hbsp.RunVirtual(tr, fabric.PureModel(), prog)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Total
	}
	flat := measure(func(c hbsp.Ctx) error {
		_, err := AllGather(c, c.Tree().Root, make([]byte, piece))
		return err
	})
	hier := measure(func(c hbsp.Ctx) error {
		_, err := AllGatherHier(c, make([]byte, piece))
		return err
	})
	if hier >= flat {
		t.Errorf("hierarchical all-gather %v should beat flat %v on a slow WAN", hier, flat)
	}
}

func TestScanHierMatchesSequentialPrefix(t *testing.T) {
	for _, tr := range []*model.Tree{
		model.UCFTestbedN(7),
		model.Figure1Cluster(),
		model.WideAreaGrid(2, 4, 8, 50, 500),
		model.DeepChain(3),
		model.SingleProcessor(),
	} {
		tr := tr
		p := tr.NProcs()
		got := make([][]int64, p)
		runPure(t, tr, func(c hbsp.Ctx) error {
			local := []int64{int64(c.Pid() + 1), int64(2 * c.Pid())}
			out, err := ScanHier(c, local, Sum)
			if err != nil {
				return err
			}
			got[c.Pid()] = out
			return nil
		})
		acc0, acc1 := int64(0), int64(0)
		for pid := 0; pid < p; pid++ {
			acc0 += int64(pid + 1)
			acc1 += int64(2 * pid)
			if got[pid][0] != acc0 || got[pid][1] != acc1 {
				t.Errorf("%s: scan[%d] = %v, want [%d %d]", tr.Root.Name, pid, got[pid], acc0, acc1)
			}
		}
	}
}

func TestScanHierMaxOp(t *testing.T) {
	tr := model.Figure1Cluster()
	p := tr.NProcs()
	vals := make([]int64, p)
	for i := range vals {
		vals[i] = int64((i*7 + 3) % 11)
	}
	got := make([]int64, p)
	runPure(t, tr, func(c hbsp.Ctx) error {
		out, err := ScanHier(c, []int64{vals[c.Pid()]}, Max)
		if err != nil {
			return err
		}
		got[c.Pid()] = out[0]
		return nil
	})
	run := vals[0]
	for pid := 0; pid < p; pid++ {
		if vals[pid] > run {
			run = vals[pid]
		}
		if got[pid] != run {
			t.Errorf("max-scan[%d] = %d, want %d", pid, got[pid], run)
		}
	}
}

func TestScanHierAgreesWithFlatScan(t *testing.T) {
	tr := model.UCFTestbedN(6)
	p := tr.NProcs()
	flat := make([]int64, p)
	hier := make([]int64, p)
	runPure(t, tr, func(c hbsp.Ctx) error {
		out, err := Scan(c, c.Tree().Root, []int64{int64(3*c.Pid() + 1)}, Sum)
		if err != nil {
			return err
		}
		flat[c.Pid()] = out[0]
		return nil
	})
	runPure(t, tr, func(c hbsp.Ctx) error {
		out, err := ScanHier(c, []int64{int64(3*c.Pid() + 1)}, Sum)
		if err != nil {
			return err
		}
		hier[c.Pid()] = out[0]
		return nil
	})
	for pid := 0; pid < p; pid++ {
		if flat[pid] != hier[pid] {
			t.Errorf("pid %d: flat %d vs hier %d", pid, flat[pid], hier[pid])
		}
	}
}

func TestReduceScatterSegments(t *testing.T) {
	tr := model.UCFTestbedN(4)
	p := tr.NProcs()
	width := 12
	d := Dist{2, 4, 3, 3} // segment sizes summing to width
	got := make([][]int64, p)
	runPure(t, tr, func(c hbsp.Ctx) error {
		local := make([]int64, width)
		for i := range local {
			local[i] = int64(c.Pid()*100 + i)
		}
		out, err := ReduceScatter(c, c.Tree().Root, local, d, Sum)
		if err != nil {
			return err
		}
		got[c.Pid()] = out
		return nil
	})
	// Expected: element i of the full reduction = Σ_pid (pid*100 + i).
	full := make([]int64, width)
	for i := range full {
		for pid := 0; pid < p; pid++ {
			full[i] += int64(pid*100 + i)
		}
	}
	off := 0
	for pid := 0; pid < p; pid++ {
		if len(got[pid]) != d[pid] {
			t.Fatalf("pid %d segment length %d, want %d", pid, len(got[pid]), d[pid])
		}
		for j, v := range got[pid] {
			if v != full[off+j] {
				t.Errorf("pid %d seg[%d] = %d, want %d", pid, j, v, full[off+j])
			}
		}
		off += d[pid]
	}
}

func TestReduceScatterValidatesDist(t *testing.T) {
	tr := model.UCFTestbedN(3)
	err := func() error {
		_, err := hbsp.RunVirtual(tr, fabric.PureModel(), func(c hbsp.Ctx) error {
			_, err := ReduceScatter(c, c.Tree().Root, make([]int64, 10), Dist{5, 5}, Sum)
			return err
		})
		return err
	}()
	if err == nil {
		t.Error("short dist accepted")
	}
}

// Property: hierarchical scan equals the sequential prefix on random
// trees and random values.
func TestPropertyScanHier(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := model.RandomTree(rng, 3, 3)
		p := tr.NProcs()
		vals := make([]int64, p)
		for i := range vals {
			vals[i] = int64(rngSize(seed, i)) - 40
		}
		got := make([]int64, p)
		_, err := hbsp.RunVirtual(tr, fabric.PureModel(), func(c hbsp.Ctx) error {
			out, err := ScanHier(c, []int64{vals[c.Pid()]}, Sum)
			if err != nil {
				return err
			}
			got[c.Pid()] = out[0]
			return nil
		})
		if err != nil {
			return false
		}
		acc := int64(0)
		for pid := 0; pid < p; pid++ {
			acc += vals[pid]
			if got[pid] != acc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: AllGatherHier is complete and correct on random trees.
func TestPropertyAllGatherHier(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := model.RandomTree(rng, 2, 4)
		okAll := true
		_, err := hbsp.RunVirtual(tr, fabric.PureModel(), func(c hbsp.Ctx) error {
			out, err := AllGatherHier(c, payloadFor(c.Pid(), 1+c.Pid()%5))
			if err != nil {
				return err
			}
			for pid := 0; pid < c.NProcs(); pid++ {
				if !bytes.Equal(out[pid], payloadFor(pid, 1+pid%5)) {
					okAll = false
				}
			}
			return nil
		})
		return err == nil && okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestScanHierOnConcurrentEngine(t *testing.T) {
	tr := model.Figure1Cluster()
	p := tr.NProcs()
	got := make([]int64, p)
	_, err := hbsp.NewConcurrent(tr).Run(func(c hbsp.Ctx) error {
		out, err := ScanHier(c, []int64{int64(c.Pid() + 1)}, Sum)
		if err != nil {
			return err
		}
		got[c.Pid()] = out[0]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := int64(0)
	for pid := 0; pid < p; pid++ {
		acc += int64(pid + 1)
		if got[pid] != acc {
			t.Errorf("scan[%d] = %d, want %d", pid, got[pid], acc)
		}
	}
}

func TestTotalExchangeHierTransposes(t *testing.T) {
	for _, tr := range []*model.Tree{
		model.Figure1Cluster(),
		model.WideAreaGrid(3, 3, 10, 100, 1000),
		model.DeepChain(3),
		model.UCFTestbedN(5),
		model.SingleProcessor(),
	} {
		tr := tr
		p := tr.NProcs()
		ok := make([]bool, p)
		runPure(t, tr, func(c hbsp.Ctx) error {
			out := make(map[int][]byte, p)
			for dst := 0; dst < p; dst++ {
				out[dst] = []byte{byte(c.Pid()), byte(dst), byte(c.Pid() ^ dst)}
			}
			in, err := TotalExchangeHier(c, out)
			if err != nil {
				return err
			}
			if len(in) != p {
				return fmt.Errorf("pid %d received %d pieces, want %d", c.Pid(), len(in), p)
			}
			for src := 0; src < p; src++ {
				want := []byte{byte(src), byte(c.Pid()), byte(src ^ c.Pid())}
				if !bytes.Equal(in[src], want) {
					return fmt.Errorf("pid %d from %d: %v want %v", c.Pid(), src, in[src], want)
				}
			}
			ok[c.Pid()] = true
			return nil
		})
		for pid, v := range ok {
			if !v {
				t.Errorf("%s: pid %d incomplete", tr.Root.Name, pid)
			}
		}
	}
}

func TestTotalExchangeHierRegimes(t *testing.T) {
	// The hierarchical exchange trades hops for message count: slow
	// leaves send one bundle to their coordinator instead of one
	// message per remote peer. It wins exactly when per-message cost
	// dominates (many tiny pieces on a software-routed network) and
	// loses on bulk traffic, where the h-relation already aggregates
	// cluster bytes and the extra hop is pure overhead.
	tr := model.WideAreaGrid(3, 6, 15, 25000, 250000)
	p := tr.NProcs()
	measure := func(piece int, overhead float64, hier bool) float64 {
		cfg := fabric.PVM()
		cfg.MsgOverhead = overhead
		cfg.CombineMessages = true
		rep, err := hbsp.RunVirtual(tr, cfg, func(c hbsp.Ctx) error {
			out := make(map[int][]byte, p)
			for dst := 0; dst < p; dst++ {
				out[dst] = payloadFor(c.Pid()*41+dst, piece)
			}
			var err error
			if hier {
				_, err = TotalExchangeHier(c, out)
			} else {
				_, err = TotalExchange(c, c.Tree().Root, out)
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Total
	}
	// Tiny pieces, expensive messages: hierarchy wins.
	if flat, hier := measure(16, 8000, false), measure(16, 8000, true); hier >= flat {
		t.Errorf("tiny-message regime: hierarchical %v should beat flat %v", hier, flat)
	}
	// Bulk pieces, free messages: flat wins.
	if flat, hier := measure(2000, 0, false), measure(2000, 0, true); flat >= hier {
		t.Errorf("bulk regime: flat %v should beat hierarchical %v", flat, hier)
	}
}

// Property: the hierarchical exchange transposes exactly on random
// trees.
func TestPropertyTotalExchangeHier(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := model.RandomTree(rng, 3, 3)
		p := tr.NProcs()
		okAll := true
		_, err := hbsp.RunVirtual(tr, fabric.PureModel(), func(c hbsp.Ctx) error {
			out := make(map[int][]byte, p)
			for dst := 0; dst < p; dst++ {
				out[dst] = []byte{byte(c.Pid()), byte(dst)}
			}
			in, err := TotalExchangeHier(c, out)
			if err != nil {
				return err
			}
			for src := 0; src < p; src++ {
				if !bytes.Equal(in[src], []byte{byte(src), byte(c.Pid())}) {
					okAll = false
				}
			}
			return nil
		})
		return err == nil && okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
