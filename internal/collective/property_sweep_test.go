package collective

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hbspk/internal/fabric"
	"hbspk/internal/hbsp"
	"hbspk/internal/model"
	"hbspk/internal/plan"
)

// The property sweep: every collective in the library, run on randomized
// machine trees (heights 1–3, mixed r_{i,j}, random fanout), with random
// roots, payload sizes, operators and vector widths, checked against a
// naive sequential oracle — under both engines. Seeds are derived from a
// fixed base so failures reproduce; every failure message leads with the
// seed.

// sweepEnv is one fully-determined random scenario. Everything is
// materialized up front so program bodies never touch the (non
// goroutine-safe) rand source.
type sweepEnv struct {
	seed     int64
	tr       *model.Tree
	p        int
	root     int // random participant, for rooted flat collectives
	op       Op
	width    int
	sizes    []int
	payloads [][]byte         // per-pid byte payloads
	vecs     [][]int64        // per-pid reduction vectors
	outgoing []map[int][]byte // per-src total-exchange pieces
	pl       *plan.Planner    // shared by the planned-* cases
}

func newSweepEnv(seed int64) *sweepEnv {
	rng := rand.New(rand.NewSource(seed))
	tr := model.RandomTree(rng, 3, 3)
	// Bound the processor count so the concurrent engine's goroutine
	// runs stay fast; regeneration is deterministic in the seed.
	for tr.NProcs() > 12 {
		tr = model.RandomTree(rng, 3, 3)
	}
	p := tr.NProcs()
	env := &sweepEnv{
		seed:  seed,
		tr:    tr,
		p:     p,
		root:  rng.Intn(p),
		op:    []Op{Sum, Max, Min}[rng.Intn(3)],
		width: 1 + rng.Intn(6),
		pl:    plan.New(),
	}
	env.sizes = make([]int, p)
	env.payloads = make([][]byte, p)
	env.vecs = make([][]int64, p)
	env.outgoing = make([]map[int][]byte, p)
	for pid := 0; pid < p; pid++ {
		env.sizes[pid] = 1 + rng.Intn(300)
		env.payloads[pid] = payloadFor(pid, env.sizes[pid])
		vec := make([]int64, env.width)
		for i := range vec {
			vec[i] = int64(rng.Intn(2001) - 1000)
		}
		env.vecs[pid] = vec
		out := map[int][]byte{}
		for dst := 0; dst < p; dst++ {
			if rng.Intn(4) == 0 {
				continue // sparse: some (src,dst) pairs exchange nothing
			}
			out[dst] = payloadFor(pid*131+dst*17, 1+rng.Intn(64))
		}
		env.outgoing[pid] = out
	}
	return env
}

// fold applies the op element-wise left to right over the pids' vectors.
func (env *sweepEnv) fold(pids []int) []int64 {
	acc := append([]int64(nil), env.vecs[pids[0]]...)
	for _, pid := range pids[1:] {
		for i := range acc {
			acc[i] = env.op.Apply(acc[i], env.vecs[pid][i])
		}
	}
	return acc
}

// allPids is 0..p-1 — participants(scope=Root) in pid order.
func (env *sweepEnv) allPids() []int {
	pids := make([]int, env.p)
	for i := range pids {
		pids[i] = i
	}
	return pids
}

// gatherOracle is what a completed gather (or any pid's all-gather)
// must hold.
func (env *sweepEnv) gatherOracle() map[int][]byte {
	m := make(map[int][]byte, env.p)
	for pid := 0; pid < env.p; pid++ {
		m[pid] = env.payloads[pid]
	}
	return m
}

// totalBytes is the machine-wide payload size: the uniform n the
// planned byte collectives take.
func (env *sweepEnv) totalBytes() int {
	n := 0
	for _, s := range env.sizes {
		n += s
	}
	return n
}

// exchangeBytes is the machine-wide total-exchange traffic.
func (env *sweepEnv) exchangeBytes() int {
	n := 0
	for _, out := range env.outgoing {
		n += mapBytes(out)
	}
	return n
}

// exchangeOracle transposes outgoing: what dst must end up holding.
func (env *sweepEnv) exchangeOracle(dst int) map[int][]byte {
	in := map[int][]byte{}
	for src := 0; src < env.p; src++ {
		if piece, ok := env.outgoing[src][dst]; ok {
			in[src] = piece
		}
	}
	return in
}

// sweepSlots stores per-pid results under a lock (the concurrent engine
// writes from p goroutines).
type sweepSlots struct {
	mu sync.Mutex
	bs [][]byte
	ms []map[int][]byte
	vs [][]int64
}

func newSlots(p int) *sweepSlots {
	return &sweepSlots{bs: make([][]byte, p), ms: make([]map[int][]byte, p), vs: make([][]int64, p)}
}

func (s *sweepSlots) setB(pid int, b []byte) {
	s.mu.Lock()
	s.bs[pid] = b
	s.mu.Unlock()
}

func (s *sweepSlots) setM(pid int, m map[int][]byte) {
	s.mu.Lock()
	s.ms[pid] = m
	s.mu.Unlock()
}

func (s *sweepSlots) setV(pid int, v []int64) {
	s.mu.Lock()
	s.vs[pid] = v
	s.mu.Unlock()
}

// checkers — all report with the seed so failures reproduce.

func checkBytes(t *testing.T, env *sweepEnv, what string, pid int, got, want []byte) {
	t.Helper()
	if !bytes.Equal(got, want) {
		t.Errorf("seed=%d %s: pid %d got %d bytes, want %d (payload mismatch)", env.seed, what, pid, len(got), len(want))
	}
}

func checkMap(t *testing.T, env *sweepEnv, what string, pid int, got, want map[int][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("seed=%d %s: pid %d holds %d pieces, want %d", env.seed, what, pid, len(got), len(want))
		return
	}
	for src, w := range want {
		if !bytes.Equal(got[src], w) {
			t.Errorf("seed=%d %s: pid %d piece from %d corrupted", env.seed, what, pid, src)
		}
	}
}

func checkVec(t *testing.T, env *sweepEnv, what string, pid int, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("seed=%d %s: pid %d vector width %d, want %d", env.seed, what, pid, len(got), len(want))
		return
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("seed=%d %s: pid %d element %d = %d, want %d (op %s)", env.seed, what, pid, i, got[i], want[i], env.op.Name)
			return
		}
	}
}

// sweepCase is one collective under test: the program body each
// processor runs, and the oracle check over the collected slots.
type sweepCase struct {
	name  string
	run   func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error
	check func(t *testing.T, env *sweepEnv, s *sweepSlots)
}

func sweepCases() []sweepCase {
	return []sweepCase{
		{
			name: "gather",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				out, err := Gather(c, c.Tree().Root, env.root, env.payloads[c.Pid()])
				s.setM(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				checkMap(t, env, "gather", env.root, s.ms[env.root], env.gatherOracle())
				for pid := 0; pid < env.p; pid++ {
					if pid != env.root && s.ms[pid] != nil {
						t.Errorf("seed=%d gather: non-root pid %d returned a map", env.seed, pid)
					}
				}
			},
		},
		{
			name: "gather-hier",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				out, err := GatherHier(c, env.payloads[c.Pid()])
				s.setM(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				root := env.tr.Pid(env.tr.FastestLeaf())
				checkMap(t, env, "gather-hier", root, s.ms[root], env.gatherOracle())
			},
		},
		{
			name: "scatter",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				var pieces map[int][]byte
				if c.Pid() == env.root {
					pieces = env.gatherOracle()
				}
				out, err := Scatter(c, c.Tree().Root, env.root, pieces)
				s.setB(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				for pid := 0; pid < env.p; pid++ {
					checkBytes(t, env, "scatter", pid, s.bs[pid], env.payloads[pid])
				}
			},
		},
		{
			name: "scatter-hier",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				var pieces map[int][]byte
				if c.Self() == c.Tree().FastestLeaf() {
					pieces = env.gatherOracle()
				}
				out, err := ScatterHier(c, pieces)
				s.setB(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				for pid := 0; pid < env.p; pid++ {
					checkBytes(t, env, "scatter-hier", pid, s.bs[pid], env.payloads[pid])
				}
			},
		},
		{
			name: "bcast-one-phase",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				var in []byte
				if c.Pid() == env.root {
					in = env.payloads[env.root]
				}
				out, err := BcastOnePhase(c, c.Tree().Root, env.root, in)
				s.setB(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				for pid := 0; pid < env.p; pid++ {
					checkBytes(t, env, "bcast-one-phase", pid, s.bs[pid], env.payloads[env.root])
				}
			},
		},
		{
			name: "bcast-two-phase",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				var in []byte
				if c.Pid() == env.root {
					in = env.payloads[env.root]
				}
				out, err := BcastTwoPhase(c, c.Tree().Root, env.root, in, nil)
				s.setB(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				for pid := 0; pid < env.p; pid++ {
					checkBytes(t, env, "bcast-two-phase", pid, s.bs[pid], env.payloads[env.root])
				}
			},
		},
		{
			name: "bcast-binomial",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				var in []byte
				if c.Pid() == env.root {
					in = env.payloads[env.root]
				}
				out, err := BcastBinomial(c, c.Tree().Root, env.root, in)
				s.setB(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				for pid := 0; pid < env.p; pid++ {
					checkBytes(t, env, "bcast-binomial", pid, s.bs[pid], env.payloads[env.root])
				}
			},
		},
		{
			name: "bcast-hier",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				var in []byte
				if c.Self() == c.Tree().FastestLeaf() {
					in = env.payloads[0]
				}
				out, err := BcastHier(c, in, env.seed%2 == 0)
				s.setB(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				for pid := 0; pid < env.p; pid++ {
					checkBytes(t, env, "bcast-hier", pid, s.bs[pid], env.payloads[0])
				}
			},
		},
		{
			name: "all-gather",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				out, err := AllGather(c, c.Tree().Root, env.payloads[c.Pid()])
				s.setM(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				for pid := 0; pid < env.p; pid++ {
					checkMap(t, env, "all-gather", pid, s.ms[pid], env.gatherOracle())
				}
			},
		},
		{
			name: "all-gather-hier",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				out, err := AllGatherHier(c, env.payloads[c.Pid()])
				s.setM(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				for pid := 0; pid < env.p; pid++ {
					checkMap(t, env, "all-gather-hier", pid, s.ms[pid], env.gatherOracle())
				}
			},
		},
		{
			name: "total-exchange",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				out, err := TotalExchange(c, c.Tree().Root, env.outgoing[c.Pid()])
				s.setM(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				for pid := 0; pid < env.p; pid++ {
					checkMap(t, env, "total-exchange", pid, s.ms[pid], env.exchangeOracle(pid))
				}
			},
		},
		{
			name: "total-exchange-hier",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				out, err := TotalExchangeHier(c, env.outgoing[c.Pid()])
				s.setM(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				for pid := 0; pid < env.p; pid++ {
					checkMap(t, env, "total-exchange-hier", pid, s.ms[pid], env.exchangeOracle(pid))
				}
			},
		},
		{
			name: "reduce",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				out, err := Reduce(c, c.Tree().Root, env.root, env.vecs[c.Pid()], env.op)
				s.setV(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				checkVec(t, env, "reduce", env.root, s.vs[env.root], env.fold(env.allPids()))
				for pid := 0; pid < env.p; pid++ {
					if pid != env.root && s.vs[pid] != nil {
						t.Errorf("seed=%d reduce: non-root pid %d returned a vector", env.seed, pid)
					}
				}
			},
		},
		{
			name: "reduce-hier",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				out, err := ReduceHier(c, env.vecs[c.Pid()], env.op)
				s.setV(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				root := env.tr.Pid(env.tr.FastestLeaf())
				checkVec(t, env, "reduce-hier", root, s.vs[root], env.fold(env.allPids()))
			},
		},
		{
			name: "all-reduce",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				out, err := AllReduce(c, env.vecs[c.Pid()], env.op)
				s.setV(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				want := env.fold(env.allPids())
				for pid := 0; pid < env.p; pid++ {
					checkVec(t, env, "all-reduce", pid, s.vs[pid], want)
				}
			},
		},
		{
			name: "scan",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				out, err := Scan(c, c.Tree().Root, env.vecs[c.Pid()], env.op)
				s.setV(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				for pid := 0; pid < env.p; pid++ {
					checkVec(t, env, "scan", pid, s.vs[pid], env.fold(env.allPids()[:pid+1]))
				}
			},
		},
		{
			name: "scan-hier",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				out, err := ScanHier(c, env.vecs[c.Pid()], env.op)
				s.setV(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				// ScanHier's prefix order is the tree's depth-first machine
				// order: pid order on a fresh tree, layout order after a
				// reorganization.
				order := slotPidsOf(env.tr)
				for pos, pid := range order {
					checkVec(t, env, "scan-hier", pid, s.vs[pid], env.fold(order[:pos+1]))
				}
			},
		},
		{
			name: "reduce-scatter",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				// Widen the vector to p elements minimum so every
				// participant owns at least zero-or-more elements; use a
				// deterministic widened copy of the pid's vector.
				local := widened(env, c.Pid())
				d := EqualPieces(c, c.Tree().Root, len(local))
				out, err := ReduceScatter(c, c.Tree().Root, local, d, env.op)
				s.setV(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				// Oracle: element-wise fold of the widened vectors, then
				// the EqualPieces segmentation.
				n := widenedLen(env)
				acc := widened(env, 0)
				for pid := 1; pid < env.p; pid++ {
					v := widened(env, pid)
					for i := range acc {
						acc[i] = env.op.Apply(acc[i], v[i])
					}
				}
				q, r := n/env.p, n%env.p
				off := 0
				for pid := 0; pid < env.p; pid++ {
					sz := q
					if pid < r {
						sz++
					}
					checkVec(t, env, "reduce-scatter", pid, s.vs[pid], acc[off:off+sz])
					off += sz
				}
			},
		},
		// Planner-dispatched collectives: whatever variant the planner
		// resolves, the result must match the same sequential oracles as
		// the fixed variants — the planner may change the HOW, never the
		// WHAT. The planner is shared across cases and engines, so later
		// runs exercise the cached hit path.
		{
			name: "planned-bcast",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				var in []byte
				if c.Self() == c.Tree().FastestLeaf() {
					in = env.payloads[0]
				}
				out, err := PlannedBcast(c, env.pl, env.sizes[0], in)
				s.setB(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				for pid := 0; pid < env.p; pid++ {
					checkBytes(t, env, "planned-bcast", pid, s.bs[pid], env.payloads[0])
				}
			},
		},
		{
			name: "planned-gather",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				out, err := PlannedGather(c, env.pl, env.totalBytes(), env.payloads[c.Pid()])
				s.setM(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				root := env.tr.Pid(env.tr.FastestLeaf())
				checkMap(t, env, "planned-gather", root, s.ms[root], env.gatherOracle())
			},
		},
		{
			name: "planned-scatter",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				var pieces map[int][]byte
				if c.Self() == c.Tree().FastestLeaf() {
					pieces = env.gatherOracle()
				}
				out, err := PlannedScatter(c, env.pl, env.totalBytes(), pieces)
				s.setB(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				for pid := 0; pid < env.p; pid++ {
					checkBytes(t, env, "planned-scatter", pid, s.bs[pid], env.payloads[pid])
				}
			},
		},
		{
			name: "planned-all-gather",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				out, err := PlannedAllGather(c, env.pl, env.totalBytes(), env.payloads[c.Pid()])
				s.setM(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				for pid := 0; pid < env.p; pid++ {
					checkMap(t, env, "planned-all-gather", pid, s.ms[pid], env.gatherOracle())
				}
			},
		},
		{
			name: "planned-reduce",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				out, err := PlannedReduce(c, env.pl, env.vecs[c.Pid()], env.op)
				s.setV(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				root := env.tr.Pid(env.tr.FastestLeaf())
				checkVec(t, env, "planned-reduce", root, s.vs[root], env.fold(env.allPids()))
			},
		},
		{
			name: "planned-all-reduce",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				out, err := PlannedAllReduce(c, env.pl, env.vecs[c.Pid()], env.op)
				s.setV(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				want := env.fold(env.allPids())
				for pid := 0; pid < env.p; pid++ {
					checkVec(t, env, "planned-all-reduce", pid, s.vs[pid], want)
				}
			},
		},
		{
			name: "planned-scan",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				out, err := PlannedScan(c, env.pl, env.vecs[c.Pid()], env.op)
				s.setV(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				// The tree is freshly built, so slot order == pid order and
				// both eligible variants yield the pid-order prefix.
				for pid := 0; pid < env.p; pid++ {
					checkVec(t, env, "planned-scan", pid, s.vs[pid], env.fold(env.allPids()[:pid+1]))
				}
			},
		},
		{
			name: "planned-total-exchange",
			run: func(c hbsp.Ctx, env *sweepEnv, s *sweepSlots) error {
				out, err := PlannedTotalExchange(c, env.pl, env.exchangeBytes(), env.outgoing[c.Pid()])
				s.setM(c.Pid(), out)
				return err
			},
			check: func(t *testing.T, env *sweepEnv, s *sweepSlots) {
				for pid := 0; pid < env.p; pid++ {
					checkMap(t, env, "planned-total-exchange", pid, s.ms[pid], env.exchangeOracle(pid))
				}
			},
		},
	}
}

// widened returns pid's reduction vector repeated to cover at least one
// element per participant (deterministic, no shared state).
func widenedLen(env *sweepEnv) int {
	n := env.width
	for n < env.p {
		n += env.width
	}
	return n
}

func widened(env *sweepEnv, pid int) []int64 {
	n := widenedLen(env)
	out := make([]int64, n)
	for i := range out {
		out[i] = env.vecs[pid][i%env.width]
	}
	return out
}

// TestPropertySweepCollectives is the satellite sweep: every collective,
// random trees and parameters, both engines, oracle-checked. Runs clean
// under -race; iteration count drops under -short.
func TestPropertySweepCollectives(t *testing.T) {
	iters := 8
	if testing.Short() {
		iters = 2
	}
	engines := []struct {
		name string
		run  func(tr *model.Tree, p hbsp.Program) error
	}{
		{"virtual", func(tr *model.Tree, p hbsp.Program) error {
			_, err := hbsp.RunVirtual(tr, fabric.PureModel(), p)
			return err
		}},
		{"concurrent", func(tr *model.Tree, p hbsp.Program) error {
			_, err := hbsp.NewConcurrent(tr).Run(p)
			return err
		}},
	}
	const baseSeed = int64(0xC0FFEE)
	for it := 0; it < iters; it++ {
		seed := baseSeed + int64(it)*7919
		env := newSweepEnv(seed)
		for _, eng := range engines {
			eng := eng
			t.Run(fmt.Sprintf("it%d/%s", it, eng.name), func(t *testing.T) {
				t.Logf("seed=%d tree=%s p=%d k=%d root=%d op=%s width=%d",
					seed, env.tr.Root.Name, env.p, env.tr.K(), env.root, env.op.Name, env.width)
				for _, tc := range sweepCases() {
					s := newSlots(env.p)
					if err := eng.run(env.tr, func(c hbsp.Ctx) error {
						return tc.run(c, env, s)
					}); err != nil {
						t.Errorf("seed=%d %s: run failed: %v", seed, tc.name, err)
						continue
					}
					tc.check(t, env, s)
				}
			})
		}
	}
}
