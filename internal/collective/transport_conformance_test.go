package collective

import (
	"errors"
	"fmt"
	"testing"

	"hbspk/internal/fabric"
	"hbspk/internal/hbsp"
	"hbspk/internal/model"
	"hbspk/internal/pvm"

	// Registers the "unix" and "tcp" wire transports so the conformance
	// matrix below picks them up from pvm.TransportFactories().
	_ "hbspk/internal/pvm/wiretrans"
)

// The cross-transport conformance suite: every collective property and
// every chaos fate that holds for the in-proc fast path must hold
// verbatim when the concurrent engine's messages ride a real wire
// (unix socket or TCP loopback). The matrix is parameterized over
// pvm.TransportFactories(), so a transport registered tomorrow is
// conformance-tested automatically.

// conformanceEngine builds a concurrent engine wired to one registered
// transport. A nil factory New is the in-proc fast path.
func conformanceEngine(tf pvm.TransportFactory, tr *model.Tree) *hbsp.Concurrent {
	eng := hbsp.NewConcurrent(tr)
	if tf.New != nil {
		eng.Transport = tf.New
	}
	return eng
}

// TestTransportConformanceSweep runs the full collective property sweep
// (random trees, random roots/ops/widths, sequential oracles) over
// every registered transport. Wire transports run fewer iterations —
// each engine run stands up a real socket pair — but the same oracle
// checks apply bit for bit. Failures lead with the seed.
func TestTransportConformanceSweep(t *testing.T) {
	const baseSeed = int64(0xFAB41C)
	for _, tf := range pvm.TransportFactories() {
		tf := tf
		iters := 3
		if tf.New != nil {
			iters = 2 // socket setup per engine run; keep the wire lanes lean
		}
		if testing.Short() {
			iters = 1
		}
		for it := 0; it < iters; it++ {
			seed := baseSeed + int64(it)*7919
			t.Run(fmt.Sprintf("%s/it%d", tf.Name, it), func(t *testing.T) {
				env := newSweepEnv(seed)
				t.Logf("seed=%d transport=%s tree=%s p=%d root=%d op=%s width=%d",
					seed, tf.Name, env.tr.Root.Name, env.p, env.root, env.op.Name, env.width)
				for _, tc := range sweepCases() {
					s := newSlots(env.p)
					eng := conformanceEngine(tf, env.tr)
					if _, err := eng.Run(func(c hbsp.Ctx) error {
						return tc.run(c, env, s)
					}); err != nil {
						t.Errorf("seed=%d transport=%s %s: run failed: %v", seed, tf.Name, tc.name, err)
						continue
					}
					tc.check(t, env, s)
				}
			})
		}
	}
}

// TestTransportConformanceChaosMatrix re-runs the chaos matrix — every
// fault-tolerant collective under every fault class — over every
// registered transport. The contract is the in-proc one: a faulted run
// ends in a correct survivor-set result or a typed error, never a hang,
// never wrong data. Chaos fates are applied at engine flush time, above
// the transport seam, so drop/dup/delay behave identically on a socket.
func TestTransportConformanceChaosMatrix(t *testing.T) {
	for _, tf := range pvm.TransportFactories() {
		tf := tf
		for _, plan := range matrixPlans {
			for _, op := range matrixOps {
				name := fmt.Sprintf("%s/%s/%s", tf.Name, plan.name, op.name)
				t.Run(name, func(t *testing.T) {
					o := newOutcomes()
					eng := conformanceEngine(tf, model.UCFTestbedN(matrixP))
					eng.Chaos = plan.plan
					_, runErr := eng.Run(op.prog(o))
					checkCell(t, op.name, plan.victims, o, runErr)
				})
			}
		}
	}
}

// TestTransportCrashOutcomeIdentical pins the typed-failure contract
// across transports: a chaos crash of p2 at superstep 1 must surface to
// the survivors as ErrPeerFailed naming the same pid at the same sync
// generation whether the messages moved in-proc or over a socket.
func TestTransportCrashOutcomeIdentical(t *testing.T) {
	prog := func(c hbsp.Ctx) error {
		for s := 0; s < 3; s++ {
			c.Charge(10)
			if err := hbsp.SyncAll(c, fmt.Sprintf("step%d", s)); err != nil {
				return err
			}
		}
		return nil
	}
	type verdict struct{ pid, step int }
	var base *verdict
	for _, tf := range pvm.TransportFactories() {
		tf := tf
		t.Run(tf.Name, func(t *testing.T) {
			eng := conformanceEngine(tf, model.UCFTestbedN(4))
			eng.Chaos = &fabric.ChaosPlan{Crashes: []fabric.Crash{{Pid: 2, AtStep: 1}}}
			_, err := eng.Run(prog)
			var pf *hbsp.ErrPeerFailed
			if !errors.As(err, &pf) {
				t.Fatalf("transport %s: run error = %v, want ErrPeerFailed", tf.Name, err)
			}
			got := verdict{pf.Pid, pf.Step}
			if base == nil {
				base = &got
				if got.pid != 2 || got.step != 1 {
					t.Fatalf("transport %s: failure = p%d at step %d, want p2 at step 1", tf.Name, got.pid, got.step)
				}
				return
			}
			if got != *base {
				t.Fatalf("transport %s: failure = p%d at step %d, but %s saw p%d at step %d",
					tf.Name, got.pid, got.step, pvm.TransportFactories()[0].Name, base.pid, base.step)
			}
		})
	}
}

// TestTransportVirtualFingerprintUnaffected proves the Virtual engine
// is bit-identical with wire transports registered and exercised: its
// RunSchedules fingerprints — a hash of every delivery stream — match
// before and after concurrent runs over each wire transport. The
// Virtual engine never touches the transport seam, and this pins that.
func TestTransportVirtualFingerprintUnaffected(t *testing.T) {
	tr := model.UCFTestbedN(4)
	prog := func(c hbsp.Ctx) error {
		pid, n := c.Pid(), c.NProcs()
		for s := 0; s < 3; s++ {
			if err := c.Send((pid+1+s)%n, s, []byte{byte(pid), byte(s), 0x7E}); err != nil {
				return err
			}
			if err := hbsp.SyncAll(c, fmt.Sprintf("fp%d", s)); err != nil {
				return err
			}
			if got := len(c.Moves()); got != 1 {
				return fmt.Errorf("p%d step %d: %d moves", pid, s, got)
			}
		}
		return nil
	}
	fingerprint := func() uint64 {
		set, err := hbsp.NewVirtual(tr, fabric.New(tr, fabric.PureModel())).RunSchedules(prog, 4, 99)
		if err != nil {
			t.Fatalf("RunSchedules: %v", err)
		}
		if !set.Agree() {
			t.Fatalf("schedule permutations diverged: %s", set.Diff())
		}
		return set.Runs[0].Fingerprint
	}
	want := fingerprint()
	for _, tf := range pvm.TransportFactories() {
		if tf.New == nil {
			continue
		}
		eng := conformanceEngine(tf, tr)
		if _, err := eng.Run(prog); err != nil {
			t.Fatalf("concurrent run over %s: %v", tf.Name, err)
		}
		if got := fingerprint(); got != want {
			t.Fatalf("virtual fingerprint drifted after %s run: %#x != %#x", tf.Name, got, want)
		}
	}
}
