package collective

import (
	"sort"
	"testing"

	"hbspk/internal/fabric"
	"hbspk/internal/hbsp"
	"hbspk/internal/model"
)

// Schedule exploration over every shipped collective: each is replayed
// under 8 seeded delivery-order permutations with the happens-before
// checker armed, and must fingerprint identically — the HBSP^k promise
// that a superstep's outcome is independent of message timing, enforced
// on the real algorithms.

const exploreP = 6

// saveMap commits a map result under the processor's Save key with a
// deterministic encoding.
func saveMap(c hbsp.Ctx, key string, m map[int][]byte) {
	pids := make([]int, 0, len(m))
	for pid := range m {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	f := newFrame()
	for _, pid := range pids {
		f.add(pid, m[pid])
	}
	c.Save(key, f.bytes())
}

func saveVec(c hbsp.Ctx, key string, v []int64) {
	if v != nil {
		c.Save(key, packVec(v))
	}
}

func exploreCases(tr *model.Tree) []struct {
	name string
	prog hbsp.Program
} {
	root := tr.Pid(tr.FastestLeaf())
	outgoing := func(c hbsp.Ctx) map[int][]byte {
		out := make(map[int][]byte, c.NProcs())
		for dst := 0; dst < c.NProcs(); dst++ {
			out[dst] = []byte{byte(c.Pid()), byte(dst), byte(c.Pid() * dst)}
		}
		return out
	}
	return []struct {
		name string
		prog hbsp.Program
	}{
		{"gather", func(c hbsp.Ctx) error {
			out, err := Gather(c, c.Tree().Root, root, payloadFor(c.Pid(), 8+c.Pid()))
			if err != nil {
				return err
			}
			if out != nil {
				saveMap(c, "result", out)
			}
			return nil
		}},
		{"gather-hier", func(c hbsp.Ctx) error {
			out, err := GatherHier(c, payloadFor(c.Pid(), 8))
			if err != nil {
				return err
			}
			if out != nil {
				saveMap(c, "result", out)
			}
			return nil
		}},
		{"bcast-one-phase", func(c hbsp.Ctx) error {
			out, err := BcastOnePhase(c, c.Tree().Root, root, payloadFor(root, 24))
			if err != nil {
				return err
			}
			c.Save("result", out)
			return nil
		}},
		{"bcast-two-phase", func(c hbsp.Ctx) error {
			data := payloadFor(root, 48)
			out, err := BcastTwoPhase(c, c.Tree().Root, root, data, EqualPieces(c, c.Tree().Root, len(data)))
			if err != nil {
				return err
			}
			c.Save("result", out)
			return nil
		}},
		{"bcast-hier", func(c hbsp.Ctx) error {
			out, err := BcastHier(c, payloadFor(root, 32), true)
			if err != nil {
				return err
			}
			c.Save("result", out)
			return nil
		}},
		{"bcast-binomial", func(c hbsp.Ctx) error {
			out, err := BcastBinomial(c, c.Tree().Root, root, payloadFor(root, 16))
			if err != nil {
				return err
			}
			c.Save("result", out)
			return nil
		}},
		{"scatter", func(c hbsp.Ctx) error {
			var pieces map[int][]byte
			if c.Pid() == root {
				pieces = make(map[int][]byte)
				for pid := 0; pid < c.NProcs(); pid++ {
					pieces[pid] = payloadFor(pid, 6)
				}
			}
			out, err := Scatter(c, c.Tree().Root, root, pieces)
			if err != nil {
				return err
			}
			c.Save("result", out)
			return nil
		}},
		{"allgather", func(c hbsp.Ctx) error {
			out, err := AllGather(c, c.Tree().Root, payloadFor(c.Pid(), 5))
			if err != nil {
				return err
			}
			saveMap(c, "result", out)
			return nil
		}},
		{"allgather-hier", func(c hbsp.Ctx) error {
			out, err := AllGatherHier(c, payloadFor(c.Pid(), 5))
			if err != nil {
				return err
			}
			saveMap(c, "result", out)
			return nil
		}},
		{"total-exchange", func(c hbsp.Ctx) error {
			out, err := TotalExchange(c, c.Tree().Root, outgoing(c))
			if err != nil {
				return err
			}
			saveMap(c, "result", out)
			return nil
		}},
		{"total-exchange-hier", func(c hbsp.Ctx) error {
			out, err := TotalExchangeHier(c, outgoing(c))
			if err != nil {
				return err
			}
			saveMap(c, "result", out)
			return nil
		}},
		{"reduce", func(c hbsp.Ctx) error {
			out, err := Reduce(c, c.Tree().Root, root, vecFor(c.Pid()), Sum)
			if err != nil {
				return err
			}
			saveVec(c, "result", out)
			return nil
		}},
		{"reduce-hier", func(c hbsp.Ctx) error {
			out, err := ReduceHier(c, vecFor(c.Pid()), Sum)
			if err != nil {
				return err
			}
			saveVec(c, "result", out)
			return nil
		}},
		{"allreduce", func(c hbsp.Ctx) error {
			out, err := AllReduce(c, vecFor(c.Pid()), Sum)
			if err != nil {
				return err
			}
			saveVec(c, "result", out)
			return nil
		}},
		{"scan", func(c hbsp.Ctx) error {
			out, err := Scan(c, c.Tree().Root, vecFor(c.Pid()), Sum)
			if err != nil {
				return err
			}
			saveVec(c, "result", out)
			return nil
		}},
		{"scan-hier", func(c hbsp.Ctx) error {
			out, err := ScanHier(c, vecFor(c.Pid()), Sum)
			if err != nil {
				return err
			}
			saveVec(c, "result", out)
			return nil
		}},
		{"reduce-scatter", func(c hbsp.Ctx) error {
			local := []int64{int64(c.Pid()), 10, 20, 30, 40, int64(c.Pid() * 2)}
			out, err := ReduceScatter(c, c.Tree().Root, local, EqualPieces(c, c.Tree().Root, len(local)), Sum)
			if err != nil {
				return err
			}
			saveVec(c, "result", out)
			return nil
		}},
	}
}

func TestCollectivesPassScheduleExploration(t *testing.T) {
	tr := model.UCFTestbedN(exploreP)
	for _, tc := range exploreCases(tr) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			eng := hbsp.NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
			eng.Verify = true
			set, err := eng.RunSchedules(tc.prog, 8, 1234)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range set.Runs {
				if r.Err != nil {
					t.Fatalf("perm %d: %v", r.Perm, r.Err)
				}
			}
			if !set.Agree() {
				t.Errorf("schedule-dependent result: %s", set.Diff())
			}
		})
	}
}

// Exploration composes with chaos: message fates hash message
// identities, not delivery order, so a faulted run must still be
// schedule-independent.
func TestExplorationUnderChaosAgrees(t *testing.T) {
	tr := model.UCFTestbedN(exploreP)
	root := tr.Pid(tr.FastestLeaf())
	eng := hbsp.NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
	eng.Chaos = &fabric.ChaosPlan{Seed: 99, Drop: 0.15, Duplicate: 0.1}
	prog := func(c hbsp.Ctx) error {
		out, err := Gather(c, c.Tree().Root, root, payloadFor(c.Pid(), 8))
		if err != nil {
			return err
		}
		if out != nil {
			saveMap(c, "result", out)
		}
		return nil
	}
	set, err := eng.RunSchedules(prog, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Agree() {
		t.Errorf("chaos-faulted gather became schedule-dependent: %s", set.Diff())
	}
}

func TestOrderRecorderCertifiesShippedOps(t *testing.T) {
	tr := model.UCFTestbedN(exploreP)
	root := tr.Pid(tr.FastestLeaf())
	for _, op := range []Op{Sum, Max, Min} {
		rec := NewOrderRecorder()
		audited := op.Recorded(rec)
		_, err := hbsp.RunVirtual(tr, fabric.PureModel(), func(c hbsp.Ctx) error {
			if _, err := Reduce(c, c.Tree().Root, root, vecFor(c.Pid()), audited); err != nil {
				return err
			}
			_, err := ReduceHier(c, vecFor(c.Pid()), audited)
			return err
		})
		if err != nil {
			t.Fatalf("%s: %v", op.Name, err)
		}
		if rec.Folds() == 0 {
			t.Fatalf("%s: recorder saw no folds", op.Name)
		}
		if err := rec.Check(op); err != nil {
			t.Errorf("%s: %v", op.Name, err)
		}
	}
}

func TestOrderRecorderFlagsOrderDependentOp(t *testing.T) {
	tr := model.UCFTestbedN(exploreP)
	root := tr.Pid(tr.FastestLeaf())
	// A plain subtraction fold is order-independent (acc - Σ operands);
	// doubling the accumulator first makes each operand's weight depend
	// on its position, a genuinely order-dependent fold.
	sub := Op{Name: "sub", Apply: func(a, b int64) int64 { return a*2 - b }, Cost: 0.05}
	rec := NewOrderRecorder()
	_, err := hbsp.RunVirtual(tr, fabric.PureModel(), func(c hbsp.Ctx) error {
		_, err := Reduce(c, c.Tree().Root, root, vecFor(c.Pid()), sub.Recorded(rec))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Check(sub); err == nil {
		t.Error("non-commutative fold passed the order audit")
	}
}
