// Package collective implements the paper's collective communication
// algorithms (§4) as HBSPlib programs: gather and one-to-all broadcast
// in their HBSP^1 (flat) and hierarchical forms, plus the wider suite
// described in the companion thesis — scatter, all-gather, reduce,
// all-reduce, scan, and total exchange.
//
// All operations are SPMD: every processor of the operation's scope
// calls the same function with its local data; results land on the
// processors the operation defines (the root for gather/reduce, everyone
// for broadcast/all-gather/...). The two design principles of §4.1 are
// baked in: coordinators are the fastest machines of their subtrees, and
// balanced variants move data in proportion to the c_{i,j} shares.
package collective

import (
	"fmt"
	"sort"

	"hbspk/internal/hbsp"
	"hbspk/internal/model"
	"hbspk/internal/pvm"
)

// participants returns the pids of the leaves under the scope, in pid
// order. The position of a pid in this slice is its participant index.
func participants(c hbsp.Ctx, scope *model.Machine) []int {
	leaves := scope.Leaves()
	pids := make([]int, len(leaves))
	for i, l := range leaves {
		pids[i] = c.Tree().Pid(l)
	}
	// On a freshly built tree Leaves() is left-to-right pid order, but a
	// barrier-time reorganization permutes leaf slots while keeping pids
	// stable — sort so participant indexes survive rebalancing.
	sort.Ints(pids)
	return pids
}

// indexOf returns the participant index of pid, or -1.
func indexOf(pids []int, pid int) int {
	for i, p := range pids {
		if p == pid {
			return i
		}
	}
	return -1
}

// framed accumulates (origin pid, piece) entries for one wire message,
// using the pvm typed buffer as the frame format.
type framed struct{ buf *pvm.Buffer }

func newFrame() *framed { return &framed{buf: pvm.NewBuffer()} }

func (f *framed) add(pid int, piece []byte) {
	f.buf.PackInt32(int32(pid))
	f.buf.PackBytes(piece)
}

func (f *framed) bytes() []byte { return f.buf.Bytes() }

// eachPiece parses a frame built by framed, calling fn per entry. Pieces
// alias the payload.
func eachPiece(payload []byte, fn func(pid int, piece []byte)) error {
	buf := pvm.Wrap(payload)
	for buf.Remaining() > 0 {
		pid, err := buf.UnpackInt32()
		if err != nil {
			return fmt.Errorf("collective: corrupt frame: %w", err)
		}
		piece, err := buf.UnpackBytes()
		if err != nil {
			return fmt.Errorf("collective: corrupt frame: %w", err)
		}
		fn(int(pid), piece)
	}
	return nil
}

// Dist describes per-participant piece sizes for the two-phase
// broadcast's first phase. EqualPieces and BalancedPieces construct the
// §5.1 policies.
type Dist []int

// EqualPieces splits n bytes evenly over the participants of the scope
// (c_j = 1/p), leftovers to the lowest indexes.
func EqualPieces(c hbsp.Ctx, scope *model.Machine, n int) Dist {
	p := len(scope.Leaves())
	d := make(Dist, p)
	q, r := n/p, n%p
	for i := range d {
		d[i] = q
		if i < r {
			d[i]++
		}
	}
	return d
}

// BalancedPieces splits n proportionally to the participants' c_{i,j}
// shares, renormalized within the scope; the rounding residue goes to
// the scope coordinator.
func BalancedPieces(c hbsp.Ctx, scope *model.Machine, n int) Dist {
	leaves := scope.Leaves()
	total := 0.0
	for _, l := range leaves {
		total += l.Share
	}
	d := make(Dist, len(leaves))
	assigned := 0
	for i, l := range leaves {
		d[i] = int(float64(n) * l.Share / total)
		assigned += d[i]
	}
	if rest := n - assigned; rest > 0 {
		co := scope.Coordinator()
		for i, l := range leaves {
			if l == co {
				d[i] += rest
				break
			}
		}
	}
	return d
}

// Total returns the distribution's byte sum.
func (d Dist) Total() int {
	n := 0
	for _, v := range d {
		n += v
	}
	return n
}

// cut slices data into len(d) pieces with sizes d. It panics if the
// sizes exceed the data; callers construct d from len(data).
func (d Dist) cut(data []byte) [][]byte {
	out := make([][]byte, len(d))
	off := 0
	for i, n := range d {
		out[i] = data[off : off+n]
		off += n
	}
	return out
}
