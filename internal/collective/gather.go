package collective

import (
	"fmt"

	"hbspk/internal/hbsp"
	"hbspk/internal/model"
)

const tagGather = 1

// Gather is the HBSP^1 gather of §4.2, run over the subtree of scope in
// a single super^i-step: every processor sends its local bytes to the
// processor with pid root; the root ends with every piece, keyed by
// origin pid. A processor never sends to itself (§5.2), so the root's
// own piece costs nothing. Non-root processors return nil.
func Gather(c hbsp.Ctx, scope *model.Machine, root int, local []byte) (map[int][]byte, error) {
	defer span(c, "gather")(len(local))
	if c.Pid() != root {
		if err := c.Send(root, tagGather, local); err != nil {
			return nil, err
		}
	}
	if err := c.Sync(scope, "gather"); err != nil {
		return nil, err
	}
	if c.Pid() != root {
		return nil, nil
	}
	out := map[int][]byte{root: local}
	for _, m := range c.Moves() {
		if m.Tag == tagGather {
			out[m.Src] = m.Payload
		}
	}
	return out, nil
}

// GatherHier is the hierarchical gather of §4.3 generalized to any k:
// level by level, the coordinator of every cluster collects its
// subtree's pieces (sibling clusters run their super^i-steps
// concurrently), until the machine's fastest processor — the root
// coordinator — holds all pieces. Only that processor returns a non-nil
// map.
func GatherHier(c hbsp.Ctx, local []byte) (map[int][]byte, error) {
	defer span(c, "gather-hier")(len(local))
	t := c.Tree()
	// accumulated holds the pieces this processor currently carries.
	accumulated := map[int][]byte{c.Pid(): local}

	for lvl := 1; lvl <= t.K(); lvl++ {
		scope := enclosingScope(t, c.Self(), lvl)
		if scope == nil {
			// This processor's chain skips the level (a childless
			// machine attached above level lvl-1); it participates in
			// no super^lvl-step this round.
			continue
		}
		rootPid := t.Pid(scope.Coordinator())
		if c.Pid() != rootPid && len(accumulated) > 0 {
			f := newFrame()
			for _, piece := range sortedPieces(accumulated) {
				f.add(piece.pid, piece.data)
			}
			if err := c.Send(rootPid, tagGather, f.bytes()); err != nil {
				return nil, err
			}
			accumulated = map[int][]byte{}
		}
		if err := c.Sync(scope, fmt.Sprintf("gather^%d", lvl)); err != nil {
			return nil, err
		}
		if c.Pid() == rootPid {
			for _, m := range c.Moves() {
				if m.Tag != tagGather {
					continue
				}
				if err := eachPiece(m.Payload, func(pid int, piece []byte) {
					accumulated[pid] = piece
				}); err != nil {
					return nil, err
				}
			}
		}
	}
	if c.Self() == t.FastestLeaf() {
		return accumulated, nil
	}
	return nil, nil
}

// enclosingScope returns the ancestor cluster of the leaf whose level is
// exactly lvl, or nil when the chain skips it.
func enclosingScope(t *model.Tree, leaf *model.Machine, lvl int) *model.Machine {
	m := t.ScopeAt(leaf, lvl)
	if m == nil || m.IsLeaf() {
		return nil
	}
	return m
}

type pidPiece struct {
	pid  int
	data []byte
}

// sortedPieces returns map entries in pid order for deterministic wire
// layout.
func sortedPieces(m map[int][]byte) []pidPiece {
	out := make([]pidPiece, 0, len(m))
	for pid, d := range m {
		out = append(out, pidPiece{pid, d})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].pid > out[j].pid; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
