package collective

import (
	"fmt"

	"hbspk/internal/hbsp"
	"hbspk/internal/model"
)

const tagXHier = 11

// TotalExchangeHier is the hierarchical all-to-all personalized
// exchange: a piece climbs through cluster coordinators until the
// current super^i-step's scope covers its destination, then crosses
// directly. Compared with the flat exchange this concentrates the
// expensive cross-cluster traffic on the coordinators — §4.1's "faster
// machines should be involved in the computation more often" — so the
// slow leaves of each cluster pay only one intra-cluster hop while the
// coordinators shoulder the packing and the wide-area messages (with
// message combining or per-message overheads this also collapses p·p
// cross-cluster messages into one bundle per cluster pair).
//
// Every participant supplies outgoing[dst] for each destination pid and
// receives incoming[src] keyed by origin.
func TotalExchangeHier(c hbsp.Ctx, outgoing map[int][]byte) (map[int][]byte, error) {
	defer span(c, "total-exchange-hier")(mapBytes(outgoing))
	t := c.Tree()
	incoming := map[int][]byte{}

	type envelope struct {
		src, dst int
		data     []byte
	}
	var carrying []envelope
	for _, pp := range sortedPieces(outgoing) {
		if pp.pid == c.Pid() {
			incoming[c.Pid()] = pp.data
			continue
		}
		carrying = append(carrying, envelope{src: c.Pid(), dst: pp.pid, data: pp.data})
	}

	inSubtree := func(scope *model.Machine, pid int) bool {
		for m := t.Leaf(pid); m != nil; m = m.Parent() {
			if m == scope {
				return true
			}
		}
		return false
	}
	packEnvelopes := func(es []envelope) []byte {
		f := newFrame()
		for _, e := range es {
			inner := newFrame()
			inner.add(e.dst, e.data)
			f.add(e.src, inner.bytes())
		}
		return f.bytes()
	}
	parseEnvelopes := func(wire []byte) ([]envelope, error) {
		var out []envelope
		var perr error
		err := eachPiece(wire, func(src int, innerWire []byte) {
			if e := eachPiece(innerWire, func(dst int, data []byte) {
				out = append(out, envelope{src: src, dst: dst, data: data})
			}); e != nil {
				perr = e
			}
		})
		if err != nil {
			return nil, err
		}
		return out, perr
	}

	for lvl := 1; lvl <= t.K(); lvl++ {
		scope := enclosingScope(t, c.Self(), lvl)
		if scope == nil {
			continue
		}
		rootPid := t.Pid(scope.Coordinator())
		// Partition what we carry: deliverable within this scope goes
		// directly to its destination; the rest climbs to the scope
		// coordinator (unless we are the coordinator, which keeps it
		// for the next level).
		byDst := map[int][]envelope{}
		var climbing, keep []envelope
		for _, e := range carrying {
			switch {
			case inSubtree(scope, e.dst):
				byDst[e.dst] = append(byDst[e.dst], e)
			case c.Pid() != rootPid:
				climbing = append(climbing, e)
			default:
				keep = append(keep, e)
			}
		}
		carrying = keep
		for _, g := range sortedEnvelopeGroups(byDst) {
			if err := c.Send(g.pid, tagXHier, packEnvelopes(g.envs)); err != nil {
				return nil, err
			}
		}
		if len(climbing) > 0 {
			if err := c.Send(rootPid, tagXHier, packEnvelopes(climbing)); err != nil {
				return nil, err
			}
		}
		if err := c.Sync(scope, fmt.Sprintf("x-hier^%d", lvl)); err != nil {
			return nil, err
		}
		for _, m := range c.Moves() {
			if m.Tag != tagXHier {
				continue
			}
			es, err := parseEnvelopes(m.Payload)
			if err != nil {
				return nil, err
			}
			for _, e := range es {
				if e.dst == c.Pid() {
					incoming[e.src] = e.data
				} else {
					carrying = append(carrying, e)
				}
			}
		}
	}
	if len(carrying) > 0 {
		e := carrying[0]
		return nil, fmt.Errorf("collective: envelope %d→%d stranded at %d", e.src, e.dst, c.Pid())
	}
	return incoming, nil
}

// sortedEnvelopeGroups orders per-destination groups by pid so sends are
// deterministic.
func sortedEnvelopeGroups[E any](m map[int][]E) []struct {
	pid  int
	envs []E
} {
	out := make([]struct {
		pid  int
		envs []E
	}, 0, len(m))
	for pid, envs := range m {
		out = append(out, struct {
			pid  int
			envs []E
		}{pid, envs})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].pid > out[j].pid; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
