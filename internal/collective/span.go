package collective

import "hbspk/internal/hbsp"

// span opens a collective span on the Ctx's run recorder and returns
// the closer. The intended use is a single line at the top of a
// collective entry point:
//
//	defer span(c, "gather")(len(local))
//
// which captures the start time at entry and records the span at
// return with the payload size the call handled. When observability is
// off (or the Ctx is a test double) the closer is a no-op.
func span(c hbsp.Ctx, name string) func(bytes int) {
	rec := hbsp.RecorderOf(c)
	if rec == nil {
		return func(int) {}
	}
	start := hbsp.NowOf(c)
	pid := c.Pid()
	return func(bytes int) {
		rec.Collective(name, pid, start, hbsp.NowOf(c), int64(bytes))
	}
}

// mapBytes sums the payload sizes of a keyed piece map (span sizing).
func mapBytes(m map[int][]byte) int {
	n := 0
	for _, b := range m {
		n += len(b)
	}
	return n
}
