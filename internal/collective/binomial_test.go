package collective

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hbspk/internal/cost"
	"hbspk/internal/fabric"
	"hbspk/internal/hbsp"
	"hbspk/internal/model"
)

func TestBcastBinomialEveryoneHasData(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 10} {
		tr := model.UCFTestbedN(p)
		data := payloadFor(42, 4096)
		for _, root := range []int{0, p - 1, p / 2} {
			results := make([][]byte, p)
			runPure(t, tr, func(c hbsp.Ctx) error {
				var in []byte
				if c.Pid() == root {
					in = data
				}
				out, err := BcastBinomial(c, c.Tree().Root, root, in)
				if err != nil {
					return err
				}
				results[c.Pid()] = out
				return nil
			})
			for pid, r := range results {
				if !bytes.Equal(r, data) {
					t.Errorf("p=%d root=%d: pid %d wrong data (%d bytes)", p, root, pid, len(r))
				}
			}
		}
	}
}

func TestBcastBinomialStepCount(t *testing.T) {
	tr := model.UCFTestbedN(10)
	root := tr.Pid(tr.FastestLeaf())
	rep := func() int {
		r, err := hbsp.RunVirtual(tr, fabric.PureModel(), func(c hbsp.Ctx) error {
			var in []byte
			if c.Pid() == root {
				in = make([]byte, 100)
			}
			_, err := BcastBinomial(c, c.Tree().Root, root, in)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.Supersteps()
	}()
	if want := 4; rep != want { // ceil(log2 10)
		t.Errorf("steps = %d, want %d", rep, want)
	}
}

func TestBcastBinomialCostMatchesAnalytic(t *testing.T) {
	tr := model.UCFTestbedN(8)
	root := tr.Pid(tr.FastestLeaf())
	n := 50000
	rep, err := hbsp.RunVirtual(tr, fabric.PureModel(), func(c hbsp.Ctx) error {
		var in []byte
		if c.Pid() == root {
			in = make([]byte, n)
		}
		_, err := BcastBinomial(c, c.Tree().Root, root, in)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	want := cost.BcastBinomial(tr, root, n).Total()
	if math.Abs(rep.Total-want) > 1e-6 {
		t.Errorf("simulated %v != predicted %v", rep.Total, want)
	}
}

func TestBinomialVsOneAndTwoPhaseRegimes(t *testing.T) {
	// Small n: binomial's log p messages beat one-phase's p−1 fan-out
	// only when L doesn't dominate; large n: two-phase's bounded byte
	// movement wins over binomial's log p full copies.
	tr := model.UCFTestbedN(10)
	root := tr.Pid(tr.FastestLeaf())
	big := 1000000
	bin := cost.BcastBinomial(tr, root, big).Total()
	two := cost.BcastTwoPhaseFlat(tr, root, cost.EqualDist(tr, big)).Total()
	one := cost.BcastOnePhaseFlat(tr, root, big).Total()
	if two >= bin {
		t.Errorf("large n: two-phase %v should beat binomial %v", two, bin)
	}
	if bin >= one {
		t.Errorf("large n: binomial %v should beat one-phase %v", bin, one)
	}
}

// Property: the binomial broadcast delivers the exact payload for any
// machine size and root.
func TestPropertyBinomialComplete(t *testing.T) {
	f := func(seed int64, pRaw, rootRaw uint8) bool {
		p := int(pRaw%10) + 1
		root := int(rootRaw) % p
		tr := model.UCFTestbedN(p)
		data := payloadFor(int(seed%251), 100)
		ok := true
		_, err := hbsp.RunVirtual(tr, fabric.PureModel(), func(c hbsp.Ctx) error {
			var in []byte
			if c.Pid() == root {
				in = data
			}
			out, err := BcastBinomial(c, c.Tree().Root, root, in)
			if err != nil {
				return err
			}
			if !bytes.Equal(out, data) {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}
