package collective

import (
	"fmt"

	"hbspk/internal/hbsp"
	"hbspk/internal/model"
)

// Scatter is the inverse of Gather over the scope's subtree: the
// processor with pid root holds one piece per participant (keyed by
// pid) and delivers each in a single super^i-step. Every participant
// returns its own piece.
func Scatter(c hbsp.Ctx, scope *model.Machine, root int, pieces map[int][]byte) ([]byte, error) {
	defer span(c, "scatter")(mapBytes(pieces))
	var mine []byte
	if c.Pid() == root {
		for _, pp := range sortedPieces(pieces) {
			if pp.pid == root {
				mine = pp.data
				continue
			}
			if err := c.Send(pp.pid, tagScatter, pp.data); err != nil {
				return nil, err
			}
		}
	}
	if err := c.Sync(scope, "scatter"); err != nil {
		return nil, err
	}
	if c.Pid() == root {
		return mine, nil
	}
	for _, m := range c.Moves() {
		if m.Tag == tagScatter && m.Src == root {
			return m.Payload, nil
		}
	}
	return nil, fmt.Errorf("collective: processor %d received no scatter piece", c.Pid())
}

// ScatterHier distributes per-leaf pieces from the machine's fastest
// processor down the tree, level by level: each scope coordinator
// forwards to every child coordinator the pieces destined for that
// child's subtree. Only the fastest processor may supply pieces; every
// processor returns its own piece.
func ScatterHier(c hbsp.Ctx, pieces map[int][]byte) ([]byte, error) {
	defer span(c, "scatter-hier")(mapBytes(pieces))
	t := c.Tree()
	if t.K() == 0 {
		return pieces[c.Pid()], nil
	}
	var carrying map[int][]byte
	if c.Self() == t.FastestLeaf() {
		carrying = pieces
	}
	for lvl := t.K(); lvl >= 1; lvl-- {
		scope := enclosingScope(t, c.Self(), lvl)
		if scope == nil {
			continue
		}
		rootPid := t.Pid(scope.Coordinator())
		if c.Pid() == rootPid {
			for _, child := range scope.Children {
				dst := t.Pid(child.Coordinator())
				if dst == rootPid {
					continue
				}
				f := newFrame()
				for _, l := range child.Leaves() {
					pid := t.Pid(l)
					if piece, ok := carrying[pid]; ok {
						f.add(pid, piece)
						delete(carrying, pid)
					}
				}
				if err := c.Send(dst, tagScatter, f.bytes()); err != nil {
					return nil, err
				}
			}
		}
		if err := c.Sync(scope, fmt.Sprintf("scatter^%d", lvl)); err != nil {
			return nil, err
		}
		if c.Pid() != rootPid {
			for _, m := range c.Moves() {
				if m.Tag != tagScatter {
					continue
				}
				if carrying == nil {
					carrying = map[int][]byte{}
				}
				if err := eachPiece(m.Payload, func(pid int, piece []byte) {
					carrying[pid] = piece
				}); err != nil {
					return nil, err
				}
			}
		}
	}
	return carrying[c.Pid()], nil
}

// AllGather runs over the scope's subtree in one super^i-step: every
// participant sends its local bytes to every other, and each returns the
// full set keyed by origin pid (the second phase of the two-phase
// broadcast, with arbitrary piece sizes).
func AllGather(c hbsp.Ctx, scope *model.Machine, local []byte) (map[int][]byte, error) {
	defer span(c, "all-gather")(len(local))
	pids := participants(c, scope)
	for _, pid := range pids {
		if pid == c.Pid() {
			continue
		}
		if err := c.Send(pid, tagExchange, local); err != nil {
			return nil, err
		}
	}
	if err := c.Sync(scope, "allgather"); err != nil {
		return nil, err
	}
	out := map[int][]byte{c.Pid(): local}
	for _, m := range c.Moves() {
		if m.Tag == tagExchange {
			out[m.Src] = m.Payload
		}
	}
	return out, nil
}

// TotalExchange is the all-to-all personalized exchange over the scope's
// subtree: every participant holds one piece per destination pid and
// receives one piece per origin pid, in one super^i-step.
func TotalExchange(c hbsp.Ctx, scope *model.Machine, outgoing map[int][]byte) (map[int][]byte, error) {
	defer span(c, "total-exchange")(mapBytes(outgoing))
	for _, pp := range sortedPieces(outgoing) {
		if pp.pid == c.Pid() {
			continue
		}
		if err := c.Send(pp.pid, tagExchange, pp.data); err != nil {
			return nil, err
		}
	}
	if err := c.Sync(scope, "total-exchange"); err != nil {
		return nil, err
	}
	in := map[int][]byte{}
	if own, ok := outgoing[c.Pid()]; ok {
		in[c.Pid()] = own
	}
	for _, m := range c.Moves() {
		if m.Tag == tagExchange {
			in[m.Src] = m.Payload
		}
	}
	return in, nil
}
