package collective

import (
	"errors"
	"fmt"

	"hbspk/internal/hbsp"
	"hbspk/internal/model"
)

// Fault-tolerant collectives: the degraded-mode versions of gather,
// broadcast and reduce. On a member's crash the operation's scope
// shrinks — survivors re-elect the coordinator (the fastest *live*
// machine, the same fastest-in-subtree rule as Coordinator), and the
// operation reruns over the survivor set until it completes correctly
// or the data is provably lost.
//
// The protocol leans on the engines' consistency invariant: every live
// member of a scope observes a member's death as ErrPeerFailed at the
// same per-scope sync generation. That makes "a crash happened, restart
// the epoch" a decision all survivors reach together, with no extra
// agreement rounds. Message loss, by contrast, is only visible at the
// receiver, so each epoch runs a FIXED number of rounds and ends with a
// verdict round: the live coordinator broadcasts success/failure
// (redundantly, several copies per member) and everyone retries or
// returns together. A processor that loses every copy of the verdict
// cannot tell which way the epoch went; it returns a local, terminal
// error wrapping hbsp.ErrTimeout rather than guessing — the one outcome
// that is not survivor-consistent, and the price of message loss
// without acknowledgments.
//
// Every message is tagged with (operation, session call count, epoch),
// so deliveries delayed across an epoch restart — or across operations
// — are discarded instead of corrupting a later result.

// ErrLost reports that a fault-tolerant operation's data died with its
// holders: the broadcast source crashed before any survivor received a
// copy. This verdict is coordinator-issued, so all survivors observe it
// together.
var ErrLost = errors.New("collective: data lost with its failed holders")

// verdict values of the epoch-ending round.
const (
	verdictFail = iota // epoch incomplete (message loss): retry
	verdictOK          // epoch complete: return
	verdictLost        // source data unrecoverable: ErrLost
)

// verdictCopies is the redundancy of the verdict round: a verdict
// survives unless every copy is dropped.
const verdictCopies = 4

// ft op ids for tag scoping.
const (
	ftOpData = iota
	ftOpStatus
	ftOpVerdict
)

// ftTag scopes a message to (op, session call, epoch attempt) so stale
// deliveries from aborted epochs or earlier operations are filtered.
// Attempts and calls wrap in 12 bits, far beyond any real run.
func ftTag(op, call, attempt int) int {
	return 1<<30 | op<<24 | (call&0xFFF)<<12 | attempt&0xFFF
}

// maxEpochs bounds retries: one epoch per possible crash plus headroom
// for message-loss rounds. Deterministically identical on every member.
func maxEpochs(members int) int { return members + 8 }

// FT is one processor's handle on a sequence of fault-tolerant
// collectives over a fixed scope. All members of the scope must create
// their session at the same point of the program and issue the same
// operations in the same order (the SPMD discipline the plain
// collectives already require); the session counts calls to keep every
// operation's messages tagged apart.
type FT struct {
	c     hbsp.Ctx
	scope *model.Machine
	calls int
}

// NewFT opens a fault-tolerant collective session over the scope.
func NewFT(c hbsp.Ctx, scope *model.Machine) *FT {
	return &FT{c: c, scope: scope}
}

// Live returns the scope members this processor knows to be alive, in
// pid order: the scope's leaves intersected with the active-membership
// view (Ctx.Members — a dormant leaf awaiting its join cut is not yet a
// participant) minus the failed set. After any fault-tolerant operation
// returns — normally or with a survivor-consistent error — all live
// members agree on it.
func (f *FT) Live() []int {
	dead := make(map[int]bool)
	for _, pid := range f.c.Failed() {
		dead[pid] = true
	}
	active := make(map[int]bool)
	for _, pid := range f.c.Members() {
		active[pid] = true
	}
	var out []int
	for _, pid := range participants(f.c, f.scope) {
		if active[pid] && !dead[pid] {
			out = append(out, pid)
		}
	}
	return out
}

// Coordinator returns the pid of the scope's live coordinator: the
// fastest machine among the survivors, re-elected by the same
// fastest-in-subtree rule that picks the failure-free coordinator.
func (f *FT) Coordinator() int {
	dead := make(map[int]bool)
	for _, pid := range f.c.Failed() {
		dead[pid] = true
	}
	active := make(map[int]bool)
	for _, pid := range f.c.Members() {
		active[pid] = true
	}
	m := f.scope.CoordinatorAmong(func(l *model.Machine) bool {
		pid := f.c.Tree().Pid(l)
		return active[pid] && !dead[pid]
	})
	if m == nil {
		return -1
	}
	return f.c.Tree().Pid(m)
}

// LiveShares returns the balanced-workload fractions c_{i,j}
// renormalized over the scope's survivors: each live member's share
// divided by the live total, so shares again sum to 1 and degraded-mode
// work partitioning stays balanced.
func LiveShares(c hbsp.Ctx, scope *model.Machine, live []int) map[int]float64 {
	alive := make(map[int]bool, len(live))
	for _, pid := range live {
		alive[pid] = true
	}
	total := 0.0
	for _, l := range scope.Leaves() {
		if alive[c.Tree().Pid(l)] {
			total += l.Share
		}
	}
	out := make(map[int]float64, len(live))
	if total <= 0 {
		return out
	}
	for _, l := range scope.Leaves() {
		if pid := c.Tree().Pid(l); alive[pid] {
			out[pid] = l.Share / total
		}
	}
	return out
}

// sync runs one round's barrier. retry=true means a member died and
// every survivor is restarting the epoch together (the engines deliver
// ErrPeerFailed to all live members at the same generation); a non-nil
// err with retry=false is fatal to the operation.
func (f *FT) sync(label string) (retry bool, err error) {
	err = f.c.Sync(f.scope, label)
	var pf *hbsp.ErrPeerFailed
	if errors.As(err, &pf) {
		return true, nil
	}
	// A join notice restarts the epoch the same way a failure does:
	// every old member observes ErrPeerJoined at the same generation and
	// retries together. (The newcomer itself cannot enter a session
	// mid-flight — FT message tags are session-call counters — so
	// join-heavy programs open fresh sessions after a membership cut.)
	var pj *hbsp.ErrPeerJoined
	if errors.As(err, &pj) {
		return true, nil
	}
	return false, err
}

// moves returns the payloads delivered with the given tag, keyed by
// source, first copy winning (chaos may duplicate messages).
func (f *FT) moves(tag int) map[int][]byte {
	out := make(map[int][]byte)
	for _, m := range f.c.Moves() {
		if m.Tag != tag {
			continue
		}
		if _, dup := out[m.Src]; !dup {
			out[m.Src] = m.Payload
		}
	}
	return out
}

// sendVerdict floods the verdict to every live member but the
// coordinator, verdictCopies times each.
func (f *FT) sendVerdict(tag int, live []int, v byte) error {
	for _, pid := range live {
		if pid == f.c.Pid() {
			continue
		}
		for i := 0; i < verdictCopies; i++ {
			if err := f.c.Send(pid, tag, []byte{v}); err != nil {
				return err
			}
		}
	}
	return nil
}

// readVerdict extracts the coordinator's verdict, or returns the
// terminal verdict-lost error when every copy was dropped.
func (f *FT) readVerdict(tag, coord int) (byte, error) {
	for _, m := range f.c.Moves() {
		if m.Tag == tag && m.Src == coord && len(m.Payload) == 1 {
			return m.Payload[0], nil
		}
	}
	return 0, fmt.Errorf("collective: p%d lost every verdict copy from p%d: %w",
		f.c.Pid(), coord, hbsp.ErrTimeout)
}

// Gather collects every live member's bytes at the live coordinator.
// Each epoch is two rounds: data to the coordinator, then the verdict.
// The coordinator returns the pieces keyed by origin pid; everyone
// returns the coordinator's pid. A member that died after an epoch
// completed may still be represented in an earlier successful result —
// the guarantee is that every returned map holds a correct piece from
// every member live at return time, never corrupted or partial data.
func (f *FT) Gather(local []byte) (map[int][]byte, int, error) {
	call := f.calls
	f.calls++
	limit := maxEpochs(len(f.scope.Leaves()))
	for attempt := 0; attempt < limit; attempt++ {
		live := f.Live()
		root := f.Coordinator()
		dataTag := ftTag(ftOpData, call, attempt)
		verdictTag := ftTag(ftOpVerdict, call, attempt)

		if f.c.Pid() != root {
			if err := f.c.Send(root, dataTag, local); err != nil {
				return nil, -1, err
			}
		}
		if retry, err := f.sync("ft-gather data"); err != nil {
			return nil, -1, err
		} else if retry {
			continue
		}

		var pieces map[int][]byte
		if f.c.Pid() == root {
			pieces = f.moves(dataTag)
			pieces[root] = local
			v := byte(verdictOK)
			for _, pid := range live {
				if _, got := pieces[pid]; !got {
					v = verdictFail
					break
				}
			}
			if err := f.sendVerdict(verdictTag, live, v); err != nil {
				return nil, -1, err
			}
			if retry, err := f.sync("ft-gather verdict"); err != nil {
				return nil, -1, err
			} else if retry {
				continue
			}
			if v == verdictOK {
				return pieces, root, nil
			}
			continue
		}
		if retry, err := f.sync("ft-gather verdict"); err != nil {
			return nil, -1, err
		} else if retry {
			continue
		}
		v, err := f.readVerdict(verdictTag, root)
		if err != nil {
			return nil, -1, err
		}
		if v == verdictOK {
			return nil, root, nil
		}
	}
	return nil, -1, fmt.Errorf("collective: ft-gather gave up after %d epochs", limit)
}

// Bcast distributes root's data to every live member and returns it.
// Each epoch is three rounds: every current holder floods the data to
// the live non-holders (epoch 0: only the source holds it), every
// member reports holder status to the live coordinator, and the
// coordinator issues the verdict. If the source crashes before any
// survivor received a copy, the data is unrecoverable and every
// survivor returns ErrLost together.
func (f *FT) Bcast(root int, data []byte) ([]byte, error) {
	call := f.calls
	f.calls++
	have := data
	if f.c.Pid() != root {
		have = nil
	}
	limit := maxEpochs(len(f.scope.Leaves()))
	for attempt := 0; attempt < limit; attempt++ {
		live := f.Live()
		coord := f.Coordinator()
		dataTag := ftTag(ftOpData, call, attempt)
		statusTag := ftTag(ftOpStatus, call, attempt)
		verdictTag := ftTag(ftOpVerdict, call, attempt)

		// Round 1: holders flood.
		if have != nil {
			for _, pid := range live {
				if pid != f.c.Pid() {
					if err := f.c.Send(pid, dataTag, have); err != nil {
						return nil, err
					}
				}
			}
		}
		if retry, err := f.sync("ft-bcast data"); err != nil {
			return nil, err
		} else if retry {
			continue
		}
		if have == nil {
			for _, p := range f.moves(dataTag) {
				have = p
				break
			}
		}

		// Round 2: holder status to the coordinator.
		status := byte(0)
		if have != nil {
			status = 1
		}
		if f.c.Pid() != coord {
			for i := 0; i < verdictCopies; i++ {
				if err := f.c.Send(coord, statusTag, []byte{status}); err != nil {
					return nil, err
				}
			}
		}
		if retry, err := f.sync("ft-bcast status"); err != nil {
			return nil, err
		} else if retry {
			continue
		}

		// Round 3: verdict. A missing status report counts as
		// not-holding — at worst one spare epoch, never a wrong verdict.
		var v byte
		if f.c.Pid() == coord {
			holders, total := 0, 0
			if status == 1 {
				holders++
			}
			reported := f.moves(statusTag)
			for _, pid := range live {
				if pid == coord {
					total++
					continue
				}
				total++
				if s, ok := reported[pid]; ok && len(s) == 1 && s[0] == 1 {
					holders++
				}
			}
			switch {
			case holders == total:
				v = verdictOK
			case holders == 0:
				v = verdictLost
			default:
				v = verdictFail
			}
			if err := f.sendVerdict(verdictTag, live, v); err != nil {
				return nil, err
			}
		}
		if retry, err := f.sync("ft-bcast verdict"); err != nil {
			return nil, err
		} else if retry {
			continue
		}
		if f.c.Pid() != coord {
			var err error
			if v, err = f.readVerdict(verdictTag, coord); err != nil {
				return nil, err
			}
		}
		switch v {
		case verdictOK:
			return have, nil
		case verdictLost:
			return nil, fmt.Errorf("%w (source p%d)", ErrLost, root)
		}
	}
	return nil, fmt.Errorf("collective: ft-bcast gave up after %d epochs", limit)
}

// Reduce folds every live member's vector with op at the live
// coordinator, which returns the result (others return nil) along with
// the coordinator's pid. Contributions are deduplicated by origin, and
// the coordinator only folds — and only reports success — when every
// live member's vector arrived, so a returned result is exactly the
// fold over the members live at return time (plus, after a late crash,
// possibly the victim's correct pre-crash contribution from an epoch
// that had already completed: shrink never corrupts, it only re-scopes).
func (f *FT) Reduce(local []int64, op Op) ([]int64, int, error) {
	call := f.calls
	f.calls++
	limit := maxEpochs(len(f.scope.Leaves()))
	for attempt := 0; attempt < limit; attempt++ {
		live := f.Live()
		root := f.Coordinator()
		dataTag := ftTag(ftOpData, call, attempt)
		verdictTag := ftTag(ftOpVerdict, call, attempt)

		if f.c.Pid() != root {
			if err := f.c.Send(root, dataTag, packVec(local)); err != nil {
				return nil, -1, err
			}
		}
		if retry, err := f.sync("ft-reduce data"); err != nil {
			return nil, -1, err
		} else if retry {
			continue
		}

		var acc []int64
		if f.c.Pid() == root {
			got := f.moves(dataTag)
			v := byte(verdictOK)
			for _, pid := range live {
				if pid == root {
					continue
				}
				if _, ok := got[pid]; !ok {
					v = verdictFail
					break
				}
			}
			if v == verdictOK {
				acc = append([]int64(nil), local...)
				for _, pid := range live {
					if pid == root {
						continue
					}
					vec, err := unpackVec(got[pid])
					if err != nil {
						return nil, -1, err
					}
					if err := op.combine(f.c, acc, vec); err != nil {
						return nil, -1, err
					}
				}
			}
			if err := f.sendVerdict(verdictTag, live, v); err != nil {
				return nil, -1, err
			}
			if retry, err := f.sync("ft-reduce verdict"); err != nil {
				return nil, -1, err
			} else if retry {
				continue
			}
			if v == verdictOK {
				return acc, root, nil
			}
			continue
		}
		if retry, err := f.sync("ft-reduce verdict"); err != nil {
			return nil, -1, err
		} else if retry {
			continue
		}
		v, err := f.readVerdict(verdictTag, root)
		if err != nil {
			return nil, -1, err
		}
		if v == verdictOK {
			return nil, root, nil
		}
	}
	return nil, -1, fmt.Errorf("collective: ft-reduce gave up after %d epochs", limit)
}

// AllReduce is Reduce at the live coordinator followed by Bcast of the
// result: every live member returns the fold over the survivor set. If
// the coordinator dies between the phases and takes the only copy of
// the result with it, every survivor observes ErrLost together and the
// whole operation restarts over the new survivor set — the reduction
// inputs still exist on the members, so nothing is permanently lost.
func (f *FT) AllReduce(local []int64, op Op) ([]int64, error) {
	const restarts = 4
	for i := 0; i < restarts; i++ {
		red, root, err := f.Reduce(local, op)
		if err != nil {
			return nil, err
		}
		var wire []byte
		if f.c.Pid() == root {
			wire = packVec(red)
		}
		out, err := f.Bcast(root, wire)
		if errors.Is(err, ErrLost) {
			continue
		}
		if err != nil {
			return nil, err
		}
		return unpackVec(out)
	}
	return nil, fmt.Errorf("collective: ft-allreduce: coordinator kept dying through %d restarts", restarts)
}
