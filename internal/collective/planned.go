package collective

import (
	"fmt"

	"hbspk/internal/hbsp"
	"hbspk/internal/model"
	"hbspk/internal/plan"
)

// Planner-dispatched collectives (DESIGN.md §5.9): each Planned* entry
// point asks the auto-tuning planner for the cheapest variant of its
// family on the current tree and payload bucket, dispatches it, and —
// on the observing processor — feeds the realized span back for online
// refinement. The cached hit path adds only a fingerprint read, one
// lock-free cache load and a switch over the variant name to the direct
// call.
//
// SPMD contract: all processors of the machine call the same Planned*
// entry point with the same n — the collective's TOTAL payload in
// bytes, which every processor must know (payload-carrying arguments
// such as a broadcast's data live only at the supplying leaf, so the
// size travels as an explicit uniform argument). The planner guarantees
// all processors resolve the same variant, so the superstep structures
// stay aligned. Conventions match the cost table: the scope is the full
// tree and the data-supplying root is the fastest leaf.
//
// The feedback observer is pid 0 (the minimum pid of the full-tree
// scope): it measures the collective on the engine clock via hbsp.NowOf
// and hands measured/predicted to Planner.Observe. On the deterministic
// virtual engine the measurement — and therefore the whole refinement
// trajectory — is a pure function of the seed.

// The planner is the engines' plan hook: engines commit refinements and
// invalidate decisions through the same object the dispatchers consult.
var _ hbsp.PlanHook = (*plan.Planner)(nil)

// layoutIsPidOrder reports whether the tree's leaf slot (depth-first
// layout) order coincides with pid order. True on every freshly built
// tree; a reorganization that permutes leaves across slots breaks it.
// The predicate is a pure function of the tree state the fingerprint
// hashes, so every processor of an SPMD program agrees on it.
func layoutIsPidOrder(t *model.Tree) bool {
	next := 0
	ok := true
	t.Root.Walk(func(m *model.Machine) {
		if !m.IsLeaf() {
			return
		}
		if t.Pid(m) != next {
			ok = false
		}
		next++
	})
	return ok
}

// planDecide resolves the planner decision for family at n total bytes
// and arms the feedback observer. The returned done closure must be
// called with the dispatched variant's error: on success the observer
// processor feeds the realized span back to the planner.
func planDecide(c hbsp.Ctx, p *plan.Planner, family string, n int) (plan.Decision, func(error), error) {
	t := c.Tree()
	d, ok := p.Decide(t, family, n)
	if !ok {
		return plan.Decision{}, nil, fmt.Errorf("collective: planner knows no variants for family %q", family)
	}
	start := hbsp.NowOf(c)
	if d.Fresh {
		hbsp.RecorderOf(c).Pick(family, d.Variant.Name, c.Pid(), int64(n), d.Pred, start)
	}
	if c.Pid() != 0 {
		return d, func(error) {}, nil
	}
	// The observation normalizes against the decision's precomputed
	// bucket-representative prediction rather than re-evaluating the
	// closed form at n: corrected prices are compared at the
	// representative size anyway, and skipping the tree walk keeps the
	// cached dispatch path within a few percent of a direct call.
	done := func(err error) {
		if err != nil {
			return
		}
		if end := hbsp.NowOf(c); end > start {
			p.Observe(t, family, d.Variant.Name, n, end-start, d.RawPred)
		}
	}
	return d, done, nil
}

// PlannedBcast broadcasts data from the fastest leaf to every processor
// through the planner-selected variant. Only the fastest leaf supplies
// data; n is its length, passed uniformly by every processor.
func PlannedBcast(c hbsp.Ctx, p *plan.Planner, n int, data []byte) ([]byte, error) {
	d, done, err := planDecide(c, p, "bcast", n)
	if err != nil {
		return nil, err
	}
	t := c.Tree()
	root := t.Pid(t.FastestLeaf())
	var out []byte
	switch d.Variant.Name {
	case "BcastOnePhase":
		out, err = BcastOnePhase(c, t.Root, root, data)
	case "BcastTwoPhase":
		var dist Dist
		if c.Pid() == root {
			dist = BalancedPieces(c, t.Root, n)
		}
		out, err = BcastTwoPhase(c, t.Root, root, data, dist)
	case "BcastBinomial":
		out, err = BcastBinomial(c, t.Root, root, data)
	case "BcastHier":
		out, err = BcastHier(c, data, false)
	case "BcastHierTwoPhase":
		out, err = BcastHier(c, data, true)
	default:
		return nil, fmt.Errorf("collective: planner picked unknown bcast variant %q", d.Variant.Name)
	}
	done(err)
	return out, err
}

// PlannedGather gathers every processor's local payload to the fastest
// leaf through the planner-selected variant. n is the total byte count
// across all processors, passed uniformly.
func PlannedGather(c hbsp.Ctx, p *plan.Planner, n int, local []byte) (map[int][]byte, error) {
	d, done, err := planDecide(c, p, "gather", n)
	if err != nil {
		return nil, err
	}
	t := c.Tree()
	var out map[int][]byte
	switch d.Variant.Name {
	case "Gather":
		out, err = Gather(c, t.Root, t.Pid(t.FastestLeaf()), local)
	case "GatherHier":
		out, err = GatherHier(c, local)
	default:
		return nil, fmt.Errorf("collective: planner picked unknown gather variant %q", d.Variant.Name)
	}
	done(err)
	return out, err
}

// PlannedScatter distributes the fastest leaf's keyed pieces through
// the planner-selected variant. n is the total byte count, passed
// uniformly; only the fastest leaf supplies pieces.
func PlannedScatter(c hbsp.Ctx, p *plan.Planner, n int, pieces map[int][]byte) ([]byte, error) {
	d, done, err := planDecide(c, p, "scatter", n)
	if err != nil {
		return nil, err
	}
	t := c.Tree()
	var out []byte
	switch d.Variant.Name {
	case "Scatter":
		out, err = Scatter(c, t.Root, t.Pid(t.FastestLeaf()), pieces)
	case "ScatterHier":
		out, err = ScatterHier(c, pieces)
	default:
		return nil, fmt.Errorf("collective: planner picked unknown scatter variant %q", d.Variant.Name)
	}
	done(err)
	return out, err
}

// PlannedAllGather gathers every processor's local payload to every
// processor through the planner-selected variant. n is the total byte
// count, passed uniformly.
func PlannedAllGather(c hbsp.Ctx, p *plan.Planner, n int, local []byte) (map[int][]byte, error) {
	d, done, err := planDecide(c, p, "allgather", n)
	if err != nil {
		return nil, err
	}
	t := c.Tree()
	var out map[int][]byte
	switch d.Variant.Name {
	case "AllGather":
		out, err = AllGather(c, t.Root, local)
	case "AllGatherHier":
		out, err = AllGatherHier(c, local)
	default:
		return nil, fmt.Errorf("collective: planner picked unknown allgather variant %q", d.Variant.Name)
	}
	done(err)
	return out, err
}

// PlannedReduce folds every processor's equal-width vector to the
// fastest leaf through the planner-selected variant. The payload size
// is derived from the vector width, which SPMD reduction already
// requires to be uniform.
func PlannedReduce(c hbsp.Ctx, p *plan.Planner, local []int64, op Op) ([]int64, error) {
	d, done, err := planDecide(c, p, "reduce", vecBytes(c, local))
	if err != nil {
		return nil, err
	}
	t := c.Tree()
	var out []int64
	switch d.Variant.Name {
	case "Reduce":
		out, err = Reduce(c, t.Root, t.Pid(t.FastestLeaf()), local, op)
	case "ReduceHier":
		out, err = ReduceHier(c, local, op)
	default:
		return nil, fmt.Errorf("collective: planner picked unknown reduce variant %q", d.Variant.Name)
	}
	done(err)
	return out, err
}

// PlannedAllReduce folds every processor's equal-width vector to every
// processor through the planner-selected variant.
func PlannedAllReduce(c hbsp.Ctx, p *plan.Planner, local []int64, op Op) ([]int64, error) {
	d, done, err := planDecide(c, p, "allreduce", vecBytes(c, local))
	if err != nil {
		return nil, err
	}
	var out []int64
	switch d.Variant.Name {
	case "AllReduce":
		out, err = AllReduce(c, local, op)
	default:
		return nil, fmt.Errorf("collective: planner picked unknown allreduce variant %q", d.Variant.Name)
	}
	done(err)
	return out, err
}

// PlannedScan computes the pid-order prefix fold of every processor's
// equal-width vector through the planner-selected variant. ScanHier
// folds in tree (slot) order, so it is eligible only while slot order
// and pid order coincide — after a reorganization that permutes leaves
// the dispatcher pins the flat Scan, whose contract is pid order
// regardless of layout. The eligibility predicate is a pure function of
// the fingerprinted tree state, so all processors agree.
func PlannedScan(c hbsp.Ctx, p *plan.Planner, local []int64, op Op) ([]int64, error) {
	t := c.Tree()
	if !layoutIsPidOrder(t) {
		return Scan(c, t.Root, local, op)
	}
	d, done, err := planDecide(c, p, "scan", vecBytes(c, local))
	if err != nil {
		return nil, err
	}
	var out []int64
	switch d.Variant.Name {
	case "Scan":
		out, err = Scan(c, t.Root, local, op)
	case "ScanHier":
		out, err = ScanHier(c, local, op)
	default:
		return nil, fmt.Errorf("collective: planner picked unknown scan variant %q", d.Variant.Name)
	}
	done(err)
	return out, err
}

// PlannedTotalExchange routes every processor's keyed outgoing pieces
// through the planner-selected variant. n is the total byte count
// across all processors, passed uniformly.
func PlannedTotalExchange(c hbsp.Ctx, p *plan.Planner, n int, outgoing map[int][]byte) (map[int][]byte, error) {
	d, done, err := planDecide(c, p, "alltoall", n)
	if err != nil {
		return nil, err
	}
	t := c.Tree()
	var out map[int][]byte
	switch d.Variant.Name {
	case "TotalExchange":
		out, err = TotalExchange(c, t.Root, outgoing)
	default:
		return nil, fmt.Errorf("collective: planner picked unknown alltoall variant %q", d.Variant.Name)
	}
	done(err)
	return out, err
}

// vecBytes is the uniform model payload of a vector collective: the
// machine-wide byte count of the equal-width int64 vectors, matching
// how the cost table sizes the reduce/scan closed forms.
func vecBytes(c hbsp.Ctx, local []int64) int {
	return 8 * len(local) * c.NProcs()
}
