package collective

import (
	"fmt"

	"hbspk/internal/hbsp"
	"hbspk/internal/model"
)

const tagBinomial = 10

// BcastBinomial is the binomial-tree broadcast over the scope's subtree:
// ⌈log2 p⌉ supersteps in which the set of holders doubles — each holder
// forwards the whole data to one non-holder per round. The related work
// (P-logP, reference [13]) tunes such tree shapes; under the HBSP^k
// model the binomial tree trades the one-phase broadcast's single
// g·n·(p−1) superstep for log p supersteps of g·n each:
//
//	T = ⌈log2 p⌉ · (g·n·r̂ + L)
//
// so it beats one-phase when synchronization is cheap relative to
// bandwidth, and loses to two-phase at large n (which moves each byte
// at most twice). Holders pair with targets in rank order: round k has
// holder i (participant index < 2^k) send to index i + 2^k — the
// classic recursive doubling, with the fastest machines becoming
// holders earliest (§4.1's first principle) when root is the
// coordinator and participant order is pid order.
func BcastBinomial(c hbsp.Ctx, scope *model.Machine, root int, data []byte) ([]byte, error) {
	defer span(c, "bcast-binomial")(len(data))
	pids := participants(c, scope)
	p := len(pids)
	rootIdx := indexOf(pids, root)
	if rootIdx < 0 {
		return nil, fmt.Errorf("collective: root %d outside scope %s", root, scope.Label())
	}
	me := indexOf(pids, c.Pid())
	if me < 0 {
		return nil, fmt.Errorf("collective: pid %d outside scope %s", c.Pid(), scope.Label())
	}
	// Rotate indexes so the root has virtual index 0.
	virt := (me - rootIdx + p) % p
	have := data
	if virt != 0 {
		have = nil
	}
	for stride, round := 1, 0; stride < p; stride, round = stride*2, round+1 {
		if virt < stride && virt+stride < p {
			target := pids[(virt+stride+rootIdx)%p]
			if err := c.Send(target, tagBinomial, have); err != nil {
				return nil, err
			}
		}
		if err := c.Sync(scope, fmt.Sprintf("bcast-binomial r%d", round)); err != nil {
			return nil, err
		}
		if virt >= stride && virt < 2*stride {
			for _, m := range c.Moves() {
				if m.Tag == tagBinomial {
					have = m.Payload
				}
			}
			if have == nil {
				return nil, fmt.Errorf("collective: processor %d missed its binomial round %d", c.Pid(), round)
			}
		}
	}
	return have, nil
}
