package collective

import (
	"fmt"
	"sync"
)

// OrderRecorder audits delivery-order independence (DESIGN.md §5.3):
// attached to an Op with Recorded, it captures every fold the op
// performs — the accumulator's starting value and each operand in the
// order the collective combined it — and Check replays those folds
// under reversed and seeded-shuffled operand orders. A collective is
// only correct under the HBSP^k model if its result does not depend on
// the order messages happened to be folded in; a divergent replay names
// the offending fold.
//
// The recorder is safe for concurrent use: the Concurrent engine folds
// at several subtree coordinators in parallel.
type OrderRecorder struct {
	mu    sync.Mutex
	folds []*foldRec
	open  map[int]*foldRec
}

// NewOrderRecorder returns an empty recorder.
func NewOrderRecorder() *OrderRecorder {
	return &OrderRecorder{open: make(map[int]*foldRec)}
}

// foldRec is one accumulator's life: its initial value and the operand
// vectors combined into it, in combining order. cur tracks the
// recorded-order running value so a follow-up combine on the same
// accumulator extends the fold and anything else starts a new one.
type foldRec struct {
	pid  int
	op   string
	init []int64
	args [][]int64
	cur  []int64
}

func cloneVec(v []int64) []int64 { return append([]int64(nil), v...) }

func eqVec(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// observe records one combine of src into dst by pid, called by
// Op.combine before it mutates dst.
func (r *OrderRecorder) observe(pid int, op Op, dst, src []int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.open[pid]
	if f == nil || f.op != op.Name || !eqVec(f.cur, dst) {
		f = &foldRec{pid: pid, op: op.Name, init: cloneVec(dst), cur: cloneVec(dst)}
		r.folds = append(r.folds, f)
		r.open[pid] = f
	}
	f.args = append(f.args, cloneVec(src))
	for i := range f.cur {
		if i < len(src) {
			f.cur[i] = op.Apply(f.cur[i], src[i])
		}
	}
}

// Folds returns the number of recorded folds.
func (r *OrderRecorder) Folds() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.folds)
}

// Check replays every recorded fold with at least two operands under
// the reversed and three seeded-shuffled operand orders and returns an
// error naming the first fold whose result changed — proof the
// collective's outcome depends on delivery order. A nil return
// certifies order independence on the recorded data.
func (r *OrderRecorder) Check(op Op) error {
	r.mu.Lock()
	folds := append([]*foldRec(nil), r.folds...)
	r.mu.Unlock()
	for i, f := range folds {
		if f.op != op.Name {
			return fmt.Errorf("collective: fold %d recorded op %q, checking %q", i, f.op, op.Name)
		}
		if len(f.args) < 2 {
			continue
		}
		want := replayFold(op, f.init, f.args, nil)
		orders := [][]int{reversedOrder(len(f.args))}
		for seed := uint64(1); seed <= 3; seed++ {
			orders = append(orders, shuffledOrder(len(f.args), seed))
		}
		for _, order := range orders {
			if got := replayFold(op, f.init, f.args, order); !eqVec(got, want) {
				return fmt.Errorf("collective: op %q is delivery-order dependent: fold %d at p%d over %d operands gives %v in recorded order but %v reordered",
					op.Name, i, f.pid, len(f.args), want, got)
			}
		}
	}
	return nil
}

// replayFold folds args into init in the given order (nil = recorded).
func replayFold(op Op, init []int64, args [][]int64, order []int) []int64 {
	acc := cloneVec(init)
	for i := range args {
		src := args[i]
		if order != nil {
			src = args[order[i]]
		}
		for j := range acc {
			if j < len(src) {
				acc[j] = op.Apply(acc[j], src[j])
			}
		}
	}
	return acc
}

func reversedOrder(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = n - 1 - i
	}
	return out
}

// shuffledOrder is a seeded splitmix64-driven Fisher–Yates permutation,
// deterministic per (n, seed).
func shuffledOrder(n int, seed uint64) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	state := seed*0x9E3779B97F4A7C15 + 1
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}
