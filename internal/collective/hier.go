package collective

import (
	"fmt"

	"hbspk/internal/hbsp"
	"hbspk/internal/model"
)

const (
	tagScanUp   = 8
	tagScanDown = 9
)

// AllGatherHier leaves every processor with every processor's piece,
// keyed by pid, using the hierarchy twice: a hierarchical gather to the
// machine's fastest processor followed by a hierarchical broadcast of
// the combined frame. On machines with slow upper links this moves each
// piece across every slow link O(1) times, where the flat all-gather
// crosses them O(p) times.
func AllGatherHier(c hbsp.Ctx, local []byte) (map[int][]byte, error) {
	defer span(c, "all-gather-hier")(len(local))
	collected, err := GatherHier(c, local)
	if err != nil {
		return nil, err
	}
	var wire []byte
	if collected != nil {
		f := newFrame()
		for _, pp := range sortedPieces(collected) {
			f.add(pp.pid, pp.data)
		}
		wire = f.bytes()
	}
	full, err := BcastHier(c, wire, false)
	if err != nil {
		return nil, err
	}
	out := make(map[int][]byte, c.NProcs())
	if err := eachPiece(full, func(pid int, piece []byte) {
		out[pid] = piece
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// ScanHier computes the inclusive prefix reduction over the tree's
// depth-first machine order — which equals pid order on a freshly
// built tree, but follows the layout after a reorganization permutes
// leaf slots (a hierarchical sweep cannot order by pid once subtrees
// hold non-contiguous pid sets; callers needing strict pid order use
// the flat Scan). The algorithm is two hierarchical sweeps: an upward
// sweep in which every cluster
// coordinator folds its children's subtree totals (keeping the partial
// prefixes), and a downward sweep distributing each subtree's inbound
// offset. No identity element is required: the first subtree simply
// receives no offset. Every processor returns its prefix.
func ScanHier(c hbsp.Ctx, local []int64, op Op) ([]int64, error) {
	defer span(c, "scan-hier")(8 * len(local))
	t := c.Tree()
	// Upward sweep: totals[lvl] is the subtree total this processor
	// carries as the coordinator of its level-(lvl-1) position; childAgg
	// records, per level, the children totals needed for the downward
	// sweep (only at coordinators).
	total := append([]int64(nil), local...)
	childTotals := make(map[int][][]int64) // level → totals of scope children, child order
	for lvl := 1; lvl <= t.K(); lvl++ {
		scope := enclosingScope(t, c.Self(), lvl)
		if scope == nil {
			continue
		}
		rootPid := t.Pid(scope.Coordinator())
		// Which child of scope does this processor represent?
		var coords []int
		for _, child := range scope.Children {
			coords = append(coords, t.Pid(child.Coordinator()))
		}
		if me := indexOf(coords, c.Pid()); me >= 0 && c.Pid() != rootPid {
			f := newFrame()
			f.add(me, packVec(total))
			if err := c.Send(rootPid, tagScanUp, f.bytes()); err != nil {
				return nil, err
			}
		}
		if err := c.Sync(scope, fmt.Sprintf("scan-up^%d", lvl)); err != nil {
			return nil, err
		}
		if c.Pid() == rootPid {
			parts := make([][]int64, len(coords))
			parts[indexOf(coords, rootPid)] = total
			for _, m := range c.Moves() {
				if m.Tag != tagScanUp {
					continue
				}
				var perr error
				if err := eachPiece(m.Payload, func(idx int, piece []byte) {
					v, err := unpackVec(piece)
					if err != nil {
						perr = err
						return
					}
					parts[idx] = v
				}); err != nil {
					return nil, err
				}
				if perr != nil {
					return nil, perr
				}
			}
			childTotals[lvl] = parts
			// Fold children totals in child order into the new subtree
			// total.
			var acc []int64
			for _, part := range parts {
				if part == nil {
					return nil, fmt.Errorf("collective: scan missing a child total at level %d", lvl)
				}
				if acc == nil {
					acc = append([]int64(nil), part...)
				} else if err := op.combine(c, acc, part); err != nil {
					return nil, err
				}
			}
			total = acc
		}
	}

	// Downward sweep: offset is the fold of everything left of this
	// processor's current subtree; nil means "nothing to the left".
	var offset []int64
	haveOffset := false
	for lvl := t.K(); lvl >= 1; lvl-- {
		scope := enclosingScope(t, c.Self(), lvl)
		if scope == nil {
			continue
		}
		rootPid := t.Pid(scope.Coordinator())
		var coords []int
		for _, child := range scope.Children {
			coords = append(coords, t.Pid(child.Coordinator()))
		}
		if c.Pid() == rootPid {
			parts := childTotals[lvl]
			// Running prefix across children, starting from the
			// inbound offset.
			run := offset
			haveRun := haveOffset
			for i, pid := range coords {
				if pid != rootPid && haveRun {
					f := newFrame()
					f.add(i, packVec(run))
					if err := c.Send(pid, tagScanDown, f.bytes()); err != nil {
						return nil, err
					}
				}
				if i == indexOf(coords, rootPid) {
					// The coordinator's own inbound offset.
					if haveRun {
						offset = append([]int64(nil), run...)
						haveOffset = true
					} else {
						haveOffset = false
						offset = nil
					}
				}
				// Advance the running prefix past child i.
				if !haveRun {
					run = append([]int64(nil), parts[i]...)
					haveRun = true
				} else {
					run = append([]int64(nil), run...)
					if err := op.combine(c, run, parts[i]); err != nil {
						return nil, err
					}
				}
			}
			// Children left of the coordinator received offsets above;
			// but a child with no left-neighbors got none (correct).
			// Children are notified even when the coordinator sits
			// right of them, because the loop sends before advancing.
		}
		if err := c.Sync(scope, fmt.Sprintf("scan-down^%d", lvl)); err != nil {
			return nil, err
		}
		if c.Pid() != rootPid {
			for _, m := range c.Moves() {
				if m.Tag != tagScanDown {
					continue
				}
				var perr error
				if err := eachPiece(m.Payload, func(_ int, piece []byte) {
					v, err := unpackVec(piece)
					if err != nil {
						perr = err
						return
					}
					offset = v
					haveOffset = true
				}); err != nil {
					return nil, err
				}
				if perr != nil {
					return nil, perr
				}
			}
		}
	}

	out := append([]int64(nil), local...)
	if haveOffset {
		// result = offset ⊕ local (offset on the left).
		res := append([]int64(nil), offset...)
		if err := op.combine(c, res, out); err != nil {
			return nil, err
		}
		out = res
	}
	return out, nil
}

// ReduceScatter folds every processor's vector element-wise and leaves
// processor with participant index i holding segment i of the result
// (segment boundaries from d, one entry per participant, summing to the
// vector length). One superstep: each processor ships segment j of its
// own vector to participant j, then folds what it received.
func ReduceScatter(c hbsp.Ctx, scope *model.Machine, local []int64, d Dist, op Op) ([]int64, error) {
	defer span(c, "reduce-scatter")(8 * len(local))
	pids := participants(c, scope)
	if len(d) != len(pids) {
		return nil, fmt.Errorf("collective: reduce-scatter dist has %d entries for %d participants", len(d), len(pids))
	}
	if d.Total() != len(local) {
		return nil, fmt.Errorf("collective: reduce-scatter dist covers %d of %d elements", d.Total(), len(local))
	}
	me := indexOf(pids, c.Pid())
	if me < 0 {
		return nil, fmt.Errorf("collective: pid %d outside scope %s", c.Pid(), scope.Label())
	}
	off := 0
	var mine []int64
	for i, pid := range pids {
		seg := local[off : off+d[i]]
		off += d[i]
		if pid == c.Pid() {
			mine = append([]int64(nil), seg...)
			continue
		}
		if err := c.Send(pid, tagReduce, packVec(seg)); err != nil {
			return nil, err
		}
	}
	if err := c.Sync(scope, "reduce-scatter"); err != nil {
		return nil, err
	}
	for _, m := range c.Moves() {
		if m.Tag != tagReduce {
			continue
		}
		v, err := unpackVec(m.Payload)
		if err != nil {
			return nil, err
		}
		if err := op.combine(c, mine, v); err != nil {
			return nil, err
		}
	}
	return mine, nil
}
