package collective

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"hbspk/internal/cost"
	"hbspk/internal/fabric"
	"hbspk/internal/hbsp"
	"hbspk/internal/model"
	"hbspk/internal/trace"
)

// payloadFor builds a distinct, size-controlled payload per pid.
func payloadFor(pid, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(pid*31 + i)
	}
	return b
}

func runPure(t *testing.T, tr *model.Tree, prog hbsp.Program) *trace.Report {
	t.Helper()
	rep, err := hbsp.RunVirtual(tr, fabric.PureModel(), prog)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return rep
}

func TestGatherDeliversEveryPiece(t *testing.T) {
	tr := model.UCFTestbed()
	root := tr.Pid(tr.FastestLeaf())
	var mu sync.Mutex
	var got map[int][]byte
	runPure(t, tr, func(c hbsp.Ctx) error {
		out, err := Gather(c, c.Tree().Root, root, payloadFor(c.Pid(), 10+c.Pid()))
		if err != nil {
			return err
		}
		if out != nil {
			mu.Lock()
			got = out
			mu.Unlock()
		} else if c.Pid() == root {
			return fmt.Errorf("root got nil")
		}
		return nil
	})
	if len(got) != tr.NProcs() {
		t.Fatalf("root holds %d pieces, want %d", len(got), tr.NProcs())
	}
	for pid := 0; pid < tr.NProcs(); pid++ {
		if !bytes.Equal(got[pid], payloadFor(pid, 10+pid)) {
			t.Errorf("piece %d corrupted", pid)
		}
	}
}

func TestGatherCostMatchesAnalyticModel(t *testing.T) {
	// The virtual engine with a pure fabric must charge exactly what
	// cost.GatherFlat predicts — the model made executable.
	tr := model.UCFTestbed()
	n := 100000
	d := cost.BalancedDist(tr, n)
	root := tr.Pid(tr.FastestLeaf())
	rep := runPure(t, tr, func(c hbsp.Ctx) error {
		_, err := Gather(c, c.Tree().Root, root, payloadFor(c.Pid(), d[c.Pid()]))
		return err
	})
	want := cost.GatherFlat(tr, root, d).Total()
	if math.Abs(rep.Total-want) > 1e-6 {
		t.Errorf("simulated %v != predicted %v", rep.Total, want)
	}
}

func TestGatherHierCollectsAcrossLevels(t *testing.T) {
	for _, tr := range []*model.Tree{
		model.Figure1Cluster(),
		model.WideAreaGrid(3, 3, 10, 100, 1000),
		model.DeepChain(4),
		model.UCFTestbedN(5),
		model.SingleProcessor(),
	} {
		tr := tr
		var mu sync.Mutex
		var got map[int][]byte
		runPure(t, tr, func(c hbsp.Ctx) error {
			out, err := GatherHier(c, payloadFor(c.Pid(), 5+c.Pid()%3))
			if err != nil {
				return err
			}
			if out != nil {
				mu.Lock()
				got = out
				mu.Unlock()
			}
			return nil
		})
		if len(got) != tr.NProcs() {
			t.Fatalf("%s: collected %d pieces, want %d", tr.Root.Name, len(got), tr.NProcs())
		}
		for pid := 0; pid < tr.NProcs(); pid++ {
			if !bytes.Equal(got[pid], payloadFor(pid, 5+pid%3)) {
				t.Errorf("%s: piece %d corrupted", tr.Root.Name, pid)
			}
		}
	}
}

func TestGatherHierCostMatchesAnalyticModel(t *testing.T) {
	tr := model.Figure1Cluster()
	n := 90000
	d := cost.BalancedDist(tr, n)
	rep := runPure(t, tr, func(c hbsp.Ctx) error {
		_, err := GatherHier(c, make([]byte, d[c.Pid()]))
		return err
	})
	want := cost.GatherHier(tr, d).Total()
	// The executable gather frames pieces with a few bytes of header
	// per hop, so allow a small relative tolerance.
	if math.Abs(rep.Total-want)/want > 0.01 {
		t.Errorf("simulated %v vs predicted %v (>1%% drift)", rep.Total, want)
	}
}

func TestBcastOnePhaseEveryoneHasData(t *testing.T) {
	tr := model.UCFTestbedN(6)
	root := tr.Pid(tr.FastestLeaf())
	data := payloadFor(99, 5000)
	results := make([][]byte, tr.NProcs())
	runPure(t, tr, func(c hbsp.Ctx) error {
		in := data
		if c.Pid() != root {
			in = nil
		}
		out, err := BcastOnePhase(c, c.Tree().Root, root, in)
		if err != nil {
			return err
		}
		results[c.Pid()] = out
		return nil
	})
	for pid, r := range results {
		if !bytes.Equal(r, data) {
			t.Errorf("pid %d has wrong data (%d bytes)", pid, len(r))
		}
	}
}

func TestBcastTwoPhaseEveryoneHasData(t *testing.T) {
	for _, policy := range []string{"equal", "balanced", "nil"} {
		tr := model.UCFTestbed()
		root := tr.Pid(tr.FastestLeaf())
		data := payloadFor(7, 12345)
		results := make([][]byte, tr.NProcs())
		runPure(t, tr, func(c hbsp.Ctx) error {
			var in []byte
			var d Dist
			if c.Pid() == root {
				in = data
				switch policy {
				case "equal":
					d = EqualPieces(c, c.Tree().Root, len(data))
				case "balanced":
					d = BalancedPieces(c, c.Tree().Root, len(data))
				}
			}
			out, err := BcastTwoPhase(c, c.Tree().Root, root, in, d)
			if err != nil {
				return err
			}
			results[c.Pid()] = out
			return nil
		})
		for pid, r := range results {
			if !bytes.Equal(r, data) {
				t.Errorf("%s: pid %d wrong data (%d bytes, want %d)", policy, pid, len(r), len(data))
			}
		}
	}
}

func TestBcastTwoPhaseCostMatchesAnalyticModel(t *testing.T) {
	tr := model.UCFTestbed()
	root := tr.Pid(tr.FastestLeaf())
	n := 200000
	rep := runPure(t, tr, func(c hbsp.Ctx) error {
		var in []byte
		if c.Pid() == root {
			in = make([]byte, n)
		}
		_, err := BcastTwoPhase(c, c.Tree().Root, root, in, nil)
		return err
	})
	want := cost.BcastTwoPhaseFlat(tr, root, cost.EqualDist(tr, n)).Total()
	if math.Abs(rep.Total-want)/want > 1e-6 {
		t.Errorf("simulated %v != predicted %v", rep.Total, want)
	}
	if rep.Supersteps() != 2 {
		t.Errorf("two-phase broadcast ran %d supersteps, want 2", rep.Supersteps())
	}
}

func TestBcastHierAllTrees(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   *model.Tree
	}{
		{"figure1", model.Figure1Cluster()},
		{"grid", model.WideAreaGrid(3, 4, 15, 100, 2000)},
		{"chain", model.DeepChain(3)},
		{"flat", model.UCFTestbedN(7)},
	} {
		for _, twoPhaseTop := range []bool{false, true} {
			data := payloadFor(3, 7777)
			results := make([][]byte, tc.tr.NProcs())
			runPure(t, tc.tr, func(c hbsp.Ctx) error {
				var in []byte
				if c.Self() == c.Tree().FastestLeaf() {
					in = data
				}
				out, err := BcastHier(c, in, twoPhaseTop)
				if err != nil {
					return err
				}
				results[c.Pid()] = out
				return nil
			})
			for pid, r := range results {
				if !bytes.Equal(r, data) {
					t.Errorf("%s(two-phase-top=%v): pid %d wrong data (%d bytes)",
						tc.name, twoPhaseTop, pid, len(r))
				}
			}
		}
	}
}

func TestScatterRoundTripsWithGather(t *testing.T) {
	tr := model.UCFTestbedN(8)
	root := tr.Pid(tr.FastestLeaf())
	results := make([][]byte, tr.NProcs())
	runPure(t, tr, func(c hbsp.Ctx) error {
		var pieces map[int][]byte
		if c.Pid() == root {
			pieces = make(map[int][]byte)
			for pid := 0; pid < c.NProcs(); pid++ {
				pieces[pid] = payloadFor(pid, 100+pid)
			}
		}
		mine, err := Scatter(c, c.Tree().Root, root, pieces)
		if err != nil {
			return err
		}
		results[c.Pid()] = mine
		return nil
	})
	for pid, r := range results {
		if !bytes.Equal(r, payloadFor(pid, 100+pid)) {
			t.Errorf("pid %d got wrong piece", pid)
		}
	}
}

func TestScatterHierDelivers(t *testing.T) {
	tr := model.Figure1Cluster()
	results := make([][]byte, tr.NProcs())
	runPure(t, tr, func(c hbsp.Ctx) error {
		var pieces map[int][]byte
		if c.Self() == c.Tree().FastestLeaf() {
			pieces = make(map[int][]byte)
			for pid := 0; pid < c.NProcs(); pid++ {
				pieces[pid] = payloadFor(pid, 64)
			}
		}
		mine, err := ScatterHier(c, pieces)
		if err != nil {
			return err
		}
		results[c.Pid()] = mine
		return nil
	})
	for pid, r := range results {
		if !bytes.Equal(r, payloadFor(pid, 64)) {
			t.Errorf("pid %d got wrong piece (%d bytes)", pid, len(r))
		}
	}
}

func TestAllGatherEveryoneHasEverything(t *testing.T) {
	tr := model.UCFTestbedN(6)
	counts := make([]int, tr.NProcs())
	runPure(t, tr, func(c hbsp.Ctx) error {
		out, err := AllGather(c, c.Tree().Root, payloadFor(c.Pid(), 50))
		if err != nil {
			return err
		}
		for pid := 0; pid < c.NProcs(); pid++ {
			if !bytes.Equal(out[pid], payloadFor(pid, 50)) {
				return fmt.Errorf("pid %d: piece %d wrong", c.Pid(), pid)
			}
		}
		counts[c.Pid()] = len(out)
		return nil
	})
	for pid, n := range counts {
		if n != tr.NProcs() {
			t.Errorf("pid %d holds %d pieces", pid, n)
		}
	}
}

func TestTotalExchangeTransposes(t *testing.T) {
	tr := model.UCFTestbedN(5)
	p := tr.NProcs()
	runPure(t, tr, func(c hbsp.Ctx) error {
		out := make(map[int][]byte, p)
		for dst := 0; dst < p; dst++ {
			out[dst] = []byte{byte(c.Pid()), byte(dst)}
		}
		in, err := TotalExchange(c, c.Tree().Root, out)
		if err != nil {
			return err
		}
		if len(in) != p {
			return fmt.Errorf("pid %d received %d pieces, want %d", c.Pid(), len(in), p)
		}
		for src := 0; src < p; src++ {
			want := []byte{byte(src), byte(c.Pid())}
			if !bytes.Equal(in[src], want) {
				return fmt.Errorf("pid %d: from %d got %v, want %v", c.Pid(), src, in[src], want)
			}
		}
		return nil
	})
}

func TestReduceSum(t *testing.T) {
	tr := model.UCFTestbed()
	root := tr.Pid(tr.FastestLeaf())
	width := 16
	var result []int64
	var mu sync.Mutex
	runPure(t, tr, func(c hbsp.Ctx) error {
		local := make([]int64, width)
		for i := range local {
			local[i] = int64(c.Pid() + i)
		}
		out, err := Reduce(c, c.Tree().Root, root, local, Sum)
		if err != nil {
			return err
		}
		if out != nil {
			mu.Lock()
			result = out
			mu.Unlock()
		}
		return nil
	})
	p := int64(tr.NProcs())
	for i, v := range result {
		want := p*(p-1)/2 + p*int64(i)
		if v != want {
			t.Errorf("sum[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestReduceHierAndAllReduce(t *testing.T) {
	for _, tr := range []*model.Tree{
		model.Figure1Cluster(),
		model.WideAreaGrid(2, 3, 8, 50, 500),
		model.DeepChain(3),
	} {
		tr := tr
		p := int64(tr.NProcs())
		want := p * (p - 1) / 2
		var hierResult []int64
		var mu sync.Mutex
		runPure(t, tr, func(c hbsp.Ctx) error {
			out, err := ReduceHier(c, []int64{int64(c.Pid())}, Sum)
			if err != nil {
				return err
			}
			if out != nil {
				mu.Lock()
				hierResult = out
				mu.Unlock()
			}
			return nil
		})
		if len(hierResult) != 1 || hierResult[0] != want {
			t.Errorf("%s: ReduceHier = %v, want [%d]", tr.Root.Name, hierResult, want)
		}
		all := make([]int64, tr.NProcs())
		runPure(t, tr, func(c hbsp.Ctx) error {
			out, err := AllReduce(c, []int64{int64(c.Pid())}, Sum)
			if err != nil {
				return err
			}
			all[c.Pid()] = out[0]
			return nil
		})
		for pid, v := range all {
			if v != want {
				t.Errorf("%s: AllReduce at pid %d = %d, want %d", tr.Root.Name, pid, v, want)
			}
		}
	}
}

func TestScanPrefixes(t *testing.T) {
	tr := model.UCFTestbedN(7)
	got := make([]int64, tr.NProcs())
	runPure(t, tr, func(c hbsp.Ctx) error {
		out, err := Scan(c, c.Tree().Root, []int64{int64(c.Pid() + 1)}, Sum)
		if err != nil {
			return err
		}
		got[c.Pid()] = out[0]
		return nil
	})
	acc := int64(0)
	for pid, v := range got {
		acc += int64(pid + 1)
		if v != acc {
			t.Errorf("scan[%d] = %d, want %d", pid, v, acc)
		}
	}
}

func TestMaxMinOps(t *testing.T) {
	tr := model.UCFTestbedN(4)
	root := tr.Pid(tr.FastestLeaf())
	for _, tc := range []struct {
		op   Op
		want int64
	}{{Max, 9}, {Min, 0}} {
		var res []int64
		var mu sync.Mutex
		runPure(t, tr, func(c hbsp.Ctx) error {
			out, err := Reduce(c, c.Tree().Root, root, []int64{int64(c.Pid() * 3)}, tc.op)
			if out != nil {
				mu.Lock()
				res = out
				mu.Unlock()
			}
			return err
		})
		if len(res) != 1 || res[0] != tc.want {
			t.Errorf("%s = %v, want [%d]", tc.op.Name, res, tc.want)
		}
	}
}

func TestReduceChargesCombiningWork(t *testing.T) {
	tr := model.UCFTestbedN(4)
	root := tr.Pid(tr.FastestLeaf())
	width := 1000
	rep := runPure(t, tr, func(c hbsp.Ctx) error {
		_, err := Reduce(c, c.Tree().Root, root, make([]int64, width), Sum)
		return err
	})
	// Root combines 3 incoming vectors after the sync: the trailing
	// work extends the total beyond the communication step by
	// ≥ 3·width·Cost (root is the fastest, slowdown 1).
	wantMin := rep.Steps[0].Time + 3*float64(width)*Sum.Cost
	if rep.Total < wantMin {
		t.Errorf("reduce total = %v, want ≥ %v", rep.Total, wantMin)
	}
}

func TestCollectivesOnConcurrentEngineMatchVirtual(t *testing.T) {
	// The same program on both engines must deliver identical data.
	tr := model.Figure1Cluster()
	data := payloadFor(1, 3000)
	run := func(eng func(hbsp.Program) (*trace.Report, error)) [][]byte {
		results := make([][]byte, tr.NProcs())
		_, err := eng(func(c hbsp.Ctx) error {
			var in []byte
			if c.Self() == c.Tree().FastestLeaf() {
				in = data
			}
			out, err := BcastHier(c, in, false)
			if err != nil {
				return err
			}
			sum, err := AllReduce(c, []int64{int64(len(out))}, Sum)
			if err != nil {
				return err
			}
			results[c.Pid()] = append(out, byte(sum[0]%251))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	virt := run(func(p hbsp.Program) (*trace.Report, error) {
		return hbsp.RunVirtual(tr, fabric.PureModel(), p)
	})
	conc := run(hbsp.NewConcurrent(tr).Run)
	for pid := range virt {
		if !bytes.Equal(virt[pid], conc[pid]) {
			t.Errorf("pid %d: engines disagree", pid)
		}
	}
}

// Property: gather on a random tree returns exactly the multiset of
// inputs, keyed by pid, for any seed.
func TestPropertyGatherHierComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := model.RandomTree(rng, 3, 4)
		var mu sync.Mutex
		var got map[int][]byte
		_, err := hbsp.RunVirtual(tr, fabric.PureModel(), func(c hbsp.Ctx) error {
			out, err := GatherHier(c, payloadFor(c.Pid(), 1+rngSize(seed, c.Pid())))
			if out != nil {
				mu.Lock()
				got = out
				mu.Unlock()
			}
			return err
		})
		if err != nil || len(got) != tr.NProcs() {
			return false
		}
		for pid := 0; pid < tr.NProcs(); pid++ {
			if !bytes.Equal(got[pid], payloadFor(pid, 1+rngSize(seed, pid))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// rngSize derives a deterministic per-pid size without sharing a rand
// source across goroutines.
func rngSize(seed int64, pid int) int {
	return int((uint64(seed)*2654435761 + uint64(pid)*40503) % 97)
}

// Property: hierarchical broadcast leaves every leaf with the root's
// exact data on random trees.
func TestPropertyBcastHierComplete(t *testing.T) {
	f := func(seed int64, size uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := model.RandomTree(rng, 3, 3)
		data := payloadFor(5, int(size%4096)+1)
		ok := true
		var mu sync.Mutex
		_, err := hbsp.RunVirtual(tr, fabric.PureModel(), func(c hbsp.Ctx) error {
			var in []byte
			if c.Self() == c.Tree().FastestLeaf() {
				in = data
			}
			out, err := BcastHier(c, in, false)
			if err != nil {
				return err
			}
			if !bytes.Equal(out, data) {
				mu.Lock()
				ok = false
				mu.Unlock()
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: AllReduce(sum) equals the sequential sum on random trees.
func TestPropertyAllReduceSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := model.RandomTree(rng, 2, 4)
		p := tr.NProcs()
		want := int64(0)
		for pid := 0; pid < p; pid++ {
			want += int64(rngSize(seed, pid))
		}
		ok := true
		var mu sync.Mutex
		_, err := hbsp.RunVirtual(tr, fabric.PureModel(), func(c hbsp.Ctx) error {
			out, err := AllReduce(c, []int64{int64(rngSize(seed, c.Pid()))}, Sum)
			if err != nil {
				return err
			}
			if out[0] != want {
				mu.Lock()
				ok = false
				mu.Unlock()
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEqualAndBalancedPiecesCoverN(t *testing.T) {
	tr := model.UCFTestbed()
	runPure(t, tr, func(c hbsp.Ctx) error {
		for _, n := range []int{0, 1, 7, 1000, 99999} {
			if got := EqualPieces(c, c.Tree().Root, n).Total(); got != n {
				return fmt.Errorf("EqualPieces(%d) covers %d", n, got)
			}
			if got := BalancedPieces(c, c.Tree().Root, n).Total(); got != n {
				return fmt.Errorf("BalancedPieces(%d) covers %d", n, got)
			}
		}
		return nil
	})
}
