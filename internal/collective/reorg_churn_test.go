package collective

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"hbspk/internal/fabric"
	"hbspk/internal/hbsp"
	"hbspk/internal/model"
)

// Collective-layer coverage for dynamic reorganization and elastic
// membership (DESIGN.md §5.7): the fault-tolerant collectives keep
// their chaos-matrix contract while the tree is being rebalanced under
// them, every collective in the library stays oracle-correct on a
// reorganized tree, and LiveShares renormalizes over the post-churn
// membership.

// reorgMatrixEngines mirror matrixEngines with barrier-time
// reorganization enabled: the tree is rebalanced every second global
// barrier while the fault-tolerant collective runs.
var reorgMatrixEngines = []struct {
	name string
	run  func(plan *fabric.ChaosPlan, prog hbsp.Program) error
}{
	{"virtual", func(plan *fabric.ChaosPlan, prog hbsp.Program) error {
		tr := model.UCFTestbedN(matrixP)
		eng := hbsp.NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
		eng.Chaos = plan
		eng.ReorgEvery = 2
		eng.ReorgSeed = 9
		_, err := eng.Run(prog)
		return err
	}},
	{"concurrent", func(plan *fabric.ChaosPlan, prog hbsp.Program) error {
		eng := hbsp.NewConcurrent(model.UCFTestbedN(matrixP))
		eng.Chaos = plan
		eng.ReorgEvery = 2
		eng.ReorgSeed = 9
		_, err := eng.Run(prog)
		return err
	}},
}

// TestChaosMatrixUnderReorg re-runs the chaos matrix with the tree
// rebalancing under the collectives. The contract is unchanged: correct
// survivor-set data or a typed error, never a deadlock, never
// corruption — a crash landing inside a reorganization epoch included.
func TestChaosMatrixUnderReorg(t *testing.T) {
	keep := map[string]bool{
		"none": true, "crash-member": true,
		"crash-coordinator": true, "straggler-noise": true,
	}
	for _, eng := range reorgMatrixEngines {
		for _, plan := range matrixPlans {
			if !keep[plan.name] {
				continue
			}
			for _, op := range matrixOps {
				name := fmt.Sprintf("%s/%s/%s", eng.name, plan.name, op.name)
				t.Run(name, func(t *testing.T) {
					o := newOutcomes()
					runErr := eng.run(plan.plan, op.prog(o))
					checkCell(t, op.name, plan.victims, o, runErr)
				})
			}
		}
	}
}

// slotPidsOf returns leaf pids in slot (child) order — the structural
// layout a reorganization permutes.
func slotPidsOf(tr *model.Tree) []int {
	var out []int
	var walk func(m *model.Machine)
	walk = func(m *model.Machine) {
		if m.IsLeaf() {
			out = append(out, tr.Pid(m))
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(tr.Root)
	return out
}

// shapeSig fingerprints the tree's topology shape: child counts in
// depth-first order. Reorganization must never change it.
func shapeSig(tr *model.Tree) []int {
	var sig []int
	var walk func(m *model.Machine)
	walk = func(m *model.Machine) {
		sig = append(sig, len(m.Children))
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(tr.Root)
	return sig
}

// TestSweepOnReorganizedTrees is the engine-level half of the reorg
// property test: random trees are rebalanced under randomly skewed
// speed estimates, the shape and leaf multiset are checked invariant,
// and then every collective in the library must still match the
// sequential oracle on both engines.
func TestSweepOnReorganizedTrees(t *testing.T) {
	iters := 4
	if testing.Short() {
		iters = 1
	}
	engines := []struct {
		name string
		run  func(tr *model.Tree, p hbsp.Program) error
	}{
		{"virtual", func(tr *model.Tree, p hbsp.Program) error {
			_, err := hbsp.RunVirtual(tr, fabric.PureModel(), p)
			return err
		}},
		{"concurrent", func(tr *model.Tree, p hbsp.Program) error {
			_, err := hbsp.NewConcurrent(tr).Run(p)
			return err
		}},
	}
	const baseSeed = int64(0xD1CE)
	moved := 0
	for it := 0; it < iters; it++ {
		seed := baseSeed + int64(it)*7919
		env := newSweepEnv(seed)
		shapeBefore := shapeSig(env.tr)

		// Skew the estimates at random and rebalance in place.
		rng := rand.New(rand.NewSource(seed ^ 0x5EED))
		rer := model.NewReranker(env.p, 0)
		for pid := 0; pid < env.p; pid++ {
			for n := 0; n < 3; n++ {
				rer.Observe(pid, 0.1+rng.Float64()*10)
			}
		}
		plan := model.PlanReorg(env.tr, rer.Estimates(), seed, 1)
		if err := env.tr.Reorganize(plan); err != nil {
			t.Fatalf("seed=%d: Reorganize: %v", seed, err)
		}
		moved += plan.Moved

		if got := shapeSig(env.tr); !reflect.DeepEqual(got, shapeBefore) {
			t.Fatalf("seed=%d: reorg changed the topology shape: %v -> %v", seed, shapeBefore, got)
		}
		pids := slotPidsOf(env.tr)
		sort.Ints(pids)
		if !reflect.DeepEqual(pids, env.allPids()) {
			t.Fatalf("seed=%d: reorg lost or duplicated leaves: %v", seed, pids)
		}

		for _, eng := range engines {
			eng := eng
			t.Run(fmt.Sprintf("it%d/%s", it, eng.name), func(t *testing.T) {
				for _, tc := range sweepCases() {
					s := newSlots(env.p)
					if err := eng.run(env.tr, func(c hbsp.Ctx) error {
						return tc.run(c, env, s)
					}); err != nil {
						t.Errorf("seed=%d %s on reorganized tree: run failed: %v", seed, tc.name, err)
						continue
					}
					tc.check(t, env, s)
				}
			})
		}
	}
	if moved == 0 {
		t.Error("no seed produced a single moved leaf; the skew is not exercising reorg")
	}
}

// TestLiveSharesAfterChurn checks the degraded-mode partition weights
// against the oracle once membership has churned: a late joiner holds a
// share, an orderly leaver does not, the weights sum to 1, and the
// survivor ratios match the tree's balanced shares.
func TestLiveSharesAfterChurn(t *testing.T) {
	const lsCtl = 31
	for _, engine := range []string{"virtual", "concurrent"} {
		t.Run(engine, func(t *testing.T) {
			tr := model.UCFTestbedN(4)
			plan := &fabric.ChaosPlan{Churns: []fabric.Churn{
				{Pid: 3, JoinAt: 2},
				{Pid: 2, LeaveAt: 4},
			}}
			var mu sync.Mutex
			shares := map[int]map[int]float64{}

			prog := func(c hbsp.Ctx) error {
				root := c.Tree().Root
				const rounds = 6
				stop := false
				for round := 0; !stop; round++ {
					for { // absorb membership notices, re-send, retry
						failed := map[int]bool{}
						for _, f := range c.Failed() {
							failed[f] = true
						}
						if c.Pid() == 0 {
							flag := byte(0)
							if round >= rounds-1 {
								flag = 1
							}
							for _, m := range c.Members() {
								if m != 0 && !failed[m] {
									if err := c.Send(m, lsCtl, []byte{flag}); err != nil {
										return err
									}
								}
							}
						}
						err := c.Sync(root, "tick")
						if err == nil {
							break
						}
						var pj *hbsp.ErrPeerJoined
						var pf *hbsp.ErrPeerFailed
						if !errors.As(err, &pj) && !errors.As(err, &pf) {
							return err
						}
					}
					for _, m := range c.Moves() {
						if m.Src == 0 && m.Tag == lsCtl {
							stop = m.Payload[0] == 1
						}
					}
					if c.Pid() == 0 {
						stop = round >= rounds-1
					}
				}
				failed := map[int]bool{}
				for _, f := range c.Failed() {
					failed[f] = true
				}
				var live []int
				for _, m := range c.Members() {
					if !failed[m] {
						live = append(live, m)
					}
				}
				mu.Lock()
				shares[c.Pid()] = LiveShares(c, root, live)
				mu.Unlock()
				return nil
			}

			var err error
			if engine == "virtual" {
				eng := hbsp.NewVirtual(tr, fabric.New(tr, fabric.PureModel()))
				eng.Chaos = plan
				_, err = eng.Run(prog)
			} else {
				eng := hbsp.NewConcurrent(tr)
				eng.Chaos = plan
				_, err = eng.Run(prog)
			}
			if err != nil {
				t.Fatalf("churn run: %v", err)
			}

			got := shares[0]
			if got == nil {
				t.Fatal("coordinator recorded no shares")
			}
			if _, hasLeaver := got[2]; hasLeaver {
				t.Errorf("departed p2 still holds a share: %v", got)
			}
			if _, hasJoiner := got[3]; !hasJoiner {
				t.Errorf("joiner p3 holds no share: %v", got)
			}
			total := 0.0
			for _, s := range got {
				total += s
			}
			if total < 0.999 || total > 1.001 {
				t.Errorf("live shares sum to %v, want 1", total)
			}
			// Oracle: the tree's balanced shares renormalized over {0,1,3}.
			den := 0.0
			for _, pid := range []int{0, 1, 3} {
				den += tr.Leaf(pid).Share
			}
			for _, pid := range []int{0, 1, 3} {
				want := tr.Leaf(pid).Share / den
				if d := got[pid] - want; d < -1e-9 || d > 1e-9 {
					t.Errorf("p%d live share = %v, want renormalized %v", pid, got[pid], want)
				}
			}
			// Every finisher agrees on the weights.
			for pid, m := range shares {
				if !reflect.DeepEqual(m, got) && pid != 2 {
					t.Errorf("p%d shares %v diverge from coordinator's %v", pid, m, got)
				}
			}
		})
	}
}
